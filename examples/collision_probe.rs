//! A deliberately colliding protocol, caught twice: first *statically* by
//! `mcb-check` — before any engine exists — and then dynamically by the
//! engine's runtime collision detection ("a write collision fails the
//! computation", §2). The static verifier must flag the bug first; if it
//! ever lets the schedule through, this probe exits non-zero.
//!
//! Works identically on either backend (try `MCB_BACKEND=pooled`).

use mcb::check::{verify, Bounds, ScheduleBuilder};
use mcb::net::{Backend, ChanId, Network};

fn main() {
    // The protocol below as a static schedule: cycle 0 all quiet, cycle 1
    // every processor shouts on channel 0.
    let mut b = ScheduleBuilder::new("collision_probe", 4, 2);
    b.begin_cycle();
    b.begin_cycle();
    for proc in 0..4 {
        b.write(proc, 0);
    }
    let report = verify(&b.finish(), &Bounds::none());
    print!("{report}");
    if report.is_ok() {
        eprintln!("static verifier MISSED the collision — that is the bug");
        std::process::exit(1);
    }
    assert!(report
        .violations
        .iter()
        .any(|v| v.kind() == "write_collision"));
    println!("static verdict first: collision flagged before any engine ran\n");

    // Now let the engine hit the same wall at runtime.
    for backend in [Backend::Threaded, Backend::Pooled] {
        let err = Network::new(4, 2)
            .backend(backend)
            .run(|ctx| {
                ctx.idle(); // cycle 0: all quiet
                ctx.write(ChanId(0), ctx.id().index() as u64); // cycle 1: everyone shouts
            })
            .unwrap_err();
        println!("{backend:?}: {err}");
    }
}
