//! Deliberately violates collision-freedom to show the engine's error
//! reporting: every processor writes channel 0 in the same cycle, which
//! "fails the computation" (§2) — the run returns `NetError::Collision`
//! instead of picking a winner. Works identically on either backend
//! (try `MCB_BACKEND=pooled`).

use mcb::net::{Backend, ChanId, Network};

fn main() {
    for backend in [Backend::Threaded, Backend::Pooled] {
        let err = Network::new(4, 2)
            .backend(backend)
            .run(|ctx| {
                ctx.idle(); // cycle 0: all quiet
                ctx.write(ChanId(0), ctx.id().index() as u64); // cycle 1: everyone shouts
            })
            .unwrap_err();
        println!("{backend:?}: {err}");
    }
}
