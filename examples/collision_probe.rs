//! Deliberately broken protocols, caught before any engine exists — and a
//! report of *which pass* produced each verdict, because the repo now has
//! three of them:
//!
//! 1. the **structural** verifier (collision-freedom, read-validity) —
//!    walks the schedule once, no keys involved;
//! 2. the **symbolic** pass (`mcb_check::verify_network`) — proves a
//!    compiled comparator network sorts *every* input via provenance
//!    tracking and the 0-1 principle, still with zero concrete keys;
//! 3. **concrete round-simulation** — actually running the engine on one
//!    input, the weakest verdict (it only speaks for that input).
//!
//! The probe seeds two bugs. A write collision is caught structurally
//! (pass 1) and confirmed at runtime (pass 3). A flipped comparator end
//! is *invisible* to pass 1 — the schedule stays collision-free — and is
//! caught by pass 2 for all inputs at once; the engine run on the
//! symbolic counterexample merely confirms it. Exits non-zero if any
//! pass misses its bug.
//!
//! Works identically on either backend (try `MCB_BACKEND=pooled`).

use mcb::algos::networks::{network_sort_in, NetworkKind, NetworkSpec};
use mcb::check::{verify, verify_network, Bounds, NetViolation, ScheduleBuilder};
use mcb::net::{Backend, ChanId, Network};
use std::sync::Arc;

fn main() {
    // ---- Bug 1: a write collision. ------------------------------------
    // The protocol below as a static schedule: cycle 0 all quiet, cycle 1
    // every processor shouts on channel 0.
    let mut b = ScheduleBuilder::new("collision_probe", 4, 2);
    b.begin_cycle();
    b.begin_cycle();
    for proc in 0..4 {
        b.write(proc, 0);
    }
    let report = verify(&b.finish(), &Bounds::none());
    print!("{report}");
    if report.is_ok() {
        eprintln!("static verifier MISSED the collision — that is the bug");
        std::process::exit(1);
    }
    assert!(report
        .violations
        .iter()
        .any(|v| v.kind() == "write_collision"));
    println!("verdict source: structural pass (schedule walk, no keys, no engine)\n");

    // Now let the engine hit the same wall at runtime.
    for backend in [Backend::Threaded, Backend::Pooled] {
        let err = Network::new(4, 2)
            .backend(backend)
            .run(|ctx| {
                ctx.idle(); // cycle 0: all quiet
                ctx.write(ChanId(0), ctx.id().index() as u64); // cycle 1: everyone shouts
            })
            .unwrap_err();
        println!("{backend:?}: {err}");
    }
    println!("verdict source: concrete round-simulation (one run, one input)\n");

    // ---- Bug 2: a flipped comparator. ---------------------------------
    // Swap the ends of one comparator in a compiled Batcher network. The
    // broadcast pattern is untouched, so the structural pass sees a
    // perfectly valid schedule; only the all-inputs sortedness proof can
    // tell that min now lands on the *high* line.
    let spec = NetworkSpec {
        kind: NetworkKind::Batcher,
        p: 8,
        k: 2,
    };
    let mut net = spec.compile();
    let ex = &mut net.exchanges[5];
    std::mem::swap(&mut ex.lo, &mut ex.hi);
    std::mem::swap(&mut ex.lo_cycle, &mut ex.hi_cycle);
    std::mem::swap(&mut ex.lo_chan, &mut ex.hi_chan);

    let structural = verify(&net.schedule, &Bounds::none());
    println!(
        "{} with comparator 5 flipped: structural pass says {} — it cannot see this bug",
        structural.name,
        if structural.is_ok() { "OK" } else { "FAIL" }
    );
    assert!(structural.is_ok(), "flip must stay structurally valid");
    println!("verdict source: structural pass (collision/read checks only)\n");

    let symbolic = verify_network(&net, &Bounds::none());
    print!("{symbolic}");
    if symbolic.is_ok() {
        eprintln!("symbolic pass MISSED the flipped comparator — that is the bug");
        std::process::exit(1);
    }
    let witness = symbolic
        .net_violations
        .iter()
        .find_map(|v| match v {
            NetViolation::SortednessFailure { witness, .. } => Some(witness.clone()),
            _ => None,
        })
        .expect("flip must fail the sortedness proof");
    println!("verdict source: symbolic pass (0-1 principle, all 2^8 inputs, zero engine cycles)\n");

    // Run the engine on the symbolic counterexample: the concrete
    // round-simulation confirms what the symbolic pass already proved.
    // Witness format is "<bits> (lines a..b)", bit i = line i's input.
    let bits = witness.split_whitespace().next().unwrap();
    let input: Vec<u64> = bits.bytes().map(|b| u64::from(b == b'1')).collect();
    assert_eq!(input.len(), 8, "witness encodes one bit per line");
    let shared = Arc::new(net);
    let run_input = input.clone();
    let out = Network::new(8, 2)
        .run(move |ctx| network_sort_in(ctx, &shared, run_input[ctx.id().index()]))
        .unwrap()
        .into_results();
    if out.windows(2).all(|w| w[0] <= w[1]) {
        eprintln!("engine sorted the symbolic counterexample {bits} — that is the bug");
        std::process::exit(1);
    }
    println!("engine replay of witness {bits}: output {out:?} is unsorted, as proven");
    println!("verdict source: concrete round-simulation (this input only — the symbolic");
    println!("verdict above already covered all 255 others)");
}
