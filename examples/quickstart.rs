//! Quickstart: sort and select on a simulated MCB(8, 4) network.
//!
//! ```text
//! cargo run --release --example quickstart
//! ```
//!
//! Builds a network of 8 processors sharing 4 broadcast channels, spreads
//! 256 random keys over it, sorts them with the paper's Columnsort-based
//! algorithm, then selects the median with the filtering algorithm — and
//! prints the cycle/message price of each, next to the paper's Θ-bounds.

use mcb::algos::select::select_rank;
use mcb::algos::sort::{sort_grouped, verify_sorted};
use mcb::lowerbounds::bounds;
use mcb::workloads::{distributions, rng};

fn main() {
    let (p, k, n) = (8usize, 4usize, 256usize);
    let input = distributions::even(p, n, &mut rng(2024));
    println!("MCB({p}, {k}): {n} keys, {} per processor\n", n / p);

    // ---- sorting -----------------------------------------------------------
    let sorted = sort_grouped(k, input.lists().to_vec()).expect("sort runs");
    verify_sorted(input.lists(), &sorted.lists).expect("postcondition");
    println!("sorting (§5/§7):");
    println!(
        "  cycles   : {:6}   Θ(max(n/k, n_max)) = {}",
        sorted.metrics.cycles,
        bounds::sort_cycles_theta(n, k, n / p)
    );
    println!("  messages : {:6}   Θ(n) = {}", sorted.metrics.messages, n);
    println!("  max bits per message: {}", sorted.metrics.max_msg_bits);
    println!(
        "  P1 now holds {}..{} (descending)\n",
        sorted.lists[0].first().unwrap(),
        sorted.lists[0].last().unwrap()
    );

    // ---- selection ---------------------------------------------------------
    let d = n / 2;
    let selected = select_rank(k, input.lists().to_vec(), d).expect("select runs");
    assert_eq!(selected.value, input.rank(d));
    println!("selection of rank d = {d} (§8):");
    println!(
        "  cycles   : {:6}   Θ((p/k)·log(kn/p)) = {:.1}",
        selected.metrics.cycles,
        bounds::select_cycles_theta(n, p, k)
    );
    println!(
        "  messages : {:6}   Θ(p·log(kn/p)) = {:.1}",
        selected.metrics.messages,
        bounds::select_messages_theta(n, p, k)
    );
    println!("  filtering phases: {}", selected.phases.len());
    for (i, ph) in selected.phases.iter().enumerate() {
        println!(
            "    phase {}: {:4} candidates, purged {:4} ({:4.1}%) [{:?}]",
            i + 1,
            ph.before,
            ph.purged,
            100.0 * ph.purge_fraction(),
            ph.case
        );
    }
    println!(
        "\nselection sent {:.1}x fewer messages than sorting ({} vs {})",
        sorted.metrics.messages as f64 / selected.metrics.messages as f64,
        selected.metrics.messages,
        sorted.metrics.messages
    );
}
