//! Live run monitor, in two acts.
//!
//! **Act 1 — the dashboard:** a large self-healing Columnsort with a
//! mid-run channel death and a processor crash, watched *from outside*:
//! the run executes on its own thread while this one polls the attached
//! [`RunMonitor`] and redraws an ASCII dashboard — progress counters,
//! per-phase breakdown, a channel-utilization sparkline, and the
//! fault/epoch event ticker — every frame a coherent snapshot of a run
//! still in flight.
//!
//! **Act 2 — the flight recorder:** a smaller healed run with the wire
//! trace on, exported as a Chrome `trace_event` JSON. Load the file in
//! [ui.perfetto.dev](https://ui.perfetto.dev): phases are spans on the
//! `phases` track, faults and epoch commits are instants on the `events`
//! track, and every delivered message is a slice on its channel's track.
//! The export is re-parsed and cross-checked against the run report
//! before the example exits.
//!
//! The backend follows `MCB_BACKEND=threaded|pooled|vector` (default
//! `vector` — the monitor's home turf is big single-threaded runs).
//! `--ci` shrinks the shapes, skips the interactive redraw, and exits
//! non-zero unless the exported trace parses and accounts for every
//! phase span, fault instant, and epoch instant in the report.
//!
//! ```text
//! cargo run --release --example live_dashboard [-- --ci]
//! ```

use std::fmt::Write as _;
use std::io::IsTerminal;
use std::thread;
use std::time::Duration;

use mcb::algos::heal::{run_program_in, ColumnsortProgram, SelfHealing};
use mcb::net::{
    validate_chrome_trace, Backend, ChanId, EpochCtx, EpochOpts, FaultPlan, MonitorSnapshot,
    MonitorState, Network, ProcId, RunMonitor,
};
use mcb::workloads::{distinct_keys, rng};

const SPARK: [char; 9] = [' ', '▁', '▂', '▃', '▄', '▅', '▆', '▇', '█'];

/// The CI matrix steers the example through the same env var the engine's
/// `Backend::Auto` consults; unset means the vector backend.
fn backend_leg() -> (Backend, &'static str) {
    match std::env::var("MCB_BACKEND").ok().as_deref() {
        Some("threaded") => (Backend::Threaded, "threaded"),
        Some("pooled") => (Backend::Pooled, "pooled"),
        _ => (Backend::Vector, "vector"),
    }
}

/// One dashboard frame, as plain text (the caller handles redraw).
fn render(snap: &MonitorSnapshot, p: usize) -> String {
    let mut out = String::new();
    let _ = writeln!(
        out,
        "state {:<8} cycle {:<8} messages {:<9} bits {:<10} finished {}/{p}",
        snap.state.as_str(),
        snap.cycle,
        snap.messages,
        snap.total_bits,
        snap.finished,
    );
    let _ = writeln!(
        out,
        "  {:<20} {:>9} {:>11}   cycles",
        "phase", "messages", "bits"
    );
    for ph in &snap.phases {
        let _ = writeln!(
            out,
            "  {:<20} {:>9} {:>11}   {}..{}",
            ph.name, ph.messages, ph.total_bits, ph.first_cycle, ph.last_cycle
        );
    }
    // Channel utilization: most recent window samples, scaled to the
    // busiest visible window.
    let tail: &[u64] = &snap.util[snap.util.len().saturating_sub(64)..];
    let peak = tail.iter().copied().max().unwrap_or(0).max(1);
    let spark: String = tail
        .iter()
        .map(|&v| SPARK[(v as usize * (SPARK.len() - 1)).div_ceil(peak as usize)])
        .collect();
    let _ = writeln!(
        out,
        "  util [{spark}] peak {peak} msgs / {} cycles",
        snap.window
    );
    for ev in snap.events.iter().rev().take(4).rev() {
        let _ = writeln!(out, "  ! cycle {:<8} {}", ev.cycle, ev.label);
    }
    out
}

fn main() {
    let ci = std::env::args().any(|a| a == "--ci");
    let (backend, leg) = backend_leg();
    let interactive = !ci && std::io::stdout().is_terminal();

    // -- Act 1: dashboard over a healing chaos run -------------------------
    // The shape satisfies §5.1 (m >= k(k-1), k | m); the channel dies
    // early and the processor crashes mid-run, so the dashboard catches
    // both reconfigurations live.
    let (m, k) = if ci {
        (60usize, 6usize)
    } else {
        (504usize, 8usize)
    };
    let l_est = mcb::algos::sort::columnsort_net_cycles(m, k);
    let plan = FaultPlan::new(k, k)
        .kill_channel(ChanId::from_index(k - 2), l_est / 4)
        .crash_proc(ProcId::from_index(k - 1), l_est / 2);
    let vals = distinct_keys(m * k, &mut rng(1985));
    let cols: Vec<Vec<Option<u64>>> = (0..k)
        .map(|c| vals[c * m..(c + 1) * m].iter().map(|&v| Some(v)).collect())
        .collect();

    println!("== act 1: dashboard — self-healing Columnsort on MCB({k}, {k}), {leg} backend ==");
    println!(
        "plan: channel {} dies at cycle {}, processor {} crashes at cycle {}",
        k - 2,
        l_est / 4,
        k - 1,
        l_est / 2
    );
    println!();

    let monitor = RunMonitor::new();
    let runner = {
        let (monitor, plan, cols) = (monitor.clone(), plan, cols.clone());
        thread::spawn(move || {
            SelfHealing::new(plan)
                .backend(backend)
                .monitor(&monitor)
                .sort_columns(m, cols)
        })
    };

    let mut prev_lines = 0usize;
    let mut frames = 0usize;
    loop {
        let snap = monitor.snapshot();
        let done = matches!(snap.state, MonitorState::Done | MonitorState::Failed);
        let frame = render(&snap, k);
        if interactive {
            // Redraw in place: back up over the previous frame, clear, reprint.
            if prev_lines > 0 {
                print!("\x1b[{prev_lines}F\x1b[J");
            }
            print!("{frame}");
            prev_lines = frame.lines().count();
        } else if done || frames.is_multiple_of(10) {
            println!("{frame}");
        }
        frames += 1;
        if done {
            break;
        }
        thread::sleep(Duration::from_millis(if interactive { 50 } else { 20 }));
    }

    let healed = match runner.join().expect("run thread") {
        Ok(h) => h,
        Err(e) => {
            eprintln!("FAIL: healed run errored: {e}");
            std::process::exit(1);
        }
    };
    let got: Vec<Option<u64>> = healed.columns.iter().flatten().copied().collect();
    let mut want = vals.clone();
    want.sort_unstable_by(|a, b| b.cmp(a));
    if got.iter().any(Option::is_none) || got.into_iter().flatten().ne(want) {
        eprintln!("FAIL: healed output incomplete or unsorted");
        std::process::exit(1);
    }
    let snap = monitor.snapshot();
    if snap.state != MonitorState::Done || snap.cycle != healed.metrics.rounds {
        eprintln!("FAIL: final snapshot disagrees with the sealed metrics");
        std::process::exit(1);
    }
    println!(
        "OK: sorted through {} fault(s) and {} reconfiguration(s) in {} cycles \
         ({} dashboard frames)",
        healed.metrics.faults.len(),
        healed.epochs.len(),
        healed.metrics.cycles,
        frames
    );

    // -- Act 2: Perfetto flight recorder -----------------------------------
    // Raw engine run (so the RunReport exporter is exercised) with the
    // wire trace on: a healed sort through a death and a crash, exported
    // as Chrome trace_event JSON and re-parsed before we trust it.
    let (tm, tk) = (12usize, 4usize);
    let tvals = distinct_keys(tm * tk, &mut rng(5891));
    let tcols: Vec<Vec<Option<u64>>> = (0..tk)
        .map(|c| {
            tvals[c * tm..(c + 1) * tm]
                .iter()
                .map(|&v| Some(v))
                .collect()
        })
        .collect();
    let tmon = RunMonitor::new();
    let mut report = Network::new(tk, tk)
        .backend(backend)
        .framing(true)
        .record_trace(true)
        .monitor(&tmon)
        .fault_plan(
            FaultPlan::new(tk, tk)
                .kill_channel(ChanId(2), 25)
                .crash_proc(ProcId(1), 60),
        )
        .run(move |ctx| {
            let prog = ColumnsortProgram::new(tm, &tcols).expect("shape is valid");
            let mut ectx = EpochCtx::new(tk, tk, EpochOpts::default());
            run_program_in(ctx, &mut ectx, &prog).map(|_| ectx.into_records())
        })
        .unwrap_or_else(|e| {
            eprintln!("FAIL: flight-recorder run errored: {e}");
            std::process::exit(1);
        });
    report.epochs = report
        .results
        .iter()
        .flatten()
        .flatten()
        .next()
        .cloned()
        .expect("a survivor carries the epoch log");

    let trace_json = report.to_chrome_trace();
    let dir = std::path::Path::new("target/experiments");
    let path = dir.join(format!("live_trace_{leg}.json"));
    if let Err(e) = std::fs::create_dir_all(dir).and_then(|()| std::fs::write(&path, &trace_json)) {
        eprintln!("FAIL: cannot write {}: {e}", path.display());
        std::process::exit(1);
    }

    // The export must parse, and must not drop events: every phase span,
    // fault instant, epoch instant, and traced message accounted for.
    let stats = match validate_chrome_trace(&trace_json) {
        Ok(s) => s,
        Err(e) => {
            eprintln!("FAIL: exported trace does not validate: {e}");
            std::process::exit(1);
        }
    };
    let want = [
        (
            "phase spans",
            stats.phase_spans,
            report.metrics.phases.len(),
        ),
        (
            "fault instants",
            stats.fault_instants,
            report.metrics.faults.len(),
        ),
        ("epoch instants", stats.epoch_instants, report.epochs.len()),
        (
            "message spans",
            stats.message_spans,
            report.trace.as_ref().unwrap().events().len(),
        ),
    ];
    let mut failed = false;
    for (what, got, expect) in want {
        if got != expect {
            eprintln!("FAIL: trace dropped {what}: {got} exported, {expect} in the report");
            failed = true;
        }
    }
    if report.epochs.is_empty() || report.metrics.faults.is_empty() {
        eprintln!("FAIL: the flight-recorder plan never fired");
        failed = true;
    }
    if failed {
        std::process::exit(1);
    }
    println!();
    println!("== act 2: flight recorder ==");
    println!(
        "wrote {} ({} bytes): {} phase spans, {} fault + {} epoch instants, \
         {} message slices — load it in ui.perfetto.dev",
        path.display(),
        trace_json.len(),
        stats.phase_spans,
        stats.fault_instants,
        stats.epoch_instants,
        stats.message_spans
    );
}
