//! Why multiple channels: cycle scaling as k grows.
//!
//! ```text
//! cargo run --release --example multichannel_scaling
//! ```
//!
//! The paper's motivation (§1): multi-channel LANs trade longer individual
//! transmissions for reduced contention. In the MCB cost model this
//! appears as the `1/k` factor in every cycle bound. This example fixes
//! `p` and `n` and sweeps `k`, sorting the same input each time, to show
//! cycles dropping ~linearly in `k` while messages stay `Θ(n)` — and the
//! same for selection with its logarithmic costs.

use mcb::algos::select::select_rank;
use mcb::algos::sort::sort_grouped;
use mcb::workloads::{distributions, rng};

fn main() {
    let (p, n) = (16usize, 960usize);
    let input = distributions::even(p, n, &mut rng(88));
    let d = n / 2;

    println!("MCB(p = {p}, k) scaling, n = {n}\n");
    println!("          |        sorting          |        selection");
    println!("     k    |   cycles     messages   |   cycles     messages");
    let mut first_sort_cycles = None;
    for k in [1usize, 2, 4, 8, 16] {
        let sort = sort_grouped(k, input.lists().to_vec()).expect("sort");
        let sel = select_rank(k, input.lists().to_vec(), d).expect("select");
        assert_eq!(sel.value, input.rank(d));
        let speedup = match first_sort_cycles {
            None => {
                first_sort_cycles = Some(sort.metrics.cycles);
                1.0
            }
            Some(c1) => c1 as f64 / sort.metrics.cycles as f64,
        };
        println!(
            "  {k:4}    | {:8} {:12}   | {:8} {:12}    (sort speedup {speedup:4.1}x)",
            sort.metrics.cycles, sort.metrics.messages, sel.metrics.cycles, sel.metrics.messages,
        );
    }
    println!(
        "\nsort cycles fall ~linearly with k (the Θ(n/k) bound) while messages\n\
         stay Θ(n): more channels buy parallel broadcasts, not fewer of them."
    );
}
