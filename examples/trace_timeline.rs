//! Cycle-timeline inspector: run the paper's Columnsort and selection
//! algorithms with phase tracing on, render an ASCII cycle × channel
//! timeline for each (phase spans above a per-channel heat map), and prove
//! the structured export is byte-identical across execution backends by
//! diffing the JSONL of a threaded and a pooled run.
//!
//! Exits non-zero if the two backends' exports ever differ.
//!
//! ```text
//! cargo run --release --example trace_timeline
//! ```

use mcb::algos::msg::Word;
use mcb::algos::select::{select_rank_in, MedEntry, PhaseStats};
use mcb::algos::sort::{columnsort_net_in, ColumnRole};
use mcb::net::{render_timeline, Backend, Network, RunReport};
use mcb::workloads::{distinct_keys, rng};

const WIDTH: usize = 72;

fn columnsort_run(backend: Backend) -> RunReport<Option<Vec<Option<u64>>>, Word<u64>> {
    // 8 column owners sort a 64 x 8 grid; 56 more processors idle along.
    let (p, k, m) = (64usize, 8usize, 64usize);
    let vals = distinct_keys(m * k, &mut rng(41));
    Network::new(p, k)
        .backend(backend)
        .record_trace(true)
        .run(move |ctx| {
            let me = ctx.id().index();
            let role = (me < k).then(|| ColumnRole {
                col: me,
                data: vals[me * m..(me + 1) * m]
                    .iter()
                    .map(|&v| Some(v))
                    .collect(),
            });
            columnsort_net_in(ctx, role, m, k, &|v| Word::Key(v), &|w: Word<u64>| {
                w.expect_key()
            })
            .unwrap()
        })
        .expect("collision-free by construction")
}

fn selection_run(backend: Backend) -> RunReport<(u64, Vec<PhaseStats>), Word<MedEntry<u64>>> {
    let (p, k, n) = (16usize, 4usize, 512usize);
    let per = n / p;
    let keys = distinct_keys(n, &mut rng(42));
    let lists: Vec<Vec<u64>> = keys.chunks(per).map(<[u64]>::to_vec).collect();
    let d = (n / 2) as u64;
    Network::new(p, k)
        .backend(backend)
        .record_trace(true)
        .run(move |ctx| {
            let mine = lists[ctx.id().index()].clone();
            select_rank_in(ctx, mine, d)
        })
        .expect("collision-free by construction")
}

/// Render one algorithm's timeline and check backend equivalence of the
/// export. Returns `false` on a mismatch.
fn show<R, M>(name: &str, threaded: &RunReport<R, M>, pooled: &RunReport<R, M>) -> bool
where
    M: std::fmt::Debug,
{
    println!("== {name} ==");
    let trace = threaded.trace.as_ref().expect("trace recorded");
    print!("{}", render_timeline(&threaded.metrics, trace, WIDTH));
    println!("phases:");
    for ph in &threaded.metrics.phases {
        println!(
            "  {:<20} cycles {:>5}  messages {:>6}  [{}..{}]",
            ph.name, ph.cycles, ph.messages, ph.first_cycle, ph.last_cycle
        );
    }
    let (a, b) = (threaded.to_jsonl(), pooled.to_jsonl());
    let ok = a == b;
    println!(
        "jsonl: {} lines, threaded == pooled: {}\n",
        a.lines().count(),
        if ok { "yes" } else { "NO — MISMATCH" }
    );
    ok
}

fn main() {
    let mut ok = true;
    ok &= show(
        "Columnsort (p=64, k=8, 512 keys)",
        &columnsort_run(Backend::Threaded),
        &columnsort_run(Backend::Pooled),
    );
    ok &= show(
        "Selection of the median (p=16, k=4, n=512)",
        &selection_run(Backend::Threaded),
        &selection_run(Backend::Pooled),
    );
    if !ok {
        eprintln!("backend exports differ — determinism broken");
        std::process::exit(1);
    }
}
