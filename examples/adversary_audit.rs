//! Auditing selection against the Theorem 1 adversary.
//!
//! ```text
//! cargo run --release --example adversary_audit
//! ```
//!
//! Records the full wire trace of a median selection, then replays the §4
//! adversary's candidate-elimination bookkeeping over it: every message
//! carrying an input element is charged to its writer's processor pair,
//! and each charge eliminates at most half-plus-one of the pair's
//! candidates. The number of charges the adversary forces before every
//! pair is decided lower-bounds the messages *any* comparison-based
//! algorithm must send — the run checks `measured >= forced` and prints
//! both next to Theorem 1's closed form.

use mcb::algos::msg::Word;
use mcb::algos::select::{select_rank_in, MedEntry};
use mcb::lowerbounds::bounds::thm1_select_median_messages;
use mcb::lowerbounds::AdversaryLedger;
use mcb::net::Network;
use mcb::workloads::{distributions, rng};

fn main() {
    let (p, k, n) = (8usize, 2usize, 512usize);
    let input = distributions::even(p, n, &mut rng(77));
    let sizes = input.sizes();
    let d = (n / 2) as u64;

    println!("median selection on MCB({p}, {k}), n = {n}, with wire tracing\n");

    let lists = input.lists().to_vec();
    let report = Network::new(p, k)
        .record_trace(true)
        .run(move |ctx| {
            let mine = lists[ctx.id().index()].clone();
            select_rank_in(ctx, mine, d)
        })
        .expect("selection runs");
    let trace = report.trace.as_ref().expect("trace recorded");
    let (value, _) = report.results[0].clone().expect("result");
    assert_eq!(value, input.rank(d as usize));

    // Replay the adversary: only element-carrying messages count.
    let mut ledger = AdversaryLedger::new(&sizes);
    let forced = ledger.forced_messages();
    ledger.replay(trace.events(), |msg| {
        matches!(msg, Word::Key(MedEntry { med: Some(_), .. }))
    });

    println!("total messages on the wire   : {}", report.metrics.messages);
    println!("element-carrying messages    : {}", ledger.observed());
    println!("adversary-forced minimum     : {forced}");
    println!(
        "Theorem 1 closed form        : {:.1}",
        thm1_select_median_messages(&sizes)
    );
    println!(
        "all candidate pairs decided  : {}",
        if ledger.exhausted() { "yes" } else { "no" }
    );
    assert!(
        ledger.observed() >= forced,
        "an algorithm beat the information-theoretic bound?!"
    );
    println!(
        "\nmeasured >= forced holds, as Theorem 1 demands; the gap ({:.1}x)\n\
         is the algorithm's constant factor, not a bound violation.",
        ledger.observed() as f64 / forced.max(1) as f64
    );
}
