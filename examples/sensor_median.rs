//! Distributed median of sensor readings — the selection workload.
//!
//! ```text
//! cargo run --release --example sensor_median
//! ```
//!
//! Scenario: a LAN of sensor nodes, each buffering a different number of
//! temperature readings (bursty arrival — some nodes hold 10× more than
//! others). The operator wants the network-wide median without hauling
//! every reading across the shared broadcast channels.
//!
//! Readings are duplicated-valued, so the example also demonstrates the
//! paper's §3 trick: replace each reading with the lexicographic triple
//! `(value, node, index)` packed into one key, making all keys distinct
//! without changing the value order.

use mcb::algos::select::select_by_sorting;
use mcb::algos::select::select_rank;
use mcb::workloads::{disambiguate, distributions, original_value, rng};

fn main() {
    let (p, k, n) = (12usize, 3usize, 600usize);
    // Zipf-skewed buffer sizes: node 1 holds far more than node 12.
    let shape = distributions::zipf(p, n, 1.0, &mut rng(55));

    // Re-key with realistic duplicated readings (tenths of a degree around
    // 21.5 C), then disambiguate into distinct keys.
    let mut r = rng(56);
    let readings: Vec<Vec<u64>> = shape
        .lists()
        .iter()
        .enumerate()
        .map(|(node, list)| {
            (0..list.len())
                .map(|idx| {
                    let tenths = 180 + (mcb::workloads::keys_with_duplicates(1, 75, &mut r)[0]);
                    disambiguate(tenths, node, idx)
                })
                .collect()
        })
        .collect();

    println!("sensor network: {p} nodes, {k} channels, {n} buffered readings");
    println!(
        "buffer sizes: {:?}\n",
        readings.iter().map(Vec::len).collect::<Vec<_>>()
    );

    let d = n / 2;
    let smart = select_rank(k, readings.clone(), d).expect("filtering selection");
    let naive = select_by_sorting(k, readings.clone(), d).expect("sort-based selection");
    assert_eq!(smart.value, naive.value);

    let median_tenths = original_value(smart.value);
    println!(
        "median reading: {}.{} degrees (rank {d} of {n})",
        median_tenths / 10,
        median_tenths % 10
    );
    println!("\n                      cycles   messages");
    println!(
        "filtering (§8)      {:8} {:10}",
        smart.metrics.cycles, smart.metrics.messages
    );
    println!(
        "sort-then-pick      {:8} {:10}",
        naive.metrics.cycles, naive.metrics.messages
    );
    println!(
        "\nfiltering saves {:.1}x messages and {:.1}x cycles on this workload",
        naive.metrics.messages as f64 / smart.metrics.messages as f64,
        naive.metrics.cycles as f64 / smart.metrics.cycles as f64
    );
    println!(
        "({} filtering phases, worst purge {:.0}%)",
        smart.phases.len(),
        100.0
            * smart
                .phases
                .iter()
                .map(|ph| ph.purge_fraction())
                .fold(f64::INFINITY, f64::min)
    );
}
