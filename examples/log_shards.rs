//! Sorting skewed log shards — the uneven-distribution workload (§7).
//!
//! ```text
//! cargo run --release --example log_shards
//! ```
//!
//! Scenario: log records sharded by source host over the nodes of a
//! broadcast LAN; one host is much chattier than the rest, so one node
//! holds a large fraction of all records (`n_max ≈ α·n`). The records must
//! be globally ordered by timestamp with each node keeping its own record
//! count — exactly the paper's sorting postcondition.
//!
//! The run sweeps the skew α and shows Corollary 6's shape: cycles track
//! `max(n/k, n_max)` — flat while `n_max <= n/k`, then linear in the skew —
//! while messages stay `Θ(n)` throughout.

use mcb::algos::sort::{sort_grouped, verify_sorted};
use mcb::workloads::{distributions, rng};

fn main() {
    let (p, k, n) = (8usize, 4usize, 480usize);
    println!("log sorting on MCB({p}, {k}), n = {n} records\n");
    println!("  skew    n_max   cycles   max(n/k,n_max)   cycles/bound   messages");
    for pct in [12, 25, 40, 55, 70, 85] {
        let frac = pct as f64 / 100.0;
        let input = distributions::single_heavy(p, n, frac, &mut rng(60 + pct as u64));
        let n_max = input.n_max();
        let report = sort_grouped(k, input.lists().to_vec()).expect("sort runs");
        verify_sorted(input.lists(), &report.lists).expect("postcondition");
        let bound = (n / k).max(n_max) as f64;
        println!(
            "  {pct:3}%  {n_max:6} {:8} {:16} {:14.2} {:10}",
            report.metrics.cycles,
            bound as u64,
            report.metrics.cycles as f64 / bound,
            report.metrics.messages,
        );
    }
    println!(
        "\ncycles/bound staying near-constant across the sweep is Corollary 6:\n\
         Θ(max(n/k, n_max)) cycles, Θ(n) messages, even for badly skewed shards."
    );
}
