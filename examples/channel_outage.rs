//! Channel outage drill, in two acts.
//!
//! **Act 1 — told about the fault:** kill half the broadcast channels in
//! the middle of a Columnsort, let the §2 simulation-lemma failover
//! multiplex the rest of the protocol onto the survivors, and inspect the
//! damage — the degraded cycle timeline (fault markers included), the
//! dilation against the lemma's `⌈k/k'⌉` bound, and the sorted output.
//!
//! **Act 2 — told nothing:** a channel death *and* a processor crash with
//! the fault oracle unplugged. The self-healing driver detects both from
//! the wire, reconfigures (watch the epoch marker row in the timeline),
//! a survivor adopts the crashed column, and the output is still complete
//! — on both execution backends, identically.
//!
//! Exits non-zero if either act fails, overruns its bound, or produces a
//! wrong result.
//!
//! ```text
//! cargo run --release --example channel_outage
//! ```

use mcb::algos::heal::SelfHealing;
use mcb::algos::resilient::Resilient;
use mcb::algos::sort::{columnsort_net_cycles, columnsort_net_in, ColumnRole};
use mcb::algos::Word;
use mcb::net::{
    render_timeline, render_timeline_with_epochs, Backend, ChanId, FaultPlan, Network, ProcId,
    ResilientOpts,
};
use mcb::workloads::{distinct_keys, rng};

const WIDTH: usize = 72;

fn main() {
    // 8 columns of 56 keys on an MCB(8, 8) (the §5 shape needs
    // m >= k(k-1)); channels 5 and 6 die at roughly 40% and 70% of the
    // fault-free schedule.
    let (m, k) = (56usize, 8usize);
    let fault_free = columnsort_net_cycles(m, k);
    // Two transient drops ride along: deaths are dodged proactively by the
    // failover (remapped before any write is lost), but drops hit a live
    // channel and exercise the detection-by-silence retransmit.
    let plan = FaultPlan::new(k, k)
        .kill_channel(ChanId(5), fault_free * 2 / 5)
        .kill_channel(ChanId(6), fault_free * 7 / 10)
        .drop_message(fault_free / 5, ChanId(0))
        .drop_message(fault_free, ChanId(1));

    let vals = distinct_keys(m * k, &mut rng(1985));
    let cols: Vec<Vec<Option<u64>>> = (0..k)
        .map(|c| vals[c * m..(c + 1) * m].iter().map(|&v| Some(v)).collect())
        .collect();

    // Run through the raw engine (not the Resilient driver) so the trace
    // is on and the timeline can show the degradation happening.
    let run_cols = cols.clone();
    let report = Network::new(k, k)
        .record_trace(true)
        .fault_plan(plan.clone())
        .run(move |ctx| {
            ctx.set_resilient(Some(ResilientOpts::default()));
            ctx.phase("columnsort");
            let me = ctx.id().index();
            let role = Some(ColumnRole {
                col: me,
                data: run_cols[me].clone(),
            });
            columnsort_net_in(ctx, role, m, k, &Word::Key, &|w: Word<u64>| w.expect_key())
                .expect("shape is valid")
                .expect("every processor owns a column")
        })
        .unwrap_or_else(|e| {
            eprintln!("degraded run failed: {e}");
            std::process::exit(1);
        });

    println!("== channel outage drill: Columnsort on MCB({k}, {k}) ==");
    println!(
        "plan: channel 5 dies at cycle {}, channel 6 at cycle {} (of {fault_free} fault-free)",
        fault_free * 2 / 5,
        fault_free * 7 / 10
    );
    println!();
    print!(
        "{}",
        render_timeline(&report.metrics, report.trace.as_ref().unwrap(), WIDTH)
    );
    println!();

    let bound = mcb::algos::resilient::lemma_dilation_bound(&plan, fault_free);
    println!(
        "cycles: {} physical vs {} fault-free -> dilation x{}.{:02}, lemma bound {}",
        report.metrics.cycles,
        fault_free,
        report.metrics.cycles / fault_free,
        (report.metrics.cycles * 100 / fault_free) % 100,
        bound
    );
    println!(
        "faults fired: {} ({} planned deaths)",
        report.metrics.faults.len(),
        report.fault_summary.map_or(0, |s| s.deaths)
    );
    if report.metrics.cycles > bound {
        eprintln!("FAIL: dilation exceeds the simulation lemma's bound");
        std::process::exit(1);
    }

    // The degraded output must equal the fault-free answer.
    let degraded: Vec<u64> = report
        .results
        .iter()
        .flat_map(|r| r.as_ref().expect("no crashes planned"))
        .filter_map(|x| *x)
        .collect();
    if !degraded.windows(2).all(|w| w[0] >= w[1]) {
        eprintln!("FAIL: degraded output is not sorted: {degraded:?}");
        std::process::exit(1);
    }
    let baseline = Resilient::new(FaultPlan::new(k, k))
        .backend(Backend::Threaded)
        .sort_columns(m, cols)
        .expect("fault-free run");
    let want: Vec<u64> = baseline
        .columns
        .iter()
        .flatten()
        .filter_map(|x| *x)
        .collect();
    if degraded != want {
        eprintln!("FAIL: degraded output differs from the fault-free sort");
        std::process::exit(1);
    }
    println!("OK: degraded output matches the fault-free sort, within the lemma bound");

    // -- Act 2: the same kind of outage, but nobody is told ----------------
    // A smaller shape keeps the all-read timeline readable. Channel 2 dies
    // mid-run and processor 1 crashes later; the self-healing driver has no
    // oracle — both faults must be detected from the wire.
    let (hm, hk) = (12usize, 4usize);
    let hvals = distinct_keys(hm * hk, &mut rng(5891));
    let hcols: Vec<Vec<Option<u64>>> = (0..hk)
        .map(|c| {
            hvals[c * hm..(c + 1) * hm]
                .iter()
                .map(|&v| Some(v))
                .collect()
        })
        .collect();
    let hplan = FaultPlan::new(hk, hk)
        .kill_channel(ChanId(2), 25)
        .crash_proc(ProcId(1), 60);

    println!();
    println!("== act 2: unannounced death + crash, self-healing on MCB({hk}, {hk}) ==");
    println!("plan: channel 2 dies at cycle 25, processor 1 crashes at cycle 60 — no oracle");
    println!();

    let mut healed = Vec::new();
    for backend in [Backend::Threaded, Backend::Pooled] {
        let out = SelfHealing::new(hplan.clone())
            .backend(backend)
            .record_trace(true)
            .sort_columns(hm, hcols.clone())
            .unwrap_or_else(|e| {
                eprintln!("self-healing run failed on {backend:?}: {e}");
                std::process::exit(1);
            });
        healed.push(out);
    }
    let (threaded, pooled) = (&healed[0], &healed[1]);
    if threaded.columns != pooled.columns
        || threaded.metrics != pooled.metrics
        || threaded.epochs != pooled.epochs
    {
        eprintln!("FAIL: threaded and pooled healed runs diverge");
        std::process::exit(1);
    }

    print!(
        "{}",
        render_timeline_with_epochs(
            &threaded.metrics,
            threaded.trace.as_ref().unwrap(),
            WIDTH,
            &threaded.epochs,
        )
    );
    println!();
    for e in &threaded.epochs {
        println!(
            "epoch {} committed at cycle {} ({}): {} live channels, {} live processors",
            e.epoch,
            e.cycle,
            e.cause.as_str(),
            e.live_chans.len(),
            e.live_procs.len()
        );
    }
    println!(
        "cycles: {} physical vs {} fault-free, healing bound {}",
        threaded.metrics.cycles, threaded.fault_free_cycles, threaded.cycle_bound
    );
    if threaded.metrics.cycles > threaded.cycle_bound {
        eprintln!("FAIL: healed run exceeds its cycle bound");
        std::process::exit(1);
    }

    // Complete and correct output despite the crash: the survivors took
    // over processor 1's column.
    let got: Vec<Option<u64>> = threaded.columns.iter().flatten().copied().collect();
    if got.iter().any(Option::is_none) {
        eprintln!("FAIL: holes in the healed output — takeover failed");
        std::process::exit(1);
    }
    let healed_lin: Vec<u64> = got.into_iter().flatten().collect();
    let mut hwant: Vec<u64> = hvals.clone();
    hwant.sort_unstable_by(|a, b| b.cmp(a));
    if healed_lin != hwant {
        eprintln!("FAIL: healed output differs from the fault-free sort");
        std::process::exit(1);
    }
    println!(
        "OK: self-healed output is complete and sorted on both backends, \
         {} reconfigurations",
        threaded.epochs.len()
    );
}
