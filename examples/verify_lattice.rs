//! Full-lattice static verification sweep (the `mcb-check` CI gate).
//!
//! Emits and verifies every algorithm's schedule across the whole
//! `(p, k)` parameter lattice, `1 <= k <= p <= 64` by default — direct
//! sort on the `p = k` diagonal, grouped sort/selection on even, uneven,
//! and single-heavy distributions, rank sort on the `k = 1` column, plus
//! all four Columnsort transformations over their legal `(m, k)` shapes
//! with and without padding dummies. Every schedule must pass
//! collision-freedom, read-validity, data-flow, and the paper's
//! closed-form bounds.
//!
//! Compiled comparator networks ride along: every `NetworkSpec` in the
//! sweep goes through the *symbolic* pass (`mcb_check::verify_network`),
//! which proves sortedness for all inputs with zero concrete-key round
//! simulation, and its verdict is emitted as an `mcb-symbolic` JSONL
//! record next to the structural ones.
//!
//! ```text
//! cargo run --release --example verify_lattice            # sweep, summary
//! cargo run --release --example verify_lattice -- --max-p 16
//! cargo run --release --example verify_lattice -- --jsonl sweep.jsonl
//! cargo run --release --example verify_lattice -- --quick       # CI smoke subset
//! cargo run --release --example verify_lattice -- --shard 2/4   # CI matrix leg
//! ```
//!
//! `--shard i/n` deals the (deterministic) sweep round-robin onto `n`
//! legs and runs only leg `i` (1-based), so CI can split the full sweep
//! across a job matrix; the union of all legs is exactly the unsharded
//! sweep. `--quick` runs a reduced subset for smoke coverage.
//!
//! Exit status is non-zero if any schedule fails verification; failing
//! reports are printed in full. With `--jsonl`, one deterministic JSON
//! line per verified schedule is written for offline analysis.

use mcb_algos::columnsort::{min_column_length, ALL_TRANSFORMS};
use mcb_algos::networks::{NetworkKind, NetworkSpec, MAX_OPTIMAL_WIDTH};
use mcb_algos::static_schedule::{
    ColumnsortNetSpec, DirectSortSpec, ExtremaSpec, GroupedSortSpec, NaiveSelectSpec,
    PartialSumsSpec, RankSortSpec, SelectSpec, StaticSchedule, TotalSpec, TransformSpec,
};
use mcb_rng::Rng64;
use std::io::Write;
use std::time::Instant;

struct Sweep {
    schedules: u64,
    cycles: u64,
    failures: Vec<String>,
    jsonl: Option<std::io::BufWriter<std::fs::File>>,
    /// Round-robin dealing position and `(leg, legs)` from `--shard`.
    next: u64,
    shard: (u64, u64),
}

impl Sweep {
    /// One slot of the deterministic sweep order; returns whether this
    /// shard leg owns it. Must be called exactly once per candidate spec
    /// regardless of shard, so every leg deals the same sequence.
    fn claims(&mut self) -> bool {
        let slot = self.next;
        self.next += 1;
        let (leg, legs) = self.shard;
        slot % legs == leg - 1
    }

    fn check(&mut self, spec: &dyn StaticSchedule) {
        if !self.claims() {
            return;
        }
        let report = spec.check();
        self.schedules += 1;
        self.cycles += report.stats.cycles;
        if let Some(out) = &mut self.jsonl {
            writeln!(out, "{}", report.to_json()).expect("write jsonl");
        }
        if !report.is_ok() {
            self.failures.push(report.to_string());
        }
    }

    /// Networks go through the symbolic pass instead of (structural-only)
    /// `spec.check()`; the JSONL record is the richer `mcb-symbolic` one.
    fn check_network(&mut self, spec: &NetworkSpec) {
        if !self.claims() {
            return;
        }
        let report = spec.check_symbolic();
        self.schedules += 1;
        self.cycles += report.report.stats.cycles;
        if let Some(out) = &mut self.jsonl {
            writeln!(out, "{}", report.to_json()).expect("write jsonl");
        }
        if !report.is_ok() {
            self.failures.push(report.to_string());
        }
    }
}

/// Deterministic per-(p, k) distributions: even, uneven, single-heavy.
fn distributions(p: usize, k: usize) -> Vec<Vec<u64>> {
    let mut rng = Rng64::seed_from_u64((p as u64) << 16 | k as u64);
    let even = vec![4u64; p];
    let uneven: Vec<u64> = (0..p).map(|_| rng.random_range(1u64..9)).collect();
    let mut heavy = vec![1u64; p];
    heavy[rng.random_range(0..p)] = 6 * p as u64;
    vec![even, uneven, heavy]
}

/// Deterministic distinct keys: a fixed multiplicative permutation.
fn keys(count: usize, salt: u64) -> Vec<u64> {
    (0..count as u64)
        .map(|i| (((i + salt).wrapping_mul(48271) % 65521) << 6) | ((i + salt) % 64))
        .collect()
}

fn main() {
    let mut max_p = 64usize;
    let mut max_p_given = false;
    let mut quick = false;
    let mut shard = (1u64, 1u64);
    let mut jsonl_path: Option<String> = None;
    let mut args = std::env::args().skip(1);
    while let Some(arg) = args.next() {
        match arg.as_str() {
            "--max-p" => {
                max_p = args
                    .next()
                    .and_then(|v| v.parse().ok())
                    .expect("--max-p needs a number");
                max_p_given = true;
            }
            "--quick" => quick = true,
            "--shard" => {
                let spec = args.next().expect("--shard needs i/n");
                let (i, n) = spec.split_once('/').expect("--shard format is i/n");
                shard = (
                    i.parse().expect("--shard leg must be a number"),
                    n.parse().expect("--shard count must be a number"),
                );
                assert!(
                    shard.1 >= 1 && (1..=shard.1).contains(&shard.0),
                    "--shard needs 1 <= i <= n"
                );
            }
            "--jsonl" => jsonl_path = Some(args.next().expect("--jsonl needs a path")),
            other => {
                eprintln!("unknown argument: {other}");
                std::process::exit(2);
            }
        }
    }
    if quick && !max_p_given {
        max_p = 16;
    }

    let mut sweep = Sweep {
        schedules: 0,
        cycles: 0,
        failures: Vec::new(),
        jsonl: jsonl_path
            .map(|p| std::io::BufWriter::new(std::fs::File::create(p).expect("create jsonl file"))),
        next: 0,
        shard,
    };
    let start = Instant::now();

    // Transformation schedules with the full data-flow layer, over legal
    // (m, k) shapes; dummy-padded Columnsort alongside.
    let max_mult = if quick { 1 } else { 3 };
    for k in 1..=8usize {
        let floor = min_column_length(k);
        for mult in 1..=max_mult {
            let m = floor * mult;
            for tf in ALL_TRANSFORMS {
                sweep.check(&TransformSpec {
                    transform: tf,
                    m,
                    k,
                });
            }
            sweep.check(&ColumnsortNetSpec {
                m,
                k_cols: k,
                dummies: false,
            });
            sweep.check(&ColumnsortNetSpec {
                m,
                k_cols: k,
                dummies: true,
            });
        }
    }

    for p in 1..=max_p {
        // Rank sort lives on the k = 1 column of the lattice.
        let lists: Vec<Vec<u64>> = {
            let mut rng = Rng64::seed_from_u64(p as u64);
            let sizes: Vec<usize> = (0..p).map(|_| rng.random_range(1..4)).collect();
            let all = keys(sizes.iter().sum(), 3 * p as u64);
            let mut rest = all.as_slice();
            sizes
                .iter()
                .map(|&s| {
                    let (head, tail) = rest.split_at(s);
                    rest = tail;
                    head.to_vec()
                })
                .collect()
        };
        sweep.check(&RankSortSpec { lists });

        for k in 1..=p {
            sweep.check(&PartialSumsSpec { p, k });
            sweep.check(&TotalSpec { p, k });
            sweep.check(&ExtremaSpec { p, k });
            for n_i in distributions(p, k) {
                let n: u64 = n_i.iter().sum();
                sweep.check(&GroupedSortSpec {
                    k,
                    n_i: n_i.clone(),
                });
                sweep.check(&NaiveSelectSpec {
                    k,
                    n_i: n_i.clone(),
                    d: n.div_ceil(2),
                });
            }
            // Filtering selection: simulated rounds over concrete keys
            // (one injective sequence per instance — globally distinct).
            let m_i = 4usize;
            let all = keys(p * m_i, (p * 64 + k) as u64);
            let lists: Vec<Vec<u64>> = all.chunks(m_i).map(<[u64]>::to_vec).collect();
            let n = (p * m_i) as u64;
            sweep.check(&SelectSpec {
                k,
                lists: lists.clone(),
                d: 1,
            });
            sweep.check(&SelectSpec {
                k,
                lists,
                d: n.div_ceil(2),
            });
        }

        // The p = k diagonal: direct sort, even columns, with the padding
        // corner cases around the m >= k(k-1) floor.
        let floor = min_column_length(p);
        for m in [1usize, 2, floor.saturating_sub(1).max(1), floor, floor + 1] {
            sweep.check(&DirectSortSpec { p, m });
        }
    }

    // Oblivious comparator networks: each spec is compiled onto its k
    // channels and proven sort-correct for *all* inputs by the symbolic
    // pass — exhaustive 0-1 replay up to 20 lines, provenance-tree
    // certificates above. No concrete-key round simulation anywhere.
    let batcher_ps: Vec<usize> = if quick {
        vec![4, 8, 16, 24, 33, max_p.max(33)]
    } else {
        (4..=max_p.max(4)).collect()
    };
    for &p in &batcher_ps {
        for k in [1usize, 2, 4, 8] {
            sweep.check_network(&NetworkSpec {
                kind: NetworkKind::Batcher,
                p,
                k,
            });
        }
    }
    for p in 2..=MAX_OPTIMAL_WIDTH {
        for k in [1usize, 3, 6] {
            sweep.check_network(&NetworkSpec {
                kind: NetworkKind::BoseNelson,
                p,
                k,
            });
        }
    }
    // Multiway n-sorter mergers: group sizes that do and don't divide p,
    // straddling the exhaustive/tree certificate boundary.
    for (p, group, k) in [
        (9usize, 3usize, 2usize),
        (15, 5, 4),
        (20, 4, 3),
        (26, 6, 8),
        (40, 8, 16),
    ] {
        sweep.check_network(&NetworkSpec {
            kind: NetworkKind::Multiway { group },
            p,
            k,
        });
    }

    let elapsed = start.elapsed();
    if let Some(out) = &mut sweep.jsonl {
        out.flush().expect("flush jsonl");
    }
    eprintln!(
        "verified {} schedules ({} cycles total) across p <= {max_p} in {:.2?}: {}",
        sweep.schedules,
        sweep.cycles,
        elapsed,
        if sweep.failures.is_empty() {
            "all OK".to_string()
        } else {
            format!("{} FAILED", sweep.failures.len())
        }
    );
    if !sweep.failures.is_empty() {
        for f in &sweep.failures {
            eprint!("{f}");
        }
        std::process::exit(1);
    }
}
