//! # mcb — Sorting and Selection in Multi-Channel Broadcast Networks
//!
//! A faithful, executable reproduction of **Marberg & Gafni, "Sorting and
//! Selection in Multi-Channel Broadcast Networks"** (UCLA CSD-850002 /
//! ICPP 1985), as a Rust workspace:
//!
//! * [`net`] ([`mcb_net`]) — the cycle-accurate `MCB(p, k)` network model:
//!   `p` processors, `k` shared broadcast channels, synchronous cycles of
//!   one write + one read + free local computation, runtime-checked
//!   collision freedom, cycle/message metrics, wire traces, and the §2
//!   virtualization lemma.
//! * [`algos`] ([`mcb_algos`]) — the paper's algorithms: Columnsort over
//!   the network (even, uneven, memory-efficient, recursive), Rank-Sort and
//!   Merge-Sort on a single channel, Partial-Sums, and filtering selection
//!   with its sort-based baseline.
//! * [`lowerbounds`] ([`mcb_lowerbounds`]) — §4's lower bounds as
//!   evaluable formulas, hard-input generators, and an adversary-trace
//!   replayer.
//! * [`check`] ([`mcb_check`]) — static schedule verification: proves
//!   collision-freedom, read-validity, data-flow permutations, and the
//!   paper's closed-form bounds over the whole parameter lattice without
//!   running the engine, plus a mutation self-test and a trace
//!   conformance bridge.
//! * [`workloads`] ([`mcb_workloads`]) — seeded input-distribution
//!   generators.
//! * [`serve`] ([`mcb_serve`]) — the fault-tolerant job service: a socket
//!   front that batches small sort/select jobs into shared self-healing
//!   MCB instances, with admission control, deadlines/retry, and a
//!   crash-recoverable journal.
//!
//! ## Quickstart
//!
//! ```
//! use mcb::algos::select::select_rank;
//! use mcb::algos::sort::sort_grouped;
//! use mcb::workloads::{distributions, rng};
//!
//! // 120 keys spread unevenly over 6 processors, 3 channels.
//! let input = distributions::random_uneven(6, 120, &mut rng(7));
//!
//! // Sort: P1 ends with the largest keys (the paper's order).
//! let sorted = sort_grouped(3, input.lists().to_vec()).unwrap();
//! assert!(sorted.lists[0][0] >= sorted.lists[5].last().copied().unwrap());
//!
//! // Select the median with Θ(p log(kn/p)) messages instead of Θ(n).
//! let med = select_rank(3, input.lists().to_vec(), 60).unwrap();
//! assert_eq!(med.value, input.rank(60));
//! assert!(med.metrics.messages < sorted.metrics.messages);
//! ```

/// Compile-checks every Rust snippet in `README.md` as a doctest, so the
/// README quickstart can never silently rot.
#[doc = include_str!("../README.md")]
#[cfg(doctest)]
pub struct ReadmeDoctests;

pub use mcb_algos as algos;
pub use mcb_check as check;
pub use mcb_lowerbounds as lowerbounds;
pub use mcb_net as net;
pub use mcb_serve as serve;
pub use mcb_workloads as workloads;
