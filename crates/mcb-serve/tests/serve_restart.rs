//! Crash-restart recovery (ISSUE 9 satellite): kill the `mcb-serve`
//! binary mid-batch with jobs journaled-but-unfinished, restart against
//! the same journal, and assert the recovery contract:
//!
//! * every previously-accepted job is driven to a terminal outcome —
//!   completed from the journaled spec or explicitly rejected;
//! * no job is completed twice (ids are unique across batch lines);
//! * recovery terminates (no hang): the restarted process exits on its
//!   own under `--recover-only`.
//!
//! The test talks to the real binary over its real socket, so it also
//! covers the `LISTENING` handshake and the length-prefixed protocol.

use std::collections::BTreeMap;
use std::io::{BufRead, BufReader, Read, Write};
use std::net::TcpStream;
use std::process::{Child, Command, Stdio};
use std::time::{Duration, Instant};

use mcb_json::Json;
use mcb_serve::records::parse_batch_record;

const BIN: &str = env!("CARGO_BIN_EXE_mcb-serve");

fn spawn_serve(journal: &std::path::Path, extra: &[&str]) -> (Child, String) {
    let mut cmd = Command::new(BIN);
    cmd.arg("--listen")
        .arg("127.0.0.1:0")
        .arg("--journal")
        .arg(journal)
        .args(extra)
        .stdout(Stdio::piped())
        .stderr(Stdio::null());
    let mut child = cmd.spawn().expect("spawn mcb-serve");
    let stdout = child.stdout.take().expect("piped stdout");
    let mut lines = BufReader::new(stdout).lines();
    let addr = loop {
        let line = lines
            .next()
            .expect("mcb-serve exited before LISTENING")
            .expect("readable stdout");
        if let Some(addr) = line.strip_prefix("LISTENING ") {
            break addr.to_owned();
        }
    };
    (child, addr)
}

fn write_frame(w: &mut impl Write, payload: &str) {
    w.write_all(&(payload.len() as u32).to_le_bytes()).unwrap();
    w.write_all(payload.as_bytes()).unwrap();
    w.flush().unwrap();
}

fn sort_request(i: u64) -> String {
    let keys: Vec<String> = (0..6u64)
        .map(|j| ((i * 37 + j * 11) % 500).to_string())
        .collect();
    format!(
        r#"{{"req":"sort","deadline_ms":0,"keys":[{}]}}"#,
        keys.join(",")
    )
}

/// Parse the journal into (accepted ids, per-id terminal statuses,
/// duplicate-done ids).
fn audit_journal(path: &std::path::Path) -> (Vec<u64>, BTreeMap<u64, String>, Vec<u64>) {
    let text = std::fs::read_to_string(path).expect("journal readable");
    let mut accepted = Vec::new();
    let mut terminal: BTreeMap<u64, String> = BTreeMap::new();
    let mut duplicate_done = Vec::new();
    // Ignore at most one torn final line (the kill can land mid-write).
    let complete = match text.rfind('\n') {
        Some(i) => &text[..i],
        None => "",
    };
    for line in complete.lines() {
        let Ok(j) = Json::parse(line) else {
            // The service itself truncates torn tails on reopen and
            // errors on newline-terminated corruption; the audit just
            // skips anything unparseable.
            continue;
        };
        match j.get("record").and_then(Json::as_str) {
            Some("job") => {
                accepted.push(j.get("id").and_then(Json::as_u64).unwrap());
            }
            Some("batch") => {
                for l in parse_batch_record(&j).unwrap() {
                    if l.status == "done" || l.status == "failed" {
                        let seen_before = terminal.insert(l.id, l.status.clone()).is_some();
                        if seen_before && l.status == "done" {
                            duplicate_done.push(l.id);
                        }
                    }
                }
            }
            Some("shed") => {
                if let Some(id) = j.get("id").and_then(Json::as_u64) {
                    terminal.insert(id, "shed".into());
                }
            }
            _ => {}
        }
    }
    (accepted, terminal, duplicate_done)
}

#[test]
fn killed_mid_batch_then_restart_completes_every_accepted_job() {
    let dir = std::env::temp_dir().join(format!("mcb-serve-restart-{}", std::process::id()));
    std::fs::create_dir_all(&dir).unwrap();
    let journal = dir.join("journal.jsonl");
    let _ = std::fs::remove_file(&journal);

    // Phase 1: start the binary with an artificial pre-run delay so jobs
    // are journaled + queued but still mid-batch when we kill it.
    let (mut child, addr) = spawn_serve(&journal, &["--test-delay-ms", "400", "--batch-max", "4"]);
    let mut conn = TcpStream::connect(&addr).expect("connect");
    const SENT: u64 = 12;
    for i in 0..SENT {
        write_frame(&mut conn, &sort_request(i));
    }
    // Wait until every submission is journaled (admission journals
    // *before* queueing, so this converges fast), then kill mid-batch.
    let deadline = Instant::now() + Duration::from_secs(30);
    loop {
        let (accepted, _, _) = audit_journal(&journal);
        if accepted.len() as u64 == SENT {
            break;
        }
        assert!(Instant::now() < deadline, "jobs were never journaled");
        std::thread::sleep(Duration::from_millis(20));
    }
    child.kill().expect("kill mid-batch");
    let _ = child.wait();
    drop(conn);

    let (accepted, terminal_before, _) = audit_journal(&journal);
    assert_eq!(accepted.len() as u64, SENT);
    assert!(
        terminal_before.len() < accepted.len(),
        "kill must land before all jobs settled (settled {}/{})",
        terminal_before.len(),
        accepted.len()
    );

    // Phase 2: restart against the same journal in recover-only mode.
    // It must replay every open job to a terminal outcome and exit by
    // itself — a hang here is a recovery bug, hence the hard timeout.
    let mut recover = Command::new(BIN)
        .arg("--journal")
        .arg(&journal)
        .arg("--recover-only")
        .stdout(Stdio::piped())
        .stderr(Stdio::null())
        .spawn()
        .expect("spawn recovery");
    let deadline = Instant::now() + Duration::from_secs(60);
    let status = loop {
        if let Some(status) = recover.try_wait().expect("try_wait") {
            break status;
        }
        if Instant::now() >= deadline {
            let _ = recover.kill();
            panic!("recovery hung past 60s");
        }
        std::thread::sleep(Duration::from_millis(50));
    };
    assert!(status.success(), "recovery exited nonzero");
    let mut out = String::new();
    recover
        .stdout
        .take()
        .unwrap()
        .read_to_string(&mut out)
        .unwrap();
    assert!(
        out.contains("RECOVERED replayed="),
        "recovery must report its ledger, got {out:?}"
    );

    // Phase 3: audit the final journal. Every accepted id is terminal
    // (done, failed, or explicitly shed) and no id was done twice.
    let (accepted, terminal, duplicate_done) = audit_journal(&journal);
    for id in &accepted {
        assert!(
            terminal.contains_key(id),
            "job {id} was accepted but never reached a terminal record"
        );
    }
    assert!(
        duplicate_done.is_empty(),
        "jobs completed twice: {duplicate_done:?}"
    );

    // Phase 4: a second restart finds nothing open — recovery is
    // idempotent (a job replays only while its terminal record is
    // missing, so a journal with every id terminal replays nothing).
    let out = Command::new(BIN)
        .arg("--journal")
        .arg(&journal)
        .arg("--recover-only")
        .output()
        .expect("second recovery");
    let text = String::from_utf8_lossy(&out.stdout);
    assert!(
        text.contains("RECOVERED replayed=0 rejected=0"),
        "second recovery must be a no-op, got {text:?}"
    );

    let _ = std::fs::remove_file(&journal);
    let _ = std::fs::remove_dir(&dir);
}
