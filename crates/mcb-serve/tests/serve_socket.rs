//! End-to-end socket smoke: real binary, real TCP, length-prefixed
//! frames both ways. Sorts and selections come back correct and in
//! request order; an invalid request is refused with an explicit shed
//! response rather than a dropped connection.

use std::io::{BufRead, BufReader, Read, Write};
use std::net::TcpStream;
use std::process::{Command, Stdio};

use mcb_json::Json;

const BIN: &str = env!("CARGO_BIN_EXE_mcb-serve");

fn write_frame(w: &mut impl Write, payload: &str) {
    w.write_all(&(payload.len() as u32).to_le_bytes()).unwrap();
    w.write_all(payload.as_bytes()).unwrap();
    w.flush().unwrap();
}

fn read_frame(r: &mut impl Read) -> String {
    let mut len = [0u8; 4];
    r.read_exact(&mut len).unwrap();
    let mut buf = vec![0u8; u32::from_le_bytes(len) as usize];
    r.read_exact(&mut buf).unwrap();
    String::from_utf8(buf).unwrap()
}

#[test]
fn socket_round_trip_sort_select_and_shed() {
    let mut child = Command::new(BIN)
        .args(["--listen", "127.0.0.1:0"])
        .stdout(Stdio::piped())
        .stderr(Stdio::null())
        .spawn()
        .expect("spawn mcb-serve");
    let stdout = child.stdout.take().unwrap();
    let mut lines = BufReader::new(stdout).lines();
    let addr = loop {
        let line = lines.next().expect("stdout open").unwrap();
        if let Some(a) = line.strip_prefix("LISTENING ") {
            break a.to_owned();
        }
    };
    let mut conn = TcpStream::connect(&addr).unwrap();

    // Sort: response carries the keys descending.
    write_frame(
        &mut conn,
        r#"{"req":"sort","deadline_ms":30000,"keys":[5,900,23,1,77]}"#,
    );
    let resp = Json::parse(&read_frame(&mut conn)).unwrap();
    assert_eq!(resp.get("resp").and_then(Json::as_str), Some("done"));
    let keys: Vec<u64> = resp
        .get("keys")
        .and_then(Json::as_arr)
        .unwrap()
        .iter()
        .map(|v| v.as_u64().unwrap())
        .collect();
    assert_eq!(keys, [900, 77, 23, 5, 1]);

    // Select: the 2nd largest.
    write_frame(
        &mut conn,
        r#"{"req":"select","deadline_ms":30000,"rank":2,"keys":[40,9,133,62]}"#,
    );
    let resp = Json::parse(&read_frame(&mut conn)).unwrap();
    assert_eq!(resp.get("resp").and_then(Json::as_str), Some("done"));
    assert_eq!(resp.get("value").and_then(Json::as_u64), Some(62));

    // Invalid request: explicit shed, connection stays usable.
    write_frame(&mut conn, r#"{"req":"select","rank":9,"keys":[1,2]}"#);
    let resp = Json::parse(&read_frame(&mut conn)).unwrap();
    assert_eq!(resp.get("resp").and_then(Json::as_str), Some("shed"));
    assert!(resp
        .get("reason")
        .and_then(Json::as_str)
        .unwrap()
        .contains("rank"));

    // The connection survived the shed: one more good request.
    write_frame(
        &mut conn,
        r#"{"req":"sort","deadline_ms":30000,"keys":[2,1]}"#,
    );
    let resp = Json::parse(&read_frame(&mut conn)).unwrap();
    assert_eq!(resp.get("resp").and_then(Json::as_str), Some("done"));

    drop(conn);
    child.kill().unwrap();
    let _ = child.wait();
}
