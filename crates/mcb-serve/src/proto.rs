//! The wire protocol: length-prefixed [`mcb_json`] frames.
//!
//! Every frame is a 4-byte little-endian byte length followed by one
//! UTF-8 JSON object (integer-only, insertion-ordered — the repo's
//! deterministic JSON dialect). Requests and responses are paired in
//! order per connection: the `n`'th response answers the `n`'th request.
//!
//! # Requests
//!
//! | shape | meaning |
//! |-------|---------|
//! | `{"req":"sort","deadline_ms":D,"keys":[…]}` | sort `keys` descending |
//! | `{"req":"select","deadline_ms":D,"rank":R,"keys":[…]}` | the `R`'th largest of `keys` |
//!
//! `deadline_ms` is the per-attempt wall-clock budget (0 = none).
//!
//! # Responses
//!
//! | shape | meaning |
//! |-------|---------|
//! | `{"resp":"done","id":I,"keys":[…]}` | sorted payload |
//! | `{"resp":"done","id":I,"value":V}` | selected element |
//! | `{"resp":"shed","reason":"…"}` | admission refused the job |
//! | `{"resp":"failed","id":I,"attempts":A,"error":"…"}` | retries exhausted |

use crate::job::{JobResult, JobSpec, Outcome};
use mcb_json::Json;
use std::io::{self, Read, Write};

/// Frames above this byte length are rejected before allocation — the
/// service handles *small* jobs (see [`MAX_JOB_KEYS`](crate::job::MAX_JOB_KEYS)).
pub const MAX_FRAME_BYTES: u32 = 1 << 20;

/// Write one length-prefixed frame.
pub fn write_frame(w: &mut impl Write, payload: &str) -> io::Result<()> {
    let len = u32::try_from(payload.len())
        .map_err(|_| io::Error::new(io::ErrorKind::InvalidInput, "frame too large"))?;
    if len > MAX_FRAME_BYTES {
        return Err(io::Error::new(
            io::ErrorKind::InvalidInput,
            "frame too large",
        ));
    }
    w.write_all(&len.to_le_bytes())?;
    w.write_all(payload.as_bytes())?;
    w.flush()
}

/// Read one frame; `Ok(None)` on clean EOF at a frame boundary.
pub fn read_frame(r: &mut impl Read) -> io::Result<Option<String>> {
    let mut len_buf = [0u8; 4];
    match r.read_exact(&mut len_buf) {
        Ok(()) => {}
        Err(e) if e.kind() == io::ErrorKind::UnexpectedEof => return Ok(None),
        Err(e) => return Err(e),
    }
    let len = u32::from_le_bytes(len_buf);
    if len > MAX_FRAME_BYTES {
        return Err(io::Error::new(
            io::ErrorKind::InvalidData,
            format!("frame of {len} bytes exceeds cap {MAX_FRAME_BYTES}"),
        ));
    }
    let mut buf = vec![0u8; len as usize];
    r.read_exact(&mut buf)?;
    String::from_utf8(buf)
        .map(Some)
        .map_err(|e| io::Error::new(io::ErrorKind::InvalidData, e))
}

fn keys_field(j: &Json) -> Result<Vec<u64>, String> {
    j.get("keys")
        .and_then(Json::as_arr)
        .ok_or("missing keys array")?
        .iter()
        .map(|v| v.as_u64().ok_or_else(|| "non-integer key".to_owned()))
        .collect()
}

/// Parse a request frame into `(spec, deadline_ms)`.
pub fn parse_request(raw: &str) -> Result<(JobSpec, u64), String> {
    let j = Json::parse(raw)?;
    let deadline_ms = j.get("deadline_ms").and_then(Json::as_u64).unwrap_or(0);
    let spec = match j.get("req").and_then(Json::as_str) {
        Some("sort") => JobSpec::Sort {
            keys: keys_field(&j)?,
        },
        Some("select") => JobSpec::Select {
            keys: keys_field(&j)?,
            rank: j.get("rank").and_then(Json::as_u64).ok_or("missing rank")? as usize,
        },
        Some(other) => return Err(format!("unknown req {other:?}")),
        None => return Err("missing req field".into()),
    };
    spec.validate()?;
    Ok((spec, deadline_ms))
}

/// Render a request frame (client side of [`parse_request`]).
pub fn render_request(spec: &JobSpec, deadline_ms: u64) -> String {
    let base = Json::obj()
        .field("req", spec.op())
        .field("deadline_ms", deadline_ms);
    match spec {
        JobSpec::Sort { keys } => base.field("keys", Json::from_u64s(keys.iter().copied())),
        JobSpec::Select { keys, rank } => base
            .field("rank", *rank)
            .field("keys", Json::from_u64s(keys.iter().copied())),
    }
    .render()
}

/// Render an outcome as a response frame; `id` is the journal id when the
/// job was admitted.
pub fn render_response(id: Option<u64>, outcome: &Outcome) -> String {
    match outcome {
        Outcome::Done(result) => {
            let base = Json::obj().field("resp", "done").field("id", id);
            match result {
                JobResult::Sorted(keys) => {
                    base.field("keys", Json::from_u64s(keys.iter().copied()))
                }
                JobResult::Selected(v) => base.field("value", *v),
            }
        }
        Outcome::Shed { reason } => Json::obj()
            .field("resp", "shed")
            .field("reason", reason.as_str()),
        Outcome::Failed { attempts, error } => Json::obj()
            .field("resp", "failed")
            .field("id", id)
            .field("attempts", *attempts)
            .field("error", error.as_str()),
    }
    .render()
}

/// Parse a response frame back into an [`Outcome`] (client side).
pub fn parse_response(raw: &str) -> Result<(Option<u64>, Outcome), String> {
    let j = Json::parse(raw)?;
    let id = j.get("id").and_then(Json::as_u64);
    let outcome = match j.get("resp").and_then(Json::as_str) {
        Some("done") => {
            if let Some(v) = j.get("value").and_then(Json::as_u64) {
                Outcome::Done(JobResult::Selected(v))
            } else {
                Outcome::Done(JobResult::Sorted(keys_field(&j)?))
            }
        }
        Some("shed") => Outcome::Shed {
            reason: j
                .get("reason")
                .and_then(Json::as_str)
                .ok_or("shed without reason")?
                .to_owned(),
        },
        Some("failed") => Outcome::Failed {
            attempts: j
                .get("attempts")
                .and_then(Json::as_u64)
                .ok_or("failed without attempts")? as u32,
            error: j
                .get("error")
                .and_then(Json::as_str)
                .ok_or("failed without error")?
                .to_owned(),
        },
        other => return Err(format!("unknown resp {other:?}")),
    };
    Ok((id, outcome))
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn frames_round_trip_over_a_buffer() {
        let mut buf = Vec::new();
        write_frame(&mut buf, "{\"a\":1}").unwrap();
        write_frame(&mut buf, "{\"b\":2}").unwrap();
        let mut r = buf.as_slice();
        assert_eq!(read_frame(&mut r).unwrap().as_deref(), Some("{\"a\":1}"));
        assert_eq!(read_frame(&mut r).unwrap().as_deref(), Some("{\"b\":2}"));
        assert_eq!(read_frame(&mut r).unwrap(), None);
    }

    #[test]
    fn oversized_frames_are_rejected() {
        let mut buf = Vec::new();
        buf.extend_from_slice(&(MAX_FRAME_BYTES + 1).to_le_bytes());
        let err = read_frame(&mut buf.as_slice()).unwrap_err();
        assert_eq!(err.kind(), io::ErrorKind::InvalidData);
    }

    #[test]
    fn requests_round_trip() {
        for spec in [
            JobSpec::Sort {
                keys: vec![9, 1, 5],
            },
            JobSpec::Select {
                keys: vec![4, 8, 2],
                rank: 2,
            },
        ] {
            let raw = render_request(&spec, 250);
            let (back, deadline) = parse_request(&raw).unwrap();
            assert_eq!(back, spec);
            assert_eq!(deadline, 250);
        }
    }

    #[test]
    fn responses_round_trip() {
        for (id, outcome) in [
            (Some(7), Outcome::Done(JobResult::Sorted(vec![9, 5, 1]))),
            (Some(8), Outcome::Done(JobResult::Selected(42))),
            (
                None,
                Outcome::Shed {
                    reason: "queue-full".into(),
                },
            ),
            (
                Some(9),
                Outcome::Failed {
                    attempts: 3,
                    error: "deadline".into(),
                },
            ),
        ] {
            let raw = render_response(id, &outcome);
            let (got_id, got) = parse_response(&raw).unwrap();
            assert_eq!(got_id, id);
            assert_eq!(got, outcome);
        }
    }

    #[test]
    fn malformed_requests_surface_errors() {
        assert!(parse_request("{\"req\":\"sort\",\"keys\":[]}").is_err());
        assert!(parse_request("{\"req\":\"nope\",\"keys\":[1]}").is_err());
        assert!(parse_request("{\"keys\":[1]}").is_err());
        assert!(parse_request("{\"req\":\"select\",\"keys\":[1]}").is_err());
        assert!(parse_request("not json").is_err());
    }
}
