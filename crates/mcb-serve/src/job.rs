//! Job specifications, outcomes, and the shaping of a job onto the
//! batched MCB machine.

use mcb_algos::batch::{BatchOutput, BatchPart};
use mcb_algos::heal::{ColumnsortProgram, SelectProgram};
use mcb_net::NetError;
use std::sync::mpsc::Sender;
use std::time::Instant;

/// Largest accepted key count per job — this is a *small-job* service
/// (the ROADMAP's millions-of-small-jobs regime); bulk data belongs on
/// the offline drivers.
pub const MAX_JOB_KEYS: usize = 4096;

/// What a client asked for.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum JobSpec {
    /// Sort `keys` descending (§5 Columnsort under the hood).
    Sort {
        /// The keys to sort (non-empty, at most [`MAX_JOB_KEYS`]).
        keys: Vec<u64>,
    },
    /// The `rank`'th largest of `keys`, 1-based (§8 filtering selection).
    Select {
        /// The candidate keys (non-empty, at most [`MAX_JOB_KEYS`]).
        keys: Vec<u64>,
        /// 1-based rank, `1..=keys.len()`.
        rank: usize,
    },
}

impl JobSpec {
    /// Validate the spec against the service's small-job envelope.
    pub fn validate(&self) -> Result<(), String> {
        let keys = match self {
            JobSpec::Sort { keys } => keys,
            JobSpec::Select { keys, .. } => keys,
        };
        if keys.is_empty() {
            return Err("job has no keys".into());
        }
        if keys.len() > MAX_JOB_KEYS {
            return Err(format!(
                "job has {} keys, cap is {MAX_JOB_KEYS}",
                keys.len()
            ));
        }
        if let JobSpec::Select { keys, rank } = self {
            if *rank < 1 || *rank > keys.len() {
                return Err(format!("rank {rank} out of 1..={}", keys.len()));
            }
        }
        Ok(())
    }

    /// The wire name of the operation (journal + protocol vocabulary).
    pub fn op(&self) -> &'static str {
        match self {
            JobSpec::Sort { .. } => "sort",
            JobSpec::Select { .. } => "select",
        }
    }

    /// Shape this job as a tenant part of a [`BatchProgram`]
    /// (see [`mcb_algos::batch`]): sorts become two-column Columnsort
    /// instances (`k₀ = 2`, the smallest legal §5.1 shape), selections
    /// are dealt over up to three candidate lists.
    ///
    /// [`BatchProgram`]: mcb_algos::batch::BatchProgram
    pub fn to_part(&self) -> Result<BatchPart<u64>, NetError> {
        match self {
            JobSpec::Sort { keys } => {
                let k0 = 2usize;
                // m even (k₀ | m) and ≥ 2 (= k₀(k₀−1)), columns cover n.
                let m = keys.len().div_ceil(k0).max(2).next_multiple_of(k0);
                let cols: Vec<Vec<Option<u64>>> = (0..k0)
                    .map(|c| (0..m).map(|r| keys.get(c * m + r).copied()).collect())
                    .collect();
                Ok(BatchPart::Sort(ColumnsortProgram::new(m, &cols)?))
            }
            JobSpec::Select { keys, rank } => {
                let parts = keys.len().min(3);
                let chunk = keys.len().div_ceil(parts);
                let lists: Vec<Vec<u64>> = keys.chunks(chunk).map(<[_]>::to_vec).collect();
                Ok(BatchPart::Select(SelectProgram::new(lists, *rank)?))
            }
        }
    }

    /// Decode this job's slot of a finished batch output back into a
    /// client-facing result.
    pub fn decode(&self, out: &BatchOutput<u64>) -> JobResult {
        match (self, out) {
            (JobSpec::Sort { .. }, BatchOutput::Sorted(cols)) => {
                JobResult::Sorted(cols.iter().flatten().filter_map(|x| *x).collect())
            }
            (JobSpec::Select { .. }, BatchOutput::Selected(v)) => JobResult::Selected(*v),
            _ => panic!("protocol error: batch slot kind does not match job spec"),
        }
    }
}

/// A completed job's payload.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum JobResult {
    /// The keys, descending (sort jobs).
    Sorted(Vec<u64>),
    /// The selected element (select jobs).
    Selected(u64),
}

impl JobResult {
    /// Order-sensitive wrapping-sum checksum, journaled with `done`
    /// statuses so recovery audits can spot result drift without storing
    /// full payloads.
    pub fn checksum(&self) -> u64 {
        match self {
            JobResult::Sorted(keys) => keys.iter().fold(0u64, |acc, &k| {
                acc.wrapping_mul(0x100_0000_01b3).wrapping_add(k)
            }),
            JobResult::Selected(v) => *v,
        }
    }
}

/// Terminal answer for one job — every admitted job gets exactly one.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum Outcome {
    /// The job ran to completion before its deadline.
    Done(JobResult),
    /// Admission control refused the job (never admitted, or rejected
    /// during journal recovery).
    Shed {
        /// Why (`"queue-full"`, `"invalid: …"`, `"recovered-invalid"`).
        reason: String,
    },
    /// The job was admitted but every attempt missed its deadline or
    /// landed in a batch that could not heal.
    Failed {
        /// Attempts consumed (bounded by the service's `max_attempts`).
        attempts: u32,
        /// The last attempt's error.
        error: String,
    },
}

/// An admitted job in flight through the service.
#[derive(Debug)]
pub struct Job {
    /// Journal-stable id (monotonic across restarts).
    pub id: u64,
    /// What to compute.
    pub spec: JobSpec,
    /// Per-attempt wall-clock budget in milliseconds (`0` = no deadline).
    pub deadline_ms: u64,
    /// When the current attempt entered the queue.
    pub accepted: Instant,
    /// Attempts already consumed (0 for a fresh job).
    pub attempts: u32,
    /// Where to deliver the outcome; `None` for journal-recovered jobs
    /// whose client is gone (the outcome still reaches the journal).
    pub reply: Option<Sender<(u64, Outcome)>>,
}

impl Job {
    /// True when the current attempt's deadline has already passed.
    pub fn deadline_missed(&self, now: Instant) -> bool {
        self.deadline_ms > 0
            && now.duration_since(self.accepted).as_millis() as u64 > self.deadline_ms
    }

    /// Deliver `outcome` to the waiting client, if any is still listening.
    pub fn respond(&self, outcome: Outcome) {
        if let Some(tx) = &self.reply {
            let _ = tx.send((self.id, outcome));
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use mcb_algos::batch::BatchProgram;
    use mcb_algos::heal::run_program_offline;

    #[test]
    fn sort_shapes_round_trip_for_awkward_sizes() {
        for n in [1usize, 2, 3, 4, 5, 7, 8, 16, 33] {
            let keys: Vec<u64> = (0..n as u64)
                .map(|i| i.wrapping_mul(2654435761) % 97)
                .collect();
            let spec = JobSpec::Sort { keys: keys.clone() };
            spec.validate().unwrap();
            let prog = BatchProgram::new(vec![spec.to_part().unwrap()]).unwrap();
            let (out, _) = run_program_offline(&prog);
            let JobResult::Sorted(got) = spec.decode(&out[0]) else {
                panic!("sort must decode to Sorted");
            };
            let mut want = keys;
            want.sort_unstable_by(|a, b| b.cmp(a));
            assert_eq!(got, want, "n={n}");
        }
    }

    #[test]
    fn select_shapes_answer_every_rank() {
        let keys: Vec<u64> = vec![41, 3, 88, 14, 5, 61, 19];
        let mut sorted = keys.clone();
        sorted.sort_unstable_by(|a, b| b.cmp(a));
        for rank in 1..=keys.len() {
            let spec = JobSpec::Select {
                keys: keys.clone(),
                rank,
            };
            spec.validate().unwrap();
            let prog = BatchProgram::new(vec![spec.to_part().unwrap()]).unwrap();
            let (out, _) = run_program_offline(&prog);
            assert_eq!(
                spec.decode(&out[0]),
                JobResult::Selected(sorted[rank - 1]),
                "rank {rank}"
            );
        }
    }

    #[test]
    fn validation_rejects_bad_specs() {
        assert!(JobSpec::Sort { keys: vec![] }.validate().is_err());
        assert!(JobSpec::Select {
            keys: vec![1, 2],
            rank: 3
        }
        .validate()
        .is_err());
        assert!(JobSpec::Select {
            keys: vec![1, 2],
            rank: 0
        }
        .validate()
        .is_err());
        assert!(JobSpec::Sort {
            keys: vec![0; MAX_JOB_KEYS + 1]
        }
        .validate()
        .is_err());
    }
}
