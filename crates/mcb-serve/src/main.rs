//! The `mcb-serve` binary: a socket front for the batched, self-healing
//! job service (see the library docs in `lib.rs`).
//!
//! ```text
//! mcb-serve [--listen ADDR] [--journal PATH] [--k N] [--queue-depth N]
//!           [--batch-max N] [--max-attempts N] [--backend NAME]
//!           [--chaos-seed S] [--chaos-deaths N] [--chaos-crashes N]
//!           [--chaos-drops N] [--chaos-bursts N] [--test-delay-ms N]
//!           [--self-test] [--recover-only]
//! ```
//!
//! Prints `LISTENING <addr>` once the socket is bound (the smoke tests
//! and the restart test scrape this line). `--self-test` runs an
//! in-process smoke batch (no socket) and exits 0/1; `--recover-only`
//! replays the journal's open jobs to terminal outcomes and exits.

use mcb_net::{Backend, ChaosOpts};
use mcb_serve::job::{JobSpec, Outcome};
use mcb_serve::{serve_tcp, ChaosPlanCfg, ServeConfig, Service, Submit};
use std::io::Write;
use std::net::TcpListener;
use std::path::PathBuf;
use std::process::ExitCode;
use std::sync::Arc;

struct Args {
    listen: String,
    journal: Option<PathBuf>,
    cfg: ServeConfig,
    self_test: bool,
    recover_only: bool,
}

fn usage() -> ! {
    eprintln!(
        "usage: mcb-serve [--listen ADDR] [--journal PATH] [--k N] [--queue-depth N] \
         [--batch-max N] [--max-attempts N] [--backend threaded|pooled|vector] \
         [--chaos-seed S] [--chaos-horizon N] [--chaos-deaths N] [--chaos-crashes N] \
         [--chaos-drops N] [--chaos-bursts N] [--test-delay-ms N] [--self-test] [--recover-only]"
    );
    std::process::exit(2)
}

fn parse_args() -> Args {
    let mut args = Args {
        listen: "127.0.0.1:0".into(),
        journal: None,
        cfg: ServeConfig::default(),
        self_test: false,
        recover_only: false,
    };
    let mut chaos_seed: Option<u64> = None;
    // Horizon defaults small so faults land *inside* short batch runs
    // (a death scheduled past the last cycle is a no-op).
    let mut chaos_opts = ChaosOpts {
        horizon: 200,
        deaths: 0,
        drops: 2,
        corrupts: 1,
        stalls: 0,
        max_stall: 0,
        crashes: 0,
        bursts: 0,
        burst_len: 0,
    };
    let argv: Vec<String> = std::env::args().skip(1).collect();
    let mut i = 0;
    let value = |i: &mut usize| -> String {
        *i += 1;
        argv.get(*i).cloned().unwrap_or_else(|| usage())
    };
    while i < argv.len() {
        match argv[i].as_str() {
            "--listen" => args.listen = value(&mut i),
            "--journal" => args.journal = Some(PathBuf::from(value(&mut i))),
            "--k" => args.cfg.k = value(&mut i).parse().unwrap_or_else(|_| usage()),
            "--queue-depth" => {
                args.cfg.queue_depth = value(&mut i).parse().unwrap_or_else(|_| usage());
            }
            "--batch-max" => {
                args.cfg.batch_max = value(&mut i).parse().unwrap_or_else(|_| usage());
            }
            "--max-attempts" => {
                args.cfg.max_attempts = value(&mut i).parse().unwrap_or_else(|_| usage());
            }
            "--backend" => {
                args.cfg.backend = match value(&mut i).as_str() {
                    "threaded" => Backend::Threaded,
                    "pooled" => Backend::Pooled,
                    "vector" => Backend::Vector,
                    "auto" => Backend::Auto,
                    _ => usage(),
                };
            }
            "--chaos-seed" => chaos_seed = Some(value(&mut i).parse().unwrap_or_else(|_| usage())),
            "--chaos-horizon" => {
                chaos_opts.horizon = value(&mut i).parse().unwrap_or_else(|_| usage());
            }
            "--chaos-deaths" => {
                chaos_opts.deaths = value(&mut i).parse().unwrap_or_else(|_| usage());
            }
            "--chaos-crashes" => {
                chaos_opts.crashes = value(&mut i).parse().unwrap_or_else(|_| usage());
            }
            "--chaos-drops" => {
                chaos_opts.drops = value(&mut i).parse().unwrap_or_else(|_| usage());
            }
            "--chaos-bursts" => {
                chaos_opts.bursts = value(&mut i).parse().unwrap_or_else(|_| usage());
                chaos_opts.burst_len = 4;
            }
            "--test-delay-ms" => {
                args.cfg.test_delay_ms = value(&mut i).parse().unwrap_or_else(|_| usage());
            }
            "--self-test" => args.self_test = true,
            "--recover-only" => args.recover_only = true,
            _ => usage(),
        }
        i += 1;
    }
    if let Some(seed) = chaos_seed {
        args.cfg.chaos = Some(ChaosPlanCfg {
            seed,
            opts: chaos_opts,
        });
    }
    args
}

/// In-process smoke: a mixed burst of jobs must all terminate correctly.
fn self_test(cfg: ServeConfig, journal: Option<PathBuf>) -> ExitCode {
    let service = match Service::start(cfg, journal.as_deref()) {
        Ok(s) => s,
        Err(e) => {
            eprintln!("SELF-TEST start failed: {e}");
            return ExitCode::FAILURE;
        }
    };
    let mut receivers = Vec::new();
    for i in 0..20u64 {
        let keys: Vec<u64> = (0..8).map(|j| (i * 31 + j) * 2654435761 % 997).collect();
        let spec = if i % 2 == 0 {
            JobSpec::Sort { keys }
        } else {
            let rank = (i as usize % 8) + 1;
            JobSpec::Select { keys, rank }
        };
        match service.submit(spec.clone(), 30_000) {
            Submit::Admitted { id, rx } => receivers.push((id, spec, rx)),
            Submit::Shed { reason } => {
                eprintln!("SELF-TEST shed at submit: {reason}");
                return ExitCode::FAILURE;
            }
        }
    }
    for (id, spec, rx) in receivers {
        match rx.recv() {
            Ok((_, Outcome::Done(result))) => {
                if let (JobSpec::Sort { keys }, mcb_serve::JobResult::Sorted(got)) =
                    (&spec, &result)
                {
                    let mut want = keys.clone();
                    want.sort_unstable_by(|a, b| b.cmp(a));
                    if got != &want {
                        eprintln!("SELF-TEST job {id}: wrong sort result");
                        return ExitCode::FAILURE;
                    }
                }
            }
            other => {
                eprintln!("SELF-TEST job {id}: unexpected outcome {other:?}");
                return ExitCode::FAILURE;
            }
        }
    }
    let stats = service.shutdown();
    println!(
        "SELF-TEST OK done={} failed={} shed={} batches={} cycles={}",
        stats.done, stats.failed, stats.shed, stats.batches, stats.cycles
    );
    ExitCode::SUCCESS
}

fn main() -> ExitCode {
    let args = parse_args();
    if args.self_test {
        return self_test(args.cfg, args.journal);
    }
    if args.recover_only {
        let service = match Service::start(args.cfg, args.journal.as_deref()) {
            Ok(s) => s,
            Err(e) => {
                eprintln!("recovery failed: {e}");
                return ExitCode::FAILURE;
            }
        };
        let recovery = service.recovery;
        let stats = service.shutdown();
        println!(
            "RECOVERED replayed={} rejected={} terminal={} done={} failed={}",
            recovery.replayed,
            recovery.rejected,
            recovery.already_terminal,
            stats.done,
            stats.failed
        );
        return ExitCode::SUCCESS;
    }
    let listener = match TcpListener::bind(&args.listen) {
        Ok(l) => l,
        Err(e) => {
            eprintln!("bind {}: {e}", args.listen);
            return ExitCode::FAILURE;
        }
    };
    let addr = listener.local_addr().expect("bound socket has an address");
    let service = match Service::start(args.cfg, args.journal.as_deref()) {
        Ok(s) => Arc::new(s),
        Err(e) => {
            eprintln!("start failed: {e}");
            return ExitCode::FAILURE;
        }
    };
    if service.recovery.replayed + service.recovery.rejected > 0 {
        println!(
            "RECOVERY replayed={} rejected={}",
            service.recovery.replayed, service.recovery.rejected
        );
    }
    println!("LISTENING {addr}");
    let _ = std::io::stdout().flush();
    match serve_tcp(service, listener) {
        Ok(()) => ExitCode::SUCCESS,
        Err(e) => {
            eprintln!("accept loop failed: {e}");
            ExitCode::FAILURE
        }
    }
}
