//! Journal record builders and parsers — the service's third of the
//! JSONL schema (v5: `job` / `batch` / `shed` records, alongside the
//! run-report records of [`mcb_net::export`]).
//!
//! Same dialect rules as the exporter: [`mcb_json`] objects with
//! insertion-ordered keys and integers only, so every record re-renders
//! byte-identically after a parse — the property `tests/jsonl_roundtrip.rs`
//! pins and the recovery scanner relies on.

use crate::job::{JobResult, JobSpec};
use mcb_json::Json;

/// First line of every journal: names the stream and pins the schema
/// ([`mcb_net::export::JSONL_SCHEMA_VERSION`]).
pub fn header_record() -> Json {
    Json::obj()
        .field("record", "serve_journal")
        .field("schema", mcb_net::export::JSONL_SCHEMA_VERSION)
}

/// A `job` record: written at admission, before the job is queued. It
/// carries the *full spec*, so a restarted service can re-run the job
/// from the journal alone.
pub fn job_record(id: u64, spec: &JobSpec, deadline_ms: u64) -> Json {
    let rank = match spec {
        JobSpec::Sort { .. } => None,
        JobSpec::Select { rank, .. } => Some(*rank as u64),
    };
    let keys = match spec {
        JobSpec::Sort { keys } => keys,
        JobSpec::Select { keys, .. } => keys,
    };
    Json::obj()
        .field("record", "job")
        .field("id", id)
        .field("op", spec.op())
        .field("deadline_ms", deadline_ms)
        .field("rank", rank)
        .field("keys", Json::from_u64s(keys.iter().copied()))
}

/// Parse a `job` record back into `(id, spec, deadline_ms)`.
pub fn parse_job_record(j: &Json) -> Result<(u64, JobSpec, u64), String> {
    let id = j.get("id").and_then(Json::as_u64).ok_or("job without id")?;
    let deadline_ms = j
        .get("deadline_ms")
        .and_then(Json::as_u64)
        .ok_or("job without deadline_ms")?;
    let keys: Vec<u64> = j
        .get("keys")
        .and_then(Json::as_arr)
        .ok_or("job without keys")?
        .iter()
        .map(|v| v.as_u64().ok_or_else(|| "non-integer key".to_owned()))
        .collect::<Result<_, _>>()?;
    let spec = match j.get("op").and_then(Json::as_str) {
        Some("sort") => JobSpec::Sort { keys },
        Some("select") => JobSpec::Select {
            keys,
            rank: j
                .get("rank")
                .and_then(Json::as_u64)
                .ok_or("select job without rank")? as usize,
        },
        other => return Err(format!("unknown job op {other:?}")),
    };
    Ok((id, spec, deadline_ms))
}

/// One job's terminal (or retry) line inside a [`batch_record`].
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct BatchJobLine {
    /// The job's journal id.
    pub id: u64,
    /// `"done"`, `"retry"`, or `"failed"` — only `done`/`failed` are
    /// terminal; a `retry` job reappears in a later batch.
    pub status: String,
    /// Attempts consumed *including* this one.
    pub attempts: u32,
    /// Cycles attributed to this tenant's phases (`job{i}:` prefix sums
    /// over the run's [`PhaseMetrics`](mcb_net::PhaseMetrics)).
    pub cycles: u64,
    /// Result checksum for `done` jobs ([`JobResult::checksum`]), else 0.
    pub checksum: u64,
}

/// A `batch` record: one per executed batch, carrying the run's shape and
/// cost plus every member job's status. A job is *terminal in the
/// journal* once some batch line says `done`/`failed` (or a `shed` record
/// names it).
pub fn batch_record(
    batch: u64,
    p: usize,
    k: usize,
    cycles: u64,
    epochs: u64,
    error: Option<&str>,
    jobs: &[BatchJobLine],
) -> Json {
    let lines: Vec<Json> = jobs
        .iter()
        .map(|l| {
            Json::obj()
                .field("id", l.id)
                .field("status", l.status.as_str())
                .field("attempts", l.attempts)
                .field("cycles", l.cycles)
                .field("checksum", l.checksum)
        })
        .collect();
    Json::obj()
        .field("record", "batch")
        .field("batch", batch)
        .field("p", p)
        .field("k", k)
        .field("cycles", cycles)
        .field("epochs", epochs)
        .field("error", error)
        .field("jobs", Json::Arr(lines))
}

/// Parse a `batch` record's job lines back.
pub fn parse_batch_record(j: &Json) -> Result<Vec<BatchJobLine>, String> {
    j.get("jobs")
        .and_then(Json::as_arr)
        .ok_or("batch without jobs")?
        .iter()
        .map(|line| {
            Ok(BatchJobLine {
                id: line.get("id").and_then(Json::as_u64).ok_or("job line id")?,
                status: line
                    .get("status")
                    .and_then(Json::as_str)
                    .ok_or("job line status")?
                    .to_owned(),
                attempts: line
                    .get("attempts")
                    .and_then(Json::as_u64)
                    .ok_or("job line attempts")? as u32,
                cycles: line
                    .get("cycles")
                    .and_then(Json::as_u64)
                    .ok_or("job line cycles")?,
                checksum: line
                    .get("checksum")
                    .and_then(Json::as_u64)
                    .ok_or("job line checksum")?,
            })
        })
        .collect()
}

/// A `shed` record: admission (or recovery) explicitly refused work.
/// `id` is `None` when the job was never admitted (no journal id exists);
/// recovery rejections carry the original id.
pub fn shed_record(id: Option<u64>, reason: &str, depth: usize) -> Json {
    Json::obj()
        .field("record", "shed")
        .field("id", id)
        .field("reason", reason)
        .field("depth", depth)
}

/// Parse a `shed` record back into `(id, reason, depth)`.
pub fn parse_shed_record(j: &Json) -> Result<(Option<u64>, String, usize), String> {
    let reason = j
        .get("reason")
        .and_then(Json::as_str)
        .ok_or("shed without reason")?
        .to_owned();
    let depth = j
        .get("depth")
        .and_then(Json::as_u64)
        .ok_or("shed without depth")? as usize;
    Ok((j.get("id").and_then(Json::as_u64), reason, depth))
}

/// Convenience: checksum for a `done` line (0 for non-done statuses).
pub fn done_checksum(result: &JobResult) -> u64 {
    result.checksum()
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn job_records_round_trip_for_both_ops() {
        for spec in [
            JobSpec::Sort {
                keys: vec![5, 1, 9],
            },
            JobSpec::Select {
                keys: vec![3, 7, 2],
                rank: 2,
            },
        ] {
            let rec = job_record(41, &spec, 800);
            let raw = rec.render();
            let back = Json::parse(&raw).unwrap();
            assert_eq!(back.render(), raw, "byte-identical re-render");
            let (id, got, deadline) = parse_job_record(&back).unwrap();
            assert_eq!((id, got, deadline), (41, spec, 800));
        }
    }

    #[test]
    fn batch_records_round_trip() {
        let lines = vec![
            BatchJobLine {
                id: 1,
                status: "done".into(),
                attempts: 1,
                cycles: 96,
                checksum: 1234,
            },
            BatchJobLine {
                id: 2,
                status: "retry".into(),
                attempts: 2,
                cycles: 0,
                checksum: 0,
            },
        ];
        let rec = batch_record(3, 5, 3, 480, 1, Some("unrecoverable"), &lines);
        let raw = rec.render();
        let back = Json::parse(&raw).unwrap();
        assert_eq!(back.render(), raw);
        assert_eq!(parse_batch_record(&back).unwrap(), lines);
    }

    #[test]
    fn shed_records_round_trip() {
        for id in [None, Some(17)] {
            let rec = shed_record(id, "queue-full", 256);
            let raw = rec.render();
            let back = Json::parse(&raw).unwrap();
            assert_eq!(back.render(), raw);
            assert_eq!(
                parse_shed_record(&back).unwrap(),
                (id, "queue-full".to_owned(), 256)
            );
        }
    }
}
