//! The batcher: packs admitted jobs into shared self-healing MCB runs
//! and owns the deadline/retry state machine.
//!
//! One batch = one [`BatchProgram`] on one fresh `MCB(p, k)` instance,
//! `p` sized to the batch's total role count (one processor-group per
//! tenant job) and run under [`SelfHealing`] — the same no-oracle stack
//! as the offline drivers, so an attached chaos plan degrades throughput
//! by the §2 lemma's `⌈k/k′⌉` factor instead of losing jobs.
//!
//! Per-job guarantees (asserted by `tests/serve_soak.rs`):
//!
//! * a job that completes before its deadline gets [`Outcome::Done`];
//! * a job whose attempt misses its deadline or lands in a batch that
//!   errors ([`NetError::Unrecoverable`](mcb_net::NetError::Unrecoverable) / [`NetError::EpochDiverged`](mcb_net::NetError::EpochDiverged) /
//!   [`NetError::Stalled`](mcb_net::NetError::Stalled) / budget exhaustion) is re-queued onto a
//!   *fresh* instance after seeded jittered exponential backoff;
//! * after `max_attempts` the job terminates with a typed
//!   [`Outcome::Failed`] — never silence, never a hang.
//!
//! Outcomes are delivered to clients *before* the batch record is
//! journaled, so journal recovery is at-least-once (see
//! [`journal`](crate::journal) for why that is safe). A batch-record
//! append failure is counted and, once persistent, closes intake —
//! degrading like admission's fail-closed path instead of silently
//! accumulating unjournaled work.

use crate::job::{Job, Outcome};
use crate::journal::Journal;
use crate::records::{batch_record, BatchJobLine};
use crate::service::Counters;
use mcb_algos::batch::BatchProgram;
use mcb_algos::heal::{HealProgram, SelfHealing};
use mcb_net::{Backend, ChaosOpts, FaultPlan, RunMonitor};
use mcb_rng::Rng64;
use std::sync::atomic::{AtomicBool, AtomicUsize, Ordering};
use std::sync::mpsc::{Receiver, RecvTimeoutError};
use std::sync::Arc;
use std::time::{Duration, Instant};

/// Seeded chaos injected into every batch run.
#[derive(Debug, Clone)]
pub struct ChaosPlanCfg {
    /// Base seed; each batch derives its own plan seed from this and the
    /// batch sequence number, so restarts replay the same storm sequence.
    pub seed: u64,
    /// The fault mix per batch (deaths capped at `k − 1` by
    /// [`FaultPlan::random`]'s usable-slot thinning).
    pub opts: ChaosOpts,
}

/// Service tuning knobs (see field docs; defaults suit tests and the
/// bench's small-job regime).
#[derive(Debug, Clone)]
pub struct ServeConfig {
    /// Admission bound: jobs beyond this queue depth are shed.
    pub queue_depth: usize,
    /// Most jobs packed into one batch instance.
    pub batch_max: usize,
    /// Attempts per job before a typed `Failed` (≥ 1).
    pub max_attempts: u32,
    /// Backoff base: attempt `a` waits ~`base · 2^(a−1)` ms, jittered.
    pub backoff_base_ms: u64,
    /// Backoff ceiling in milliseconds.
    pub backoff_cap_ms: u64,
    /// Channels per batch instance.
    pub k: usize,
    /// Execution backend for batch runs ([`Backend::Vector`] by default —
    /// the struct-of-arrays engine sized for wide batches).
    pub backend: Backend,
    /// Livelock watchdog for batch runs (cycles; see
    /// [`SelfHealing::stall_window`]).
    pub stall_window: u64,
    /// Runaway cycle budget for batch runs.
    pub cycle_budget: u64,
    /// Seed for retry jitter.
    pub seed: u64,
    /// Chaos injection, when present.
    pub chaos: Option<ChaosPlanCfg>,
    /// Artificial pre-run delay per batch (test hook: makes "kill the
    /// service mid-batch" deterministic in the restart test).
    pub test_delay_ms: u64,
}

impl Default for ServeConfig {
    fn default() -> Self {
        ServeConfig {
            queue_depth: 256,
            batch_max: 16,
            max_attempts: 3,
            backoff_base_ms: 2,
            backoff_cap_ms: 250,
            k: 3,
            backend: Backend::Vector,
            stall_window: 100_000,
            cycle_budget: 50_000_000,
            seed: 0x5e17e,
            chaos: None,
            test_delay_ms: 0,
        }
    }
}

/// Consecutive batch-record append failures tolerated before the
/// batcher closes intake (shared `accepting` flag) rather than keep
/// executing work it cannot journal.
const JOURNAL_FAIL_LIMIT: u32 = 3;

/// The batcher thread's state.
pub(crate) struct Batcher {
    pub cfg: ServeConfig,
    pub rx: Receiver<Job>,
    pub depth: Arc<AtomicUsize>,
    pub journal: Option<Arc<Journal>>,
    pub counters: Arc<Counters>,
    pub monitor: RunMonitor,
    /// Shared with [`Service`](crate::service::Service): cleared here
    /// when batch-record appends fail persistently.
    pub accepting: Arc<AtomicBool>,
    pub batch_seq: u64,
    /// Jobs awaiting their backoff deadline.
    pub retries: Vec<(Instant, Job)>,
    /// Consecutive batch-record append failures (reset on success).
    pub journal_fail_streak: u32,
}

impl Batcher {
    /// Run until the intake side hangs up *and* every retry has drained.
    pub fn run(mut self) {
        loop {
            let mut ready: Vec<Job> = Vec::new();
            let now = Instant::now();
            let mut i = 0;
            while i < self.retries.len() {
                if self.retries[i].0 <= now && ready.len() < self.cfg.batch_max {
                    ready.push(self.retries.swap_remove(i).1);
                } else {
                    i += 1;
                }
            }
            let mut disconnected = false;
            if ready.is_empty() {
                // Block for fresh intake until the earliest retry is due.
                let timeout = self
                    .retries
                    .iter()
                    .map(|(due, _)| due.saturating_duration_since(now))
                    .min()
                    .unwrap_or(Duration::from_millis(50));
                match self.rx.recv_timeout(timeout.max(Duration::from_millis(1))) {
                    Ok(job) => {
                        self.depth.fetch_sub(1, Ordering::SeqCst);
                        ready.push(job);
                    }
                    Err(RecvTimeoutError::Timeout) => {}
                    Err(RecvTimeoutError::Disconnected) => {
                        disconnected = true;
                        // Intake is gone, so nothing can arrive before
                        // the earliest retry is due; sleep that window
                        // out instead of spinning on the dead channel.
                        if !self.retries.is_empty() {
                            std::thread::sleep(timeout.max(Duration::from_millis(1)));
                        }
                    }
                }
            }
            // Top the batch up without waiting.
            while ready.len() < self.cfg.batch_max {
                match self.rx.try_recv() {
                    Ok(job) => {
                        self.depth.fetch_sub(1, Ordering::SeqCst);
                        ready.push(job);
                    }
                    Err(_) => break,
                }
            }
            if !ready.is_empty() {
                self.run_batch(ready);
            } else if disconnected && self.retries.is_empty() {
                return;
            }
        }
    }

    /// Jittered exponential backoff for `job`'s next attempt: seeded by
    /// (service seed, job id, attempt), so a restarted service replays
    /// the same schedule.
    fn backoff(&self, job: &Job) -> Duration {
        let shift = (job.attempts.saturating_sub(1)).min(16);
        let raw = self
            .cfg
            .backoff_base_ms
            .saturating_mul(1 << shift)
            .min(self.cfg.backoff_cap_ms);
        let mut rng = Rng64::seed_from_u64(
            self.cfg
                .seed
                .wrapping_mul(0x9e37_79b9_7f4a_7c15)
                .wrapping_add(job.id)
                .wrapping_add(u64::from(job.attempts) << 32),
        );
        // Jitter factor in [0.5, 1.5): ±50% decorrelates retry storms.
        let factor = 512 + rng.random_range(0..1024u64);
        Duration::from_millis(raw * factor / 1024)
    }

    /// Consume one failed attempt: re-queue with backoff, or terminate
    /// with a typed `Failed` once the budget is gone. Returns the
    /// journal line for the batch record.
    fn fail_or_retry(&mut self, mut job: Job, error: &str) -> BatchJobLine {
        job.attempts += 1;
        if job.attempts >= self.cfg.max_attempts {
            let line = BatchJobLine {
                id: job.id,
                status: "failed".into(),
                attempts: job.attempts,
                cycles: 0,
                checksum: 0,
            };
            self.counters.failed.fetch_add(1, Ordering::SeqCst);
            job.respond(Outcome::Failed {
                attempts: job.attempts,
                error: error.to_owned(),
            });
            line
        } else {
            let line = BatchJobLine {
                id: job.id,
                status: "retry".into(),
                attempts: job.attempts,
                cycles: 0,
                checksum: 0,
            };
            self.counters.retries.fetch_add(1, Ordering::SeqCst);
            let due = Instant::now() + self.backoff(&job);
            job.accepted = due; // the next attempt's deadline clock
            self.retries.push((due, job));
            line
        }
    }

    /// Execute one batch and settle every member job.
    fn run_batch(&mut self, jobs: Vec<Job>) {
        self.batch_seq += 1;
        let seq = self.batch_seq;
        let mut lines: Vec<BatchJobLine> = Vec::with_capacity(jobs.len());
        let now = Instant::now();
        let mut runnable: Vec<Job> = Vec::with_capacity(jobs.len());
        for job in jobs {
            if job.deadline_missed(now) {
                lines.push(self.fail_or_retry(job, "deadline missed while queued"));
            } else {
                runnable.push(job);
            }
        }
        if runnable.is_empty() {
            self.journal_batch(
                seq,
                0,
                0,
                0,
                0,
                Some("all deadlines expired in queue"),
                &lines,
            );
            return;
        }
        // Shape the batch. Specs were validated at admission, so a part
        // failure here is a config-level bug surfaced per job, not a
        // batch abort.
        let mut parts = Vec::with_capacity(runnable.len());
        let mut members: Vec<Job> = Vec::with_capacity(runnable.len());
        for job in runnable {
            match job.spec.to_part() {
                Ok(part) => {
                    parts.push(part);
                    members.push(job);
                }
                Err(e) => lines.push(self.fail_or_retry(job, &e.to_string())),
            }
        }
        if members.is_empty() {
            self.journal_batch(seq, 0, 0, 0, 0, Some("no shapeable jobs"), &lines);
            return;
        }
        let prog = BatchProgram::new(parts).expect("members is non-empty");
        let p = HealProgram::<u64>::roles(&prog);
        // The model requires k <= p; a small batch (few tenant roles)
        // simply uses fewer channels.
        let k = self.cfg.k.min(p).max(1);
        let plan = match &self.cfg.chaos {
            Some(chaos) => FaultPlan::random(
                chaos
                    .seed
                    .wrapping_add(seq.wrapping_mul(0x9e37_79b9_7f4a_7c15)),
                p,
                k,
                &chaos.opts,
            ),
            None => FaultPlan::new(p, k),
        };
        if self.cfg.test_delay_ms > 0 {
            std::thread::sleep(Duration::from_millis(self.cfg.test_delay_ms));
        }
        let run = SelfHealing::new(plan)
            .backend(self.cfg.backend)
            .stall_window(self.cfg.stall_window)
            .cycle_budget(self.cfg.cycle_budget)
            .monitor(&self.monitor)
            .run_program(p, k, prog);
        match run {
            Ok(run) => {
                // Per-tenant attribution: sum the run's phase metrics by
                // `job{i}:` prefix (the BatchProgram labels every phase).
                let tenant_cycles: Vec<u64> = (0..members.len())
                    .map(|i| {
                        let prefix = format!("job{i}:");
                        run.metrics
                            .phases
                            .iter()
                            .filter(|ph| ph.name.starts_with(&prefix))
                            .map(|ph| ph.cycles)
                            .sum()
                    })
                    .collect();
                let settled = Instant::now();
                for (i, job) in members.into_iter().enumerate() {
                    if job.deadline_missed(settled) {
                        lines.push(self.fail_or_retry(job, "deadline missed during run"));
                    } else {
                        let result = job.spec.decode(&run.output[i]);
                        lines.push(BatchJobLine {
                            id: job.id,
                            status: "done".into(),
                            attempts: job.attempts + 1,
                            cycles: tenant_cycles[i],
                            checksum: result.checksum(),
                        });
                        self.counters.done.fetch_add(1, Ordering::SeqCst);
                        job.respond(Outcome::Done(result));
                    }
                }
                self.counters
                    .cycles
                    .fetch_add(run.metrics.cycles, Ordering::SeqCst);
                self.counters
                    .epochs
                    .fetch_add(run.epochs.len() as u64, Ordering::SeqCst);
                self.journal_batch(
                    seq,
                    p,
                    k,
                    run.metrics.cycles,
                    run.epochs.len() as u64,
                    None,
                    &lines,
                );
            }
            Err(e) => {
                let error = e.to_string();
                for job in members {
                    lines.push(self.fail_or_retry(job, &error));
                }
                self.counters.batch_errors.fetch_add(1, Ordering::SeqCst);
                self.journal_batch(seq, p, k, 0, 0, Some(&error), &lines);
            }
        }
    }

    #[allow(clippy::too_many_arguments)]
    fn journal_batch(
        &mut self,
        seq: u64,
        p: usize,
        k: usize,
        cycles: u64,
        epochs: u64,
        error: Option<&str>,
        lines: &[BatchJobLine],
    ) {
        self.counters.batches.fetch_add(1, Ordering::SeqCst);
        if let Some(journal) = &self.journal {
            let rec = batch_record(seq, p, k, cycles, epochs, error, lines);
            match journal.append(&rec) {
                Ok(()) => self.journal_fail_streak = 0,
                Err(e) => {
                    // The jobs in `lines` already got their outcomes;
                    // without this record they stay open in the journal
                    // and replay on restart (at-least-once, safe). What
                    // must not happen silently is *persistent* failure
                    // (disk full, dead volume): fail closed like
                    // admission does and stop taking new work.
                    self.journal_fail_streak += 1;
                    self.counters.journal_errors.fetch_add(1, Ordering::SeqCst);
                    eprintln!(
                        "mcb-serve: batch journal append failed ({} consecutive): {e}",
                        self.journal_fail_streak
                    );
                    if self.journal_fail_streak >= JOURNAL_FAIL_LIMIT
                        && self.accepting.swap(false, Ordering::SeqCst)
                    {
                        eprintln!(
                            "mcb-serve: journal failing persistently; intake closed \
                             (already-executed unjournaled jobs will replay on restart)"
                        );
                    }
                }
            }
        }
    }
}
