//! # mcb-serve — a fault-tolerant job service over the MCB simulator
//!
//! The ROADMAP's service regime: a long-running process that accepts
//! many *small* sort/select jobs over a length-prefixed socket protocol
//! ([`proto`]), batches compatible jobs into shared self-healing MCB
//! instances ([`batcher`] packing [`mcb_algos::batch::BatchProgram`]s,
//! one processor-group per tenant job), and keeps completing them
//! through injected chaos — channel deaths, drops, corrupts, crashes —
//! with throughput degrading by the §2 lemma's `⌈k/k′⌉` factor instead
//! of jobs being lost.
//!
//! The robustness contract, end to end:
//!
//! * **Admission control** ([`service`]): bounded queue depth; overflow
//!   and invalid requests are refused with explicit
//!   [`job::Outcome::Shed`] responses, and the TCP accept
//!   loop pauses while the queue is full (backpressure).
//! * **Deadlines and retry** ([`batcher`]): every job carries a
//!   per-attempt deadline; a missed deadline or an errored batch
//!   re-queues the job onto a *fresh* instance after seeded jittered
//!   exponential backoff, bounded by `max_attempts`, then terminates in
//!   a typed [`job::Outcome::Failed`] — no silent loss.
//! * **Journal recovery** ([`journal`]): every admission is journaled
//!   (flushed) *before* the job is queued, every batch's per-job
//!   statuses after; a killed-and-restarted service replays or
//!   explicitly rejects exactly the open jobs — never a duplicate,
//!   never a hang ([`records`] defines the JSONL schema-v5 `job` /
//!   `batch` / `shed` records).
//!
//! The `mcb-serve` binary wires this to a real socket; `tests/serve_*.rs`
//! drive the soak and kill-restart scenarios; `tab_serve` benches
//! sustained throughput healthy-vs-chaos into `BENCH_serve.json`.

#![warn(missing_docs)]

pub mod batcher;
pub mod job;
pub mod journal;
pub mod proto;
pub mod records;
pub mod service;

pub use batcher::{ChaosPlanCfg, ServeConfig};
pub use job::{Job, JobResult, JobSpec, Outcome};
pub use journal::Journal;
pub use service::{serve_tcp, ServeStats, Service, Submit};
