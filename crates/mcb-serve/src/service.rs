//! The service front: admission control, journal recovery, the TCP
//! accept loop, and the in-process submit API used by tests and benches.

use crate::batcher::{Batcher, ServeConfig};
use crate::job::{Job, JobSpec, Outcome};
use crate::journal::{scan, Journal};
use crate::proto;
use crate::records::{job_record, shed_record};
use mcb_net::RunMonitor;
use std::io;
use std::net::{TcpListener, TcpStream};
use std::path::Path;
use std::sync::atomic::{AtomicBool, AtomicU64, AtomicUsize, Ordering};
use std::sync::mpsc::{channel, Receiver, Sender};
use std::sync::Arc;
use std::thread::JoinHandle;
use std::time::{Duration, Instant};

/// Shared outcome counters (the bench's and soak test's scoreboard).
#[derive(Debug, Default)]
pub struct Counters {
    /// Jobs past admission (journaled, queued).
    pub admitted: AtomicU64,
    /// Jobs that returned [`Outcome::Done`].
    pub done: AtomicU64,
    /// Jobs that returned [`Outcome::Failed`].
    pub failed: AtomicU64,
    /// Refusals ([`Outcome::Shed`]), admission- or recovery-side.
    pub shed: AtomicU64,
    /// Attempts re-queued with backoff.
    pub retries: AtomicU64,
    /// Batches executed (including errored ones).
    pub batches: AtomicU64,
    /// Batches whose healed run returned an error.
    pub batch_errors: AtomicU64,
    /// Physical cycles summed over successful batch runs.
    pub cycles: AtomicU64,
    /// Reconfigurations summed over successful batch runs.
    pub epochs: AtomicU64,
    /// Batch-record journal appends that failed (each leaves its jobs
    /// open in the journal, to replay on restart; a persistent streak
    /// closes intake).
    pub journal_errors: AtomicU64,
}

/// A point-in-time copy of [`Counters`].
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct ServeStats {
    /// See [`Counters::admitted`].
    pub admitted: u64,
    /// See [`Counters::done`].
    pub done: u64,
    /// See [`Counters::failed`].
    pub failed: u64,
    /// See [`Counters::shed`].
    pub shed: u64,
    /// See [`Counters::retries`].
    pub retries: u64,
    /// See [`Counters::batches`].
    pub batches: u64,
    /// See [`Counters::batch_errors`].
    pub batch_errors: u64,
    /// See [`Counters::cycles`].
    pub cycles: u64,
    /// See [`Counters::epochs`].
    pub epochs: u64,
    /// See [`Counters::journal_errors`].
    pub journal_errors: u64,
}

/// What [`Service::submit`] returned for one request.
#[derive(Debug)]
pub enum Submit {
    /// The job is in: `rx` will deliver exactly one `(id, outcome)`.
    Admitted {
        /// The job's journal id.
        id: u64,
        /// Outcome channel (blocking `recv` is bounded by the
        /// deadline/retry state machine — every admitted job terminates).
        rx: Receiver<(u64, Outcome)>,
    },
    /// Admission refused the job; no id was assigned.
    Shed {
        /// Why (also journaled as a `shed` record).
        reason: String,
    },
}

/// What a journal recovery replayed (see [`Service::start`]).
#[derive(Debug, Clone, Copy, Default, PartialEq, Eq)]
pub struct Recovery {
    /// Open jobs re-queued for execution.
    pub replayed: usize,
    /// Open jobs explicitly rejected (invalid journaled spec).
    pub rejected: usize,
    /// Jobs already terminal in the journal (left untouched).
    pub already_terminal: usize,
}

/// A running service instance.
pub struct Service {
    cfg: ServeConfig,
    tx: Option<Sender<Job>>,
    batcher: Option<JoinHandle<()>>,
    depth: Arc<AtomicUsize>,
    next_id: AtomicU64,
    journal: Option<Arc<Journal>>,
    counters: Arc<Counters>,
    monitor: RunMonitor,
    /// What the startup journal scan replayed/rejected.
    pub recovery: Recovery,
    /// Shared with the batcher, which clears it when batch-record
    /// journal appends fail persistently.
    accepting: Arc<AtomicBool>,
}

impl Service {
    /// Start a service: open the journal (when `journal_path` is given),
    /// replay-or-reject every job left open by a previous process, then
    /// spawn the batcher.
    pub fn start(cfg: ServeConfig, journal_path: Option<&Path>) -> Result<Service, String> {
        let mut recovery = Recovery::default();
        let mut next_id = 1u64;
        let mut recovered: Vec<Job> = Vec::new();
        let journal = match journal_path {
            Some(path) => {
                let found = scan(path)?;
                next_id = found.max_id + 1;
                recovery.already_terminal = found.terminal.len();
                let journal = Arc::new(Journal::open(path).map_err(|e| e.to_string())?);
                for open in found.open {
                    if let Err(e) = open.spec.validate() {
                        recovery.rejected += 1;
                        journal
                            .append(&shed_record(
                                Some(open.id),
                                &format!("recovered-invalid: {e}"),
                                0,
                            ))
                            .map_err(|e| e.to_string())?;
                        continue;
                    }
                    recovery.replayed += 1;
                    recovered.push(Job {
                        id: open.id,
                        spec: open.spec,
                        deadline_ms: open.deadline_ms,
                        accepted: Instant::now(),
                        attempts: open.attempts,
                        reply: None,
                    });
                }
                Some(journal)
            }
            None => None,
        };
        let (tx, rx) = channel::<Job>();
        let depth = Arc::new(AtomicUsize::new(0));
        let counters = Arc::new(Counters::default());
        if let Some(journal) = &journal {
            counters
                .shed
                .fetch_add(recovery.rejected as u64, Ordering::SeqCst);
            let _ = journal; // journal already holds the shed records
        }
        let monitor = RunMonitor::new();
        let accepting = Arc::new(AtomicBool::new(true));
        for job in recovered {
            depth.fetch_add(1, Ordering::SeqCst);
            counters.admitted.fetch_add(1, Ordering::SeqCst);
            tx.send(job).expect("batcher receiver alive");
        }
        let batcher = Batcher {
            cfg: cfg.clone(),
            rx,
            depth: Arc::clone(&depth),
            journal: journal.clone(),
            counters: Arc::clone(&counters),
            monitor: monitor.clone(),
            accepting: Arc::clone(&accepting),
            batch_seq: 0,
            retries: Vec::new(),
            journal_fail_streak: 0,
        };
        let handle = std::thread::Builder::new()
            .name("mcb-serve-batcher".into())
            .spawn(move || batcher.run())
            .map_err(|e| e.to_string())?;
        Ok(Service {
            cfg,
            tx: Some(tx),
            batcher: Some(handle),
            depth,
            next_id: AtomicU64::new(next_id),
            journal,
            counters,
            monitor,
            recovery,
            accepting,
        })
    }

    /// Submit one job. Admission control runs here: invalid specs and
    /// queue overflow are refused with an explicit [`Submit::Shed`]
    /// (journaled); admitted jobs are journaled *before* queueing.
    pub fn submit(&self, spec: JobSpec, deadline_ms: u64) -> Submit {
        let shed = |reason: String| {
            self.counters.shed.fetch_add(1, Ordering::SeqCst);
            if let Some(journal) = &self.journal {
                let depth_now = self.depth.load(Ordering::SeqCst);
                let _ = journal.append(&shed_record(None, &reason, depth_now));
            }
            Submit::Shed { reason }
        };
        if !self.accepting.load(Ordering::SeqCst) {
            return shed("shutting-down".into());
        }
        if let Err(e) = spec.validate() {
            return shed(format!("invalid: {e}"));
        }
        // Reserve the queue slot atomically: every submitter increments
        // first and backs out on overflow, so concurrent submissions
        // cannot all pass a check and overshoot the admission bound.
        let prior = self.depth.fetch_add(1, Ordering::SeqCst);
        if prior >= self.cfg.queue_depth {
            self.depth.fetch_sub(1, Ordering::SeqCst);
            return shed("queue-full".into());
        }
        let id = self.next_id.fetch_add(1, Ordering::SeqCst);
        if let Some(journal) = &self.journal {
            if let Err(e) = journal.append(&job_record(id, &spec, deadline_ms)) {
                // A job we cannot journal is a job we cannot promise to
                // recover: refuse it and release the slot.
                self.depth.fetch_sub(1, Ordering::SeqCst);
                return shed(format!("journal-error: {e}"));
            }
        }
        let (reply_tx, reply_rx) = channel();
        let job = Job {
            id,
            spec,
            deadline_ms,
            accepted: Instant::now(),
            attempts: 0,
            reply: Some(reply_tx),
        };
        self.counters.admitted.fetch_add(1, Ordering::SeqCst);
        self.tx
            .as_ref()
            .expect("submit after shutdown")
            .send(job)
            .expect("batcher receiver alive");
        Submit::Admitted { id, rx: reply_rx }
    }

    /// Intake pressure: queued jobs not yet pulled by the batcher.
    pub fn queue_depth(&self) -> usize {
        self.depth.load(Ordering::SeqCst)
    }

    /// True while the queue has free slots (the accept loop's
    /// backpressure signal).
    pub fn has_capacity(&self) -> bool {
        self.depth.load(Ordering::SeqCst) < self.cfg.queue_depth
    }

    /// Snapshot the outcome counters.
    pub fn stats(&self) -> ServeStats {
        let c = &self.counters;
        ServeStats {
            admitted: c.admitted.load(Ordering::SeqCst),
            done: c.done.load(Ordering::SeqCst),
            failed: c.failed.load(Ordering::SeqCst),
            shed: c.shed.load(Ordering::SeqCst),
            retries: c.retries.load(Ordering::SeqCst),
            batches: c.batches.load(Ordering::SeqCst),
            batch_errors: c.batch_errors.load(Ordering::SeqCst),
            cycles: c.cycles.load(Ordering::SeqCst),
            epochs: c.epochs.load(Ordering::SeqCst),
            journal_errors: c.journal_errors.load(Ordering::SeqCst),
        }
    }

    /// The live monitor attached to every batch run (snapshot it from
    /// another thread while batches are in flight — see
    /// [`mcb_net::monitor`]).
    pub fn monitor(&self) -> &RunMonitor {
        &self.monitor
    }

    /// Stop intake, drain the queue and all retries, and join the
    /// batcher. Every already-admitted job still reaches a terminal
    /// outcome before this returns.
    pub fn shutdown(mut self) -> ServeStats {
        self.accepting.store(false, Ordering::SeqCst);
        drop(self.tx.take());
        if let Some(handle) = self.batcher.take() {
            let _ = handle.join();
        }
        self.stats()
    }
}

impl Drop for Service {
    fn drop(&mut self) {
        self.accepting.store(false, Ordering::SeqCst);
        drop(self.tx.take());
        if let Some(handle) = self.batcher.take() {
            let _ = handle.join();
        }
    }
}

/// Serve one client connection: frames in, responses out, in order.
fn handle_conn(service: &Service, stream: TcpStream) -> io::Result<()> {
    let mut reader = stream.try_clone()?;
    let mut writer = stream;
    while let Some(raw) = proto::read_frame(&mut reader)? {
        let response = match proto::parse_request(&raw) {
            Err(e) => {
                service.counters.shed.fetch_add(1, Ordering::SeqCst);
                proto::render_response(
                    None,
                    &Outcome::Shed {
                        reason: format!("invalid: {e}"),
                    },
                )
            }
            Ok((spec, deadline_ms)) => match service.submit(spec, deadline_ms) {
                Submit::Shed { reason } => proto::render_response(None, &Outcome::Shed { reason }),
                Submit::Admitted { id, rx } => {
                    let (_, outcome) = rx
                        .recv()
                        .map_err(|_| io::Error::other("batcher dropped the job"))?;
                    proto::render_response(Some(id), &outcome)
                }
            },
        };
        proto::write_frame(&mut writer, &response)?;
    }
    Ok(())
}

/// Accept loop: one thread per connection, with admission backpressure —
/// while the queue is full, accepts are paused so the kernel backlog
/// (not the service) absorbs the burst.
pub fn serve_tcp(service: Arc<Service>, listener: TcpListener) -> io::Result<()> {
    loop {
        while !service.has_capacity() {
            std::thread::sleep(Duration::from_millis(1));
        }
        let (stream, _) = listener.accept()?;
        let service = Arc::clone(&service);
        std::thread::Builder::new()
            .name("mcb-serve-conn".into())
            .spawn(move || {
                if let Err(e) = handle_conn(&service, stream) {
                    eprintln!("connection error: {e}");
                }
            })?;
    }
}
