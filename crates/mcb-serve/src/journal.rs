//! The accepted-job journal: an append-only JSONL file that makes
//! kill-and-restart recovery deterministic.
//!
//! Every admission writes a `job` record *before* the job is queued;
//! every executed batch writes a `batch` record with per-job statuses;
//! every refusal writes a `shed` record. Each line is flushed before the
//! write returns, so a `SIGKILL` can lose at most the line being written
//! — a torn final line with no trailing newline. [`Journal::open`]
//! truncates such a tail back to the last newline before appending (so
//! the next record never concatenates onto the torn prefix), and
//! [`scan`] discards it; a malformed *newline-terminated* line is
//! corruption and errors, wherever it sits.
//!
//! Recovery contract (asserted by `tests/serve_restart.rs`): after a
//! restart, `accepted − terminal` is the exact set of jobs to replay or
//! reject — never silently dropped. Replay is **at-least-once**, not
//! exactly-once: batch outcomes reach clients *before* the `batch`
//! record is appended, so a crash (or a failed append) in that window
//! leaves already-executed jobs open and they re-run on restart. Jobs
//! are pure functions of their journaled spec, so a re-run recomputes
//! the same result, and the journal itself never carries two `done`
//! lines for one id (a job only replays when its terminal record was
//! never written).

use crate::job::JobSpec;
use crate::records;
use mcb_json::Json;
use std::fs::{File, OpenOptions};
use std::io::{BufWriter, Read, Write};
use std::path::{Path, PathBuf};
use std::sync::Mutex;

/// Append-side handle; thread-safe (admission and batcher share it).
#[derive(Debug)]
pub struct Journal {
    inner: Mutex<BufWriter<File>>,
    path: PathBuf,
}

impl Journal {
    /// Open (or create) the journal at `path`, appending a header record
    /// when the file is new. A torn tail left by a mid-write kill
    /// (bytes after the last newline) is truncated first, so the next
    /// append starts on a fresh line instead of merging with the torn
    /// prefix into one unparseable record.
    pub fn open(path: &Path) -> std::io::Result<Journal> {
        let mut existing = 0u64;
        match OpenOptions::new().read(true).write(true).open(path) {
            Ok(mut f) => {
                let mut raw = Vec::new();
                f.read_to_end(&mut raw)?;
                let keep = raw
                    .iter()
                    .rposition(|&b| b == b'\n')
                    .map_or(0, |i| (i + 1) as u64);
                if keep < raw.len() as u64 {
                    f.set_len(keep)?;
                }
                existing = keep;
            }
            Err(e) if e.kind() == std::io::ErrorKind::NotFound => {}
            Err(e) => return Err(e),
        }
        let file = OpenOptions::new().create(true).append(true).open(path)?;
        let journal = Journal {
            inner: Mutex::new(BufWriter::new(file)),
            path: path.to_path_buf(),
        };
        if existing == 0 {
            journal.append(&records::header_record())?;
        }
        Ok(journal)
    }

    /// Append one record as a line and flush it to the OS before
    /// returning (the durability point admission relies on).
    pub fn append(&self, record: &Json) -> std::io::Result<()> {
        let mut w = self.inner.lock().expect("journal writer poisoned");
        w.write_all(record.render().as_bytes())?;
        w.write_all(b"\n")?;
        w.flush()
    }

    /// The journal's file path.
    pub fn path(&self) -> &Path {
        &self.path
    }
}

/// One job the scan found still open (accepted, no terminal record).
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct OpenJob {
    /// The job's journal id.
    pub id: u64,
    /// The journaled spec (enough to re-run the job).
    pub spec: JobSpec,
    /// The journaled per-attempt deadline.
    pub deadline_ms: u64,
    /// Attempts already consumed by pre-restart batches.
    pub attempts: u32,
}

/// Everything a restart needs to know about a journal.
#[derive(Debug, Clone, Default)]
pub struct ScanResult {
    /// Jobs accepted but not yet terminal, in id order.
    pub open: Vec<OpenJob>,
    /// Ids with a terminal record (`done`/`failed` batch line or `shed`).
    pub terminal: Vec<u64>,
    /// Highest id ever admitted (0 when none): id allocation resumes at
    /// `max_id + 1`.
    pub max_id: u64,
    /// Complete lines scanned.
    pub lines: usize,
    /// Whether a torn final line (mid-write kill) was discarded.
    pub torn_tail: bool,
}

/// Scan a journal file. A kill mid-write tears at most the final line,
/// and a torn line has no trailing newline (each append flushes
/// record + `'\n'` together), so the bytes after the last newline are
/// discarded as the torn tail; every newline-terminated line was
/// complete as written and a malformed one is corruption that errors
/// out.
pub fn scan(path: &Path) -> Result<ScanResult, String> {
    let mut raw = String::new();
    match File::open(path) {
        Ok(mut f) => {
            f.read_to_string(&mut raw)
                .map_err(|e| format!("read {}: {e}", path.display()))?;
        }
        Err(e) if e.kind() == std::io::ErrorKind::NotFound => return Ok(ScanResult::default()),
        Err(e) => return Err(format!("open {}: {e}", path.display())),
    }
    let mut out = ScanResult::default();
    // A complete line ends in '\n'; anything after the last newline is a
    // torn tail from a mid-write kill.
    let complete = match raw.rfind('\n') {
        Some(i) => {
            out.torn_tail = i + 1 < raw.len();
            &raw[..i]
        }
        None => {
            out.torn_tail = !raw.is_empty();
            ""
        }
    };
    let mut accepted: Vec<OpenJob> = Vec::new();
    let mut terminal: Vec<u64> = Vec::new();
    for (n, line) in complete.lines().enumerate() {
        let j = Json::parse(line).map_err(|e| format!("{}:{}: {e}", path.display(), n + 1))?;
        out.lines += 1;
        match j.get("record").and_then(Json::as_str) {
            Some("serve_journal") => {}
            Some("job") => {
                let (id, spec, deadline_ms) = records::parse_job_record(&j)
                    .map_err(|e| format!("{}:{}: {e}", path.display(), n + 1))?;
                out.max_id = out.max_id.max(id);
                accepted.push(OpenJob {
                    id,
                    spec,
                    deadline_ms,
                    attempts: 0,
                });
            }
            Some("batch") => {
                for l in records::parse_batch_record(&j)
                    .map_err(|e| format!("{}:{}: {e}", path.display(), n + 1))?
                {
                    match l.status.as_str() {
                        "done" | "failed" => terminal.push(l.id),
                        _ => {
                            if let Some(job) = accepted.iter_mut().find(|job| job.id == l.id) {
                                job.attempts = job.attempts.max(l.attempts);
                            }
                        }
                    }
                }
            }
            Some("shed") => {
                let (id, _, _) = records::parse_shed_record(&j)
                    .map_err(|e| format!("{}:{}: {e}", path.display(), n + 1))?;
                if let Some(id) = id {
                    terminal.push(id);
                }
            }
            other => {
                return Err(format!(
                    "{}:{}: unknown record {other:?}",
                    path.display(),
                    n + 1
                ))
            }
        }
    }
    terminal.sort_unstable();
    terminal.dedup();
    accepted.retain(|job| terminal.binary_search(&job.id).is_err());
    out.open = accepted;
    out.terminal = terminal;
    Ok(out)
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::records::{batch_record, job_record, shed_record, BatchJobLine};
    use std::fs;

    fn tmp(name: &str) -> PathBuf {
        let dir = std::env::temp_dir().join("mcb-serve-journal-tests");
        fs::create_dir_all(&dir).unwrap();
        dir.join(format!("{name}-{}.jsonl", std::process::id()))
    }

    fn line(id: u64, status: &str, attempts: u32) -> BatchJobLine {
        BatchJobLine {
            id,
            status: status.into(),
            attempts,
            cycles: 10,
            checksum: 0,
        }
    }

    #[test]
    fn scan_separates_open_from_terminal() {
        let path = tmp("open-terminal");
        let _ = fs::remove_file(&path);
        let journal = Journal::open(&path).unwrap();
        for id in 1..=4u64 {
            journal
                .append(&job_record(id, &JobSpec::Sort { keys: vec![id, 1] }, 500))
                .unwrap();
        }
        journal
            .append(&batch_record(
                1,
                4,
                2,
                100,
                0,
                None,
                &[line(1, "done", 1), line(2, "retry", 1)],
            ))
            .unwrap();
        journal
            .append(&shed_record(Some(3), "recovered-invalid", 0))
            .unwrap();
        let scan = scan(&path).unwrap();
        assert_eq!(
            scan.open.iter().map(|j| j.id).collect::<Vec<_>>(),
            vec![2, 4]
        );
        assert_eq!(scan.open[0].attempts, 1, "retry lines carry attempts");
        assert_eq!(scan.terminal, vec![1, 3]);
        assert_eq!(scan.max_id, 4);
        assert!(!scan.torn_tail);
        let _ = fs::remove_file(&path);
    }

    #[test]
    fn torn_tail_is_discarded_not_fatal() {
        let path = tmp("torn");
        let _ = fs::remove_file(&path);
        let journal = Journal::open(&path).unwrap();
        journal
            .append(&job_record(1, &JobSpec::Sort { keys: vec![7] }, 0))
            .unwrap();
        drop(journal);
        let mut f = OpenOptions::new().append(true).open(&path).unwrap();
        f.write_all(b"{\"record\":\"job\",\"id\":2,").unwrap();
        drop(f);
        let scan = scan(&path).unwrap();
        assert!(scan.torn_tail);
        assert_eq!(scan.open.len(), 1);
        assert_eq!(scan.max_id, 1);
        let _ = fs::remove_file(&path);
    }

    #[test]
    fn reopen_truncates_torn_tail_before_appending() {
        let path = tmp("truncate");
        let _ = fs::remove_file(&path);
        let journal = Journal::open(&path).unwrap();
        journal
            .append(&job_record(1, &JobSpec::Sort { keys: vec![7] }, 0))
            .unwrap();
        drop(journal);
        // Simulate a kill mid-write: a partial record with no newline.
        let mut f = OpenOptions::new().append(true).open(&path).unwrap();
        f.write_all(b"{\"record\":\"job\",\"id\":2,").unwrap();
        drop(f);
        // Reopening repairs the tail; the next append must not merge
        // with the torn prefix.
        let journal = Journal::open(&path).unwrap();
        journal
            .append(&job_record(3, &JobSpec::Sort { keys: vec![9] }, 0))
            .unwrap();
        drop(journal);
        let text = fs::read_to_string(&path).unwrap();
        assert!(!text.contains("\"id\":2,{"), "torn prefix merged: {text}");
        let scan = scan(&path).unwrap();
        assert!(!scan.torn_tail, "tail was repaired at reopen");
        assert_eq!(
            scan.open.iter().map(|j| j.id).collect::<Vec<_>>(),
            vec![1, 3]
        );
        assert_eq!(scan.max_id, 3);
        let _ = fs::remove_file(&path);
    }

    #[test]
    fn unparseable_final_complete_line_is_an_error() {
        let path = tmp("strict-tail");
        let _ = fs::remove_file(&path);
        // Newline-terminated lines are complete as written, so a
        // malformed one is corruption even in final position.
        fs::write(
            &path,
            "{\"record\":\"serve_journal\",\"schema\":5}\nnot json\n",
        )
        .unwrap();
        assert!(scan(&path).is_err());
        let _ = fs::remove_file(&path);
    }

    #[test]
    fn missing_journal_is_empty_not_error() {
        let path = tmp("missing");
        let _ = fs::remove_file(&path);
        let scan = scan(&path).unwrap();
        assert_eq!(scan.lines, 0);
        assert!(scan.open.is_empty());
    }

    #[test]
    fn corrupt_middle_line_is_an_error() {
        let path = tmp("corrupt");
        let _ = fs::remove_file(&path);
        fs::write(
            &path,
            "{\"record\":\"serve_journal\",\"schema\":5}\nnot json\n{\"record\":\"shed\",\"id\":null,\"reason\":\"x\",\"depth\":0}\n",
        )
        .unwrap();
        assert!(scan(&path).is_err());
        let _ = fs::remove_file(&path);
    }
}
