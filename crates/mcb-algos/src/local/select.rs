//! Local (single-processor) selection by rank.
//!
//! The selection algorithm's filtering phase has every processor compute the
//! median of its local candidates "using an efficient sequential selection
//! algorithm (\[Blum73\], for example)" (§8.1). This module implements exactly
//! that reference: the Blum–Floyd–Pratt–Rivest–Tarjan median-of-medians
//! algorithm, with worst-case linear comparisons.
//!
//! Ranks follow the paper's convention: rank 1 is the **largest** element.

/// The `d`'th largest element of `items` (1-based rank), by BFPRT
/// median-of-medians in worst-case O(n). Panics when `d` is out of
/// `1..=items.len()`.
pub fn select_rank_desc<T: Ord + Clone>(items: &[T], d: usize) -> T {
    assert!(
        d >= 1 && d <= items.len(),
        "rank {d} out of 1..={}",
        items.len()
    );
    let mut work: Vec<T> = items.to_vec();
    let len = work.len();
    // Rank d largest == index (d-1) in descending order == the
    // (len - d)'th smallest (0-based ascending).
    kth_smallest(&mut work, len - d)
}

/// The median of `items`: the element of descending rank `⌈s/2⌉`.
///
/// The paper's §3 text reads `med = N[⌊n/2⌋]`, but taken literally that
/// makes the "median" of a 3-element list its *largest* element, and the
/// §8.2 guarantee that each filtering phase purges `⌊m/4⌋` candidates then
/// fails (counterexample found by this crate's property tests: lists of
/// size 3 contribute only 1 element to the `>= med*` side instead of
/// `s/2`). The rank-`⌈s/2⌉` median puts at least `s/2` elements on *both*
/// sides, which is what the Figure 2 analysis actually uses — we read the
/// floor as a typo/OCR artifact and implement the ceiling.
pub fn median_desc<T: Ord + Clone>(items: &[T]) -> T {
    assert!(!items.is_empty(), "median of empty list");
    let d = items.len().div_ceil(2);
    select_rank_desc(items, d)
}

/// In-place BFPRT: the element that would be at `idx` (0-based) if `work`
/// were sorted ascending.
fn kth_smallest<T: Ord + Clone>(work: &mut [T], idx: usize) -> T {
    debug_assert!(idx < work.len());
    let mut lo = 0;
    let mut hi = work.len();
    let mut target = idx;
    loop {
        if hi - lo <= 10 {
            work[lo..hi].sort_unstable();
            return work[lo + target].clone();
        }
        let pivot = median_of_medians(&mut work[lo..hi]);
        // Three-way partition around the pivot.
        let (lt, eq) = partition3(&mut work[lo..hi], &pivot);
        if target < lt {
            hi = lo + lt;
        } else if target < lt + eq {
            return pivot;
        } else {
            target -= lt + eq;
            lo += lt + eq;
        }
    }
}

/// Median of the medians of groups of five — the BFPRT pivot.
fn median_of_medians<T: Ord + Clone>(work: &mut [T]) -> T {
    let mut medians: Vec<T> = work
        .chunks_mut(5)
        .map(|chunk| {
            chunk.sort_unstable();
            chunk[chunk.len() / 2].clone()
        })
        .collect();
    let mid = medians.len() / 2;
    let len = medians.len();
    if len == 1 {
        medians.pop().unwrap()
    } else {
        kth_smallest(&mut medians, mid.min(len - 1))
    }
}

/// Dutch-flag partition; returns (#less, #equal).
fn partition3<T: Ord>(work: &mut [T], pivot: &T) -> (usize, usize) {
    let mut lt = 0;
    let mut i = 0;
    let mut gt = work.len();
    while i < gt {
        if work[i] < *pivot {
            work.swap(i, lt);
            lt += 1;
            i += 1;
        } else if work[i] > *pivot {
            gt -= 1;
            work.swap(i, gt);
        } else {
            i += 1;
        }
    }
    (lt, gt - lt)
}

#[cfg(test)]
mod tests {
    use super::*;
    use mcb_rng::Rng64;

    fn oracle(items: &[u64], d: usize) -> u64 {
        let mut s = items.to_vec();
        s.sort_unstable_by(|a, b| b.cmp(a));
        s[d - 1]
    }

    #[test]
    fn small_cases() {
        let v = vec![10u64, 40, 20, 30];
        assert_eq!(select_rank_desc(&v, 1), 40);
        assert_eq!(select_rank_desc(&v, 2), 30);
        assert_eq!(select_rank_desc(&v, 4), 10);
    }

    #[test]
    fn median_is_rank_ceil_half() {
        // |N| = 4 -> rank 2 (descending).
        assert_eq!(median_desc(&[10u64, 40, 20, 30]), 30);
        // |N| = 1 -> rank 1.
        assert_eq!(median_desc(&[7u64]), 7);
        // |N| = 5 -> rank 3 (the true middle).
        assert_eq!(median_desc(&[1u64, 2, 3, 4, 5]), 3);
        // |N| = 3 -> rank 2, NOT the largest (see the doc comment).
        assert_eq!(median_desc(&[9u64, 5, 1]), 5);
        // |N| = 2 -> rank 1.
        assert_eq!(median_desc(&[3u64, 8]), 8);
    }

    #[test]
    fn duplicates_are_fine() {
        let v = vec![5u64; 100];
        assert_eq!(select_rank_desc(&v, 37), 5);
        let mut v2 = vec![1u64; 50];
        v2.extend(vec![2u64; 50]);
        assert_eq!(select_rank_desc(&v2, 50), 2);
        assert_eq!(select_rank_desc(&v2, 51), 1);
    }

    #[test]
    #[should_panic(expected = "out of")]
    fn rank_zero_panics() {
        select_rank_desc(&[1u64], 0);
    }

    #[test]
    #[should_panic(expected = "empty")]
    fn median_of_empty_panics() {
        median_desc::<u64>(&[]);
    }

    #[test]
    fn large_deterministic_case() {
        let v: Vec<u64> = (0..10_000)
            .map(|i| (i * 2654435761u64) % 1_000_003)
            .collect();
        for d in [1, 2, 100, 5000, 9999, 10_000] {
            assert_eq!(select_rank_desc(&v, d), oracle(&v, d), "rank {d}");
        }
    }

    #[test]
    fn select_matches_sort_oracle() {
        let mut rng = Rng64::seed_from_u64(0x5e1e);
        for case in 0..256 {
            let len = rng.random_range(1usize..300);
            let v = rng.vec_u64(len);
            let d = rng.random_range(0usize..len) + 1;
            assert_eq!(select_rank_desc(&v, d), oracle(&v, d), "case {case}");
        }
    }

    #[test]
    fn median_is_rank_half() {
        let mut rng = Rng64::seed_from_u64(0x3ed1);
        for case in 0..256 {
            let len = rng.random_range(1usize..200);
            let v = rng.vec_u64(len);
            let d = v.len().div_ceil(2);
            assert_eq!(median_desc(&v), oracle(&v, d), "case {case}");
        }
    }

    /// The §8.2 precondition the filtering analysis needs: at least
    /// s/2 elements on each side of the median (inclusive).
    #[test]
    fn median_splits_both_sides() {
        let mut rng = Rng64::seed_from_u64(0x5b17);
        for case in 0..256 {
            let len = rng.random_range(1usize..100);
            let v = rng.vec_u64(len);
            let med = median_desc(&v);
            let ge = v.iter().filter(|x| **x >= med).count() * 2;
            let le = v.iter().filter(|x| **x <= med).count() * 2;
            assert!(ge >= v.len(), "case {case}: ge {ge} < s {}", v.len());
            assert!(le >= v.len(), "case {case}: le {le} < s {}", v.len());
        }
    }
}
