//! Sequential building blocks the distributed algorithms lean on.
//!
//! Local computation is free in the MCB cost model (§2), but the paper's
//! algorithms still name their local subroutines — sorting \[Knut73\] and
//! linear-time selection \[Blum73\] — and we implement both from scratch.

pub mod select;
pub mod sort;

pub use select::{median_desc, select_rank_desc};
pub use sort::{insertion_sort_desc, is_sorted_desc, odd_even_merge_sort_desc, sort_desc};
