//! Local (single-processor) sorting.
//!
//! The paper's Columnsort phases 1/3/5/7 sort each column "using some
//! efficient sequential sorting algorithm \[Knut73\]"; local computation is
//! free in the MCB cost model, so the choice only affects wall-clock time of
//! the simulator. We provide:
//!
//! * [`sort_desc`] — the default, a thin wrapper over the standard library's
//!   unstable sort (pattern-defeating quicksort);
//! * [`odd_even_merge_sort_desc`] — Batcher's odd-even merge sort, the
//!   \[Knut73\] network Columnsort generalizes, kept as an independently
//!   implemented oracle and for the ablation benches;
//! * [`insertion_sort_desc`] — for tiny inputs and as a second oracle.
//!
//! All sorts are **descending**, the paper's order (`N[1]` is the largest).

/// Sort a slice in descending order (the paper's convention).
pub fn sort_desc<T: Ord>(items: &mut [T]) {
    items.sort_unstable_by(|a, b| b.cmp(a));
}

/// Binary insertion sort, descending. O(n²) moves; fine for tiny slices.
pub fn insertion_sort_desc<T: Ord>(items: &mut [T]) {
    for i in 1..items.len() {
        let mut j = i;
        while j > 0 && items[j - 1] < items[j] {
            items.swap(j - 1, j);
            j -= 1;
        }
    }
}

/// Batcher's odd-even merge sort, descending.
///
/// Works for any length by padding conceptually to the next power of two
/// (compare-exchanges with out-of-range indices are skipped). O(n log² n)
/// comparisons, data-oblivious — the same family of sorting networks
/// Columnsort generalizes to the distributed setting.
pub fn odd_even_merge_sort_desc<T: Ord>(items: &mut [T]) {
    let n = items.len();
    if n < 2 {
        return;
    }
    // Canonical iterative form of Batcher's network (Knuth 5.2.2M):
    // `p` is the run width being merged, `k` the comparison distance.
    let mut p = 1;
    while p < n {
        let mut k = p;
        while k >= 1 {
            let mut j = k % p;
            while j + k < n {
                for i in 0..k {
                    let a = j + i;
                    let b = j + i + k;
                    if b >= n {
                        break;
                    }
                    if a / (2 * p) == b / (2 * p) {
                        compare_exchange_desc(items, a, b);
                    }
                }
                j += 2 * k;
            }
            k /= 2;
        }
        p *= 2;
    }
}

#[inline]
fn compare_exchange_desc<T: Ord>(items: &mut [T], i: usize, j: usize) {
    if items[i] < items[j] {
        items.swap(i, j);
    }
}

/// True when the slice is in descending order.
pub fn is_sorted_desc<T: Ord>(items: &[T]) -> bool {
    items.windows(2).all(|w| w[0] >= w[1])
}

#[cfg(test)]
mod tests {
    use super::*;
    use mcb_rng::Rng64;

    #[test]
    fn sort_desc_basic() {
        let mut v = vec![3u64, 1, 4, 1, 5, 9, 2, 6];
        sort_desc(&mut v);
        assert_eq!(v, vec![9, 6, 5, 4, 3, 2, 1, 1]);
    }

    #[test]
    fn insertion_matches_std() {
        let mut a = vec![5u64, 3, 8, 8, 1, 0, 7];
        let mut b = a.clone();
        sort_desc(&mut a);
        insertion_sort_desc(&mut b);
        assert_eq!(a, b);
    }

    #[test]
    fn odd_even_handles_edge_sizes() {
        for n in 0..33usize {
            let mut v: Vec<u64> = (0..n as u64).map(|i| (i * 7919) % 101).collect();
            let mut expect = v.clone();
            sort_desc(&mut expect);
            odd_even_merge_sort_desc(&mut v);
            assert_eq!(v, expect, "length {n}");
        }
    }

    #[test]
    fn is_sorted_desc_checks() {
        assert!(is_sorted_desc(&[5u64, 5, 3, 1]));
        assert!(!is_sorted_desc(&[1u64, 2]));
        assert!(is_sorted_desc::<u64>(&[]));
        assert!(is_sorted_desc(&[7u64]));
    }

    #[test]
    fn odd_even_sorts_arbitrary() {
        let mut rng = Rng64::seed_from_u64(0x0dde);
        for case in 0..256 {
            let len = rng.random_range(0usize..200);
            let mut v = rng.vec_u64(len);
            let mut expect = v.clone();
            sort_desc(&mut expect);
            odd_even_merge_sort_desc(&mut v);
            assert_eq!(v, expect, "case {case} (len {len})");
        }
    }

    #[test]
    fn insertion_sorts_arbitrary() {
        let mut rng = Rng64::seed_from_u64(0x1257);
        for case in 0..256 {
            let len = rng.random_range(0usize..64);
            let mut v = rng.vec_u64(len);
            let mut expect = v.clone();
            sort_desc(&mut expect);
            insertion_sort_desc(&mut v);
            assert_eq!(v, expect, "case {case} (len {len})");
        }
    }
}
