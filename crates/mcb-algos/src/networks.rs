//! Oblivious comparator-network compiler (ROADMAP item 1).
//!
//! Sorting networks are **data oblivious**: which lines get compared never
//! depends on the keys. That makes them the one protocol family whose MCB
//! schedules [`mcb_check::symbolic`] can prove collision-free, read-valid,
//! and *sort-correct for every input* — no concrete-key round-simulation,
//! unlike the key-determined emitters in
//! [`static_schedule`](crate::static_schedule).
//!
//! The pipeline:
//!
//! ```text
//!  generator            layering + packing             proof
//!  ─────────            ──────────────────             ─────
//!  Batcher /            ASAP layers (data deps),       mcb_check::verify_network
//!  Bose–Nelson /   ──►  per-layer edge coloring,  ──►  (provenance walk +
//!  multiway merge       ⌊k/2⌋ exchanges per cycle      0-1-principle prover)
//!    │                        │
//!    └── Vec<Comparator>      └── CheckedSchedule + Vec<Exchange>
//!        + SorterCert             = ObliviousNetwork
//! ```
//!
//! Three generators, all emitting comparators in certificate order
//! (sub-sorter comparators contiguous, merger after its halves):
//!
//! * [`NetworkKind::Batcher`] — odd-even merge-sort for arbitrary `p`
//!   (not just powers of two): the merger recursion splits each sorted run
//!   into even- and odd-position subsequences, merges them, and fixes up
//!   with one comparator per `(odd_i, even_{i+1})` pair. On `p = 2^t` the
//!   size matches the closed form `(t² − t + 4)·2^t/4 − 1`.
//! * [`NetworkKind::BoseNelson`] — hard-coded size-optimal networks for
//!   `p ≤ 12` (sizes 1, 3, 5, 9, 12, 16, 19, 25, 29, 35, 39 — the best
//!   known / proven-optimal values surveyed in arXiv:2012.04400). Every
//!   table is brute-force 0-1 verified in this module's tests *and* by the
//!   symbolic prover on every compile.
//! * [`NetworkKind::Multiway`] — the n-sorter construction of
//!   arXiv:1407.0961: split the lines into groups of `group ≤ 12`, sort
//!   each group with its optimal small network, then glue with a binary
//!   tree of odd-even mergers. For `p > 20` this also supplies the
//!   recursive [`SorterCert`] the prover needs (base blocks exhaustively
//!   checked, mergers checked over all sorted 0-1 pairs).
//!
//! Packing onto `k` channels: comparators are layered ASAP by data
//! dependency; each layer's broadcasts go through the same bipartite
//! edge-coloring scheduler the Columnsort transforms use
//! (`edge_color_bipartite`, private to the crate) — a comparator layer is a
//! matching (Δ = 1),
//! so König gives a single color class, and the class is then chunked
//! `⌊k/2⌋` exchanges per cycle (channels `2t`, `2t+1`). On `k = 1` each
//! exchange serializes into two cycles, one leg per cycle.

use crate::msg::{Key, Word};
use crate::schedule::edge_color_bipartite;
use crate::sort::grouped::SortReport;
use crate::static_schedule::StaticSchedule;
use mcb_check::{
    Bounds, CheckedSchedule, Comparator, Exchange, ObliviousNetwork, ScheduleBuilder, SortCert,
    SorterCert, SymbolicReport,
};
use mcb_net::{ChanId, NetError, Network, ProcCtx};
use std::collections::HashMap;

/// Widest Bose–Nelson table available (and the widest multiway group).
pub const MAX_OPTIMAL_WIDTH: usize = 12;

/// Widths the exhaustive 0-1 prover handles; above this, compiled
/// networks carry a recursive [`SorterCert`].
const EXHAUSTIVE_LIMIT: usize = mcb_check::symbolic::MAX_EXHAUSTIVE_WIDTH;

// ---------------------------------------------------------------------------
// Generators
// ---------------------------------------------------------------------------

fn cmp(a: usize, b: usize) -> Comparator {
    Comparator {
        lo: a.min(b),
        hi: a.max(b),
    }
}

/// Batcher's odd-even merger for two adjacent sorted runs of *arbitrary*
/// lengths, given as ascending line lists. Recursively merges the
/// even-position and odd-position subsequences, then fixes up each
/// `(odd_i, even_{i+1})` pair — with the minimum oriented to the earlier
/// line, which flips between pairs when the run lengths are odd.
fn odd_even_merge(a: &[usize], b: &[usize], out: &mut Vec<Comparator>) {
    if a.is_empty() || b.is_empty() {
        return;
    }
    if a.len() == 1 && b.len() == 1 {
        out.push(cmp(a[0], b[0]));
        return;
    }
    let evens = |s: &[usize]| -> Vec<usize> { s.iter().copied().step_by(2).collect() };
    let odds = |s: &[usize]| -> Vec<usize> { s.iter().copied().skip(1).step_by(2).collect() };
    let (ae, ao) = (evens(a), odds(a));
    let (be, bo) = (evens(b), odds(b));
    odd_even_merge(&ae, &be, out);
    odd_even_merge(&ao, &bo, out);
    let e: Vec<usize> = ae.into_iter().chain(be).collect();
    let o: Vec<usize> = ao.into_iter().chain(bo).collect();
    for i in 0..o.len() {
        if i + 1 < e.len() {
            out.push(cmp(o[i], e[i + 1]));
        }
    }
}

/// Recursive sorter over lines `first..first + width`: groups of up to
/// `group` lines become base blocks (optimal networks for `group >= 2`,
/// empty blocks for `group == 1`), glued by a binary tree of odd-even
/// mergers. Comparators are emitted in certificate order.
fn build_sorter(first: usize, width: usize, group: usize, out: &mut Vec<Comparator>) -> SorterCert {
    if width == 1 {
        return SorterCert::Block {
            first,
            width: 1,
            comparators: out.len()..out.len(),
        };
    }
    if width <= group {
        let start = out.len();
        out.extend(
            bose_nelson(width)
                .into_iter()
                .map(|c| cmp(first + c.lo, first + c.hi)),
        );
        return SorterCert::Block {
            first,
            width,
            comparators: start..out.len(),
        };
    }
    // Split on a group boundary so every leaf except possibly the last is
    // full-width (ceil to a multiple of `group`, then halve the groups).
    let groups = width.div_ceil(group);
    let lo_w = (groups / 2).max(1) * group;
    let lo_w = lo_w.min(width - 1);
    let lo = build_sorter(first, lo_w, group, out);
    let hi = build_sorter(first + lo_w, width - lo_w, group, out);
    let start = out.len();
    let a: Vec<usize> = (first..first + lo_w).collect();
    let b: Vec<usize> = (first + lo_w..first + width).collect();
    odd_even_merge(&a, &b, out);
    SorterCert::Merge {
        lo: Box::new(lo),
        hi: Box::new(hi),
        merger: start..out.len(),
    }
}

/// Batcher odd-even merge-sort comparators for `p` lines (any `p >= 1`).
pub fn batcher(p: usize) -> Vec<Comparator> {
    assert!(p >= 1, "need at least one line");
    let mut out = Vec::new();
    build_sorter(0, p, 1, &mut out);
    out
}

/// Comparator count of [`batcher`] on `p = 2^t` lines: the classic closed
/// form `(t² − t + 4)·2^t/4 − 1` (integer-exact for all `t >= 0`).
pub fn batcher_size_pow2(t: u32) -> u64 {
    let t = t as u64;
    (t * t - t + 4) * (1u64 << t) / 4 - 1
}

/// Size-optimal (best known, proven optimal for `p <= 10`) sorting
/// networks for `2 <= p <= 12`, per the Bose–Nelson line of results
/// surveyed in arXiv:2012.04400. Panics outside that range.
pub fn bose_nelson(p: usize) -> Vec<Comparator> {
    #[rustfmt::skip]
    const TABLES: [&[(u8, u8)]; 11] = [
        // p = 2 (1)
        &[(0, 1)],
        // p = 3 (3)
        &[(1, 2), (0, 2), (0, 1)],
        // p = 4 (5)
        &[(0, 1), (2, 3), (0, 2), (1, 3), (1, 2)],
        // p = 5 (9)
        &[(0, 1), (3, 4), (2, 4), (2, 3), (1, 4), (0, 3), (0, 2), (1, 3), (1, 2)],
        // p = 6 (12)
        &[(1, 2), (4, 5), (0, 2), (3, 5), (0, 1), (3, 4), (2, 5), (0, 3), (1, 4),
          (2, 4), (1, 3), (2, 3)],
        // p = 7 (16)
        &[(1, 2), (3, 4), (5, 6), (0, 2), (3, 5), (4, 6), (0, 1), (4, 5), (2, 6),
          (0, 4), (1, 5), (0, 3), (2, 5), (1, 3), (2, 4), (2, 3)],
        // p = 8 (19)
        &[(0, 1), (2, 3), (4, 5), (6, 7), (0, 2), (1, 3), (4, 6), (5, 7), (1, 2),
          (5, 6), (0, 4), (3, 7), (1, 5), (2, 6), (1, 4), (3, 6), (2, 4), (3, 5),
          (3, 4)],
        // p = 9 (25)
        &[(0, 1), (3, 4), (6, 7), (1, 2), (4, 5), (7, 8), (0, 1), (3, 4), (6, 7),
          (0, 3), (3, 6), (0, 3), (1, 4), (4, 7), (1, 4), (2, 5), (5, 8), (2, 5),
          (1, 3), (5, 7), (2, 6), (4, 6), (2, 4), (5, 6), (2, 3)],
        // p = 10 (29)
        &[(4, 9), (3, 8), (2, 7), (1, 6), (0, 5), (1, 4), (6, 9), (0, 3), (5, 8),
          (0, 2), (3, 6), (7, 9), (0, 1), (2, 4), (5, 7), (8, 9), (1, 2), (4, 6),
          (7, 8), (3, 5), (2, 5), (6, 8), (1, 3), (4, 7), (2, 3), (6, 7), (3, 4),
          (5, 6), (4, 5)],
        // p = 11 (35)
        &[(0, 9), (1, 6), (2, 4), (3, 7), (5, 8), (0, 1), (3, 5), (4, 10), (6, 9),
          (7, 8), (1, 3), (2, 5), (4, 7), (8, 10), (0, 4), (1, 2), (3, 7), (5, 9),
          (6, 8), (0, 1), (2, 6), (4, 5), (7, 8), (9, 10), (2, 4), (3, 6), (5, 7),
          (8, 9), (1, 2), (3, 4), (5, 6), (7, 8), (2, 3), (4, 5), (6, 7)],
        // p = 12 (39)
        &[(0, 8), (1, 7), (2, 6), (3, 11), (4, 10), (5, 9), (0, 1), (2, 5), (3, 4),
          (6, 9), (7, 8), (10, 11), (0, 2), (1, 6), (5, 10), (9, 11), (0, 3), (1, 2),
          (4, 6), (5, 7), (8, 11), (9, 10), (1, 4), (3, 5), (6, 8), (7, 10), (1, 3),
          (2, 5), (6, 9), (8, 10), (2, 3), (4, 5), (6, 7), (8, 9), (4, 6), (5, 7),
          (3, 4), (5, 6), (7, 8)],
    ];
    assert!(
        (2..=MAX_OPTIMAL_WIDTH).contains(&p),
        "optimal tables cover 2..=12, got {p}"
    );
    TABLES[p - 2]
        .iter()
        .map(|&(a, b)| cmp(a as usize, b as usize))
        .collect()
}

/// Expected sizes of the [`bose_nelson`] tables, indexed by `p - 2`.
pub const OPTIMAL_SIZES: [usize; 11] = [1, 3, 5, 9, 12, 16, 19, 25, 29, 35, 39];

// ---------------------------------------------------------------------------
// Layering + channel packing
// ---------------------------------------------------------------------------

/// `layers[l]` = comparator indices whose inputs become available in
/// dependency layer `l` (ASAP). Comparators sharing a line always land in
/// strictly increasing layers, in index order — which is what lets the
/// symbolic verifier's per-processor ordering check pass.
fn layer_comparators(p: usize, comps: &[Comparator]) -> Vec<Vec<usize>> {
    let mut avail = vec![0usize; p];
    let mut layers: Vec<Vec<usize>> = Vec::new();
    for (i, c) in comps.iter().enumerate() {
        let l = avail[c.lo].max(avail[c.hi]);
        if l == layers.len() {
            layers.push(Vec::new());
        }
        layers[l].push(i);
        avail[c.lo] = l + 1;
        avail[c.hi] = l + 1;
    }
    layers
}

/// How many cycles one layer of `len` exchanges takes on `k` channels.
fn layer_cycles(len: u64, k: usize) -> u64 {
    if k >= 2 {
        len.div_ceil((k / 2) as u64)
    } else {
        2 * len
    }
}

/// Pack `comps` onto `k` channels: ASAP layers, each layer edge-colored
/// (a matching, so one color class) and chunked `⌊k/2⌋` exchanges per
/// cycle. Returns the wire schedule and one [`Exchange`] per comparator,
/// **in comparator order**.
fn pack(name: &str, p: usize, k: usize, comps: &[Comparator]) -> (CheckedSchedule, Vec<Exchange>) {
    let mut b = ScheduleBuilder::new(name, p, k);
    let mut exchanges: Vec<Option<Exchange>> = vec![None; comps.len()];
    for layer in layer_comparators(p, comps) {
        // The broadcasts of a layer form a bipartite multigraph on the
        // lines; its edge chromatic number is Δ (König). A comparator
        // layer is a matching, so Δ = 1 and every edge gets color 0 — the
        // call is the generic scheduler doing a trivially easy case, kept
        // so non-matching layers (future fused networks) pack unchanged.
        let edges: Vec<(usize, usize)> =
            layer.iter().map(|&i| (comps[i].lo, comps[i].hi)).collect();
        let colors = edge_color_bipartite(p, &edges);
        let classes = colors.iter().copied().max().map_or(0, |m| m + 1);
        for class in 0..classes {
            let members: Vec<usize> = layer
                .iter()
                .enumerate()
                .filter(|&(e, _)| colors[e] == class)
                .map(|(_, &ci)| ci)
                .collect();
            if k >= 2 {
                for chunk in members.chunks(k / 2) {
                    let cyc = b.begin_cycle();
                    for (t, &ci) in chunk.iter().enumerate() {
                        let c = comps[ci];
                        let (ca, cb) = (2 * t, 2 * t + 1);
                        b.write(c.lo, ca);
                        b.read(c.hi, ca);
                        b.write(c.hi, cb);
                        b.read(c.lo, cb);
                        exchanges[ci] = Some(Exchange {
                            lo: c.lo,
                            hi: c.hi,
                            lo_cycle: cyc,
                            lo_chan: ca,
                            hi_cycle: cyc,
                            hi_chan: cb,
                        });
                    }
                }
            } else {
                for &ci in &members {
                    let c = comps[ci];
                    let c1 = b.begin_cycle();
                    b.write(c.lo, 0);
                    b.read(c.hi, 0);
                    let c2 = b.begin_cycle();
                    b.write(c.hi, 0);
                    b.read(c.lo, 0);
                    exchanges[ci] = Some(Exchange {
                        lo: c.lo,
                        hi: c.hi,
                        lo_cycle: c1,
                        lo_chan: 0,
                        hi_cycle: c2,
                        hi_chan: 0,
                    });
                }
            }
        }
    }
    let exchanges = exchanges
        .into_iter()
        .map(|e| e.expect("every comparator packed"))
        .collect();
    (b.finish(), exchanges)
}

// ---------------------------------------------------------------------------
// StaticSchedule spec
// ---------------------------------------------------------------------------

/// Which comparator network to compile.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum NetworkKind {
    /// Batcher odd-even merge-sort (any `p`).
    Batcher,
    /// Hard-coded size-optimal network (`2 <= p <= 12`).
    BoseNelson,
    /// Groups of `group` lines sorted optimally, merged by a binary tree
    /// of odd-even mergers (`2 <= group <= 12`).
    Multiway {
        /// Base-sorter width.
        group: usize,
    },
}

impl NetworkKind {
    fn label(&self) -> String {
        match self {
            NetworkKind::Batcher => "batcher".to_owned(),
            NetworkKind::BoseNelson => "bose_nelson".to_owned(),
            NetworkKind::Multiway { group } => format!("multiway{group}"),
        }
    }
}

/// A compiled-network instance: `p` lines (one key per processor) sorted
/// on `k` channels.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct NetworkSpec {
    /// Generator.
    pub kind: NetworkKind,
    /// Lines / processors.
    pub p: usize,
    /// Channels.
    pub k: usize,
}

impl NetworkSpec {
    /// The comparator sequence and its sortedness certificate tree.
    pub fn comparators(&self) -> (Vec<Comparator>, SorterCert) {
        let mut out = Vec::new();
        let cert = match self.kind {
            NetworkKind::Batcher => build_sorter(0, self.p, 1, &mut out),
            NetworkKind::BoseNelson => build_sorter(0, self.p, self.p.max(2), &mut out),
            NetworkKind::Multiway { group } => {
                assert!(
                    (2..=MAX_OPTIMAL_WIDTH).contains(&group),
                    "multiway group must be in 2..=12"
                );
                build_sorter(0, self.p, group, &mut out)
            }
        };
        (out, cert)
    }

    /// Compile to a packed schedule plus the exchange list and certificate
    /// the symbolic verifier consumes. Exhaustive 0-1 certificates up to
    /// `p = 20`, the recursive block/merger tree above.
    pub fn compile(&self) -> ObliviousNetwork {
        if self.kind == NetworkKind::BoseNelson {
            assert!(
                (2..=MAX_OPTIMAL_WIDTH).contains(&self.p),
                "bose_nelson covers 2..=12, got p={}",
                self.p
            );
        }
        let (comps, cert) = self.comparators();
        let name = format!("net_{} p={} k={}", self.kind.label(), self.p, self.k);
        let (schedule, exchanges) = pack(&name, self.p, self.k, &comps);
        let cert = if self.p <= EXHAUSTIVE_LIMIT {
            SortCert::Exhaustive
        } else {
            SortCert::Tree(cert)
        };
        ObliviousNetwork {
            schedule,
            exchanges,
            cert,
        }
    }

    /// Compile and run the full symbolic verification (structural +
    /// provenance + 0-1 sortedness) against the closed-form bounds.
    pub fn check_symbolic(&self) -> SymbolicReport {
        mcb_check::verify_network(&self.compile(), &self.bounds())
    }
}

impl StaticSchedule for NetworkSpec {
    fn emit(&self) -> CheckedSchedule {
        self.compile().schedule
    }

    fn bounds(&self) -> Bounds {
        let (comps, _) = self.comparators();
        let cycles: u64 = layer_comparators(self.p, &comps)
            .iter()
            .map(|l| layer_cycles(l.len() as u64, self.k))
            .sum();
        Bounds {
            cycles_exact: Some(cycles),
            messages_exact: Some(2 * comps.len() as u64),
            ..Bounds::none()
        }
    }
}

// ---------------------------------------------------------------------------
// Engine driver (for the trace-conformance bridge)
// ---------------------------------------------------------------------------

/// Run a compiled network on the engine: processor `i` contributes `key`
/// and returns the `i`-th smallest input. Every processor must call this
/// with the same `net` (compiled for `ctx.p()`, `ctx.k()`).
pub fn network_sort_in<K: Key>(
    ctx: &mut ProcCtx<'_, Word<K>>,
    net: &ObliviousNetwork,
    key: K,
) -> K {
    let me = ctx.id().index();
    assert_eq!(net.schedule.p, ctx.p(), "network compiled for wrong p");
    if ctx.phase_label().is_empty() {
        ctx.phase("net:exchange");
    }
    // (completion cycle, proc) -> keeps-the-minimum?
    let mut completions: HashMap<(usize, usize), bool> = HashMap::new();
    for ex in &net.exchanges {
        let done = ex.completion_cycle();
        completions.insert((done, ex.lo), true);
        completions.insert((done, ex.hi), false);
    }
    let mut mine = key;
    let mut inbox: Option<K> = None;
    for (ci, cyc) in net.schedule.cycles.iter().enumerate() {
        let intent = cyc.intents[me];
        let write = intent
            .write
            .map(|w| (ChanId(w.chan as u32), Word::Key(mine.clone())));
        let read = intent.read.map(|r| ChanId(r.chan as u32));
        if let Some(msg) = ctx.cycle(write, read) {
            inbox = Some(msg.expect_key());
        }
        if let Some(&keep_min) = completions.get(&(ci, me)) {
            let other = inbox.take().expect("leg read before completion");
            if (other < mine) == keep_min {
                mine = other;
            }
        }
    }
    mine
}

/// Whole-network convenience wrapper: sort `keys` (one per processor) on
/// an `MCB(p, k)`, returning the sorted keys plus run metrics.
pub fn network_sort<K: Key>(spec: NetworkSpec, keys: Vec<K>) -> Result<SortReport<K>, NetError> {
    if keys.len() != spec.p {
        return Err(NetError::BadConfig(
            "need exactly one key per processor".into(),
        ));
    }
    let net = std::sync::Arc::new(spec.compile());
    let input = keys;
    let report = Network::new(spec.p, spec.k).run(move |ctx| {
        let key = input[ctx.id().index()].clone();
        network_sort_in(ctx, &net, key)
    })?;
    let metrics = report.metrics.clone();
    Ok(SortReport {
        lists: report.into_results().into_iter().map(|k| vec![k]).collect(),
        metrics,
    })
}

#[cfg(test)]
mod tests {
    use super::*;

    /// Brute-force 0-1 check, independent of the symbolic prover.
    fn sorts_all_binary(p: usize, comps: &[Comparator]) -> bool {
        assert!(p <= 24);
        for v in 0u64..(1 << p) {
            let mut lines: Vec<u64> = (0..p).map(|j| (v >> j) & 1).collect();
            for c in comps {
                let (a, b) = (lines[c.lo], lines[c.hi]);
                lines[c.lo] = a.min(b);
                lines[c.hi] = a.max(b);
            }
            if lines.windows(2).any(|w| w[0] > w[1]) {
                return false;
            }
        }
        true
    }

    #[test]
    fn optimal_tables_sort_and_have_optimal_sizes() {
        for p in 2..=MAX_OPTIMAL_WIDTH {
            let comps = bose_nelson(p);
            assert_eq!(
                comps.len(),
                OPTIMAL_SIZES[p - 2],
                "table size for p={p} is off"
            );
            assert!(sorts_all_binary(p, &comps), "p={p} table does not sort");
        }
    }

    #[test]
    fn batcher_sorts_every_width() {
        for p in 1..=20 {
            assert!(sorts_all_binary(p, &batcher(p)), "batcher p={p} fails");
        }
    }

    #[test]
    fn batcher_matches_closed_form_on_powers_of_two() {
        for t in 0..=6u32 {
            let p = 1usize << t;
            assert_eq!(
                batcher(p).len() as u64,
                batcher_size_pow2(t),
                "size mismatch at p={p}"
            );
        }
    }

    #[test]
    fn merger_handles_uneven_runs() {
        // Exhaustive over every split of up to 10 lines: sort each run's
        // lines (identity on 0-1 sorted runs), merge, check all pairs.
        for total in 2..=10usize {
            for m in 1..total {
                let n = total - m;
                let mut comps = Vec::new();
                let a: Vec<usize> = (0..m).collect();
                let b: Vec<usize> = (m..total).collect();
                odd_even_merge(&a, &b, &mut comps);
                for za in 0..=m {
                    for zb in 0..=n {
                        let mut lines: Vec<u64> = (0..m)
                            .map(|j| u64::from(j >= za))
                            .chain((0..n).map(|j| u64::from(j >= zb)))
                            .collect();
                        for c in &comps {
                            let (x, y) = (lines[c.lo], lines[c.hi]);
                            lines[c.lo] = x.min(y);
                            lines[c.hi] = x.max(y);
                        }
                        assert!(
                            lines.windows(2).all(|w| w[0] <= w[1]),
                            "merge({m},{n}) fails on za={za} zb={zb}"
                        );
                    }
                }
            }
        }
    }

    #[test]
    fn multiway_sorts_with_mixed_group_sizes() {
        for (p, group) in [(7, 3), (12, 4), (13, 5), (24, 12), (25, 6)] {
            let spec = NetworkSpec {
                kind: NetworkKind::Multiway { group },
                p,
                k: 2,
            };
            let (comps, _) = spec.comparators();
            if p <= 20 {
                assert!(sorts_all_binary(p, &comps), "multiway p={p} g={group}");
            }
            let r = spec.check_symbolic();
            assert!(r.is_ok(), "p={p} g={group}:\n{r}");
        }
    }

    #[test]
    fn compiled_networks_prove_symbolically() {
        for kind in [
            NetworkKind::Batcher,
            NetworkKind::BoseNelson,
            NetworkKind::Multiway { group: 4 },
        ] {
            for (p, k) in [(8usize, 1usize), (8, 2), (8, 3), (12, 4), (12, 16)] {
                let spec = NetworkSpec { kind, p, k };
                let r = spec.check_symbolic();
                assert!(r.is_ok(), "{kind:?} p={p} k={k}:\n{r}");
                assert_eq!(r.cert, "exhaustive");
            }
        }
    }

    #[test]
    fn large_networks_use_tree_certificates() {
        for (kind, p) in [
            (NetworkKind::Batcher, 33usize),
            (NetworkKind::Multiway { group: 8 }, 40),
        ] {
            let spec = NetworkSpec { kind, p, k: 4 };
            let r = spec.check_symbolic();
            assert!(r.is_ok(), "{kind:?} p={p}:\n{r}");
            assert_eq!(r.cert, "tree");
        }
    }

    #[test]
    fn packing_respects_channel_budget() {
        // Every cycle uses at most k channels, each exactly once, and
        // both legs of a k>=2 exchange share a cycle.
        let spec = NetworkSpec {
            kind: NetworkKind::Batcher,
            p: 16,
            k: 6,
        };
        let net = spec.compile();
        for cyc in &net.schedule.cycles {
            let mut used = vec![false; spec.k];
            for intent in &cyc.intents {
                if let Some(w) = intent.write {
                    assert!(w.chan < spec.k && !used[w.chan], "channel reuse");
                    used[w.chan] = true;
                }
            }
        }
        for ex in &net.exchanges {
            assert_eq!(ex.lo_cycle, ex.hi_cycle, "k>=2 legs share a cycle");
        }
    }
}
