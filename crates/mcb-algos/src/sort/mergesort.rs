//! Merge-Sort: the single-channel distributed merge of §6.1.
//!
//! Each processor sorts its input locally (free), then the network
//! repeatedly extracts the globally largest remaining element from among
//! the processors' *top elements*. A **distributed linked list** of the top
//! elements, sorted descending, makes the extraction O(1) messages:
//!
//! * each processor in the list knows its own top element, a *pointer* (the
//!   value of the next smaller top) and its *rank* in the list;
//! * per output element: the rank-1 processor broadcasts its top (delivered
//!   straight to the target processor), every rank decrements, and the
//!   sender re-inserts its new top — all processors with a smaller top
//!   increment their rank, and the unique processor `P_b` whose (top,
//!   pointer) interval brackets the new element replies with the new rank
//!   and pointer;
//! * "larger than all tops" is detected by silence, in which case the old
//!   head replies with its top so the new head can point at it.
//!
//! Linear cycles and messages. Two variants are provided:
//!
//! * [`merge_sort_single_channel`] — per-processor output buffers (simplest
//!   protocol; `O(n_i)` auxiliary memory);
//! * [`merge_sort_replacement_single_channel`] — the paper's **replacement
//!   scheme**: every delivered output element evicts one input element from
//!   its target back to the just-popped head, so each processor's combined
//!   storage never exceeds its original `n_i` slots — the §6.1 "O(1)
//!   auxiliary memory" property, with one extra subtlety the paper glosses:
//!   when the eviction takes a processor's *last* input (exactly when its
//!   output segment completes, by the storage invariant) that processor
//!   must leave the linked list, which costs one extra broadcast cycle per
//!   element.

use crate::msg::Key;
use mcb_net::{bits_for_u64, ChanId, MsgWidth, NetError, Network, ProcCtx};

use super::grouped::SortReport;

/// Wire format for the Merge-Sort protocol.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum MsMsg<K> {
    /// A data element (census counts use `Ctl`).
    Key(K),
    /// A control integer.
    Ctl(u64),
    /// Insertion response: the inserted element's new rank and pointer.
    Ins {
        /// Rank the inserted element takes in the linked list.
        rank: u64,
        /// Pointer (next smaller top), `None` when inserting at the tail.
        ptr: Option<K>,
    },
}

impl<K: MsgWidth> MsgWidth for MsMsg<K> {
    fn bits(&self) -> u32 {
        2 + match self {
            MsMsg::Key(k) => k.bits(),
            MsMsg::Ctl(v) => bits_for_u64(*v),
            MsMsg::Ins { rank, ptr } => {
                bits_for_u64(*rank) + 1 + ptr.as_ref().map_or(0, |p| p.bits())
            }
        }
    }
}

impl<K> MsMsg<K> {
    fn expect_key(self) -> K {
        match self {
            MsMsg::Key(k) => k,
            _ => panic!("protocol error: expected Key"),
        }
    }
    fn expect_ctl(self) -> u64 {
        match self {
            MsMsg::Ctl(v) => v,
            _ => panic!("protocol error: expected Ctl"),
        }
    }
}

/// Sort `lists` (arbitrary distribution, distinct keys) on an `MCB(p, 1)`
/// with the distributed Merge-Sort.
pub fn merge_sort_single_channel<K: Key>(lists: Vec<Vec<K>>) -> Result<SortReport<K>, NetError> {
    let p = lists.len();
    if p == 0 || lists.iter().any(Vec::is_empty) {
        return Err(NetError::BadConfig(
            "need p >= 1 nonempty lists (paper model assumes n_i > 0)".into(),
        ));
    }
    let input = lists;
    let report = Network::new(p, 1).run(move |ctx| {
        let mine = input[ctx.id().index()].clone();
        merge_sort_in(ctx, ChanId(0), mine)
    })?;
    let metrics = report.metrics.clone();
    Ok(SortReport {
        lists: report.into_results(),
        metrics,
    })
}

/// Per-processor state in the distributed linked list.
struct ListState<K> {
    /// My remaining input, ascending (so `pop` yields the current top).
    stack: Vec<K>,
    /// My rank in the linked list (1 = head); `None` when not in the list.
    rank: Option<u64>,
    /// Value of the next smaller top (linked-list pointer).
    ptr: Option<K>,
}

impl<K: Key> ListState<K> {
    fn top(&self) -> Option<&K> {
        self.stack.last()
    }
}

/// The three-cycle insertion of a (possibly absent) new top element.
/// `new` is `Some` only at the inserting processor; all others pass `None`.
fn insert_top<K: Key>(
    ctx: &mut ProcCtx<'_, MsMsg<K>>,
    chan: ChanId,
    st: &mut ListState<K>,
    inserting: bool,
) {
    // Cycle A: the inserter broadcasts its new top (silence = nothing to
    // insert, the list just shrinks).
    let announce = if inserting { st.top().cloned() } else { None };
    let write_a = announce.clone().map(|k| (chan, MsMsg::Key(k)));
    let heard = ctx.cycle(write_a, Some(chan)).map(MsMsg::expect_key);
    let Some(new) = heard else {
        // Nothing inserted; cycles B and C still happen for lock-step.
        ctx.idle();
        ctx.idle();
        return;
    };

    // Everyone in the list below the new element moves down one rank.
    // (The inserter itself is not in the list right now.)
    let i_bracket = !inserting
        && st.rank.is_some()
        && st.top().is_some_and(|t| *t > new)
        && st.ptr.as_ref().is_none_or(|p| *p < new);
    if !inserting && st.rank.is_some() && st.top().is_some_and(|t| *t < new) {
        st.rank = Some(st.rank.unwrap() + 1);
    }

    // Cycle B: the bracketing processor P_b replies with (rank + 1, ptr)
    // and repoints at the new element.
    let write_b = i_bracket.then(|| {
        (
            chan,
            MsMsg::Ins {
                rank: st.rank.unwrap() + 1,
                ptr: st.ptr.clone(),
            },
        )
    });
    let resp_b = ctx.cycle(write_b, Some(chan));
    if i_bracket {
        st.ptr = Some(new.clone());
    }

    // Cycle C: if B was silent the new element is the largest; the current
    // head (rank 1 after the increments) replies with its top so the new
    // head can point at it.
    let b_was_silent = resp_b.is_none();
    let i_am_old_head = !inserting && b_was_silent && st.rank == Some(2);
    // (If B was silent, every list member's top is smaller than `new`, so
    // each incremented its rank; the old head now has rank 2.)
    let write_c = i_am_old_head.then(|| (chan, MsMsg::Key(st.top().unwrap().clone())));
    let resp_c = ctx.cycle(write_c, Some(chan));

    if inserting {
        match resp_b {
            Some(MsMsg::Ins { rank, ptr }) => {
                st.rank = Some(rank);
                st.ptr = ptr;
            }
            Some(_) => panic!("protocol error: expected Ins"),
            None => {
                st.rank = Some(1);
                st.ptr = resp_c.map(MsMsg::expect_key);
            }
        }
    }
}

/// Merge-Sort as a lock-step subroutine on one shared channel.
pub fn merge_sort_in<K: Key>(
    ctx: &mut ProcCtx<'_, MsMsg<K>>,
    chan: ChanId,
    mine: Vec<K>,
) -> Vec<K> {
    let p = ctx.p();
    let i = ctx.id().index();
    let label = ctx.phase_label().is_empty();

    // ---- census ------------------------------------------------------------
    if label {
        ctx.phase("ms:census");
    }
    let mut counts = vec![0u64; p];
    for turn in 0..p {
        let write = (turn == i).then(|| (chan, MsMsg::Ctl(mine.len() as u64)));
        let got = ctx.cycle(write, Some(chan));
        counts[turn] = got.expect("census").expect_ctl();
    }
    let prefix: Vec<u64> = counts
        .iter()
        .scan(0u64, |acc, &c| {
            *acc += c;
            Some(*acc)
        })
        .collect();
    let n = prefix[p - 1];
    let target_lo = if i == 0 { 0 } else { prefix[i - 1] };
    let target_hi = prefix[i];

    // ---- local sort (free) and list construction ---------------------------
    let mut stack = mine;
    stack.sort_unstable(); // ascending: last() is the top (largest)
    let mut st = ListState {
        stack,
        rank: None,
        ptr: None,
    };
    if label {
        ctx.phase("ms:build");
    }
    for turn in 0..p {
        insert_top(ctx, chan, &mut st, turn == i);
    }

    // ---- main loop: extract n elements -------------------------------------
    if label {
        ctx.phase("ms:extract");
    }
    let mut out: Vec<K> = Vec::with_capacity((target_hi - target_lo) as usize);
    for t in 0..n {
        // Cycle 1: the head broadcasts its top; the target processor for
        // global rank t stores it; all ranks decrement.
        let i_am_head = st.rank == Some(1);
        let write = i_am_head.then(|| (chan, MsMsg::Key(st.top().unwrap().clone())));
        let got = ctx.cycle(write, Some(chan));
        if t >= target_lo && t < target_hi {
            out.push(
                got.expect("head always exists while elements remain")
                    .expect_key(),
            );
        }
        if i_am_head {
            st.stack.pop();
            st.rank = None;
            st.ptr = None;
        } else if let Some(r) = st.rank {
            st.rank = Some(r - 1);
        }
        // Cycles 2-4: the old head re-inserts its new top (or silence).
        let reinsert = i_am_head && st.top().is_some();
        insert_top(ctx, chan, &mut st, reinsert);
    }
    if label {
        ctx.phase("");
    }
    out
}

/// Sort with the paper's O(1)-auxiliary-memory **replacement scheme**:
/// "whenever an element is moved to its target processor, the target
/// processor sends its smallest remaining input element as replacement to
/// the processor at the head of the linked list" (§6.1). Every processor's
/// combined (input + output) storage never exceeds `n_i` elements — the
/// output grows exactly as the input shrinks.
pub fn merge_sort_replacement_single_channel<K: Key>(
    lists: Vec<Vec<K>>,
) -> Result<SortReport<K>, NetError> {
    let p = lists.len();
    if p == 0 || lists.iter().any(Vec::is_empty) {
        return Err(NetError::BadConfig(
            "need p >= 1 nonempty lists (paper model assumes n_i > 0)".into(),
        ));
    }
    let input = lists;
    let report = Network::new(p, 1).run(move |ctx| {
        let mine = input[ctx.id().index()].clone();
        merge_sort_replacement_in(ctx, ChanId(0), mine)
    })?;
    let metrics = report.metrics.clone();
    Ok(SortReport {
        lists: report.into_results(),
        metrics,
    })
}

/// Subroutine form of the replacement-scheme Merge-Sort. Five cycles per
/// output element: delivery, eviction, and the three-cycle insertion.
///
/// Storage invariant (asserted in debug builds): at every processor,
/// `remaining inputs + stored outputs == n_i`, because each delivered
/// output evicts one input to the just-popped head, whose own storage is
/// simultaneously replenished by that eviction.
pub fn merge_sort_replacement_in<K: Key>(
    ctx: &mut ProcCtx<'_, MsMsg<K>>,
    chan: ChanId,
    mine: Vec<K>,
) -> Vec<K> {
    let p = ctx.p();
    let i = ctx.id().index();
    let n_i = mine.len();
    let label = ctx.phase_label().is_empty();

    // ---- census ------------------------------------------------------------
    if label {
        ctx.phase("ms:census");
    }
    let mut counts = vec![0u64; p];
    for turn in 0..p {
        let write = (turn == i).then(|| (chan, MsMsg::Ctl(mine.len() as u64)));
        let got = ctx.cycle(write, Some(chan));
        counts[turn] = got.expect("census").expect_ctl();
    }
    let prefix: Vec<u64> = counts
        .iter()
        .scan(0u64, |acc, &c| {
            *acc += c;
            Some(*acc)
        })
        .collect();
    let n = prefix[p - 1];
    let target_lo = if i == 0 { 0 } else { prefix[i - 1] };
    let target_hi = prefix[i];

    // ---- local sort (free) and list construction ---------------------------
    let mut stack = mine;
    stack.sort_unstable();
    let mut st = ListState {
        stack,
        rank: None,
        ptr: None,
    };
    if label {
        ctx.phase("ms:build");
    }
    for turn in 0..p {
        insert_top(ctx, chan, &mut st, turn == i);
    }

    // ---- main loop ----------------------------------------------------------
    if label {
        ctx.phase("ms:extract");
    }
    let mut out: Vec<K> = Vec::with_capacity((target_hi - target_lo) as usize);
    for t in 0..n {
        // Cycle 1: delivery, exactly as the buffered variant.
        let i_am_head = st.rank == Some(1);
        let write = i_am_head.then(|| (chan, MsMsg::Key(st.top().unwrap().clone())));
        let got = ctx.cycle(write, Some(chan));
        let i_am_target = t >= target_lo && t < target_hi;
        if i_am_target {
            out.push(got.expect("head always exists").expect_key());
        }
        if i_am_head {
            st.stack.pop();
            st.rank = None;
            st.ptr = None;
        } else if let Some(r) = st.rank {
            st.rank = Some(r - 1);
        }

        // Cycle 2: eviction. The target replaces the stored output by
        // shipping its smallest remaining input to the old head. When the
        // target *is* the old head the exchange is internal — silence.
        // Everyone listens: the evicted value is needed in cycle 3 to
        // repair the linked list if it was the evictor's registered top.
        let evict = i_am_target && !i_am_head && !st.stack.is_empty();
        let self_removed = evict && st.stack.len() == 1 && st.rank.is_some();
        let write = evict.then(|| (chan, MsMsg::Key(st.stack[0].clone())));
        let got = ctx.cycle(write, Some(chan));
        let evicted: Option<K> = got.map(MsMsg::expect_key);
        if evict {
            st.stack.remove(0);
        }
        if i_am_head {
            if let Some(key) = evicted.clone() {
                let pos = st.stack.partition_point(|x| *x < key);
                st.stack.insert(pos, key);
            }
        }
        debug_assert!(
            st.stack.len() + out.len() <= n_i.max(1),
            "storage invariant violated: {} inputs + {} outputs > n_i = {n_i}",
            st.stack.len(),
            out.len()
        );

        // Cycle 3: if the eviction took the evictor's last input (which was
        // also its registered top — by the storage invariant this happens
        // exactly when the evictor's target segment is complete), the
        // evictor leaves the linked list: it announces its (rank, ptr);
        // members below move up one rank and its predecessor repoints.
        let write = self_removed.then(|| {
            (
                chan,
                MsMsg::Ins {
                    rank: st.rank.expect("self-removal implies membership"),
                    ptr: st.ptr.clone(),
                },
            )
        });
        let leave = ctx.cycle(write, Some(chan));
        if self_removed {
            st.rank = None;
            st.ptr = None;
        } else if let Some(MsMsg::Ins { rank, ptr }) = leave {
            if let Some(my_rank) = st.rank {
                if my_rank > rank {
                    st.rank = Some(my_rank - 1);
                }
                if st.ptr.is_some() && st.ptr == evicted {
                    st.ptr = ptr;
                }
            }
        }

        // Cycles 4-6: the old head re-inserts its (possibly replenished) top.
        let reinsert = i_am_head && st.top().is_some();
        insert_top(ctx, chan, &mut st, reinsert);
    }
    out
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::sort::verify::verify_sorted;
    use mcb_workloads::{distributions, rng, Placement};

    fn check(placement: Placement) -> mcb_net::Metrics {
        let report = merge_sort_single_channel(placement.lists().to_vec()).unwrap();
        verify_sorted(placement.lists(), &report.lists).unwrap();
        report.metrics
    }

    #[test]
    fn sorts_even_and_uneven() {
        check(distributions::even(4, 32, &mut rng(31)));
        check(distributions::random_uneven(5, 41, &mut rng(32)));
        check(distributions::single_heavy(3, 24, 0.7, &mut rng(33)));
    }

    #[test]
    fn linear_cycles_and_messages() {
        let pl = distributions::even(4, 80, &mut rng(34));
        let (n, p) = (pl.n() as u64, pl.p() as u64);
        let m = check(pl);
        // census p + construction 3p + n * 4 cycles.
        assert_eq!(m.cycles, p + 3 * p + 4 * n);
        // At most 3 messages per output element plus construction traffic.
        assert!(m.messages <= 3 * n + 3 * p, "messages {}", m.messages);
    }

    #[test]
    fn single_processor_degenerates() {
        let pl = Placement::new(vec![vec![2u64, 9, 4]]);
        let report = merge_sort_single_channel(pl.lists().to_vec()).unwrap();
        assert_eq!(report.lists, vec![vec![9, 4, 2]]);
    }

    #[test]
    fn interleaved_inputs() {
        // Adversarial for merge order: strictly alternating ownership.
        let pl = Placement::new(vec![vec![10u64, 8, 6, 4, 2], vec![9u64, 7, 5, 3, 1]]);
        let report = merge_sort_single_channel(pl.lists().to_vec()).unwrap();
        assert_eq!(report.lists[0], vec![10, 9, 8, 7, 6]);
        assert_eq!(report.lists[1], vec![5, 4, 3, 2, 1]);
    }

    #[test]
    fn agrees_with_ranksort() {
        let pl = distributions::random_uneven(6, 60, &mut rng(35));
        let a = merge_sort_single_channel(pl.lists().to_vec()).unwrap();
        let b = crate::sort::ranksort::rank_sort_single_channel(pl.lists().to_vec()).unwrap();
        assert_eq!(a.lists, b.lists);
    }

    #[test]
    fn rejects_empty_list() {
        assert!(merge_sort_single_channel(vec![vec![1u64], vec![]]).is_err());
    }

    #[test]
    fn replacement_scheme_sorts_and_agrees() {
        for seed in 40..46 {
            let pl = distributions::random_uneven(5, 50, &mut rng(seed));
            let buffered = merge_sort_single_channel(pl.lists().to_vec()).unwrap();
            let o1 = merge_sort_replacement_single_channel(pl.lists().to_vec()).unwrap();
            verify_sorted(pl.lists(), &o1.lists).unwrap();
            assert_eq!(buffered.lists, o1.lists, "seed {seed}");
        }
    }

    #[test]
    fn replacement_scheme_even_and_heavy() {
        let pl = distributions::even(4, 48, &mut rng(46));
        let o1 = merge_sort_replacement_single_channel(pl.lists().to_vec()).unwrap();
        verify_sorted(pl.lists(), &o1.lists).unwrap();
        let pl = distributions::single_heavy(4, 40, 0.7, &mut rng(47));
        let o1 = merge_sort_replacement_single_channel(pl.lists().to_vec()).unwrap();
        verify_sorted(pl.lists(), &o1.lists).unwrap();
    }

    #[test]
    fn replacement_scheme_costs_stay_linear() {
        let pl = distributions::even(4, 80, &mut rng(48));
        let (n, p) = (pl.n() as u64, pl.p() as u64);
        let o1 = merge_sort_replacement_single_channel(pl.lists().to_vec()).unwrap();
        verify_sorted(pl.lists(), &o1.lists).unwrap();
        // census p + construction 3p + n * 6 cycles.
        assert_eq!(o1.metrics.cycles, p + 3 * p + 6 * n);
        // Delivery + eviction + <= 3 insertion messages per element.
        assert!(o1.metrics.messages <= 5 * n + 3 * p);
    }

    #[test]
    fn replacement_scheme_single_processor() {
        let o1 = merge_sort_replacement_single_channel(vec![vec![3u64, 8, 1]]).unwrap();
        assert_eq!(o1.lists, vec![vec![8, 3, 1]]);
    }
}
