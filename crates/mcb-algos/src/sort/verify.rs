//! Postcondition checking for distributed sorts.
//!
//! §3 defines sorting as "rearranging the distribution of N among the
//! processors so that `N_i = N[n_{i-1}^+ + 1, n_i^+]`": cardinalities are
//! preserved per processor, `P_1` ends up with the largest elements, and
//! each processor's list is internally descending.

/// Why a sort output is wrong.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum SortViolation {
    /// Output has a different number of processors than the input.
    ProcessorCountChanged {
        /// Expected processor count.
        expected: usize,
        /// Actual processor count.
        actual: usize,
    },
    /// Processor `i`'s output cardinality differs from its input's.
    CardinalityChanged {
        /// Processor index.
        proc: usize,
        /// `n_i` before the sort.
        expected: usize,
        /// `|output_i]`.
        actual: usize,
    },
    /// Processor `i`'s list is not descending at position `pos`.
    NotDescendingWithin {
        /// Processor index.
        proc: usize,
        /// Offset of the first out-of-order adjacent pair.
        pos: usize,
    },
    /// The last element of processor `i` is smaller than the first element
    /// of processor `i + 1`.
    NotDescendingAcross {
        /// The earlier processor.
        proc: usize,
    },
    /// The output multiset differs from the input multiset.
    MultisetChanged,
}

impl std::fmt::Display for SortViolation {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        match self {
            SortViolation::ProcessorCountChanged { expected, actual } => {
                write!(f, "processor count changed: {expected} -> {actual}")
            }
            SortViolation::CardinalityChanged {
                proc,
                expected,
                actual,
            } => write!(
                f,
                "P{}'s cardinality changed: {expected} -> {actual}",
                proc + 1
            ),
            SortViolation::NotDescendingWithin { proc, pos } => {
                write!(f, "P{}'s list not descending at offset {pos}", proc + 1)
            }
            SortViolation::NotDescendingAcross { proc } => {
                write!(f, "P{} ends smaller than P{} begins", proc + 1, proc + 2)
            }
            SortViolation::MultisetChanged => write!(f, "output multiset differs from input"),
        }
    }
}

impl std::error::Error for SortViolation {}

/// Check the §3 sorting postcondition of `output` against the original
/// `input` lists.
pub fn verify_sorted<K: Ord + Clone>(
    input: &[Vec<K>],
    output: &[Vec<K>],
) -> Result<(), SortViolation> {
    if output.len() != input.len() {
        return Err(SortViolation::ProcessorCountChanged {
            expected: input.len(),
            actual: output.len(),
        });
    }
    for (i, (inp, out)) in input.iter().zip(output).enumerate() {
        if inp.len() != out.len() {
            return Err(SortViolation::CardinalityChanged {
                proc: i,
                expected: inp.len(),
                actual: out.len(),
            });
        }
        if let Some(pos) = out.windows(2).position(|w| w[0] < w[1]) {
            return Err(SortViolation::NotDescendingWithin { proc: i, pos });
        }
    }
    for i in 0..output.len() - 1 {
        let last = output[i].last().expect("nonempty lists");
        let first = output[i + 1].first().expect("nonempty lists");
        if last < first {
            return Err(SortViolation::NotDescendingAcross { proc: i });
        }
    }
    let mut a: Vec<K> = output.iter().flatten().cloned().collect();
    let mut b: Vec<K> = input.iter().flatten().cloned().collect();
    a.sort_unstable();
    b.sort_unstable();
    if a != b {
        return Err(SortViolation::MultisetChanged);
    }
    Ok(())
}

#[cfg(test)]
mod tests {
    use super::*;

    fn input() -> Vec<Vec<u64>> {
        vec![vec![5, 1], vec![9, 3, 7]]
    }

    #[test]
    fn accepts_correct_output() {
        let out = vec![vec![9, 7], vec![5, 3, 1]];
        assert_eq!(verify_sorted(&input(), &out), Ok(()));
    }

    #[test]
    fn rejects_cardinality_change() {
        let out = vec![vec![9, 7, 5], vec![3, 1]];
        assert!(matches!(
            verify_sorted(&input(), &out),
            Err(SortViolation::CardinalityChanged { proc: 0, .. })
        ));
    }

    #[test]
    fn rejects_unsorted_within() {
        let out = vec![vec![7, 9], vec![5, 3, 1]];
        assert!(matches!(
            verify_sorted(&input(), &out),
            Err(SortViolation::NotDescendingWithin { proc: 0, pos: 0 })
        ));
    }

    #[test]
    fn rejects_unsorted_across() {
        let out = vec![vec![9, 5], vec![7, 3, 1]];
        assert_eq!(
            verify_sorted(&input(), &out),
            Err(SortViolation::NotDescendingAcross { proc: 0 })
        );
    }

    #[test]
    fn rejects_changed_multiset() {
        let out = vec![vec![9, 7], vec![5, 3, 2]];
        assert_eq!(
            verify_sorted(&input(), &out),
            Err(SortViolation::MultisetChanged)
        );
    }

    #[test]
    fn display_is_one_based() {
        let v = SortViolation::NotDescendingAcross { proc: 0 };
        assert!(v.to_string().contains("P1"));
        assert!(v.to_string().contains("P2"));
    }
}
