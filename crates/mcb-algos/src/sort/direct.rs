//! The `p = k` sorting special case (§5.2's first construction).
//!
//! With one channel per processor and an even distribution, each processor
//! *is* a column: no collection (phase 0) or redistribution (phase 10) is
//! needed, except when padding was required (`k ∤ n/k`), in which case a
//! two-pass rebroadcast realigns segment boundaries exactly as the paper
//! prescribes ("group representatives must therefore broadcast each element
//! twice").
//!
//! Complexity: `O(n)` messages and `O(n/k)` cycles — optimal by Theorem 3
//! and Corollary 3 since `n_max = n_max2`.

use crate::columnsort::padded_column_length;
use crate::msg::{Key, Word};
use crate::sort::columns::{columnsort_net_in, ColumnRole};
use crate::sort::grouped::SortReport;
use mcb_net::{ChanId, NetError, Network, ProcCtx};

/// Sort equally sized `lists` on an `MCB(p, p)` (one channel per
/// processor). All lists must have the same length.
pub fn sort_direct<K: Key>(lists: Vec<Vec<K>>) -> Result<SortReport<K>, NetError> {
    let p = lists.len();
    if p == 0 {
        return Err(NetError::BadConfig("need at least one processor".into()));
    }
    let m = lists[0].len();
    if lists.iter().any(|l| l.len() != m) {
        return Err(NetError::BadConfig(
            "sort_direct requires an even distribution".into(),
        ));
    }
    if m == 0 {
        return Err(NetError::BadConfig("paper model assumes n_i > 0".into()));
    }
    let input = lists;
    let report = Network::new(p, p).run(move |ctx| {
        let mine = input[ctx.id().index()].clone();
        sort_direct_in(ctx, mine)
    })?;
    let metrics = report.metrics.clone();
    Ok(SortReport {
        lists: report.into_results(),
        metrics,
    })
}

/// Lock-step subroutine form: requires `ctx.p() == ctx.k()` and equal list
/// lengths across processors (caller's contract).
pub fn sort_direct_in<K: Key>(ctx: &mut ProcCtx<'_, Word<K>>, mine: Vec<K>) -> Vec<K> {
    let p = ctx.p();
    assert_eq!(p, ctx.k(), "sort_direct requires p = k");
    let i = ctx.id().index();
    let m = mine.len();
    let m_pad = padded_column_length(m, p);

    let mut data: Vec<Option<K>> = mine.into_iter().map(Some).collect();
    data.resize(m_pad, None);

    let sorted = columnsort_net_in(
        ctx,
        Some(ColumnRole { col: i, data }),
        m_pad,
        p,
        &|key| Word::Key(key),
        &|msg: Word<K>| msg.expect_key(),
    )
    .expect("padded shape is legal")
    .expect("every processor owns a column");

    if m_pad == m {
        // No padding: column i is exactly the target segment.
        return sorted
            .into_iter()
            .map(|x| x.expect("no dummies without padding"))
            .collect();
    }

    // Padding displaced segment boundaries: my target global positions are
    // [i*m, (i+1)*m), spread over at most two columns of length m_pad
    // (since m <= m_pad). Everyone rebroadcasts its column `passes` times;
    // pass t serves each processor's (lo_col + t)'th column. `passes` is
    // computable locally: the maximum span over all processors.
    let spans = (0..p).map(|j| {
        let lo = (j * m) / m_pad;
        let hi = ((j + 1) * m - 1) / m_pad;
        hi - lo + 1
    });
    let passes = spans.max().unwrap();
    debug_assert!(passes <= 2);

    let lo = i * m;
    let hi = (i + 1) * m;
    let lo_col = lo / m_pad;
    let hi_col = (hi - 1) / m_pad;
    let mut out = Vec::with_capacity(m);
    for pass in 0..passes {
        let target_col = lo_col + pass;
        for row in 0..m_pad {
            let write = sorted[row]
                .clone()
                .map(|key| (ChanId::from_index(i), Word::Key(key)));
            let global = target_col * m_pad + row;
            let want = target_col <= hi_col && global >= lo && global < hi;
            let read = want.then(|| ChanId::from_index(target_col));
            let got = ctx.cycle(write, read);
            if want {
                out.push(got.expect("real ranks are broadcast").expect_key());
            }
        }
    }
    debug_assert_eq!(out.len(), m);
    out
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::sort::verify::verify_sorted;
    use mcb_workloads::{distributions, rng, Placement};

    fn check(placement: Placement) -> mcb_net::Metrics {
        let report = sort_direct(placement.lists().to_vec()).unwrap();
        verify_sorted(placement.lists(), &report.lists).unwrap();
        report.metrics
    }

    #[test]
    fn sorts_without_padding() {
        // p = k = 4, n_i = 16, 4 | 16: no padding path.
        let pl = distributions::even(4, 64, &mut rng(11));
        let metrics = check(pl);
        // Four transform phases of <= 16 cycles each.
        assert!(metrics.cycles <= 64, "cycles {}", metrics.cycles);
    }

    #[test]
    fn sorts_with_padding_and_redistribution() {
        // p = k = 4, n_i = 13: padded to m_pad = 16 > 13.
        let pl = distributions::even(4, 52, &mut rng(12));
        check(pl);
    }

    #[test]
    fn sorts_tiny_even_case() {
        let pl = distributions::even(2, 4, &mut rng(13));
        check(pl);
    }

    #[test]
    fn rejects_uneven_input() {
        let err = sort_direct(vec![vec![1u64, 2], vec![3u64]]).unwrap_err();
        assert!(matches!(err, NetError::BadConfig(_)));
    }

    #[test]
    fn rejects_empty_lists() {
        let err = sort_direct(vec![Vec::<u64>::new(), vec![]]).unwrap_err();
        assert!(matches!(err, NetError::BadConfig(_)));
    }

    #[test]
    fn message_and_cycle_bounds_hold() {
        let pl = distributions::even(8, 448, &mut rng(14)); // m = 56 = k(k-1), 8 | 56
        let n = pl.n() as u64;
        let k = 8u64;
        let metrics = check(pl);
        assert!(metrics.messages <= 4 * n, "messages {}", metrics.messages);
        assert!(
            metrics.cycles <= 5 * n / k,
            "cycles {} vs n/k {}",
            metrics.cycles,
            n / k
        );
    }
}
