//! Memory-efficient virtual columns (§6.1) and recursive Columnsort (§6.2).
//!
//! §5.2's collect/redistribute implementation needs `O(n/k)` memory at each
//! representative. §6.1 removes this by keeping every column *virtual*:
//! spread in row-blocks across its group of processors, sorted in place by
//! the single-channel Rank-Sort, with transformation traffic carried out by
//! whichever processor holds the element being moved. §6.2 then applies
//! the idea recursively — a virtual column is itself sorted by a Columnsort
//! over sub-columns — so that small inputs (`n < k²(k-1)`) still get cycle
//! parallelism from all `k` channels.
//!
//! Both are realized here by one depth-parameterized routine:
//!
//! * [`sort_virtual`] with `depth = 1` is §6.1 (one level of columns, each
//!   Rank-Sorted on its group's channel);
//! * larger depths recurse: each column's sorting phases split it into
//!   sub-columns over the group's processors *and* its share of channels.
//!
//! Transformation phases use a **member-level schedule**
//! ([`MemberSchedule`]): the bipartite multigraph of element moves between
//! *processors* (not columns) is edge-colored (König) and the color classes
//! packed into cycles of at most `chans` concurrent broadcasts, giving
//! `O(max(b, M/chans))` cycles per transformation for blocks of `b` rows —
//! the paper's "all segments are broadcast simultaneously, each segment
//! using a separate channel".
//!
//! Every processor keeps only its own `b = n/p` rows plus an equal-sized
//! receive buffer: `O(n/p)` memory, against `O(n/k)` for the representative
//! scheme (experiment E11 tabulates the difference).
//!
//! Fidelity note: the OCR of §6.2's parameter conditions (`k >= 4^s`,
//! `n >= k^{3s+2}`, `k' = n^{1/2s}`) is garbled in places; we keep the
//! *structure* (recursive virtual-column sorting, all levels sharing the
//! channels) and derive the shape conditions from first principles: a level
//! splits into `k₂` columns only when `k₂² | M` and `M/k₂ >= k₂(k₂-1)`,
//! else it falls back to Rank-Sort.

use crate::columnsort::{Phase, Transform, PHASES};
use crate::local::sort_desc;
use crate::msg::{Key, Word};
use crate::schedule::edge_color_bipartite;
use mcb_net::{ChanId, Metrics, NetError, Network, ProcCtx};

use super::grouped::SortReport;

/// A contiguous sub-network: processors `proc_lo..proc_lo+procs` sharing
/// channels `chan_lo..chan_lo+chans`.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct Comm {
    /// First processor index.
    pub proc_lo: usize,
    /// Number of processors.
    pub procs: usize,
    /// First channel index.
    pub chan_lo: usize,
    /// Number of channels.
    pub chans: usize,
}

/// One scheduled cross-member move.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
struct MoveTask {
    /// Global row broadcast (relative to the comm's element range).
    src_row: usize,
    /// Global row where the element lands.
    dst_row: usize,
    /// Channel offset within the comm's channel range.
    chan: usize,
    /// Sending member (relative).
    src_member: usize,
    /// Receiving member (relative).
    dst_member: usize,
}

/// A member-granular broadcast schedule for a position permutation over a
/// block-distributed linear list.
#[derive(Debug, Clone)]
pub struct MemberSchedule {
    cycles: usize,
    /// `send[cycle][member]` / `recv[cycle][member]`.
    send: Vec<Vec<Option<MoveTask>>>,
    recv: Vec<Vec<Option<MoveTask>>>,
    /// Intra-member `(src_row, dst_row)` moves (free).
    local: Vec<Vec<(usize, usize)>>,
}

impl MemberSchedule {
    /// Schedule `perm` (a bijection on `0..M`) for `M` elements block-
    /// distributed over `procs` members (`b = M/procs` rows each) with
    /// `chans` channels available.
    pub fn new(perm: &[usize], procs: usize, chans: usize) -> Self {
        let m_total = perm.len();
        assert!(procs > 0 && chans > 0);
        assert!(m_total.is_multiple_of(procs), "blocks must be equal");
        let b = m_total / procs;
        let member_of = |row: usize| row / b;

        let mut local = vec![Vec::new(); procs];
        let mut edges: Vec<(usize, usize)> = Vec::new();
        let mut rows: Vec<(usize, usize)> = Vec::new();
        for (q, &t) in perm.iter().enumerate() {
            let (sm, dm) = (member_of(q), member_of(t));
            if sm == dm {
                local[sm].push((q, t));
            } else {
                edges.push((sm, dm));
                rows.push((q, t));
            }
        }
        // Edge-color over members: <= max(b_send, b_recv) = b classes.
        let colors = edge_color_bipartite(procs, &edges);
        let nclasses = colors.iter().copied().max().map_or(0, |c| c + 1);
        let mut classes: Vec<Vec<usize>> = vec![Vec::new(); nclasses];
        for (e, &c) in colors.iter().enumerate() {
            classes[c].push(e);
        }
        // Pack each class (a matching) into cycles of <= chans broadcasts.
        let mut send: Vec<Vec<Option<MoveTask>>> = Vec::new();
        let mut recv: Vec<Vec<Option<MoveTask>>> = Vec::new();
        for class in classes {
            for chunk in class.chunks(chans) {
                let mut s = vec![None; procs];
                let mut r = vec![None; procs];
                for (chan, &e) in chunk.iter().enumerate() {
                    let (sm, dm) = edges[e];
                    let (src_row, dst_row) = rows[e];
                    let task = MoveTask {
                        src_row,
                        dst_row,
                        chan,
                        src_member: sm,
                        dst_member: dm,
                    };
                    debug_assert!(s[sm].is_none() && r[dm].is_none());
                    s[sm] = Some(task);
                    r[dm] = Some(task);
                }
                send.push(s);
                recv.push(r);
            }
        }
        MemberSchedule {
            cycles: send.len(),
            send,
            recv,
            local,
        }
    }

    /// Communication cycles: `O(b + M/chans)`.
    pub fn cycles(&self) -> usize {
        self.cycles
    }

    fn send_task(&self, cycle: usize, member: usize) -> Option<MoveTask> {
        self.send[cycle][member]
    }

    fn recv_task(&self, cycle: usize, member: usize) -> Option<MoveTask> {
        self.recv[cycle][member]
    }

    fn local_moves(&self, member: usize) -> &[(usize, usize)] {
        &self.local[member]
    }
}

/// Pick the column count for one recursion level: the largest power of two
/// `k₂` with `k₂ <= chans`, `k₂ <= procs`, `k₂² | M`, and
/// `M/k₂ >= k₂(k₂-1)`; `None` means the level must fall back to Rank-Sort.
fn pick_columns(m_total: usize, procs: usize, chans: usize) -> Option<usize> {
    let mut k2 = 1usize;
    let mut best = None;
    while k2 * 2 <= chans.min(procs) {
        k2 *= 2;
        if m_total.is_multiple_of(k2 * k2) && m_total / k2 >= k2 * (k2 - 1) {
            best = Some(k2);
        }
    }
    best
}

/// Cycles [`vcol_sort_rec_in`] consumes — a pure function of the shape, so
/// the column skipped in phase 7 can idle in lock-step.
pub fn rec_cycles(b: usize, procs: usize, chans: usize, depth: usize) -> u64 {
    if procs == 1 {
        return 0;
    }
    let m_total = b * procs;
    let k2 = if depth == 0 {
        None
    } else {
        pick_columns(m_total, procs, chans)
    };
    match k2 {
        None => 2 * m_total as u64, // block Rank-Sort
        Some(k2) => {
            let sub = rec_cycles(b, procs / k2, chans / k2, depth - 1);
            let transforms: u64 = [
                Transform::Transpose,
                Transform::UnDiagonalize,
                Transform::UpShift,
                Transform::DownShift,
            ]
            .iter()
            .map(|tf| {
                MemberSchedule::new(&tf.permutation(m_total / k2, k2), procs, chans).cycles() as u64
            })
            .sum();
            4 * sub + transforms
        }
    }
}

/// Block Rank-Sort: sort `M = b·procs` distinct keys, block-distributed
/// over a comm, using only the comm's first channel. `2M` cycles: one
/// ranking pass, one delivery pass (no census — the block layout is known).
fn block_rank_sort_in<K: Key>(ctx: &mut ProcCtx<'_, Word<K>>, comm: &Comm, mine: Vec<K>) -> Vec<K> {
    let b = mine.len();
    let m_total = b * comm.procs;
    let chan = ChanId::from_index(comm.chan_lo);
    let me = ctx.id().index() - comm.proc_lo;
    let my_start = me * b;
    // The recursion base case labels itself (parents clear their label
    // before descending, so deeper levels get their own phase rows).
    let label = ctx.phase_label().is_empty();
    if label {
        ctx.phase("rec:ranksort");
    }

    // Ranking pass: row t broadcast at cycle t by its holder; ties (which
    // cannot occur for distinct keys, but keep Rank-Sort general) break by
    // broadcast time.
    let mut rank = vec![0u64; b];
    for t in 0..m_total {
        let idx = t.wrapping_sub(my_start);
        let write = (idx < b).then(|| (chan, Word::Key(mine[idx].clone())));
        let heard = ctx
            .cycle(write, Some(chan))
            .expect("every row is broadcast")
            .expect_key();
        for (j, x) in mine.iter().enumerate() {
            if heard > *x || (heard == *x && t < my_start + j) {
                rank[j] += 1;
            }
        }
    }

    // Delivery pass: descending rank r broadcast at cycle r; the member
    // owning target row r keeps it.
    let mut by_rank: Vec<(u64, usize)> = rank.iter().enumerate().map(|(j, &r)| (r, j)).collect();
    by_rank.sort_unstable();
    let mut senders = by_rank.into_iter().peekable();
    let mut out: Vec<Option<K>> = vec![None; b];
    for t in 0..m_total {
        let write = match senders.peek() {
            Some(&(r, j)) if r as usize == t => {
                senders.next();
                Some((chan, Word::Key(mine[j].clone())))
            }
            _ => None,
        };
        let idx = t.wrapping_sub(my_start);
        let want = idx < b;
        let got = ctx.cycle(write, want.then_some(chan));
        if want {
            out[idx] = Some(got.expect("every rank is broadcast").expect_key());
        }
    }
    if label {
        ctx.phase("");
    }
    out.into_iter().map(|x| x.expect("block filled")).collect()
}

/// Sort one virtual column (the comm's whole element range, block-
/// distributed) recursively. Returns the member's sorted block.
pub fn vcol_sort_rec_in<K: Key>(
    ctx: &mut ProcCtx<'_, Word<K>>,
    comm: &Comm,
    mut mine: Vec<K>,
    depth: usize,
) -> Vec<K> {
    if comm.procs == 1 {
        sort_desc(&mut mine);
        return mine;
    }
    let b = mine.len();
    let m_total = b * comm.procs;
    let k2 = if depth == 0 {
        None
    } else {
        pick_columns(m_total, comm.procs, comm.chans)
    };
    let Some(k2) = k2 else {
        return block_rank_sort_in(ctx, comm, mine);
    };

    let m2 = m_total / k2;
    let me = ctx.id().index() - comm.proc_lo;
    let my_col = me / (comm.procs / k2);
    let sub = Comm {
        proc_lo: comm.proc_lo + my_col * (comm.procs / k2),
        procs: comm.procs / k2,
        chan_lo: comm.chan_lo + my_col * (comm.chans / k2),
        chans: comm.chans / k2,
    };
    let my_start = me * b;

    // Per-level labels: this level stamps its four transformations as
    // "rec<depth>:<transform>" and clears the label before descending so
    // each recursion level (and the Rank-Sort base case) tags its own
    // sorting cycles.
    let label = ctx.phase_label().is_empty();

    for phase in PHASES {
        match phase {
            Phase::SortColumns => {
                if label {
                    ctx.phase("");
                }
                mine = vcol_sort_rec_in(ctx, &sub, mine, depth - 1);
            }
            Phase::SortColumnsExceptFirst => {
                if label {
                    ctx.phase("");
                }
                if my_col == 0 {
                    ctx.idle_for(rec_cycles(b, sub.procs, sub.chans, depth - 1));
                } else {
                    mine = vcol_sort_rec_in(ctx, &sub, mine, depth - 1);
                }
            }
            Phase::Apply(tf) => {
                if label {
                    let name = match tf {
                        Transform::Transpose => "transpose",
                        Transform::UnDiagonalize => "undiagonalize",
                        Transform::UpShift => "upshift",
                        Transform::DownShift => "downshift",
                    };
                    ctx.phase(&format!("rec{depth}:{name}"));
                }
                let sched = MemberSchedule::new(&tf.permutation(m2, k2), comm.procs, comm.chans);
                let mut out: Vec<Option<K>> = vec![None; b];
                for &(sr, dr) in sched.local_moves(me) {
                    out[dr - my_start] = Some(mine[sr - my_start].clone());
                }
                for t in 0..sched.cycles() {
                    let write = sched.send_task(t, me).map(|task| {
                        (
                            ChanId::from_index(comm.chan_lo + task.chan),
                            Word::Key(mine[task.src_row - my_start].clone()),
                        )
                    });
                    let rtask = sched.recv_task(t, me);
                    let read = rtask.map(|task| ChanId::from_index(comm.chan_lo + task.chan));
                    let got = ctx.cycle(write, read);
                    if let Some(task) = rtask {
                        out[task.dst_row - my_start] =
                            Some(got.expect("scheduled sender broadcasts").expect_key());
                    }
                }
                mine = out
                    .into_iter()
                    .map(|x| x.expect("permutation covers every row"))
                    .collect();
            }
        }
    }
    if label {
        ctx.phase("");
    }
    mine
}

/// Sort an even distribution with virtual columns, recursing `depth`
/// levels (`depth = 1` is §6.1; larger depths are §6.2).
///
/// Requires `p` and `k` powers of two, `k <= p`, and equal nonempty lists.
/// Each processor uses only `O(n/p)` memory. The result is the paper's §3
/// sorted distribution, with no separate redistribution phase: the global
/// row blocks *are* the target segments.
pub fn sort_virtual<K: Key>(
    k: usize,
    lists: Vec<Vec<K>>,
    depth: usize,
) -> Result<SortReport<K>, NetError> {
    let p = lists.len();
    if p == 0 || !p.is_power_of_two() || !k.is_power_of_two() || k > p {
        return Err(NetError::BadConfig(
            "sort_virtual requires p, k powers of two with k <= p".into(),
        ));
    }
    let b = lists[0].len();
    if b == 0 || lists.iter().any(|l| l.len() != b) {
        return Err(NetError::BadConfig(
            "sort_virtual requires an even distribution with n_i > 0".into(),
        ));
    }
    let input = lists;
    let report = Network::new(p, k).run(move |ctx| {
        let mine = input[ctx.id().index()].clone();
        let comm = Comm {
            proc_lo: 0,
            procs: ctx.p(),
            chan_lo: 0,
            chans: ctx.k(),
        };
        vcol_sort_rec_in(ctx, &comm, mine, depth)
    })?;
    let metrics: Metrics = report.metrics.clone();
    Ok(SortReport {
        lists: report.into_results(),
        metrics,
    })
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::sort::verify::verify_sorted;
    use mcb_rng::Rng64;
    use mcb_workloads::{distributions, rng};

    fn check(k: usize, p: usize, n: usize, depth: usize, seed: u64) -> Metrics {
        let pl = distributions::even(p, n, &mut rng(seed));
        let report = sort_virtual(k, pl.lists().to_vec(), depth).unwrap();
        verify_sorted(pl.lists(), &report.lists).unwrap();
        report.metrics
    }

    /// Execute a MemberSchedule in memory and check it realizes the
    /// permutation under the member-port and channel constraints.
    fn validate_member_schedule(perm: &[usize], procs: usize, chans: usize) {
        let m_total = perm.len();
        let b = m_total / procs;
        let sched = MemberSchedule::new(perm, procs, chans);
        // Cycle bound: b sends + b receives per member, E/chans packing.
        assert!(
            sched.cycles() <= 2 * b + m_total.div_ceil(chans) + 1,
            "cycles {} too large for b={b}, chans={chans}",
            sched.cycles()
        );
        let src: Vec<u64> = (0..m_total as u64).map(|v| v * 7 + 1).collect();
        let mut dst: Vec<Option<u64>> = vec![None; m_total];
        for member in 0..procs {
            for &(sr, dr) in sched.local_moves(member) {
                assert_eq!(sr / b, member);
                assert_eq!(dr / b, member);
                dst[dr] = Some(src[sr]);
            }
        }
        for t in 0..sched.cycles() {
            let mut chan_used = vec![false; chans];
            for member in 0..procs {
                if let Some(task) = sched.send_task(t, member) {
                    assert_eq!(task.src_row / b, member, "send ownership");
                    assert!(!chan_used[task.chan], "channel collision");
                    chan_used[task.chan] = true;
                }
                if let Some(task) = sched.recv_task(t, member) {
                    assert_eq!(task.dst_row / b, member, "recv ownership");
                    dst[task.dst_row] = Some(src[task.src_row]);
                }
            }
        }
        for (q, &t) in perm.iter().enumerate() {
            assert_eq!(dst[t], Some(src[q]), "position {q} -> {t}");
        }
    }

    /// MemberSchedule realizes arbitrary permutations for arbitrary
    /// block/channel shapes, within its cycle bound.
    #[test]
    fn member_schedule_random_permutations() {
        let mut rng = Rng64::seed_from_u64(0x5c4e);
        for _case in 0..48 {
            let procs = 1usize << rng.random_range(0u32..4);
            let chans = (1usize << rng.random_range(0u32..3)).min(procs);
            let b = rng.random_range(1usize..9);
            let m_total = procs * b;
            let mut perm: Vec<usize> = (0..m_total).collect();
            rng.shuffle(&mut perm);
            validate_member_schedule(&perm, procs, chans);
        }
    }

    /// The four Columnsort transforms under MemberSchedule, any shape.
    #[test]
    fn member_schedule_transforms() {
        let mut rng = Rng64::seed_from_u64(0x7a45);
        for _case in 0..48 {
            let procs = 1usize << rng.random_range(1u32..4);
            let chans = (1usize << rng.random_range(0u32..3)).min(procs);
            let b = rng.random_range(1usize..6);
            let k2 = (1usize << rng.random_range(1u32..3)).min(procs);
            let m_total = procs * b;
            if !m_total.is_multiple_of(k2) {
                continue;
            }
            for tf in crate::columnsort::ALL_TRANSFORMS {
                let perm = tf.permutation(m_total / k2, k2);
                validate_member_schedule(&perm, procs, chans);
            }
        }
    }

    #[test]
    fn depth_one_is_virtual_columns() {
        check(4, 8, 256, 1, 61);
    }

    #[test]
    fn depth_two_recursion() {
        check(4, 16, 1024, 2, 62);
    }

    #[test]
    fn deep_recursion_degrades_gracefully() {
        check(8, 16, 2048, 3, 63);
    }

    #[test]
    fn depth_zero_is_pure_rank_sort() {
        let m = check(4, 4, 64, 0, 64);
        // Rank-Sort over one channel: exactly 2n cycles.
        assert_eq!(m.cycles, 128);
    }

    #[test]
    fn tiny_inputs_fall_back() {
        // n too small for any column split: base case must kick in.
        check(4, 4, 8, 2, 65);
    }

    #[test]
    fn single_channel_and_single_proc() {
        check(1, 4, 32, 1, 66);
        check(1, 1, 16, 1, 67);
    }

    #[test]
    fn rejects_bad_configs() {
        assert!(sort_virtual(3, vec![vec![1u64], vec![2u64]], 1).is_err());
        assert!(sort_virtual(2, vec![vec![1u64], vec![2u64], vec![3u64]], 1).is_err());
        assert!(sort_virtual(2, vec![vec![1u64], vec![]], 1).is_err());
    }

    #[test]
    fn rec_cycles_predicts_actual_cycles() {
        for (p, k, n, depth) in [(8usize, 4usize, 256usize, 1usize), (16, 4, 1024, 2)] {
            let pl = distributions::even(p, n, &mut rng(68));
            let report = sort_virtual(k, pl.lists().to_vec(), depth).unwrap();
            let predicted = rec_cycles(n / p, p, k, depth);
            assert_eq!(report.metrics.cycles, predicted, "p={p} k={k} n={n}");
        }
    }

    #[test]
    fn recursion_uses_fewer_cycles_than_flat_rank_sort() {
        let (p, k, n) = (16, 8, 2048);
        let pl = distributions::even(p, n, &mut rng(69));
        let flat = sort_virtual(k, pl.lists().to_vec(), 0).unwrap();
        let rec = sort_virtual(k, pl.lists().to_vec(), 2).unwrap();
        assert!(
            rec.metrics.cycles < flat.metrics.cycles,
            "recursive {} vs flat {}",
            rec.metrics.cycles,
            flat.metrics.cycles
        );
    }
}
