//! Distributed sorting in the MCB model (paper §§5–7).
//!
//! * [`columns`] — Columnsort's phases executed over the network among
//!   column-owning processors (the §5.2 core).
//! * [`grouped`] — the full pipeline for arbitrary distributions (§7.2
//!   group formation + collection + Columnsort + redistribution); the
//!   main entry point [`sort_grouped`].
//! * [`direct`] — the special case `p = k`, one column per processor, no
//!   collection phases (§5.2's first construction).
//! * [`ranksort`] — the single-channel Rank-Sort of §6.1.
//! * [`mergesort`] — the single-channel distributed Merge-Sort of §6.1.
//! * [`verify`] — §3 postcondition checking.

pub mod columns;
pub mod direct;
pub mod grouped;
pub mod mergesort;
pub mod ranksort;
pub mod recursive;
pub mod verify;

pub use columns::{columnsort_net_cycles, columnsort_net_in, ColumnRole};
pub use direct::sort_direct;
pub use grouped::{sort_grouped, sort_grouped_in, SortReport};
pub use mergesort::{merge_sort_replacement_single_channel, merge_sort_single_channel};
pub use ranksort::rank_sort_single_channel;
pub use recursive::{rec_cycles, sort_virtual, Comm, MemberSchedule};
pub use verify::{verify_sorted, SortViolation};
