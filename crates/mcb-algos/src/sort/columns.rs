//! Columnsort executed over the network (§5.2's core loop).
//!
//! [`columnsort_net_in`] runs the eight Columnsort phases among `k_cols`
//! *column owners* (processors each holding one padded column), with every
//! other processor idling in lock-step. Owners sort locally in the sorting
//! phases (free) and follow the [`TransformSchedule`] in the transformation
//! phases: column `c` broadcasts on channel `c`, and each owner reads the
//! channel the schedule names.
//!
//! Padding: columns may contain `None` dummies. Dummies order below every
//! real key, so after sorting all dummies occupy the tail of the global
//! column-major order — which is what lets phases 0/10 of the outer
//! algorithms treat "global rank" and "padded position" interchangeably for
//! real elements. Dummies are **never broadcast**: the schedule slot stays
//! empty and the reader's empty-channel detection reconstructs the dummy,
//! so padding costs cycles but no messages (the paper's "the dummy elements
//! need not be broadcast").

use crate::columnsort::{check_shape, Phase, ShapeError, PHASES};
use crate::local::sort_desc;
use crate::msg::Key;
use crate::schedule::TransformSchedule;
use mcb_net::{ChanId, MsgWidth, ProcCtx};

/// A processor's part in a networked Columnsort: which column it owns and
/// the column's (padded) contents.
#[derive(Debug, Clone)]
pub struct ColumnRole<K> {
    /// Column index in `0..k_cols`; the owner broadcasts on channel `col`.
    pub col: usize,
    /// Column contents, length `m`; `None` entries are padding dummies.
    pub data: Vec<Option<K>>,
}

/// Total cycles [`columnsort_net_in`] consumes for an `m × k_cols` sort.
/// Pure function of the shape, so non-owners can idle without coordination.
pub fn columnsort_net_cycles(m: usize, k_cols: usize) -> u64 {
    PHASES
        .iter()
        .map(|ph| match ph {
            Phase::Apply(tf) => TransformSchedule::new(*tf, m, k_cols).cycles() as u64,
            _ => 0,
        })
        .sum()
}

/// Run Columnsort among `k_cols` column owners as a lock-step subroutine.
///
/// Every processor of the network must call this at the same cycle with the
/// same `(m, k_cols)`; owners pass their [`ColumnRole`], everyone else
/// passes `None`. Returns the owner's sorted column (`None` for
/// non-owners). The shape must satisfy §5.1's `m >= k_cols(k_cols - 1)` and
/// `k_cols | m`.
pub fn columnsort_net_in<K, M, E, D>(
    ctx: &mut ProcCtx<'_, M>,
    role: Option<ColumnRole<K>>,
    m: usize,
    k_cols: usize,
    enc: &E,
    dec: &D,
) -> Result<Option<Vec<Option<K>>>, ShapeError>
where
    K: Key,
    M: Clone + Send + Sync + MsgWidth,
    E: Fn(K) -> M,
    D: Fn(M) -> K,
{
    check_shape(m, k_cols)?;
    assert!(k_cols <= ctx.k(), "need one channel per column");
    if let Some(r) = &role {
        assert!(r.col < k_cols, "column index out of range");
        assert_eq!(r.data.len(), m, "column must have padded length m");
    }
    let mut data = role.map(|r| (r.col, r.data));

    // Phase labels for the run report (paper Figure 1 numbering). Only set
    // when the caller hasn't already established a coarser phase — outer
    // algorithms (selection, recursive sort) label whole invocations.
    const PHASE_NAMES: [&str; 8] = [
        "cs1:sort",
        "cs2:transpose",
        "cs3:sort",
        "cs4:undiagonalize",
        "cs5:sort",
        "cs6:upshift",
        "cs7:sort-rest",
        "cs8:downshift",
    ];
    let label = ctx.phase_label().is_empty();

    for (pi, phase) in PHASES.into_iter().enumerate() {
        if label {
            ctx.phase(PHASE_NAMES[pi]);
        }
        match phase {
            Phase::SortColumns => {
                if let Some((_, col)) = &mut data {
                    // Option<K>: None < Some(_), so descending order puts
                    // dummies at the column tail.
                    sort_desc(col);
                }
            }
            Phase::SortColumnsExceptFirst => {
                if let Some((c, col)) = &mut data {
                    if *c != 0 {
                        sort_desc(col);
                    }
                }
            }
            Phase::Apply(tf) => {
                let sched = TransformSchedule::new(tf, m, k_cols);
                match &mut data {
                    Some((c, col)) => {
                        let c = *c;
                        let mut out: Vec<Option<K>> = vec![None; m];
                        for &(sr, dr) in sched.local_moves(c) {
                            out[dr] = col[sr].clone();
                        }
                        for t in 0..sched.cycles() {
                            let write = sched.send_task(t, c).and_then(|s| {
                                col[s.src_row]
                                    .clone()
                                    .map(|key| (ChanId::from_index(c), enc(key)))
                            });
                            let read = sched
                                .recv_task(t, c)
                                .map(|r| ChanId::from_index(r.from_col));
                            let got = ctx.cycle(write, read);
                            if let Some(r) = sched.recv_task(t, c) {
                                // Empty channel = the scheduled sender held
                                // a dummy.
                                out[r.dst_row] = got.map(dec);
                            }
                        }
                        *col = out;
                    }
                    None => ctx.idle_for(sched.cycles() as u64),
                }
            }
        }
    }
    if label {
        ctx.phase("");
    }
    Ok(data.map(|(_, col)| col))
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::msg::Word;
    use mcb_net::Network;

    fn enc(k: u64) -> Word<u64> {
        Word::Key(k)
    }
    fn dec(m: Word<u64>) -> u64 {
        m.expect_key()
    }

    /// p = k_cols owners, no padding: the §5.2 base case.
    fn run_cols(
        m: usize,
        k: usize,
        cols: Vec<Vec<Option<u64>>>,
    ) -> (Vec<Vec<Option<u64>>>, u64, u64) {
        let cols_in = cols.clone();
        let report = Network::new(k, k)
            .run(move |ctx| {
                let me = ctx.id().index();
                let role = Some(ColumnRole {
                    col: me,
                    data: cols_in[me].clone(),
                });
                columnsort_net_in(ctx, role, m, k, &enc, &dec)
                    .unwrap()
                    .unwrap()
            })
            .unwrap();
        let cycles = report.metrics.cycles;
        let msgs = report.metrics.messages;
        (report.into_results(), cycles, msgs)
    }

    fn flatten(cols: &[Vec<Option<u64>>]) -> Vec<Option<u64>> {
        cols.iter().flatten().copied().collect()
    }

    #[test]
    fn sorts_full_columns_end_to_end() {
        let (m, k) = (12, 4);
        let vals: Vec<u64> = (0..(m * k) as u64)
            .map(|i| i.wrapping_mul(2654435761) % 10_000)
            .collect();
        let cols: Vec<Vec<Option<u64>>> = vals
            .chunks(m)
            .map(|ch| ch.iter().map(|&v| Some(v)).collect())
            .collect();
        let (sorted, cycles, msgs) = run_cols(m, k, cols);
        let lin = flatten(&sorted);
        assert!(
            lin.windows(2).all(|w| w[0] >= w[1]),
            "not descending: {lin:?}"
        );
        // Multiset preserved.
        let mut a: Vec<u64> = lin.into_iter().map(|x| x.unwrap()).collect();
        let mut b = vals.clone();
        a.sort_unstable();
        b.sort_unstable();
        assert_eq!(a, b);
        // O(m) cycles per transformation phase, four phases.
        assert!(cycles <= 4 * m as u64, "cycles {cycles}");
        assert_eq!(cycles, columnsort_net_cycles(m, k));
        // O(mk) messages (at most one per element per phase).
        assert!(msgs <= 4 * (m * k) as u64, "messages {msgs}");
    }

    #[test]
    fn dummies_sort_to_the_tail_and_send_nothing() {
        let (m, k) = (12, 3);
        // 30 real elements + 6 dummies spread around.
        let mut cols: Vec<Vec<Option<u64>>> = vec![vec![None; m]; k];
        let mut v = 1000u64;
        for c in 0..k {
            for r in 0..m {
                if (c + r) % 6 != 0 {
                    cols[c][r] = Some(v);
                    v = v.wrapping_mul(48271) % 65521;
                }
            }
        }
        let real: Vec<u64> = flatten(&cols).into_iter().flatten().collect();
        let (sorted, _, msgs) = run_cols(m, k, cols);
        let lin = flatten(&sorted);
        let n_real = real.len();
        assert!(lin[..n_real].iter().all(Option::is_some), "reals first");
        assert!(lin[n_real..].iter().all(Option::is_none), "dummies last");
        assert!(
            lin[..n_real].windows(2).all(|w| w[0] >= w[1]),
            "reals descending"
        );
        // No message ever carries a dummy: fewer messages than elements*phases.
        assert!(msgs < 4 * (m * k) as u64);
    }

    #[test]
    fn non_owners_stay_in_lockstep() {
        // p = 6 processors but only k_cols = 2 own columns.
        let (m, k_cols) = (4, 2);
        let report = Network::new(6, 3)
            .run(move |ctx| {
                let me = ctx.id().index();
                let role = (me < k_cols).then(|| ColumnRole {
                    col: me,
                    data: (0..m)
                        .map(|r| Some(((me * m + r) as u64 * 37) % 100))
                        .collect(),
                });
                columnsort_net_in(ctx, role, m, k_cols, &enc, &dec).unwrap()
            })
            .unwrap();
        let results = report.into_results();
        let lin: Vec<Option<u64>> = results[..k_cols]
            .iter()
            .flat_map(|r| r.clone().unwrap())
            .collect();
        assert!(lin.windows(2).all(|w| w[0] >= w[1]));
        assert!(results[k_cols..].iter().all(Option::is_none));
    }

    #[test]
    fn rejects_illegal_shapes() {
        let report = Network::new(4, 4)
            .run(|ctx| {
                let me = ctx.id().index();
                let role = Some(ColumnRole {
                    col: me,
                    data: vec![Some(1u64); 8], // m = 8 < k(k-1) = 12
                });
                columnsort_net_in(ctx, role, 8, 4, &enc, &dec).is_err()
            })
            .unwrap();
        assert!(report.into_results().into_iter().all(|e| e));
    }

    #[test]
    fn single_column_sorts_locally_with_zero_messages() {
        let (sorted, cycles, msgs) = run_cols(
            5,
            1,
            vec![vec![Some(3), Some(9), Some(1), Some(7), Some(5)]],
        );
        assert_eq!(sorted[0], vec![Some(9), Some(7), Some(5), Some(3), Some(1)]);
        assert_eq!(msgs, 0);
        assert_eq!(cycles, 0);
    }
}
