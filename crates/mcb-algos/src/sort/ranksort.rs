//! Rank-Sort: the single-channel sorting algorithm of §6.1.
//!
//! "Each processor maintains a rank counter for each of its elements. …
//! In the first phase, elements are broadcast in arbitrary order. After
//! each broadcast, the counters of those elements which are smaller than
//! the one broadcast are incremented by 1. Thus, at the end of the first
//! phase each processor knows the rank of each of its elements. Then, in
//! the second phase, the elements are broadcast in rank order and moved to
//! the appropriate target processor."
//!
//! Linear cycles and messages on an `MCB(p, 1)`; `O(n_i)` auxiliary storage
//! per processor (the rank counters). Works for arbitrary distributions —
//! the paper uses it to sort the *virtual columns* of the
//! memory-efficient Columnsort, where each column is spread over a group of
//! processors sharing a single channel.

use crate::msg::{Key, Word};
use mcb_net::{ChanId, NetError, Network, ProcCtx};

use super::grouped::SortReport;

/// Sort `lists` (arbitrary distribution, distinct keys) on an `MCB(p, 1)`.
pub fn rank_sort_single_channel<K: Key>(lists: Vec<Vec<K>>) -> Result<SortReport<K>, NetError> {
    let p = lists.len();
    if p == 0 || lists.iter().any(Vec::is_empty) {
        return Err(NetError::BadConfig(
            "need p >= 1 nonempty lists (paper model assumes n_i > 0)".into(),
        ));
    }
    let input = lists;
    let report = Network::new(p, 1).run(move |ctx| {
        let mine = input[ctx.id().index()].clone();
        rank_sort_in(ctx, ChanId(0), mine)
    })?;
    let metrics = report.metrics.clone();
    Ok(SortReport {
        lists: report.into_results(),
        metrics,
    })
}

/// Rank-Sort as a lock-step subroutine on one shared channel. All `p`
/// processors of the network call it together; the channel carries one
/// census round (`p` cycles), one ranking round (`n` cycles), and one
/// delivery round (`n` cycles).
pub fn rank_sort_in<K: Key>(ctx: &mut ProcCtx<'_, Word<K>>, chan: ChanId, mine: Vec<K>) -> Vec<K> {
    let p = ctx.p();
    let i = ctx.id().index();
    let label = ctx.phase_label().is_empty();

    // ---- census: everyone learns all cardinalities ------------------------
    if label {
        ctx.phase("rs:census");
    }
    let mut counts = vec![0u64; p];
    for turn in 0..p {
        let write = (turn == i).then(|| (chan, Word::Ctl(mine.len() as u64)));
        let got = ctx.cycle(write, Some(chan));
        counts[turn] = got.expect("every processor reports its count").expect_ctl();
    }
    let prefix: Vec<u64> = counts
        .iter()
        .scan(0u64, |acc, &c| {
            *acc += c;
            Some(*acc)
        })
        .collect();
    let n = prefix[p - 1];
    let my_start = if i == 0 { 0 } else { prefix[i - 1] };

    // ---- phase 1: broadcast all, count ranks ------------------------------
    // Descending rank r(x) = 1 + |{y : y > x}|. Each processor keeps one
    // counter per own element (O(n_i) storage) and updates them against
    // every broadcast, including its own (x > x is false, so an element
    // never counts against itself).
    if label {
        ctx.phase("rs:rank");
    }
    let mut rank_above = vec![0u64; mine.len()]; // number of strictly larger keys
    for t in 0..n {
        let idx = t.wrapping_sub(my_start) as usize;
        let write =
            (t >= my_start && idx < mine.len()).then(|| (chan, Word::Key(mine[idx].clone())));
        let heard = ctx
            .cycle(write, Some(chan))
            .expect("every slot carries an element")
            .expect_key();
        for (j, x) in mine.iter().enumerate() {
            if heard > *x {
                rank_above[j] += 1;
            }
        }
    }

    // ---- phase 2: broadcast in rank order, deliver ------------------------
    // The element of (0-based) descending rank t is broadcast at cycle t by
    // its owner; the processor whose target segment contains t keeps it.
    if label {
        ctx.phase("rs:deliver");
    }
    let target_lo = my_start;
    let target_hi = prefix[i];
    let mut by_rank: Vec<(u64, usize)> = rank_above
        .iter()
        .enumerate()
        .map(|(j, &r)| (r, j))
        .collect();
    by_rank.sort_unstable();
    let mut send_iter = by_rank.into_iter().peekable();
    let mut out: Vec<K> = Vec::with_capacity((target_hi - target_lo) as usize);
    for t in 0..n {
        let write = match send_iter.peek() {
            Some(&(r, j)) if r == t => {
                send_iter.next();
                Some((chan, Word::Key(mine[j].clone())))
            }
            _ => None,
        };
        let want = t >= target_lo && t < target_hi;
        let got = ctx.cycle(write, want.then_some(chan));
        if want {
            out.push(
                got.expect("distinct keys give a collision-free rank schedule")
                    .expect_key(),
            );
        }
    }
    if label {
        ctx.phase("");
    }
    out
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::sort::verify::verify_sorted;
    use mcb_workloads::{distributions, rng, Placement};

    fn check(placement: Placement) -> mcb_net::Metrics {
        let report = rank_sort_single_channel(placement.lists().to_vec()).unwrap();
        verify_sorted(placement.lists(), &report.lists).unwrap();
        report.metrics
    }

    #[test]
    fn sorts_even_and_uneven() {
        check(distributions::even(4, 32, &mut rng(21)));
        check(distributions::random_uneven(5, 43, &mut rng(22)));
        check(distributions::single_heavy(3, 30, 0.8, &mut rng(23)));
    }

    #[test]
    fn linear_cycles_and_messages() {
        let pl = distributions::even(4, 100, &mut rng(24));
        let (n, p) = (pl.n() as u64, pl.p() as u64);
        let m = check(pl);
        assert_eq!(m.cycles, p + 2 * n);
        assert_eq!(m.messages, p + 2 * n);
    }

    #[test]
    fn single_processor_degenerates() {
        let pl = Placement::new(vec![vec![2u64, 9, 4]]);
        let report = rank_sort_single_channel(pl.lists().to_vec()).unwrap();
        assert_eq!(report.lists, vec![vec![9, 4, 2]]);
    }

    #[test]
    fn two_processors_swap_fully() {
        let pl = Placement::new(vec![vec![1u64, 2], vec![10u64, 20]]);
        let report = rank_sort_single_channel(pl.lists().to_vec()).unwrap();
        assert_eq!(report.lists, vec![vec![20, 10], vec![2, 1]]);
    }

    #[test]
    fn rejects_empty_list() {
        assert!(rank_sort_single_channel(vec![vec![1u64], vec![]]).is_err());
    }
}
