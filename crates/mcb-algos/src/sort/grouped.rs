//! The full MCB sorting algorithm (§5.2 generalized by §7.2).
//!
//! Sorts `n` keys distributed arbitrarily (evenly or unevenly) over `p`
//! processors into the paper's postcondition: processor `P_i` ends up with
//! the elements of global descending ranks `[n_{i-1}^+, n_i^+)`, in order.
//!
//! Pipeline (phase numbers are the paper's):
//!
//! 0a. **Cardinality census** — Partial-Sums gives every processor
//!     `n_{i-1}^+`/`n_i^+`, and total-sum runs give `n` and `n_max`.
//! 0b. **Group formation** (§7.2) — processors are split into at most
//!     `k_eff` contiguous groups of `⌈n/k_eff⌉ <= m_j <= ⌈n/k_eff⌉ +
//!     n_max - 1` elements each, one Ctl broadcast per group.
//!     `k_eff = choose_columns(n, k)` also handles the small-input regime
//!     (`n < k²(k-1)`) by using fewer columns (§5.2).
//! 0c. **Element collection** — each group's elements stream to its
//!     representative (the group's highest-numbered processor) over the
//!     group's channel, members timing their turns with the §7.2 partial
//!     sums; representatives' own elements move locally for free.
//! 1–8. **Columnsort** among representatives
//!     ([`columnsort_net_in`](super::columns::columnsort_net_in())), columns
//!     padded with dummies to a legal length.
//! 10. **Redistribution** — representatives rebroadcast their columns
//!     `passes` times (`passes` = the maximum number of columns any
//!     processor's target range spans, computed by a `max` total-sum);
//!     each processor reads off exactly its target ranks. Dummies occupy
//!     the global tail, so padded positions equal real ranks.
//!
//! Complexity: `O(n)` messages, `O(n/k + n_max)` cycles — Corollary 6's
//! upper bound, tight (with the lower bounds of §4) whenever
//! `n_max <= α·n` and `n >= k²(k-1)`.

use crate::columnsort::{choose_columns, padded_column_length};
use crate::msg::{Key, Word};
use crate::partial_sums::{partial_sums_in, total_in, Op};
use crate::sort::columns::{columnsort_net_in, ColumnRole};
use mcb_net::{ChanId, Metrics, NetError, Network, ProcCtx};

/// Outcome of a distributed sort.
#[derive(Debug, Clone)]
pub struct SortReport<K> {
    /// Per-processor sorted lists satisfying the paper's postcondition.
    pub lists: Vec<Vec<K>>,
    /// Network costs of the run.
    pub metrics: Metrics,
}

fn enc_key<K: Key>(k: K) -> Word<K> {
    Word::Key(k)
}
fn dec_key<K: Key>(m: Word<K>) -> K {
    m.expect_key()
}
fn enc_ctl<K: Key>(v: u64) -> Word<K> {
    Word::Ctl(v)
}
fn dec_ctl<K: Key>(m: Word<K>) -> u64 {
    m.expect_ctl()
}

/// Sort `lists` on an `MCB(p, k)` with `p = lists.len()`.
///
/// Requires `1 <= k <= p`, every list nonempty (the paper's `n_i > 0`),
/// and distinct keys (use
/// `mcb_workloads::disambiguate`-style tagging for
/// multisets — enforced only implicitly: ties may land in either order).
pub fn sort_grouped<K: Key>(k: usize, lists: Vec<Vec<K>>) -> Result<SortReport<K>, NetError> {
    let p = lists.len();
    let input = lists;
    let report = Network::new(p, k).run(move |ctx| {
        let mine = input[ctx.id().index()].clone();
        sort_grouped_in(ctx, mine)
    })?;
    let metrics = report.metrics.clone();
    Ok(SortReport {
        lists: report.into_results(),
        metrics,
    })
}

/// The sorting pipeline as a lock-step subroutine: every processor calls it
/// at the same cycle with its local list; returns the processor's sorted
/// target segment. §8's selection uses this to sort its (median, count)
/// pairs mid-protocol.
pub fn sort_grouped_in<K: Key>(ctx: &mut ProcCtx<'_, Word<K>>, mine: Vec<K>) -> Vec<K> {
    let k = ctx.k();
    let n_i = mine.len() as u64;
    assert!(n_i > 0, "paper model assumes n_i > 0");
    // Label the pipeline's stages unless an outer algorithm (e.g. §8's
    // selection) already established a coarser phase.
    let label = ctx.phase_label().is_empty();

    // ---- 0a. census -------------------------------------------------------
    if label {
        ctx.phase("sort:census");
    }
    let sums = partial_sums_in(ctx, n_i, Op::Add, &enc_ctl, &dec_ctl);
    let n = total_in(ctx, n_i, Op::Add, &enc_ctl, &dec_ctl);
    let n_max = total_in(ctx, n_i, Op::Max, &enc_ctl, &dec_ctl);

    let k_eff = choose_columns(n as usize, k);
    let threshold = (n as usize).div_ceil(k_eff) as u64 + n_max - 1;

    // ---- 0b. group formation (§7.2) --------------------------------------
    // Iteratively peel off the maximal prefix of processors whose revised
    // partial sum fits under the threshold; its representative broadcasts
    // the group's element count.
    if label {
        ctx.phase("sort:groups");
    }
    let mut consumed = 0u64; // elements in groups formed so far
    let mut group_sizes: Vec<u64> = Vec::new();
    let mut my_group: Option<usize> = None;
    let mut my_start = 0u64; // offset of my elements inside my group's column
    let mut am_rep = false;
    while consumed < n {
        let g = group_sizes.len();
        let rev_prev = sums.prev.saturating_sub(consumed);
        let rev_mine = sums.mine - consumed.min(sums.mine);
        let unassigned = my_group.is_none();
        let in_group = unassigned && sums.mine > consumed && rev_mine <= threshold;
        let is_rep = in_group
            && match sums.next {
                Some(nx) => nx - consumed > threshold,
                None => true,
            };
        let msg = if is_rep {
            ctx.cycle(Some((ChanId(0), enc_ctl::<K>(rev_mine))), Some(ChanId(0)))
        } else {
            ctx.read(ChanId(0))
        };
        let m_g = dec_ctl(msg.expect("group representative always broadcasts"));
        if in_group {
            my_group = Some(g);
            my_start = rev_prev;
            am_rep = is_rep;
        }
        group_sizes.push(m_g);
        consumed += m_g;
    }
    let k_used = group_sizes.len();
    debug_assert!(k_used <= k_eff);
    let my_group = my_group.expect("every processor joins a group");
    let m_col = *group_sizes.iter().max().unwrap() as usize;
    let m_pad = padded_column_length(m_col, k_used);

    // ---- 0c. element collection ------------------------------------------
    // Group members broadcast their elements on the group's channel in
    // partial-sum order; the representative assembles the column. The
    // representative's own block moves locally (no messages).
    if label {
        ctx.phase("sort:collect");
    }
    let mut column: Option<Vec<Option<K>>> = am_rep.then(|| vec![None; m_pad]);
    for t in 0..m_col as u64 {
        let idx = t.wrapping_sub(my_start) as usize;
        let sending = !am_rep && t >= my_start && idx < mine.len();
        let write = sending.then(|| (ChanId::from_index(my_group), enc_key(mine[idx].clone())));
        let read = if am_rep && t < group_sizes[my_group] {
            Some(ChanId::from_index(my_group))
        } else {
            None
        };
        let got = ctx.cycle(write, read);
        if let Some(col) = &mut column {
            if t < group_sizes[my_group] {
                if let Some(msg) = got {
                    col[t as usize] = Some(dec_key(msg));
                }
            }
        }
    }
    if let Some(col) = &mut column {
        // Splice in the representative's own elements.
        for (j, key) in mine.iter().enumerate() {
            let slot = my_start as usize + j;
            debug_assert!(col[slot].is_none());
            col[slot] = Some(key.clone());
        }
        debug_assert_eq!(col.iter().flatten().count() as u64, group_sizes[my_group]);
    }

    // ---- 1..8. Columnsort among representatives ---------------------------
    // Clear our label so columnsort_net_in stamps its own cs1..cs8 phases.
    if label {
        ctx.phase("");
    }
    let role = column.map(|data| ColumnRole {
        col: my_group,
        data,
    });
    let sorted_col = columnsort_net_in(ctx, role, m_pad, k_used, &enc_key, &dec_key)
        .expect("m_pad is padded to a legal shape");

    // ---- 10. redistribution ------------------------------------------------
    // My target range in global descending ranks (= padded positions).
    if label {
        ctx.phase("sort:redistribute");
    }
    let lo = sums.prev;
    let hi = sums.mine;
    let lo_col = (lo / m_pad as u64) as usize;
    let hi_col = ((hi - 1) / m_pad as u64) as usize;
    let my_span = (hi_col - lo_col + 1) as u64;
    let passes = total_in(ctx, my_span, Op::Max, &enc_ctl, &dec_ctl);

    let mut out: Vec<K> = Vec::with_capacity(n_i as usize);
    for pass in 0..passes {
        let target_col = lo_col + pass as usize;
        for row in 0..m_pad as u64 {
            // Representatives broadcast their real rows; everyone reads the
            // column its current target position lives in.
            let write = sorted_col.as_ref().and_then(|col| {
                col[row as usize]
                    .clone()
                    .map(|key| (ChanId::from_index(my_group), enc_key(key)))
            });
            let global = target_col as u64 * m_pad as u64 + row;
            let want = target_col <= hi_col && global >= lo && global < hi;
            let read = want.then(|| ChanId::from_index(target_col));
            let got = ctx.cycle(write, read);
            if want {
                out.push(dec_key(got.expect("real target ranks are broadcast")));
            }
        }
    }
    if label {
        ctx.phase("");
    }
    debug_assert_eq!(out.len() as u64, n_i);
    out
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::sort::verify::verify_sorted;
    use mcb_workloads::{distributions, rng, Placement};

    fn check(k: usize, placement: Placement) -> Metrics {
        let report = sort_grouped(k, placement.lists().to_vec()).unwrap();
        verify_sorted(placement.lists(), &report.lists).unwrap();
        report.metrics
    }

    #[test]
    fn sorts_even_distribution_p_equals_k() {
        let pl = distributions::even(4, 64, &mut rng(1));
        check(4, pl);
    }

    #[test]
    fn sorts_even_distribution_p_greater_than_k() {
        let pl = distributions::even(8, 128, &mut rng(2));
        check(2, pl);
    }

    #[test]
    fn sorts_uneven_distributions() {
        for seed in 0..5 {
            let pl = distributions::random_uneven(6, 90, &mut rng(seed));
            check(3, pl);
        }
    }

    #[test]
    fn sorts_single_heavy_distribution() {
        let pl = distributions::single_heavy(5, 100, 0.6, &mut rng(9));
        check(2, pl);
    }

    #[test]
    fn sorts_small_inputs_with_fewer_columns() {
        // n = 12 < k²(k-1) for k = 4: falls back to fewer columns.
        let pl = distributions::even(4, 12, &mut rng(4));
        check(4, pl);
    }

    #[test]
    fn sorts_on_single_channel() {
        let pl = distributions::random_uneven(5, 40, &mut rng(5));
        check(1, pl);
    }

    #[test]
    fn sorts_single_processor() {
        let pl = Placement::new(vec![vec![5, 3, 9, 1, 7]]);
        let report = sort_grouped(1, pl.lists().to_vec()).unwrap();
        assert_eq!(report.lists, vec![vec![9, 7, 5, 3, 1]]);
    }

    #[test]
    fn message_count_is_linear_in_n() {
        let pl = distributions::even(8, 256, &mut rng(6));
        let n = pl.n() as u64;
        let m = check(4, pl);
        // Collection ~n + columnsort <= 4n + redistribution ~passes*n,
        // plus O(p log p) control traffic: comfortably under 10n here.
        assert!(m.messages <= 10 * n, "messages {} for n {n}", m.messages);
    }

    #[test]
    fn cycles_scale_with_n_over_k_plus_nmax() {
        let pl = distributions::even(8, 512, &mut rng(7));
        let n = pl.n() as u64;
        let n_max = pl.n_max() as u64;
        let metrics = check(8, pl);
        let budget = 16 * (n / 8 + n_max) + 200;
        assert!(
            metrics.cycles <= budget,
            "cycles {} exceed budget {budget}",
            metrics.cycles
        );
    }
}
