//! The naive selection baseline: sort everything, pick by rank.
//!
//! §8 opens by dismissing this approach — "the extra information provided
//! by sorting comes at a cost and is not really needed" — so it is the
//! natural baseline for experiment E8: `Θ(n)` messages and
//! `Θ(n/k + n_max)` cycles against filtering selection's
//! `Θ(p log(kn/p))` messages and `Θ((p/k) log(kn/p))` cycles.

use crate::msg::{Key, Word};
use crate::partial_sums::{partial_sums_in, Op};
use crate::sort::grouped::sort_grouped_in;
use mcb_net::{ChanId, Metrics, NetError, Network, ProcCtx};

/// Outcome of the naive sort-based selection.
#[derive(Debug, Clone)]
pub struct NaiveSelectReport<K> {
    /// The selected element `N[d]`.
    pub value: K,
    /// Network costs.
    pub metrics: Metrics,
}

/// Select the `d`'th largest element by fully sorting first.
pub fn select_by_sorting<K: Key>(
    k: usize,
    lists: Vec<Vec<K>>,
    d: usize,
) -> Result<NaiveSelectReport<K>, NetError> {
    let n: usize = lists.iter().map(Vec::len).sum();
    if d < 1 || d > n {
        return Err(NetError::BadConfig(format!("rank {d} out of 1..={n}")));
    }
    if lists.iter().any(Vec::is_empty) {
        return Err(NetError::BadConfig("paper model assumes n_i > 0".into()));
    }
    let p = lists.len();
    let input = lists;
    let report = Network::new(p, k).run(move |ctx| {
        let mine = input[ctx.id().index()].clone();
        select_by_sorting_in(ctx, mine, d as u64)
    })?;
    let metrics = report.metrics.clone();
    let value = report
        .into_results()
        .into_iter()
        .next()
        .expect("p >= 1 processors");
    Ok(NaiveSelectReport { value, metrics })
}

/// Subroutine form: sort, then the holder of global rank `d` broadcasts it.
pub fn select_by_sorting_in<K: Key>(ctx: &mut ProcCtx<'_, Word<K>>, mine: Vec<K>, d: u64) -> K {
    let sorted = sort_grouped_in(ctx, mine);
    // After sorting, my segment covers global ranks [prev, mine) (0-based);
    // the holder of rank d-1 broadcasts.
    let sums = partial_sums_in(
        ctx,
        sorted.len() as u64,
        Op::Add,
        &|v| Word::Ctl(v),
        &|m: Word<K>| m.expect_ctl(),
    );
    let t = d - 1;
    let holder = t >= sums.prev && t < sums.mine;
    let msg = if holder {
        let key = sorted[(t - sums.prev) as usize].clone();
        ctx.cycle(Some((ChanId(0), Word::Key(key))), Some(ChanId(0)))
    } else {
        ctx.read(ChanId(0))
    };
    msg.expect("the rank holder broadcasts").expect_key()
}

#[cfg(test)]
mod tests {
    use super::*;
    use mcb_workloads::{distributions, rng};

    #[test]
    fn agrees_with_oracle() {
        let pl = distributions::random_uneven(5, 60, &mut rng(51));
        for d in [1, 7, 30, 60] {
            let r = select_by_sorting(2, pl.lists().to_vec(), d).unwrap();
            assert_eq!(r.value, pl.rank(d), "rank {d}");
        }
    }

    #[test]
    fn agrees_with_filtering_selection() {
        let pl = distributions::even(4, 256, &mut rng(52));
        let d = 100;
        let naive = select_by_sorting(4, pl.lists().to_vec(), d).unwrap();
        let smart = crate::select::select_rank(4, pl.lists().to_vec(), d).unwrap();
        assert_eq!(naive.value, smart.value);
        // The whole point: filtering sends far fewer messages at this size.
        assert!(
            smart.metrics.messages < naive.metrics.messages,
            "filtering {} vs naive {}",
            smart.metrics.messages,
            naive.metrics.messages
        );
    }

    #[test]
    fn rejects_bad_rank() {
        assert!(select_by_sorting(1, vec![vec![1u64]], 2).is_err());
    }
}
