//! Selection by rank (§8).
//!
//! Identifies `N[d]`, the `d`'th largest of `n` elements distributed
//! arbitrarily over the processors, without sorting everything. The
//! algorithm repeats a **filtering phase** until at most `m* = p/k`
//! candidates remain, then a **termination phase** collects the survivors
//! at `P_1`, which selects locally and broadcasts the answer.
//!
//! A filtering phase (Figure 2's picture):
//!
//! 1. every processor computes the median `med_i` of its local candidates
//!    (BFPRT, local and free) — a dummy for empty candidate sets;
//! 2. the pairs `(med_i, m_i)` are **sorted** by median, descending, using
//!    the §5 sorting algorithm (`n = p`, one pair per processor);
//! 3. Partial-Sums over the sorted counts finds the *weighted median of
//!    medians* `med_{i*}`: the first sorted position whose count prefix
//!    reaches `⌈m/2⌉`; that processor broadcasts `med_{i*}`;
//! 4. a total-sum counts `m_ge = |{x : x >= med_{i*}}|`, and all
//!    processors branch identically: `m_ge = d` — found; `m_ge > d` —
//!    purge everything `<= med_{i*}`; `m_ge < d` — purge everything
//!    `>= med_{i*}` and lower `d` by `m_ge`.
//!
//! Because the weighted median-of-medians has at least `⌊m/4⌋` candidates
//! on each side (§8.2), every phase purges at least a quarter of the
//! candidates: `O(log(kn/p))` phases, each `O(p/k)` cycles / `O(p)`
//! messages, for a total of `Θ((p/k)·log(kn/p))` cycles and
//! `Θ(p·log(kn/p))` messages — Corollary 7, optimal by Theorems 1–2.

use crate::local::{median_desc, select_rank_desc};
use crate::msg::{Key, Word};
use crate::partial_sums::{partial_sums_in, total_in, Op};
use crate::sort::grouped::sort_grouped_in;
use mcb_net::{bits_for_u64, ChanId, Metrics, MsgWidth, NetError, Network, ProcCtx};

/// A `(median, count, source)` entry — the unit the filtering phase sorts.
///
/// Ordered by median first (`None` = empty candidate set sorts below every
/// real median), then by source processor for determinism. Raw candidates
/// in the termination phase travel as entries with `count = 0, src = 0`.
#[derive(Debug, Clone, PartialEq, Eq, PartialOrd, Ord)]
pub struct MedEntry<K> {
    /// The processor's local candidate median (`None` if it has none).
    pub med: Option<K>,
    /// Tie-break and provenance: the originating processor.
    pub src: u32,
    /// Number of local candidates at the originating processor.
    pub count: u64,
}

impl<K: MsgWidth> MsgWidth for MedEntry<K> {
    fn bits(&self) -> u32 {
        1 + self.med.as_ref().map_or(0, |m| m.bits()) + 12 + bits_for_u64(self.count)
    }
}

/// Which of §8.1's three cases a filtering phase took.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum FilterCase {
    /// Case 1: `m_ge = d` — the broadcast median is the answer.
    Exact,
    /// Case 2: `m_ge > d` — purged all candidates `<= med*`.
    PurgeLowHalf,
    /// Case 3: `m_ge < d` — purged all candidates `>= med*`.
    PurgeHighHalf,
}

/// Instrumentation of one filtering phase (Figure 2 / experiment E2).
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct PhaseStats {
    /// Candidates at the start of the phase.
    pub before: u64,
    /// Candidates eliminated by the phase.
    pub purged: u64,
    /// Which case fired.
    pub case: FilterCase,
}

impl PhaseStats {
    /// Fraction of candidates purged (the §8.2 analysis promises `>= 1/4`
    /// in cases 2 and 3).
    pub fn purge_fraction(&self) -> f64 {
        if self.before == 0 {
            0.0
        } else {
            self.purged as f64 / self.before as f64
        }
    }
}

/// Outcome of a distributed selection.
#[derive(Debug, Clone)]
pub struct SelectReport<K> {
    /// The selected element `N[d]`.
    pub value: K,
    /// Per-filtering-phase instrumentation.
    pub phases: Vec<PhaseStats>,
    /// Network costs.
    pub metrics: Metrics,
}

/// Select the `d`'th largest element (1-based) of `lists` on an
/// `MCB(p, k)`. Requires distinct keys and `1 <= d <= n`.
pub fn select_rank<K: Key>(
    k: usize,
    lists: Vec<Vec<K>>,
    d: usize,
) -> Result<SelectReport<K>, NetError> {
    let p = lists.len();
    let n: usize = lists.iter().map(Vec::len).sum();
    if d < 1 || d > n {
        return Err(NetError::BadConfig(format!("rank {d} out of 1..={n}")));
    }
    if lists.iter().any(Vec::is_empty) {
        return Err(NetError::BadConfig("paper model assumes n_i > 0".into()));
    }
    let input = lists;
    let report = Network::new(p, k).run(move |ctx| {
        let mine = input[ctx.id().index()].clone();
        select_rank_in(ctx, mine, d as u64)
    })?;
    let metrics = report.metrics.clone();
    let (value, phases) = report
        .into_results()
        .into_iter()
        .next()
        .expect("p >= 1 processors");
    Ok(SelectReport {
        value,
        phases,
        metrics,
    })
}

fn enc<K: Key>(v: u64) -> Word<MedEntry<K>> {
    Word::Ctl(v)
}
fn dec<K: Key>(m: Word<MedEntry<K>>) -> u64 {
    m.expect_ctl()
}

/// Wrap a raw candidate for the termination phase's wire format.
fn raw<K: Key>(key: K) -> MedEntry<K> {
    MedEntry {
        med: Some(key),
        src: 0,
        count: 0,
    }
}

/// Selection as a lock-step subroutine; every processor calls it with its
/// local list and the same rank `d`; all processors return the answer.
pub fn select_rank_in<K: Key>(
    ctx: &mut ProcCtx<'_, Word<MedEntry<K>>>,
    mine: Vec<K>,
    d: u64,
) -> (K, Vec<PhaseStats>) {
    let p = ctx.p() as u64;
    let k = ctx.k() as u64;
    let i = ctx.id().index();
    let m_star = (p / k).max(1);

    let mut candidates = mine;
    let mut d = d;
    // Phase labels: one span per filtering round (filter:1, filter:2, ...)
    // plus "terminate" — set only when no outer algorithm owns the phase.
    // Each round subsumes its inner sort / partial-sums subroutines.
    let label = ctx.phase_label().is_empty();
    if label {
        ctx.phase("census");
    }
    // Candidate count m is tracked identically by every processor.
    let mut m = total_in(ctx, candidates.len() as u64, Op::Add, &enc, &dec);
    let mut phases: Vec<PhaseStats> = Vec::new();

    // ---- filtering ---------------------------------------------------------
    while m > m_star {
        if label {
            ctx.phase(&format!("filter:{}", phases.len() + 1));
        }
        let before = m;
        // (1) local median of candidates.
        let entry = MedEntry {
            med: (!candidates.is_empty()).then(|| median_desc(&candidates)),
            src: i as u32,
            count: candidates.len() as u64,
        };
        // (2) sort the (median, count) pairs: n = p, one per processor.
        let sorted = sort_grouped_in(ctx, vec![entry]);
        let my_entry = sorted.into_iter().next().expect("one entry each");
        // (3) weighted median of medians via Partial-Sums over counts.
        let sums = partial_sums_in(ctx, my_entry.count, Op::Add, &enc, &dec);
        let half = m.div_ceil(2);
        let am_star = sums.prev < half && half <= sums.mine;
        let msg = if am_star {
            let med = my_entry
                .med
                .clone()
                .expect("the weighted median position has candidates");
            ctx.cycle(Some((ChanId(0), Word::Key(raw(med)))), Some(ChanId(0)))
        } else {
            ctx.read(ChanId(0))
        };
        let med_star = msg
            .expect("med* is always broadcast")
            .expect_key()
            .med
            .expect("med* is a real element");
        // (4) count candidates >= med* network-wide.
        let local_ge = candidates.iter().filter(|x| **x >= med_star).count() as u64;
        let m_ge = total_in(ctx, local_ge, Op::Add, &enc, &dec);

        if m_ge == d {
            phases.push(PhaseStats {
                before,
                purged: before,
                case: FilterCase::Exact,
            });
            if label {
                ctx.phase("");
            }
            return (med_star, phases);
        } else if m_ge > d {
            candidates.retain(|x| *x > med_star);
            m = m_ge - 1;
            phases.push(PhaseStats {
                before,
                purged: before - m,
                case: FilterCase::PurgeLowHalf,
            });
        } else {
            candidates.retain(|x| *x < med_star);
            m -= m_ge;
            d -= m_ge;
            phases.push(PhaseStats {
                before,
                purged: before - m,
                case: FilterCase::PurgeHighHalf,
            });
        }
    }

    // ---- termination -------------------------------------------------------
    // Partial sums give each processor its write offset; survivors stream
    // to P_1 (processor 0), which selects locally and broadcasts.
    if label {
        ctx.phase("terminate");
    }
    let sums = partial_sums_in(ctx, candidates.len() as u64, Op::Add, &enc, &dec);
    let mut pool: Vec<K> = if i == 0 {
        Vec::with_capacity(m as usize)
    } else {
        Vec::new()
    };
    if i == 0 {
        pool.extend(candidates.iter().cloned());
    }
    for t in 0..m {
        let idx = t.wrapping_sub(sums.prev) as usize;
        let sending = i != 0 && t >= sums.prev && idx < candidates.len();
        let write = sending.then(|| (ChanId(0), Word::Key(raw(candidates[idx].clone()))));
        let read = (i == 0 && (t < sums.prev || idx >= candidates.len())).then_some(ChanId(0));
        let got = ctx.cycle(write, read);
        if i == 0 {
            if let Some(msg) = got {
                pool.push(msg.expect_key().med.expect("raw candidate"));
            }
        }
    }
    let answer = if i == 0 {
        debug_assert_eq!(pool.len() as u64, m);
        let ans = select_rank_desc(&pool, d as usize);
        ctx.cycle(
            Some((ChanId(0), Word::Key(raw(ans.clone())))),
            Some(ChanId(0)),
        );
        ans
    } else {
        ctx.read(ChanId(0))
            .expect("answer is broadcast")
            .expect_key()
            .med
            .expect("answer is a real element")
    };
    if label {
        ctx.phase("");
    }
    (answer, phases)
}

#[cfg(test)]
mod tests {
    use super::*;
    use mcb_workloads::{distributions, rng, Placement};

    fn check(k: usize, placement: &Placement, d: usize) -> SelectReport<u64> {
        let report = select_rank(k, placement.lists().to_vec(), d).unwrap();
        assert_eq!(report.value, placement.rank(d), "rank {d}");
        report
    }

    #[test]
    fn selects_median_even_distribution() {
        let pl = distributions::even(8, 128, &mut rng(41));
        check(4, &pl, 64);
    }

    #[test]
    fn selects_extreme_and_arbitrary_ranks() {
        let pl = distributions::even(4, 64, &mut rng(42));
        for d in [1, 2, 17, 32, 63, 64] {
            check(2, &pl, d);
        }
    }

    #[test]
    fn selects_on_uneven_distributions() {
        for seed in 0..4 {
            let pl = distributions::random_uneven(6, 120, &mut rng(100 + seed));
            let d = (pl.n() / 2).max(1);
            check(3, &pl, d);
        }
    }

    #[test]
    fn selects_with_heavy_processor() {
        let pl = distributions::single_heavy(5, 100, 0.7, &mut rng(43));
        check(2, &pl, 50);
    }

    #[test]
    fn selects_on_single_channel_and_single_proc() {
        let pl = distributions::even(4, 40, &mut rng(44));
        check(1, &pl, 20);
        let solo = Placement::new(vec![vec![5, 9, 1, 7, 3]]);
        check(1, &solo, 2);
    }

    #[test]
    fn every_filtering_phase_purges_a_quarter() {
        let pl = distributions::even(8, 512, &mut rng(45));
        let report = check(4, &pl, 256);
        assert!(!report.phases.is_empty());
        for (j, ph) in report.phases.iter().enumerate() {
            assert!(
                ph.case == FilterCase::Exact || ph.purge_fraction() >= 0.25,
                "phase {j} purged only {:.3}",
                ph.purge_fraction()
            );
        }
    }

    #[test]
    fn phase_count_is_logarithmic() {
        let pl = distributions::even(8, 1024, &mut rng(46));
        let report = check(8, &pl, 512);
        // m shrinks by >= 1/4 per phase: at most log_{4/3}(kn/p) + O(1).
        let bound = (8.0f64 * 1024.0 / 8.0).ln() / (4.0f64 / 3.0).ln() + 2.0;
        assert!(
            (report.phases.len() as f64) <= bound,
            "{} phases > {bound}",
            report.phases.len()
        );
    }

    #[test]
    fn rejects_bad_ranks() {
        let pl = distributions::even(2, 8, &mut rng(47));
        assert!(select_rank(2, pl.lists().to_vec(), 0).is_err());
        assert!(select_rank(2, pl.lists().to_vec(), 9).is_err());
    }

    #[test]
    fn message_bound_scales_like_p_log() {
        let pl = distributions::even(8, 2048, &mut rng(48));
        let report = check(8, &pl, 1024);
        let p = 8f64;
        let bound = 40.0 * p * (8.0f64 * 2048.0 / 8.0).log2() + 200.0;
        assert!(
            (report.metrics.messages as f64) < bound,
            "messages {} vs bound {bound}",
            report.metrics.messages
        );
    }
}
pub mod naive;
pub mod shout_echo;
pub use naive::{select_by_sorting, select_by_sorting_in, NaiveSelectReport};
pub use shout_echo::{select_shout_echo, select_shout_echo_in, ShoutEchoReport};
