//! A Shout-Echo-style selection baseline.
//!
//! §1 discusses Santoro & Sidney's **Shout-Echo** broadcast model, "in
//! which a basic communication activity consists of one processor
//! broadcasting a message (shout) and receiving a reply (echo) from all
//! other processors", and §9 notes the paper's selection algorithm improves
//! the best Shout-Echo selection bound \[Rote83\] by `O(log p)`. This module
//! implements a faithful Shout-Echo-*style* selection on the MCB model as a
//! second baseline for the experiments:
//!
//! * per round, a rotating coordinator **shouts** the median of its local
//!   candidates on channel 0 (one cycle);
//! * every processor **echoes** its `>= pivot` candidate count, serialized
//!   on channel 0 (`p` cycles — the echo is inherently a single-channel
//!   activity, since every processor must hear every reply to stay in
//!   lock-step);
//! * everyone branches on the three §8 cases identically.
//!
//! Because each round only halves the *coordinator's* candidates (the pivot
//! is one processor's median, not the weighted median-of-medians), the
//! round count is `O(Σᵢ log nᵢ) = O(p·log(n/p))` instead of §8's
//! `O(log(kn/p))` — exactly the `O(log p)`-ish gap the paper claims over
//! the Shout-Echo state of the art, measured in experiment E8b.

use crate::local::median_desc;
use crate::msg::{Key, Word};
use mcb_net::{ChanId, Metrics, NetError, Network, ProcCtx};

/// Outcome of a Shout-Echo selection.
#[derive(Debug, Clone)]
pub struct ShoutEchoReport<K> {
    /// The selected element `N[d]`.
    pub value: K,
    /// Number of shout-echo rounds used.
    pub rounds: usize,
    /// Network costs.
    pub metrics: Metrics,
}

/// Select the `d`'th largest element with rotating-coordinator Shout-Echo
/// rounds. `k` is accepted for interface parity but rounds serialize on
/// channel 0 (the Shout-Echo model is single-activity).
pub fn select_shout_echo<K: Key>(
    k: usize,
    lists: Vec<Vec<K>>,
    d: usize,
) -> Result<ShoutEchoReport<K>, NetError> {
    let p = lists.len();
    let n: usize = lists.iter().map(Vec::len).sum();
    if d < 1 || d > n {
        return Err(NetError::BadConfig(format!("rank {d} out of 1..={n}")));
    }
    if lists.iter().any(Vec::is_empty) {
        return Err(NetError::BadConfig("paper model assumes n_i > 0".into()));
    }
    let input = lists;
    let report = Network::new(p, k).run(move |ctx| {
        let mine = input[ctx.id().index()].clone();
        select_shout_echo_in(ctx, mine, d as u64)
    })?;
    let metrics = report.metrics.clone();
    let (value, rounds) = report
        .into_results()
        .into_iter()
        .next()
        .expect("p >= 1 processors");
    Ok(ShoutEchoReport {
        value,
        rounds,
        metrics,
    })
}

/// Subroutine form; returns `(answer, rounds)` at every processor.
pub fn select_shout_echo_in<K: Key>(
    ctx: &mut ProcCtx<'_, Word<K>>,
    mine: Vec<K>,
    d: u64,
) -> (K, usize) {
    let p = ctx.p();
    let i = ctx.id().index();
    let chan = ChanId(0);

    let mut candidates = mine;
    let mut d = d;
    let mut rounds = 0usize;

    // Census round: everyone learns all candidate counts (and hence m and
    // who can coordinate).
    let mut counts = vec![0u64; p];
    for turn in 0..p {
        let write = (turn == i).then(|| (chan, Word::Ctl(candidates.len() as u64)));
        counts[turn] = ctx.cycle(write, Some(chan)).expect("census").expect_ctl();
    }
    let mut m: u64 = counts.iter().sum();
    let mut coordinator = 0usize;

    while m > 1 {
        rounds += 1;
        // Rotate to the next processor that still has candidates.
        while counts[coordinator] == 0 {
            coordinator = (coordinator + 1) % p;
        }
        // Shout: the coordinator's local candidate median.
        let shout = (coordinator == i).then(|| (chan, Word::Key(median_desc(&candidates))));
        let pivot = ctx
            .cycle(shout, Some(chan))
            .expect("coordinator shouts")
            .expect_key();
        // Echoes: every processor's >= pivot count, serialized.
        let mut m_ge = 0u64;
        for turn in 0..p {
            let local_ge = candidates.iter().filter(|x| **x >= pivot).count() as u64;
            let write = (turn == i).then(|| (chan, Word::Ctl(local_ge)));
            m_ge += ctx.cycle(write, Some(chan)).expect("echo").expect_ctl();
        }
        // Identical branching everywhere (the §8 cases).
        if m_ge == d {
            return (pivot, rounds);
        } else if m_ge > d {
            candidates.retain(|x| *x > pivot);
            m = m_ge - 1;
        } else {
            candidates.retain(|x| *x < pivot);
            m -= m_ge;
            d -= m_ge;
        }
        // Refresh counts (everyone can recompute only its own; re-census
        // cheaply by echoing new counts next round — fold into the count
        // update here instead: one more serialized round).
        for turn in 0..p {
            let write = (turn == i).then(|| (chan, Word::Ctl(candidates.len() as u64)));
            counts[turn] = ctx.cycle(write, Some(chan)).expect("recount").expect_ctl();
        }
        coordinator = (coordinator + 1) % p;
    }

    // One candidate left: its holder announces it.
    debug_assert_eq!(m, 1);
    debug_assert_eq!(d, 1);
    let write = (!candidates.is_empty()).then(|| (chan, Word::Key(candidates[0].clone())));
    let answer = ctx
        .cycle(write, Some(chan))
        .expect("last holder announces")
        .expect_key();
    (answer, rounds)
}

#[cfg(test)]
mod tests {
    use super::*;
    use mcb_workloads::{distributions, rng};

    #[test]
    fn agrees_with_oracle() {
        let pl = distributions::random_uneven(5, 60, &mut rng(71));
        for d in [1usize, 15, 30, 60] {
            let r = select_shout_echo(2, pl.lists().to_vec(), d).unwrap();
            assert_eq!(r.value, pl.rank(d), "rank {d}");
        }
    }

    #[test]
    fn agrees_with_filtering_selection() {
        let pl = distributions::even(6, 120, &mut rng(72));
        let d = 60;
        let se = select_shout_echo(3, pl.lists().to_vec(), d).unwrap();
        let smart = crate::select::select_rank(3, pl.lists().to_vec(), d).unwrap();
        assert_eq!(se.value, smart.value);
    }

    #[test]
    fn uses_more_rounds_than_filtering_has_phases() {
        // The whole point of §8 over Shout-Echo: fewer elimination rounds.
        // A single seed can get lucky, so compare aggregates over several.
        let mut se_rounds = 0usize;
        let mut filter_phases = 0usize;
        for seed in 73..81 {
            let pl = distributions::even(8, 512, &mut rng(seed));
            let d = 256;
            let se = select_shout_echo(4, pl.lists().to_vec(), d).unwrap();
            let smart = crate::select::select_rank(4, pl.lists().to_vec(), d).unwrap();
            assert_eq!(se.value, smart.value, "seed {seed}");
            se_rounds += se.rounds;
            filter_phases += smart.phases.len();
        }
        assert!(
            se_rounds > filter_phases,
            "shout-echo rounds {se_rounds} <= filtering phases {filter_phases}"
        );
    }

    #[test]
    fn single_processor_and_rank_edges() {
        let r = select_shout_echo(1, vec![vec![9u64, 3, 7]], 2).unwrap();
        assert_eq!(r.value, 7);
        assert!(select_shout_echo(1, vec![vec![1u64]], 0).is_err());
        assert!(select_shout_echo(1, vec![vec![1u64]], 2).is_err());
    }
}
