//! Leighton's Columnsort (§5.1), as a pure in-memory algorithm.
//!
//! Columnsort sorts an `m × k` matrix into **descending column-major
//! order** via eight phases alternating local column sorts with the four
//! fixed [`Transform`]s:
//!
//! | Phase | Action                      |
//! |-------|-----------------------------|
//! | 1     | sort each column            |
//! | 2     | transpose                   |
//! | 3     | sort each column            |
//! | 4     | un-diagonalize              |
//! | 5     | sort each column            |
//! | 6     | up-shift                    |
//! | 7     | sort each column **except column 1** |
//! | 8     | down-shift                  |
//!
//! The paper's circular-shift variant is used: phase 6 wraps the tail of
//! the linear list to the head of column 1, and because both the wrapped
//! block and the remainder of column 1 are individually sorted already,
//! column 1 can skip phase 7 entirely (the wrapped elements simply return
//! to column k in phase 8).
//!
//! This pure version is the specification that the distributed
//! implementations in [`crate::sort`] are tested against, and the engine
//! for Figure 1's worked example.

pub mod matrix;
pub mod params;
pub mod transforms;

pub use matrix::Matrix;
pub use params::{
    check_shape, choose_columns, min_column_length, padded_column_length, ShapeError,
};
pub use transforms::{Transform, ALL_TRANSFORMS};

use crate::local::sort_desc;

/// One Columnsort phase, for step-by-step drivers (Figure 1, traces).
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum Phase {
    /// Sort every column descending (phases 1, 3, 5).
    SortColumns,
    /// Sort every column except column 1 (phase 7).
    SortColumnsExceptFirst,
    /// Apply a matrix transformation (phases 2, 4, 6, 8).
    Apply(Transform),
}

/// The eight phases in order.
pub const PHASES: [Phase; 8] = [
    Phase::SortColumns,
    Phase::Apply(Transform::Transpose),
    Phase::SortColumns,
    Phase::Apply(Transform::UnDiagonalize),
    Phase::SortColumns,
    Phase::Apply(Transform::UpShift),
    Phase::SortColumnsExceptFirst,
    Phase::Apply(Transform::DownShift),
];

/// Apply one phase.
pub fn apply_phase<T: Ord + Clone>(matrix: &Matrix<T>, phase: Phase) -> Matrix<T> {
    match phase {
        Phase::SortColumns => {
            let mut out = matrix.clone();
            for c in 0..out.cols() {
                sort_desc(out.column_mut(c));
            }
            out
        }
        Phase::SortColumnsExceptFirst => {
            let mut out = matrix.clone();
            for c in 1..out.cols() {
                sort_desc(out.column_mut(c));
            }
            out
        }
        Phase::Apply(tf) => tf.apply(matrix),
    }
}

/// Run all eight phases; returns the sorted matrix.
///
/// Errors when the shape violates `m >= k(k-1)` or `k ∤ m` (§5.1).
pub fn columnsort<T: Ord + Clone>(matrix: &Matrix<T>) -> Result<Matrix<T>, ShapeError> {
    check_shape(matrix.rows(), matrix.cols())?;
    let mut m = matrix.clone();
    for phase in PHASES {
        m = apply_phase(&m, phase);
    }
    Ok(m)
}

/// Run all eight phases, yielding every intermediate matrix (the input at
/// index 0, the phase-`i` output at index `i`). Figure 1's generator.
pub fn columnsort_trace<T: Ord + Clone>(matrix: &Matrix<T>) -> Result<Vec<Matrix<T>>, ShapeError> {
    check_shape(matrix.rows(), matrix.cols())?;
    let mut states = Vec::with_capacity(PHASES.len() + 1);
    states.push(matrix.clone());
    for phase in PHASES {
        let next = apply_phase(states.last().unwrap(), phase);
        states.push(next);
    }
    Ok(states)
}

/// True when `matrix` is in descending column-major order — the
/// postcondition of [`columnsort`].
pub fn is_sorted_matrix<T: Ord + Clone>(matrix: &Matrix<T>) -> bool {
    let lin = matrix.to_linear();
    lin.windows(2).all(|w| w[0] >= w[1])
}

#[cfg(test)]
mod tests {
    use super::*;
    use mcb_rng::Rng64;

    fn matrix_from_seed(m: usize, k: usize, seed: u64) -> Matrix<u64> {
        let vals: Vec<u64> = (0..(m * k) as u64)
            .map(|i| i.wrapping_mul(6364136223846793005).wrapping_add(seed) >> 16)
            .collect();
        Matrix::from_linear(vals, m)
    }

    #[test]
    fn sorts_minimum_legal_shapes() {
        // The tightest shapes the paper allows: m = k(k-1) rounded to k | m.
        for k in 1..=6usize {
            let m = min_column_length(k);
            let mat = matrix_from_seed(m, k, 0xC0FFEE);
            let sorted = columnsort(&mat).unwrap();
            assert!(is_sorted_matrix(&sorted), "k={k} m={m}");
        }
    }

    #[test]
    fn sorts_generous_shapes() {
        for (m, k) in [(12, 2), (24, 4), (30, 5), (64, 4), (56, 8)] {
            let mat = matrix_from_seed(m, k, 42);
            let sorted = columnsort(&mat).unwrap();
            assert!(is_sorted_matrix(&sorted), "m={m} k={k}");
            // Same multiset.
            let mut a = sorted.to_linear();
            let mut b = mat.to_linear();
            a.sort_unstable();
            b.sort_unstable();
            assert_eq!(a, b);
        }
    }

    #[test]
    fn rejects_bad_shapes() {
        let mat = matrix_from_seed(8, 4, 1);
        assert!(matches!(columnsort(&mat), Err(ShapeError::TooShort { .. })));
        let mat = matrix_from_seed(15, 4, 1); // >= 12 but 4 does not divide 15
        assert!(matches!(
            columnsort(&mat),
            Err(ShapeError::NotDivisible { .. })
        ));
    }

    #[test]
    fn single_column_degenerates_to_local_sort() {
        let mat = matrix_from_seed(9, 1, 7);
        let sorted = columnsort(&mat).unwrap();
        assert!(is_sorted_matrix(&sorted));
    }

    #[test]
    fn trace_has_nine_states_and_ends_sorted() {
        let mat = matrix_from_seed(12, 3, 9);
        let trace = columnsort_trace(&mat).unwrap();
        assert_eq!(trace.len(), 9);
        assert_eq!(trace[0], mat);
        assert!(is_sorted_matrix(trace.last().unwrap()));
        // Intermediate states keep the multiset.
        for st in &trace {
            let mut a = st.to_linear();
            let mut b = mat.to_linear();
            a.sort_unstable();
            b.sort_unstable();
            assert_eq!(a, b);
        }
    }

    #[test]
    fn sorts_with_duplicates() {
        let vals = vec![5u64; 36];
        let mat = Matrix::from_linear(vals, 12);
        assert!(is_sorted_matrix(&columnsort(&mat).unwrap()));
        let vals: Vec<u64> = (0..36).map(|i| (i % 4) as u64).collect();
        let mat = Matrix::from_linear(vals, 12);
        assert!(is_sorted_matrix(&columnsort(&mat).unwrap()));
    }

    #[test]
    fn sorts_already_sorted_and_reversed() {
        let asc: Vec<u64> = (0..48).collect();
        let desc: Vec<u64> = (0..48).rev().collect();
        for vals in [asc, desc] {
            let mat = Matrix::from_linear(vals, 12);
            assert!(is_sorted_matrix(&columnsort(&mat).unwrap()));
        }
    }

    #[test]
    fn columnsort_sorts_random_matrices() {
        let mut rng = Rng64::seed_from_u64(0xc01a);
        for case in 0..64 {
            let k = rng.random_range(1usize..6);
            let mult = rng.random_range(1usize..4);
            let seed = rng.next_u64();
            let m = (min_column_length(k) * mult).max(1);
            let mat = matrix_from_seed(m, k, seed);
            let sorted = columnsort(&mat).unwrap();
            assert!(is_sorted_matrix(&sorted), "case {case}: k={k} m={m}");
            let mut a = sorted.to_linear();
            let mut b = mat.to_linear();
            a.sort_unstable();
            b.sort_unstable();
            assert_eq!(a, b, "case {case}: k={k} m={m}");
        }
    }
}
