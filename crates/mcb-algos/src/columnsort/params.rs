//! Dimension rules for Columnsort.
//!
//! The transformations are only "effective" when columns are long relative
//! to their number: the paper requires `m >= k(k-1)` and `k | m` (§5.1).
//! When the input is too small for `k` columns (`n < k²(k-1)`), fewer
//! columns must be used (§5.2); [`choose_columns`] picks the largest legal
//! column count.

/// Why a `(m, k)` matrix shape is not sortable by Columnsort.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum ShapeError {
    /// `m < k(k-1)`: columns too short for the transformations to mix.
    TooShort {
        /// Column length.
        m: usize,
        /// Column count.
        k: usize,
    },
    /// `k` does not divide `m`, which the transformations require.
    NotDivisible {
        /// Column length.
        m: usize,
        /// Column count.
        k: usize,
    },
}

impl std::fmt::Display for ShapeError {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        match self {
            ShapeError::TooShort { m, k } => {
                write!(
                    f,
                    "column length {m} < k(k-1) = {} for k = {k}",
                    k * (k - 1)
                )
            }
            ShapeError::NotDivisible { m, k } => {
                write!(f, "k = {k} does not divide column length m = {m}")
            }
        }
    }
}

impl std::error::Error for ShapeError {}

/// Check the paper's shape requirements for an `m × k` Columnsort.
pub fn check_shape(m: usize, k: usize) -> Result<(), ShapeError> {
    assert!(m > 0 && k > 0);
    if k > 1 && m < k * (k - 1) {
        return Err(ShapeError::TooShort { m, k });
    }
    if !m.is_multiple_of(k) {
        return Err(ShapeError::NotDivisible { m, k });
    }
    Ok(())
}

/// Smallest legal column length for `k` columns: the least multiple of `k`
/// that is `>= k(k-1)`.
pub fn min_column_length(k: usize) -> usize {
    assert!(k > 0);
    if k == 1 {
        return 1;
    }
    let need = k * (k - 1);
    need.div_ceil(k) * k
}

/// Largest usable column count for `n` elements, capped at `k_max`:
/// the largest `k <= k_max` with `n >= k²(k-1)` — i.e. such that columns of
/// length `~n/k` satisfy `m >= k(k-1)` after padding.
///
/// Always at least 1. For `n >= k_max²(k_max - 1)` this is `k_max` (the
/// optimal regime); below that the column count, and with it the cycle
/// parallelism, degrades (§5.2) — the motivation for the recursive scheme
/// of §6.2.
pub fn choose_columns(n: usize, k_max: usize) -> usize {
    assert!(n > 0 && k_max > 0);
    let mut k = k_max.min(n);
    while k > 1 && n < k * k * (k - 1) {
        k -= 1;
    }
    k
}

/// Pad `len` up to the next multiple of `k` that is also `>= k(k-1)`.
pub fn padded_column_length(len: usize, k: usize) -> usize {
    assert!(k > 0);
    let floor = min_column_length(k);
    let len = len.max(floor).max(1);
    len.div_ceil(k) * k
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn shape_checks() {
        assert!(check_shape(12, 4).is_ok()); // 12 = 4*3 exactly
        assert!(check_shape(16, 4).is_ok());
        assert_eq!(check_shape(8, 4), Err(ShapeError::TooShort { m: 8, k: 4 }));
        assert_eq!(
            check_shape(13, 4).unwrap_err(),
            ShapeError::NotDivisible { m: 13, k: 4 }
        );
        assert!(check_shape(5, 1).is_ok()); // single column: anything goes
    }

    #[test]
    fn min_column_lengths() {
        assert_eq!(min_column_length(1), 1);
        assert_eq!(min_column_length(2), 2);
        assert_eq!(min_column_length(3), 6);
        assert_eq!(min_column_length(4), 12);
        assert_eq!(min_column_length(8), 56);
    }

    #[test]
    fn choose_columns_respects_cube_law() {
        // k usable only when n >= k^2(k-1).
        assert_eq!(choose_columns(1000, 8), 8); // 8²·7 = 448 <= 1000
        assert_eq!(choose_columns(448, 8), 8);
        assert_eq!(choose_columns(447, 8), 7);
        assert_eq!(choose_columns(5, 8), 2); // 2^2*1 = 4 <= 5
        assert_eq!(choose_columns(3, 8), 1);
        assert_eq!(choose_columns(1, 1), 1);
    }

    #[test]
    fn padded_lengths_are_legal() {
        for k in 1..10usize {
            for len in 1..200usize {
                let m = padded_column_length(len, k);
                assert!(m >= len);
                assert!(check_shape(m, k).is_ok(), "len={len} k={k} m={m}");
            }
        }
    }

    #[test]
    fn display_messages() {
        let e = ShapeError::TooShort { m: 8, k: 4 };
        assert!(e.to_string().contains("k(k-1) = 12"));
    }
}
