//! The four Columnsort matrix transformations (§5.1).
//!
//! Each transformation is a fixed permutation of matrix positions. This
//! module gives both the permutation as a function on column-major linear
//! indices (consumed by the broadcast scheduler) and a convenience
//! application on [`Matrix`] values.
//!
//! * **Transpose** — read the elements column after column, store them row
//!   after row.
//! * **Un-diagonalize** — read the elements diagonal after diagonal (in the
//!   (column, row) order (1,1), (2,1), (1,2), (3,1), (2,2), (1,3), …),
//!   store them column after column.
//! * **Up-shift** — viewing the matrix as a column-major linear list, shift
//!   every element `⌊m/2⌋` positions forward, wrapping the tail to the
//!   front.
//! * **Down-shift** — the inverse shift.

use super::matrix::Matrix;

/// One of the four Columnsort transformations.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub enum Transform {
    /// Phase 2: column-major order rewritten in row-major order.
    Transpose,
    /// Phase 4: diagonal order rewritten in column-major order.
    UnDiagonalize,
    /// Phase 6: circular forward shift by `⌊m/2⌋`.
    UpShift,
    /// Phase 8: circular backward shift by `⌊m/2⌋`.
    DownShift,
}

impl Transform {
    /// Destination (column-major) position for each source position, for an
    /// `m × k` matrix. The result is a bijection on `0..m*k`.
    pub fn permutation(self, m: usize, k: usize) -> Vec<usize> {
        assert!(m > 0 && k > 0);
        let n = m * k;
        match self {
            Transform::Transpose => {
                // Source q (column-major) is the q'th element read; it is
                // stored at row-major rank q, i.e. (col q mod k, row q div k).
                (0..n)
                    .map(|q| {
                        let col = q % k;
                        let row = q / k;
                        col * m + row
                    })
                    .collect()
            }
            Transform::UnDiagonalize => {
                // Enumerate positions diagonal after diagonal; the t'th
                // position visited is stored at column-major rank t.
                let mut perm = vec![usize::MAX; n];
                let mut t = 0;
                for d in 0..(m + k - 1) {
                    // Diagonal d holds positions (c, d - c); clip to matrix.
                    let c_hi = d.min(k - 1);
                    let c_lo = d.saturating_sub(m - 1);
                    for c in (c_lo..=c_hi).rev() {
                        let r = d - c;
                        perm[c * m + r] = t;
                        t += 1;
                    }
                }
                debug_assert_eq!(t, n);
                perm
            }
            Transform::UpShift => {
                let s = m / 2;
                (0..n).map(|q| (q + s) % n).collect()
            }
            Transform::DownShift => {
                let s = m / 2;
                (0..n).map(|q| (q + n - s) % n).collect()
            }
        }
    }

    /// Apply this transformation to a matrix.
    pub fn apply<T: Clone>(self, matrix: &Matrix<T>) -> Matrix<T> {
        let perm = self.permutation(matrix.rows(), matrix.cols());
        matrix.permute(|q| perm[q])
    }

    /// The inverse transformation when it is itself one of the four;
    /// `UpShift`/`DownShift` invert each other, the other two have no named
    /// inverse in the paper.
    pub fn inverse(self) -> Option<Transform> {
        match self {
            Transform::UpShift => Some(Transform::DownShift),
            Transform::DownShift => Some(Transform::UpShift),
            _ => None,
        }
    }
}

/// All four transformations, in phase order (2, 4, 6, 8).
pub const ALL_TRANSFORMS: [Transform; 4] = [
    Transform::Transpose,
    Transform::UnDiagonalize,
    Transform::UpShift,
    Transform::DownShift,
];

#[cfg(test)]
mod tests {
    use super::*;
    use mcb_rng::Rng64;

    fn numbered(m: usize, k: usize) -> Matrix<u64> {
        Matrix::from_linear((0..(m * k) as u64).collect(), m)
    }

    fn is_permutation(perm: &[usize]) -> bool {
        let mut seen = vec![false; perm.len()];
        for &t in perm {
            if t >= perm.len() || seen[t] {
                return false;
            }
            seen[t] = true;
        }
        true
    }

    #[test]
    fn transpose_small_example() {
        // m=4, k=2; columns [0,1,2,3],[4,5,6,7].
        // Reading column-major 0,1,2,3,4,5,6,7 and storing row-major gives
        // rows (0,1),(2,3),(4,5),(6,7) -> columns [0,2,4,6],[1,3,5,7].
        let m = numbered(4, 2);
        let t = Transform::Transpose.apply(&m);
        assert_eq!(t.columns(), &[vec![0, 2, 4, 6], vec![1, 3, 5, 7]]);
    }

    #[test]
    fn undiagonalize_small_example() {
        // m=3, k=3; columns [0,1,2],[3,4,5],[6,7,8].
        // Diagonal order (paper's (col,row) pattern): (0,0) (1,0) (0,1)
        // (2,0) (1,1) (0,2) (2,1) (1,2) (2,2) = 0,3,1,6,4,2,7,5,8.
        // Stored column-major: cols [0,3,1],[6,4,2],[7,5,8].
        let m = numbered(3, 3);
        let t = Transform::UnDiagonalize.apply(&m);
        assert_eq!(t.columns(), &[vec![0, 3, 1], vec![6, 4, 2], vec![7, 5, 8]]);
    }

    #[test]
    fn shifts_move_linear_list() {
        let m = numbered(4, 2); // linear 0..8, shift = 2
        let up = Transform::UpShift.apply(&m);
        assert_eq!(up.to_linear(), vec![6, 7, 0, 1, 2, 3, 4, 5]);
        let down = Transform::DownShift.apply(&m);
        assert_eq!(down.to_linear(), vec![2, 3, 4, 5, 6, 7, 0, 1]);
    }

    #[test]
    fn shifts_are_inverse() {
        let m = numbered(6, 3);
        let round = Transform::DownShift.apply(&Transform::UpShift.apply(&m));
        assert_eq!(round, m);
        assert_eq!(Transform::UpShift.inverse(), Some(Transform::DownShift));
        assert_eq!(Transform::Transpose.inverse(), None);
    }

    #[test]
    fn permutations_are_bijections() {
        for tf in ALL_TRANSFORMS {
            for (m, k) in [(1, 1), (4, 2), (3, 3), (12, 4), (20, 4), (7, 5)] {
                let perm = tf.permutation(m, k);
                assert!(is_permutation(&perm), "{tf:?} at m={m} k={k}");
            }
        }
    }

    #[test]
    fn transforms_preserve_multisets() {
        let mut rng = Rng64::seed_from_u64(0x7f05);
        for case in 0..256 {
            let m = rng.random_range(1usize..12);
            let k = rng.random_range(1usize..6);
            let seed = rng.next_u64();
            let vals: Vec<u64> = (0..(m * k) as u64)
                .map(|i| i.wrapping_mul(seed | 1))
                .collect();
            let mat = Matrix::from_linear(vals.clone(), m);
            for tf in ALL_TRANSFORMS {
                let out = tf.apply(&mat);
                let mut a = out.to_linear();
                let mut b = vals.clone();
                a.sort_unstable();
                b.sort_unstable();
                assert_eq!(a, b, "case {case}: {tf:?} at m={m} k={k}");
            }
        }
    }
}
