//! Column-major matrices: Columnsort's data layout.
//!
//! The paper views the input "as a matrix of size m × k, or alternatively,
//! as a set of k columns of length m" (§5.1), where column `i` lives on
//! processor `P_i`. Positions are addressed `(col, row)` and the matrix is
//! linearized **column-major** (lexicographic by (column, row)), which is
//! the order the shift transformations and the final sorted order refer to.

/// A dense `m × k` matrix stored as `k` columns of length `m`.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct Matrix<T> {
    cols: Vec<Vec<T>>,
    rows: usize,
}

impl<T> Matrix<T> {
    /// Build from columns; all columns must share one length `m >= 1`.
    pub fn from_columns(cols: Vec<Vec<T>>) -> Self {
        assert!(!cols.is_empty(), "matrix needs at least one column");
        let rows = cols[0].len();
        assert!(rows > 0, "columns must be nonempty");
        assert!(
            cols.iter().all(|c| c.len() == rows),
            "all columns must have equal length"
        );
        Matrix { cols, rows }
    }

    /// Build from the column-major linear order.
    pub fn from_linear(items: Vec<T>, rows: usize) -> Self {
        assert!(
            rows > 0 && items.len().is_multiple_of(rows),
            "length must be m*k"
        );
        let mut cols = Vec::with_capacity(items.len() / rows);
        let mut it = items.into_iter();
        while let Some(first) = it.next() {
            let mut col = Vec::with_capacity(rows);
            col.push(first);
            for _ in 1..rows {
                col.push(it.next().expect("length checked"));
            }
            cols.push(col);
        }
        Matrix { cols, rows }
    }

    /// Number of rows `m` (column length).
    pub fn rows(&self) -> usize {
        self.rows
    }

    /// Number of columns `k`.
    pub fn cols(&self) -> usize {
        self.cols.len()
    }

    /// Total elements `m * k`.
    pub fn len(&self) -> usize {
        self.rows * self.cols()
    }

    /// True when the matrix holds no elements (impossible by construction).
    pub fn is_empty(&self) -> bool {
        self.len() == 0
    }

    /// Element at `(col, row)`.
    pub fn get(&self, col: usize, row: usize) -> &T {
        &self.cols[col][row]
    }

    /// Mutable element at `(col, row)`.
    pub fn get_mut(&mut self, col: usize, row: usize) -> &mut T {
        &mut self.cols[col][row]
    }

    /// Column `c` as a slice.
    pub fn column(&self, c: usize) -> &[T] {
        &self.cols[c]
    }

    /// Column `c` as a mutable slice.
    pub fn column_mut(&mut self, c: usize) -> &mut [T] {
        &mut self.cols[c]
    }

    /// Borrow all columns.
    pub fn columns(&self) -> &[Vec<T>] {
        &self.cols
    }

    /// Consume into columns.
    pub fn into_columns(self) -> Vec<Vec<T>> {
        self.cols
    }

    /// Column-major linear index of `(col, row)`.
    pub fn linear_index(&self, col: usize, row: usize) -> usize {
        col * self.rows + row
    }

    /// `(col, row)` of a column-major linear index.
    pub fn position(&self, idx: usize) -> (usize, usize) {
        (idx / self.rows, idx % self.rows)
    }

    /// The column-major linearization.
    pub fn to_linear(&self) -> Vec<T>
    where
        T: Clone,
    {
        let mut out = Vec::with_capacity(self.len());
        for c in &self.cols {
            out.extend(c.iter().cloned());
        }
        out
    }

    /// Apply a position permutation: the element at source position `q`
    /// (column-major) moves to position `perm(q)`. `perm` must be a
    /// bijection on `0..m*k` (checked in debug builds).
    pub fn permute(&self, perm: impl Fn(usize) -> usize) -> Matrix<T>
    where
        T: Clone,
    {
        let n = self.len();
        let mut out: Vec<Option<T>> = vec![None; n];
        for q in 0..n {
            let (c, r) = self.position(q);
            let tgt = perm(q);
            debug_assert!(tgt < n, "permutation target {tgt} out of range");
            debug_assert!(out[tgt].is_none(), "permutation is not injective at {tgt}");
            out[tgt] = Some(self.get(c, r).clone());
        }
        Matrix::from_linear(
            out.into_iter()
                .map(|x| x.expect("permutation is surjective"))
                .collect(),
            self.rows,
        )
    }
}

impl<T: std::fmt::Display> Matrix<T> {
    /// Render row-by-row (for Figure 1 style output).
    pub fn render(&self) -> String {
        use std::fmt::Write;
        let mut s = String::new();
        for r in 0..self.rows {
            for c in 0..self.cols() {
                let _ = write!(s, "{:>5}", self.get(c, r));
            }
            s.push('\n');
        }
        s
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn sample() -> Matrix<u64> {
        // Columns: [1,2,3], [4,5,6] -> m=3, k=2.
        Matrix::from_columns(vec![vec![1, 2, 3], vec![4, 5, 6]])
    }

    #[test]
    fn construction_and_shape() {
        let m = sample();
        assert_eq!(m.rows(), 3);
        assert_eq!(m.cols(), 2);
        assert_eq!(m.len(), 6);
        assert_eq!(*m.get(1, 2), 6);
    }

    #[test]
    fn linear_round_trip() {
        let m = sample();
        let lin = m.to_linear();
        assert_eq!(lin, vec![1, 2, 3, 4, 5, 6]);
        let m2 = Matrix::from_linear(lin, 3);
        assert_eq!(m, m2);
    }

    #[test]
    fn linear_index_and_position_invert() {
        let m = sample();
        for q in 0..m.len() {
            let (c, r) = m.position(q);
            assert_eq!(m.linear_index(c, r), q);
        }
    }

    #[test]
    fn permute_identity_and_reverse() {
        let m = sample();
        assert_eq!(m.permute(|q| q), m);
        let n = m.len();
        let rev = m.permute(|q| n - 1 - q);
        assert_eq!(rev.to_linear(), vec![6, 5, 4, 3, 2, 1]);
    }

    #[test]
    #[should_panic(expected = "equal length")]
    fn ragged_columns_rejected() {
        let _ = Matrix::from_columns(vec![vec![1], vec![2, 3]]);
    }

    #[test]
    fn render_is_row_major() {
        let m = sample();
        let s = m.render();
        let lines: Vec<&str> = s.lines().collect();
        assert_eq!(lines.len(), 3);
        assert!(lines[0].contains('1') && lines[0].contains('4'));
    }
}
