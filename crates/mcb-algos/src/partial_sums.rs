//! The Partial-Sums algorithm (§7.1).
//!
//! Computes, at every processor `P_i`, the prefix combination
//! `a_i^⊕ = a_1 ⊕ … ⊕ a_i` of per-processor values under a commutative,
//! associative operator — the paper uses `+` and `max`. The algorithm
//! simulates Vishkin's fetch-and-add tree machine: a full binary tree over
//! the processors, run bottom-up (subtree sums) then top-down (prefix
//! offsets), with a father node co-located with its left son so that only
//! right-son messages cross the network.
//!
//! Complexity: `O(p/k + log p)` cycles and `O(p)` messages — the level-`l`
//! step has `⌈p/2^{l+1}⌉` messages scheduled `k` per cycle, so low levels
//! cost `p/(k·2^{l+1})` cycles and the top `log k` levels one cycle each,
//! exactly the paper's accounting.
//!
//! The function is a **subroutine**: every processor of the network must
//! call it at the same cycle with the same `(op, k)`; it returns with all
//! processors back in lock-step. This is how §7.2 (group formation) and §8
//! (selection) compose it into larger protocols.

use mcb_net::{ChanId, MsgWidth, ProcCtx};

/// The commutative, associative operators the paper's algorithms need.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum Op {
    /// Integer addition (cardinality prefix sums).
    Add,
    /// Maximum (computing `n_max`).
    Max,
}

impl Op {
    /// Apply the operator.
    #[inline]
    pub fn apply(self, a: u64, b: u64) -> u64 {
        match self {
            Op::Add => a + b,
            Op::Max => a.max(b),
        }
    }

    /// The identity element `ω` (0 for both operators on cardinalities).
    #[inline]
    pub fn identity(self) -> u64 {
        0
    }
}

/// What Partial-Sums yields at processor `P_i` (paper: "the Partial-Sums
/// algorithm yields at each `P_i` the values `a_{i-1}^⊕`, `a_i^⊕` and
/// `a_{i+1}^⊕`").
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct Sums {
    /// `a_{i-1}^⊕` — the prefix excluding this processor (`ω` at `P_1`).
    pub prev: u64,
    /// `a_i^⊕` — the prefix including this processor.
    pub mine: u64,
    /// `a_{i+1}^⊕` — the next processor's prefix (`None` at `P_p`).
    pub next: Option<u64>,
}

/// Cycles consumed by [`partial_sums_in`] on an `MCB(p, k)`.
pub fn partial_sums_cycles(p: usize, k: usize) -> u64 {
    let levels = tree_levels(p);
    let mut c = 0u64;
    for l in 0..levels {
        c += 2 * level_cycles(p, k, l) as u64; // bottom-up + top-down
    }
    c + p.div_ceil(k) as u64 // neighbour exchange
}

/// Cycles consumed by [`total_in`].
pub fn total_cycles(p: usize, k: usize) -> u64 {
    let levels = tree_levels(p);
    let mut c = 0u64;
    for l in 0..levels {
        c += level_cycles(p, k, l) as u64;
    }
    c + 1 // root broadcast
}

/// Number of tree levels above the leaves (`⌈log₂ p⌉`).
pub(crate) fn tree_levels(p: usize) -> u32 {
    debug_assert!(p >= 1);
    usize::BITS - (p - 1).leading_zeros()
}

/// Cycles for the level-`l` step: one slot per father at level `l+1`,
/// scheduled `k` per cycle.
pub(crate) fn level_cycles(p: usize, k: usize, l: u32) -> usize {
    let fathers = p.div_ceil(1usize << (l + 1));
    fathers.div_ceil(k)
}

/// Run Partial-Sums as a lock-step subroutine; all `p` processors must call
/// this at the same cycle with identical `op`, `enc`, `dec`.
///
/// `enc`/`dec` embed `u64` sums into the run's message type.
pub fn partial_sums_in<M, E, D>(
    ctx: &mut ProcCtx<'_, M>,
    value: u64,
    op: Op,
    enc: &E,
    dec: &D,
) -> Sums
where
    M: Clone + Send + Sync + MsgWidth,
    E: Fn(u64) -> M,
    D: Fn(M) -> u64,
{
    let p = ctx.p();
    let k = ctx.k();
    let i = ctx.id().index();
    let levels = tree_levels(p);
    // Label the sweeps unless a caller already owns the phase.
    let label = ctx.phase_label().is_empty();

    // subtree[l] = combined value of my node at level l (I host node
    // (l, i / 2^l) whenever 2^l divides i).
    let mut subtree = vec![op.identity(); levels as usize + 1];
    subtree[0] = value;

    // ---- bottom-up ----
    if label {
        ctx.phase("ps:up");
    }
    for l in 0..levels {
        let span = 1usize << (l + 1);
        let half = 1usize << l;
        let cycles = level_cycles(p, k, l);
        let is_right_son = i % span == half;
        let is_father = i % span == 0;
        for t in 0..cycles {
            let mut write = None;
            let mut read = None;
            if is_right_son {
                let j = i / span; // father index at level l+1
                if j / k == t {
                    write = Some((ChanId::from_index(j % k), enc(subtree[l as usize])));
                }
            }
            if is_father {
                let j = i / span;
                if j / k == t {
                    read = Some(ChanId::from_index(j % k));
                }
            }
            let got = ctx.cycle(write, read);
            if is_father && i / span / k == t {
                let l_val = subtree[l as usize];
                subtree[l as usize + 1] = match got {
                    Some(m) => op.apply(l_val, dec(m)),
                    None => l_val, // right son absent (ragged tree)
                };
            }
        }
    }

    // ---- top-down ----
    // f[l] = prefix of everything left of my node at level l.
    if label {
        ctx.phase("ps:down");
    }
    let mut f = op.identity(); // at the root (only proc 0 hosts it)
    for l in (0..levels).rev() {
        let span = 1usize << (l + 1);
        let half = 1usize << l;
        let cycles = level_cycles(p, k, l);
        let is_right_son = i % span == half;
        let is_father = i % span == 0;
        for t in 0..cycles {
            let mut write = None;
            let mut read = None;
            if is_father {
                let j = i / span;
                if j / k == t && i + half < p {
                    // F ⊕ L to the right son (L = my level-l subtree value).
                    write = Some((
                        ChanId::from_index(j % k),
                        enc(op.apply(f, subtree[l as usize])),
                    ));
                }
            }
            if is_right_son {
                let j = i / span;
                if j / k == t {
                    read = Some(ChanId::from_index(j % k));
                }
            }
            let got = ctx.cycle(write, read);
            if is_right_son && i / span / k == t {
                f = dec(got.expect("father always sends to an existing right son"));
            }
            // A father's left son is the father's own processor: f carries
            // down unchanged.
        }
    }

    let prev = f;
    let mine = op.apply(prev, value);

    // ---- neighbour exchange: P_{i+1} sends `mine` to P_i ----
    // Slot s (for s in 0..p-1): P_{s+1} writes channel s mod k in cycle
    // s / k; P_s reads it. (Writing slot i-1 and reading slot i may land in
    // the same cycle: one write + one read, within the port budget.)
    if label {
        ctx.phase("ps:exchange");
    }
    let cycles = p.div_ceil(k);
    let mut next = None;
    for t in 0..cycles {
        let mut write = None;
        let mut read = None;
        if i >= 1 && (i - 1) / k == t {
            write = Some((ChanId::from_index((i - 1) % k), enc(mine)));
        }
        if i + 1 < p && i / k == t {
            read = Some(ChanId::from_index(i % k));
        }
        let got = ctx.cycle(write, read);
        if i + 1 < p && i / k == t {
            next = Some(dec(got.expect("neighbour always sends")));
        }
    }
    if label {
        ctx.phase("");
    }
    Sums { prev, mine, next }
}

/// Compute only the total `a_p^⊕` at **every** processor: the bottom-up
/// phase followed by a single broadcast from the root (the paper's
/// "if only the total sum is of interest" remark).
pub fn total_in<M, E, D>(ctx: &mut ProcCtx<'_, M>, value: u64, op: Op, enc: &E, dec: &D) -> u64
where
    M: Clone + Send + Sync + MsgWidth,
    E: Fn(u64) -> M,
    D: Fn(M) -> u64,
{
    let p = ctx.p();
    let k = ctx.k();
    let i = ctx.id().index();
    let levels = tree_levels(p);
    let label = ctx.phase_label().is_empty();
    if label {
        ctx.phase("ps:total");
    }

    let mut subtree = vec![op.identity(); levels as usize + 1];
    subtree[0] = value;

    for l in 0..levels {
        let span = 1usize << (l + 1);
        let half = 1usize << l;
        let cycles = level_cycles(p, k, l);
        let is_right_son = i % span == half;
        let is_father = i % span == 0;
        for t in 0..cycles {
            let mut write = None;
            let mut read = None;
            if is_right_son && (i / span) / k == t {
                write = Some((ChanId::from_index((i / span) % k), enc(subtree[l as usize])));
            }
            if is_father && (i / span) / k == t {
                read = Some(ChanId::from_index((i / span) % k));
            }
            let got = ctx.cycle(write, read);
            if is_father && (i / span) / k == t {
                let l_val = subtree[l as usize];
                subtree[l as usize + 1] = match got {
                    Some(m) => op.apply(l_val, dec(m)),
                    None => l_val,
                };
            }
        }
    }

    // Root (P_1) broadcasts the total.
    let total_msg = if i == 0 {
        ctx.cycle(
            Some((ChanId(0), enc(subtree[levels as usize]))),
            Some(ChanId(0)),
        )
    } else {
        ctx.read(ChanId(0))
    };
    if label {
        ctx.phase("");
    }
    dec(total_msg.expect("root broadcasts the total"))
}

#[cfg(test)]
mod tests {
    use super::*;
    use mcb_net::Network;

    fn enc(v: u64) -> u64 {
        v
    }
    fn dec(m: u64) -> u64 {
        m
    }

    fn run_partial(p: usize, k: usize, values: Vec<u64>, op: Op) -> (Vec<Sums>, u64, u64) {
        let vals = values.clone();
        let report = Network::new(p, k)
            .run(move |ctx| {
                let v = vals[ctx.id().index()];
                partial_sums_in(ctx, v, op, &enc, &dec)
            })
            .unwrap();
        let cycles = report.metrics.cycles;
        let messages = report.metrics.messages;
        (report.into_results(), cycles, messages)
    }

    fn prefix(values: &[u64], op: Op) -> Vec<u64> {
        let mut acc = op.identity();
        values
            .iter()
            .map(|&v| {
                acc = op.apply(acc, v);
                acc
            })
            .collect()
    }

    #[test]
    fn add_prefixes_various_shapes() {
        for (p, k) in [(1, 1), (2, 1), (4, 2), (7, 3), (8, 8), (13, 4), (16, 4)] {
            let values: Vec<u64> = (0..p as u64).map(|i| i * 3 + 1).collect();
            let expect = prefix(&values, Op::Add);
            let (sums, _, _) = run_partial(p, k, values.clone(), Op::Add);
            for i in 0..p {
                assert_eq!(sums[i].mine, expect[i], "mine at {i}, p={p} k={k}");
                let want_prev = if i == 0 { 0 } else { expect[i - 1] };
                assert_eq!(sums[i].prev, want_prev, "prev at {i}, p={p} k={k}");
                let want_next = if i + 1 < p { Some(expect[i + 1]) } else { None };
                assert_eq!(sums[i].next, want_next, "next at {i}, p={p} k={k}");
            }
        }
    }

    #[test]
    fn max_prefixes() {
        let values = vec![3, 9, 2, 9, 11, 1, 4];
        let expect = prefix(&values, Op::Max);
        let (sums, _, _) = run_partial(7, 2, values, Op::Max);
        for i in 0..7 {
            assert_eq!(sums[i].mine, expect[i]);
        }
    }

    #[test]
    fn cycle_count_matches_formula_and_bound() {
        for (p, k) in [(4, 2), (8, 2), (16, 4), (13, 3), (32, 4)] {
            let values: Vec<u64> = vec![1; p];
            let (_, cycles, messages) = run_partial(p, k, values, Op::Add);
            assert_eq!(cycles, partial_sums_cycles(p, k), "p={p} k={k}");
            // O(p/k + log p) with a small constant.
            let bound =
                4 * (p as u64 / k as u64 + 1) + 4 * (usize::BITS - p.leading_zeros()) as u64;
            assert!(cycles <= bound, "p={p} k={k}: {cycles} > {bound}");
            // O(p) messages: at most 3 per processor (up, down, exchange).
            assert!(messages <= 3 * p as u64, "p={p} k={k}: {messages}");
        }
    }

    #[test]
    fn total_only_fast_path() {
        for (p, k) in [(1, 1), (5, 2), (8, 4), (12, 3)] {
            let values: Vec<u64> = (1..=p as u64).collect();
            let vals = values.clone();
            let report = Network::new(p, k)
                .run(move |ctx| {
                    let v = vals[ctx.id().index()];
                    total_in(ctx, v, Op::Add, &enc, &dec)
                })
                .unwrap();
            let cycles = report.metrics.cycles;
            let totals = report.into_results();
            let want: u64 = values.iter().sum();
            assert!(totals.iter().all(|&t| t == want), "p={p} k={k}");
            assert_eq!(cycles, total_cycles(p, k));
        }
    }

    #[test]
    fn composes_back_to_back() {
        // Two consecutive subroutine calls must stay in lock-step.
        let p = 6;
        let report = Network::new(p, 2)
            .run(|ctx| {
                let v = ctx.id().index() as u64 + 1;
                let s1 = partial_sums_in(ctx, v, Op::Add, &enc, &dec);
                let s2 = partial_sums_in(ctx, s1.mine, Op::Max, &enc, &dec);
                (s1.mine, s2.mine)
            })
            .unwrap();
        let results = report.into_results();
        // s1 prefix sums of 1..=6: 1,3,6,10,15,21; max-prefix of those is
        // monotone: same values.
        let expect: Vec<u64> = vec![1, 3, 6, 10, 15, 21];
        for i in 0..p {
            assert_eq!(results[i], (expect[i], expect[i]));
        }
    }
}
