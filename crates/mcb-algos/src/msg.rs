//! Wire types shared by the distributed algorithms.
//!
//! Every protocol run has a single message type. Most algorithms in this
//! crate use [`Word<K>`]: either a data element (`Key`) or a small control
//! integer (`Ctl`) such as a count, a partial sum, or a processor id. The
//! width accounting keeps the model's O(log β) message-size discipline
//! auditable.

use mcb_net::{bits_for_u64, MsgWidth};

/// Element types the distributed sorts and selection can handle.
///
/// This is a blanket-implemented alias: any ordered, cloneable,
/// thread-shareable type with width accounting qualifies (e.g. `u64` keys,
/// or the `(median, count, source)` entries selection sorts in §8).
pub trait Key: Ord + Clone + Send + Sync + MsgWidth + std::fmt::Debug + 'static {}

impl<T: Ord + Clone + Send + Sync + MsgWidth + std::fmt::Debug + 'static> Key for T {}

/// A broadcast word: one data element or one control integer.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum Word<K> {
    /// A data element in transit.
    Key(K),
    /// A control value (count, id, partial sum…).
    Ctl(u64),
}

impl<K: MsgWidth> MsgWidth for Word<K> {
    fn bits(&self) -> u32 {
        // One tag bit plus the payload.
        1 + match self {
            Word::Key(k) => k.bits(),
            Word::Ctl(v) => bits_for_u64(*v),
        }
    }
}

impl<K> Word<K> {
    /// Unwrap a data element; panics on a control word (a protocol bug,
    /// surfaced by the engine as a reported panic).
    pub fn expect_key(self) -> K {
        match self {
            Word::Key(k) => k,
            Word::Ctl(v) => panic!("protocol error: expected key, got Ctl({v})"),
        }
    }

    /// Unwrap a control value; panics on a data element.
    pub fn expect_ctl(self) -> u64 {
        match self {
            Word::Ctl(v) => v,
            Word::Key(_) => panic!("protocol error: expected Ctl, got key"),
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn widths_include_tag() {
        assert_eq!(Word::<u64>::Ctl(0).bits(), 2);
        assert_eq!(Word::Key(255u64).bits(), 9);
    }

    #[test]
    fn unwrap_helpers() {
        assert_eq!(Word::<u64>::Key(7).expect_key(), 7);
        assert_eq!(Word::<u64>::Ctl(9).expect_ctl(), 9);
    }

    #[test]
    #[should_panic(expected = "expected key")]
    fn expect_key_on_ctl_panics() {
        Word::<u64>::Ctl(1).expect_key();
    }

    #[test]
    #[should_panic(expected = "expected Ctl")]
    fn expect_ctl_on_key_panics() {
        Word::<u64>::Key(1).expect_ctl();
    }
}
