//! Extrema finding — the warm-up problem of the broadcast literature.
//!
//! §1 cites extrema finding as one of the problems studied in the IPBAM
//! single-channel model; in the MCB model it falls out of the Partial-Sums
//! machinery (§7.1) with a `max` operator: `O(p/k + log p)` cycles and
//! `O(p)` messages, no concurrent write needed. Provided both for
//! completeness and as the simplest non-trivial protocol in the library.
//!
//! To also identify *who* holds the extremum, values are packed with their
//! processor index in the low bits before combining — the comparison order
//! is unchanged for distinct values, and ties break toward the
//! higher-indexed processor.

use crate::msg::Word;
use crate::partial_sums::{total_in, Op};
use mcb_net::{Metrics, NetError, Network, ProcCtx};

/// Bits reserved for the processor index when packing `(value, proc)`.
const PROC_BITS: u32 = 16;

/// Result of a network-wide extrema computation.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct Extrema {
    /// The largest value in the network.
    pub max: u64,
    /// A processor holding the maximum (highest index on ties).
    pub argmax: usize,
    /// The smallest value in the network.
    pub min: u64,
    /// A processor holding the minimum (highest index on ties).
    pub argmin: usize,
}

/// Outcome of [`extrema`].
#[derive(Debug, Clone)]
pub struct ExtremaReport {
    /// The extrema, known to every processor.
    pub extrema: Extrema,
    /// Network costs.
    pub metrics: Metrics,
}

fn pack(value: u64, proc: usize) -> u64 {
    assert!(value < 1 << (64 - PROC_BITS), "value too wide to pack");
    (value << PROC_BITS) | proc as u64
}

fn unpack(packed: u64) -> (u64, usize) {
    (
        packed >> PROC_BITS,
        (packed & ((1 << PROC_BITS) - 1)) as usize,
    )
}

/// Find max and min of one value per processor on an `MCB(p, k)`.
/// Values must fit in 48 bits (the packing headroom).
pub fn extrema(k: usize, values: Vec<u64>) -> Result<ExtremaReport, NetError> {
    let p = values.len();
    let report = Network::new(p, k).run(move |ctx| {
        let v = values[ctx.id().index()];
        extrema_in(ctx, v)
    })?;
    let metrics = report.metrics.clone();
    let extrema = report
        .into_results()
        .into_iter()
        .next()
        .expect("p >= 1 processors");
    Ok(ExtremaReport { extrema, metrics })
}

/// Extrema as a lock-step subroutine; every processor learns the result.
pub fn extrema_in(ctx: &mut ProcCtx<'_, Word<u64>>, value: u64) -> Extrema {
    let me = ctx.id().index();
    let enc = |v: u64| Word::Ctl(v);
    let dec = |m: Word<u64>| m.expect_ctl();
    let max_packed = total_in(ctx, pack(value, me), Op::Max, &enc, &dec);
    // min via max of the complement (packing preserved).
    let flipped = pack(!value & ((1 << (64 - PROC_BITS)) - 1), me);
    let min_packed = total_in(ctx, flipped, Op::Max, &enc, &dec);
    let (max, argmax) = unpack(max_packed);
    let (flipped_min, argmin) = unpack(min_packed);
    let min = !flipped_min & ((1 << (64 - PROC_BITS)) - 1);
    Extrema {
        max,
        argmax,
        min,
        argmin,
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn finds_extrema_and_holders() {
        let values = vec![30u64, 700, 4, 120, 700];
        let report = extrema(2, values).unwrap();
        let e = report.extrema;
        assert_eq!(e.max, 700);
        assert_eq!(e.argmax, 4, "ties break high");
        assert_eq!(e.min, 4);
        assert_eq!(e.argmin, 2);
    }

    #[test]
    fn all_processors_learn_the_same_answer() {
        let values: Vec<u64> = (0..8).map(|i| (i * 37 + 11) % 100).collect();
        let vals = values.clone();
        let report = Network::new(8, 4)
            .run(move |ctx| extrema_in(ctx, vals[ctx.id().index()]))
            .unwrap();
        let results = report.into_results();
        assert!(results.windows(2).all(|w| w[0] == w[1]));
        let want_max = *values.iter().max().unwrap();
        let want_min = *values.iter().min().unwrap();
        assert_eq!(results[0].max, want_max);
        assert_eq!(results[0].min, want_min);
    }

    #[test]
    fn costs_are_logarithmic_not_linear_in_values() {
        let values: Vec<u64> = (0..16).map(|i| i * i).collect();
        let report = extrema(4, values).unwrap();
        // Two total-sum rounds: O(p/k + log p) cycles each, O(p) messages.
        assert!(report.metrics.cycles <= 2 * (4 + 4) + 2);
        assert!(report.metrics.messages <= 2 * 16);
    }

    #[test]
    fn single_processor() {
        let report = extrema(1, vec![42]).unwrap();
        assert_eq!(report.extrema.max, 42);
        assert_eq!(report.extrema.min, 42);
        // Only the two root total-broadcasts.
        assert!(report.metrics.messages <= 2);
    }

    #[test]
    fn oversized_values_rejected() {
        // The pack assertion fires inside the protocol; the engine turns
        // it into a reported error rather than a crash.
        let err = extrema(1, vec![1 << 50]).unwrap_err();
        assert!(matches!(err, mcb_net::NetError::ProcPanicked { .. }));
    }
}
