//! Batched multi-tenant programs: many small jobs on one shared machine.
//!
//! The ROADMAP's service regime (`mcb-serve`) packs many independent
//! sort/select jobs into a single MCB instance instead of spinning up one
//! network per request. [`BatchProgram`] is the composition layer that
//! makes this work under the self-heal stack: it wraps a list of
//! [`ColumnsortProgram`]/[`SelectProgram`] parts into one
//! [`HealProgram`], with
//!
//! * **disjoint role ranges** — part `i`'s roles live at a fixed offset,
//!   so each tenant job maps to its own processor group (the epoch layer
//!   deals roles over live processors; sizing `p` to
//!   [`roles`](HealProgram::roles) gives every job its own processors
//!   until crashes force doubling-up);
//! * **round-robin phase interleaving** — one phase of part `i`, then one
//!   of part `i+1`, …, so a long sort cannot starve the selections
//!   batched alongside it (coarse-grained fair scheduling in the
//!   Saukas–Song sense);
//! * **per-tenant phase attribution** — every phase label is prefixed
//!   `"job{i}:"`, so [`RunMonitor`](mcb_net::monitor::RunMonitor)
//!   snapshots and JSONL phase records split costs by tenant for free.
//!
//! Because the composition is itself a [`HealProgram`], a batch run
//! inherits the whole PR 5 robustness story unchanged: wire-level fault
//! detection, census reconfiguration, crash takeover, and the
//! `L + R × (W + C)` cycle bound — now amortized over every job in the
//! batch.
//!
//! [`multi_select`] covers the multiple-selection special case (many
//! ranks against one shared dataset — Nowicki's regular-sampling regime):
//! one [`SelectProgram`] part per rank, each pruning its own mirrored
//! candidate set.

use crate::heal::{ColumnsortProgram, CsState, HealProgram, SelState, SelectProgram};
use crate::msg::{Key, Word};
use mcb_net::NetError;

/// One tenant job inside a [`BatchProgram`].
pub enum BatchPart<K> {
    /// A §5 Columnsort job ([`ColumnsortProgram`]).
    Sort(ColumnsortProgram<K>),
    /// A §8 filtering-selection job ([`SelectProgram`]).
    Select(SelectProgram<K>),
}

/// A finished part's result, in the order the parts were pushed.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum BatchOutput<K> {
    /// Sorted columns (same contract as
    /// [`HealedSort::columns`](crate::heal::HealedSort::columns)).
    Sorted(Vec<Vec<Option<K>>>),
    /// The selected rank element.
    Selected(K),
}

/// Mirrored per-part state inside a [`BatchState`].
#[derive(Clone)]
pub enum PartState<K> {
    /// State of a [`BatchPart::Sort`].
    Sort(CsState<K>),
    /// State of a [`BatchPart::Select`].
    Select(SelState<K>),
}

/// Mirrored state of a [`BatchProgram`]: every part's replica plus the
/// round-robin cursor.
#[derive(Clone)]
pub struct BatchState<K> {
    parts: Vec<PartState<K>>,
    /// Scan origin for the next phase (round-robin fairness): the part
    /// after the one that last ran.
    cur: usize,
}

/// Many independent jobs composed into one [`HealProgram`] — see the
/// [module docs](self).
pub struct BatchProgram<K> {
    parts: Vec<BatchPart<K>>,
    /// `offsets[i]` is the first global role of part `i`.
    offsets: Vec<usize>,
    total_roles: usize,
}

impl<K: Key> BatchPart<K> {
    fn roles(&self) -> usize {
        match self {
            BatchPart::Sort(p) => HealProgram::<K>::roles(p),
            BatchPart::Select(p) => HealProgram::<K>::roles(p),
        }
    }

    fn initial(&self) -> PartState<K> {
        match self {
            BatchPart::Sort(p) => PartState::Sort(p.initial()),
            BatchPart::Select(p) => PartState::Select(p.initial()),
        }
    }

    fn next_phase(&self, state: &PartState<K>) -> Option<String> {
        match (self, state) {
            (BatchPart::Sort(p), PartState::Sort(s)) => p.next_phase(s),
            (BatchPart::Select(p), PartState::Select(s)) => p.next_phase(s),
            _ => panic!("protocol error: batch part/state kind mismatch"),
        }
    }

    fn rounds(&self, state: &PartState<K>, phase: &str) -> Vec<(usize, Word<K>)> {
        match (self, state) {
            (BatchPart::Sort(p), PartState::Sort(s)) => p.rounds(s, phase),
            (BatchPart::Select(p), PartState::Select(s)) => p.rounds(s, phase),
            _ => panic!("protocol error: batch part/state kind mismatch"),
        }
    }

    fn apply(&self, state: &PartState<K>, phase: &str, received: &[Word<K>]) -> PartState<K> {
        match (self, state) {
            (BatchPart::Sort(p), PartState::Sort(s)) => {
                PartState::Sort(p.apply(s, phase, received))
            }
            (BatchPart::Select(p), PartState::Select(s)) => {
                PartState::Select(p.apply(s, phase, received))
            }
            _ => panic!("protocol error: batch part/state kind mismatch"),
        }
    }

    fn max_phase_rounds(&self) -> u64 {
        match self {
            BatchPart::Sort(p) => HealProgram::<K>::max_phase_rounds(p),
            BatchPart::Select(p) => HealProgram::<K>::max_phase_rounds(p),
        }
    }

    fn output(&self, state: &PartState<K>) -> BatchOutput<K> {
        match (self, state) {
            (BatchPart::Sort(p), PartState::Sort(s)) => BatchOutput::Sorted(p.output(s)),
            (BatchPart::Select(p), PartState::Select(s)) => BatchOutput::Selected(p.output(s)),
            _ => panic!("protocol error: batch part/state kind mismatch"),
        }
    }
}

impl<K: Key> BatchProgram<K> {
    /// Compose `parts` (at least one) into a single program. Part `i`
    /// keeps its result slot `i` in the output and its phases the
    /// `"job{i}:"` prefix regardless of completion order.
    pub fn new(parts: Vec<BatchPart<K>>) -> Result<Self, NetError> {
        if parts.is_empty() {
            return Err(NetError::BadConfig("batch needs at least one job".into()));
        }
        let mut offsets = Vec::with_capacity(parts.len());
        let mut total_roles = 0usize;
        for part in &parts {
            offsets.push(total_roles);
            total_roles += part.roles();
        }
        Ok(BatchProgram {
            parts,
            offsets,
            total_roles,
        })
    }

    /// Number of jobs in the batch.
    pub fn part_count(&self) -> usize {
        self.parts.len()
    }

    /// The first global role of part `i` (its processor-group origin when
    /// `p` is sized to [`roles`](HealProgram::roles)).
    pub fn role_offset(&self, i: usize) -> usize {
        self.offsets[i]
    }

    /// The next unfinished part scanning round-robin from `state.cur`,
    /// with its inner phase label. Pure in `state`, so every processor
    /// computes the same schedule.
    fn current(&self, state: &BatchState<K>) -> Option<(usize, String)> {
        (0..self.parts.len()).find_map(|step| {
            let i = (state.cur + step) % self.parts.len();
            self.parts[i]
                .next_phase(&state.parts[i])
                .map(|phase| (i, phase))
        })
    }
}

impl<K: Key> HealProgram<K> for BatchProgram<K> {
    type State = BatchState<K>;
    type Output = Vec<BatchOutput<K>>;

    fn roles(&self) -> usize {
        self.total_roles
    }

    fn initial(&self) -> BatchState<K> {
        BatchState {
            parts: self.parts.iter().map(BatchPart::initial).collect(),
            cur: 0,
        }
    }

    fn next_phase(&self, state: &BatchState<K>) -> Option<String> {
        self.current(state)
            .map(|(i, phase)| format!("job{i}:{phase}"))
    }

    fn rounds(&self, state: &BatchState<K>, _phase: &str) -> Vec<(usize, Word<K>)> {
        let (i, phase) = self
            .current(state)
            .expect("protocol error: rounds past the last phase");
        let off = self.offsets[i];
        self.parts[i]
            .rounds(&state.parts[i], &phase)
            .into_iter()
            .map(|(role, w)| (off + role, w))
            .collect()
    }

    fn apply(&self, state: &BatchState<K>, _phase: &str, received: &[Word<K>]) -> BatchState<K> {
        let (i, phase) = self
            .current(state)
            .expect("protocol error: apply past the last phase");
        let mut next = state.clone();
        next.parts[i] = self.parts[i].apply(&state.parts[i], &phase, received);
        next.cur = (i + 1) % self.parts.len();
        next
    }

    fn max_phase_rounds(&self) -> u64 {
        self.parts
            .iter()
            .map(BatchPart::max_phase_rounds)
            .max()
            .unwrap_or(0)
    }

    fn output(&self, state: &BatchState<K>) -> Vec<BatchOutput<K>> {
        self.parts
            .iter()
            .zip(&state.parts)
            .map(|(p, s)| p.output(s))
            .collect()
    }
}

/// Multiple selection (Nowicki's regular-sampling regime): answer every
/// rank in `ranks` against the one shared dataset `lists`, batched into a
/// single program — one [`SelectProgram`] part per rank, each pruning its
/// own mirrored candidate set. The output is `ranks.len()` values of
/// [`BatchOutput::Selected`], in rank-argument order.
pub fn multi_select<K: Key>(
    lists: Vec<Vec<K>>,
    ranks: &[usize],
) -> Result<BatchProgram<K>, NetError> {
    let parts = ranks
        .iter()
        .map(|&d| Ok(BatchPart::Select(SelectProgram::new(lists.clone(), d)?)))
        .collect::<Result<Vec<_>, NetError>>()?;
    BatchProgram::new(parts)
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::heal::{run_program_offline, SelfHealing};
    use mcb_net::{Backend, ChanId, FaultPlan, ProcId};

    fn cols(m: usize, k: usize, salt: u64) -> Vec<Vec<Option<u64>>> {
        (0..k)
            .map(|c| {
                (0..m)
                    .map(|r| {
                        Some(((c * m + r) as u64 + salt).wrapping_mul(0x9e37_79b9_7f4a_7c15) % 2003)
                    })
                    .collect()
            })
            .collect()
    }

    fn sorted_desc(cols: &[Vec<Option<u64>>]) -> Vec<u64> {
        let mut v: Vec<u64> = cols.iter().flatten().filter_map(|x| *x).collect();
        v.sort_unstable_by(|a, b| b.cmp(a));
        v
    }

    fn mixed_batch(salt: u64) -> (BatchProgram<u64>, Vec<BatchOutput<u64>>) {
        let (m, k0) = (6usize, 2usize);
        let sort_in = cols(m, k0, salt);
        let lists: Vec<Vec<u64>> = vec![vec![5, 1, 9], vec![3 + salt % 7, 7], vec![2, 8, 6, 4]];
        let mut all: Vec<u64> = lists.iter().flatten().copied().collect();
        all.sort_unstable_by(|a, b| b.cmp(a));
        let want = vec![
            BatchOutput::Selected(all[0]),
            BatchOutput::Sorted({
                let mut grid = sorted_desc(&sort_in)
                    .into_iter()
                    .map(Some)
                    .collect::<Vec<_>>();
                grid.resize(m * k0, None);
                grid.chunks(m).map(<[_]>::to_vec).collect()
            }),
            BatchOutput::Selected(all[all.len() / 2]),
        ];
        let prog = BatchProgram::new(vec![
            BatchPart::Select(SelectProgram::new(lists.clone(), 1).unwrap()),
            BatchPart::Sort(ColumnsortProgram::new(m, &sort_in).unwrap()),
            BatchPart::Select(SelectProgram::new(lists, all.len() / 2 + 1).unwrap()),
        ])
        .unwrap();
        (prog, want)
    }

    #[test]
    fn offline_batch_matches_per_job_reference() {
        let (prog, want) = mixed_batch(3);
        let (got, cycles) = run_program_offline(&prog);
        assert_eq!(got, want);
        assert!(cycles > 0);
        // Role ranges are disjoint and ordered: 3 + 2 + 3 roles.
        assert_eq!(HealProgram::<u64>::roles(&prog), 8);
        assert_eq!(prog.role_offset(0), 0);
        assert_eq!(prog.role_offset(1), 3);
        assert_eq!(prog.role_offset(2), 5);
    }

    #[test]
    fn phases_interleave_round_robin_with_job_prefixes() {
        let (prog, _) = mixed_batch(4);
        let mut state = prog.initial();
        let mut labels = Vec::new();
        while let Some(phase) = prog.next_phase(&state) {
            labels.push(phase.clone());
            let rounds = prog.rounds(&state, &phase);
            let received: Vec<Word<u64>> = rounds.into_iter().map(|(_, w)| w).collect();
            state = prog.apply(&state, &phase, &received);
        }
        // The first sweep visits each job once, in order.
        assert!(labels[0].starts_with("job0:sel:"), "{labels:?}");
        assert!(labels[1].starts_with("job1:cs1:"), "{labels:?}");
        assert!(labels[2].starts_with("job2:sel:"), "{labels:?}");
        // Every label is attributed, and every job contributes phases.
        for i in 0..3 {
            let pre = format!("job{i}:");
            assert!(labels.iter().any(|l| l.starts_with(&pre)), "{labels:?}");
        }
    }

    #[test]
    fn healed_batch_survives_channel_death_and_crash() {
        let k = 3usize;
        let (prog, want) = mixed_batch(5);
        let p = HealProgram::<u64>::roles(&prog);
        drop(prog);
        for backend in [Backend::Threaded, Backend::Pooled, Backend::Vector] {
            let plan = FaultPlan::new(p, k)
                .kill_channel(ChanId(1), 4)
                .crash_proc(ProcId(2), 9);
            let (prog, _) = mixed_batch(5);
            let run = SelfHealing::new(plan)
                .backend(backend)
                .run_program(p, k, prog)
                .unwrap();
            assert_eq!(run.output, want, "{backend:?}");
            assert!(!run.epochs.is_empty(), "{backend:?}: faults must heal");
        }
    }

    #[test]
    fn multi_select_answers_every_rank() {
        let lists: Vec<Vec<u64>> = vec![vec![41, 3, 27], vec![88, 14], vec![5, 61, 19, 33]];
        let mut all: Vec<u64> = lists.iter().flatten().copied().collect();
        all.sort_unstable_by(|a, b| b.cmp(a));
        let ranks: Vec<usize> = vec![1, 3, 5, all.len()];
        let prog = multi_select(lists, &ranks).unwrap();
        let (got, _) = run_program_offline(&prog);
        let want: Vec<BatchOutput<u64>> = ranks
            .iter()
            .map(|&d| BatchOutput::Selected(all[d - 1]))
            .collect();
        assert_eq!(got, want);
    }

    #[test]
    fn empty_batch_is_bad_config() {
        let Err(err) = BatchProgram::<u64>::new(Vec::new()) else {
            panic!("empty batch must be rejected");
        };
        assert!(matches!(err, mcb_net::NetError::BadConfig(_)));
    }
}
