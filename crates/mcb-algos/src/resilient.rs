//! Degraded-mode drivers: the §5/§8 algorithms on faulty hardware.
//!
//! [`Resilient`] re-runs Columnsort and filtering selection on a network
//! with a [`FaultPlan`] attached, with every processor's
//! [`ProcCtx`](mcb_net::ProcCtx) switched into resilient mode
//! ([`set_resilient`](mcb_net::ProcCtx::set_resilient)): channel deaths are
//! absorbed by the paper's §2 simulation lemma (the logical schedule is
//! multiplexed onto the `k'` surviving channels with `⌈k/k'⌉` cycle
//! dilation) and transient losses by the planned-notice retransmit
//! protocol. The algorithms themselves are **unchanged** — resilience lives
//! entirely in the context layer, which is the §2 lemma's whole point: any
//! MCB protocol runs on the degraded machine.
//!
//! Cost contract (checked by the `chaos` integration tests): with `k'`
//! surviving channels and `F` distinct planned fault cycles, a protocol
//! that takes `L` cycles fault-free finishes within
//! `⌈k/k'⌉ × (L + F)` cycles ([`lemma_dilation_bound`]) — each logical
//! cycle costs at most `⌈k/k'⌉` physical cycles, and each planned fault
//! cycle spoils (forces a retry of) at most one logical cycle.
//!
//! Crashes are *not* recoverable by this wrapper: a crashed processor's
//! data is gone, and the paper's algorithms assume all inputs survive.
//! Build plans with `crashes = 0` (the [`ChaosOpts`](mcb_net::ChaosOpts)
//! default) for output-preserving runs.

use crate::columnsort::check_shape;
use crate::msg::{Key, Word};
use crate::select::{select_rank_in, MedEntry, PhaseStats};
use crate::sort::{columnsort_net_cycles, columnsort_net_in, ColumnRole};
use mcb_net::{
    Backend, FaultPlan, FaultSummary, Metrics, NetError, Network, ResilientOpts, RunMonitor,
};

/// Worst-case physical-cycle bound for a resilient run of a protocol that
/// takes `logical_cycles` cycles fault-free under `plan` (see the
/// [module docs](self) for the argument).
pub fn lemma_dilation_bound(plan: &FaultPlan, logical_cycles: u64) -> u64 {
    let factor = plan.k().div_ceil(plan.min_live().max(1)) as u64;
    factor * (logical_cycles + plan.fault_cycles() as u64)
}

/// Builder for degraded-mode runs of the paper's algorithms.
///
/// ```
/// use mcb_algos::resilient::Resilient;
/// use mcb_net::{ChanId, FaultPlan};
///
/// // A 4-column sort; channel 2 dies mid-run, channel 0's cycle-3 slot
/// // is dropped. The sorted output is identical to the fault-free run.
/// let m = 12;
/// let cols: Vec<Vec<Option<u64>>> = (0..4)
///     .map(|c| (0..m).map(|r| Some(((c * m + r) as u64 * 37) % 97)).collect())
///     .collect();
/// let plan = FaultPlan::new(4, 4)
///     .kill_channel(ChanId(2), 5)
///     .drop_message(3, ChanId(0));
/// let out = Resilient::new(plan).sort_columns(m, cols).unwrap();
/// let lin: Vec<u64> = out.columns.iter().flatten().map(|x| x.unwrap()).collect();
/// assert!(lin.windows(2).all(|w| w[0] >= w[1]), "descending");
/// assert!(out.metrics.cycles <= out.dilation_bound);
/// ```
#[derive(Debug, Clone)]
pub struct Resilient {
    plan: FaultPlan,
    opts: ResilientOpts,
    backend: Backend,
    monitor: Option<RunMonitor>,
    stall_window: Option<u64>,
}

/// Outcome of [`Resilient::sort_columns`].
#[derive(Debug, Clone)]
pub struct ResilientSort<K> {
    /// The sorted columns (descending in column-major order), one per
    /// processor, dummies at the tail — same contract as
    /// [`columnsort_net_in`].
    pub columns: Vec<Vec<Option<K>>>,
    /// Network costs of the degraded run; `metrics.cycles` is the
    /// *physical* cycle count (the dilated figure).
    pub metrics: Metrics,
    /// The plan's summary (seed and planned-fault counts).
    pub fault_summary: Option<FaultSummary>,
    /// What the same sort costs fault-free
    /// ([`columnsort_net_cycles`]) — the dilation baseline.
    pub fault_free_cycles: u64,
    /// The lemma's worst-case physical-cycle bound
    /// ([`lemma_dilation_bound`]); `metrics.cycles` never exceeds it.
    pub dilation_bound: u64,
}

/// Outcome of [`Resilient::select_rank`].
#[derive(Debug, Clone)]
pub struct ResilientSelect<K> {
    /// The selected element `N[d]`.
    pub value: K,
    /// Per-filtering-phase instrumentation (see
    /// [`PhaseStats`]).
    pub phases: Vec<PhaseStats>,
    /// Network costs of the degraded run (physical cycles).
    pub metrics: Metrics,
    /// The plan's summary (seed and planned-fault counts).
    pub fault_summary: Option<FaultSummary>,
}

impl Resilient {
    /// Degraded-mode runs under `plan`, with the default retry budget and
    /// automatic backend selection.
    pub fn new(plan: FaultPlan) -> Self {
        Resilient {
            plan,
            opts: ResilientOpts::default(),
            backend: Backend::Auto,
            monitor: None,
            stall_window: None,
        }
    }

    /// Replace the retransmission budget (see
    /// [`ResilientOpts::retries`](mcb_net::ResilientOpts)).
    pub fn retries(mut self, retries: u32) -> Self {
        self.opts.retries = retries;
        self
    }

    /// Select the execution backend (default [`Backend::Auto`]); resilient
    /// runs are backend-identical like everything else.
    pub fn backend(mut self, backend: Backend) -> Self {
        self.backend = backend;
        self
    }

    /// Attach a live [`RunMonitor`]: the handle can be snapshotted from
    /// another thread while the degraded run is in flight (see
    /// [`mcb_net::monitor`]).
    pub fn monitor(mut self, mon: &RunMonitor) -> Self {
        self.monitor = Some(mon.clone());
        self
    }

    /// Surface the engine's livelock watchdog
    /// ([`Network::stall_window`]) on the builder: a degraded run in
    /// which `window` consecutive cycles deliver no message and finish
    /// no processor fails with [`NetError::Stalled`] instead of burning
    /// retries forever. `u64::MAX` disables the watchdog.
    pub fn stall_window(mut self, window: u64) -> Self {
        self.stall_window = Some(window);
        self
    }

    /// Sort `cols.len()` columns of padded length `m` (one per processor,
    /// `p = k = cols.len()`, the §5.2 base case) under the fault plan.
    /// The plan must be shaped for `MCB(cols.len(), cols.len())`.
    pub fn sort_columns<K: Key>(
        &self,
        m: usize,
        cols: Vec<Vec<Option<K>>>,
    ) -> Result<ResilientSort<K>, NetError> {
        let k_cols = cols.len();
        check_shape(m, k_cols).map_err(|e| NetError::BadConfig(e.to_string()))?;
        if let Some(bad) = cols.iter().find(|c| c.len() != m) {
            return Err(NetError::BadConfig(format!(
                "column has {} entries, want padded length m = {m}",
                bad.len()
            )));
        }
        let opts = self.opts;
        let input = cols;
        let mut net = Network::new(k_cols, k_cols)
            .backend(self.backend)
            .fault_plan(self.plan.clone());
        if let Some(window) = self.stall_window {
            net = net.stall_window(window);
        }
        if let Some(mon) = &self.monitor {
            net = net.monitor(mon);
        }
        let report = net.run(move |ctx| {
            ctx.set_resilient(Some(opts));
            let me = ctx.id().index();
            let role = Some(ColumnRole {
                col: me,
                data: input[me].clone(),
            });
            columnsort_net_in(
                ctx,
                role,
                m,
                k_cols,
                &|key| Word::Key(key),
                &|msg: Word<K>| msg.expect_key(),
            )
            .expect("shape pre-validated")
            .expect("every processor owns a column")
        })?;
        let fault_free_cycles = columnsort_net_cycles(m, k_cols);
        Ok(ResilientSort {
            metrics: report.metrics.clone(),
            fault_summary: report.fault_summary,
            columns: report.into_results(),
            fault_free_cycles,
            dilation_bound: lemma_dilation_bound(&self.plan, fault_free_cycles),
        })
    }

    /// Select the `d`'th largest element (1-based) of `lists` on a degraded
    /// `MCB(lists.len(), k)` — same contract as
    /// [`select_rank`](crate::select::select_rank). The plan must be shaped
    /// for `MCB(lists.len(), k)`.
    pub fn select_rank<K: Key>(
        &self,
        k: usize,
        lists: Vec<Vec<K>>,
        d: usize,
    ) -> Result<ResilientSelect<K>, NetError> {
        let p = lists.len();
        let n: usize = lists.iter().map(Vec::len).sum();
        if d < 1 || d > n {
            return Err(NetError::BadConfig(format!("rank {d} out of 1..={n}")));
        }
        if lists.iter().any(Vec::is_empty) {
            return Err(NetError::BadConfig("paper model assumes n_i > 0".into()));
        }
        let opts = self.opts;
        let input = lists;
        let mut net = Network::new(p, k)
            .backend(self.backend)
            .fault_plan(self.plan.clone());
        if let Some(window) = self.stall_window {
            net = net.stall_window(window);
        }
        if let Some(mon) = &self.monitor {
            net = net.monitor(mon);
        }
        let report = net.run(move |ctx: &mut mcb_net::ProcCtx<'_, Word<MedEntry<K>>>| {
            ctx.set_resilient(Some(opts));
            let mine = input[ctx.id().index()].clone();
            select_rank_in(ctx, mine, d as u64)
        })?;
        let metrics = report.metrics.clone();
        let fault_summary = report.fault_summary;
        let (value, phases) = report
            .into_results()
            .into_iter()
            .next()
            .expect("p >= 1 processors");
        Ok(ResilientSelect {
            value,
            phases,
            metrics,
            fault_summary,
        })
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use mcb_net::ChanId;

    fn cols(m: usize, k: usize) -> Vec<Vec<Option<u64>>> {
        (0..k)
            .map(|c| {
                (0..m)
                    .map(|r| Some(((c * m + r) as u64).wrapping_mul(2654435761) % 9973))
                    .collect()
            })
            .collect()
    }

    #[test]
    fn empty_plan_matches_fault_free_cost() {
        let (m, k) = (12, 4);
        let out = Resilient::new(FaultPlan::new(k, k))
            .sort_columns(m, cols(m, k))
            .unwrap();
        assert_eq!(out.metrics.cycles, out.fault_free_cycles);
        assert!(out.metrics.faults.is_empty());
        let lin: Vec<u64> = out.columns.iter().flatten().map(|x| x.unwrap()).collect();
        assert!(lin.windows(2).all(|w| w[0] >= w[1]));
    }

    #[test]
    fn survives_channel_death_within_lemma_bound() {
        let (m, k) = (12, 4);
        let plan = FaultPlan::new(k, k).kill_channel(ChanId(1), 0);
        let out = Resilient::new(plan).sort_columns(m, cols(m, k)).unwrap();
        let lin: Vec<u64> = out.columns.iter().flatten().map(|x| x.unwrap()).collect();
        assert!(lin.windows(2).all(|w| w[0] >= w[1]), "unsorted: {lin:?}");
        // k' = 3 of 4 channels from cycle 0: dilation <= ceil(4/3) * (L + 1).
        assert!(
            out.metrics.cycles <= out.dilation_bound,
            "{} > {}",
            out.metrics.cycles,
            out.dilation_bound
        );
        assert!(out.metrics.cycles > out.fault_free_cycles, "must dilate");
    }

    #[test]
    fn exhausted_retries_escalate() {
        let (m, k) = (6, 2);
        // A drop in the very first window with a zero retry budget.
        let plan = FaultPlan::new(k, k).drop_message(0, ChanId(0));
        let err = Resilient::new(plan)
            .retries(0)
            .sort_columns(m, cols(m, k))
            .unwrap_err();
        assert!(matches!(err, NetError::Unrecoverable { .. }), "got {err:?}");
    }

    #[test]
    fn stalled_run_surfaces_stalled_not_livelock() {
        let (m, k) = (6, 2);
        // Every channel's slot is dropped for far longer than the run
        // could ever need, and the retry budget is effectively unbounded:
        // without a watchdog this grinds through retries for the whole
        // horizon. With `stall_window` set on the builder the engine
        // notices that no message has been delivered for `window`
        // consecutive cycles and fails typed instead of livelocking.
        let mut plan = FaultPlan::new(k, k);
        for cycle in 0..512 {
            for chan in 0..k as u32 {
                plan = plan.drop_message(cycle, ChanId(chan));
            }
        }
        let err = Resilient::new(plan)
            .retries(100_000)
            .stall_window(8)
            .sort_columns(m, cols(m, k))
            .unwrap_err();
        assert!(matches!(err, NetError::Stalled { .. }), "got {err:?}");
    }

    #[test]
    fn shape_errors_surface_as_bad_config() {
        let plan = FaultPlan::new(4, 4);
        // m = 8 < k(k-1) = 12.
        let err = Resilient::new(plan)
            .sort_columns(8, cols(8, 4))
            .unwrap_err();
        assert!(matches!(err, NetError::BadConfig(_)));
    }
}
