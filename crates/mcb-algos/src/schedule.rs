//! Collision-free broadcast schedules for the Columnsort transformations.
//!
//! §5.2 of the paper gives a closed-form schedule for the transpose phase
//! ("during cycle j, processor P_i sends the element in position
//! (i + j mod m) + 1 …") and asserts "similar schemes can be devised for
//! phases 4, 6 and 8". This module devises them *generically*: any
//! transformation is a permutation of matrix positions, which induces a
//! bipartite multigraph between source and destination columns; a proper
//! **edge coloring** of that graph (König's theorem: Δ colors suffice for
//! bipartite graphs) is exactly a collision-free schedule of Δ cycles in
//! which every column sends at most one element and reads at most one
//! channel per cycle.
//!
//! Since each column holds `m` elements and receives `m` elements, the
//! degree is at most `m` and every transformation runs in at most `m`
//! cycles with at most `m·k` messages — matching the paper's `O(m)` cycles
//! and `O(mk)` messages per phase. Elements whose source and destination
//! column coincide become *local moves* and cost nothing (the paper's
//! observation that the wrapped elements of phase 6/8 "need not be shifted
//! at all" falls out as the special case where shift targets stay in
//! column).
//!
//! The schedule is a pure function of `(transform, m, k)`, so every
//! processor computes it locally (free in the cost model) and the whole
//! network stays in lock-step without coordination messages.

use crate::columnsort::Transform;

/// What a column owner does in one cycle of a transformation.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct SendTask {
    /// Row of the owner's (source) column to broadcast.
    pub src_row: usize,
}

/// What a column owner reads in one cycle of a transformation.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct RecvTask {
    /// Which column's channel to read.
    pub from_col: usize,
    /// Row of the (destination) column where the element lands.
    pub dst_row: usize,
}

/// A complete collision-free schedule for one transformation on an
/// `m × k` matrix distributed one column per processor.
#[derive(Debug, Clone)]
pub struct TransformSchedule {
    cycles: usize,
    /// `send[cycle][col]`
    send: Vec<Vec<Option<SendTask>>>,
    /// `recv[cycle][col]`
    recv: Vec<Vec<Option<RecvTask>>>,
    /// `(src_row, dst_row)` pairs that stay within each column.
    local: Vec<Vec<(usize, usize)>>,
}

impl TransformSchedule {
    /// Build the schedule for `transform` on an `m × k` matrix.
    pub fn new(transform: Transform, m: usize, k: usize) -> Self {
        let perm = transform.permutation(m, k);
        Self::from_permutation(&perm, m, k)
    }

    /// Build a schedule for an arbitrary position permutation
    /// (column-major, `perm[src] = dst`).
    pub fn from_permutation(perm: &[usize], m: usize, k: usize) -> Self {
        assert_eq!(perm.len(), m * k);
        let mut local = vec![Vec::new(); k];
        // Cross-column edges: (src_col, dst_col) with (src_row, dst_row).
        let mut edges: Vec<(usize, usize)> = Vec::new();
        let mut payloads: Vec<(usize, usize)> = Vec::new();
        for (q, &t) in perm.iter().enumerate() {
            let (sc, sr) = (q / m, q % m);
            let (dc, dr) = (t / m, t % m);
            if sc == dc {
                local[sc].push((sr, dr));
            } else {
                edges.push((sc, dc));
                payloads.push((sr, dr));
            }
        }
        let colors = edge_color_bipartite(k, &edges);
        let cycles = colors.iter().copied().max().map_or(0, |c| c + 1);
        let mut send = vec![vec![None; k]; cycles];
        let mut recv = vec![vec![None; k]; cycles];
        for (i, &(sc, dc)) in edges.iter().enumerate() {
            let (sr, dr) = payloads[i];
            let c = colors[i];
            debug_assert!(send[c][sc].is_none(), "writer conflict");
            debug_assert!(recv[c][dc].is_none(), "reader conflict");
            send[c][sc] = Some(SendTask { src_row: sr });
            recv[c][dc] = Some(RecvTask {
                from_col: sc,
                dst_row: dr,
            });
        }
        TransformSchedule {
            cycles,
            send,
            recv,
            local,
        }
    }

    /// Number of communication cycles (`<= m`).
    pub fn cycles(&self) -> usize {
        self.cycles
    }

    /// The broadcast of column `col` in `cycle`, if any.
    pub fn send_task(&self, cycle: usize, col: usize) -> Option<SendTask> {
        self.send[cycle][col]
    }

    /// The read of column `col` in `cycle`, if any.
    pub fn recv_task(&self, cycle: usize, col: usize) -> Option<RecvTask> {
        self.recv[cycle][col]
    }

    /// `(src_row, dst_row)` moves internal to column `col`.
    pub fn local_moves(&self, col: usize) -> &[(usize, usize)] {
        &self.local[col]
    }

    /// The paper's closed-form transpose schedule (§5.2): "during cycle j,
    /// processor `P_i` sends the element in position `((i+j) mod m) + 1` in
    /// its column, and reads channel `[(i − (j mod k) − 2) mod k] + 1`".
    ///
    /// Zero-based: in cycle `j`, column `x` broadcasts its row
    /// `(x + j) mod m` and reads the channel of column `(x − j) mod k`;
    /// with `k | m` the element broadcast by column `x` lands in column
    /// `(x + j) mod k` at row `(x·m + (x+j) mod m) div k`. Exactly `m`
    /// cycles and `m·k` messages (self-deliveries included, unlike the
    /// edge-colored schedule which turns them into free local moves).
    ///
    /// Kept as an independent implementation to cross-check the generic
    /// scheduler; requires `k | m`.
    pub fn paper_transpose(m: usize, k: usize) -> Self {
        assert!(
            m > 0 && k > 0 && m.is_multiple_of(k),
            "paper schedule needs k | m"
        );
        let mut send = vec![vec![None; k]; m];
        let mut recv = vec![vec![None; k]; m];
        for j in 0..m {
            for x in 0..k {
                let src_row = (x + j) % m;
                send[j][x] = Some(SendTask { src_row });
                // Destination of (x, src_row): row-major rank q = x*m +
                // src_row lands at column q mod k, row q div k.
                let q = x * m + src_row;
                let (dc, dr) = (q % k, q / k);
                debug_assert_eq!(dc, (x + j) % k);
                debug_assert!(recv[j][dc].is_none(), "reader conflict");
                recv[j][dc] = Some(RecvTask {
                    from_col: x,
                    dst_row: dr,
                });
            }
        }
        TransformSchedule {
            cycles: m,
            send,
            recv,
            local: vec![Vec::new(); k],
        }
    }

    /// Total cross-column messages (assuming no dummy suppression).
    pub fn message_count(&self) -> usize {
        self.send.iter().flatten().filter(|s| s.is_some()).count()
    }
}

/// Proper edge coloring of a bipartite multigraph with `k` vertices on each
/// side; returns one color per edge, using at most Δ colors (König).
///
/// Classic augmenting ("Kempe chain") algorithm: to color edge `(u, v)`,
/// take a color `a` free at `u` and `b` free at `v`; if they differ, flip
/// the alternating a/b chain starting at `u` so that `b` becomes free at
/// `u` too.
pub(crate) fn edge_color_bipartite(k: usize, edges: &[(usize, usize)]) -> Vec<usize> {
    let mut deg_u = vec![0usize; k];
    let mut deg_v = vec![0usize; k];
    for &(u, v) in edges {
        deg_u[u] += 1;
        deg_v[v] += 1;
    }
    let delta = deg_u.iter().chain(deg_v.iter()).copied().max().unwrap_or(0);
    const NONE: usize = usize::MAX;
    // ucol[u][c] / vcol[v][c]: edge using color c at that endpoint.
    let mut ucol = vec![vec![NONE; delta]; k];
    let mut vcol = vec![vec![NONE; delta]; k];
    let mut color = vec![NONE; edges.len()];

    for (ei, &(u, v)) in edges.iter().enumerate() {
        let a = (0..delta)
            .find(|&c| ucol[u][c] == NONE)
            .expect("degree bound guarantees a free color at u");
        let b = (0..delta)
            .find(|&c| vcol[v][c] == NONE)
            .expect("degree bound guarantees a free color at v");
        let chosen = if a == b {
            a
        } else {
            // Walk the alternating a/b chain starting at u with a b-edge,
            // collect it, then flip every edge's color. The chain is a
            // simple path (one edge per color per endpoint) that cannot
            // re-enter u (a is free there) nor end at v in a way that
            // occupies b, so afterwards b is free at both u and v.
            let mut chain: Vec<(usize, usize)> = Vec::new();
            let mut on_u_side = true;
            let mut vertex = u;
            let mut want = b;
            loop {
                let table = if on_u_side { &ucol } else { &vcol };
                let e = table[vertex][want];
                if e == NONE {
                    break;
                }
                chain.push((e, want));
                let (eu, ev) = edges[e];
                vertex = if on_u_side { ev } else { eu };
                on_u_side = !on_u_side;
                want = if want == b { a } else { b };
            }
            for &(e, c) in &chain {
                let (eu, ev) = edges[e];
                ucol[eu][c] = NONE;
                vcol[ev][c] = NONE;
            }
            for &(e, c) in &chain {
                let nc = if c == b { a } else { b };
                let (eu, ev) = edges[e];
                debug_assert!(ucol[eu][nc] == NONE && vcol[ev][nc] == NONE);
                ucol[eu][nc] = e;
                vcol[ev][nc] = e;
                color[e] = nc;
            }
            b
        };
        ucol[u][chosen] = ei;
        vcol[v][chosen] = ei;
        color[ei] = chosen;
    }
    color
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::columnsort::{Matrix, ALL_TRANSFORMS};

    /// Apply a schedule "by wire": simulate what the distributed protocol
    /// does, purely in memory, and compare against the pure transform.
    fn apply_schedule(sched: &TransformSchedule, input: &Matrix<u64>) -> Matrix<u64> {
        let m = input.rows();
        let k = input.cols();
        let mut out = vec![vec![u64::MAX; m]; k];
        for col in 0..k {
            for &(sr, dr) in sched.local_moves(col) {
                out[col][dr] = *input.get(col, sr);
            }
        }
        for cycle in 0..sched.cycles() {
            // "channels": value broadcast by each column this cycle.
            let wire: Vec<Option<u64>> = (0..k)
                .map(|c| sched.send_task(cycle, c).map(|t| *input.get(c, t.src_row)))
                .collect();
            for c in 0..k {
                if let Some(r) = sched.recv_task(cycle, c) {
                    out[c][r.dst_row] = wire[r.from_col].expect("sender scheduled");
                }
            }
        }
        Matrix::from_columns(out)
    }

    #[test]
    fn schedules_realize_all_transforms() {
        for tf in ALL_TRANSFORMS {
            for (m, k) in [(4, 2), (12, 4), (6, 3), (20, 4), (56, 8), (5, 1)] {
                let input =
                    Matrix::from_linear((0..(m * k) as u64).map(|i| i * 3 + 1).collect(), m);
                let sched = TransformSchedule::new(tf, m, k);
                let got = apply_schedule(&sched, &input);
                let want = tf.apply(&input);
                assert_eq!(got, want, "{tf:?} m={m} k={k}");
            }
        }
    }

    #[test]
    fn schedules_fit_in_m_cycles() {
        for tf in ALL_TRANSFORMS {
            for (m, k) in [(12, 4), (24, 4), (56, 8), (30, 5)] {
                let sched = TransformSchedule::new(tf, m, k);
                assert!(
                    sched.cycles() <= m,
                    "{tf:?} m={m} k={k}: {} cycles",
                    sched.cycles()
                );
            }
        }
    }

    #[test]
    fn no_port_conflicts_by_construction() {
        // send/recv tables have one slot per (cycle, col), so conflicts
        // would have tripped the debug_asserts; verify counts add up.
        for tf in ALL_TRANSFORMS {
            let (m, k) = (12, 4);
            let sched = TransformSchedule::new(tf, m, k);
            let sends: usize = sched.message_count();
            let recvs: usize = (0..sched.cycles())
                .map(|t| (0..k).filter(|&c| sched.recv_task(t, c).is_some()).count())
                .sum();
            let locals: usize = (0..k).map(|c| sched.local_moves(c).len()).sum();
            assert_eq!(sends, recvs);
            assert_eq!(sends + locals, m * k, "{tf:?}");
        }
    }

    #[test]
    fn shifts_have_local_moves() {
        // Up-shift by m/2 keeps half of each column in place... not in
        // place, but within neighbouring columns; at least the wrapped
        // block of column k->1 is cross-column while intra-column moves
        // exist only when the shift is 0 mod m. With m=4,k=2, shift=2:
        // src col 0 rows 0..2 -> col 0 rows 2..4: local moves exist.
        let sched = TransformSchedule::new(Transform::UpShift, 4, 2);
        assert!(!sched.local_moves(0).is_empty());
        assert!(sched.cycles() <= 4);
    }

    #[test]
    fn single_column_is_all_local() {
        for tf in ALL_TRANSFORMS {
            let sched = TransformSchedule::new(tf, 6, 1);
            assert_eq!(sched.cycles(), 0, "{tf:?}");
            assert_eq!(sched.local_moves(0).len(), 6);
        }
    }

    #[test]
    fn paper_transpose_schedule_matches_generic() {
        for (m, k) in [(4usize, 2usize), (12, 4), (12, 3), (56, 8), (6, 1)] {
            let input = Matrix::from_linear((0..(m * k) as u64).map(|i| i * 11 + 3).collect(), m);
            let paper = TransformSchedule::paper_transpose(m, k);
            assert_eq!(paper.cycles(), m);
            assert_eq!(paper.message_count(), m * k);
            let got = apply_schedule(&paper, &input);
            let want = Transform::Transpose.apply(&input);
            assert_eq!(got, want, "paper schedule wrong at m={m} k={k}");
            // And it agrees with the edge-colored schedule's outcome.
            let generic = TransformSchedule::new(Transform::Transpose, m, k);
            assert_eq!(apply_schedule(&generic, &input), want);
        }
    }

    #[test]
    #[should_panic(expected = "k | m")]
    fn paper_transpose_requires_divisibility() {
        let _ = TransformSchedule::paper_transpose(7, 2);
    }

    #[test]
    fn coloring_is_proper_on_random_permutations() {
        // Use a pseudo-random permutation (not one of the four transforms)
        // to stress the edge-coloring logic.
        let (m, k) = (16, 4);
        let n = m * k;
        let mut perm: Vec<usize> = (0..n).collect();
        // Deterministic shuffle.
        let mut state = 0x9E3779B97F4A7C15u64;
        for i in (1..n).rev() {
            state = state.wrapping_mul(6364136223846793005).wrapping_add(1);
            let j = (state >> 33) as usize % (i + 1);
            perm.swap(i, j);
        }
        let sched = TransformSchedule::from_permutation(&perm, m, k);
        assert!(sched.cycles() <= m);
        let input = Matrix::from_linear((0..n as u64).collect(), m);
        let got = apply_schedule(&sched, &input);
        let want = input.permute(|q| perm[q]);
        assert_eq!(got, want);
    }
}
