//! The paper's sorts as [`StepProtocol`] state machines.
//!
//! The closure drivers in [`sort`](crate::sort) block inside
//! [`ProcCtx::cycle`](mcb_net::ProcCtx::cycle), which ties every logical
//! processor to a suspended call stack. This module turns the two
//! workhorse protocols inside-out as resumable [`StepProtocol`]s so they
//! run on **any** backend — including the struct-of-arrays
//! [`Backend::Vector`] driver, where `p` in the hundreds of thousands is
//! practical:
//!
//! * [`RankSortStep`] — §6.1's single-channel Rank-Sort (census, rank,
//!   deliver), cycle-for-cycle identical to
//!   [`rank_sort_in`](crate::sort::ranksort::rank_sort_in);
//! * [`ColumnsortStep`] — §5.2's networked Columnsort, cycle-for-cycle
//!   identical to [`columnsort_net_in`](crate::sort::columnsort_net_in).
//!   Non-owners return [`Step::idle_for`] for whole transformation phases,
//!   so the vector backend drops them from its active set and the run
//!   costs time proportional to the `k_cols` *owners'* work — the
//!   "`k` owners work, `p − k` processors idle" shape that makes
//!   `p = 10^5` feasible.
//!
//! Both machines produce byte-identical [`Metrics`](mcb_net::Metrics)
//! (cycles, messages, bits, phase tables) to their closure counterparts;
//! the tests below pin that identity across all three backends.

use std::collections::VecDeque;
use std::marker::PhantomData;
use std::sync::Arc;

use crate::columnsort::{check_shape, Phase, PHASES};
use crate::local::sort_desc;
use crate::msg::{Key, Word};
use crate::schedule::TransformSchedule;
use crate::sort::grouped::SortReport;
use mcb_net::{
    Backend, ChanId, MsgWidth, NetError, Network, ProcId, RunReport, Step, StepEnv, StepProtocol,
};

// ---------------------------------------------------------------------------
// Rank-Sort
// ---------------------------------------------------------------------------

/// Where the Rank-Sort machine is in its three-round schedule. Each variant
/// stores the cycle whose read result the *next* [`step`] call consumes.
///
/// [`step`]: StepProtocol::step
#[derive(Debug)]
enum RsState {
    /// Before the first cycle.
    Start,
    /// Census round: cycle `turn` (of `p`) is in flight.
    Census { turn: usize },
    /// Ranking round: cycle `t` (of `n`) is in flight.
    Rank { t: u64 },
    /// Delivery round: cycle `t` (of `n`) is in flight.
    Deliver { t: u64 },
}

/// §6.1's Rank-Sort as a state machine on one shared channel.
///
/// Drives the same three rounds as
/// [`rank_sort_in`](crate::sort::ranksort::rank_sort_in) — one census cycle
/// per processor, then `n` ranking broadcasts, then `n` rank-ordered
/// deliveries — with identical cycle positions, message contents, and phase
/// labels (`rs:census`, `rs:rank`, `rs:deliver`). Requires distinct keys,
/// like the closure form.
pub struct RankSortStep<K> {
    chan: ChanId,
    mine: Vec<K>,
    state: RsState,
    /// Census results: every processor's cardinality.
    counts: Vec<u64>,
    /// Global index of this processor's first element / first target slot.
    my_start: u64,
    /// One-past-the-end of this processor's target segment.
    target_hi: u64,
    /// Total element count, known after the census.
    n: u64,
    /// Number of strictly larger keys seen, per own element.
    rank_above: Vec<u64>,
    /// `(rank, local index)` send queue, ascending by rank.
    by_rank: VecDeque<(u64, usize)>,
    out: Vec<K>,
}

impl<K: Key> RankSortStep<K> {
    /// Machine for a processor holding `mine`, broadcasting on `chan`.
    pub fn new(chan: ChanId, mine: Vec<K>) -> Self {
        let held = mine.len();
        RankSortStep {
            chan,
            mine,
            state: RsState::Start,
            counts: Vec::new(),
            my_start: 0,
            target_hi: 0,
            n: 0,
            rank_above: vec![0; held],
            by_rank: VecDeque::new(),
            out: Vec::new(),
        }
    }

    fn census_cycle(&self, env: &StepEnv, turn: usize) -> Step<Word<K>, Vec<K>> {
        let write =
            (turn == env.id.index()).then(|| (self.chan, Word::Ctl(self.mine.len() as u64)));
        Step::Yield {
            write,
            read: Some(self.chan),
        }
    }

    fn rank_cycle(&self, t: u64) -> Step<Word<K>, Vec<K>> {
        let idx = t.wrapping_sub(self.my_start) as usize;
        let write = (t >= self.my_start && idx < self.mine.len())
            .then(|| (self.chan, Word::Key(self.mine[idx].clone())));
        Step::Yield {
            write,
            read: Some(self.chan),
        }
    }

    fn deliver_cycle(&mut self, t: u64) -> Step<Word<K>, Vec<K>> {
        let write = match self.by_rank.front() {
            Some(&(r, j)) if r == t => {
                self.by_rank.pop_front();
                Some((self.chan, Word::Key(self.mine[j].clone())))
            }
            _ => None,
        };
        let want = t >= self.my_start && t < self.target_hi;
        Step::Yield {
            write,
            read: want.then_some(self.chan),
        }
    }
}

impl<K: Key> StepProtocol<Word<K>> for RankSortStep<K> {
    type Output = Vec<K>;

    fn step(&mut self, env: &StepEnv, input: Option<Word<K>>) -> Step<Word<K>, Vec<K>> {
        match self.state {
            RsState::Start => {
                env.phase("rs:census");
                self.counts = vec![0; env.p];
                self.state = RsState::Census { turn: 0 };
                self.census_cycle(env, 0)
            }
            RsState::Census { turn } => {
                self.counts[turn] = input
                    .expect("every processor reports its count")
                    .expect_ctl();
                if turn + 1 < env.p {
                    self.state = RsState::Census { turn: turn + 1 };
                    return self.census_cycle(env, turn + 1);
                }
                let i = env.id.index();
                let mut acc = 0u64;
                for (j, &c) in self.counts.iter().enumerate() {
                    if j == i {
                        self.my_start = acc;
                    }
                    acc += c;
                    if j == i {
                        self.target_hi = acc;
                    }
                }
                self.n = acc;
                env.phase("rs:rank");
                self.state = RsState::Rank { t: 0 };
                self.rank_cycle(0)
            }
            RsState::Rank { t } => {
                let heard = input.expect("every slot carries an element").expect_key();
                for (j, x) in self.mine.iter().enumerate() {
                    if heard > *x {
                        self.rank_above[j] += 1;
                    }
                }
                if t + 1 < self.n {
                    self.state = RsState::Rank { t: t + 1 };
                    return self.rank_cycle(t + 1);
                }
                let mut by_rank: Vec<(u64, usize)> = self
                    .rank_above
                    .iter()
                    .enumerate()
                    .map(|(j, &r)| (r, j))
                    .collect();
                by_rank.sort_unstable();
                self.by_rank = by_rank.into();
                self.out = Vec::with_capacity((self.target_hi - self.my_start) as usize);
                env.phase("rs:deliver");
                self.state = RsState::Deliver { t: 0 };
                self.deliver_cycle(0)
            }
            RsState::Deliver { t } => {
                if t >= self.my_start && t < self.target_hi {
                    self.out.push(
                        input
                            .expect("distinct keys give a collision-free rank schedule")
                            .expect_key(),
                    );
                }
                if t + 1 < self.n {
                    self.state = RsState::Deliver { t: t + 1 };
                    return self.deliver_cycle(t + 1);
                }
                Step::Done(std::mem::take(&mut self.out))
            }
        }
    }
}

/// Sort `lists` (arbitrary distribution, distinct keys) on an `MCB(p, 1)`
/// using [`RankSortStep`] on the chosen `backend`.
///
/// The step-machine twin of
/// [`rank_sort_single_channel`](crate::sort::rank_sort_single_channel):
/// identical results and [`Metrics`](mcb_net::Metrics) on every backend.
pub fn rank_sort_steps<K: Key>(
    lists: Vec<Vec<K>>,
    backend: Backend,
) -> Result<SortReport<K>, NetError> {
    let p = lists.len();
    if p == 0 || lists.iter().any(Vec::is_empty) {
        return Err(NetError::BadConfig(
            "need p >= 1 nonempty lists (paper model assumes n_i > 0)".into(),
        ));
    }
    let report = Network::new(p, 1)
        .backend(backend)
        .run_steps(|id: ProcId| RankSortStep::new(ChanId(0), lists[id.index()].clone()))?;
    let metrics = report.metrics.clone();
    Ok(SortReport {
        lists: report.into_results(),
        metrics,
    })
}

// ---------------------------------------------------------------------------
// Columnsort
// ---------------------------------------------------------------------------

/// Phase labels, shared verbatim with the closure driver (Figure 1).
const PHASE_NAMES: [&str; 8] = [
    "cs1:sort",
    "cs2:transpose",
    "cs3:sort",
    "cs4:undiagonalize",
    "cs5:sort",
    "cs6:upshift",
    "cs7:sort-rest",
    "cs8:downshift",
];

/// Precompute the four transformation schedules of an `m × k_cols`
/// Columnsort, in [`PHASES`] order, for sharing across all `p` machines.
///
/// A [`TransformSchedule`] is a pure function of `(transform, m, k_cols)`
/// but not a cheap one (it edge-colors an `m·k_cols`-edge bipartite
/// multigraph), so at `p = 10^5` every processor computing its own copy
/// would dwarf the simulation itself. [`columnsort_steps`] builds this
/// once and hands every machine an [`Arc`].
pub fn columnsort_schedules(m: usize, k_cols: usize) -> Arc<Vec<TransformSchedule>> {
    Arc::new(
        PHASES
            .iter()
            .filter_map(|ph| match ph {
                Phase::Apply(tf) => Some(TransformSchedule::new(*tf, m, k_cols)),
                _ => None,
            })
            .collect(),
    )
}

/// An owner's in-flight transformation phase.
struct ApplyState<K> {
    /// Index into the shared schedule list (apply phases in order).
    sched: usize,
    /// Destination column being assembled (local moves pre-applied).
    out: Vec<Option<K>>,
    /// Cycle currently in flight (its read result arrives next step).
    t: usize,
}

/// §5.2's networked Columnsort as a state machine.
///
/// The step-machine twin of
/// [`columnsort_net_in`](crate::sort::columnsort_net_in): owners follow the
/// same [`TransformSchedule`] cycle-for-cycle (column `c` broadcasts on
/// channel `c`; dummies are never broadcast — an empty channel read
/// reconstructs the dummy), local sorting phases are free, and phase labels
/// match. The difference is what *non-owners* do: instead of spinning one
/// idle cycle at a time they return a single [`Step::idle_for`] per
/// transformation phase, which the vector backend turns into O(1) work.
///
/// Output is the owner's sorted padded column, or `None` for non-owners —
/// exactly the closure driver's return value.
pub struct ColumnsortStep<K, M, E, D> {
    m: usize,
    enc: E,
    dec: D,
    /// Shared transformation schedules (see [`columnsort_schedules`]).
    scheds: Arc<Vec<TransformSchedule>>,
    /// `(column index, padded contents)` for owners; `None` for idlers.
    data: Option<(usize, Vec<Option<K>>)>,
    /// Next entry of [`PHASES`] to process.
    next_phase: usize,
    /// Ordinal of the next `Phase::Apply` (index into `scheds`).
    next_apply: usize,
    apply: Option<ApplyState<K>>,
    _msg: PhantomData<fn() -> M>,
}

impl<K, M, E, D> ColumnsortStep<K, M, E, D>
where
    K: Key,
    M: Clone + Send + Sync + MsgWidth,
    E: Fn(K) -> M,
    D: Fn(M) -> K,
{
    /// Machine for one processor of an `m × k_cols` Columnsort.
    ///
    /// Owners pass `Some((col, data))` with `data.len() == m` (entries of
    /// `None` are padding dummies); every other processor passes `None`.
    /// `scheds` is the shared schedule list from [`columnsort_schedules`]
    /// for the same `(m, k_cols)`. The shape must satisfy §5.1
    /// (`m >= k_cols(k_cols − 1)`, `k_cols | m`) — validated by the
    /// [`columnsort_steps`] driver.
    pub fn new(
        m: usize,
        k_cols: usize,
        scheds: Arc<Vec<TransformSchedule>>,
        data: Option<(usize, Vec<Option<K>>)>,
        enc: E,
        dec: D,
    ) -> Self {
        if let Some((c, col)) = &data {
            assert!(*c < k_cols, "column index out of range");
            assert_eq!(col.len(), m, "column must have padded length m");
        }
        ColumnsortStep {
            m,
            enc,
            dec,
            scheds,
            data,
            next_phase: 0,
            next_apply: 0,
            apply: None,
            _msg: PhantomData,
        }
    }

    /// The yield for the in-flight transformation's cycle `t`.
    fn apply_cycle(&self) -> Step<M, Option<Vec<Option<K>>>> {
        let ap = self.apply.as_ref().expect("apply in flight");
        let sched = &self.scheds[ap.sched];
        let (c, col) = self.data.as_ref().expect("only owners stream cycles");
        let write = sched.send_task(ap.t, *c).and_then(|s| {
            col[s.src_row]
                .clone()
                .map(|key| (ChanId::from_index(*c), (self.enc)(key)))
        });
        let read = sched
            .recv_task(ap.t, *c)
            .map(|r| ChanId::from_index(r.from_col));
        Step::Yield { write, read }
    }
}

impl<K, M, E, D> StepProtocol<M> for ColumnsortStep<K, M, E, D>
where
    K: Key,
    M: Clone + Send + Sync + MsgWidth,
    E: Fn(K) -> M,
    D: Fn(M) -> K,
{
    type Output = Option<Vec<Option<K>>>;

    fn step(&mut self, env: &StepEnv, input: Option<M>) -> Step<M, Self::Output> {
        // Land the cycle in flight, if any (owners only).
        if let Some(ap) = &mut self.apply {
            let sched = &self.scheds[ap.sched];
            let (c, _) = self.data.as_ref().expect("only owners stream cycles");
            if let Some(r) = sched.recv_task(ap.t, *c) {
                // Empty channel = the scheduled sender held a dummy.
                ap.out[r.dst_row] = input.map(&self.dec);
            }
            ap.t += 1;
            if ap.t < sched.cycles() {
                return self.apply_cycle();
            }
            let done = self.apply.take().expect("apply in flight");
            let (_, col) = self.data.as_mut().expect("only owners stream cycles");
            *col = done.out;
            self.next_phase += 1;
        }

        // Advance through phases; local sorts are free (no cycle), so keep
        // going until a cycle, a bulk idle, or the end.
        while self.next_phase < PHASES.len() {
            let pi = self.next_phase;
            env.phase(PHASE_NAMES[pi]);
            match PHASES[pi] {
                Phase::SortColumns => {
                    if let Some((_, col)) = &mut self.data {
                        sort_desc(col);
                    }
                    self.next_phase += 1;
                }
                Phase::SortColumnsExceptFirst => {
                    if let Some((c, col)) = &mut self.data {
                        if *c != 0 {
                            sort_desc(col);
                        }
                    }
                    self.next_phase += 1;
                }
                Phase::Apply(_) => {
                    let si = self.next_apply;
                    self.next_apply += 1;
                    let sched = &self.scheds[si];
                    match &mut self.data {
                        Some((c, col)) => {
                            let mut out: Vec<Option<K>> = vec![None; self.m];
                            for &(sr, dr) in sched.local_moves(*c) {
                                out[dr] = col[sr].clone();
                            }
                            if sched.cycles() == 0 {
                                *col = out;
                                self.next_phase += 1;
                                continue;
                            }
                            self.apply = Some(ApplyState {
                                sched: si,
                                out,
                                t: 0,
                            });
                            return self.apply_cycle();
                        }
                        None => {
                            let cycles = sched.cycles() as u64;
                            self.next_phase += 1;
                            if cycles > 0 {
                                // One bulk idle for the whole phase — the
                                // closure form spins `cycles` empty cycles.
                                return Step::idle_for(cycles);
                            }
                        }
                    }
                }
            }
        }
        Step::Done(self.data.take().map(|(_, col)| col))
    }
}

/// What [`columnsort_steps`] returns: a full [`RunReport`] whose
/// per-processor result is the owned, sorted column (`None` for the
/// idle processors `k_cols..p`), keyed words on the wire.
pub type ColumnsortStepsReport<K> = RunReport<Option<Vec<Option<K>>>, Word<K>>;

/// Run an `m × k_cols` Columnsort on `p >= k_cols` processors and `k_cols`
/// channels using [`ColumnsortStep`] on the chosen `backend`.
///
/// Processor `c < k_cols` owns `cols[c]` (padded length `m`, `None` =
/// dummy); processors `k_cols..p` idle in lock-step. Returns the full
/// [`RunReport`] so callers can compare results *and* metrics against the
/// closure driver. On [`Backend::Vector`], the idlers cost O(1) per
/// transformation phase instead of O(cycles), which is what makes
/// `p = 10^5` practical.
pub fn columnsort_steps<K: Key>(
    p: usize,
    m: usize,
    k_cols: usize,
    cols: Vec<Vec<Option<K>>>,
    backend: Backend,
) -> Result<ColumnsortStepsReport<K>, NetError> {
    check_shape(m, k_cols).map_err(|e| NetError::BadConfig(e.to_string()))?;
    if p < k_cols {
        return Err(NetError::BadConfig(format!(
            "p = {p} < k_cols = {k_cols}: every column needs an owner"
        )));
    }
    if cols.len() != k_cols {
        return Err(NetError::BadConfig(format!(
            "got {} columns, expected k_cols = {k_cols}",
            cols.len()
        )));
    }
    // Schedules are pure functions of (transform, m, k_cols): build the
    // four of them once and share, instead of p × 4 edge colorings.
    let scheds = columnsort_schedules(m, k_cols);
    Network::new(p, k_cols)
        .backend(backend)
        .run_steps(|id: ProcId| {
            let i = id.index();
            let role = (i < k_cols).then(|| (i, cols[i].clone()));
            ColumnsortStep::new(m, k_cols, scheds.clone(), role, Word::Key, Word::expect_key)
        })
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::sort::verify::verify_sorted;
    use crate::sort::{columnsort_net_in, rank_sort_single_channel, ColumnRole};
    use mcb_workloads::{distributions, rng};

    const BACKENDS: [Backend; 3] = [Backend::Threaded, Backend::Pooled, Backend::Vector];

    #[test]
    fn rank_sort_steps_match_closure_on_all_backends() {
        let lists = distributions::random_uneven(5, 43, &mut rng(22));
        let closure = rank_sort_single_channel(lists.lists().to_vec()).unwrap();
        for b in BACKENDS {
            let steps = rank_sort_steps(lists.lists().to_vec(), b).unwrap();
            verify_sorted(lists.lists(), &steps.lists).unwrap();
            assert_eq!(steps.lists, closure.lists, "{b:?}");
            assert_eq!(steps.metrics, closure.metrics, "{b:?}");
        }
    }

    #[test]
    fn rank_sort_steps_reject_empty_lists() {
        assert!(rank_sort_steps(vec![vec![1u64], vec![]], Backend::Vector).is_err());
        assert!(rank_sort_steps::<u64>(vec![], Backend::Vector).is_err());
    }

    /// The closure driver run under the same shape, for metric identity.
    fn closure_columnsort(
        p: usize,
        m: usize,
        k_cols: usize,
        cols: &[Vec<Option<u64>>],
    ) -> RunReport<Option<Vec<Option<u64>>>, Word<u64>> {
        let cols = cols.to_vec();
        Network::new(p, k_cols)
            .run(move |ctx| {
                let i = ctx.id().index();
                let role = (i < k_cols).then(|| ColumnRole {
                    col: i,
                    data: cols[i].clone(),
                });
                columnsort_net_in(ctx, role, m, k_cols, &Word::Key, &Word::expect_key).unwrap()
            })
            .unwrap()
    }

    fn padded_cols(m: usize, k_cols: usize) -> Vec<Vec<Option<u64>>> {
        // Distinct keys with a sprinkling of dummies.
        let mut cols = vec![vec![None; m]; k_cols];
        for (c, col) in cols.iter_mut().enumerate() {
            for (r, slot) in col.iter_mut().enumerate() {
                if (c + r) % 5 != 0 {
                    *slot = Some(((c * m + r) as u64).wrapping_mul(2654435761) % 100_000);
                }
            }
        }
        cols
    }

    #[test]
    fn columnsort_steps_match_closure_with_idlers() {
        // p > k_cols: idlers take the IdleFor path on every backend.
        let (p, m, k_cols) = (7, 12, 3);
        let cols = padded_cols(m, k_cols);
        let want = closure_columnsort(p, m, k_cols, &cols);
        for b in BACKENDS {
            let got = columnsort_steps(p, m, k_cols, cols.clone(), b).unwrap();
            assert_eq!(got.results, want.results, "{b:?}");
            assert_eq!(got.metrics, want.metrics, "{b:?}");
        }
    }

    #[test]
    fn columnsort_steps_sort_descending() {
        let (p, m, k_cols) = (4, 12, 4);
        let cols = padded_cols(m, k_cols);
        let report = columnsort_steps(p, m, k_cols, cols.clone(), Backend::Vector).unwrap();
        let lin: Vec<Option<u64>> = report
            .into_results()
            .into_iter()
            .flatten()
            .flatten()
            .collect();
        let n_real: usize = cols.iter().flatten().filter(|s| s.is_some()).count();
        assert!(lin[..n_real].iter().all(Option::is_some), "reals first");
        assert!(lin[n_real..].iter().all(Option::is_none), "dummies last");
        assert!(lin[..n_real].windows(2).all(|w| w[0] >= w[1]), "descending");
    }

    #[test]
    fn columnsort_steps_single_column_costs_nothing() {
        // k_cols = 1: every transformation is local, zero cycles — the
        // machine must finish without ever yielding (IdleFor(0) is illegal).
        let cols = vec![vec![Some(3u64), Some(9), Some(1), Some(7), Some(5)]];
        for b in BACKENDS {
            let report = columnsort_steps(3, 5, 1, cols.clone(), b).unwrap();
            assert_eq!(report.metrics.messages, 0);
            assert_eq!(report.metrics.cycles, 0);
            let results = report.into_results();
            assert_eq!(
                results[0],
                Some(vec![Some(9), Some(7), Some(5), Some(3), Some(1)])
            );
        }
    }

    #[test]
    fn columnsort_steps_validate_inputs() {
        assert!(columnsort_steps::<u64>(4, 8, 4, vec![vec![None; 8]; 4], Backend::Vector).is_err());
        assert!(
            columnsort_steps::<u64>(2, 12, 3, vec![vec![None; 12]; 3], Backend::Vector).is_err()
        );
        assert!(
            columnsort_steps::<u64>(4, 12, 3, vec![vec![None; 12]; 2], Backend::Vector).is_err()
        );
    }
}
