//! Static schedule emission: the algorithms' broadcast plans as data.
//!
//! Every lock-step protocol in this crate decides *when to write which
//! channel* from parameters alone (plus, for a few algorithms, the input
//! keys) — never from what arrives on the wire mid-protocol. That makes
//! each protocol's communication pattern a pure function we can emit as a
//! [`CheckedSchedule`] and hand to `mcb-check`'s verifier, which proves
//! collision-freedom, read-validity, and the paper's closed-form cycle and
//! message counts **without executing the engine**.
//!
//! The emitters here deliberately mirror the runtime protocols line by
//! line — the same loops, the same `i % span == half` arithmetic — so that
//! a schedule bug in the algorithm is a schedule bug in the emission, and
//! the verifier catches it. Conformance tests (in the workspace root)
//! close the remaining gap by replaying engine traces against these
//! schedules.
//!
//! Three tiers of emitters, by what they need to know:
//!
//! * **Parameter-only** — the schedule depends on `(p, k)` and the
//!   cardinalities `n_i` alone: [`PartialSumsSpec`], [`TotalSpec`],
//!   [`ExtremaSpec`], [`TransformSpec`], [`PermutationSpec`],
//!   [`ColumnsortNetSpec`], [`DirectSortSpec`], [`GroupedSortSpec`],
//!   [`NaiveSelectSpec`].
//! * **Key-determined (omniscient)** — the schedule additionally depends
//!   on the input keys, which the emitter simulates with global knowledge:
//!   [`RankSortSpec`] (phase-2 broadcast order is the rank order) and
//!   [`SelectSpec`] (which processor holds the weighted median, how the
//!   candidate set shrinks).
//! * **Not emitted** — Merge-Sort's replacement-selection streaming and
//!   the recursive virtual-column sort interleave data-dependent
//!   decisions at single-cycle granularity; §9's Shout-Echo baseline
//!   relies on concurrent writes, which the collision-freedom invariant
//!   deliberately rejects. These are covered by engine-level tests only.

use crate::columnsort::{choose_columns, padded_column_length, Phase, Transform, PHASES};
use crate::local::median_desc;
use crate::partial_sums::{level_cycles, partial_sums_cycles, total_cycles, tree_levels};
use crate::schedule::TransformSchedule;
use crate::select::MedEntry;
use crate::sort::columns::columnsort_net_cycles;
use mcb_check::{Bounds, CheckedSchedule, Report, ScheduleBuilder};

/// An algorithm (instance) whose broadcast schedule can be emitted and
/// verified statically.
pub trait StaticSchedule {
    /// Emit the full per-cycle write/read/move plan.
    fn emit(&self) -> CheckedSchedule;

    /// The paper's closed-form cost assertions for this instance.
    fn bounds(&self) -> Bounds;

    /// Emit and verify in one step.
    fn check(&self) -> Report {
        mcb_check::verify(&self.emit(), &self.bounds())
    }
}

/// Exact message count of the Partial-Sums bottom-up sweep: one message
/// per *existing* right son, summed over the levels.
fn right_son_count(p: usize) -> u64 {
    let mut count = 0u64;
    for l in 0..tree_levels(p) {
        let span = 1usize << (l + 1);
        let half = 1usize << l;
        if p > half {
            count += ((p - half - 1) / span) as u64 + 1;
        }
    }
    count
}

// ---------------------------------------------------------------------------
// Partial-Sums (§7.1)
// ---------------------------------------------------------------------------

/// Append the Partial-Sums subroutine's schedule (mirrors
/// `partial_sums_in`: bottom-up sweep, top-down sweep, neighbour exchange).
pub(crate) fn emit_partial_sums(b: &mut ScheduleBuilder, p: usize, k: usize) {
    let levels = tree_levels(p);
    // Bottom-up: right sons send their subtree value to their father.
    for l in 0..levels {
        let span = 1usize << (l + 1);
        let half = 1usize << l;
        for t in 0..level_cycles(p, k, l) {
            b.begin_cycle();
            for i in 0..p {
                let j = i / span;
                if i % span == half && j / k == t {
                    b.write(i, j % k);
                }
                if i % span == 0 && j / k == t {
                    // The father reads even when its right son does not
                    // exist (ragged tree): the empty channel is the signal.
                    if i + half < p {
                        b.read(i, j % k);
                    } else {
                        b.read_maybe_empty(i, j % k);
                    }
                }
            }
        }
    }
    // Top-down: fathers send the left-prefix to their (existing) right son.
    for l in (0..levels).rev() {
        let span = 1usize << (l + 1);
        let half = 1usize << l;
        for t in 0..level_cycles(p, k, l) {
            b.begin_cycle();
            for i in 0..p {
                let j = i / span;
                if i % span == 0 && j / k == t && i + half < p {
                    b.write(i, j % k);
                }
                if i % span == half && j / k == t {
                    // A right son's father always exists and always sends.
                    b.read(i, j % k);
                }
            }
        }
    }
    // Neighbour exchange: slot s carries P_{s+1}'s prefix to P_s.
    for t in 0..p.div_ceil(k) {
        b.begin_cycle();
        for i in 0..p {
            if i >= 1 && (i - 1) / k == t {
                b.write(i, (i - 1) % k);
            }
            if i + 1 < p && i / k == t {
                b.read(i, i % k);
            }
        }
    }
}

/// Append the total-only variant's schedule (mirrors `total_in`: bottom-up
/// sweep, then the root broadcasts).
pub(crate) fn emit_total(b: &mut ScheduleBuilder, p: usize, k: usize) {
    let levels = tree_levels(p);
    for l in 0..levels {
        let span = 1usize << (l + 1);
        let half = 1usize << l;
        for t in 0..level_cycles(p, k, l) {
            b.begin_cycle();
            for i in 0..p {
                let j = i / span;
                if i % span == half && j / k == t {
                    b.write(i, j % k);
                }
                if i % span == 0 && j / k == t {
                    if i + half < p {
                        b.read(i, j % k);
                    } else {
                        b.read_maybe_empty(i, j % k);
                    }
                }
            }
        }
    }
    b.begin_cycle();
    b.write(0, 0);
    for i in 0..p {
        b.read(i, 0);
    }
}

/// The Partial-Sums subroutine on an `MCB(p, k)`.
#[derive(Debug, Clone, Copy)]
pub struct PartialSumsSpec {
    /// Processors.
    pub p: usize,
    /// Channels.
    pub k: usize,
}

impl StaticSchedule for PartialSumsSpec {
    fn emit(&self) -> CheckedSchedule {
        let mut b = ScheduleBuilder::new(
            &format!("partial_sums p={} k={}", self.p, self.k),
            self.p,
            self.k,
        );
        emit_partial_sums(&mut b, self.p, self.k);
        b.finish()
    }

    fn bounds(&self) -> Bounds {
        // One message per existing right son in each sweep, plus p-1
        // exchange messages; O(p) total as the paper states.
        let r = right_son_count(self.p);
        Bounds {
            cycles_exact: Some(partial_sums_cycles(self.p, self.k)),
            cycles_max: None,
            messages_exact: Some(2 * r + self.p as u64 - 1),
            messages_max: Some(3 * self.p as u64),
        }
    }
}

/// The total-only Partial-Sums variant on an `MCB(p, k)`.
#[derive(Debug, Clone, Copy)]
pub struct TotalSpec {
    /// Processors.
    pub p: usize,
    /// Channels.
    pub k: usize,
}

impl StaticSchedule for TotalSpec {
    fn emit(&self) -> CheckedSchedule {
        let mut b =
            ScheduleBuilder::new(&format!("total p={} k={}", self.p, self.k), self.p, self.k);
        emit_total(&mut b, self.p, self.k);
        b.finish()
    }

    fn bounds(&self) -> Bounds {
        Bounds {
            cycles_exact: Some(total_cycles(self.p, self.k)),
            cycles_max: None,
            messages_exact: Some(right_son_count(self.p) + 1),
            messages_max: Some(self.p as u64),
        }
    }
}

/// Extrema finding (§1 warm-up): two total-sum rounds.
#[derive(Debug, Clone, Copy)]
pub struct ExtremaSpec {
    /// Processors.
    pub p: usize,
    /// Channels.
    pub k: usize,
}

impl StaticSchedule for ExtremaSpec {
    fn emit(&self) -> CheckedSchedule {
        let mut b = ScheduleBuilder::new(
            &format!("extrema p={} k={}", self.p, self.k),
            self.p,
            self.k,
        );
        emit_total(&mut b, self.p, self.k);
        emit_total(&mut b, self.p, self.k);
        b.finish()
    }

    fn bounds(&self) -> Bounds {
        Bounds {
            cycles_exact: Some(2 * total_cycles(self.p, self.k)),
            cycles_max: None,
            messages_exact: Some(2 * (right_son_count(self.p) + 1)),
            messages_max: Some(2 * self.p as u64),
        }
    }
}

// ---------------------------------------------------------------------------
// Columnsort transformations (§5.2)
// ---------------------------------------------------------------------------

/// Append one transformation's cycles. `owners[c]` is the processor owning
/// column `c` (and broadcasting on channel `c`). With `dummies`, writes are
/// suppressible and reads tolerate empty channels (padded columns).
pub(crate) fn emit_transform(
    b: &mut ScheduleBuilder,
    sched: &TransformSchedule,
    owners: &[usize],
    dummies: bool,
) {
    let k_cols = owners.len();
    for t in 0..sched.cycles() {
        b.begin_cycle();
        for c in 0..k_cols {
            if sched.send_task(t, c).is_some() {
                if dummies {
                    b.write_suppressible(owners[c], c);
                } else {
                    b.write(owners[c], c);
                }
            }
            if let Some(r) = sched.recv_task(t, c) {
                if dummies {
                    b.read_maybe_empty(owners[c], r.from_col);
                } else {
                    b.read(owners[c], r.from_col);
                }
            }
        }
    }
}

/// Append all eight Columnsort phases among `owners` (sorting phases are
/// local and free; only the four transformations occupy cycles).
pub(crate) fn emit_columnsort_net(
    b: &mut ScheduleBuilder,
    m: usize,
    owners: &[usize],
    dummies: bool,
) {
    let k_cols = owners.len();
    for phase in PHASES {
        if let Phase::Apply(tf) = phase {
            let sched = TransformSchedule::new(tf, m, k_cols);
            emit_transform(b, &sched, owners, dummies);
        }
    }
}

/// Exact cross-column message count of a full Columnsort (no dummies).
fn columnsort_net_messages(m: usize, k_cols: usize) -> u64 {
    PHASES
        .iter()
        .map(|ph| match ph {
            Phase::Apply(tf) => TransformSchedule::new(*tf, m, k_cols).message_count() as u64,
            _ => 0,
        })
        .sum()
}

/// Emit one transformation schedule standalone, with the full data-flow
/// layer: all `m·k` matrix slots (column-major), each moved exactly once,
/// wire legs tied to their carrying broadcasts.
fn emit_transform_standalone(
    name: &str,
    sched: &TransformSchedule,
    m: usize,
    k: usize,
) -> CheckedSchedule {
    let mut b = ScheduleBuilder::new(name, k, k);
    b.declare_slots(m * k);
    for c in 0..k {
        for &(sr, dr) in sched.local_moves(c) {
            b.local_move(c, c * m + sr, c * m + dr);
        }
    }
    let owners: Vec<usize> = (0..k).collect();
    emit_transform(&mut b, sched, &owners, false);
    for t in 0..sched.cycles() {
        for dc in 0..k {
            if let Some(r) = sched.recv_task(t, dc) {
                let sc = r.from_col;
                let sr = sched
                    .send_task(t, sc)
                    .expect("edge coloring pairs every read with a write")
                    .src_row;
                b.wire_move(t, sc, sc, dc, sc * m + sr, dc * m + r.dst_row);
            }
        }
    }
    b.finish()
}

/// One of the four fixed transformations on an `m × k` matrix, one column
/// per processor.
#[derive(Debug, Clone, Copy)]
pub struct TransformSpec {
    /// Which transformation.
    pub transform: Transform,
    /// Column length.
    pub m: usize,
    /// Column count (= processors = channels).
    pub k: usize,
}

impl StaticSchedule for TransformSpec {
    fn emit(&self) -> CheckedSchedule {
        let sched = TransformSchedule::new(self.transform, self.m, self.k);
        emit_transform_standalone(
            &format!("{:?} m={} k={}", self.transform, self.m, self.k),
            &sched,
            self.m,
            self.k,
        )
    }

    fn bounds(&self) -> Bounds {
        let sched = TransformSchedule::new(self.transform, self.m, self.k);
        Bounds {
            cycles_exact: Some(sched.cycles() as u64),
            cycles_max: Some(self.m as u64),
            messages_exact: Some(sched.message_count() as u64),
            messages_max: Some((self.m * self.k) as u64),
        }
    }
}

/// An arbitrary position permutation scheduled by the generic edge-coloring
/// scheduler — the property-test entry point.
#[derive(Debug, Clone)]
pub struct PermutationSpec {
    /// `perm[src] = dst` over `m·k` column-major positions.
    pub perm: Vec<usize>,
    /// Column length.
    pub m: usize,
    /// Column count (= processors = channels).
    pub k: usize,
}

impl StaticSchedule for PermutationSpec {
    fn emit(&self) -> CheckedSchedule {
        let sched = TransformSchedule::from_permutation(&self.perm, self.m, self.k);
        emit_transform_standalone(
            &format!("permutation m={} k={}", self.m, self.k),
            &sched,
            self.m,
            self.k,
        )
    }

    fn bounds(&self) -> Bounds {
        Bounds {
            cycles_max: Some(self.m as u64),
            messages_max: Some((self.m * self.k) as u64),
            ..Bounds::none()
        }
    }
}

/// A full Columnsort among `k_cols` column owners (`p = k = k_cols`,
/// identity ownership). `dummies` marks padded columns.
#[derive(Debug, Clone, Copy)]
pub struct ColumnsortNetSpec {
    /// Column length.
    pub m: usize,
    /// Column count.
    pub k_cols: usize,
    /// Whether columns may contain padding dummies.
    pub dummies: bool,
}

impl StaticSchedule for ColumnsortNetSpec {
    fn emit(&self) -> CheckedSchedule {
        let mut b = ScheduleBuilder::new(
            &format!("columnsort_net m={} k={}", self.m, self.k_cols),
            self.k_cols,
            self.k_cols,
        );
        let owners: Vec<usize> = (0..self.k_cols).collect();
        emit_columnsort_net(&mut b, self.m, &owners, self.dummies);
        b.finish()
    }

    fn bounds(&self) -> Bounds {
        Bounds {
            cycles_exact: Some(columnsort_net_cycles(self.m, self.k_cols)),
            cycles_max: Some(4 * self.m as u64),
            messages_exact: (!self.dummies).then(|| columnsort_net_messages(self.m, self.k_cols)),
            messages_max: Some(4 * (self.m * self.k_cols) as u64),
        }
    }
}

// ---------------------------------------------------------------------------
// Direct sort, p = k (§5.2)
// ---------------------------------------------------------------------------

/// Realignment passes needed after sorting with padding: the maximum
/// number of padded columns any processor's target segment spans.
fn realign_passes(p: usize, m: usize, m_pad: usize) -> u64 {
    if m_pad == m {
        return 0;
    }
    (0..p)
        .map(|j| {
            let lo = (j * m) / m_pad;
            let hi = ((j + 1) * m - 1) / m_pad;
            (hi - lo + 1) as u64
        })
        .max()
        .unwrap()
}

/// The `p = k` direct sort with an even distribution of `m` elements per
/// processor.
#[derive(Debug, Clone, Copy)]
pub struct DirectSortSpec {
    /// Processors (= channels = columns).
    pub p: usize,
    /// Elements per processor.
    pub m: usize,
}

impl StaticSchedule for DirectSortSpec {
    fn emit(&self) -> CheckedSchedule {
        let (p, m) = (self.p, self.m);
        let mut b = ScheduleBuilder::new(&format!("sort_direct p={p} m={m}"), p, p);
        let m_pad = padded_column_length(m, p);
        let owners: Vec<usize> = (0..p).collect();
        emit_columnsort_net(&mut b, m_pad, &owners, m_pad > m);
        // Realignment rebroadcast (only when padding displaced segment
        // boundaries). After sorting, dummies occupy the global tail, so
        // column i's row `row` holds a real element iff its padded
        // position i·m_pad + row is below n = p·m — statically known.
        let n = p * m;
        for pass in 0..realign_passes(p, m, m_pad) {
            for row in 0..m_pad {
                b.begin_cycle();
                for i in 0..p {
                    if i * m_pad + row < n {
                        b.write(i, i);
                    }
                    let (lo, hi) = (i * m, (i + 1) * m);
                    let target_col = lo / m_pad + pass as usize;
                    let hi_col = (hi - 1) / m_pad;
                    let global = target_col * m_pad + row;
                    if target_col <= hi_col && global >= lo && global < hi {
                        // want ⇒ global < n ⇒ the writer is scheduled.
                        b.read(i, target_col);
                    }
                }
            }
        }
        b.finish()
    }

    fn bounds(&self) -> Bounds {
        let (p, m) = (self.p, self.m);
        let m_pad = padded_column_length(m, p);
        let passes = realign_passes(p, m, m_pad);
        let n = (p * m) as u64;
        Bounds {
            cycles_exact: Some(columnsort_net_cycles(m_pad, p) + passes * m_pad as u64),
            // O(n/k) = O(m_pad) per phase, four phases + ≤2 realign passes.
            cycles_max: Some(6 * m_pad as u64),
            messages_exact: (m_pad == m).then(|| columnsort_net_messages(m_pad, p)),
            // O(n): ≤ one message per element per transformation + n per
            // realign pass.
            messages_max: Some(4 * (m_pad * p) as u64 + passes * n),
        }
    }
}

// ---------------------------------------------------------------------------
// Grouped sort, arbitrary distributions (§5.2 + §7.2)
// ---------------------------------------------------------------------------

/// Everything the grouped pipeline's schedule depends on, precomputed from
/// `(k, n_i)` by mirroring `sort_grouped_in`'s control flow.
struct GroupedPlan {
    p: usize,
    n: u64,
    /// Exclusive prefix sums of `n_i` (`prev[i] = n_1 + … + n_{i-1}`).
    prev: Vec<u64>,
    group_sizes: Vec<u64>,
    /// Group of each processor.
    group_of: Vec<usize>,
    /// Offset of each processor's block inside its group's column.
    start_in_group: Vec<u64>,
    /// Representative (= highest-numbered member) of each group.
    reps: Vec<usize>,
    m_col: usize,
    m_pad: usize,
    /// Redistribution passes (max target-column span).
    passes: u64,
}

fn grouped_plan(k: usize, n_i: &[u64]) -> GroupedPlan {
    let p = n_i.len();
    assert!(p >= 1 && k >= 1);
    assert!(n_i.iter().all(|&c| c > 0), "paper model assumes n_i > 0");
    let mut prev = vec![0u64; p];
    for i in 1..p {
        prev[i] = prev[i - 1] + n_i[i - 1];
    }
    let n = prev[p - 1] + n_i[p - 1];
    let n_max = *n_i.iter().max().unwrap();
    let k_eff = choose_columns(n as usize, k);
    let threshold = (n as usize).div_ceil(k_eff) as u64 + n_max - 1;

    // Group formation: peel maximal prefixes fitting under the threshold.
    let mut consumed = 0u64;
    let mut group_sizes = Vec::new();
    let mut group_of = vec![usize::MAX; p];
    let mut start_in_group = vec![0u64; p];
    let mut reps = Vec::new();
    while consumed < n {
        let g = group_sizes.len();
        let mut m_g = 0u64;
        let mut rep = usize::MAX;
        for i in 0..p {
            let mine = prev[i] + n_i[i];
            let unassigned = group_of[i] == usize::MAX;
            let in_group = unassigned && mine > consumed && mine - consumed <= threshold;
            if in_group {
                let is_rep = match n_i.get(i + 1) {
                    Some(&next_card) => mine + next_card - consumed > threshold,
                    None => true,
                };
                group_of[i] = g;
                start_in_group[i] = prev[i].saturating_sub(consumed);
                if is_rep {
                    rep = i;
                    m_g = mine - consumed;
                }
            }
        }
        assert!(rep != usize::MAX, "every peel round has a representative");
        reps.push(rep);
        group_sizes.push(m_g);
        consumed += m_g;
    }
    let k_used = group_sizes.len();
    let m_col = *group_sizes.iter().max().unwrap() as usize;
    let m_pad = padded_column_length(m_col, k_used);

    let passes = (0..p)
        .map(|i| {
            let lo_col = prev[i] / m_pad as u64;
            let hi_col = (prev[i] + n_i[i] - 1) / m_pad as u64;
            hi_col - lo_col + 1
        })
        .max()
        .unwrap();

    GroupedPlan {
        p,
        n,
        prev,
        group_sizes,
        group_of,
        start_in_group,
        reps,
        m_col,
        m_pad,
        passes,
    }
}

/// Append the full grouped-sort pipeline (mirrors `sort_grouped_in`).
pub(crate) fn emit_grouped_sort(b: &mut ScheduleBuilder, k: usize, n_i: &[u64]) {
    let plan = grouped_plan(k, n_i);
    let p = plan.p;

    // 0a. census: partial sums, then total n and total n_max.
    emit_partial_sums(b, p, k);
    emit_total(b, p, k);
    emit_total(b, p, k);

    // 0b. group formation: one broadcast per group; everyone listens.
    for g in 0..plan.group_sizes.len() {
        b.begin_cycle();
        b.write(plan.reps[g], 0);
        for i in 0..p {
            b.read(i, 0);
        }
    }

    // 0c. collection: members stream to their representative on the
    // group's channel; the representative's own block (the column's tail,
    // as the rep is the group's last member) moves locally.
    for t in 0..plan.m_col as u64 {
        b.begin_cycle();
        for i in 0..p {
            let g = plan.group_of[i];
            let am_rep = plan.reps[g] == i;
            if !am_rep && t >= plan.start_in_group[i] && t - plan.start_in_group[i] < n_i[i] {
                b.write(i, g);
            }
            if am_rep && t < plan.group_sizes[g] {
                if t < plan.group_sizes[g] - n_i[i] {
                    b.read(i, g);
                } else {
                    b.read_maybe_empty(i, g);
                }
            }
        }
    }

    // 1–8. Columnsort among representatives, columns padded with dummies.
    emit_columnsort_net(b, plan.m_pad, &plan.reps, true);

    // 10. redistribution: a max total-sum agrees on the pass count, then
    // representatives rebroadcast; dummies sit at the global tail, so
    // position g·m_pad + row is real iff below n.
    emit_total(b, p, k);
    for pass in 0..plan.passes {
        for row in 0..plan.m_pad as u64 {
            b.begin_cycle();
            for (g, &rep) in plan.reps.iter().enumerate() {
                if g as u64 * plan.m_pad as u64 + row < plan.n {
                    b.write(rep, g);
                }
            }
            for i in 0..p {
                let (lo, hi) = (plan.prev[i], plan.prev[i] + n_i[i]);
                let target_col = lo / plan.m_pad as u64 + pass;
                let hi_col = (hi - 1) / plan.m_pad as u64;
                let global = target_col * plan.m_pad as u64 + row;
                if target_col <= hi_col && global >= lo && global < hi {
                    b.read(i, target_col as usize);
                }
            }
        }
    }
}

/// Closed-form cycle count of the grouped pipeline, from the component
/// formulas (independent of the emitter's loops).
fn grouped_cycles(k: usize, n_i: &[u64]) -> u64 {
    let plan = grouped_plan(k, n_i);
    let p = plan.p;
    partial_sums_cycles(p, k)
        + 3 * total_cycles(p, k)
        + plan.group_sizes.len() as u64
        + plan.m_col as u64
        + columnsort_net_cycles(plan.m_pad, plan.group_sizes.len())
        + plan.passes * plan.m_pad as u64
}

/// Loose `O(n)`-shaped message ceiling for the grouped pipeline.
fn grouped_messages_max(k: usize, n_i: &[u64]) -> u64 {
    let plan = grouped_plan(k, n_i);
    let p = plan.p as u64;
    let k_used = plan.group_sizes.len() as u64;
    // collection + columnsort + redistribution + control traffic.
    plan.n
        + 4 * plan.m_pad as u64 * k_used
        + plan.passes * k_used * plan.m_pad as u64
        + 3 * p // partial sums
        + 3 * p // three total-sum rounds
        + k_used
}

/// The full sorting pipeline for an arbitrary distribution `n_i` on an
/// `MCB(p, k)` (Corollary 6's algorithm).
#[derive(Debug, Clone)]
pub struct GroupedSortSpec {
    /// Channels.
    pub k: usize,
    /// Per-processor cardinalities (`p = n_i.len()`, all positive).
    pub n_i: Vec<u64>,
}

impl StaticSchedule for GroupedSortSpec {
    fn emit(&self) -> CheckedSchedule {
        let p = self.n_i.len();
        let mut b = ScheduleBuilder::new(
            &format!(
                "sort_grouped p={p} k={} n={}",
                self.k,
                self.n_i.iter().sum::<u64>()
            ),
            p,
            self.k,
        );
        emit_grouped_sort(&mut b, self.k, &self.n_i);
        b.finish()
    }

    fn bounds(&self) -> Bounds {
        let plan = grouped_plan(self.k, &self.n_i);
        let n_max = *self.n_i.iter().max().unwrap();
        let k_eff = choose_columns(plan.n as usize, self.k) as u64;
        let p = plan.p as u64;
        let lg = u64::from(64 - plan.p.leading_zeros());
        Bounds {
            cycles_exact: Some(grouped_cycles(self.k, &self.n_i)),
            // Θ(n/k + n_max) plus the small-input k_eff² floor and the
            // O(p/k + log p) control rounds (Corollary 6's shape).
            cycles_max: Some(
                16 * (plan.n.div_ceil(k_eff) + n_max + k_eff * k_eff)
                    + 8 * (p.div_ceil(self.k as u64) + lg)
                    + 64,
            ),
            messages_exact: None,
            messages_max: Some(grouped_messages_max(self.k, &self.n_i)),
        }
    }
}

// ---------------------------------------------------------------------------
// Rank-Sort, single channel (§6.1) — key-determined
// ---------------------------------------------------------------------------

/// The single-channel Rank-Sort for concrete keys. The phase-2 broadcast
/// order is the (data-dependent) rank order, so the emitter needs the
/// keys; with duplicate keys across processors the emitted schedule
/// contains the very write collision the paper's distinct-keys
/// precondition exists to prevent — and the verifier flags it.
#[derive(Debug, Clone)]
pub struct RankSortSpec<K> {
    /// Per-processor input lists (all nonempty).
    pub lists: Vec<Vec<K>>,
}

impl<K: Ord + Clone + std::fmt::Debug> StaticSchedule for RankSortSpec<K> {
    fn emit(&self) -> CheckedSchedule {
        let p = self.lists.len();
        assert!(p >= 1 && self.lists.iter().all(|l| !l.is_empty()));
        let n: usize = self.lists.iter().map(Vec::len).sum();
        let mut b = ScheduleBuilder::new(&format!("rank_sort p={p} n={n}"), p, 1);

        // Census: one turn per processor; everyone reads every cycle.
        for turn in 0..p {
            b.begin_cycle();
            b.write(turn, 0);
            for i in 0..p {
                b.read(i, 0);
            }
        }

        // Phase 1: elements broadcast in storage order; everyone reads.
        let prefix: Vec<usize> = self
            .lists
            .iter()
            .scan(0usize, |acc, l| {
                let s = *acc;
                *acc += l.len();
                Some(s)
            })
            .collect();
        for t in 0..n {
            b.begin_cycle();
            let owner = (0..p)
                .rfind(|&i| prefix[i] <= t)
                .expect("every slot has an owner");
            b.write(owner, 0);
            for i in 0..p {
                b.read(i, 0);
            }
        }

        // Phase 2: broadcast in rank order (rank r(x) = |{y > x}|), mirror
        // of the runtime's peekable send iterator; the target-segment
        // owner reads.
        let all: Vec<&K> = self.lists.iter().flatten().collect();
        for t in 0..n {
            b.begin_cycle();
            for (i, list) in self.lists.iter().enumerate() {
                // Ranks this processor sends, in the peekable order.
                let mut ranks: Vec<usize> = list
                    .iter()
                    .map(|x| all.iter().filter(|y| ***y > *x).count())
                    .collect();
                ranks.sort_unstable();
                ranks.dedup(); // the peekable iterator sends each rank once
                if ranks.binary_search(&t).is_ok() {
                    b.write(i, 0);
                }
                if t >= prefix[i] && t < prefix[i] + list.len() {
                    b.read(i, 0);
                }
            }
        }
        b.finish()
    }

    fn bounds(&self) -> Bounds {
        let p = self.lists.len() as u64;
        let n: u64 = self.lists.iter().map(|l| l.len() as u64).sum();
        Bounds {
            cycles_exact: Some(p + 2 * n),
            cycles_max: None,
            // Exact only for distinct keys; duplicates already fail the
            // collision check, so the message mismatch is secondary.
            messages_exact: Some(p + 2 * n),
            messages_max: None,
        }
    }
}

// ---------------------------------------------------------------------------
// Selection (§8)
// ---------------------------------------------------------------------------

/// The naive sort-then-broadcast selection baseline. Parameter-only: after
/// sorting, the holder of global rank `d` is determined by the
/// cardinalities alone.
#[derive(Debug, Clone)]
pub struct NaiveSelectSpec {
    /// Channels.
    pub k: usize,
    /// Per-processor cardinalities.
    pub n_i: Vec<u64>,
    /// Selection rank, `1 <= d <= n`.
    pub d: u64,
}

impl StaticSchedule for NaiveSelectSpec {
    fn emit(&self) -> CheckedSchedule {
        let p = self.n_i.len();
        let n: u64 = self.n_i.iter().sum();
        assert!(self.d >= 1 && self.d <= n, "rank out of range");
        let mut b = ScheduleBuilder::new(
            &format!("select_by_sorting p={p} k={} d={}", self.k, self.d),
            p,
            self.k,
        );
        emit_grouped_sort(&mut b, self.k, &self.n_i);
        emit_partial_sums(&mut b, p, self.k);
        // The holder of 0-based rank d-1 broadcasts; everyone listens.
        let mut prefix = 0u64;
        let mut holder = p - 1;
        for (i, &c) in self.n_i.iter().enumerate() {
            if self.d > prefix && self.d - 1 < prefix + c {
                holder = i;
                break;
            }
            prefix += c;
        }
        b.begin_cycle();
        b.write(holder, 0);
        for i in 0..p {
            b.read(i, 0);
        }
        b.finish()
    }

    fn bounds(&self) -> Bounds {
        let p = self.n_i.len();
        Bounds {
            cycles_exact: Some(
                grouped_cycles(self.k, &self.n_i) + partial_sums_cycles(p, self.k) + 1,
            ),
            cycles_max: None,
            messages_exact: None,
            messages_max: Some(grouped_messages_max(self.k, &self.n_i) + 3 * p as u64 + 1),
        }
    }
}

/// Filtering selection (Corollary 7) for concrete keys, simulated with
/// global knowledge: the emitter tracks the candidate sets through every
/// filtering round exactly as the processors do, so it knows who holds the
/// weighted median, which case fires, and when the loop terminates.
#[derive(Debug, Clone)]
pub struct SelectSpec<K> {
    /// Channels.
    pub k: usize,
    /// Per-processor input lists (all nonempty, distinct keys).
    pub lists: Vec<Vec<K>>,
    /// Selection rank, `1 <= d <= n`.
    pub d: u64,
}

/// One filtering round's shape: the inner sort of `p` one-entry lists,
/// partial sums, the med* broadcast, and the m_ge total.
fn emit_select_round(b: &mut ScheduleBuilder, p: usize, k: usize, star: usize) {
    emit_grouped_sort(b, k, &vec![1u64; p]);
    emit_partial_sums(b, p, k);
    b.begin_cycle();
    b.write(star, 0);
    for i in 0..p {
        b.read(i, 0);
    }
    emit_total(b, p, k);
}

/// Cycle cost of one filtering round (closed form).
fn select_round_cycles(p: usize, k: usize) -> u64 {
    grouped_cycles(k, &vec![1u64; p]) + partial_sums_cycles(p, k) + 1 + total_cycles(p, k)
}

impl<K: Ord + Clone + std::fmt::Debug> SelectSpec<K> {
    /// Simulate the filtering loop; returns, per round, the sorted
    /// position i* that broadcasts med*, plus the surviving per-processor
    /// candidate counts (empty when a round hit the exact case).
    fn plan(&self) -> (Vec<usize>, Option<Vec<u64>>) {
        let p = self.lists.len();
        let k = self.k as u64;
        let m_star = (p as u64 / k).max(1);
        let mut candidates: Vec<Vec<K>> = self.lists.clone();
        let mut m: u64 = candidates.iter().map(|c| c.len() as u64).sum();
        let mut d = self.d;
        let mut stars = Vec::new();
        while m > m_star {
            // (1)+(2): entries sorted descending; processor i receives
            // sorted position i (n = p, one entry per processor).
            let mut entries: Vec<MedEntry<K>> = (0..p)
                .map(|i| MedEntry {
                    med: (!candidates[i].is_empty()).then(|| median_desc(&candidates[i])),
                    src: i as u32,
                    count: candidates[i].len() as u64,
                })
                .collect();
            entries.sort_unstable_by(|a, b| b.cmp(a));
            // (3): weighted median position over the sorted counts.
            let half = m.div_ceil(2);
            let mut acc = 0u64;
            let mut star = p - 1;
            for (pos, e) in entries.iter().enumerate() {
                if acc < half && half <= acc + e.count {
                    star = pos;
                    break;
                }
                acc += e.count;
            }
            stars.push(star);
            let med_star = entries[star].med.clone().expect("weighted median is real");
            // (4): count and branch.
            let m_ge: u64 = candidates
                .iter()
                .flatten()
                .filter(|x| **x >= med_star)
                .count() as u64;
            if m_ge == d {
                return (stars, None);
            } else if m_ge > d {
                for c in &mut candidates {
                    c.retain(|x| *x > med_star);
                }
                m = m_ge - 1;
            } else {
                for c in &mut candidates {
                    c.retain(|x| *x < med_star);
                }
                m -= m_ge;
                d -= m_ge;
            }
        }
        let counts = candidates.iter().map(|c| c.len() as u64).collect();
        (stars, Some(counts))
    }
}

impl<K: Ord + Clone + std::fmt::Debug> StaticSchedule for SelectSpec<K> {
    fn emit(&self) -> CheckedSchedule {
        let p = self.lists.len();
        let k = self.k;
        assert!(p >= 1 && self.lists.iter().all(|l| !l.is_empty()));
        let n: usize = self.lists.iter().map(Vec::len).sum();
        assert!(self.d >= 1 && self.d <= n as u64, "rank out of range");
        let mut b = ScheduleBuilder::new(&format!("select_rank p={p} k={k} d={}", self.d), p, k);

        emit_total(&mut b, p, k); // candidate census
        let (stars, survivors) = self.plan();
        for &star in &stars {
            emit_select_round(&mut b, p, k, star);
        }
        let Some(counts) = survivors else {
            // Exact case: the loop returned right after the m_ge total.
            return b.finish();
        };

        // Termination: partial sums for offsets, survivors stream to P_0,
        // P_0 broadcasts the answer.
        emit_partial_sums(&mut b, p, k);
        let m: u64 = counts.iter().sum();
        let mut prev = vec![0u64; p];
        for i in 1..p {
            prev[i] = prev[i - 1] + counts[i - 1];
        }
        for t in 0..m {
            b.begin_cycle();
            for i in 1..p {
                if t >= prev[i] && t - prev[i] < counts[i] {
                    b.write(i, 0);
                }
            }
            if t >= counts[0] {
                b.read(0, 0);
            }
        }
        b.begin_cycle();
        b.write(0, 0);
        for i in 0..p {
            b.read(i, 0);
        }
        b.finish()
    }

    fn bounds(&self) -> Bounds {
        let p = self.lists.len();
        let k = self.k;
        let (stars, survivors) = self.plan();
        let rounds = stars.len() as u64;
        let mut cycles = total_cycles(p, k) + rounds * select_round_cycles(p, k);
        if let Some(counts) = &survivors {
            let m: u64 = counts.iter().sum();
            cycles += partial_sums_cycles(p, k) + m + 1;
        }
        // Corollary 7's shape: O(p) messages per round, O(log(kn/p))
        // rounds — plus the inner sort's k_eff² small-input floor.
        let n: u64 = self.lists.iter().map(|l| l.len() as u64).sum();
        let per_round = grouped_messages_max(k, &vec![1u64; p]) + 4 * p as u64 + 1;
        let tail = 3 * p as u64 + n + 1;
        Bounds {
            cycles_exact: Some(cycles),
            cycles_max: None,
            messages_exact: None,
            messages_max: Some((rounds + 1) * per_round + tail),
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::columnsort::{min_column_length, ALL_TRANSFORMS};

    fn assert_ok(spec: &dyn StaticSchedule, what: &str) {
        let report = spec.check();
        assert!(report.is_ok(), "{what}:\n{report}");
    }

    #[test]
    fn partial_sums_and_total_verify_on_varied_shapes() {
        for (p, k) in [
            (1, 1),
            (2, 1),
            (4, 2),
            (7, 3),
            (8, 8),
            (13, 4),
            (16, 4),
            (33, 5),
        ] {
            assert_ok(&PartialSumsSpec { p, k }, &format!("ps p={p} k={k}"));
            assert_ok(&TotalSpec { p, k }, &format!("total p={p} k={k}"));
            assert_ok(&ExtremaSpec { p, k }, &format!("extrema p={p} k={k}"));
        }
    }

    #[test]
    fn transforms_verify_with_full_dataflow() {
        for tf in ALL_TRANSFORMS {
            for (m, k) in [(4, 2), (12, 4), (6, 3), (56, 8), (5, 1)] {
                assert_ok(
                    &TransformSpec {
                        transform: tf,
                        m,
                        k,
                    },
                    &format!("{tf:?} m={m} k={k}"),
                );
            }
        }
    }

    #[test]
    fn columnsort_and_direct_sort_verify() {
        for k in 1..=6usize {
            let m = min_column_length(k);
            assert_ok(
                &ColumnsortNetSpec {
                    m,
                    k_cols: k,
                    dummies: false,
                },
                &format!("cs m={m} k={k}"),
            );
        }
        for (p, m) in [(4, 16), (4, 13), (2, 2), (8, 56), (3, 7)] {
            assert_ok(&DirectSortSpec { p, m }, &format!("direct p={p} m={m}"));
        }
    }

    #[test]
    fn grouped_sort_verifies_even_and_uneven() {
        assert_ok(
            &GroupedSortSpec {
                k: 4,
                n_i: vec![16; 4],
            },
            "even p=k",
        );
        assert_ok(
            &GroupedSortSpec {
                k: 2,
                n_i: vec![16; 8],
            },
            "even p>k",
        );
        assert_ok(
            &GroupedSortSpec {
                k: 3,
                n_i: vec![1, 40, 3, 17, 9, 20],
            },
            "uneven",
        );
        assert_ok(
            &GroupedSortSpec {
                k: 1,
                n_i: vec![5, 9, 2],
            },
            "k=1",
        );
        assert_ok(
            &GroupedSortSpec {
                k: 4,
                n_i: vec![3; 4],
            },
            "small input",
        );
        assert_ok(&GroupedSortSpec { k: 1, n_i: vec![7] }, "p=1");
    }

    #[test]
    fn rank_sort_verifies_with_distinct_keys_and_fails_on_duplicates() {
        let spec = RankSortSpec {
            lists: vec![vec![5u64, 1], vec![9, 3, 7], vec![2, 8]],
        };
        assert_ok(&spec, "rank sort distinct");
        // A duplicate across processors double-books a delivery slot.
        let dup = RankSortSpec {
            lists: vec![vec![5u64, 1], vec![5, 3]],
        };
        let report = dup.check();
        assert!(!report.is_ok(), "duplicate keys must fail:\n{report}");
        assert!(report
            .violations
            .iter()
            .any(|v| v.kind() == "write_collision" || v.kind() == "read_from_silent_channel"));
    }

    #[test]
    fn selection_specs_verify() {
        let lists: Vec<Vec<u64>> = (0..8)
            .map(|i| {
                (0..16)
                    .map(|j| (i * 16 + j) as u64 * 7919 % 10007)
                    .collect()
            })
            .collect();
        assert_ok(
            &SelectSpec {
                k: 4,
                lists: lists.clone(),
                d: 64,
            },
            "select p=8 k=4",
        );
        assert_ok(
            &SelectSpec {
                k: 1,
                lists: lists.clone(),
                d: 1,
            },
            "select k=1",
        );
        assert_ok(
            &NaiveSelectSpec {
                k: 2,
                n_i: vec![4, 9, 2, 5],
                d: 10,
            },
            "naive select",
        );
    }
}
