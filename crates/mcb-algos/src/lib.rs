//! # mcb-algos — sorting and selection in multi-channel broadcast networks
//!
//! The algorithmic contribution of Marberg & Gafni (1985), implemented
//! against the [`mcb_net`] simulator:
//!
//! | Paper | Module | Result |
//! |-------|--------|--------|
//! | §5.1  | [`columnsort`] | Leighton's Columnsort (pure, the specification) |
//! | §5.2  | [`sort::direct`], [`sort::grouped`] | MCB Columnsort, `Θ(n)` messages / `Θ(n/k)` cycles for even distributions |
//! | §6.1  | [`sort::ranksort`], [`sort::mergesort`], [`sort::recursive`] | single-channel sorts and memory-efficient virtual columns |
//! | §6.2  | [`sort::recursive`] | recursive Columnsort for small inputs (Corollary 5) |
//! | §7.1  | [`partial_sums`] | the Partial-Sums tree algorithm, `O(p/k + log p)` cycles |
//! | §7.2  | [`sort::grouped`] | uneven distributions, `Θ(max{n/k, n_max})` cycles (Corollary 6) |
//! | §8    | [`select`] | selection by rank, `Θ(p log(kn/p))` messages (Corollary 7), plus the naive sort-based and Shout-Echo baselines |
//! | §1    | [`extrema`] | extrema finding (the related-work warm-up problem) via Partial-Sums |
//! | §2    | [`resilient`] | the algorithms on *faulty* hardware: the simulation lemma as a channel-failover mechanism |
//! | §2+§5/§8 | [`heal`] | self-healing variants with **no fault oracle**: wire-level detection, epoch reconfiguration, crash takeover |
//! | service | [`batch`] | many sort/select jobs composed into one healed run: disjoint role groups, round-robin phase interleaving, per-tenant attribution |
//! | §5 (oblivious) | [`networks`] | comparator-network compiler: Batcher / optimal small / multiway-merge networks packed onto `k` channels, proven sort-correct for **all** inputs by `mcb_check::symbolic` |
//!
//! All distributed algorithms come in two forms: a driver (`sort_grouped`,
//! `select_rank`, …) that builds the network and returns results plus
//! [`mcb_net::Metrics`], and a `_in` subroutine form callable from inside a
//! larger protocol in lock-step — the composition mechanism the paper uses
//! when selection sorts its (median, count) pairs with the §5 algorithm.
//! The [`steps`] module adds a third form for the two workhorses: Rank-Sort
//! and networked Columnsort as [`mcb_net::StepProtocol`] state machines,
//! runnable thread-free at `p = 10^5` on the struct-of-arrays
//! [`mcb_net::Backend::Vector`] engine.
//!
//! ```
//! use mcb_algos::sort::{sort_grouped, verify_sorted};
//!
//! let lists = vec![vec![5u64, 1], vec![9, 3, 7], vec![2, 8]];
//! let report = sort_grouped(2, lists.clone()).unwrap();
//! verify_sorted(&lists, &report.lists).unwrap();
//! assert_eq!(report.lists[0], vec![9, 8]); // P1 gets the largest
//! ```

#![warn(missing_docs)]
// Index-based loops are kept where the index is a matrix/processor
// coordinate shared across several arrays; iterators would obscure the
// schedule math.
#![allow(clippy::needless_range_loop)]

pub mod batch;
pub mod columnsort;
pub mod extrema;
pub mod heal;
pub mod local;
pub mod msg;
pub mod networks;
pub mod partial_sums;
pub mod resilient;
pub mod schedule;
pub mod select;
pub mod sort;
pub mod static_schedule;
pub mod steps;

pub use msg::{Key, Word};
pub use networks::{batcher, bose_nelson, network_sort, network_sort_in, NetworkKind, NetworkSpec};
pub use steps::{
    columnsort_schedules, columnsort_steps, rank_sort_steps, ColumnsortStep, ColumnsortStepsReport,
    RankSortStep,
};
