//! Self-healing drivers: the §5/§8 algorithms with **no fault oracle**.
//!
//! [`Resilient`](crate::resilient::Resilient) survives faults it is *told
//! about* ([`FaultPlan::notice`](mcb_net::FaultPlan::notice) is an oracle
//! every processor consults). This module removes the oracle: protocols
//! are restructured so faults are *detected from the wire* and survived by
//! reconfiguration, including processor crashes — which resilient mode
//! cannot recover at all (a crashed processor leaves a `None` hole there).
//!
//! # The all-read discipline
//!
//! A [`HealProgram`] expresses an algorithm as phases of **serialized
//! broadcast rounds**: per round exactly one virtual role writes one framed
//! word and *every live processor reads that round's channel*. That costs
//! channel parallelism (one message per cycle), but buys three properties
//! the detection story needs:
//!
//! 1. **Instant common knowledge.** Every fault manifestation — dead
//!    channel, dead/crashed writer, dropped frame ([silence]), corrupted
//!    frame ([noise]) — is observed by all live processors in the same
//!    cycle, so they react in lock-step with no agreement sub-protocol.
//! 2. **Full-state mirroring.** Since everyone hears every word, every
//!    processor maintains an identical replica of the global state
//!    (classic state-machine replication). Any survivor can therefore
//!    adopt any dead processor's role — crash takeover with *full output*,
//!    up to `p − 1` crashes.
//! 3. **One-phase rollback.** The replica is committed only at phase
//!    boundaries; on a detected fault the phase replays from the last
//!    committed state, so a fault costs at most one phase of rework.
//!
//! Dummies are broadcast explicitly (as [`DUMMY`] control words) rather
//! than elided: under the all-read discipline *silence must mean fault*,
//! so even "nothing to say" is said out loud.
//!
//! On suspicion every processor enters the epoch census
//! ([`EpochCtx::reconfigure`]), agrees on the live channel/processor sets,
//! bumps the epoch, and replays the interrupted phase with roles re-dealt
//! over the survivors ([`EpochCtx::host`]) and rounds re-rotated over the
//! live channels ([`EpochCtx::phys_channel`] — the §2 lemma remap with
//! idle sub-cycles elided, since a one-writer round never needs the full
//! `⌈k/k′⌉` dilation at run time; the static proof in
//! [`heal_schedule`]/`mcb-check` verifies the fully-dilated remap).
//!
//! # Cost contract
//!
//! With `L` fault-free cycles ([`run_program_offline`]), `R` committed
//! reconfigurations, `W` the longest phase in rounds, and `C` the census
//! worst case ([`EpochCtx::census_cost`]), a healed run finishes within
//! `L + R × (W + C)` cycles ([`HealedSort::cycle_bound`]) — each
//! reconfiguration costs one census plus at most one phase replay. The
//! chaos suite asserts this bound; the detection machinery itself adds
//! **zero** cycles to fault-free runs (framing costs bits, not cycles —
//! the `tab_detection_overhead` bench pins this).
//!
//! [silence]: mcb_net::FrameRead::Silence
//! [noise]: mcb_net::FrameRead::Noise

use crate::columnsort::{check_shape, Phase, PHASES};
use crate::local::sort_desc;
use crate::msg::{Key, Word};
use mcb_net::{
    escalate_diverged, Backend, ControlCodec, EpochCause, EpochCtx, EpochOpts, EpochRecord,
    FaultPlan, FaultSummary, FrameRead, Metrics, NetError, Network, ProcCtx, RunMonitor, Trace,
};

// ---------------------------------------------------------------------------
// Control-word codec
// ---------------------------------------------------------------------------

/// Tag bit marking a [`Word::Ctl`] as an epoch-census ping
/// (`PING_TAG | epoch << 20 | proc`).
pub const PING_TAG: u64 = 1 << 62;
/// A broadcast placeholder for a padding dummy ("nothing to say", said out
/// loud — see the [module docs](self)).
pub const DUMMY: u64 = 1 << 61;
/// Tag bit for a candidate count (`COUNT_TAG | count`).
pub const COUNT_TAG: u64 = 1 << 60;
/// Tag bit for a comparison tally (`CMP_TAG | gt << 20 | eq`).
pub const CMP_TAG: u64 = 1 << 59;

const LOW20: u64 = (1 << 20) - 1;

/// The epoch census speaks the algorithms' own wire type.
impl<K> ControlCodec for Word<K> {
    fn ping(proc: usize, epoch: u64) -> Self {
        debug_assert!((proc as u64) <= LOW20, "ping proc field overflow");
        debug_assert!(epoch < (1 << 39), "ping epoch field overflow");
        Word::Ctl(PING_TAG | epoch << 20 | proc as u64)
    }

    fn decode_ping(&self) -> Option<(usize, u64)> {
        match self {
            Word::Ctl(v) if v & PING_TAG != 0 => {
                Some(((v & LOW20) as usize, v >> 20 & ((1 << 42) - 1)))
            }
            _ => None,
        }
    }
}

/// Encode an optional key for a data round (`None` → [`DUMMY`]).
fn enc_opt<K>(k: Option<K>) -> Word<K> {
    k.map_or(Word::Ctl(DUMMY), Word::Key)
}

/// Decode a data-round word back to an optional key; panics on unexpected
/// control traffic (a protocol bug — pings are screened out earlier by
/// [`run_program_in`]).
fn dec_opt<K>(w: Word<K>) -> Option<K> {
    match w {
        Word::Key(k) => Some(k),
        Word::Ctl(v) if v & DUMMY != 0 => None,
        Word::Ctl(v) => panic!("protocol error: unexpected control word {v:#x} in data round"),
    }
}

// ---------------------------------------------------------------------------
// The program abstraction
// ---------------------------------------------------------------------------

/// An algorithm in all-read serialized-broadcast form (see the
/// [module docs](self)).
///
/// The contract that makes healing work:
///
/// * every processor calls every method with identical arguments and gets
///   identical results (the state is a mirrored replica, the methods pure);
/// * [`rounds`](HealProgram::rounds) schedules one `(role, word)` broadcast
///   per round — *which* processor hosts a role is the epoch layer's
///   business, not the program's;
/// * [`apply`](HealProgram::apply) folds the phase's **received** wire
///   words (not the locally computed ones) into the state, so the replica
///   tracks what was actually broadcast — wire-honesty;
/// * a phase with no rounds is local computation.
pub trait HealProgram<K: Key>: Send + Sync {
    /// The mirrored global state. Cloned at phase boundaries (checkpoint).
    type State: Clone;
    /// What the program computes.
    type Output;

    /// Number of virtual roles (the epoch layer deals them over live
    /// processors round-robin).
    fn roles(&self) -> usize;

    /// The state before any phase has run.
    fn initial(&self) -> Self::State;

    /// The next phase to run from `state`, or `None` when finished. The
    /// label is owned so composed programs (e.g.
    /// [`BatchProgram`](crate::batch::BatchProgram)) can attribute phases
    /// per tenant — `"job3:sel:counts"` — without leaking statics.
    fn next_phase(&self, state: &Self::State) -> Option<String>;

    /// The phase's broadcast schedule: round `t` has role `rounds[t].0`
    /// broadcasting word `rounds[t].1`. Empty for local phases.
    fn rounds(&self, state: &Self::State, phase: &str) -> Vec<(usize, Word<K>)>;

    /// Fold a cleanly completed phase into the state; `received[t]` is the
    /// word actually read in round `t`.
    fn apply(&self, state: &Self::State, phase: &str, received: &[Word<K>]) -> Self::State;

    /// Upper bound on any phase's round count (for the cycle bound).
    fn max_phase_rounds(&self) -> u64;

    /// Extract the result from a finished state.
    fn output(&self, state: &Self::State) -> Self::Output;
}

/// Execute `prog` inside a live network protocol under `ectx`, healing
/// around detected faults. Returns `None` when this processor was excluded
/// by a census (the survivors carry its roles and its output).
///
/// Every live processor must call this in the same cycle with identical
/// `prog` and a fresh identical `ectx`; after it returns, `ectx.records()`
/// holds the committed reconfiguration log (identical on every survivor).
pub fn run_program_in<K: Key, P: HealProgram<K>>(
    ctx: &mut ProcCtx<'_, Word<K>>,
    ectx: &mut EpochCtx,
    prog: &P,
) -> Option<P::Output> {
    let me = ctx.id().index();
    let mut committed = prog.initial();
    while let Some(phase) = prog.next_phase(&committed) {
        ctx.phase(&phase);
        'replay: loop {
            let rounds = prog.rounds(&committed, &phase);
            let mut received: Vec<Word<K>> = Vec::with_capacity(rounds.len());
            for (t, (role, word)) in rounds.iter().enumerate() {
                let chan = ectx.phys_channel(t);
                let write = (ectx.host(*role) == me).then(|| (chan, word.clone()));
                match ctx.framed_cycle(write, Some(chan)) {
                    FrameRead::Clean(w) => {
                        if let Some((_, foreign)) = w.decode_ping() {
                            // A census ping where the schedule expects
                            // data: someone is reconfiguring and we are
                            // not — common knowledge has split.
                            escalate_diverged(ctx, ectx.epoch(), foreign);
                        }
                        received.push(w);
                    }
                    suspect => {
                        let cause = if matches!(suspect, FrameRead::Noise) {
                            EpochCause::Noise
                        } else {
                            EpochCause::Silence
                        };
                        ectx.reconfigure(ctx, cause);
                        if ectx.is_excluded() {
                            return None;
                        }
                        // Roll back to the last phase boundary: replay this
                        // phase from the committed replica under the new
                        // configuration.
                        continue 'replay;
                    }
                }
            }
            committed = prog.apply(&committed, &phase, &received);
            break 'replay;
        }
    }
    Some(prog.output(&committed))
}

/// Run `prog` with a perfect wire (every round's word is received as
/// sent): the fault-free reference answer and cycle count `L` (one cycle
/// per round — local phases are free, like all local work in the model).
pub fn run_program_offline<K: Key, P: HealProgram<K>>(prog: &P) -> (P::Output, u64) {
    let mut state = prog.initial();
    let mut cycles = 0u64;
    while let Some(phase) = prog.next_phase(&state) {
        let rounds = prog.rounds(&state, &phase);
        cycles += rounds.len() as u64;
        let received: Vec<Word<K>> = rounds.into_iter().map(|(_, w)| w).collect();
        state = prog.apply(&state, &phase, &received);
    }
    (prog.output(&state), cycles)
}

// ---------------------------------------------------------------------------
// Columnsort as a heal program
// ---------------------------------------------------------------------------

/// Phase labels, paper Figure 1 numbering (matching `sort::columns`).
const CS_PHASES: [&str; 8] = [
    "cs1:sort",
    "cs2:transpose",
    "cs3:sort",
    "cs4:undiagonalize",
    "cs5:sort",
    "cs6:upshift",
    "cs7:sort-rest",
    "cs8:downshift",
];

/// §5 Columnsort in all-read form: the full `m × k₀` matrix is mirrored on
/// every processor; transformation phases broadcast all `m·k₀` positions
/// (dummies included) column by column, role `c` hosting column `c`'s
/// rounds.
pub struct ColumnsortProgram<K> {
    m: usize,
    k0: usize,
    input: Vec<Option<K>>,
}

/// Mirrored state of a [`ColumnsortProgram`]: the column-major grid plus
/// the phase cursor.
#[derive(Clone)]
pub struct CsState<K> {
    grid: Vec<Option<K>>,
    phase_idx: usize,
}

impl<K: Key> ColumnsortProgram<K> {
    /// A program sorting `cols` (each of padded length `m`, `None` =
    /// dummy). Shape rules are §5.1's: `m ≥ k₀(k₀ − 1)`, `k₀ | m`.
    pub fn new(m: usize, cols: &[Vec<Option<K>>]) -> Result<Self, NetError> {
        let k0 = cols.len();
        check_shape(m, k0).map_err(|e| NetError::BadConfig(e.to_string()))?;
        if let Some(bad) = cols.iter().find(|c| c.len() != m) {
            return Err(NetError::BadConfig(format!(
                "column has {} entries, want padded length m = {m}",
                bad.len()
            )));
        }
        Ok(ColumnsortProgram {
            m,
            k0,
            input: cols.iter().flatten().cloned().collect(),
        })
    }
}

impl<K: Key> HealProgram<K> for ColumnsortProgram<K> {
    type State = CsState<K>;
    type Output = Vec<Vec<Option<K>>>;

    fn roles(&self) -> usize {
        self.k0
    }

    fn initial(&self) -> CsState<K> {
        CsState {
            grid: self.input.clone(),
            phase_idx: 0,
        }
    }

    fn next_phase(&self, state: &CsState<K>) -> Option<String> {
        CS_PHASES.get(state.phase_idx).map(|&s| s.to_owned())
    }

    fn rounds(&self, state: &CsState<K>, _phase: &str) -> Vec<(usize, Word<K>)> {
        match PHASES[state.phase_idx] {
            Phase::SortColumns | Phase::SortColumnsExceptFirst => Vec::new(),
            Phase::Apply(_) => (0..self.m * self.k0)
                .map(|q| (q / self.m, enc_opt(state.grid[q].clone())))
                .collect(),
        }
    }

    fn apply(&self, state: &CsState<K>, _phase: &str, received: &[Word<K>]) -> CsState<K> {
        let mut next = state.clone();
        match PHASES[state.phase_idx] {
            Phase::SortColumns => {
                for c in 0..self.k0 {
                    // Descending with None < Some(_): dummies sink to the
                    // column tail.
                    sort_desc(&mut next.grid[c * self.m..(c + 1) * self.m]);
                }
            }
            Phase::SortColumnsExceptFirst => {
                for c in 1..self.k0 {
                    sort_desc(&mut next.grid[c * self.m..(c + 1) * self.m]);
                }
            }
            Phase::Apply(tf) => {
                let perm = tf.permutation(self.m, self.k0);
                for (q, w) in received.iter().enumerate() {
                    next.grid[perm[q]] = dec_opt(w.clone());
                }
            }
        }
        next.phase_idx += 1;
        next
    }

    fn max_phase_rounds(&self) -> u64 {
        (self.m * self.k0) as u64
    }

    fn output(&self, state: &CsState<K>) -> Vec<Vec<Option<K>>> {
        state.grid.chunks(self.m).map(<[_]>::to_vec).collect()
    }
}

// ---------------------------------------------------------------------------
// Selection as a heal program
// ---------------------------------------------------------------------------

/// §8 filtering selection in all-read form: every processor mirrors all
/// candidate lists; each filtering iteration broadcasts per-role medians
/// and counts, picks the weighted median-of-medians as pivot, broadcasts
/// comparison tallies, and prunes — finishing with a gather of the few
/// survivors.
pub struct SelectProgram<K> {
    input: Vec<Vec<K>>,
    d: u64,
}

/// Mirrored state of a [`SelectProgram`].
#[derive(Clone)]
pub struct SelState<K> {
    lists: Vec<Vec<K>>,
    d: u64,
    stage: SelStage<K>,
}

#[derive(Clone)]
enum SelStage<K> {
    Medians,
    Counts { pivot: K },
    Gather,
    Done { answer: K },
}

impl<K: Key> SelectProgram<K> {
    /// Select the `d`'th largest (1-based) of the multiset union of
    /// `lists`; each list must be non-empty (the paper's `n_i > 0`).
    pub fn new(lists: Vec<Vec<K>>, d: usize) -> Result<Self, NetError> {
        let n: usize = lists.iter().map(Vec::len).sum();
        if d < 1 || d > n {
            return Err(NetError::BadConfig(format!("rank {d} out of 1..={n}")));
        }
        if lists.iter().any(Vec::is_empty) {
            return Err(NetError::BadConfig("paper model assumes n_i > 0".into()));
        }
        Ok(SelectProgram {
            input: lists,
            d: d as u64,
        })
    }

    /// Gather threshold: once this few candidates remain, ship them all.
    fn gather_at(&self) -> usize {
        self.input.len().max(2)
    }

    fn stage_after_prune(&self, lists: &[Vec<K>]) -> SelStage<K> {
        let total: usize = lists.iter().map(Vec::len).sum();
        if total <= self.gather_at() {
            SelStage::Gather
        } else {
            SelStage::Medians
        }
    }
}

/// The `d`'th largest element of a small descending-sorted pool.
fn rank_desc<K: Ord + Clone>(pool: &mut [K], d: u64) -> K {
    sort_desc(pool);
    pool[(d - 1) as usize].clone()
}

impl<K: Key> HealProgram<K> for SelectProgram<K> {
    type State = SelState<K>;
    type Output = K;

    fn roles(&self) -> usize {
        self.input.len()
    }

    fn initial(&self) -> SelState<K> {
        let lists = self.input.clone();
        let stage = self.stage_after_prune(&lists);
        SelState {
            lists,
            d: self.d,
            stage,
        }
    }

    fn next_phase(&self, state: &SelState<K>) -> Option<String> {
        match state.stage {
            SelStage::Medians => Some("sel:medians".to_owned()),
            SelStage::Counts { .. } => Some("sel:counts".to_owned()),
            SelStage::Gather => Some("sel:gather".to_owned()),
            SelStage::Done { .. } => None,
        }
    }

    fn rounds(&self, state: &SelState<K>, _phase: &str) -> Vec<(usize, Word<K>)> {
        match &state.stage {
            SelStage::Medians => (0..state.lists.len())
                .flat_map(|r| {
                    let list = &state.lists[r];
                    let median = (!list.is_empty()).then(|| {
                        let mut pool = list.clone();
                        pool.sort_unstable();
                        pool[pool.len() / 2].clone()
                    });
                    [
                        (r, enc_opt(median)),
                        (r, Word::Ctl(COUNT_TAG | list.len() as u64)),
                    ]
                })
                .collect(),
            SelStage::Counts { pivot } => (0..state.lists.len())
                .map(|r| {
                    let gt = state.lists[r].iter().filter(|x| *x > pivot).count() as u64;
                    let eq = state.lists[r].iter().filter(|x| *x == pivot).count() as u64;
                    debug_assert!(gt <= LOW20 && eq <= LOW20, "tally field overflow");
                    (r, Word::Ctl(CMP_TAG | gt << 20 | eq))
                })
                .collect(),
            SelStage::Gather => (0..state.lists.len())
                .flat_map(|r| {
                    state.lists[r]
                        .iter()
                        .map(move |x| (r, Word::Key(x.clone())))
                })
                .collect(),
            SelStage::Done { .. } => Vec::new(),
        }
    }

    fn apply(&self, state: &SelState<K>, phase: &str, received: &[Word<K>]) -> SelState<K> {
        let mut next = state.clone();
        match phase {
            "sel:medians" => {
                // (median, weight) pairs off the wire; weighted median of
                // medians (descending) is the pivot.
                let mut entries: Vec<(K, u64)> = Vec::new();
                let mut total = 0u64;
                for pair in received.chunks(2) {
                    let median = dec_opt(pair[0].clone());
                    let count = match &pair[1] {
                        Word::Ctl(v) if v & COUNT_TAG != 0 => v & !COUNT_TAG,
                        other => panic!("protocol error: expected count, got {other:?}"),
                    };
                    total += count;
                    if let Some(m) = median {
                        entries.push((m, count));
                    }
                }
                entries.sort_by(|a, b| b.0.cmp(&a.0));
                let half = total.div_ceil(2);
                let mut cum = 0u64;
                let pivot = entries
                    .iter()
                    .find(|(_, w)| {
                        cum += w;
                        cum >= half
                    })
                    .map(|(m, _)| m.clone())
                    .expect("non-empty candidate set always has a median");
                next.stage = SelStage::Counts { pivot };
            }
            "sel:counts" => {
                let SelStage::Counts { pivot } = &state.stage else {
                    panic!("protocol error: counts phase without a pivot")
                };
                let (mut gt, mut eq) = (0u64, 0u64);
                for w in received {
                    match w {
                        Word::Ctl(v) if v & CMP_TAG != 0 => {
                            gt += v >> 20 & LOW20;
                            eq += v & LOW20;
                        }
                        other => panic!("protocol error: expected tally, got {other:?}"),
                    }
                }
                if next.d <= gt {
                    for list in &mut next.lists {
                        list.retain(|x| x > pivot);
                    }
                    next.stage = self.stage_after_prune(&next.lists);
                } else if next.d <= gt + eq {
                    next.stage = SelStage::Done {
                        answer: pivot.clone(),
                    };
                } else {
                    for list in &mut next.lists {
                        list.retain(|x| x < pivot);
                    }
                    next.d -= gt + eq;
                    next.stage = self.stage_after_prune(&next.lists);
                }
            }
            "sel:gather" => {
                let mut pool: Vec<K> = received
                    .iter()
                    .map(|w| match w {
                        Word::Key(k) => k.clone(),
                        other => panic!("protocol error: expected key, got {other:?}"),
                    })
                    .collect();
                let answer = rank_desc(&mut pool, next.d);
                next.stage = SelStage::Done { answer };
            }
            other => panic!("protocol error: unknown phase {other}"),
        }
        next
    }

    fn max_phase_rounds(&self) -> u64 {
        // Medians: 2 rounds per role; counts: 1; gather: ≤ gather_at ≤ 2p.
        2 * self.input.len() as u64
    }

    fn output(&self, state: &SelState<K>) -> K {
        match &state.stage {
            SelStage::Done { answer } => answer.clone(),
            _ => panic!("protocol error: output taken before Done"),
        }
    }
}

// ---------------------------------------------------------------------------
// Static schedule emission (per-epoch verification feeds mcb-check)
// ---------------------------------------------------------------------------

/// Emit the **logical** all-read schedule of `prog` on `MCB(p, k)` with
/// roles dealt over `live_procs`: per round one write on channel
/// `t mod k` and a read by every live processor. Feeding this to
/// `mcb_check::verify_degraded` with the epoch's dead channels proves the
/// epoch's §2 remap collision-free and within the lemma's dilation bound
/// (`verify_epochs` batches that across all epochs of a run).
///
/// The state evolution uses the perfect-wire replay, so the emitted
/// schedule is exactly the fault-free round structure.
pub fn heal_schedule<K: Key, P: HealProgram<K>>(
    prog: &P,
    p: usize,
    k: usize,
    live_procs: &[usize],
) -> mcb_check::CheckedSchedule {
    assert!(!live_procs.is_empty(), "need at least one live processor");
    let mut b = mcb_check::ScheduleBuilder::new("self-heal", p, k);
    let mut state = prog.initial();
    while let Some(phase) = prog.next_phase(&state) {
        let rounds = prog.rounds(&state, &phase);
        for (t, (role, _)) in rounds.iter().enumerate() {
            let chan = t % k;
            b.begin_cycle();
            b.write(live_procs[role % live_procs.len()], chan);
            for &pr in live_procs {
                b.read(pr, chan);
            }
        }
        let received: Vec<Word<K>> = rounds.into_iter().map(|(_, w)| w).collect();
        state = prog.apply(&state, &phase, &received);
    }
    b.finish()
}

// ---------------------------------------------------------------------------
// Drivers
// ---------------------------------------------------------------------------

/// Builder for self-healing (no-oracle) runs of the paper's algorithms.
///
/// Unlike [`Resilient`](crate::resilient::Resilient), the attached
/// [`FaultPlan`] is **never consulted by the protocol** — it only drives
/// the injection side. Detection is purely wire-level, which is why plans
/// should avoid stalls (see
/// [`ChaosOpts::unplanned`](mcb_net::ChaosOpts::unplanned)): a stalled
/// processor misses a round everyone else observes and desynchronizes the
/// common knowledge (surfacing as
/// [`EpochDiverged`](NetError::EpochDiverged)).
///
/// ```
/// use mcb_algos::heal::SelfHealing;
/// use mcb_net::{ChanId, FaultPlan, ProcId};
///
/// // Channel 1 dies unannounced; processor 2 crashes. The sort still
/// // returns the full output — survivors adopt the crashed column.
/// let (m, k) = (6, 3);
/// let cols: Vec<Vec<Option<u64>>> = (0..k)
///     .map(|c| (0..m).map(|r| Some(((c * m + r) as u64 * 37) % 97)).collect())
///     .collect();
/// let plan = FaultPlan::new(k, k)
///     .kill_channel(ChanId(1), 7)
///     .crash_proc(ProcId(2), 11);
/// let out = SelfHealing::new(plan).sort_columns(m, cols).unwrap();
/// let lin: Vec<u64> = out.columns.iter().flatten().map(|x| x.unwrap()).collect();
/// assert!(lin.windows(2).all(|w| w[0] >= w[1]), "descending, no holes");
/// assert!(!out.epochs.is_empty(), "faults forced reconfigurations");
/// assert!(out.metrics.cycles <= out.cycle_bound);
/// ```
#[derive(Debug, Clone)]
pub struct SelfHealing {
    plan: FaultPlan,
    backend: Backend,
    opts: EpochOpts,
    record_trace: bool,
    monitor: Option<RunMonitor>,
    stall_window: Option<u64>,
    cycle_budget: Option<u64>,
}

/// Outcome of [`SelfHealing::sort_columns`].
#[derive(Debug, Clone)]
pub struct HealedSort<K> {
    /// The sorted columns (descending in column-major order, dummies at
    /// the tail) — **complete**, even when processors crashed.
    pub columns: Vec<Vec<Option<K>>>,
    /// Network costs; `metrics.cycles` includes detection, censuses, and
    /// replays.
    pub metrics: Metrics,
    /// The plan's summary (seed and planned-fault counts).
    pub fault_summary: Option<FaultSummary>,
    /// The committed reconfigurations, oldest first (identical on every
    /// survivor).
    pub epochs: Vec<EpochRecord>,
    /// Wire trace, when [`SelfHealing::record_trace`] was enabled.
    pub trace: Option<Trace<Word<K>>>,
    /// Cycles the same program takes fault-free (`L`).
    pub fault_free_cycles: u64,
    /// The healing cost contract `L + R × (W + C)` — see the
    /// [module docs](self); `metrics.cycles` never exceeds it.
    pub cycle_bound: u64,
}

/// Outcome of [`SelfHealing::select_rank`].
#[derive(Debug, Clone)]
pub struct HealedSelect<K> {
    /// The selected element `N[d]`.
    pub value: K,
    /// Network costs of the healed run.
    pub metrics: Metrics,
    /// The plan's summary.
    pub fault_summary: Option<FaultSummary>,
    /// The committed reconfigurations, oldest first.
    pub epochs: Vec<EpochRecord>,
    /// Wire trace, when [`SelfHealing::record_trace`] was enabled.
    pub trace: Option<Trace<Word<K>>>,
    /// Cycles the same program takes fault-free (`L`).
    pub fault_free_cycles: u64,
    /// The healing cost contract `L + R × (W + C)`.
    pub cycle_bound: u64,
}

impl SelfHealing {
    /// Self-healing runs under `plan`, default census/epoch budgets,
    /// automatic backend selection.
    pub fn new(plan: FaultPlan) -> Self {
        SelfHealing {
            plan,
            backend: Backend::Auto,
            opts: EpochOpts::default(),
            record_trace: false,
            monitor: None,
            stall_window: None,
            cycle_budget: None,
        }
    }

    /// Select the execution backend (healed runs are backend-identical
    /// like everything else, reconfiguration log included).
    pub fn backend(mut self, backend: Backend) -> Self {
        self.backend = backend;
        self
    }

    /// Extra census sweeps per reconfiguration (see
    /// [`EpochOpts::census_retries`]).
    pub fn census_retries(mut self, retries: u32) -> Self {
        self.opts.census_retries = retries;
        self
    }

    /// Cap on reconfigurations per run (see [`EpochOpts::max_epochs`]).
    pub fn max_epochs(mut self, max: u32) -> Self {
        self.opts.max_epochs = max;
        self
    }

    /// Record a wire trace (for timelines; off by default).
    pub fn record_trace(mut self, yes: bool) -> Self {
        self.record_trace = yes;
        self
    }

    /// Attach a live [`RunMonitor`]: the handle can be snapshotted from
    /// another thread while the healed run is in flight (see
    /// [`mcb_net::monitor`]).
    pub fn monitor(mut self, mon: &RunMonitor) -> Self {
        self.monitor = Some(mon.clone());
        self
    }

    /// Surface the engine's livelock watchdog
    /// ([`Network::stall_window`](mcb_net::Network::stall_window)) on the
    /// builder: a healed run in which `window` consecutive cycles deliver
    /// no message and finish no processor fails with
    /// [`NetError::Stalled`] instead of spinning. Long-running callers
    /// (the `mcb-serve` batcher) set this so a pathological plan turns
    /// into a typed error, never a hang.
    pub fn stall_window(mut self, window: u64) -> Self {
        self.stall_window = Some(window);
        self
    }

    /// Surface the engine's runaway-protection cycle budget
    /// ([`Network::cycle_budget`](mcb_net::Network::cycle_budget)) on the
    /// builder: exceeding it fails with
    /// [`mcb_net::NetError::CycleBudgetExhausted`].
    pub fn cycle_budget(mut self, budget: u64) -> Self {
        self.cycle_budget = Some(budget);
        self
    }

    /// Run an arbitrary [`HealProgram`] on `MCB(p, k)` under the plan —
    /// the generic engine behind [`sort_columns`](Self::sort_columns) and
    /// [`select_rank`](Self::select_rank), public so external callers
    /// (the `mcb-serve` batcher) can drive their own programs through
    /// the same self-heal stack.
    pub fn run_program<K: Key, P: HealProgram<K>>(
        &self,
        p: usize,
        k: usize,
        prog: P,
    ) -> Result<HealedRun<K, P::Output>, NetError>
    where
        P::Output: Clone + Send + 'static,
    {
        self.run_healed(p, k, prog)
    }

    /// Run a [`HealProgram`] on `MCB(p, k)` under the plan, returning the
    /// first survivor's output and reconfiguration log plus the run
    /// report's pieces. The generic engine behind both drivers.
    fn run_healed<K: Key, P: HealProgram<K>>(
        &self,
        p: usize,
        k: usize,
        prog: P,
    ) -> Result<HealedRun<K, P::Output>, NetError>
    where
        P::Output: Clone + Send + 'static,
    {
        let (_, fault_free_cycles) = run_program_offline(&prog);
        let opts = self.opts;
        let mut net = Network::new(p, k)
            .backend(self.backend)
            .framing(true)
            .record_trace(self.record_trace)
            .fault_plan(self.plan.clone());
        if let Some(window) = self.stall_window {
            net = net.stall_window(window);
        }
        if let Some(budget) = self.cycle_budget {
            net = net.cycle_budget(budget);
        }
        if let Some(mon) = &self.monitor {
            net = net.monitor(mon);
        }
        let report = net.run(move |ctx| {
            let mut ectx = EpochCtx::new(p, k, opts);
            run_program_in(ctx, &mut ectx, &prog).map(|out| (out, ectx.into_records()))
        })?;
        let (output, epochs) = report
            .results
            .iter()
            .flatten()
            .flatten()
            .next()
            .cloned()
            .ok_or_else(|| {
                NetError::BadConfig("no processor survived to carry the output".into())
            })?;
        Ok(HealedRun {
            output,
            epochs,
            metrics: report.metrics,
            fault_summary: report.fault_summary,
            trace: report.trace,
            fault_free_cycles,
        })
    }

    /// The cost contract `L + R × (W + C)` for a finished run on
    /// `MCB(p, k)`: `l` fault-free cycles plus, per committed
    /// reconfiguration, at most one replayed phase window of `max_rounds`
    /// rounds and one census sweep (see the [module docs](self)).
    pub fn bound(&self, p: usize, k: usize, l: u64, max_rounds: u64, reconfigs: u64) -> u64 {
        l + reconfigs * (max_rounds + EpochCtx::census_cost(p, k, &self.opts))
    }

    /// Sort `cols.len()` columns of padded length `m` (one per processor,
    /// `p = k = cols.len()`, the §5.2 base case) with no fault oracle.
    /// The plan must be shaped for `MCB(cols.len(), cols.len())`.
    pub fn sort_columns<K: Key>(
        &self,
        m: usize,
        cols: Vec<Vec<Option<K>>>,
    ) -> Result<HealedSort<K>, NetError> {
        let k0 = cols.len();
        let prog = ColumnsortProgram::new(m, &cols)?;
        let max_rounds = HealProgram::<K>::max_phase_rounds(&prog);
        let run = self.run_healed(k0, k0, prog)?;
        let cycle_bound = self.bound(
            k0,
            k0,
            run.fault_free_cycles,
            max_rounds,
            run.epochs.len() as u64,
        );
        Ok(HealedSort {
            columns: run.output,
            metrics: run.metrics,
            fault_summary: run.fault_summary,
            epochs: run.epochs,
            trace: run.trace,
            fault_free_cycles: run.fault_free_cycles,
            cycle_bound,
        })
    }

    /// Select the `d`'th largest element (1-based) of `lists` on
    /// `MCB(lists.len(), k)` with no fault oracle — same contract as
    /// [`select_rank`](crate::select::select_rank), but crash-surviving.
    /// The plan must be shaped for `MCB(lists.len(), k)`.
    pub fn select_rank<K: Key>(
        &self,
        k: usize,
        lists: Vec<Vec<K>>,
        d: usize,
    ) -> Result<HealedSelect<K>, NetError> {
        let p = lists.len();
        let prog = SelectProgram::new(lists, d)?;
        let max_rounds = HealProgram::<K>::max_phase_rounds(&prog);
        let run = self.run_healed(p, k, prog)?;
        let cycle_bound = self.bound(
            p,
            k,
            run.fault_free_cycles,
            max_rounds,
            run.epochs.len() as u64,
        );
        Ok(HealedSelect {
            value: run.output,
            metrics: run.metrics,
            fault_summary: run.fault_summary,
            epochs: run.epochs,
            trace: run.trace,
            fault_free_cycles: run.fault_free_cycles,
            cycle_bound,
        })
    }
}

/// Outcome of [`SelfHealing::run_program`]: the generic carrier behind
/// [`HealedSort`] and [`HealedSelect`].
#[derive(Debug, Clone)]
pub struct HealedRun<K, O> {
    /// The program's [`output`](HealProgram::output), taken from the
    /// first survivor (identical on all of them).
    pub output: O,
    /// The committed reconfigurations, oldest first.
    pub epochs: Vec<EpochRecord>,
    /// Network costs; `metrics.cycles` includes detection, censuses, and
    /// replays.
    pub metrics: Metrics,
    /// The plan's summary (seed and planned-fault counts).
    pub fault_summary: Option<FaultSummary>,
    /// Wire trace, when [`SelfHealing::record_trace`] was enabled.
    pub trace: Option<Trace<Word<K>>>,
    /// Cycles the same program takes fault-free (`L`).
    pub fault_free_cycles: u64,
}

#[cfg(test)]
mod tests {
    use super::*;

    fn cols(m: usize, k: usize, salt: u64) -> Vec<Vec<Option<u64>>> {
        (0..k)
            .map(|c| {
                (0..m)
                    .map(|r| {
                        Some(((c * m + r) as u64 + salt).wrapping_mul(0x9e37_79b9_7f4a_7c15) % 2003)
                    })
                    .collect()
            })
            .collect()
    }

    fn flat_sorted_desc(cols: &[Vec<Option<u64>>]) -> Vec<u64> {
        let mut v: Vec<u64> = cols.iter().flatten().filter_map(|x| *x).collect();
        v.sort_unstable_by(|a, b| b.cmp(a));
        v
    }

    #[test]
    fn word_ping_round_trips_and_rejects_data() {
        let w = <Word<u64> as ControlCodec>::ping(7, 3);
        assert_eq!(w.decode_ping(), Some((7, 3)));
        assert_eq!(Word::<u64>::Key(7).decode_ping(), None);
        assert_eq!(Word::<u64>::Ctl(DUMMY).decode_ping(), None);
        assert_eq!(Word::<u64>::Ctl(COUNT_TAG | 5).decode_ping(), None);
        assert_eq!(Word::<u64>::Ctl(CMP_TAG | 9 << 20 | 2).decode_ping(), None);
    }

    #[test]
    fn offline_columnsort_matches_reference() {
        let (m, k) = (12, 4);
        let input = cols(m, k, 1);
        let prog = ColumnsortProgram::new(m, &input).unwrap();
        let (sorted, l) = run_program_offline(&prog);
        let lin: Vec<u64> = sorted.iter().flatten().map(|x| x.unwrap()).collect();
        assert_eq!(lin, flat_sorted_desc(&input));
        // Four transformation phases, m·k rounds each.
        assert_eq!(l, 4 * (m * k) as u64);
    }

    #[test]
    fn offline_columnsort_keeps_dummies_at_tail() {
        let (m, k) = (6, 2);
        let mut input = cols(m, k, 2);
        input[0][3] = None;
        input[1][5] = None;
        let prog = ColumnsortProgram::new(m, &input).unwrap();
        let (sorted, _) = run_program_offline(&prog);
        let lin: Vec<Option<u64>> = sorted.into_iter().flatten().collect();
        let reals = lin.iter().filter(|x| x.is_some()).count();
        assert!(lin[..reals].iter().all(Option::is_some));
        assert!(lin[reals..].iter().all(Option::is_none));
        let vals: Vec<u64> = lin[..reals].iter().map(|x| x.unwrap()).collect();
        assert_eq!(vals, flat_sorted_desc(&input));
    }

    #[test]
    fn offline_selection_matches_sort() {
        let lists: Vec<Vec<u64>> = vec![vec![5, 1, 9], vec![3, 7], vec![2, 8, 6, 4]];
        let mut all: Vec<u64> = lists.iter().flatten().copied().collect();
        all.sort_unstable_by(|a, b| b.cmp(a));
        for d in 1..=all.len() {
            let prog = SelectProgram::new(lists.clone(), d).unwrap();
            let (got, _) = run_program_offline(&prog);
            assert_eq!(got, all[d - 1], "rank {d}");
        }
    }

    #[test]
    fn healed_run_without_faults_matches_offline_cost() {
        let (m, k) = (6, 2);
        let input = cols(m, k, 3);
        let out = SelfHealing::new(FaultPlan::new(k, k))
            .sort_columns(m, input.clone())
            .unwrap();
        assert!(out.epochs.is_empty());
        assert_eq!(out.metrics.cycles, out.fault_free_cycles);
        let lin: Vec<u64> = out.columns.iter().flatten().map(|x| x.unwrap()).collect();
        assert_eq!(lin, flat_sorted_desc(&input));
    }

    #[test]
    fn bad_shapes_surface_as_bad_config() {
        let err = SelfHealing::new(FaultPlan::new(4, 4))
            .sort_columns(8, cols(8, 4, 0)) // m = 8 < k(k-1) = 12
            .unwrap_err();
        assert!(matches!(err, NetError::BadConfig(_)));
        let err = SelfHealing::new(FaultPlan::new(2, 2))
            .select_rank(2, vec![vec![1u64], vec![]], 1)
            .unwrap_err();
        assert!(matches!(err, NetError::BadConfig(_)));
    }

    #[test]
    fn stalled_healed_run_surfaces_stalled_not_livelock() {
        use mcb_net::ChanId;
        let (m, k) = (6, 2);
        // Drop every channel's slot for longer than any census could
        // need, and make the census budget enormous: without a watchdog
        // the epoch machinery sweeps silence until `census_retries` runs
        // out. The builder's `stall_window` turns that grind into a
        // typed [`NetError::Stalled`] within a handful of cycles.
        let mut plan = FaultPlan::new(k, k);
        for cycle in 0..4096 {
            for chan in 0..k as u32 {
                plan = plan.drop_message(cycle, ChanId(chan));
            }
        }
        let err = SelfHealing::new(plan)
            .census_retries(100_000)
            .stall_window(8)
            .sort_columns(m, cols(m, k, 5))
            .unwrap_err();
        assert!(matches!(err, NetError::Stalled { .. }), "got {err:?}");
    }

    #[test]
    fn heal_schedule_is_collision_free_and_verifies() {
        let (m, k) = (6, 2);
        let prog = ColumnsortProgram::new(m, &cols(m, k, 4)).unwrap();
        let sched = heal_schedule(&prog, k, k, &[0, 1]);
        let report = mcb_check::verify(&sched, &mcb_check::Bounds::none());
        assert!(report.is_ok(), "{report}");
        assert_eq!(sched.cycle_count(), 4 * (m * k) as u64);
    }
}
