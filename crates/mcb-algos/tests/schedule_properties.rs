//! Randomized property tests for the transformation scheduler.
//!
//! `TransformSchedule` rests on a bipartite edge coloring (König): every
//! cross-column move gets a cycle in which its source column is the only
//! writer on its channel and the destination column the only reader of it.
//! The lattice sweep checks small shapes exhaustively; here `mcb-rng`
//! drives shapes and permutations well beyond the lattice bound, and each
//! sampled schedule is pushed through `mcb-check`'s full verifier —
//! collision-freedom, read-validity, *and* the data-flow permutation
//! proof, which would catch a move dropped or duplicated by a miscolored
//! edge.

use mcb_algos::columnsort::ALL_TRANSFORMS;
use mcb_algos::networks::{batcher, batcher_size_pow2, NetworkKind, NetworkSpec};
use mcb_algos::static_schedule::{PermutationSpec, StaticSchedule, TransformSpec};
use mcb_rng::Rng64;

#[test]
fn fixed_transforms_verify_on_random_shapes() {
    let mut rng = Rng64::seed_from_u64(0xC0105);
    for _ in 0..24 {
        // Shapes past what the lattice sweep enumerates: m up to ~800.
        let k = rng.random_range(1..13);
        let mult = rng.random_range(1..7);
        let m = (k * (k.max(2) - 1)).max(1) * mult; // legal: k | m, m >= k(k-1)
        for tf in ALL_TRANSFORMS {
            let spec = TransformSpec {
                transform: tf,
                m,
                k,
            };
            let report = spec.check();
            assert!(report.is_ok(), "{tf:?} m={m} k={k}:\n{report}");
        }
    }
}

#[test]
fn random_permutations_get_proper_colorings() {
    let mut rng = Rng64::seed_from_u64(0xBEEF);
    for round in 0..60 {
        let k = rng.random_range(1..17);
        let m = rng.random_range(1..33);
        let n = m * k;
        let mut perm: Vec<usize> = (0..n).collect();
        rng.shuffle(&mut perm);
        let spec = PermutationSpec {
            perm: perm.clone(),
            m,
            k,
        };
        let report = spec.check();
        assert!(
            report.is_ok(),
            "round {round}: random permutation m={m} k={k}:\n{report}"
        );
        // The coloring is tight: no more cycles than the densest
        // column-to-column traffic requires... within the König bound m.
        assert!(report.stats.cycles <= m as u64);
    }
}

#[test]
fn adversarial_permutations_verify() {
    // Worst-case traffic patterns the random sampler is unlikely to hit.
    for (m, k) in [(8usize, 8usize), (16, 4), (3, 9), (1, 16)] {
        let n = m * k;
        // Full reversal: position q -> n-1-q (dense all-to-all traffic).
        let reversal: Vec<usize> = (0..n).map(|q| n - 1 - q).collect();
        // Column rotation: everything shifts one column over (maximally
        // unbalanced per-pair load, m messages on every edge).
        let rotate: Vec<usize> = (0..n).map(|q| (q + m) % n).collect();
        // Identity: no wire traffic at all, only local moves.
        let identity: Vec<usize> = (0..n).collect();
        for (name, perm) in [
            ("reversal", reversal),
            ("rotate", rotate),
            ("identity", identity),
        ] {
            let spec = PermutationSpec { perm, m, k };
            let report = spec.check();
            assert!(report.is_ok(), "{name} m={m} k={k}:\n{report}");
        }
        let identity_report = PermutationSpec {
            perm: (0..n).collect(),
            m,
            k,
        }
        .check();
        assert_eq!(
            identity_report.stats.messages_max, 0,
            "identity sends nothing"
        );
    }
}

/// Packed comparator layers never exceed the channel budget: every cycle
/// of every compiled network uses each channel at most once and at most
/// `k` channels total (the structural verifier proves the former; this
/// checks the packer directly, shape by shape, across random specs).
#[test]
fn network_packing_respects_channel_budget() {
    let mut rng = Rng64::seed_from_u64(0x9A7);
    for round in 0..40 {
        let p = rng.random_range(2..33);
        let k = rng.random_range(1..17);
        let kind = match rng.random_range(0..3u64) {
            0 => NetworkKind::Batcher,
            1 if p <= 12 => NetworkKind::BoseNelson,
            _ => NetworkKind::Multiway {
                group: rng.random_range(2..13).min(p),
            },
        };
        let spec = NetworkSpec { kind, p, k };
        let net = spec.compile();
        for (ci, cyc) in net.schedule.cycles.iter().enumerate() {
            let mut used = vec![false; k];
            let mut writes = 0usize;
            for intent in &cyc.intents {
                if let Some(w) = intent.write {
                    assert!(
                        w.chan < k && !used[w.chan],
                        "round {round} {kind:?} p={p} k={k}: cycle {ci} reuses channel {}",
                        w.chan
                    );
                    used[w.chan] = true;
                    writes += 1;
                }
            }
            assert!(writes <= k, "cycle {ci} schedules {writes} > k broadcasts");
        }
    }
}

/// Dependency layers are preserved by the packing: a comparator in layer
/// `l+1` never completes before one it depends on in layer `l` — in
/// exchange terms, every pair of exchanges sharing a line completes in
/// comparator-index order.
#[test]
fn network_packing_preserves_layer_order() {
    for (kind, p, k) in [
        (NetworkKind::Batcher, 16usize, 2usize),
        (NetworkKind::Batcher, 13, 5),
        (NetworkKind::BoseNelson, 12, 1),
        (NetworkKind::Multiway { group: 4 }, 22, 8),
    ] {
        let net = NetworkSpec { kind, p, k }.compile();
        let mut last_done: Vec<Option<usize>> = vec![None; p];
        for ex in &net.exchanges {
            let done = ex.completion_cycle();
            for line in [ex.lo, ex.hi] {
                if let Some(prev) = last_done[line] {
                    assert!(
                        prev < done,
                        "{kind:?} p={p} k={k}: line {line} completes {done} <= {prev}"
                    );
                }
                last_done[line] = Some(done);
            }
        }
    }
}

/// Batcher's generator matches the closed-form comparator count
/// `(t² − t + 4)·2^t/4 − 1` on powers of two, and the merger recursion
/// obeys `M(n, n) = 2·M(n/2, n/2) + n − 1` implicitly through it.
#[test]
fn batcher_sizes_match_closed_form() {
    for t in 0..=7u32 {
        let p = 1usize << t;
        assert_eq!(
            batcher(p).len() as u64,
            batcher_size_pow2(t),
            "batcher size at p={p}"
        );
    }
    // Spot-check the compiled message bound agrees: 2 broadcasts per
    // comparator, exactly.
    let spec = NetworkSpec {
        kind: NetworkKind::Batcher,
        p: 32,
        k: 4,
    };
    let report = spec.check();
    assert!(report.is_ok(), "{report}");
    assert_eq!(report.stats.messages_max, 2 * batcher_size_pow2(5));
}
