//! Randomized property tests for the transformation scheduler.
//!
//! `TransformSchedule` rests on a bipartite edge coloring (König): every
//! cross-column move gets a cycle in which its source column is the only
//! writer on its channel and the destination column the only reader of it.
//! The lattice sweep checks small shapes exhaustively; here `mcb-rng`
//! drives shapes and permutations well beyond the lattice bound, and each
//! sampled schedule is pushed through `mcb-check`'s full verifier —
//! collision-freedom, read-validity, *and* the data-flow permutation
//! proof, which would catch a move dropped or duplicated by a miscolored
//! edge.

use mcb_algos::columnsort::ALL_TRANSFORMS;
use mcb_algos::static_schedule::{PermutationSpec, StaticSchedule, TransformSpec};
use mcb_rng::Rng64;

#[test]
fn fixed_transforms_verify_on_random_shapes() {
    let mut rng = Rng64::seed_from_u64(0xC0105);
    for _ in 0..24 {
        // Shapes past what the lattice sweep enumerates: m up to ~800.
        let k = rng.random_range(1..13);
        let mult = rng.random_range(1..7);
        let m = (k * (k.max(2) - 1)).max(1) * mult; // legal: k | m, m >= k(k-1)
        for tf in ALL_TRANSFORMS {
            let spec = TransformSpec {
                transform: tf,
                m,
                k,
            };
            let report = spec.check();
            assert!(report.is_ok(), "{tf:?} m={m} k={k}:\n{report}");
        }
    }
}

#[test]
fn random_permutations_get_proper_colorings() {
    let mut rng = Rng64::seed_from_u64(0xBEEF);
    for round in 0..60 {
        let k = rng.random_range(1..17);
        let m = rng.random_range(1..33);
        let n = m * k;
        let mut perm: Vec<usize> = (0..n).collect();
        rng.shuffle(&mut perm);
        let spec = PermutationSpec {
            perm: perm.clone(),
            m,
            k,
        };
        let report = spec.check();
        assert!(
            report.is_ok(),
            "round {round}: random permutation m={m} k={k}:\n{report}"
        );
        // The coloring is tight: no more cycles than the densest
        // column-to-column traffic requires... within the König bound m.
        assert!(report.stats.cycles <= m as u64);
    }
}

#[test]
fn adversarial_permutations_verify() {
    // Worst-case traffic patterns the random sampler is unlikely to hit.
    for (m, k) in [(8usize, 8usize), (16, 4), (3, 9), (1, 16)] {
        let n = m * k;
        // Full reversal: position q -> n-1-q (dense all-to-all traffic).
        let reversal: Vec<usize> = (0..n).map(|q| n - 1 - q).collect();
        // Column rotation: everything shifts one column over (maximally
        // unbalanced per-pair load, m messages on every edge).
        let rotate: Vec<usize> = (0..n).map(|q| (q + m) % n).collect();
        // Identity: no wire traffic at all, only local moves.
        let identity: Vec<usize> = (0..n).collect();
        for (name, perm) in [
            ("reversal", reversal),
            ("rotate", rotate),
            ("identity", identity),
        ] {
            let spec = PermutationSpec { perm, m, k };
            let report = spec.check();
            assert!(report.is_ok(), "{name} m={m} k={k}:\n{report}");
        }
        let identity_report = PermutationSpec {
            perm: (0..n).collect(),
            m,
            k,
        }
        .check();
        assert_eq!(
            identity_report.stats.messages_max, 0,
            "identity sends nothing"
        );
    }
}
