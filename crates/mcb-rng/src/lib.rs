//! # mcb-rng — a small deterministic PRNG
//!
//! The workspace builds in fully offline environments, so it vendors no
//! external crates. Workload generation, property tests and benches all
//! need seeded pseudo-randomness; this crate provides one shared,
//! dependency-free generator so every experiment stays exactly
//! reproducible from a `u64` seed.
//!
//! The core is SplitMix64 (Steele, Lea & Flood, *Fast Splittable
//! Pseudorandom Number Generators*, OOPSLA 2014) — a tiny, statistically
//! solid 64-bit mixer. It is **not** cryptographic; it exists to make
//! experiments deterministic, not to make anything secret.
//!
//! ```
//! use mcb_rng::Rng64;
//!
//! let mut rng = Rng64::seed_from_u64(7);
//! let die = rng.random_range(1u64..7);
//! assert!((1..7).contains(&die));
//!
//! let mut deck: Vec<u32> = (0..52).collect();
//! rng.shuffle(&mut deck);
//! assert_eq!(deck.len(), 52);
//! ```

#![warn(missing_docs)]

use std::ops::Range;

/// A seeded SplitMix64 pseudo-random generator.
///
/// The same seed always yields the same stream, on every platform: the
/// whole experiment suite keys off this guarantee.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct Rng64 {
    state: u64,
}

impl Rng64 {
    /// Generator seeded with `seed`. Distinct seeds give (practically)
    /// uncorrelated streams.
    pub fn seed_from_u64(seed: u64) -> Self {
        Rng64 { state: seed }
    }

    /// Next raw 64-bit output.
    pub fn next_u64(&mut self) -> u64 {
        // SplitMix64: add the Weyl constant, then mix.
        self.state = self.state.wrapping_add(0x9E37_79B9_7F4A_7C15);
        let mut z = self.state;
        z = (z ^ (z >> 30)).wrapping_mul(0xBF58_476D_1CE4_E5B9);
        z = (z ^ (z >> 27)).wrapping_mul(0x94D0_49BB_1331_11EB);
        z ^ (z >> 31)
    }

    /// Uniform sample from `range` (half-open). Panics on an empty range.
    ///
    /// Uses rejection sampling from the top bits, so the distribution is
    /// exactly uniform (no modulo bias).
    pub fn random_range<T: SampleRange>(&mut self, range: Range<T>) -> T {
        T::sample(self, range)
    }

    /// Uniform `u64` in `[0, bound)`; `bound` must be nonzero.
    fn below(&mut self, bound: u64) -> u64 {
        assert!(bound > 0, "cannot sample an empty range");
        if bound.is_power_of_two() {
            return self.next_u64() & (bound - 1);
        }
        // Reject into the largest multiple of `bound`; expected < 2 draws.
        let zone = u64::MAX - (u64::MAX % bound);
        loop {
            let v = self.next_u64();
            if v < zone {
                return v % bound;
            }
        }
    }

    /// `true` with probability `p` (clamped to `[0, 1]`).
    pub fn random_bool(&mut self, p: f64) -> bool {
        (self.next_u64() >> 11) as f64 * (1.0 / (1u64 << 53) as f64) < p
    }

    /// Fisher–Yates shuffle of `slice` in place.
    pub fn shuffle<T>(&mut self, slice: &mut [T]) {
        for i in (1..slice.len()).rev() {
            let j = self.below(i as u64 + 1) as usize;
            slice.swap(i, j);
        }
    }

    /// `len` raw draws, as a vector. Convenience for randomized tests.
    pub fn vec_u64(&mut self, len: usize) -> Vec<u64> {
        (0..len).map(|_| self.next_u64()).collect()
    }
}

/// Types [`Rng64::random_range`] can sample. Implemented for the integer
/// types the workspace actually uses.
pub trait SampleRange: Sized {
    /// Uniform sample from the half-open `range`.
    fn sample(rng: &mut Rng64, range: Range<Self>) -> Self;
}

macro_rules! impl_sample {
    ($($t:ty),*) => {$(
        impl SampleRange for $t {
            fn sample(rng: &mut Rng64, range: Range<Self>) -> Self {
                assert!(range.start < range.end, "cannot sample an empty range");
                let span = (range.end - range.start) as u64;
                range.start + rng.below(span) as $t
            }
        }
    )*};
}

impl_sample!(u64, u32, usize);

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn deterministic_per_seed() {
        let a: Vec<u64> = Rng64::seed_from_u64(1).vec_u64(16);
        let b: Vec<u64> = Rng64::seed_from_u64(1).vec_u64(16);
        let c: Vec<u64> = Rng64::seed_from_u64(2).vec_u64(16);
        assert_eq!(a, b);
        assert_ne!(a, c);
    }

    #[test]
    fn range_stays_in_bounds() {
        let mut rng = Rng64::seed_from_u64(3);
        for _ in 0..10_000 {
            let v = rng.random_range(10u64..17);
            assert!((10..17).contains(&v));
            let u = rng.random_range(0usize..5);
            assert!(u < 5);
        }
    }

    #[test]
    fn range_hits_every_value() {
        let mut rng = Rng64::seed_from_u64(4);
        let mut seen = [false; 7];
        for _ in 0..1000 {
            seen[rng.random_range(0usize..7)] = true;
        }
        assert!(seen.iter().all(|&s| s));
    }

    #[test]
    #[should_panic(expected = "empty range")]
    fn empty_range_panics() {
        Rng64::seed_from_u64(0).random_range(5u64..5);
    }

    #[test]
    fn shuffle_is_a_permutation() {
        let mut rng = Rng64::seed_from_u64(5);
        let mut v: Vec<u64> = (0..100).collect();
        rng.shuffle(&mut v);
        let mut sorted = v.clone();
        sorted.sort_unstable();
        assert_eq!(sorted, (0..100).collect::<Vec<u64>>());
        assert_ne!(v, sorted, "a 100-element shuffle should move something");
    }

    #[test]
    fn bool_probability_roughly_respected() {
        let mut rng = Rng64::seed_from_u64(6);
        let hits = (0..10_000).filter(|_| rng.random_bool(0.25)).count();
        assert!((2000..3000).contains(&hits), "got {hits}");
    }
}
