//! Distributed input sets.
//!
//! The paper's input is "a collection `N` of elements distributed
//! arbitrarily among the processors" (§3): processor `P_i` holds the subset
//! `N_i`, with `|N| = n`, `|N_i| = n_i > 0` and `n >= p`. A [`Placement`]
//! captures exactly that: one list of keys per processor.
//!
//! Keys are `u64` and are assumed **distinct** (the paper's w.l.o.g.; see
//! [`disambiguate`](crate::values::disambiguate) for the lexicographic
//! tie-breaking construction that justifies it).
//!
//! All ordering conventions follow the paper: `N[1]` is the **largest**
//! element, and sorting moves the largest elements to `P_1` (descending
//! order by processor and within each processor).

/// A distribution of `n` distinct keys over `p` processors.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct Placement {
    lists: Vec<Vec<u64>>,
}

impl Placement {
    /// Wrap per-processor lists. Panics if any processor is empty or the
    /// placement has no processors (the paper assumes `n_i > 0`).
    pub fn new(lists: Vec<Vec<u64>>) -> Self {
        assert!(!lists.is_empty(), "placement needs at least one processor");
        assert!(
            lists.iter().all(|l| !l.is_empty()),
            "paper model assumes n_i > 0 for every processor"
        );
        Placement { lists }
    }

    /// Number of processors `p`.
    pub fn p(&self) -> usize {
        self.lists.len()
    }

    /// Total number of elements `n`.
    pub fn n(&self) -> usize {
        self.lists.iter().map(Vec::len).sum()
    }

    /// The per-processor cardinalities `n_1 .. n_p`.
    pub fn sizes(&self) -> Vec<usize> {
        self.lists.iter().map(Vec::len).collect()
    }

    /// `n_max`: the largest `n_i`.
    pub fn n_max(&self) -> usize {
        self.lists.iter().map(Vec::len).max().unwrap_or(0)
    }

    /// `n_max2`: the second largest `n_i` (equal to `n_max` when two
    /// processors tie for the largest).
    pub fn n_max2(&self) -> usize {
        let mut sizes = self.sizes();
        sizes.sort_unstable_by(|a, b| b.cmp(a));
        sizes.get(1).copied().unwrap_or(0)
    }

    /// True when all `n_i` are equal (the paper's "even distribution").
    pub fn is_even(&self) -> bool {
        self.lists.iter().all(|l| l.len() == self.lists[0].len())
    }

    /// Partial sums `n_i^+ = n_1 + … + n_i`, with the convention
    /// `n_0^+ = 0`: returns `p + 1` values starting at 0.
    pub fn partial_sums(&self) -> Vec<usize> {
        let mut sums = Vec::with_capacity(self.p() + 1);
        sums.push(0);
        let mut acc = 0;
        for l in &self.lists {
            acc += l.len();
            sums.push(acc);
        }
        sums
    }

    /// Per-processor lists.
    pub fn lists(&self) -> &[Vec<u64>] {
        &self.lists
    }

    /// Consume into per-processor lists.
    pub fn into_lists(self) -> Vec<Vec<u64>> {
        self.lists
    }

    /// One processor's list.
    pub fn list(&self, i: usize) -> &[u64] {
        &self.lists[i]
    }

    /// All keys, in descending order (the paper's sorted order `N[1..n]`).
    pub fn sorted_desc(&self) -> Vec<u64> {
        let mut all: Vec<u64> = self.lists.iter().flatten().copied().collect();
        all.sort_unstable_by(|a, b| b.cmp(a));
        all
    }

    /// The element of rank `d` (1-based, `N[d]` = the `d`'th largest).
    /// Panics if `d` is out of `1..=n`.
    pub fn rank(&self, d: usize) -> u64 {
        let all = self.sorted_desc();
        assert!(
            d >= 1 && d <= all.len(),
            "rank {d} out of 1..={}",
            all.len()
        );
        all[d - 1]
    }

    /// The paper's sorting postcondition: the same cardinalities, but
    /// processor `i` holds `N[n_{i-1}^+ + 1 .. n_i^+]` in descending order.
    pub fn sorted_target(&self) -> Placement {
        let all = self.sorted_desc();
        let mut out = Vec::with_capacity(self.p());
        let mut at = 0;
        for l in &self.lists {
            out.push(all[at..at + l.len()].to_vec());
            at += l.len();
        }
        Placement::new(out)
    }

    /// Verify that all keys are pairwise distinct (the model's w.l.o.g.).
    pub fn keys_distinct(&self) -> bool {
        let mut all: Vec<u64> = self.lists.iter().flatten().copied().collect();
        all.sort_unstable();
        all.windows(2).all(|w| w[0] != w[1])
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn sample() -> Placement {
        Placement::new(vec![vec![5, 1], vec![9, 3, 7], vec![2]])
    }

    #[test]
    fn cardinalities() {
        let pl = sample();
        assert_eq!(pl.p(), 3);
        assert_eq!(pl.n(), 6);
        assert_eq!(pl.sizes(), vec![2, 3, 1]);
        assert_eq!(pl.n_max(), 3);
        assert_eq!(pl.n_max2(), 2);
        assert!(!pl.is_even());
        assert_eq!(pl.partial_sums(), vec![0, 2, 5, 6]);
    }

    #[test]
    fn n_max2_with_tie() {
        let pl = Placement::new(vec![vec![1, 2], vec![3, 4], vec![5]]);
        assert_eq!(pl.n_max(), 2);
        assert_eq!(pl.n_max2(), 2);
    }

    #[test]
    fn sorted_order_is_descending() {
        let pl = sample();
        assert_eq!(pl.sorted_desc(), vec![9, 7, 5, 3, 2, 1]);
        assert_eq!(pl.rank(1), 9);
        assert_eq!(pl.rank(6), 1);
        assert_eq!(pl.rank(3), 5);
    }

    #[test]
    fn sorted_target_respects_cardinalities() {
        let pl = sample();
        let t = pl.sorted_target();
        assert_eq!(t.sizes(), pl.sizes());
        assert_eq!(t.lists(), &[vec![9, 7], vec![5, 3, 2], vec![1]]);
    }

    #[test]
    fn distinctness_check() {
        assert!(sample().keys_distinct());
        let dup = Placement::new(vec![vec![1], vec![1]]);
        assert!(!dup.keys_distinct());
    }

    #[test]
    #[should_panic(expected = "n_i > 0")]
    fn empty_processor_rejected() {
        let _ = Placement::new(vec![vec![1], vec![]]);
    }

    #[test]
    #[should_panic(expected = "out of")]
    fn rank_out_of_range_panics() {
        sample().rank(7);
    }
}
