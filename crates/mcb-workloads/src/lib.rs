//! # mcb-workloads — inputs for MCB sorting/selection experiments
//!
//! Generators for the distributed input sets the paper's algorithms and
//! bounds are parameterized by: a [`Placement`] is the paper's "collection
//! `N` of elements distributed arbitrarily among the processors" (§3), and
//! the [`distributions`] module controls its shape (even, uneven, heavy-
//! tailed, …). The [`values`] module handles key generation, including the
//! paper's lexicographic-triple construction that reduces multisets to sets.
//!
//! All generators are deterministic given a seed, so every experiment in
//! `mcb-bench` is exactly reproducible.

#![warn(missing_docs)]

pub mod distributions;
pub mod placement;
pub mod values;

pub use placement::Placement;
pub use values::{
    disambiguate, distinct_keys, keys_with_duplicates, original_proc, original_value, rng,
};
