//! Key-value generation.
//!
//! The paper assumes w.l.o.g. that all elements are distinct: "if not, we
//! can replace each element ξ in `P_i` with the triple `(ξ, i, j_ξ)` where
//! `j_ξ` is a unique index within `P_i`, and use lexicographic order among
//! the triples" (§3). [`disambiguate`] implements exactly that construction
//! by packing the triple into a single `u64` whose integer order *is* the
//! lexicographic order.

use mcb_rng::Rng64;

/// Deterministic RNG for workload generation.
pub fn rng(seed: u64) -> Rng64 {
    Rng64::seed_from_u64(seed)
}

/// `count` distinct pseudo-random `u64` keys (a random subset of a large
/// range, shuffled).
pub fn distinct_keys(count: usize, rng: &mut Rng64) -> Vec<u64> {
    // Sample keys spaced out with random jitter, then shuffle: distinctness
    // by construction, no rejection loop.
    let mut keys: Vec<u64> = (0..count as u64)
        .map(|i| i * 1000 + rng.random_range(0u64..1000))
        .collect();
    rng.shuffle(&mut keys);
    keys
}

/// `count` keys drawn uniformly from `0..universe`, duplicates allowed.
pub fn keys_with_duplicates(count: usize, universe: u64, rng: &mut Rng64) -> Vec<u64> {
    (0..count).map(|_| rng.random_range(0..universe)).collect()
}

/// Number of bits [`disambiguate`] reserves for the processor index.
pub const PROC_BITS: u32 = 12;
/// Number of bits [`disambiguate`] reserves for the within-processor index.
pub const IDX_BITS: u32 = 20;

/// The paper's §3 lexicographic triple `(ξ, i, j_ξ)`, packed so that
/// ordinary `u64` comparison realizes lexicographic order.
///
/// `value` must fit in `64 - PROC_BITS - IDX_BITS = 32` bits, `proc` in
/// [`PROC_BITS`] bits (up to 4096 processors), `idx` in [`IDX_BITS`] bits
/// (up to ~1M elements per processor).
pub fn disambiguate(value: u64, proc: usize, idx: usize) -> u64 {
    let value_bits = 64 - PROC_BITS - IDX_BITS;
    assert!(
        value < 1 << value_bits,
        "value {value} needs > {value_bits} bits"
    );
    assert!((proc as u64) < 1 << PROC_BITS, "proc {proc} out of range");
    assert!((idx as u64) < 1 << IDX_BITS, "idx {idx} out of range");
    (value << (PROC_BITS + IDX_BITS)) | ((proc as u64) << IDX_BITS) | idx as u64
}

/// Recover the original value from a [`disambiguate`]d key.
pub fn original_value(key: u64) -> u64 {
    key >> (PROC_BITS + IDX_BITS)
}

/// Recover the processor index from a [`disambiguate`]d key.
pub fn original_proc(key: u64) -> usize {
    ((key >> IDX_BITS) & ((1 << PROC_BITS) - 1)) as usize
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn distinct_keys_are_distinct() {
        let mut r = rng(42);
        let keys = distinct_keys(10_000, &mut r);
        let mut sorted = keys.clone();
        sorted.sort_unstable();
        sorted.dedup();
        assert_eq!(sorted.len(), keys.len());
    }

    #[test]
    fn distinct_keys_are_deterministic_per_seed() {
        let a = distinct_keys(100, &mut rng(7));
        let b = distinct_keys(100, &mut rng(7));
        let c = distinct_keys(100, &mut rng(8));
        assert_eq!(a, b);
        assert_ne!(a, c);
    }

    #[test]
    fn disambiguation_is_lexicographic() {
        // Primary order by value…
        assert!(disambiguate(5, 9, 9) < disambiguate(6, 0, 0));
        // …ties broken by processor…
        assert!(disambiguate(5, 1, 9) < disambiguate(5, 2, 0));
        // …then by index.
        assert!(disambiguate(5, 1, 3) < disambiguate(5, 1, 4));
    }

    #[test]
    fn disambiguation_round_trips() {
        let k = disambiguate(123456, 37, 999);
        assert_eq!(original_value(k), 123456);
        assert_eq!(original_proc(k), 37);
    }

    #[test]
    fn disambiguated_duplicates_become_distinct() {
        let mut r = rng(3);
        let vals = keys_with_duplicates(1000, 10, &mut r); // heavy duplication
        let keys: Vec<u64> = vals
            .iter()
            .enumerate()
            .map(|(i, &v)| disambiguate(v, i % 4, i / 4))
            .collect();
        let mut sorted = keys.clone();
        sorted.sort_unstable();
        sorted.dedup();
        assert_eq!(sorted.len(), keys.len());
    }

    #[test]
    #[should_panic(expected = "out of range")]
    fn oversized_proc_rejected() {
        disambiguate(1, 1 << 13, 0);
    }
}
