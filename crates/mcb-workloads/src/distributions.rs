//! Ways of splitting `n` keys over `p` processors.
//!
//! The paper's complexity bounds depend on the *shape* of the distribution
//! (`n_max`, `n_max2`, how many processors hold at least `d/p` candidates,
//! …), so the experiments need precise control over it. Each generator
//! returns a [`Placement`] built from distinct random keys.

use crate::placement::Placement;
use crate::values::distinct_keys;
use mcb_rng::Rng64;

/// Split sizes: `n` elements over `p` processors, every processor nonempty.
fn split(keys: Vec<u64>, sizes: &[usize]) -> Placement {
    assert_eq!(keys.len(), sizes.iter().sum::<usize>());
    let mut lists = Vec::with_capacity(sizes.len());
    let mut it = keys.into_iter();
    for &s in sizes {
        lists.push((&mut it).take(s).collect());
    }
    Placement::new(lists)
}

/// Even distribution: every processor holds exactly `n / p` keys.
/// Panics unless `p` divides `n` (pad `n` up if needed, as the paper does).
pub fn even(p: usize, n: usize, rng: &mut Rng64) -> Placement {
    assert!(
        p > 0 && n.is_multiple_of(p),
        "even distribution needs p | n"
    );
    let keys = distinct_keys(n, rng);
    split(keys, &vec![n / p; p])
}

/// Uneven sizes that sum to `n`, drawn by repeatedly giving a random
/// processor one extra key (each processor keeps at least one).
pub fn random_uneven(p: usize, n: usize, rng: &mut Rng64) -> Placement {
    assert!(n >= p, "need n >= p");
    let mut sizes = vec![1usize; p];
    for _ in 0..n - p {
        sizes[rng.random_range(0..p)] += 1;
    }
    let keys = distinct_keys(n, rng);
    split(keys, &sizes)
}

/// One "heavy" processor holding `heavy_frac` of all keys, the rest spread
/// evenly. Drives the `n_max` term of Corollary 6 / Theorem 4.
pub fn single_heavy(p: usize, n: usize, heavy_frac: f64, rng: &mut Rng64) -> Placement {
    assert!(p >= 2 && n >= p);
    assert!((0.0..1.0).contains(&heavy_frac));
    let heavy = ((n as f64 * heavy_frac) as usize).clamp(1, n - (p - 1));
    let rest = n - heavy;
    let base = rest / (p - 1);
    let extra = rest % (p - 1);
    let mut sizes = vec![heavy];
    for i in 0..p - 1 {
        sizes.push(base + usize::from(i < extra));
    }
    assert!(
        sizes.iter().all(|&s| s > 0),
        "heavy_frac leaves a processor empty"
    );
    let keys = distinct_keys(n, rng);
    split(keys, &sizes)
}

/// Geometric sizes: processor `i` holds about `ratio` times the keys of
/// processor `i+1` (clamped so everyone keeps at least one key).
pub fn geometric(p: usize, n: usize, ratio: f64, rng: &mut Rng64) -> Placement {
    assert!(p > 0 && n >= p && ratio > 0.0);
    // Ideal weights r^0, r^1, … normalized to n, then fixed up to sum to n.
    let weights: Vec<f64> = (0..p).map(|i| ratio.powi(-(i as i32))).collect();
    let total: f64 = weights.iter().sum();
    let mut sizes: Vec<usize> = weights
        .iter()
        .map(|w| ((w / total) * n as f64).floor().max(1.0) as usize)
        .collect();
    let mut diff = n as i64 - sizes.iter().sum::<usize>() as i64;
    let mut i = 0;
    while diff != 0 {
        if diff > 0 {
            sizes[i % p] += 1;
            diff -= 1;
        } else if sizes[i % p] > 1 {
            sizes[i % p] -= 1;
            diff += 1;
        }
        i += 1;
    }
    let keys = distinct_keys(n, rng);
    split(keys, &sizes)
}

/// Zipf-like sizes with exponent `s` (size of processor `i` proportional to
/// `1/(i+1)^s`), at least one key each.
pub fn zipf(p: usize, n: usize, s: f64, rng: &mut Rng64) -> Placement {
    assert!(p > 0 && n >= p && s >= 0.0);
    let weights: Vec<f64> = (0..p).map(|i| 1.0 / ((i + 1) as f64).powf(s)).collect();
    let total: f64 = weights.iter().sum();
    let mut sizes: Vec<usize> = weights
        .iter()
        .map(|w| ((w / total) * n as f64).floor().max(1.0) as usize)
        .collect();
    let mut diff = n as i64 - sizes.iter().sum::<usize>() as i64;
    let mut i = 0;
    while diff != 0 {
        if diff > 0 {
            sizes[i % p] += 1;
            diff -= 1;
        } else if sizes[i % p] > 1 {
            sizes[i % p] -= 1;
            diff += 1;
        }
        i += 1;
    }
    let keys = distinct_keys(n, rng);
    split(keys, &sizes)
}

/// Shuffle which processor gets which *size* while keeping the multiset of
/// sizes — used to decouple "shape" from "which processor is heavy".
pub fn shuffle_roles(placement: Placement, rng: &mut Rng64) -> Placement {
    let mut lists = placement.into_lists();
    rng.shuffle(&mut lists);
    Placement::new(lists)
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::values::rng;

    #[test]
    fn even_is_even() {
        let pl = even(8, 64, &mut rng(1));
        assert!(pl.is_even());
        assert_eq!(pl.n(), 64);
        assert_eq!(pl.n_max(), 8);
        assert!(pl.keys_distinct());
    }

    #[test]
    #[should_panic(expected = "p | n")]
    fn even_requires_divisibility() {
        even(8, 63, &mut rng(1));
    }

    #[test]
    fn random_uneven_preserves_totals() {
        let pl = random_uneven(5, 57, &mut rng(2));
        assert_eq!(pl.p(), 5);
        assert_eq!(pl.n(), 57);
        assert!(pl.sizes().iter().all(|&s| s >= 1));
        assert!(pl.keys_distinct());
    }

    #[test]
    fn single_heavy_shapes() {
        let pl = single_heavy(4, 100, 0.7, &mut rng(3));
        assert_eq!(pl.n(), 100);
        assert_eq!(pl.n_max(), 70);
        assert!(pl.sizes()[0] == 70);
    }

    #[test]
    fn geometric_is_monotone_decreasing_roughly() {
        let pl = geometric(6, 600, 2.0, &mut rng(4));
        assert_eq!(pl.n(), 600);
        let sizes = pl.sizes();
        assert!(sizes[0] > sizes[5], "head should dominate tail: {sizes:?}");
    }

    #[test]
    fn zipf_sums_to_n() {
        let pl = zipf(7, 333, 1.2, &mut rng(5));
        assert_eq!(pl.n(), 333);
        assert!(pl.sizes().iter().all(|&s| s >= 1));
    }

    #[test]
    fn shuffle_roles_keeps_size_multiset() {
        let pl = geometric(6, 120, 2.0, &mut rng(6));
        let mut before = pl.sizes();
        let shuffled = shuffle_roles(pl, &mut rng(7));
        let mut after = shuffled.sizes();
        before.sort_unstable();
        after.sort_unstable();
        assert_eq!(before, after);
    }
}
