//! Symbolic (once-for-all-inputs) verification of oblivious schedules.
//!
//! The concrete verifier in [`crate::verify()`] proves a schedule's
//! *structural* obligations — collision-freedom, read-validity, channel
//! ranges — which for an oblivious schedule are already input-independent
//! facts. What it cannot prove is that the schedule *computes* anything:
//! the key-dependent emitters (`RankSortSpec`, `SelectSpec`) round-simulate
//! on concrete keys, so their verdict only covers the input they were
//! emitted against.
//!
//! Comparator networks close that gap. A sorting network is **data
//! oblivious**: every processor's write/read plan is a pure function of
//! `(p, k)`, and each data value only ever moves through `min`/`max`
//! exchanges. This module proves, in one pass and with **zero concrete-key
//! round-simulation**, that a schedule implements a claimed comparator
//! network for *every* input:
//!
//! 1. **Structural pass** — the ordinary verifier runs first (collision
//!    freedom, read-validity, bounds). For an oblivious schedule these are
//!    all-input facts.
//! 2. **Obliviousness pass** — rejects suppressible writes and
//!    `MaybeEmpty` reads: a schedule whose wire behaviour can depend on
//!    data is not oblivious ([`NetViolation::NonObliviousIntent`]).
//! 3. **Provenance pass** (abstract interpretation) — walks the cycles
//!    tracking a symbolic value per processor (a node in a min/max DAG
//!    over the `p` symbolic inputs). Every broadcast must be a leg of
//!    exactly one declared [`Exchange`]; a processor may not broadcast a
//!    leg of a new exchange while a previous one of its exchanges is still
//!    open; and each processor's exchanges must complete in declaration
//!    order. Together these prove the schedule applies exactly the
//!    declared comparator sequence (up to reordering of *commuting*,
//!    line-disjoint comparators — which cannot change the computed
//!    function), and that the contents always form a permutation of the
//!    inputs (min/max exchanges are multiset-preserving by construction).
//! 4. **Sortedness prover** — the 0-1 principle: a comparator network
//!    sorts all inputs iff it sorts all `2^p` binary inputs. For
//!    `p <= 20` the prover replays every binary input through the
//!    comparator list, 64 vectors at a time in `u64` bit-lanes (`min` is
//!    `AND`, `max` is `OR`). Above that, it consumes a recursive
//!    [`SorterCert`]: exhaustively checked base blocks glued by mergers,
//!    each merger checked over all `(a+1)(b+1)` sorted 0-1 input pairs
//!    (sound by the 0-1 principle restricted to merging networks).
//!
//! The result is a [`SymbolicReport`]: the structural report plus the
//! network findings, with a JSONL rendering (`"record":"mcb-symbolic"`)
//! that names the certificate used and the number of 0-1 vectors replayed.

use crate::ir::{CheckedSchedule, Expect};
use crate::report::Report;
use crate::verify::{verify, Bounds};
use mcb_rng::Rng64;
use std::collections::HashMap;
use std::ops::Range;

/// Largest width the exhaustive 0-1 replay accepts (`2^20` vectors).
pub const MAX_EXHAUSTIVE_WIDTH: usize = 20;

/// One compare-exchange: after it fires, the minimum of the two values is
/// on line `lo` and the maximum on line `hi`. Generators emit `lo < hi`
/// (ascending networks); the verifier does not assume it — a flipped
/// comparator is simply a network that fails the sortedness prover.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct Comparator {
    /// Line receiving the minimum.
    pub lo: usize,
    /// Line receiving the maximum.
    pub hi: usize,
}

/// A comparator realized on the wire: two broadcasts, one per direction.
///
/// Processor `lo` broadcasts its value on `lo_chan` in `lo_cycle`
/// (processor `hi` reads it), and `hi` broadcasts on `hi_chan` in
/// `hi_cycle` (`lo` reads it). When both legs have fired the exchange
/// *completes*: `lo` keeps the minimum, `hi` the maximum. The two legs may
/// share a cycle (`k >= 2`) or not (`k = 1` needs two cycles).
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct Exchange {
    /// Processor (= network line) receiving the minimum.
    pub lo: usize,
    /// Processor (= network line) receiving the maximum.
    pub hi: usize,
    /// Cycle of the `lo -> hi` broadcast.
    pub lo_cycle: usize,
    /// Channel of the `lo -> hi` broadcast.
    pub lo_chan: usize,
    /// Cycle of the `hi -> lo` broadcast.
    pub hi_cycle: usize,
    /// Channel of the `hi -> lo` broadcast.
    pub hi_chan: usize,
}

impl Exchange {
    /// The comparator this exchange realizes.
    pub fn comparator(&self) -> Comparator {
        Comparator {
            lo: self.lo,
            hi: self.hi,
        }
    }

    /// The cycle in which the exchange completes (both legs fired).
    pub fn completion_cycle(&self) -> usize {
        self.lo_cycle.max(self.hi_cycle)
    }
}

/// How sortedness is proven for a network.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum SortCert {
    /// Replay all `2^p` binary inputs (feasible for `p <=`
    /// [`MAX_EXHAUSTIVE_WIDTH`]).
    Exhaustive,
    /// A recursive divide-and-merge certificate for larger networks.
    Tree(SorterCert),
}

/// A recursive certificate that a contiguous line range is sorted by a
/// contiguous comparator range.
///
/// The comparator indices referenced by a certificate tree must tile
/// `0..exchanges.len()` left to right: a `Merge` node's comparators are
/// `lo`'s, then `hi`'s, then the merger's.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum SorterCert {
    /// A base block: `comparators` sort lines `first..first + width`,
    /// checked exhaustively over all `2^width` binary inputs.
    Block {
        /// First line of the block.
        first: usize,
        /// Number of lines.
        width: usize,
        /// Indices into the exchange list.
        comparators: Range<usize>,
    },
    /// Two adjacent sorted ranges glued by a merging network, checked over
    /// all `(a+1)(b+1)` sorted 0-1 input pairs.
    Merge {
        /// Certificate for the lower line range.
        lo: Box<SorterCert>,
        /// Certificate for the adjacent upper line range.
        hi: Box<SorterCert>,
        /// Indices of the merger's comparators.
        merger: Range<usize>,
    },
}

/// An oblivious schedule together with the comparator network it claims to
/// implement and the certificate proving that network sorts.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct ObliviousNetwork {
    /// The packed wire schedule.
    pub schedule: CheckedSchedule,
    /// The comparator sequence, one exchange per comparator, in
    /// application order (ties between line-disjoint comparators allowed).
    pub exchanges: Vec<Exchange>,
    /// Sortedness certificate.
    pub cert: SortCert,
}

/// A finding specific to the symbolic network pass.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum NetViolation {
    /// The schedule's wire behaviour can depend on data (suppressible
    /// write or maybe-empty read) — it is not oblivious.
    NonObliviousIntent {
        /// Cycle index.
        cycle: usize,
        /// Offending processor.
        proc: usize,
        /// What is data-dependent about the intent.
        why: &'static str,
    },
    /// A scheduled broadcast or read is not a leg of any declared exchange.
    UnmatchedBroadcast {
        /// Cycle index.
        cycle: usize,
        /// Offending processor.
        proc: usize,
        /// Channel involved.
        chan: usize,
        /// `"write"` or `"read"`.
        role: &'static str,
    },
    /// An exchange's declared legs do not match the schedule, overlap
    /// another exchange on a processor, or double-book a broadcast.
    ExchangeMismatch {
        /// Index of the exchange.
        exchange: usize,
        /// What does not line up.
        why: String,
    },
    /// A processor's exchanges complete out of declaration order, so the
    /// schedule does not apply the declared comparator sequence.
    ExchangeOrderViolation {
        /// The processor whose order is violated.
        proc: usize,
        /// Declaration index completing later despite coming first.
        earlier: usize,
        /// Declaration index completing earlier despite coming later.
        later: usize,
    },
    /// The network fails to sort some binary input (and hence, by the 0-1
    /// principle, some input).
    SortednessFailure {
        /// Which certificate node failed.
        node: String,
        /// A failing binary input, least-significant line first.
        witness: String,
    },
    /// The certificate is malformed (spans not adjacent, comparator
    /// ranges not tiling, block too wide, out-of-span comparator...).
    BadCert {
        /// What is wrong with the certificate.
        why: String,
    },
}

impl NetViolation {
    /// Stable machine-readable kind tag (used in the JSON report).
    pub fn kind(&self) -> &'static str {
        match self {
            NetViolation::NonObliviousIntent { .. } => "non_oblivious_intent",
            NetViolation::UnmatchedBroadcast { .. } => "unmatched_broadcast",
            NetViolation::ExchangeMismatch { .. } => "exchange_mismatch",
            NetViolation::ExchangeOrderViolation { .. } => "exchange_order_violation",
            NetViolation::SortednessFailure { .. } => "sortedness_failure",
            NetViolation::BadCert { .. } => "bad_cert",
        }
    }
}

impl std::fmt::Display for NetViolation {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        match self {
            NetViolation::NonObliviousIntent { cycle, proc, why } => {
                write!(f, "cycle {cycle}: P{proc} is not oblivious: {why}")
            }
            NetViolation::UnmatchedBroadcast {
                cycle,
                proc,
                chan,
                role,
            } => write!(
                f,
                "cycle {cycle}: P{proc}'s {role} on channel {chan} is no leg of any exchange"
            ),
            NetViolation::ExchangeMismatch { exchange, why } => {
                write!(f, "exchange {exchange}: {why}")
            }
            NetViolation::ExchangeOrderViolation {
                proc,
                earlier,
                later,
            } => write!(
                f,
                "P{proc}: exchange {later} completes before exchange {earlier} (declaration order broken)"
            ),
            NetViolation::SortednessFailure { node, witness } => {
                write!(f, "{node} fails to sort binary input {witness}")
            }
            NetViolation::BadCert { why } => write!(f, "bad certificate: {why}"),
        }
    }
}

/// The outcome of symbolically verifying an [`ObliviousNetwork`].
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct SymbolicReport {
    /// The structural report ([`verify`]) for the packed schedule.
    pub report: Report,
    /// Findings from the symbolic passes (empty = proven for all inputs).
    pub net_violations: Vec<NetViolation>,
    /// `"exhaustive"` or `"tree"` — which sortedness certificate ran.
    pub cert: &'static str,
    /// Number of comparators in the network.
    pub comparators: u64,
    /// Number of 0-1 input vectors replayed by the prover.
    pub vectors: u64,
    /// Nodes in the provenance min/max DAG built by the abstract
    /// interpretation (`p` inputs + 2 per completed exchange).
    pub provenance_nodes: u64,
}

impl SymbolicReport {
    /// True when both the structural and the symbolic passes are clean:
    /// the schedule is then proven collision-free, read-valid, and
    /// sort-correct for **every** input.
    pub fn is_ok(&self) -> bool {
        self.report.is_ok() && self.net_violations.is_empty()
    }

    /// Render as one deterministic JSON object (`"record":"mcb-symbolic"`).
    pub fn to_json(&self) -> String {
        use mcb_json::Json;
        let violations = Json::Arr(
            self.report
                .violations
                .iter()
                .map(|v| {
                    Json::obj()
                        .field("kind", v.kind())
                        .field("detail", v.to_string())
                })
                .chain(self.net_violations.iter().map(|v| {
                    Json::obj()
                        .field("kind", v.kind())
                        .field("detail", v.to_string())
                }))
                .collect(),
        );
        let lints = Json::Arr(
            self.report
                .lints
                .iter()
                .map(|l| {
                    Json::obj()
                        .field("kind", l.kind())
                        .field("detail", l.to_string())
                })
                .collect(),
        );
        Json::obj()
            .field("record", "mcb-symbolic")
            .field("schema", 1u64)
            .field("name", self.report.name.as_str())
            .field("p", self.report.stats.p as u64)
            .field("k", self.report.stats.k as u64)
            .field("cycles", self.report.stats.cycles)
            .field("messages", self.report.stats.messages_max)
            .field("comparators", self.comparators)
            .field("cert", self.cert)
            .field("vectors", self.vectors)
            .field("provenance_nodes", self.provenance_nodes)
            .field("ok", self.is_ok())
            .field("violations", violations)
            .field("lints", lints)
            .render()
    }
}

impl std::fmt::Display for SymbolicReport {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        writeln!(
            f,
            "{} [{}] p={} k={} cycles={} comparators={} cert={} vectors={}",
            if self.is_ok() { "OK  " } else { "FAIL" },
            self.report.name,
            self.report.stats.p,
            self.report.stats.k,
            self.report.stats.cycles,
            self.comparators,
            self.cert,
            self.vectors,
        )?;
        for v in &self.report.violations {
            writeln!(f, "  violation[{}]: {v}", v.kind())?;
        }
        for v in &self.net_violations {
            writeln!(f, "  violation[{}]: {v}", v.kind())?;
        }
        for l in &self.report.lints {
            writeln!(f, "  lint[{}]: {l}", l.kind())?;
        }
        Ok(())
    }
}

/// One node of the provenance DAG the abstract interpretation builds. The
/// operand indices exist for diagnostics (`{:?}` rendering); the checks
/// themselves only need the node identities.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
#[allow(dead_code)]
enum Prov {
    /// The symbolic initial value of a line.
    Input(u32),
    /// Minimum of two earlier nodes.
    Min(u32, u32),
    /// Maximum of two earlier nodes.
    Max(u32, u32),
}

#[derive(Debug, Clone, Copy)]
struct LegRef {
    exchange: usize,
    /// True for the `lo -> hi` leg.
    lo_leg: bool,
}

/// Verify that `net.schedule` implements `net.exchanges` (for every input)
/// and that the comparator sequence sorts (via `net.cert`). Runs the
/// structural verifier with `bounds` first; all passes report into the
/// returned [`SymbolicReport`].
pub fn verify_network(net: &ObliviousNetwork, bounds: &Bounds) -> SymbolicReport {
    let schedule = &net.schedule;
    let p = schedule.p;
    let report = verify(schedule, bounds);
    let mut nv: Vec<NetViolation> = Vec::new();

    // ---- obliviousness ----------------------------------------------------
    for (ci, cyc) in schedule.cycles.iter().enumerate() {
        for (proc, intent) in cyc.intents.iter().enumerate() {
            if intent.write.is_some_and(|w| w.may_suppress) {
                nv.push(NetViolation::NonObliviousIntent {
                    cycle: ci,
                    proc,
                    why: "suppressible write (silence would leak data)",
                });
            }
            if intent.read.is_some_and(|r| r.expect == Expect::MaybeEmpty) {
                nv.push(NetViolation::NonObliviousIntent {
                    cycle: ci,
                    proc,
                    why: "maybe-empty read (branching on silence is data-dependent)",
                });
            }
        }
    }

    // ---- exchange legs vs. schedule ---------------------------------------
    // write_leg[(cycle, proc)] / read_leg[(cycle, proc)]: the unique leg a
    // processor's write/read realizes.
    let mut write_leg: HashMap<(usize, usize), LegRef> = HashMap::new();
    let mut read_leg: HashMap<(usize, usize), LegRef> = HashMap::new();
    let mut legs_ok = true;
    for (ei, ex) in net.exchanges.iter().enumerate() {
        let mut bad = |why: String| {
            nv.push(NetViolation::ExchangeMismatch { exchange: ei, why });
            legs_ok = false;
        };
        if ex.lo >= p || ex.hi >= p || ex.lo == ex.hi {
            bad(format!("bad line pair ({}, {})", ex.lo, ex.hi));
            continue;
        }
        let legs = [
            (ex.lo_cycle, ex.lo, ex.hi, ex.lo_chan, true),
            (ex.hi_cycle, ex.hi, ex.lo, ex.hi_chan, false),
        ];
        let mut routed = true;
        for (cycle, writer, reader, chan, _) in legs {
            let Some(cyc) = schedule.cycles.get(cycle) else {
                bad(format!("leg cycle {cycle} out of range"));
                routed = false;
                continue;
            };
            if cyc.intents.len() != p {
                routed = false; // malformed cycle: structural verify reported
                continue;
            }
            if cyc.intents[writer].write.is_none_or(|w| w.chan != chan) {
                bad(format!(
                    "P{writer} does not write channel {chan} in cycle {cycle}"
                ));
                routed = false;
            }
            if cyc.intents[reader].read.is_none_or(|r| r.chan != chan) {
                bad(format!(
                    "P{reader} does not read channel {chan} in cycle {cycle}"
                ));
                routed = false;
            }
        }
        if !routed {
            continue;
        }
        for (cycle, writer, reader, _, lo_leg) in legs {
            let lr = LegRef {
                exchange: ei,
                lo_leg,
            };
            if write_leg.insert((cycle, writer), lr).is_some() {
                bad(format!(
                    "P{writer}'s write in cycle {cycle} claimed by two exchanges"
                ));
            }
            if read_leg.insert((cycle, reader), lr).is_some() {
                bad(format!(
                    "P{reader}'s read in cycle {cycle} claimed by two exchanges"
                ));
            }
        }
    }

    // Every scheduled broadcast and read must be a declared leg.
    for (ci, cyc) in schedule.cycles.iter().enumerate() {
        for (proc, intent) in cyc.intents.iter().enumerate() {
            if let Some(w) = intent.write {
                if !write_leg.contains_key(&(ci, proc)) {
                    nv.push(NetViolation::UnmatchedBroadcast {
                        cycle: ci,
                        proc,
                        chan: w.chan,
                        role: "write",
                    });
                    legs_ok = false;
                }
            }
            if let Some(r) = intent.read {
                if !read_leg.contains_key(&(ci, proc)) {
                    nv.push(NetViolation::UnmatchedBroadcast {
                        cycle: ci,
                        proc,
                        chan: r.chan,
                        role: "read",
                    });
                    legs_ok = false;
                }
            }
        }
    }

    // ---- provenance walk (abstract interpretation) ------------------------
    let mut dag: Vec<Prov> = (0..p as u32).map(Prov::Input).collect();
    let mut provenance_ok = false;
    if legs_ok {
        provenance_ok = true;
        let mut val: Vec<u32> = (0..p as u32).collect();
        // engaged[proc]: the exchange whose leg the processor has broadcast
        // and which has not completed yet.
        let mut engaged: Vec<Option<usize>> = vec![None; p];
        // sent[exchange]: (lo's broadcast value, hi's broadcast value).
        let mut sent: Vec<(Option<u32>, Option<u32>)> = vec![(None, None); net.exchanges.len()];
        let mut completed_at: Vec<Option<usize>> = vec![None; net.exchanges.len()];
        'walk: for (ci, cyc) in schedule.cycles.iter().enumerate() {
            if cyc.intents.len() != p {
                provenance_ok = false;
                break 'walk; // malformed: already reported structurally
            }
            let mut completions: Vec<usize> = Vec::new();
            for (proc, intent) in cyc.intents.iter().enumerate() {
                if intent.write.is_none() {
                    continue;
                }
                let lr = write_leg[&(ci, proc)];
                if let Some(open) = engaged[proc] {
                    if open != lr.exchange {
                        nv.push(NetViolation::ExchangeMismatch {
                            exchange: lr.exchange,
                            why: format!(
                                "P{proc} broadcasts its leg while exchange {open} is still open"
                            ),
                        });
                        provenance_ok = false;
                        break 'walk;
                    }
                }
                engaged[proc] = Some(lr.exchange);
                let slot = &mut sent[lr.exchange];
                let cell = if lr.lo_leg { &mut slot.0 } else { &mut slot.1 };
                if cell.is_some() {
                    nv.push(NetViolation::ExchangeMismatch {
                        exchange: lr.exchange,
                        why: "same leg broadcast twice".to_owned(),
                    });
                    provenance_ok = false;
                    break 'walk;
                }
                *cell = Some(val[proc]);
                if let (Some(_), Some(_)) = sent[lr.exchange] {
                    completions.push(lr.exchange);
                }
            }
            for ei in completions {
                let ex = &net.exchanges[ei];
                let (Some(vlo), Some(vhi)) = sent[ei] else {
                    unreachable!()
                };
                // Both participants must still hold the value they sent
                // (guaranteed by the engagement rule; asserted for clarity).
                debug_assert_eq!(val[ex.lo], vlo);
                debug_assert_eq!(val[ex.hi], vhi);
                let min = dag.len() as u32;
                dag.push(Prov::Min(vlo, vhi));
                dag.push(Prov::Max(vlo, vhi));
                val[ex.lo] = min;
                val[ex.hi] = min + 1;
                engaged[ex.lo] = None;
                engaged[ex.hi] = None;
                completed_at[ei] = Some(ci);
            }
        }
        if provenance_ok {
            for (ei, done) in completed_at.iter().enumerate() {
                if done.is_none() {
                    nv.push(NetViolation::ExchangeMismatch {
                        exchange: ei,
                        why: "exchange never completes".to_owned(),
                    });
                    provenance_ok = false;
                }
            }
        }
        if provenance_ok {
            // Per-processor declaration order must match completion order:
            // then the completion sequence and the declaration sequence are
            // linear extensions of the same partial order, and line-disjoint
            // comparators commute, so replaying in declaration order is
            // faithful.
            let mut last: Vec<Option<(usize, usize)>> = vec![None; p]; // (decl idx, cycle)
            for (ei, ex) in net.exchanges.iter().enumerate() {
                let done = completed_at[ei].expect("checked above");
                for line in [ex.lo, ex.hi] {
                    if let Some((prev_ei, prev_done)) = last[line] {
                        if prev_done >= done {
                            nv.push(NetViolation::ExchangeOrderViolation {
                                proc: line,
                                earlier: prev_ei,
                                later: ei,
                            });
                            provenance_ok = false;
                        }
                    }
                    last[line] = Some((ei, done));
                }
            }
        }
    }

    // ---- sortedness (0-1 principle) ---------------------------------------
    let comps: Vec<Comparator> = net.exchanges.iter().map(Exchange::comparator).collect();
    let mut vectors = 0u64;
    let cert_name = match net.cert {
        SortCert::Exhaustive => "exhaustive",
        SortCert::Tree(_) => "tree",
    };
    if provenance_ok {
        match &net.cert {
            SortCert::Exhaustive => {
                if p > MAX_EXHAUSTIVE_WIDTH {
                    nv.push(NetViolation::BadCert {
                        why: format!(
                            "exhaustive cert infeasible at p={p} (max {MAX_EXHAUSTIVE_WIDTH}); use a tree cert"
                        ),
                    });
                } else if let Err(v) = check_block(0, p, 0..comps.len(), &comps, &mut vectors) {
                    nv.push(v);
                }
            }
            SortCert::Tree(cert) => match check_cert(cert, &comps, &mut vectors) {
                Err(v) => nv.push(v),
                Ok((first, width, range)) => {
                    if first != 0 || width != p || range != (0..comps.len()) {
                        nv.push(NetViolation::BadCert {
                            why: format!(
                                "cert covers lines {first}..{} and comparators {range:?}, need lines 0..{p} and comparators 0..{}",
                                first + width,
                                comps.len()
                            ),
                        });
                    }
                }
            },
        }
    }

    SymbolicReport {
        report,
        net_violations: nv,
        cert: cert_name,
        comparators: comps.len() as u64,
        vectors,
        provenance_nodes: dag.len() as u64,
    }
}

/// Bit-lane patterns: `PAT[i]` has bit `b` set iff bit `i` of `b` is set.
const PAT: [u64; 6] = [
    0xAAAA_AAAA_AAAA_AAAA,
    0xCCCC_CCCC_CCCC_CCCC,
    0xF0F0_F0F0_F0F0_F0F0,
    0xFF00_FF00_FF00_FF00,
    0xFFFF_0000_FFFF_0000,
    0xFFFF_FFFF_0000_0000,
];

/// Replay comparators over bit-parallel lanes and return the first failing
/// vector index, if any. `state[j]` holds line `first + j`'s bit for each
/// of the 64 lanes; `valid` masks the lanes that carry a real vector.
fn replay_and_check(
    state: &mut [u64],
    valid: u64,
    first: usize,
    width: usize,
    comps: &[Comparator],
    range: &Range<usize>,
    node: &str,
) -> Result<(), NetViolation> {
    for ci in range.clone() {
        let c = comps[ci];
        if c.lo < first || c.lo >= first + width || c.hi < first || c.hi >= first + width {
            return Err(NetViolation::BadCert {
                why: format!(
                    "{node}: comparator {ci} ({}, {}) leaves lines {first}..{}",
                    c.lo,
                    c.hi,
                    first + width
                ),
            });
        }
        let (a, b) = (state[c.lo - first], state[c.hi - first]);
        state[c.lo - first] = a & b;
        state[c.hi - first] = a | b;
    }
    for j in 0..width.saturating_sub(1) {
        let bad = state[j] & !state[j + 1] & valid;
        if bad != 0 {
            let lane = bad.trailing_zeros() as usize;
            return Err(NetViolation::SortednessFailure {
                node: node.to_owned(),
                witness: format!("lane {lane} (1 on line {} above 0)", first + j),
            });
        }
    }
    Ok(())
}

/// Exhaustively check that `comps[range]` sorts lines
/// `first..first + width` on all `2^width` binary inputs.
fn check_block(
    first: usize,
    width: usize,
    range: Range<usize>,
    comps: &[Comparator],
    vectors: &mut u64,
) -> Result<(), NetViolation> {
    if width > MAX_EXHAUSTIVE_WIDTH {
        return Err(NetViolation::BadCert {
            why: format!("block width {width} exceeds {MAX_EXHAUSTIVE_WIDTH}"),
        });
    }
    let node = format!("block[{first}..{}]", first + width);
    let total: u64 = 1u64 << width;
    *vectors += total;
    let mut state = vec![0u64; width];
    let chunks = total.div_ceil(64);
    for chunk in 0..chunks {
        let left = total - chunk * 64;
        let valid = if left >= 64 {
            u64::MAX
        } else {
            (1u64 << left) - 1
        };
        for (j, lane) in state.iter_mut().enumerate() {
            *lane = if j < 6 {
                PAT[j]
            } else if (chunk >> (j - 6)) & 1 == 1 {
                u64::MAX
            } else {
                0
            };
        }
        let mut witness_err =
            replay_and_check(&mut state, valid, first, width, comps, &range, &node);
        if let Err(NetViolation::SortednessFailure { node, witness }) = &mut witness_err {
            // Rewrite the lane-local witness as the concrete binary input.
            if let Some(lane) = witness
                .strip_prefix("lane ")
                .and_then(|s| s.split_whitespace().next())
                .and_then(|s| s.parse::<u64>().ok())
            {
                let v = chunk * 64 + lane;
                let bits: String = (0..width)
                    .map(|j| if (v >> j) & 1 == 1 { '1' } else { '0' })
                    .collect();
                *witness = format!("{bits} (lines {first}..{})", first + width);
            }
            let _ = node;
        }
        witness_err?;
    }
    Ok(())
}

/// Check that `comps[merger]` merges two adjacent sorted ranges of widths
/// `w1` and `w2` (lines `first..`), over all sorted 0-1 input pairs.
fn check_merger(
    first: usize,
    w1: usize,
    w2: usize,
    merger: Range<usize>,
    comps: &[Comparator],
    vectors: &mut u64,
) -> Result<(), NetViolation> {
    let width = w1 + w2;
    let node = format!("merger[{first}..{} | split {}]", first + width, first + w1);
    let total = ((w1 + 1) * (w2 + 1)) as u64;
    *vectors += total;
    let mut state = vec![0u64; width];
    let chunks = total.div_ceil(64);
    for chunk in 0..chunks {
        let left = total - chunk * 64;
        let valid = if left >= 64 {
            u64::MAX
        } else {
            (1u64 << left) - 1
        };
        state.iter_mut().for_each(|s| *s = 0);
        for lane in 0..left.min(64) {
            let t = (chunk * 64 + lane) as usize;
            // Input t: w1-run with z1 zeros then ones, w2-run with z2 zeros.
            let (z1, z2) = (t / (w2 + 1), t % (w2 + 1));
            for (j, s) in state.iter_mut().enumerate() {
                let one = if j < w1 { j >= z1 } else { j - w1 >= z2 };
                if one {
                    *s |= 1u64 << lane;
                }
            }
        }
        if let Err(e) = replay_and_check(&mut state, valid, first, width, comps, &merger, &node) {
            return Err(match e {
                NetViolation::SortednessFailure { node, witness } => {
                    NetViolation::SortednessFailure { node, witness }
                }
                other => other,
            });
        }
    }
    Ok(())
}

/// Recursively check a certificate; returns `(first, width, comparators)`.
fn check_cert(
    cert: &SorterCert,
    comps: &[Comparator],
    vectors: &mut u64,
) -> Result<(usize, usize, Range<usize>), NetViolation> {
    match cert {
        SorterCert::Block {
            first,
            width,
            comparators,
        } => {
            if *width == 0 || comparators.start > comparators.end || comparators.end > comps.len() {
                return Err(NetViolation::BadCert {
                    why: format!("block at line {first}: empty span or bad range {comparators:?}"),
                });
            }
            check_block(*first, *width, comparators.clone(), comps, vectors)?;
            Ok((*first, *width, comparators.clone()))
        }
        SorterCert::Merge { lo, hi, merger } => {
            let (f1, w1, r1) = check_cert(lo, comps, vectors)?;
            let (f2, w2, r2) = check_cert(hi, comps, vectors)?;
            if f2 != f1 + w1 {
                return Err(NetViolation::BadCert {
                    why: format!("merge halves not adjacent: {f1}+{w1} vs {f2}"),
                });
            }
            if r2.start != r1.end || merger.start != r2.end || merger.end > comps.len() {
                return Err(NetViolation::BadCert {
                    why: format!(
                        "merge comparator ranges do not tile: {r1:?} + {r2:?} + {merger:?}"
                    ),
                });
            }
            check_merger(f1, w1, w2, merger.clone(), comps, vectors)?;
            Ok((f1, w1 + w2, r1.start..merger.end))
        }
    }
}

// ---------------------------------------------------------------------------
// Network mutation classes (the symbolic pass's own self-test support)
// ---------------------------------------------------------------------------

/// Comparator-network fault classes for the mutation self-test.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum NetFault {
    /// Swap a comparator's ends (min lands on the higher line).
    SwapEnds,
    /// Remove a comparator and its two carrying broadcasts.
    DropComparator,
    /// Move one leg's broadcast onto a channel another writer already
    /// uses that cycle (a mis-colored layer), or out of range.
    MiscolorLayer,
}

impl NetFault {
    /// Every network fault class, for exhaustive self-tests.
    pub const ALL: [NetFault; 3] = [
        NetFault::SwapEnds,
        NetFault::DropComparator,
        NetFault::MiscolorLayer,
    ];
}

/// Does the mutated network still pass the full symbolic pass? (Used as
/// the detectability filter: only provably-detected mutations commit.)
fn still_ok(net: &ObliviousNetwork) -> bool {
    verify_network(net, &Bounds::none()).is_ok()
}

/// Seed `fault` into `net`, guaranteeing the symbolic pass flags the
/// result. Returns a description, or `None` when no site makes the fault
/// detectable (e.g. every droppable comparator is redundant).
pub fn seed_net_fault(
    net: &mut ObliviousNetwork,
    fault: NetFault,
    rng: &mut Rng64,
) -> Option<String> {
    let n = net.exchanges.len();
    if n == 0 {
        return None;
    }
    let mut order: Vec<usize> = (0..n).collect();
    for i in (1..order.len()).rev() {
        order.swap(i, rng.random_range(0..i + 1));
    }
    match fault {
        NetFault::SwapEnds => {
            for ei in order {
                let mut mutated = net.clone();
                let ex = &mut mutated.exchanges[ei];
                // Swapping roles *and* legs keeps every broadcast in place
                // but lands the minimum on the higher line.
                std::mem::swap(&mut ex.lo, &mut ex.hi);
                std::mem::swap(&mut ex.lo_cycle, &mut ex.hi_cycle);
                std::mem::swap(&mut ex.lo_chan, &mut ex.hi_chan);
                if !still_ok(&mutated) {
                    *net = mutated;
                    return Some(format!("exchange {ei}: comparator ends swapped"));
                }
            }
            None
        }
        NetFault::DropComparator => {
            for ei in order {
                let mut mutated = net.clone();
                let ex = mutated.exchanges.remove(ei);
                for (cycle, writer, reader) in
                    [(ex.lo_cycle, ex.lo, ex.hi), (ex.hi_cycle, ex.hi, ex.lo)]
                {
                    mutated.schedule.cycles[cycle].intents[writer].write = None;
                    mutated.schedule.cycles[cycle].intents[reader].read = None;
                }
                if !still_ok(&mutated) {
                    *net = mutated;
                    return Some(format!(
                        "exchange {ei}: comparator ({}, {}) dropped",
                        ex.lo, ex.hi
                    ));
                }
            }
            None
        }
        NetFault::MiscolorLayer => {
            let ei = order[0];
            let ex = net.exchanges[ei];
            let lo_leg = rng.random_range(0..2u64) == 0;
            let (cycle, writer, reader, chan) = if lo_leg {
                (ex.lo_cycle, ex.lo, ex.hi, ex.lo_chan)
            } else {
                (ex.hi_cycle, ex.hi, ex.lo, ex.hi_chan)
            };
            // A channel some *other* writer uses that cycle -> collision;
            // none -> out of range. Either way the verifier must object.
            let k = net.schedule.k;
            let target = net.schedule.cycles[cycle]
                .intents
                .iter()
                .enumerate()
                .filter(|&(w, i)| w != writer && i.write.is_some())
                .map(|(_, i)| i.write.unwrap().chan)
                .find(|&c| c != chan)
                .unwrap_or(k);
            let cyc = &mut net.schedule.cycles[cycle];
            if let Some(w) = &mut cyc.intents[writer].write {
                w.chan = target;
            }
            if let Some(r) = &mut cyc.intents[reader].read {
                r.chan = target;
            }
            let ex = &mut net.exchanges[ei];
            if lo_leg {
                ex.lo_chan = target;
            } else {
                ex.hi_chan = target;
            }
            Some(format!(
                "exchange {ei}: leg in cycle {cycle} moved from channel {chan} to {target}"
            ))
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::ir::ScheduleBuilder;

    /// One comparator (0, 1) on two processors, both legs in one cycle.
    fn single_pair(k: usize) -> ObliviousNetwork {
        let mut b = ScheduleBuilder::new("pair", 2, k);
        let exchanges = if k >= 2 {
            b.begin_cycle();
            b.write(0, 0);
            b.read(1, 0);
            b.write(1, 1);
            b.read(0, 1);
            vec![Exchange {
                lo: 0,
                hi: 1,
                lo_cycle: 0,
                lo_chan: 0,
                hi_cycle: 0,
                hi_chan: 1,
            }]
        } else {
            b.begin_cycle();
            b.write(0, 0);
            b.read(1, 0);
            b.begin_cycle();
            b.write(1, 0);
            b.read(0, 0);
            vec![Exchange {
                lo: 0,
                hi: 1,
                lo_cycle: 0,
                lo_chan: 0,
                hi_cycle: 1,
                hi_chan: 0,
            }]
        };
        ObliviousNetwork {
            schedule: b.finish(),
            exchanges,
            cert: SortCert::Exhaustive,
        }
    }

    /// A 3-line bubble network, one comparator at a time on k = 2.
    fn three_sorter() -> ObliviousNetwork {
        let comps = [(0usize, 1usize), (1, 2), (0, 1)];
        let mut b = ScheduleBuilder::new("sort3", 3, 2);
        let mut exchanges = Vec::new();
        for &(lo, hi) in &comps {
            let c = b.begin_cycle();
            b.write(lo, 0);
            b.read(hi, 0);
            b.write(hi, 1);
            b.read(lo, 1);
            exchanges.push(Exchange {
                lo,
                hi,
                lo_cycle: c,
                lo_chan: 0,
                hi_cycle: c,
                hi_chan: 1,
            });
        }
        ObliviousNetwork {
            schedule: b.finish(),
            exchanges,
            cert: SortCert::Exhaustive,
        }
    }

    #[test]
    fn single_comparator_verifies_on_both_packings() {
        for k in [1, 2, 3] {
            let net = single_pair(k);
            let r = verify_network(&net, &Bounds::none());
            assert!(r.is_ok(), "k={k}:\n{r}");
            assert_eq!(r.comparators, 1);
            assert_eq!(r.vectors, 4); // 2^2 binary inputs
            assert_eq!(r.provenance_nodes, 4); // 2 inputs + min + max
        }
    }

    #[test]
    fn three_sorter_verifies_and_reports_json() {
        let net = three_sorter();
        let r = verify_network(&net, &Bounds::none());
        assert!(r.is_ok(), "{r}");
        assert_eq!(r.vectors, 8);
        let json = r.to_json();
        assert!(json.starts_with(r#"{"record":"mcb-symbolic","schema":1"#));
        assert!(json.contains(r#""cert":"exhaustive""#));
        assert!(json.contains(r#""ok":true"#));
        assert_eq!(json, r.to_json());
    }

    #[test]
    fn flipped_comparator_fails_sortedness() {
        let mut net = three_sorter();
        let ex = &mut net.exchanges[1];
        std::mem::swap(&mut ex.lo, &mut ex.hi);
        std::mem::swap(&mut ex.lo_cycle, &mut ex.hi_cycle);
        std::mem::swap(&mut ex.lo_chan, &mut ex.hi_chan);
        let r = verify_network(&net, &Bounds::none());
        assert!(!r.is_ok());
        assert!(r
            .net_violations
            .iter()
            .any(|v| v.kind() == "sortedness_failure"));
    }

    #[test]
    fn unsorted_network_reports_witness() {
        // Two lines, zero comparators: input 0b01 (line 0 = 1, line 1 = 0).
        let mut b = ScheduleBuilder::new("noop", 2, 1);
        b.begin_cycle();
        let net = ObliviousNetwork {
            schedule: b.finish(),
            exchanges: vec![],
            cert: SortCert::Exhaustive,
        };
        let r = verify_network(&net, &Bounds::none());
        assert!(!r.is_ok());
        assert!(r.net_violations.iter().any(|v| matches!(
            v,
            NetViolation::SortednessFailure { witness, .. } if witness.starts_with("10")
        )));
    }

    #[test]
    fn stray_broadcast_is_unmatched() {
        let mut net = single_pair(2);
        // An extra cycle with a broadcast no exchange declares.
        net.schedule.cycles.push(crate::ir::CycleIntents {
            intents: vec![
                crate::ir::Intent {
                    write: Some(crate::ir::WriteIntent {
                        chan: 0,
                        may_suppress: false,
                    }),
                    read: None,
                },
                crate::ir::Intent::default(),
            ],
        });
        let r = verify_network(&net, &Bounds::none());
        assert!(!r.is_ok());
        assert!(r
            .net_violations
            .iter()
            .any(|v| v.kind() == "unmatched_broadcast"));
    }

    #[test]
    fn suppressible_and_maybe_empty_are_not_oblivious() {
        let mut net = single_pair(2);
        net.schedule.cycles[0].intents[0]
            .write
            .as_mut()
            .unwrap()
            .may_suppress = true;
        net.schedule.cycles[0].intents[0]
            .read
            .as_mut()
            .unwrap()
            .expect = Expect::MaybeEmpty;
        let r = verify_network(&net, &Bounds::none());
        let kinds: Vec<_> = r.net_violations.iter().map(NetViolation::kind).collect();
        assert!(kinds.contains(&"non_oblivious_intent"));
    }

    #[test]
    fn overlapping_exchange_is_flagged() {
        // P0 broadcasts its leg of exchange 0, then (before exchange 0
        // completes) its leg of exchange 1.
        let mut b = ScheduleBuilder::new("overlap", 3, 1);
        b.begin_cycle(); // c0: P0 -> P1 (exchange 0, leg lo)
        b.write(0, 0);
        b.read(1, 0);
        b.begin_cycle(); // c1: P0 -> P2 (exchange 1, leg lo) -- overlap!
        b.write(0, 0);
        b.read(2, 0);
        b.begin_cycle(); // c2: P1 -> P0 completes exchange 0
        b.write(1, 0);
        b.read(0, 0);
        b.begin_cycle(); // c3: P2 -> P0 completes exchange 1
        b.write(2, 0);
        b.read(0, 0);
        let net = ObliviousNetwork {
            schedule: b.finish(),
            exchanges: vec![
                Exchange {
                    lo: 0,
                    hi: 1,
                    lo_cycle: 0,
                    lo_chan: 0,
                    hi_cycle: 2,
                    hi_chan: 0,
                },
                Exchange {
                    lo: 0,
                    hi: 2,
                    lo_cycle: 1,
                    lo_chan: 0,
                    hi_cycle: 3,
                    hi_chan: 0,
                },
            ],
            cert: SortCert::Exhaustive,
        };
        let r = verify_network(&net, &Bounds::none());
        assert!(!r.is_ok());
        assert!(r
            .net_violations
            .iter()
            .any(|v| matches!(v, NetViolation::ExchangeMismatch { why, .. } if why.contains("still open"))));
    }

    #[test]
    fn tree_cert_checks_blocks_and_merger() {
        // Lines 0..4: blocks {0,1} and {2,3}, merged by the 3-comparator
        // odd-even merger (0,2)(1,3)(1,2).
        let comps = [(0usize, 1usize), (2, 3), (0, 2), (1, 3), (1, 2)];
        let mut b = ScheduleBuilder::new("merge4", 4, 2);
        let mut exchanges = Vec::new();
        for &(lo, hi) in &comps {
            let c = b.begin_cycle();
            b.write(lo, 0);
            b.read(hi, 0);
            b.write(hi, 1);
            b.read(lo, 1);
            exchanges.push(Exchange {
                lo,
                hi,
                lo_cycle: c,
                lo_chan: 0,
                hi_cycle: c,
                hi_chan: 1,
            });
        }
        let cert = SortCert::Tree(SorterCert::Merge {
            lo: Box::new(SorterCert::Block {
                first: 0,
                width: 2,
                comparators: 0..1,
            }),
            hi: Box::new(SorterCert::Block {
                first: 2,
                width: 2,
                comparators: 1..2,
            }),
            merger: 2..5,
        });
        let net = ObliviousNetwork {
            schedule: b.finish(),
            exchanges,
            cert,
        };
        let r = verify_network(&net, &Bounds::none());
        assert!(r.is_ok(), "{r}");
        assert_eq!(r.cert, "tree");
        // 2^2 + 2^2 + 3*3 sorted pairs.
        assert_eq!(r.vectors, 4 + 4 + 9);

        // Break the merger: drop its last comparator from the cert range.
        let mut bad = net.clone();
        bad.cert = SortCert::Tree(SorterCert::Merge {
            lo: Box::new(SorterCert::Block {
                first: 0,
                width: 2,
                comparators: 0..1,
            }),
            hi: Box::new(SorterCert::Block {
                first: 2,
                width: 2,
                comparators: 1..2,
            }),
            merger: 2..4,
        });
        let r = verify_network(&bad, &Bounds::none());
        assert!(!r.is_ok());
        assert!(r
            .net_violations
            .iter()
            .any(|v| v.kind() == "bad_cert" || v.kind() == "sortedness_failure"));
    }

    #[test]
    fn net_faults_are_seeded_and_detected() {
        let mut rng = Rng64::seed_from_u64(0xC0FFEE);
        for fault in NetFault::ALL {
            let mut seeded = 0;
            for _ in 0..8 {
                let mut net = three_sorter();
                if let Some(desc) = seed_net_fault(&mut net, fault, &mut rng) {
                    seeded += 1;
                    let r = verify_network(&net, &Bounds::none());
                    assert!(!r.is_ok(), "{fault:?} ({desc}) escaped:\n{r}");
                }
            }
            assert!(seeded > 0, "{fault:?} never seeded");
        }
    }
}
