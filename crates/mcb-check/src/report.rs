//! Verification reports: machine-readable JSON plus a human-readable diff.

use crate::verify::{Lint, Violation};
use mcb_json::Json;

/// Aggregate facts about the verified schedule.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct Stats {
    /// Processors.
    pub p: usize,
    /// Channels.
    pub k: usize,
    /// Cycles occupied.
    pub cycles: u64,
    /// Minimum messages (suppressible writes silent).
    pub messages_min: u64,
    /// Maximum messages (all writes materialize).
    pub messages_max: u64,
    /// Data moves declared (0 when no data layer).
    pub moves: u64,
}

/// The outcome of verifying one schedule.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct Report {
    /// The schedule's name.
    pub name: String,
    /// Aggregate schedule facts.
    pub stats: Stats,
    /// Broken invariants (empty = verified).
    pub violations: Vec<Violation>,
    /// Advisory findings.
    pub lints: Vec<Lint>,
}

impl Report {
    /// True when no invariant is violated (lints do not fail a schedule).
    pub fn is_ok(&self) -> bool {
        self.violations.is_empty()
    }

    /// Render as one deterministic JSON object (insertion-ordered keys,
    /// suitable for JSONL).
    pub fn to_json(&self) -> String {
        let violations = Json::Arr(
            self.violations
                .iter()
                .map(|v| {
                    Json::obj()
                        .field("kind", v.kind())
                        .field("detail", v.to_string())
                })
                .collect(),
        );
        let lints = Json::Arr(
            self.lints
                .iter()
                .map(|l| {
                    Json::obj()
                        .field("kind", l.kind())
                        .field("detail", l.to_string())
                })
                .collect(),
        );
        Json::obj()
            .field("record", "mcb-check")
            .field("schema", 1u64)
            .field("name", self.name.as_str())
            .field("p", self.stats.p as u64)
            .field("k", self.stats.k as u64)
            .field("cycles", self.stats.cycles)
            .field("messages_min", self.stats.messages_min)
            .field("messages_max", self.stats.messages_max)
            .field("moves", self.stats.moves)
            .field("ok", self.is_ok())
            .field("violations", violations)
            .field("lints", lints)
            .render()
    }
}

impl std::fmt::Display for Report {
    /// The human diff: a verdict line, then one indented line per finding.
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        writeln!(
            f,
            "{} [{}] p={} k={} cycles={} messages={}..{}",
            if self.is_ok() { "OK  " } else { "FAIL" },
            self.name,
            self.stats.p,
            self.stats.k,
            self.stats.cycles,
            self.stats.messages_min,
            self.stats.messages_max,
        )?;
        for v in &self.violations {
            writeln!(f, "  violation[{}]: {v}", v.kind())?;
        }
        for l in &self.lints {
            writeln!(f, "  lint[{}]: {l}", l.kind())?;
        }
        Ok(())
    }
}

#[cfg(test)]
mod tests {
    use crate::ir::ScheduleBuilder;
    use crate::verify::{verify, Bounds};

    #[test]
    fn json_is_deterministic_and_tagged() {
        let mut b = ScheduleBuilder::new("demo", 2, 1);
        b.begin_cycle();
        b.write(0, 0);
        b.write(1, 0);
        let r = verify(&b.finish(), &Bounds::none());
        let json = r.to_json();
        assert!(json.starts_with(r#"{"record":"mcb-check","schema":1,"name":"demo""#));
        assert!(json.contains(r#""kind":"write_collision""#));
        assert_eq!(json, r.to_json());
    }

    #[test]
    fn display_shows_verdict_and_findings() {
        let mut b = ScheduleBuilder::new("demo", 2, 1);
        b.begin_cycle();
        b.read(0, 0);
        let r = verify(&b.finish(), &Bounds::none());
        let text = r.to_string();
        assert!(text.starts_with("FAIL [demo]"));
        assert!(text.contains("read_from_silent_channel"));
    }
}
