//! The schedule intermediate representation.
//!
//! A [`CheckedSchedule`] is the static shadow of a lock-step MCB protocol:
//! for every cycle, what each of the `p` processors intends to write and
//! read. Two refinements carry the paper's subtleties:
//!
//! * **Suppressible writes** ([`WriteIntent::may_suppress`]): Columnsort
//!   pads columns with dummies that are "never broadcast" — the schedule
//!   slot exists, but the writer stays silent when it holds a dummy. A
//!   suppressible write claims the channel (no other writer may share it)
//!   without promising a message.
//! * **Expectation-typed reads** ([`Expect`]): most reads must find a
//!   value (`Expect::Value` — a silent channel there is a schedule bug),
//!   but the model makes empty channels *detectably* readable and the
//!   algorithms use that: a ragged Partial-Sums tree leaves some father
//!   reads legitimately empty, and dummy reconstruction in Columnsort
//!   reads channels whose scheduled writer may have suppressed
//!   (`Expect::MaybeEmpty`).
//!
//! The optional [`DataFlow`] layer records, for schedules that move a
//! fixed set of elements (the Columnsort transformations), where each
//! element slot travels — either locally within a processor or over a
//! specific scheduled broadcast — so the verifier can prove the moves form
//! a permutation and every wire leg rides a scheduled message.

/// Whether a read is allowed to find the channel empty.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum Expect {
    /// The read must find a message: a guaranteed (non-suppressible)
    /// writer must be scheduled on that channel in that cycle.
    Value,
    /// The read may detect an empty channel (ragged trees, dummy slots,
    /// a representative scanning its own collection slots).
    MaybeEmpty,
}

/// One processor's write intent in one cycle.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct WriteIntent {
    /// Channel index in `0..k`.
    pub chan: usize,
    /// True when the writer may hold a dummy and stay silent (the channel
    /// is still claimed: no other writer may use it that cycle).
    pub may_suppress: bool,
}

/// One processor's read intent in one cycle.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct ReadIntent {
    /// Channel index in `0..k`.
    pub chan: usize,
    /// Whether an empty channel is a schedule bug or expected.
    pub expect: Expect,
}

/// What one processor does in one cycle (both `None` = idle).
#[derive(Debug, Clone, Copy, Default, PartialEq, Eq)]
pub struct Intent {
    /// The write, if any.
    pub write: Option<WriteIntent>,
    /// The read, if any.
    pub read: Option<ReadIntent>,
}

/// All `p` processors' intents for one cycle.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct CycleIntents {
    /// `intents[i]` is processor `i`'s intent; length is always `p`.
    pub intents: Vec<Intent>,
}

/// How one element slot travels.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum Route {
    /// The move happens inside one processor's memory (free).
    Local {
        /// The processor performing the move.
        proc: usize,
    },
    /// The move rides a scheduled broadcast.
    Wire {
        /// Cycle of the carrying broadcast.
        cycle: usize,
        /// The scheduled writer.
        writer: usize,
        /// The channel written and read.
        chan: usize,
        /// The scheduled reader.
        reader: usize,
    },
}

/// One element slot's journey from source to destination position.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct DataMove {
    /// Source slot index in `0..slots`.
    pub src: usize,
    /// Destination slot index in `0..slots`.
    pub dst: usize,
    /// How the element gets there.
    pub route: Route,
}

/// The data-movement layer: `slots` element positions, each moved exactly
/// once (the verifier proves `moves` is a permutation).
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct DataFlow {
    /// Number of element slots.
    pub slots: usize,
    /// One move per slot.
    pub moves: Vec<DataMove>,
}

/// A complete static schedule for a lock-step protocol on an `MCB(p, k)`.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct CheckedSchedule {
    /// Human-readable identity (algorithm + parameters).
    pub name: String,
    /// Number of processors.
    pub p: usize,
    /// Number of channels.
    pub k: usize,
    /// Per-cycle intents, in execution order.
    pub cycles: Vec<CycleIntents>,
    /// Optional data-movement layer.
    pub data: Option<DataFlow>,
}

impl CheckedSchedule {
    /// Number of cycles the schedule occupies.
    pub fn cycle_count(&self) -> u64 {
        self.cycles.len() as u64
    }

    /// `(min, max)` message counts: suppressible writes may or may not
    /// materialize, everything else always does.
    pub fn message_bounds(&self) -> (u64, u64) {
        let mut min = 0u64;
        let mut max = 0u64;
        for cyc in &self.cycles {
            for intent in &cyc.intents {
                if let Some(w) = intent.write {
                    max += 1;
                    if !w.may_suppress {
                        min += 1;
                    }
                }
            }
        }
        (min, max)
    }
}

/// Incremental builder used by the `mcb-algos` emitters: mirrors the shape
/// of the runtime protocols (an outer per-cycle loop, inner per-processor
/// decisions). Misuse — two writes by one processor in one cycle, an
/// out-of-range processor — is a bug in the *emitter*, so it panics.
#[derive(Debug, Clone)]
pub struct ScheduleBuilder {
    name: String,
    p: usize,
    k: usize,
    cycles: Vec<CycleIntents>,
    slots: usize,
    moves: Vec<DataMove>,
    has_data: bool,
}

impl ScheduleBuilder {
    /// Start a schedule for an `MCB(p, k)`.
    pub fn new(name: &str, p: usize, k: usize) -> Self {
        assert!(p >= 1 && k >= 1, "need p >= 1 and k >= 1");
        ScheduleBuilder {
            name: name.to_owned(),
            p,
            k,
            cycles: Vec::new(),
            slots: 0,
            moves: Vec::new(),
            has_data: false,
        }
    }

    /// Number of cycles emitted so far.
    pub fn cycle_count(&self) -> usize {
        self.cycles.len()
    }

    /// Open the next cycle (all processors idle until intents are added).
    pub fn begin_cycle(&mut self) -> usize {
        self.cycles.push(CycleIntents {
            intents: vec![Intent::default(); self.p],
        });
        self.cycles.len() - 1
    }

    fn intent(&mut self, proc: usize) -> &mut Intent {
        assert!(proc < self.p, "processor {proc} out of range");
        let cyc = self
            .cycles
            .last_mut()
            .expect("begin_cycle before adding intents");
        &mut cyc.intents[proc]
    }

    /// Schedule a guaranteed write by `proc` on `chan` in the current cycle.
    pub fn write(&mut self, proc: usize, chan: usize) {
        let intent = self.intent(proc);
        assert!(intent.write.is_none(), "proc {proc} already writes");
        intent.write = Some(WriteIntent {
            chan,
            may_suppress: false,
        });
    }

    /// Schedule a suppressible write (the slot may hold a dummy).
    pub fn write_suppressible(&mut self, proc: usize, chan: usize) {
        let intent = self.intent(proc);
        assert!(intent.write.is_none(), "proc {proc} already writes");
        intent.write = Some(WriteIntent {
            chan,
            may_suppress: true,
        });
    }

    /// Schedule a read that must find a value.
    pub fn read(&mut self, proc: usize, chan: usize) {
        let intent = self.intent(proc);
        assert!(intent.read.is_none(), "proc {proc} already reads");
        intent.read = Some(ReadIntent {
            chan,
            expect: Expect::Value,
        });
    }

    /// Schedule a read that may legitimately find the channel empty.
    pub fn read_maybe_empty(&mut self, proc: usize, chan: usize) {
        let intent = self.intent(proc);
        assert!(intent.read.is_none(), "proc {proc} already reads");
        intent.read = Some(ReadIntent {
            chan,
            expect: Expect::MaybeEmpty,
        });
    }

    /// Declare the data-movement layer's slot count (enables move checks).
    pub fn declare_slots(&mut self, slots: usize) {
        self.has_data = true;
        self.slots = slots;
    }

    /// Record a free in-memory move by `proc`.
    pub fn local_move(&mut self, proc: usize, src: usize, dst: usize) {
        self.moves.push(DataMove {
            src,
            dst,
            route: Route::Local { proc },
        });
    }

    /// Record a move riding the broadcast `(cycle, writer, chan, reader)`.
    pub fn wire_move(
        &mut self,
        cycle: usize,
        writer: usize,
        chan: usize,
        reader: usize,
        src: usize,
        dst: usize,
    ) {
        self.moves.push(DataMove {
            src,
            dst,
            route: Route::Wire {
                cycle,
                writer,
                chan,
                reader,
            },
        });
    }

    /// Finish into an immutable [`CheckedSchedule`].
    pub fn finish(self) -> CheckedSchedule {
        CheckedSchedule {
            name: self.name,
            p: self.p,
            k: self.k,
            cycles: self.cycles,
            data: self.has_data.then_some(DataFlow {
                slots: self.slots,
                moves: self.moves,
            }),
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn builder_produces_dense_cycles() {
        let mut b = ScheduleBuilder::new("t", 3, 2);
        b.begin_cycle();
        b.write(0, 1);
        b.read(2, 1);
        b.begin_cycle();
        let s = b.finish();
        assert_eq!(s.cycle_count(), 2);
        assert_eq!(s.cycles[0].intents.len(), 3);
        assert_eq!(s.cycles[0].intents[0].write.unwrap().chan, 1);
        assert!(s.cycles[1].intents.iter().all(|i| *i == Intent::default()));
        assert_eq!(s.message_bounds(), (1, 1));
        assert!(s.data.is_none());
    }

    #[test]
    fn suppressible_writes_widen_message_bounds() {
        let mut b = ScheduleBuilder::new("t", 2, 1);
        b.begin_cycle();
        b.write_suppressible(0, 0);
        b.begin_cycle();
        b.write(1, 0);
        let s = b.finish();
        assert_eq!(s.message_bounds(), (1, 2));
    }

    #[test]
    #[should_panic(expected = "already writes")]
    fn double_write_is_emitter_bug() {
        let mut b = ScheduleBuilder::new("t", 2, 2);
        b.begin_cycle();
        b.write(0, 0);
        b.write(0, 1);
    }
}
