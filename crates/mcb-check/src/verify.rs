//! The verifier: proves the model's static obligations for a schedule.
//!
//! Checked invariants (violations):
//!
//! 1. **Collision-freedom** — at most one writer per (cycle, channel),
//!    counting suppressible writes (they claim the channel even when
//!    silent).
//! 2. **Channel range** — every written/read channel is `< k`.
//! 3. **Read-validity** — every [`Expect::Value`] read targets a channel
//!    with a scheduled, non-suppressible writer that cycle.
//! 4. **Permutation data flow** — if a [`DataFlow`](crate::ir::DataFlow)
//!    layer is declared, its moves use every source and destination slot
//!    exactly once, and every wire leg names a broadcast the schedule
//!    actually performs (writer writes that channel, reader reads it, in
//!    that cycle).
//! 5. **Paper bounds** — cycle/message counts match the closed forms the
//!    caller asserts via [`Bounds`] (exact or upper bound).
//!
//! Advisory **lints** flag waste that is not a correctness bug: channels
//! never touched and messages nobody reads.

use crate::ir::{CheckedSchedule, Expect, Route};
use crate::report::{Report, Stats};

/// A broken invariant — the schedule would fail (or overrun) on the engine.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum Violation {
    /// Two or more writers share a channel in a cycle (§2: the computation
    /// fails).
    WriteCollision {
        /// Cycle index.
        cycle: usize,
        /// Channel index.
        chan: usize,
        /// Every scheduled writer of that channel that cycle.
        writers: Vec<usize>,
    },
    /// A write names a channel `>= k`.
    BadWriteChannel {
        /// Cycle index.
        cycle: usize,
        /// Writing processor.
        proc: usize,
        /// The out-of-range channel.
        chan: usize,
    },
    /// A read names a channel `>= k`.
    BadReadChannel {
        /// Cycle index.
        cycle: usize,
        /// Reading processor.
        proc: usize,
        /// The out-of-range channel.
        chan: usize,
    },
    /// An `Expect::Value` read targets a channel with no writer that cycle.
    ReadFromSilentChannel {
        /// Cycle index.
        cycle: usize,
        /// Reading processor.
        proc: usize,
        /// The silent channel.
        chan: usize,
    },
    /// An `Expect::Value` read's only writer is suppressible — the value
    /// is not guaranteed.
    ValueReadFromSuppressibleWrite {
        /// Cycle index.
        cycle: usize,
        /// Reading processor.
        proc: usize,
        /// The channel.
        chan: usize,
        /// The suppressible writer.
        writer: usize,
    },
    /// A cycle's intent vector does not have `p` entries (malformed IR).
    MalformedCycle {
        /// Cycle index.
        cycle: usize,
        /// Entries found.
        got: usize,
        /// Entries required (`p`).
        want: usize,
    },
    /// The data layer has the wrong number of moves for its slot count.
    MoveCountMismatch {
        /// Declared slots.
        slots: usize,
        /// Moves recorded.
        moves: usize,
    },
    /// A slot is moved twice (element duplicated) or a move reads an
    /// out-of-range source.
    BadMoveSource {
        /// The offending source slot.
        slot: usize,
    },
    /// A destination receives two elements (element lost) or is out of
    /// range.
    BadMoveDest {
        /// The offending destination slot.
        slot: usize,
    },
    /// A wire move names a broadcast the schedule does not perform.
    WireMoveMismatch {
        /// Cycle named by the route.
        cycle: usize,
        /// Writer named by the route.
        writer: usize,
        /// Channel named by the route.
        chan: usize,
        /// Reader named by the route.
        reader: usize,
        /// What exactly does not line up.
        why: String,
    },
    /// The schedule's cycle count differs from the asserted closed form.
    CycleCountMismatch {
        /// Cycles in the schedule.
        got: u64,
        /// The closed form.
        want: u64,
    },
    /// The schedule exceeds the asserted cycle upper bound.
    CycleBoundExceeded {
        /// Cycles in the schedule.
        got: u64,
        /// The bound.
        bound: u64,
    },
    /// The message count cannot equal the asserted exact closed form.
    MessageCountMismatch {
        /// Minimum messages (suppressible writes silent).
        got_min: u64,
        /// Maximum messages (all writes materialize).
        got_max: u64,
        /// The closed form.
        want: u64,
    },
    /// The maximum message count exceeds the asserted upper bound.
    MessageBoundExceeded {
        /// Maximum messages.
        got_max: u64,
        /// The bound.
        bound: u64,
    },
}

impl Violation {
    /// Stable machine-readable kind tag (used in the JSON report).
    pub fn kind(&self) -> &'static str {
        match self {
            Violation::WriteCollision { .. } => "write_collision",
            Violation::BadWriteChannel { .. } => "bad_write_channel",
            Violation::BadReadChannel { .. } => "bad_read_channel",
            Violation::ReadFromSilentChannel { .. } => "read_from_silent_channel",
            Violation::ValueReadFromSuppressibleWrite { .. } => {
                "value_read_from_suppressible_write"
            }
            Violation::MalformedCycle { .. } => "malformed_cycle",
            Violation::MoveCountMismatch { .. } => "move_count_mismatch",
            Violation::BadMoveSource { .. } => "bad_move_source",
            Violation::BadMoveDest { .. } => "bad_move_dest",
            Violation::WireMoveMismatch { .. } => "wire_move_mismatch",
            Violation::CycleCountMismatch { .. } => "cycle_count_mismatch",
            Violation::CycleBoundExceeded { .. } => "cycle_bound_exceeded",
            Violation::MessageCountMismatch { .. } => "message_count_mismatch",
            Violation::MessageBoundExceeded { .. } => "message_bound_exceeded",
        }
    }
}

impl std::fmt::Display for Violation {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        match self {
            Violation::WriteCollision {
                cycle,
                chan,
                writers,
            } => write!(
                f,
                "cycle {cycle}: channel {chan} has {} writers {writers:?} (need <= 1)",
                writers.len()
            ),
            Violation::BadWriteChannel { cycle, proc, chan } => {
                write!(f, "cycle {cycle}: P{proc} writes out-of-range channel {chan}")
            }
            Violation::BadReadChannel { cycle, proc, chan } => {
                write!(f, "cycle {cycle}: P{proc} reads out-of-range channel {chan}")
            }
            Violation::ReadFromSilentChannel { cycle, proc, chan } => write!(
                f,
                "cycle {cycle}: P{proc} expects a value on channel {chan}, but no writer is scheduled"
            ),
            Violation::ValueReadFromSuppressibleWrite {
                cycle,
                proc,
                chan,
                writer,
            } => write!(
                f,
                "cycle {cycle}: P{proc} expects a value on channel {chan}, but its only writer P{writer} may suppress"
            ),
            Violation::MalformedCycle { cycle, got, want } => {
                write!(f, "cycle {cycle}: {got} intents recorded, expected p = {want}")
            }
            Violation::MoveCountMismatch { slots, moves } => {
                write!(f, "data flow: {moves} moves for {slots} slots (need exactly one each)")
            }
            Violation::BadMoveSource { slot } => {
                write!(f, "data flow: source slot {slot} moved twice or out of range (element duplicated)")
            }
            Violation::BadMoveDest { slot } => {
                write!(f, "data flow: destination slot {slot} filled twice or out of range (element lost)")
            }
            Violation::WireMoveMismatch {
                cycle,
                writer,
                chan,
                reader,
                why,
            } => write!(
                f,
                "data flow: wire move (cycle {cycle}, P{writer} -> chan {chan} -> P{reader}) has no matching broadcast: {why}"
            ),
            Violation::CycleCountMismatch { got, want } => {
                write!(f, "cycles: schedule has {got}, closed form says {want}")
            }
            Violation::CycleBoundExceeded { got, bound } => {
                write!(f, "cycles: schedule has {got}, exceeding the bound {bound}")
            }
            Violation::MessageCountMismatch {
                got_min,
                got_max,
                want,
            } => write!(
                f,
                "messages: schedule sends between {got_min} and {got_max}, closed form says exactly {want}"
            ),
            Violation::MessageBoundExceeded { got_max, bound } => {
                write!(f, "messages: schedule may send {got_max}, exceeding the bound {bound}")
            }
        }
    }
}

/// An advisory finding: wasteful but not incorrect.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum Lint {
    /// A channel is never written or read over the whole schedule.
    IdleChannel {
        /// The unused channel.
        chan: usize,
    },
    /// Messages are broadcast with no scheduled reader in their cycle.
    UnreadMessages {
        /// How many such writes exist.
        count: u64,
        /// The first occurrence, as `(cycle, proc, chan)`.
        first: (usize, usize, usize),
    },
}

impl std::fmt::Display for Lint {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        match self {
            Lint::IdleChannel { chan } => {
                write!(f, "channel {chan} is never used (consider a narrower k)")
            }
            Lint::UnreadMessages { count, first } => write!(
                f,
                "{count} scheduled writes have no reader in their cycle (first: cycle {}, P{} on channel {})",
                first.0, first.1, first.2
            ),
        }
    }
}

impl Lint {
    /// Stable machine-readable kind tag.
    pub fn kind(&self) -> &'static str {
        match self {
            Lint::IdleChannel { .. } => "idle_channel",
            Lint::UnreadMessages { .. } => "unread_messages",
        }
    }
}

/// Closed-form cost assertions to check the schedule against. `None`
/// fields are not checked.
#[derive(Debug, Clone, Copy, Default, PartialEq, Eq)]
pub struct Bounds {
    /// The schedule must occupy exactly this many cycles.
    pub cycles_exact: Option<u64>,
    /// The schedule must occupy at most this many cycles.
    pub cycles_max: Option<u64>,
    /// The schedule must send exactly this many messages (only meaningful
    /// when no writes are suppressible).
    pub messages_exact: Option<u64>,
    /// The schedule may send at most this many messages.
    pub messages_max: Option<u64>,
}

impl Bounds {
    /// Assert nothing.
    pub fn none() -> Bounds {
        Bounds::default()
    }
}

/// Verify `schedule` against the model invariants and `bounds`.
pub fn verify(schedule: &CheckedSchedule, bounds: &Bounds) -> Report {
    let p = schedule.p;
    let k = schedule.k;
    let mut violations: Vec<Violation> = Vec::new();
    let mut lints: Vec<Lint> = Vec::new();

    let mut chan_used = vec![false; k];
    let mut unread = 0u64;
    let mut first_unread: Option<(usize, usize, usize)> = None;

    // Per-cycle scratch, reused across cycles.
    let mut writers: Vec<Vec<usize>> = vec![Vec::new(); k];
    let mut read_chans: Vec<bool> = vec![false; k];

    for (ci, cyc) in schedule.cycles.iter().enumerate() {
        if cyc.intents.len() != p {
            violations.push(Violation::MalformedCycle {
                cycle: ci,
                got: cyc.intents.len(),
                want: p,
            });
            continue;
        }
        for w in &mut writers {
            w.clear();
        }
        read_chans.iter_mut().for_each(|r| *r = false);

        for (proc, intent) in cyc.intents.iter().enumerate() {
            if let Some(w) = intent.write {
                if w.chan >= k {
                    violations.push(Violation::BadWriteChannel {
                        cycle: ci,
                        proc,
                        chan: w.chan,
                    });
                } else {
                    writers[w.chan].push(proc);
                    chan_used[w.chan] = true;
                }
            }
            if let Some(r) = intent.read {
                if r.chan >= k {
                    violations.push(Violation::BadReadChannel {
                        cycle: ci,
                        proc,
                        chan: r.chan,
                    });
                } else {
                    read_chans[r.chan] = true;
                    chan_used[r.chan] = true;
                }
            }
        }
        for (chan, w) in writers.iter().enumerate() {
            if w.len() > 1 {
                violations.push(Violation::WriteCollision {
                    cycle: ci,
                    chan,
                    writers: w.clone(),
                });
            }
            if !w.is_empty() && !read_chans[chan] {
                unread += w.len() as u64;
                if first_unread.is_none() {
                    first_unread = Some((ci, w[0], chan));
                }
            }
        }
        for (proc, intent) in cyc.intents.iter().enumerate() {
            let Some(r) = intent.read else { continue };
            if r.chan >= k || r.expect != Expect::Value {
                continue;
            }
            let ws = &writers[r.chan];
            if ws.is_empty() {
                violations.push(Violation::ReadFromSilentChannel {
                    cycle: ci,
                    proc,
                    chan: r.chan,
                });
            } else if ws.len() == 1 {
                let writer = ws[0];
                let suppressible = cyc.intents[writer]
                    .write
                    .is_some_and(|w| w.chan == r.chan && w.may_suppress);
                if suppressible {
                    violations.push(Violation::ValueReadFromSuppressibleWrite {
                        cycle: ci,
                        proc,
                        chan: r.chan,
                        writer,
                    });
                }
            }
        }
    }

    // ---- data-flow permutation + wire-route cross-check -------------------
    if let Some(data) = &schedule.data {
        if data.moves.len() != data.slots {
            violations.push(Violation::MoveCountMismatch {
                slots: data.slots,
                moves: data.moves.len(),
            });
        }
        let mut src_seen = vec![false; data.slots];
        let mut dst_seen = vec![false; data.slots];
        for mv in &data.moves {
            if mv.src >= data.slots || src_seen[mv.src] {
                violations.push(Violation::BadMoveSource { slot: mv.src });
            } else {
                src_seen[mv.src] = true;
            }
            if mv.dst >= data.slots || dst_seen[mv.dst] {
                violations.push(Violation::BadMoveDest { slot: mv.dst });
            } else {
                dst_seen[mv.dst] = true;
            }
            if let Route::Wire {
                cycle,
                writer,
                chan,
                reader,
            } = mv.route
            {
                let mismatch = |why: &str| Violation::WireMoveMismatch {
                    cycle,
                    writer,
                    chan,
                    reader,
                    why: why.to_owned(),
                };
                match schedule.cycles.get(cycle) {
                    None => violations.push(mismatch("cycle out of range")),
                    Some(cyc) if cyc.intents.len() == p => {
                        if writer >= p || cyc.intents[writer].write.is_none_or(|w| w.chan != chan) {
                            violations
                                .push(mismatch("writer does not write that channel that cycle"));
                        }
                        if reader >= p || cyc.intents[reader].read.is_none_or(|r| r.chan != chan) {
                            violations
                                .push(mismatch("reader does not read that channel that cycle"));
                        }
                    }
                    Some(_) => {} // malformed cycle already reported
                }
            }
        }
    }

    // ---- closed-form cost assertions --------------------------------------
    let cycles = schedule.cycle_count();
    let (msg_min, msg_max) = schedule.message_bounds();
    if let Some(want) = bounds.cycles_exact {
        if cycles != want {
            violations.push(Violation::CycleCountMismatch { got: cycles, want });
        }
    }
    if let Some(bound) = bounds.cycles_max {
        if cycles > bound {
            violations.push(Violation::CycleBoundExceeded { got: cycles, bound });
        }
    }
    if let Some(want) = bounds.messages_exact {
        if msg_min != want || msg_max != want {
            violations.push(Violation::MessageCountMismatch {
                got_min: msg_min,
                got_max: msg_max,
                want,
            });
        }
    }
    if let Some(bound) = bounds.messages_max {
        if msg_max > bound {
            violations.push(Violation::MessageBoundExceeded {
                got_max: msg_max,
                bound,
            });
        }
    }

    // ---- lints -------------------------------------------------------------
    for (chan, used) in chan_used.iter().enumerate() {
        if !used {
            lints.push(Lint::IdleChannel { chan });
        }
    }
    if let Some(first) = first_unread {
        lints.push(Lint::UnreadMessages {
            count: unread,
            first,
        });
    }

    Report {
        name: schedule.name.clone(),
        stats: Stats {
            p,
            k,
            cycles,
            messages_min: msg_min,
            messages_max: msg_max,
            moves: schedule.data.as_ref().map_or(0, |d| d.moves.len() as u64),
        },
        violations,
        lints,
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::ir::ScheduleBuilder;

    fn two_proc_ok() -> CheckedSchedule {
        let mut b = ScheduleBuilder::new("ok", 2, 2);
        b.begin_cycle();
        b.write(0, 0);
        b.read(1, 0);
        b.begin_cycle();
        b.write(1, 1);
        b.read(0, 1);
        b.finish()
    }

    #[test]
    fn clean_schedule_passes() {
        let r = verify(&two_proc_ok(), &Bounds::none());
        assert!(r.is_ok(), "{r}");
        assert_eq!(r.stats.cycles, 2);
        assert_eq!(r.stats.messages_min, 2);
    }

    #[test]
    fn detects_collision() {
        let mut b = ScheduleBuilder::new("bad", 3, 2);
        b.begin_cycle();
        b.write(0, 1);
        b.write(2, 1);
        let r = verify(&b.finish(), &Bounds::none());
        assert!(matches!(
            r.violations[0],
            Violation::WriteCollision { cycle: 0, chan: 1, ref writers } if writers == &[0, 2]
        ));
    }

    #[test]
    fn detects_silent_value_read() {
        let mut b = ScheduleBuilder::new("bad", 2, 2);
        b.begin_cycle();
        b.write(0, 0);
        b.read(1, 1); // nobody writes channel 1
        let r = verify(&b.finish(), &Bounds::none());
        assert!(r
            .violations
            .iter()
            .any(|v| matches!(v, Violation::ReadFromSilentChannel { chan: 1, .. })));
    }

    #[test]
    fn maybe_empty_read_on_silent_channel_is_fine() {
        let mut b = ScheduleBuilder::new("ok", 2, 2);
        b.begin_cycle();
        b.read_maybe_empty(1, 1);
        let r = verify(&b.finish(), &Bounds::none());
        assert!(r.is_ok(), "{r}");
    }

    #[test]
    fn value_read_needs_guaranteed_writer() {
        let mut b = ScheduleBuilder::new("bad", 2, 1);
        b.begin_cycle();
        b.write_suppressible(0, 0);
        b.read(1, 0);
        let r = verify(&b.finish(), &Bounds::none());
        assert!(r.violations.iter().any(|v| matches!(
            v,
            Violation::ValueReadFromSuppressibleWrite { writer: 0, .. }
        )));
    }

    #[test]
    fn detects_bad_channels() {
        let mut b = ScheduleBuilder::new("bad", 1, 1);
        b.begin_cycle();
        b.write(0, 3);
        let r = verify(&b.finish(), &Bounds::none());
        assert!(matches!(
            r.violations[0],
            Violation::BadWriteChannel { chan: 3, .. }
        ));
    }

    #[test]
    fn checks_dataflow_permutation_and_routes() {
        let mut b = ScheduleBuilder::new("flow", 2, 1);
        b.begin_cycle();
        b.write(0, 0);
        b.read(1, 0);
        b.declare_slots(2);
        b.wire_move(0, 0, 0, 1, 0, 1);
        b.local_move(1, 1, 0);
        let r = verify(&b.finish(), &Bounds::none());
        assert!(r.is_ok(), "{r}");

        // Duplicate destination -> element lost.
        let mut b = ScheduleBuilder::new("dup", 1, 1);
        b.begin_cycle();
        b.declare_slots(2);
        b.local_move(0, 0, 1);
        b.local_move(0, 1, 1);
        let r = verify(&b.finish(), &Bounds::none());
        assert!(r
            .violations
            .iter()
            .any(|v| matches!(v, Violation::BadMoveDest { slot: 1 })));

        // Wire route naming an unscheduled broadcast.
        let mut b = ScheduleBuilder::new("ghost", 2, 1);
        b.begin_cycle();
        b.declare_slots(1);
        b.wire_move(0, 0, 0, 1, 0, 0);
        let r = verify(&b.finish(), &Bounds::none());
        assert!(r
            .violations
            .iter()
            .any(|v| matches!(v, Violation::WireMoveMismatch { .. })));
    }

    #[test]
    fn enforces_bounds() {
        let s = two_proc_ok();
        let r = verify(
            &s,
            &Bounds {
                cycles_exact: Some(3),
                ..Bounds::none()
            },
        );
        assert!(matches!(
            r.violations[0],
            Violation::CycleCountMismatch { got: 2, want: 3 }
        ));
        let r = verify(
            &s,
            &Bounds {
                messages_exact: Some(2),
                cycles_max: Some(2),
                messages_max: Some(2),
                ..Bounds::none()
            },
        );
        assert!(r.is_ok(), "{r}");
    }

    #[test]
    fn lints_idle_channels_and_unread_messages() {
        let mut b = ScheduleBuilder::new("wasteful", 2, 3);
        b.begin_cycle();
        b.write(0, 0); // no reader
        let r = verify(&b.finish(), &Bounds::none());
        assert!(r.is_ok(), "lints are advisory");
        assert!(r
            .lints
            .iter()
            .any(|l| matches!(l, Lint::IdleChannel { chan: 1 })));
        assert!(r
            .lints
            .iter()
            .any(|l| matches!(l, Lint::UnreadMessages { count: 1, .. })));
    }
}
