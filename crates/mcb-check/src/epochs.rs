//! Multi-epoch degraded verification: prove a *self-healing* run's whole
//! epoch history sound, one configuration at a time.
//!
//! A self-healing run (the `heal` module of `mcb-algos`) passes through a
//! sequence of **epochs**: epoch 0 is the fault-free configuration; each
//! detected fault triggers a census that commits a new epoch with smaller
//! live channel/processor sets. Within one epoch the protocol is an
//! ordinary static schedule on the surviving hardware, so the §2 lemma
//! machinery of [`degrade`](crate::degrade) applies epoch by epoch:
//!
//! * the caller supplies, per epoch, the **logical** schedule the protocol
//!   follows in that configuration (roles already re-dealt over the
//!   surviving processors) and the channels dead in that epoch;
//! * [`verify_epochs`] remaps each onto the epoch's survivors via
//!   [`remap_schedule`](crate::degrade::remap_schedule) and re-proves
//!   collision-freedom, read-validity, and the lemma's `⌈k/k'⌉` dilation
//!   bound with the full verifier;
//! * the per-epoch lemma bounds then compose into a whole-run bound:
//!   `Σᵢ lemma_boundᵢ + (E − 1) × reconfig_overhead`, charging one
//!   reconfiguration (census + bounded rollback) per epoch transition.
//!
//! The composition is sound because epochs are serial and disjoint: a run
//! is inside exactly one configuration at a time, transitions cost at most
//! `reconfig_overhead` cycles by construction of the census, and deaths
//! are permanent so later epochs never resurrect hardware an earlier proof
//! assumed dead.

use crate::degrade::{verify_degraded, DegradeError, DegradedReport, Outages};
use crate::ir::CheckedSchedule;
use crate::verify::Bounds;

/// One epoch of a self-healing run, as seen by the static layer.
#[derive(Debug, Clone)]
pub struct EpochSegment {
    /// The logical schedule the protocol follows in this configuration
    /// (full channel range `0..k`; the remap squeezes it onto survivors).
    pub schedule: CheckedSchedule,
    /// Channels dead throughout this epoch (dead from its first cycle —
    /// a mid-epoch death is what *ends* an epoch, so it belongs to the
    /// next segment).
    pub dead_chans: Vec<usize>,
}

impl EpochSegment {
    /// A segment with no dead channels (epoch 0 of a run that was born
    /// healthy).
    pub fn healthy(schedule: CheckedSchedule) -> EpochSegment {
        EpochSegment {
            schedule,
            dead_chans: Vec::new(),
        }
    }

    /// A segment with the given channels dead from its first cycle.
    pub fn degraded(schedule: CheckedSchedule, dead_chans: Vec<usize>) -> EpochSegment {
        EpochSegment {
            schedule,
            dead_chans,
        }
    }

    fn outages(&self) -> Outages {
        self.dead_chans
            .iter()
            .fold(Outages::new(self.schedule.k), |o, &c| o.kill(c, 0))
    }
}

/// The outcome of [`verify_epochs`]: one full degraded proof per epoch
/// plus the composed whole-run cycle bound.
#[derive(Debug, Clone)]
pub struct EpochsReport {
    /// Per-epoch verdicts, in epoch order (same length as the input).
    pub reports: Vec<DegradedReport>,
    /// The composed bound: `Σ lemma_bound + (epochs − 1) × reconfig_overhead`.
    pub total_bound: u64,
}

impl EpochsReport {
    /// Did every epoch's degraded schedule verify clean?
    pub fn is_ok(&self) -> bool {
        self.reports.iter().all(|r| r.report.is_ok())
    }

    /// Indices of epochs whose verification failed.
    pub fn failed_epochs(&self) -> Vec<usize> {
        self.reports
            .iter()
            .enumerate()
            .filter(|(_, r)| !r.report.is_ok())
            .map(|(i, _)| i)
            .collect()
    }
}

/// Verify every epoch of a self-healing run and compose the cycle bound
/// (see the [module docs](self)). `reconfig_overhead` is the worst-case
/// cost of one epoch transition — for the census protocol this is
/// `EpochCtx::census_cost` plus one phase of rollback. Caller `bounds`
/// apply per epoch, on top of each epoch's lemma bound.
///
/// Errors propagate from the first epoch that cannot even be remapped
/// (shape mismatch, no surviving channel). An empty segment list is a
/// caller bug and panics — a run always has epoch 0.
pub fn verify_epochs(
    segments: &[EpochSegment],
    reconfig_overhead: u64,
    bounds: &Bounds,
) -> Result<EpochsReport, DegradeError> {
    assert!(!segments.is_empty(), "a run always has epoch 0");
    let mut reports = Vec::with_capacity(segments.len());
    for seg in segments {
        reports.push(verify_degraded(&seg.schedule, &seg.outages(), bounds)?);
    }
    let total_bound = reports.iter().map(|r| r.lemma_bound).sum::<u64>()
        + (segments.len() as u64 - 1) * reconfig_overhead;
    Ok(EpochsReport {
        reports,
        total_bound,
    })
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::ir::ScheduleBuilder;

    /// One writer per cycle, everyone reads — the all-read round shape the
    /// self-healing layer emits.
    fn all_read(p: usize, k: usize, rounds: usize) -> CheckedSchedule {
        let mut b = ScheduleBuilder::new("all-read", p, k);
        for t in 0..rounds {
            b.begin_cycle();
            let chan = t % k;
            b.write(t % p, chan);
            for proc in 0..p {
                b.read(proc, chan);
            }
        }
        b.finish()
    }

    #[test]
    fn healthy_single_epoch_has_no_reconfig_charge() {
        let segs = [EpochSegment::healthy(all_read(3, 2, 6))];
        let r = verify_epochs(&segs, 1000, &Bounds::none()).unwrap();
        assert!(r.is_ok());
        assert_eq!(r.reports.len(), 1);
        assert_eq!(r.total_bound, 6); // lemma factor 1, zero transitions
        assert!(r.failed_epochs().is_empty());
    }

    #[test]
    fn epoch_bounds_compose_with_reconfig_overhead() {
        // Epoch 0 healthy (6 rounds), epoch 1 with channel 0 dead (4
        // rounds, k' = 1 so the lemma doubles them).
        let segs = [
            EpochSegment::healthy(all_read(3, 2, 6)),
            EpochSegment::degraded(all_read(3, 2, 4), vec![0]),
        ];
        let r = verify_epochs(&segs, 10, &Bounds::none()).unwrap();
        assert!(r.is_ok(), "{:?}", r.failed_epochs());
        assert_eq!(r.reports[0].lemma_bound, 6);
        assert_eq!(r.reports[1].lemma_bound, 8);
        assert_eq!(r.total_bound, 6 + 8 + 10);
        // The degraded epoch really moved off the dead channel.
        for cyc in &r.reports[1].schedule.cycles {
            for i in &cyc.intents {
                assert!(i.write.is_none_or(|w| w.chan == 1));
                assert!(i.read.is_none_or(|rd| rd.chan == 1));
            }
        }
    }

    #[test]
    fn a_colliding_epoch_fails_and_is_named() {
        let mut b = ScheduleBuilder::new("bad", 2, 2);
        b.begin_cycle();
        b.write(0, 0);
        b.write(1, 0);
        let segs = [
            EpochSegment::healthy(all_read(2, 2, 2)),
            EpochSegment::healthy(b.finish()),
        ];
        let r = verify_epochs(&segs, 5, &Bounds::none()).unwrap();
        assert!(!r.is_ok());
        assert_eq!(r.failed_epochs(), vec![1]);
    }

    #[test]
    fn all_channels_dead_is_a_degrade_error() {
        let segs = [EpochSegment::degraded(all_read(2, 2, 2), vec![0, 1])];
        let err = verify_epochs(&segs, 0, &Bounds::none()).unwrap_err();
        assert_eq!(err, DegradeError::AllChannelsDead { cycle: 0 });
    }
}
