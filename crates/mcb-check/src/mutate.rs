//! Mutation self-test support: seed off-by-one faults into a schedule.
//!
//! A verifier is only trustworthy if it demonstrably *fails* broken
//! schedules. [`seed_fault`] injects the classic scheduling mistakes —
//! a write aimed one channel over, a second writer joining a slot, a read
//! pointed at a silent channel, a dropped broadcast, a duplicated or lost
//! data move, a wire route off by one cycle — into an otherwise valid
//! schedule. Each seeding is constructed so that the mutated schedule
//! *provably violates an invariant* (a mutation that happens to yield
//! another valid schedule is not a detectable fault for any static
//! checker, so the seeder rejects those candidates); the self-test then
//! asserts the verifier reports at least one violation for 100% of seeded
//! faults.

use crate::ir::{CheckedSchedule, Expect, ReadIntent, Route, WriteIntent};
use mcb_rng::Rng64;

/// The fault classes the self-test seeds.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum Fault {
    /// Retarget an existing write to a different (or out-of-range) channel.
    RetargetWrite,
    /// Add a second writer to an occupied (cycle, channel) slot.
    AddWriter,
    /// Retarget a must-find-value read to a silent or out-of-range channel.
    RetargetRead,
    /// Delete a guaranteed write some reader or wire move depends on.
    DropWrite,
    /// Delete a data move (element lost).
    DropMove,
    /// Point one data move at another's destination (element duplicated).
    DupMoveDest,
    /// Shift a wire route's cycle by one.
    ShiftWireCycle,
}

impl Fault {
    /// Every fault class, for exhaustive self-tests.
    pub const ALL: [Fault; 7] = [
        Fault::RetargetWrite,
        Fault::AddWriter,
        Fault::RetargetRead,
        Fault::DropWrite,
        Fault::DropMove,
        Fault::DupMoveDest,
        Fault::ShiftWireCycle,
    ];
}

/// All (cycle, proc) positions carrying a write, with the intent.
fn writes(s: &CheckedSchedule) -> Vec<(usize, usize, WriteIntent)> {
    let mut out = Vec::new();
    for (ci, cyc) in s.cycles.iter().enumerate() {
        for (proc, intent) in cyc.intents.iter().enumerate() {
            if let Some(w) = intent.write {
                out.push((ci, proc, w));
            }
        }
    }
    out
}

/// Does any wire move ride the broadcast `(cycle, writer, chan)`?
fn wire_depends_on(s: &CheckedSchedule, cycle: usize, writer: usize, chan: usize) -> bool {
    s.data.as_ref().is_some_and(|d| {
        d.moves.iter().any(|mv| {
            matches!(mv.route, Route::Wire { cycle: c, writer: w, chan: ch, .. }
                if (c, w, ch) == (cycle, writer, chan))
        })
    })
}

/// Is there an `Expect::Value` read of `chan` in cycle `cycle`?
fn value_reader_on(s: &CheckedSchedule, cycle: usize, chan: usize) -> bool {
    s.cycles[cycle]
        .intents
        .iter()
        .any(|i| matches!(i.read, Some(ReadIntent { chan: c, expect: Expect::Value }) if c == chan))
}

/// How many writers does `(cycle, chan)` have?
fn writer_count(s: &CheckedSchedule, cycle: usize, chan: usize) -> usize {
    s.cycles[cycle]
        .intents
        .iter()
        .filter(|i| i.write.is_some_and(|w| w.chan == chan))
        .count()
}

fn pick<T>(items: &mut Vec<T>, rng: &mut Rng64) -> Option<T> {
    if items.is_empty() {
        return None;
    }
    let i = rng.random_range(0..items.len());
    Some(items.swap_remove(i))
}

/// Seed `fault` into `schedule`, guaranteeing the result violates an
/// invariant the verifier checks. Returns a description of the injected
/// fault, or `None` when the schedule offers no applicable site (e.g. no
/// data layer for the move faults).
pub fn seed_fault(schedule: &mut CheckedSchedule, fault: Fault, rng: &mut Rng64) -> Option<String> {
    let k = schedule.k;
    match fault {
        Fault::RetargetWrite => {
            let mut sites = writes(schedule);
            // Always commits (the out-of-range fallback is always
            // detectable), so one picked site suffices.
            if let Some((ci, proc, w)) = pick(&mut sites, rng) {
                // Leaving the old channel is detectable when a value read
                // or a wire move depends on it (no second writer exists in
                // a valid schedule, so the channel goes silent).
                let leaving_detected = value_reader_on(schedule, ci, w.chan)
                    || wire_depends_on(schedule, ci, proc, w.chan);
                // Arriving is detectable when the target is occupied
                // (collision) or out of range.
                let offset = rng.random_range(0..k.max(1));
                let target = (1..k).map(|d| (w.chan + offset + d) % k).find(|&c| {
                    c != w.chan && (leaving_detected || writer_count(schedule, ci, c) > 0)
                });
                let target = match target {
                    Some(c) => c,
                    // Fall back to an out-of-range channel: always detected.
                    None => k,
                };
                schedule.cycles[ci].intents[proc].write = Some(WriteIntent {
                    chan: target,
                    may_suppress: w.may_suppress,
                });
                return Some(format!(
                    "cycle {ci}: retargeted P{proc}'s write from channel {} to {target}",
                    w.chan
                ));
            }
            None
        }
        Fault::AddWriter => {
            let mut sites = writes(schedule);
            while let Some((ci, _, w)) = pick(&mut sites, rng) {
                if w.chan >= k {
                    continue;
                }
                let mut idle: Vec<usize> = schedule.cycles[ci]
                    .intents
                    .iter()
                    .enumerate()
                    .filter(|(_, i)| i.write.is_none())
                    .map(|(p, _)| p)
                    .collect();
                if let Some(p2) = pick(&mut idle, rng) {
                    schedule.cycles[ci].intents[p2].write = Some(WriteIntent {
                        chan: w.chan,
                        may_suppress: false,
                    });
                    return Some(format!(
                        "cycle {ci}: added colliding writer P{p2} on channel {}",
                        w.chan
                    ));
                }
            }
            None
        }
        Fault::RetargetRead => {
            let mut sites: Vec<(usize, usize, usize)> = Vec::new();
            for (ci, cyc) in schedule.cycles.iter().enumerate() {
                for (proc, intent) in cyc.intents.iter().enumerate() {
                    if let Some(r) = intent.read {
                        if r.expect == Expect::Value && r.chan < k {
                            sites.push((ci, proc, r.chan));
                        }
                    }
                }
            }
            let (ci, proc, old) = pick(&mut sites, rng)?;
            // A silent channel that cycle makes the read fail; if every
            // channel is written, go out of range.
            let offset = rng.random_range(0..k);
            let target = (0..k)
                .map(|d| (offset + d) % k)
                .find(|&c| c != old && writer_count(schedule, ci, c) == 0)
                .unwrap_or(k);
            schedule.cycles[ci].intents[proc].read = Some(ReadIntent {
                chan: target,
                expect: Expect::Value,
            });
            Some(format!(
                "cycle {ci}: retargeted P{proc}'s value read from channel {old} to {target}"
            ))
        }
        Fault::DropWrite => {
            let mut sites: Vec<(usize, usize)> = writes(schedule)
                .into_iter()
                .filter(|&(ci, proc, w)| {
                    w.chan < k
                        && !w.may_suppress
                        && (value_reader_on(schedule, ci, w.chan)
                            || wire_depends_on(schedule, ci, proc, w.chan))
                })
                .map(|(ci, proc, _)| (ci, proc))
                .collect();
            let (ci, proc) = pick(&mut sites, rng)?;
            schedule.cycles[ci].intents[proc].write = None;
            Some(format!("cycle {ci}: dropped P{proc}'s depended-on write"))
        }
        Fault::DropMove => {
            let data = schedule.data.as_mut()?;
            if data.moves.is_empty() || data.moves.len() != data.slots {
                return None;
            }
            let i = rng.random_range(0..data.moves.len());
            let mv = data.moves.swap_remove(i);
            Some(format!("dropped move {} -> {}", mv.src, mv.dst))
        }
        Fault::DupMoveDest => {
            let data = schedule.data.as_mut()?;
            if data.moves.len() < 2 {
                return None;
            }
            let i = rng.random_range(0..data.moves.len());
            let mut j = rng.random_range(0..data.moves.len() - 1);
            if j >= i {
                j += 1;
            }
            let stolen = data.moves[j].dst;
            let old = data.moves[i].dst;
            data.moves[i].dst = stolen;
            Some(format!(
                "move {i}: destination {old} replaced by {stolen} (duplicate)"
            ))
        }
        Fault::ShiftWireCycle => {
            let data = schedule.data.as_ref()?;
            let mut sites: Vec<usize> = (0..data.moves.len())
                .filter(|&i| matches!(data.moves[i].route, Route::Wire { .. }))
                .collect();
            while let Some(i) = pick(&mut sites, rng) {
                let Route::Wire {
                    cycle,
                    writer,
                    chan,
                    reader,
                } = schedule.data.as_ref().unwrap().moves[i].route
                else {
                    continue;
                };
                for shifted in [cycle + 1, cycle.wrapping_sub(1)] {
                    // Only seed when the shifted route is provably invalid
                    // (a neighbouring cycle could coincidentally carry the
                    // same broadcast pair).
                    let still_valid = schedule.cycles.get(shifted).is_some_and(|cyc| {
                        cyc.intents
                            .get(writer)
                            .is_some_and(|i| i.write.is_some_and(|w| w.chan == chan))
                            && cyc
                                .intents
                                .get(reader)
                                .is_some_and(|i| i.read.is_some_and(|r| r.chan == chan))
                    });
                    if !still_valid {
                        let data = schedule.data.as_mut().unwrap();
                        data.moves[i].route = Route::Wire {
                            cycle: shifted,
                            writer,
                            chan,
                            reader,
                        };
                        return Some(format!("move {i}: wire cycle shifted {cycle} -> {shifted}"));
                    }
                }
            }
            None
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::ir::ScheduleBuilder;
    use crate::verify::{verify, Bounds};

    /// A small but representative schedule: guaranteed + suppressible
    /// writes, value + maybe-empty reads, local + wire moves.
    fn specimen() -> CheckedSchedule {
        let mut b = ScheduleBuilder::new("specimen", 4, 2);
        b.begin_cycle();
        b.write(0, 0);
        b.read(1, 0);
        b.write_suppressible(2, 1);
        b.read_maybe_empty(3, 1);
        b.begin_cycle();
        b.write(1, 1);
        b.read(2, 1);
        b.begin_cycle();
        b.write(3, 0);
        b.read(0, 0);
        b.declare_slots(4);
        b.wire_move(0, 0, 0, 1, 0, 1);
        b.wire_move(1, 1, 1, 2, 1, 2);
        b.wire_move(2, 3, 0, 0, 2, 3);
        b.local_move(0, 3, 0);
        b.finish()
    }

    #[test]
    fn every_fault_class_is_seedable_and_detected() {
        let mut rng = Rng64::seed_from_u64(0xFA117);
        for fault in Fault::ALL {
            let mut seeded = 0;
            for _ in 0..32 {
                let mut s = specimen();
                if let Some(desc) = seed_fault(&mut s, fault, &mut rng) {
                    seeded += 1;
                    let r = verify(&s, &Bounds::none());
                    assert!(!r.is_ok(), "{fault:?} ({desc}) escaped the verifier:\n{r}");
                }
            }
            assert!(seeded > 0, "{fault:?} never applicable on the specimen");
        }
    }

    #[test]
    fn unseedable_faults_return_none() {
        // No data layer: move faults are not applicable.
        let mut b = ScheduleBuilder::new("flat", 2, 1);
        b.begin_cycle();
        b.write(0, 0);
        b.read(1, 0);
        let s = b.finish();
        let mut rng = Rng64::seed_from_u64(7);
        for fault in [Fault::DropMove, Fault::DupMoveDest, Fault::ShiftWireCycle] {
            assert_eq!(seed_fault(&mut s.clone(), fault, &mut rng), None);
        }
    }
}
