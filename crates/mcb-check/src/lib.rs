//! # mcb-check — static verification of MCB broadcast schedules
//!
//! The paper's cost model rests on protocols being **collision-free**
//! (§2: "if two processors write on the same channel in the same cycle,
//! the computation fails"). The engine in `mcb-net` discovers violations
//! *dynamically* — when a run happens to exercise the bad cycle. But every
//! algorithm in `mcb-algos` is driven by closed-form, locally computed
//! schedules, so collision-freedom is a *statically checkable fact*. This
//! crate checks it, plus the rest of the model's obligations, without
//! executing anything:
//!
//! * **IR** ([`ir::CheckedSchedule`]): per-cycle write/read intents for
//!   every processor, plus an optional data-movement layer
//!   ([`ir::DataFlow`]) recording where each element travels (locally or
//!   over a scheduled wire).
//! * **Verifier** ([`verify::verify`]): proves at most one writer per
//!   (cycle, channel); every `Expect::Value` read targets a channel with a
//!   guaranteed writer that cycle; data moves form a permutation (no
//!   element lost or duplicated) whose wire legs match scheduled
//!   broadcasts; and cycle/message counts match the paper's closed forms
//!   (exact or upper-bound, [`verify::Bounds`]). Violations come back as a
//!   machine-readable [`report::Report`] (JSON via `mcb-json`) with a
//!   human-readable diff via `Display`.
//! * **Degraded schedules** ([`degrade`]): the paper's §2 simulation
//!   lemma as a schedule transformation — remap a schedule onto the
//!   channels surviving an outage plan (`⌈k/k'⌉` sub-cycles per logical
//!   cycle) and re-prove collision-freedom plus the lemma's dilation bound
//!   on the result. The same multiplexing formula the `mcb-net` runtime
//!   uses for live channel failover, proved statically.
//! * **Multi-epoch runs** ([`epochs`]): the same proof extended to
//!   self-healing runs that reconfigure mid-flight — each epoch's
//!   schedule is degraded and verified in its own configuration, and the
//!   per-epoch lemma bounds compose into a whole-run cycle bound.
//! * **Symbolic network verification** ([`symbolic`]): for *oblivious*
//!   schedules — comparator networks, whose wire behaviour is a pure
//!   function of `(p, k)` — an abstract-interpretation pass proves the
//!   schedule implements a declared comparator sequence for **every**
//!   input, and a 0-1-principle prover (bit-parallel replay of all `2^p`
//!   binary inputs, or a recursive block/merger certificate above
//!   `p = 20`) proves the network sorts. No concrete-key round-simulation
//!   anywhere.
//! * **Mutation self-test** ([`mutate`]): seeds off-by-one faults into a
//!   valid schedule and asserts the verifier flags every one — the checker
//!   is itself checked. Comparator-network mutation classes
//!   ([`symbolic::NetFault`]) do the same for the symbolic pass.
//! * **Conformance bridge** ([`wire`]): replays an engine trace (what was
//!   *actually* broadcast) against the static schedule, tying the static
//!   and dynamic worlds together.
//!
//! The emitters live with the algorithms (`mcb_algos::static_schedule`);
//! this crate is deliberately foundational — it depends only on the
//! in-repo `mcb-json` (reports) and `mcb-rng` (fault seeding).
//!
//! ```
//! use mcb_check::{Bounds, ScheduleBuilder};
//!
//! // Two processors ping-pong over one channel: statically fine.
//! let mut b = ScheduleBuilder::new("ping-pong", 2, 1);
//! b.begin_cycle();
//! b.write(0, 0);
//! b.read(1, 0);
//! b.begin_cycle();
//! b.write(1, 0);
//! b.read(0, 0);
//! let report = mcb_check::verify(&b.finish(), &Bounds::none());
//! assert!(report.is_ok(), "{report}");
//! ```

#![warn(missing_docs)]
#![forbid(unsafe_code)]

pub mod degrade;
pub mod epochs;
pub mod ir;
pub mod mutate;
pub mod report;
pub mod symbolic;
pub mod verify;
pub mod wire;

pub use degrade::{remap_schedule, verify_degraded, DegradeError, DegradedReport, Outages};
pub use epochs::{verify_epochs, EpochSegment, EpochsReport};
pub use ir::{
    CheckedSchedule, CycleIntents, DataFlow, DataMove, Expect, Intent, ReadIntent, Route,
    ScheduleBuilder, WriteIntent,
};
pub use mutate::{seed_fault, Fault};
pub use report::{Report, Stats};
pub use symbolic::{
    seed_net_fault, verify_network, Comparator, Exchange, NetFault, NetViolation, ObliviousNetwork,
    SortCert, SorterCert, SymbolicReport,
};
pub use verify::{verify, Bounds, Lint, Violation};
pub use wire::{check_conformance, Conformance, ConformanceError, WireEvent, WireLog};
