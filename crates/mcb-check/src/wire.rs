//! The conformance bridge: static schedule vs. dynamic engine trace.
//!
//! The engine's `Trace` records every message actually broadcast — cycle,
//! writer, channel. [`check_conformance`] replays such a log against a
//! [`CheckedSchedule`]: every logged broadcast must match a scheduled
//! write intent, and every *guaranteed* (non-suppressible) write intent
//! must appear in the log. Suppressible intents may be absent — that is a
//! dummy staying silent, and it is counted in
//! [`Conformance::suppressed`]. Reads are not on the wire and therefore
//! not checkable here; they are covered statically by the verifier.

use crate::ir::CheckedSchedule;

/// One broadcast as observed on the wire (engine-type-erased).
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct WireEvent {
    /// Global cycle of the broadcast.
    pub cycle: u64,
    /// The writing processor.
    pub writer: usize,
    /// The channel written.
    pub chan: usize,
}

/// A full run's wire activity, extracted from an engine trace.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct WireLog {
    /// Processors in the run.
    pub p: usize,
    /// Channels in the run.
    pub k: usize,
    /// All broadcasts; order does not matter.
    pub events: Vec<WireEvent>,
}

/// Why a trace does not replay the schedule.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum ConformanceError {
    /// The run's `(p, k)` differ from the schedule's.
    ShapeMismatch {
        /// Schedule shape.
        schedule: (usize, usize),
        /// Log shape.
        log: (usize, usize),
    },
    /// A broadcast happened that the schedule does not contain.
    UnscheduledWrite {
        /// The offending event.
        event: WireEvent,
    },
    /// A guaranteed write intent produced no broadcast.
    MissingWrite {
        /// Cycle of the intent.
        cycle: usize,
        /// The scheduled writer.
        writer: usize,
        /// The scheduled channel.
        chan: usize,
    },
    /// The log extends past the schedule's last cycle.
    LogOutlivesSchedule {
        /// First out-of-range event.
        event: WireEvent,
        /// Schedule length in cycles.
        cycles: u64,
    },
}

impl std::fmt::Display for ConformanceError {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        match self {
            ConformanceError::ShapeMismatch { schedule, log } => write!(
                f,
                "shape mismatch: schedule is (p={}, k={}), log is (p={}, k={})",
                schedule.0, schedule.1, log.0, log.1
            ),
            ConformanceError::UnscheduledWrite { event } => write!(
                f,
                "cycle {}: P{} broadcast on channel {} with no matching intent",
                event.cycle, event.writer, event.chan
            ),
            ConformanceError::MissingWrite {
                cycle,
                writer,
                chan,
            } => write!(
                f,
                "cycle {cycle}: P{writer} was scheduled to write channel {chan} but stayed silent"
            ),
            ConformanceError::LogOutlivesSchedule { event, cycles } => write!(
                f,
                "cycle {}: broadcast past the schedule's end ({} cycles)",
                event.cycle, cycles
            ),
        }
    }
}

impl std::error::Error for ConformanceError {}

/// What a successful conformance check saw.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct Conformance {
    /// Broadcasts that matched a write intent.
    pub matched: u64,
    /// Suppressible intents with no broadcast (dummies staying silent).
    pub suppressed: u64,
}

/// Check that `log` is a faithful replay of `schedule`'s write side.
pub fn check_conformance(
    schedule: &CheckedSchedule,
    log: &WireLog,
) -> Result<Conformance, ConformanceError> {
    if (schedule.p, schedule.k) != (log.p, log.k) {
        return Err(ConformanceError::ShapeMismatch {
            schedule: (schedule.p, schedule.k),
            log: (log.p, log.k),
        });
    }
    let cycles = schedule.cycle_count();
    // seen[cycle][proc] = channel broadcast by proc that cycle.
    let mut seen: Vec<Vec<Option<usize>>> = vec![vec![None; schedule.p]; schedule.cycles.len()];
    for &ev in &log.events {
        if ev.cycle >= cycles {
            return Err(ConformanceError::LogOutlivesSchedule { event: ev, cycles });
        }
        let cyc = &schedule.cycles[ev.cycle as usize];
        let intent_ok = ev.writer < schedule.p
            && cyc
                .intents
                .get(ev.writer)
                .and_then(|i| i.write)
                .is_some_and(|w| w.chan == ev.chan);
        if !intent_ok {
            return Err(ConformanceError::UnscheduledWrite { event: ev });
        }
        seen[ev.cycle as usize][ev.writer] = Some(ev.chan);
    }
    let mut matched = 0u64;
    let mut suppressed = 0u64;
    for (ci, cyc) in schedule.cycles.iter().enumerate() {
        for (proc, intent) in cyc.intents.iter().enumerate() {
            let Some(w) = intent.write else { continue };
            match seen[ci][proc] {
                Some(_) => matched += 1,
                None if w.may_suppress => suppressed += 1,
                None => {
                    return Err(ConformanceError::MissingWrite {
                        cycle: ci,
                        writer: proc,
                        chan: w.chan,
                    })
                }
            }
        }
    }
    Ok(Conformance {
        matched,
        suppressed,
    })
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::ir::ScheduleBuilder;

    fn sched() -> CheckedSchedule {
        let mut b = ScheduleBuilder::new("t", 2, 1);
        b.begin_cycle();
        b.write(0, 0);
        b.read(1, 0);
        b.begin_cycle();
        b.write_suppressible(1, 0);
        b.read_maybe_empty(0, 0);
        b.finish()
    }

    fn ev(cycle: u64, writer: usize, chan: usize) -> WireEvent {
        WireEvent {
            cycle,
            writer,
            chan,
        }
    }

    #[test]
    fn faithful_replay_passes() {
        let log = WireLog {
            p: 2,
            k: 1,
            events: vec![ev(0, 0, 0), ev(1, 1, 0)],
        };
        let c = check_conformance(&sched(), &log).unwrap();
        assert_eq!((c.matched, c.suppressed), (2, 0));
    }

    #[test]
    fn suppressed_dummy_write_is_allowed() {
        let log = WireLog {
            p: 2,
            k: 1,
            events: vec![ev(0, 0, 0)],
        };
        let c = check_conformance(&sched(), &log).unwrap();
        assert_eq!((c.matched, c.suppressed), (1, 1));
    }

    #[test]
    fn missing_guaranteed_write_fails() {
        let log = WireLog {
            p: 2,
            k: 1,
            events: vec![],
        };
        assert!(matches!(
            check_conformance(&sched(), &log),
            Err(ConformanceError::MissingWrite {
                cycle: 0,
                writer: 0,
                chan: 0
            })
        ));
    }

    #[test]
    fn unscheduled_and_overlong_broadcasts_fail() {
        let log = WireLog {
            p: 2,
            k: 1,
            events: vec![ev(0, 1, 0)],
        };
        assert!(matches!(
            check_conformance(&sched(), &log),
            Err(ConformanceError::UnscheduledWrite { .. })
        ));
        let log = WireLog {
            p: 2,
            k: 1,
            events: vec![ev(0, 0, 0), ev(1, 1, 0), ev(5, 0, 0)],
        };
        assert!(matches!(
            check_conformance(&sched(), &log),
            Err(ConformanceError::LogOutlivesSchedule { .. })
        ));
    }

    #[test]
    fn shape_mismatch_fails() {
        let log = WireLog {
            p: 3,
            k: 1,
            events: vec![],
        };
        assert!(matches!(
            check_conformance(&sched(), &log),
            Err(ConformanceError::ShapeMismatch { .. })
        ));
    }
}
