//! Static verification of *degraded* schedules: the §2 simulation lemma
//! as a schedule transformation.
//!
//! The paper's simulation lemma says any `MCB(p, k)` protocol runs on an
//! `MCB(p, k')` with `k' < k` channels at a `⌈k/k'⌉` cycle dilation: each
//! logical cycle is multiplexed onto the surviving channels over `⌈k/k'⌉`
//! sub-cycles. The runtime uses exactly this remap when channels die
//! mid-run (resilient mode in `mcb-net`). This module applies the **same
//! formula** to a [`CheckedSchedule`], so the degraded schedule can be
//! *proved* collision-free and within the lemma's cycle bound without
//! executing anything:
//!
//! * logical channel `c` runs in sub-cycle `j = c / k'`,
//! * on physical channel `live[c % k']` (the surviving channels in
//!   ascending index order),
//! * and every logical cycle occupies exactly `⌈k/k'⌉` physical cycles
//!   (idle sub-cycles included — the runtime burns them too, which is what
//!   keeps lock-step processors agreed on the clock).
//!
//! Why the mapping preserves the invariants: within one sub-cycle `j` the
//! remapped channels `{live[c % k'] : c / k' == j}` come from distinct
//! residues `c % k'`, so the map is injective per sub-cycle — two logical
//! writers that did not collide cannot be made to collide. A writer and
//! reader of the same logical channel share both `j` and the physical
//! channel, so every delivery (and every [`Expect::Value`](crate::ir::Expect::Value) guarantee)
//! survives. [`verify_degraded`] re-proves this with the real verifier
//! rather than trusting the argument.
//!
//! Deaths here are pinned to **logical** cycles of the input schedule
//! (channel `c` is gone from logical cycle `t` onward). The runtime's
//! `FaultPlan` pins deaths to physical cycles instead — the static layer
//! describes the degraded *plan*, the runtime the degraded *execution* —
//! but both sides multiplex with the identical `(c / k', live[c % k'])`
//! formula, which the `degraded_schedules` integration test cross-checks.

use crate::ir::{CheckedSchedule, CycleIntents, DataFlow, DataMove, Intent, Route};
use crate::report::Report;
use crate::verify::{verify, Bounds};

/// The channel-outage plan for a static degrade: which channels die, and
/// from which **logical** cycle of the original schedule onward.
///
/// Deaths are permanent (a dead channel never recovers) and at least one
/// channel must survive every cycle — [`remap_schedule`] reports
/// [`DegradeError::AllChannelsDead`] otherwise.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct Outages {
    k: usize,
    deaths: Vec<Option<u64>>,
}

impl Outages {
    /// No outages on `k` channels.
    ///
    /// # Panics
    /// If `k == 0`.
    pub fn new(k: usize) -> Outages {
        assert!(k >= 1, "need k >= 1");
        Outages {
            k,
            deaths: vec![None; k],
        }
    }

    /// Kill channel `chan` from logical cycle `at_cycle` onward (builder
    /// style). A second kill of the same channel keeps the earlier death.
    ///
    /// # Panics
    /// If `chan >= k` — out-of-range kills are caller bugs, like the
    /// [`ScheduleBuilder`](crate::ir::ScheduleBuilder) misuse panics.
    pub fn kill(mut self, chan: usize, at_cycle: u64) -> Outages {
        assert!(chan < self.k, "channel {chan} out of range 0..{}", self.k);
        let d = &mut self.deaths[chan];
        *d = Some(d.map_or(at_cycle, |prev| prev.min(at_cycle)));
        self
    }

    /// The channel count the plan is shaped for.
    pub fn k(&self) -> usize {
        self.k
    }

    /// Surviving channel indices at logical cycle `cycle`, ascending.
    pub fn live_at(&self, cycle: u64) -> Vec<usize> {
        (0..self.k)
            .filter(|&c| self.deaths[c].is_none_or(|d| cycle < d))
            .collect()
    }

    /// The smallest survivor count over logical cycles `0..cycles` (deaths
    /// are permanent, so this is the count in the last cycle); `k` when the
    /// schedule is empty.
    pub fn min_live(&self, cycles: u64) -> usize {
        match cycles.checked_sub(1) {
            Some(last) => self.live_at(last).len(),
            None => self.k,
        }
    }
}

/// Why a schedule cannot be degraded under an outage plan.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum DegradeError {
    /// The outage plan is shaped for a different channel count than the
    /// schedule.
    KMismatch {
        /// The schedule's `k`.
        schedule_k: usize,
        /// The plan's `k`.
        outages_k: usize,
    },
    /// Every channel is dead in some cycle the schedule still occupies —
    /// the lemma needs `k' >= 1`.
    AllChannelsDead {
        /// The first logical cycle with no survivors.
        cycle: usize,
    },
    /// An intent names a channel `>= k`; the sub-cycle formula is only
    /// defined for in-range channels (the plain verifier flags this as
    /// `BadWriteChannel`/`BadReadChannel` on the original schedule).
    BadChannel {
        /// Logical cycle of the offending intent.
        cycle: usize,
        /// The processor holding it.
        proc: usize,
        /// The out-of-range channel.
        chan: usize,
    },
}

impl std::fmt::Display for DegradeError {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        match self {
            DegradeError::KMismatch {
                schedule_k,
                outages_k,
            } => write!(
                f,
                "outage plan is shaped for k = {outages_k}, schedule has k = {schedule_k}"
            ),
            DegradeError::AllChannelsDead { cycle } => {
                write!(f, "no channel survives logical cycle {cycle}; the lemma needs k' >= 1")
            }
            DegradeError::BadChannel { cycle, proc, chan } => write!(
                f,
                "logical cycle {cycle}: P{proc} uses out-of-range channel {chan}; degrade the verified schedule, not a broken one"
            ),
        }
    }
}

impl std::error::Error for DegradeError {}

/// Remap `schedule` onto the channels surviving `outages`, using the §2
/// simulation lemma's multiplexing (see the [module docs](self)): logical
/// cycle `t` with `k'` survivors becomes `⌈k/k'⌉` physical sub-cycles, and
/// logical channel `c` runs in sub-cycle `c / k'` on physical channel
/// `live[c % k']`.
///
/// The result is a complete [`CheckedSchedule`] over the *same* `k`
/// (dead channels simply go unused — the verifier's `IdleChannel` lint
/// will name them) with any [`DataFlow`] layer's wire routes retargeted to
/// the carrying sub-cycle broadcasts, so the full verifier — collisions,
/// read-validity, permutation data flow — applies to the degraded schedule
/// unchanged.
pub fn remap_schedule(
    schedule: &CheckedSchedule,
    outages: &Outages,
) -> Result<CheckedSchedule, DegradeError> {
    if outages.k != schedule.k {
        return Err(DegradeError::KMismatch {
            schedule_k: schedule.k,
            outages_k: outages.k,
        });
    }
    let k = schedule.k;

    // Pass 1: the cycle layer. Record, per logical cycle, its physical
    // offset and survivor list so pass 2 can retarget wire routes.
    let mut cycles: Vec<CycleIntents> = Vec::new();
    let mut offsets: Vec<usize> = Vec::with_capacity(schedule.cycles.len());
    let mut lives: Vec<Vec<usize>> = Vec::with_capacity(schedule.cycles.len());
    for (t, cyc) in schedule.cycles.iter().enumerate() {
        let live = outages.live_at(t as u64);
        let kp = live.len();
        if kp == 0 {
            return Err(DegradeError::AllChannelsDead { cycle: t });
        }
        let h = k.div_ceil(kp);
        offsets.push(cycles.len());
        // Malformed (wrong-width) cycles stay malformed: the verifier owns
        // that diagnosis.
        let width = cyc.intents.len();
        let mut subs = vec![
            CycleIntents {
                intents: vec![Intent::default(); width],
            };
            h
        ];
        for (proc, intent) in cyc.intents.iter().enumerate() {
            if let Some(mut w) = intent.write {
                if w.chan >= k {
                    return Err(DegradeError::BadChannel {
                        cycle: t,
                        proc,
                        chan: w.chan,
                    });
                }
                let j = w.chan / kp;
                w.chan = live[w.chan % kp];
                subs[j].intents[proc].write = Some(w);
            }
            if let Some(mut r) = intent.read {
                if r.chan >= k {
                    return Err(DegradeError::BadChannel {
                        cycle: t,
                        proc,
                        chan: r.chan,
                    });
                }
                let j = r.chan / kp;
                r.chan = live[r.chan % kp];
                subs[j].intents[proc].read = Some(r);
            }
        }
        cycles.extend(subs);
        lives.push(live);
    }

    // Pass 2: retarget the data layer's wire legs onto the carrying
    // sub-cycle broadcasts. Routes naming out-of-range cycles/channels are
    // kept verbatim — the verifier reports them against the degraded
    // schedule just as it would against the original.
    let data = schedule.data.as_ref().map(|d| DataFlow {
        slots: d.slots,
        moves: d
            .moves
            .iter()
            .map(|mv| {
                let route = match mv.route {
                    Route::Wire {
                        cycle,
                        writer,
                        chan,
                        reader,
                    } if cycle < offsets.len() && chan < k => {
                        let kp = lives[cycle].len();
                        Route::Wire {
                            cycle: offsets[cycle] + chan / kp,
                            writer,
                            chan: lives[cycle][chan % kp],
                            reader,
                        }
                    }
                    other => other,
                };
                DataMove { route, ..*mv }
            })
            .collect(),
    });

    Ok(CheckedSchedule {
        name: format!(
            "{} (degraded: min k' = {})",
            schedule.name,
            outages.min_live(schedule.cycle_count())
        ),
        p: schedule.p,
        k,
        cycles,
        data,
    })
}

/// The outcome of [`verify_degraded`]: the remapped schedule, the
/// verifier's verdict on it, and the dilation accounting.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct DegradedReport {
    /// The remapped schedule (inspectable, re-verifiable, exportable).
    pub schedule: CheckedSchedule,
    /// The full verifier run on the degraded schedule, with
    /// `cycles_max = lemma_bound` asserted on top of any caller bounds.
    pub report: Report,
    /// Physical cycles the degraded schedule occupies.
    pub dilation: u64,
    /// The lemma's bound: `⌈k / min k'⌉ ×` the original cycle count.
    pub lemma_bound: u64,
}

/// Degrade `schedule` under `outages` and prove the result: remap via
/// [`remap_schedule`], then run the full verifier with the lemma's cycle
/// bound (`⌈k / min k'⌉ ×` original cycles) asserted via
/// [`Bounds::cycles_max`] on top of the caller's `bounds`. Collision
/// freedom, read-validity, and the data-flow permutation are all re-proved
/// on the remapped schedule; [`DegradedReport::report`]`.is_ok()` is the
/// verdict.
///
/// Caller `bounds` apply to the *degraded* schedule; a caller
/// `cycles_max` tighter than the lemma bound wins.
pub fn verify_degraded(
    schedule: &CheckedSchedule,
    outages: &Outages,
    bounds: &Bounds,
) -> Result<DegradedReport, DegradeError> {
    let degraded = remap_schedule(schedule, outages)?;
    let min_live = outages.min_live(schedule.cycle_count());
    let lemma_bound = (schedule.k.div_ceil(min_live) as u64) * schedule.cycle_count();
    let mut bounds = *bounds;
    bounds.cycles_max = Some(
        bounds
            .cycles_max
            .map_or(lemma_bound, |b| b.min(lemma_bound)),
    );
    let report = verify(&degraded, &bounds);
    Ok(DegradedReport {
        dilation: degraded.cycle_count(),
        schedule: degraded,
        report,
        lemma_bound,
    })
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::ir::ScheduleBuilder;

    /// p = k processors; cycle t has everyone reading proc t%p's broadcast
    /// spread over all k channels — a dense, all-channel schedule.
    fn dense(p: usize, cycles: usize) -> CheckedSchedule {
        let mut b = ScheduleBuilder::new("dense", p, p);
        for t in 0..cycles {
            b.begin_cycle();
            for proc in 0..p {
                b.write(proc, (proc + t) % p);
                b.read(proc, (proc + t + 1) % p);
            }
        }
        b.finish()
    }

    #[test]
    fn no_outages_is_identity_on_cycles() {
        let s = dense(4, 6);
        let d = remap_schedule(&s, &Outages::new(4)).unwrap();
        assert_eq!(d.cycles, s.cycles);
        assert_eq!(d.p, s.p);
        assert_eq!(d.k, s.k);
        let r = verify_degraded(&s, &Outages::new(4), &Bounds::none()).unwrap();
        assert!(r.report.is_ok(), "{}", r.report);
        assert_eq!(r.dilation, 6);
        assert_eq!(r.lemma_bound, 6);
    }

    #[test]
    fn death_dilates_by_lemma_factor_and_stays_collision_free() {
        let s = dense(4, 6);
        // Channel 1 dies at logical cycle 2: cycles 0..2 run at k' = 4
        // (1 sub-cycle), cycles 2..6 at k' = 3 (ceil(4/3) = 2 sub-cycles).
        let outages = Outages::new(4).kill(1, 2);
        let r = verify_degraded(&s, &outages, &Bounds::none()).unwrap();
        assert!(r.report.is_ok(), "{}", r.report);
        assert_eq!(r.dilation, 2 + 4 * 2);
        assert_eq!(r.lemma_bound, 2 * 6);
        assert!(r.dilation <= r.lemma_bound);
        // The dead channel is untouched after its death cycle and the
        // verifier's idle-channel lint stays quiet only for used channels.
        for cyc in &r.schedule.cycles[2..] {
            for i in &cyc.intents {
                assert!(i.write.is_none_or(|w| w.chan != 1), "dead channel written");
                assert!(i.read.is_none_or(|rd| rd.chan != 1), "dead channel read");
            }
        }
    }

    #[test]
    fn single_survivor_serializes_fully() {
        let s = dense(3, 2);
        let outages = Outages::new(3).kill(0, 0).kill(2, 0);
        let r = verify_degraded(&s, &outages, &Bounds::none()).unwrap();
        assert!(r.report.is_ok(), "{}", r.report);
        // k' = 1 from the start: every logical cycle becomes 3 sub-cycles,
        // all traffic on channel 1.
        assert_eq!(r.dilation, 6);
        for cyc in &r.schedule.cycles {
            for i in &cyc.intents {
                assert!(i.write.is_none_or(|w| w.chan == 1));
                assert!(i.read.is_none_or(|rd| rd.chan == 1));
            }
        }
    }

    #[test]
    fn wire_routes_follow_their_broadcasts() {
        // One broadcast carrying one element, then channel 0 dies... before
        // a second carried broadcast on logical cycle 1.
        let mut b = ScheduleBuilder::new("flow", 2, 2);
        b.begin_cycle();
        b.write(0, 0);
        b.read(1, 0);
        b.begin_cycle();
        b.write(1, 0);
        b.read(0, 0);
        b.declare_slots(2);
        b.wire_move(0, 0, 0, 1, 0, 0);
        b.wire_move(1, 1, 0, 0, 1, 1);
        let s = b.finish();
        let outages = Outages::new(2).kill(0, 1);
        let r = verify_degraded(&s, &outages, &Bounds::none()).unwrap();
        // The cycle-1 broadcast moved to channel 1 (the survivor); its wire
        // route must have moved with it or the verifier would flag a
        // WireMoveMismatch.
        assert!(r.report.is_ok(), "{}", r.report);
    }

    #[test]
    fn all_dead_and_shape_mismatch_error() {
        let s = dense(2, 2);
        let err = remap_schedule(&s, &Outages::new(2).kill(0, 1).kill(1, 1)).unwrap_err();
        assert_eq!(err, DegradeError::AllChannelsDead { cycle: 1 });
        let err = remap_schedule(&s, &Outages::new(3)).unwrap_err();
        assert_eq!(
            err,
            DegradeError::KMismatch {
                schedule_k: 2,
                outages_k: 3
            }
        );
    }

    #[test]
    fn collisions_in_the_original_survive_into_the_degraded() {
        // Two writers on one channel: degrading must not mask the bug.
        let mut b = ScheduleBuilder::new("bad", 2, 2);
        b.begin_cycle();
        b.write(0, 1);
        b.write(1, 1);
        let s = b.finish();
        let r = verify_degraded(&s, &Outages::new(2).kill(0, 0), &Bounds::none()).unwrap();
        assert!(!r.report.is_ok());
    }

    #[test]
    fn caller_bounds_compose_with_the_lemma_bound() {
        let s = dense(2, 4);
        let outages = Outages::new(2).kill(1, 0);
        // Lemma bound = 2 * 4 = 8 and the degrade hits it exactly; a caller
        // bound of 7 must fail.
        let tight = Bounds {
            cycles_max: Some(7),
            ..Bounds::none()
        };
        let r = verify_degraded(&s, &outages, &tight).unwrap();
        assert!(!r.report.is_ok());
        let r = verify_degraded(&s, &outages, &Bounds::none()).unwrap();
        assert!(r.report.is_ok(), "{}", r.report);
        assert_eq!(r.dilation, 8);
    }
}
