//! The verifier's own acceptance test: seed faults into *real* schedules
//! emitted by every algorithm and require 100% detection.
//!
//! [`seed_fault`] only commits mutations whose preconditions guarantee an
//! invariant violation (a mutation that yields another valid schedule is
//! invisible to any static checker), so every successful seeding must make
//! `verify` report at least one violation — on bound-free verification, no
//! leaning on cycle/message counts.

use mcb_algos::columnsort::Transform;
use mcb_algos::networks::{NetworkKind, NetworkSpec};
use mcb_algos::static_schedule::{
    ColumnsortNetSpec, DirectSortSpec, ExtremaSpec, GroupedSortSpec, NaiveSelectSpec,
    PartialSumsSpec, RankSortSpec, SelectSpec, StaticSchedule, TotalSpec, TransformSpec,
};
use mcb_check::{seed_fault, seed_net_fault, verify, verify_network, Bounds, Fault, NetFault};
use mcb_rng::Rng64;

fn battery() -> Vec<(&'static str, Box<dyn StaticSchedule>)> {
    vec![
        ("partial_sums", Box::new(PartialSumsSpec { p: 13, k: 4 })),
        ("total", Box::new(TotalSpec { p: 7, k: 3 })),
        ("extrema", Box::new(ExtremaSpec { p: 8, k: 2 })),
        (
            "transpose",
            Box::new(TransformSpec {
                transform: Transform::Transpose,
                m: 12,
                k: 4,
            }),
        ),
        (
            "columnsort",
            Box::new(ColumnsortNetSpec {
                m: 12,
                k_cols: 3,
                dummies: false,
            }),
        ),
        ("direct_sort", Box::new(DirectSortSpec { p: 4, m: 13 })),
        (
            "grouped_sort",
            Box::new(GroupedSortSpec {
                k: 3,
                n_i: vec![1, 40, 3, 17, 9, 20],
            }),
        ),
        (
            "rank_sort",
            Box::new(RankSortSpec {
                lists: vec![vec![5u64, 1], vec![9, 3, 7], vec![2, 8]],
            }),
        ),
        (
            "select",
            Box::new(SelectSpec {
                k: 2,
                lists: (0..4)
                    .map(|i| (0..6).map(|j| (i * 6 + j) as u64 * 7919 % 10007).collect())
                    .collect(),
                d: 12,
            }),
        ),
        (
            "naive_select",
            Box::new(NaiveSelectSpec {
                k: 2,
                n_i: vec![4, 9, 2, 5],
                d: 10,
            }),
        ),
    ]
}

#[test]
fn every_seeded_fault_is_detected_on_every_algorithm() {
    let mut rng = Rng64::seed_from_u64(0x5EED);
    let mut per_fault = [0u64; Fault::ALL.len()];
    for (name, spec) in battery() {
        let pristine = spec.emit();
        assert!(
            verify(&pristine, &Bounds::none()).is_ok(),
            "{name}: battery schedule must start valid"
        );
        for (fi, fault) in Fault::ALL.into_iter().enumerate() {
            for _ in 0..8 {
                let mut mutated = pristine.clone();
                // Some (schedule, fault) pairs offer no seeding site — a
                // transform where every processor writes every cycle has
                // no idle writer to add — so None is acceptable per spec…
                let Some(desc) = seed_fault(&mut mutated, fault, &mut rng) else {
                    continue;
                };
                per_fault[fi] += 1;
                let report = verify(&mutated, &Bounds::none());
                assert!(
                    !report.is_ok(),
                    "{name}: {fault:?} ({desc}) escaped the verifier:\n{report}"
                );
            }
        }
    }
    // …but across the whole battery every fault class must exercise.
    for (fi, fault) in Fault::ALL.into_iter().enumerate() {
        assert!(
            per_fault[fi] > 0,
            "{fault:?} never seeded across the battery"
        );
    }
    let seeded_total: u64 = per_fault.iter().sum();
    assert!(
        seeded_total > 200,
        "battery too small: {seeded_total} seedings"
    );
}

/// Comparator-network mutation classes go through the *symbolic* pass:
/// swapped ends and dropped comparators keep the schedule structurally
/// valid (the ordinary verifier cannot see them) and are caught by the
/// 0-1 sortedness prover; mis-colored layers collide or leave the channel
/// range and are caught structurally. 100% detection, same as the
/// schedule-level classes.
#[test]
fn every_seeded_network_fault_is_detected() {
    let mut rng = Rng64::seed_from_u64(0x0E7);
    let battery = [
        NetworkSpec {
            kind: NetworkKind::Batcher,
            p: 8,
            k: 4,
        },
        NetworkSpec {
            kind: NetworkKind::Batcher,
            p: 11,
            k: 1,
        },
        NetworkSpec {
            kind: NetworkKind::BoseNelson,
            p: 10,
            k: 2,
        },
        NetworkSpec {
            kind: NetworkKind::Multiway { group: 3 },
            p: 9,
            k: 6,
        },
    ];
    let mut per_fault = [0u64; NetFault::ALL.len()];
    for spec in battery {
        let pristine = spec.compile();
        assert!(
            verify_network(&pristine, &spec.bounds()).is_ok(),
            "{spec:?}: battery network must start valid"
        );
        for (fi, fault) in NetFault::ALL.into_iter().enumerate() {
            for _ in 0..8 {
                let mut mutated = pristine.clone();
                let Some(desc) = seed_net_fault(&mut mutated, fault, &mut rng) else {
                    continue;
                };
                per_fault[fi] += 1;
                let report = verify_network(&mutated, &Bounds::none());
                assert!(
                    !report.is_ok(),
                    "{spec:?}: {fault:?} ({desc}) escaped the symbolic pass:\n{report}"
                );
            }
        }
    }
    for (fi, fault) in NetFault::ALL.into_iter().enumerate() {
        assert!(
            per_fault[fi] > 0,
            "{fault:?} never seeded across the network battery"
        );
    }
    let seeded_total: u64 = per_fault.iter().sum();
    assert!(
        seeded_total >= 90,
        "network battery too small: {seeded_total} seedings"
    );
}

#[test]
fn detection_holds_under_many_seeds() {
    // A wider randomized pass over one data-carrying and one control-heavy
    // schedule: no seed value may produce an undetected mutation.
    let specs: Vec<Box<dyn StaticSchedule>> = vec![
        Box::new(TransformSpec {
            transform: Transform::UnDiagonalize,
            m: 6,
            k: 3,
        }),
        Box::new(GroupedSortSpec {
            k: 2,
            n_i: vec![7, 2, 11, 4],
        }),
    ];
    for spec in &specs {
        let pristine = spec.emit();
        for seed in 0..64u64 {
            let mut rng = Rng64::seed_from_u64(seed);
            for fault in Fault::ALL {
                let mut mutated = pristine.clone();
                if seed_fault(&mut mutated, fault, &mut rng).is_some() {
                    assert!(
                        !verify(&mutated, &Bounds::none()).is_ok(),
                        "seed {seed}, {fault:?} escaped on {}",
                        pristine.name
                    );
                }
            }
        }
    }
}
