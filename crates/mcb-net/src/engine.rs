//! The lock-step execution engine.
//!
//! [`Network::run`] executes one protocol closure per processor, each on its
//! own OS thread, in synchronous cycles. A cycle follows the paper's §2
//! definition exactly:
//!
//! 1. every processor may **write one channel**;
//! 2. every processor may **read one channel** (concurrent reads allowed,
//!    empty channels detectable);
//! 3. arbitrary **local computation** (the Rust code between two
//!    [`ProcCtx::cycle`] calls — free in the cost model).
//!
//! Threads are synchronized with a [sense-reversing
//! barrier](crate::barrier::SenseBarrier) three times per cycle: after
//! writes, after reads, and after a per-cycle sweep (slot clearing, port
//! validation, termination/failure checks) performed by the barrier winner.
//!
//! Although execution is multi-threaded, every observable quantity — results,
//! cycle counts, message counts, traces — is deterministic for a
//! collision-free protocol, because the protocol's visible state only changes
//! at barrier-separated phase boundaries.
//!
//! # Failure semantics
//!
//! A write collision "fails the computation" in the model; the engine
//! records the first failure ([`NetError`]), force-unwinds every still-active
//! protocol at the next cycle boundary, and returns `Err`. Protocol panics
//! are caught per-thread and reported the same way, so a buggy protocol can
//! never deadlock or poison the harness.

use crate::barrier::{Sense, SenseBarrier};
use crate::epoch::EpochRecord;
use crate::error::NetError;
use crate::fault::{canonicalize, FaultKind, FaultPlan, FaultRecord, FaultSummary, ResilientOpts};
use crate::frame::{FrameRead, FRAME_HEADER_BITS};
use crate::ids::{ChanId, ProcId};
use crate::message::MsgWidth;
use crate::metrics::{EngineProfile, LocalMetrics, LogHistogram, Metrics, PhaseMetrics};
use crate::monitor::{MonitorCore, MonitorSnapshot, RunMonitor};
use crate::phase::{PhaseScope, PhaseTarget};
use crate::step::{Step, StepEnv, StepProtocol};
use crate::sync::{Mutex, RwLock};
use crate::trace::{Event, Trace};
use std::panic::{catch_unwind, AssertUnwindSafe};
use std::sync::atomic::{AtomicBool, AtomicU32, AtomicU64, AtomicUsize, Ordering};
use std::sync::Arc;
use std::time::Instant;

/// Default bound on engine rounds; exceeding it fails the run with
/// [`NetError::CycleBudgetExhausted`] instead of hanging.
pub const DEFAULT_CYCLE_BUDGET: u64 = 10_000_000;

/// Default watchdog window: a run in which no message is delivered and no
/// processor finishes for this many consecutive rounds fails with
/// [`NetError::Stalled`] instead of idling on toward the (larger) cycle
/// budget. See [`Network::stall_window`].
pub const DEFAULT_STALL_WINDOW: u64 = 1_000_000;

/// How [`Network::run`] maps logical processors onto OS threads.
///
/// All backends execute the same cycle semantics and produce **identical**
/// observable behavior — results, [`Metrics`], [`Trace`], and error
/// classification — for any collision-free protocol; they differ only in
/// wall-clock cost:
///
/// * [`Threaded`](Backend::Threaded) runs each logical processor on its own
///   OS thread, synchronized by a sense-reversing barrier three times per
///   cycle. Lowest latency while `p` is at most a few times the core count;
///   degrades badly when thousands of threads contend for a few cores.
/// * [`Pooled`](Backend::Pooled) batches all `p` logical processors across
///   `min(p, available cores)` worker threads that advance them
///   cycle-by-cycle, so barrier width is the worker count, not `p`. Closure
///   protocols are suspended on parked helper threads that wake only for
///   their own compute slice; [`StepProtocol`] state machines (see
///   [`Network::run_steps`]) need no per-processor threads at all. This is
///   the backend that makes `p >= 2048` simulations practical.
/// * [`Vector`](Backend::Vector) drives [`StepProtocol`] state machines
///   from a single thread in struct-of-arrays form: per-processor
///   write/read intents live in flat columns, each cycle is tight loops
///   over the *active* processors (no barriers, no per-unit dispatch), and
///   [`Step::IdleFor`] sleepers are parked in a wake-time heap and skipped
///   entirely. This is the backend for `p >= 10^5`. Closure protocols need
///   a suspended call stack per processor, which a columnar driver cannot
///   provide, so [`Network::run`] under `Vector` delegates to the pooled
///   fiber driver (identical observable behavior); only
///   [`Network::run_steps`] takes the columnar path.
///
/// All three backends agree byte-for-byte on every observable:
///
/// ```
/// use mcb_net::{Backend, ChanId, Network, Step, StepEnv, StepProtocol};
///
/// /// Processor 0 broadcasts once; everyone returns what they read.
/// struct Echo;
/// impl StepProtocol<u64> for Echo {
///     type Output = Option<u64>;
///     fn step(&mut self, env: &StepEnv, input: Option<u64>) -> Step<u64, Option<u64>> {
///         match env.cycles_used {
///             0 => Step::Yield {
///                 write: (env.id.index() == 0).then_some((ChanId(0), 7u64)),
///                 read: Some(ChanId(0)),
///             },
///             _ => Step::Done(input),
///         }
///     }
/// }
///
/// let run = |backend: Backend| {
///     Network::new(64, 8).backend(backend).run_steps(|_| Echo).unwrap()
/// };
/// let threaded = run(Backend::Threaded);
/// let pooled = run(Backend::Pooled);
/// let vector = run(Backend::Vector);
/// assert_eq!(threaded.results, pooled.results);
/// assert_eq!(threaded.results, vector.results);
/// assert_eq!(threaded.metrics, pooled.metrics);
/// assert_eq!(threaded.metrics, vector.metrics);
/// ```
#[derive(Debug, Clone, Copy, PartialEq, Eq, Default)]
pub enum Backend {
    /// Pick automatically from `p`: [`Pooled`](Backend::Pooled) when `p`
    /// far exceeds the core count (`p > max(32, 2 * cores)`), otherwise
    /// [`Threaded`](Backend::Threaded). The `MCB_BACKEND` environment
    /// variable (`"threaded"` / `"pooled"` / `"vector"`) overrides the
    /// heuristic.
    #[default]
    Auto,
    /// One OS thread per logical processor.
    Threaded,
    /// `min(p, cores)` workers drive all logical processors.
    Pooled,
    /// Single-threaded struct-of-arrays driver for [`StepProtocol`]s
    /// (closure protocols fall back to the pooled fiber driver).
    Vector,
}

impl Backend {
    /// Resolve `Auto` to a concrete backend for a `p`-processor run.
    pub fn resolve(self, p: usize) -> Backend {
        match self {
            Backend::Auto => {
                if let Ok(var) = std::env::var("MCB_BACKEND") {
                    match var.to_ascii_lowercase().as_str() {
                        "threaded" => return Backend::Threaded,
                        "pooled" => return Backend::Pooled,
                        "vector" => return Backend::Vector,
                        _ => {}
                    }
                }
                let cores = std::thread::available_parallelism().map_or(1, |n| n.get());
                if p > (2 * cores).max(32) {
                    Backend::Pooled
                } else {
                    Backend::Threaded
                }
            }
            concrete => concrete,
        }
    }
}

/// An `MCB(p, k)` network ready to execute protocols.
///
/// ```
/// use mcb_net::{Network, ChanId};
///
/// // Two processors, one channel: P1 sends its value to P2.
/// let report = Network::new(2, 1)
///     .run(|ctx| {
///         if ctx.id().index() == 0 {
///             ctx.write(ChanId(0), 42u64);
///             None
///         } else {
///             ctx.read(ChanId(0))
///         }
///     })
///     .unwrap();
/// assert_eq!(report.results[1], Some(Some(42)));
/// assert_eq!(report.metrics.messages, 1);
/// assert_eq!(report.metrics.cycles, 1);
/// ```
#[derive(Debug, Clone)]
pub struct Network {
    procs: usize,
    channels: usize,
    record_trace: bool,
    profile: bool,
    proc_groups: Option<Vec<usize>>,
    cycle_budget: u64,
    stall_window: u64,
    fault_plan: Option<Arc<FaultPlan>>,
    backend: Backend,
    framing: bool,
    monitor: Option<Arc<MonitorCore>>,
}

impl Network {
    /// An `MCB(p, k)` network. The model requires `1 <= k <= p`; violations
    /// surface as [`NetError::BadConfig`] when [`run`](Self::run) is called.
    pub fn new(p: usize, k: usize) -> Self {
        Network {
            procs: p,
            channels: k,
            record_trace: false,
            profile: false,
            proc_groups: None,
            cycle_budget: DEFAULT_CYCLE_BUDGET,
            stall_window: DEFAULT_STALL_WINDOW,
            fault_plan: None,
            backend: Backend::Auto,
            framing: false,
            monitor: None,
        }
    }

    /// Number of processors `p`.
    pub fn p(&self) -> usize {
        self.procs
    }

    /// Number of channels `k`.
    pub fn k(&self) -> usize {
        self.channels
    }

    /// Record a full message [`Trace`] (off by default). Recording is
    /// lock-free: each executor appends to a private buffer, merged into
    /// the canonical (cycle, channel, writer) order at run end.
    pub fn record_trace(mut self, yes: bool) -> Self {
        self.record_trace = yes;
        self
    }

    /// Record wall-clock engine profiling counters (off by default),
    /// surfaced as [`RunReport::profile`]. Adds two clock reads around
    /// every barrier wait, so leave it off for cost-model measurements.
    pub fn profile(mut self, yes: bool) -> Self {
        self.profile = yes;
        self
    }

    /// Group threads into physical processors for virtualization (§2
    /// simulation lemma): `groups[i]` is the physical processor hosting
    /// thread `i`. Each group is held to the model's one-write/one-read
    /// port budget per cycle, enforced via [`NetError::PortViolation`].
    pub fn proc_groups(mut self, groups: Vec<usize>) -> Self {
        self.proc_groups = Some(groups);
        self
    }

    /// Replace the default runaway-protection cycle budget.
    pub fn cycle_budget(mut self, budget: u64) -> Self {
        self.cycle_budget = budget;
        self
    }

    /// Replace the default livelock watchdog window
    /// ([`DEFAULT_STALL_WINDOW`]). A run in which `window` consecutive
    /// rounds deliver no message and finish no processor fails with
    /// [`NetError::Stalled`]; `u64::MAX` disables the watchdog. Unlike the
    /// cycle budget — which bounds *total* rounds — the watchdog catches
    /// quiet livelocks (every processor spinning on a read that can never
    /// arrive) long before a generous budget would.
    pub fn stall_window(mut self, window: u64) -> Self {
        self.stall_window = window;
        self
    }

    /// Inject faults from `plan` during the run (see [`FaultPlan`]). The
    /// plan's `(p, k)` shape must match this network's; violations surface
    /// as [`NetError::BadConfig`] when the run starts.
    pub fn fault_plan(mut self, plan: FaultPlan) -> Self {
        self.fault_plan = Some(Arc::new(plan));
        self
    }

    /// Select the execution [`Backend`] (default: [`Backend::Auto`]).
    pub fn backend(mut self, backend: Backend) -> Self {
        self.backend = backend;
        self
    }

    /// Enable self-checking broadcast frames (off by default; see
    /// [`crate::frame`]). With framing on:
    ///
    /// * every delivered message is charged [`FRAME_HEADER_BITS`] extra
    ///   bits (cycle and message counts are unchanged);
    /// * `Corrupt` faults *jam* the channel slot instead of silently
    ///   emptying it, so [`ProcCtx::framed_cycle`] readers observe
    ///   [`FrameRead::Noise`] where unframed readers see an empty channel.
    ///
    /// Framing is the detection substrate for the no-oracle self-healing
    /// drivers; protocols that never call
    /// [`framed_cycle`](ProcCtx::framed_cycle) behave identically apart
    /// from the bit accounting.
    pub fn framing(mut self, yes: bool) -> Self {
        self.framing = yes;
        self
    }

    /// Attach a live [`RunMonitor`]: every backend publishes progress into
    /// it at cycle/phase/fault/epoch boundaries, and
    /// [`RunMonitor::snapshot`] stays readable from any thread while the
    /// run executes. The final snapshot also lands in
    /// [`RunReport::monitor`]. Publishing is a handful of relaxed atomic
    /// stores per cycle plus two fetch-adds per message — cheap enough to
    /// leave on outside cost-model measurements (see `crit_obs`).
    pub fn monitor(mut self, mon: &RunMonitor) -> Self {
        self.monitor = Some(mon.core());
        self
    }

    /// The attached fault plan, for the pooled driver's fiber contexts.
    pub(crate) fn plan(&self) -> Option<Arc<FaultPlan>> {
        self.fault_plan.clone()
    }

    /// The attached monitor core, for the pooled driver's fiber contexts.
    pub(crate) fn monitor_core(&self) -> Option<Arc<MonitorCore>> {
        self.monitor.clone()
    }

    fn validate(&self) -> Result<(), NetError> {
        if self.procs == 0 {
            return Err(NetError::BadConfig("p must be >= 1".into()));
        }
        if self.channels == 0 {
            return Err(NetError::BadConfig("k must be >= 1".into()));
        }
        if self.proc_groups.is_none() && self.channels > self.procs {
            // The model assumes k <= p. Virtualized runs (proc_groups set)
            // may use more threads than physical processors, so the check
            // applies to the physical group count there.
            return Err(NetError::BadConfig(format!(
                "model requires k <= p (got k = {}, p = {})",
                self.channels, self.procs
            )));
        }
        if let Some(groups) = &self.proc_groups {
            if groups.len() != self.procs {
                return Err(NetError::BadConfig(format!(
                    "proc_groups has {} entries for {} threads",
                    groups.len(),
                    self.procs
                )));
            }
            let g = groups.iter().copied().max().map_or(0, |m| m + 1);
            if self.channels > g {
                return Err(NetError::BadConfig(format!(
                    "model requires k <= physical p (got k = {}, groups = {g})",
                    self.channels
                )));
            }
        }
        if let Some(plan) = &self.fault_plan {
            if plan.p() != self.procs || plan.k() != self.channels {
                return Err(NetError::BadConfig(format!(
                    "fault plan shaped for MCB({}, {}) attached to MCB({}, {})",
                    plan.p(),
                    plan.k(),
                    self.procs,
                    self.channels
                )));
            }
        }
        Ok(())
    }

    /// Execute `protocol` on every processor and collect results and costs.
    ///
    /// The closure is invoked once per processor with that processor's
    /// [`ProcCtx`]; `ctx.id()` distinguishes the replicas. Processors that
    /// return early idle (invisibly to the cost model) until all are done.
    ///
    /// Runs on the configured [`Backend`] (default [`Backend::Auto`]); the
    /// backend never changes observable behavior, only wall-clock cost.
    ///
    /// ```
    /// use mcb_net::{ChanId, Network};
    ///
    /// // Two processors, one channel: P1 sends its value to P2.
    /// let report = Network::new(2, 1)
    ///     .run(|ctx| {
    ///         if ctx.id().index() == 0 {
    ///             ctx.write(ChanId(0), 42u64);
    ///             None
    ///         } else {
    ///             ctx.read(ChanId(0))
    ///         }
    ///     })
    ///     .unwrap();
    /// assert_eq!(report.results[1], Some(Some(42)));
    /// assert_eq!(report.metrics.messages, 1);
    /// assert_eq!(report.metrics.cycles, 1);
    /// ```
    pub fn run<M, R, F>(&self, protocol: F) -> Result<RunReport<R, M>, NetError>
    where
        M: Clone + Send + Sync + MsgWidth,
        R: Send,
        F: Fn(&mut ProcCtx<'_, M>) -> R + Sync,
    {
        self.validate()?;
        match self.backend.resolve(self.procs) {
            // A closure protocol blocks inside `cycle`, which needs a
            // suspended call stack per processor; the columnar driver has
            // none to offer, so `Vector` delegates closures to the pooled
            // fiber driver (identical observable behavior — only
            // `run_steps` takes the columnar path).
            Backend::Pooled | Backend::Vector => crate::pooled::run_closures(self, &protocol),
            _ => self.run_threaded(&protocol),
        }
    }

    /// Execute a [`StepProtocol`] state machine on every processor.
    ///
    /// `factory` builds processor `id`'s machine; the engine then advances
    /// all `p` machines in lock-step (see [`StepProtocol`] for the driving
    /// contract). Equivalent to [`run`](Self::run) with a closure that loops
    /// over [`StepProtocol::step`] — and exactly that is how it executes on
    /// the [`Threaded`](Backend::Threaded) backend — but on the
    /// [`Pooled`](Backend::Pooled) backend state machines are advanced
    /// directly by the worker pool with **no** per-processor threads, which
    /// is the cheapest way to simulate very large `p`.
    pub fn run_steps<M, S, F>(&self, factory: F) -> Result<RunReport<S::Output, M>, NetError>
    where
        M: Clone + Send + Sync + MsgWidth,
        S: StepProtocol<M> + Send,
        S::Output: Send,
        F: Fn(ProcId) -> S + Sync,
    {
        self.validate()?;
        match self.backend.resolve(self.procs) {
            Backend::Pooled => crate::pooled::run_steps(self, &factory),
            Backend::Vector => crate::vector::run_steps(self, &factory),
            _ => self.run_threaded(&|ctx: &mut ProcCtx<'_, M>| {
                let mut machine = factory(ctx.id());
                let mut input = None;
                loop {
                    let env = ctx.step_env();
                    let step = machine.step(&env, input.take());
                    // A phase requested during `step` labels the yielded
                    // cycle (same ordering as the pooled driver).
                    if let Some(name) = env.take_phase() {
                        ctx.phase(&name);
                    }
                    match step {
                        Step::Yield { write, read } => input = ctx.cycle(write, read),
                        Step::IdleFor(n) => {
                            ctx.idle_for(n.max(1));
                            input = None;
                        }
                        Step::Done(r) => break r,
                    }
                }
            }),
        }
    }

    /// The one-OS-thread-per-processor execution path.
    fn run_threaded<M, R, F>(&self, protocol: &F) -> Result<RunReport<R, M>, NetError>
    where
        M: Clone + Send + Sync + MsgWidth,
        R: Send,
        F: Fn(&mut ProcCtx<'_, M>) -> R + Sync,
    {
        let p = self.procs;
        let shared = Shared::new(self, p);
        let started = Instant::now();

        let results: Mutex<Vec<Option<R>>> = Mutex::new((0..p).map(|_| None).collect());
        let locals: Mutex<Vec<LocalMetrics>> = Mutex::new(vec![LocalMetrics::default(); p]);
        // Per-thread trace buffers are merged here once per thread at run
        // end; the write path itself never takes a lock.
        let all_events: Mutex<Vec<Event<M>>> = Mutex::new(Vec::new());

        std::thread::scope(|scope| {
            for i in 0..p {
                let shared = &shared;
                let results = &results;
                let locals = &locals;
                let all_events = &all_events;
                scope.spawn(move || {
                    let mut ctx = ProcCtx {
                        id: ProcId::from_index(i),
                        local: LocalMetrics::default(),
                        phase_name: String::new(),
                        events: Vec::new(),
                        prof_barrier: LogHistogram::new(),
                        resilient: None,
                        inner: CtxInner::Lockstep {
                            shared,
                            sense: Sense::new(),
                        },
                    };
                    let outcome = catch_unwind(AssertUnwindSafe(|| protocol(&mut ctx)));
                    match outcome {
                        Ok(r) => {
                            results.lock()[i] = Some(r);
                        }
                        Err(payload) => {
                            if let Some(esc) = payload.downcast_ref::<Escalated>() {
                                // Resilient retransmission gave up: the
                                // carried error fails the run.
                                shared.fail(esc.0.clone());
                            } else if payload.downcast_ref::<Aborted>().is_none()
                                && payload.downcast_ref::<Crashed>().is_none()
                            {
                                // Genuine protocol panic (not our forced
                                // shutdown, not a planned crash): report it
                                // as the run's failure.
                                shared.fail(NetError::ProcPanicked {
                                    proc: ProcId::from_index(i),
                                    message: panic_message(payload.as_ref()),
                                });
                            }
                        }
                    }
                    shared.finished.fetch_add(1, Ordering::AcqRel);
                    // Keep participating in barrier rounds until everyone is
                    // done, so stragglers can continue their protocol. If the
                    // run is already over (this thread was force-unwound when
                    // `done` was raised), every other thread is exiting at
                    // this same round boundary, so joining another round
                    // would desynchronize the barrier.
                    if !shared.done.load(Ordering::Acquire) {
                        loop {
                            if ctx.drain_round() {
                                break;
                            }
                        }
                    }
                    if shared.profile {
                        shared.prof.lock().barrier.merge(&ctx.prof_barrier);
                    }
                    if !ctx.events.is_empty() {
                        all_events.lock().append(&mut ctx.events);
                    }
                    locals.lock()[i] = ctx.local;
                });
            }
        });

        let profile = self.profile.then(|| {
            let agg = shared.prof.lock().clone();
            agg.into_profile(Backend::Threaded, p, started.elapsed().as_nanos() as u64)
        });
        assemble_report(
            shared,
            locals.into_inner(),
            results.into_inner(),
            all_events.into_inner(),
            profile,
        )
    }
}

/// Turn a finished run's shared state into the caller-facing report (or the
/// recorded failure). Both backends go through here, so the report shape
/// cannot drift between them.
///
/// `events` is the concatenation of every executor's private trace buffer
/// (empty unless tracing was on); [`Trace::new`] re-sorts it into the
/// canonical (cycle, channel, writer) order, which is a *total* order for a
/// collision-free run — at most one writer per (cycle, channel) — so the
/// merged trace is identical no matter how the buffers were split across
/// executors.
pub(crate) fn assemble_report<R, M: Clone>(
    shared: Shared<M>,
    locals: Vec<LocalMetrics>,
    results: Vec<Option<R>>,
    mut events: Vec<Event<M>>,
    profile: Option<EngineProfile>,
) -> Result<RunReport<R, M>, NetError> {
    if let Some(err) = shared.failure.lock().take() {
        if let Some(mon) = &shared.monitor {
            mon.mark_failed();
        }
        return Err(err);
    }
    let k = shared.k;
    let fault_summary = shared.plan.as_ref().map(|p| p.summary());
    let mut faults = shared.faults.into_inner();
    // Executors append fault records in scheduling order; canonicalize so
    // the log is deterministic and backend-identical.
    canonicalize(&mut faults);
    let names = shared.phases.into_inner();

    // Aggregate the per-processor phase tallies by interner id: cycles by
    // max (same convention as whole-run `Metrics::cycles`), everything else
    // by sum.
    let mut agg: Vec<PhaseMetrics> = names
        .iter()
        .map(|n| PhaseMetrics {
            name: n.clone(),
            first_cycle: u64::MAX,
            ..PhaseMetrics::default()
        })
        .collect();
    for l in &locals {
        for (id, row) in l.phases.iter().enumerate() {
            if row.cycles == 0 && row.messages == 0 {
                continue;
            }
            let pm = &mut agg[id];
            pm.cycles = pm.cycles.max(row.cycles);
            pm.messages += row.messages;
            pm.total_bits += row.total_bits;
            pm.first_cycle = pm.first_cycle.min(row.first_round);
            pm.last_cycle = pm.last_cycle.max(row.last_round);
            if pm.per_channel_messages.len() < row.per_channel.len() {
                pm.per_channel_messages.resize(row.per_channel.len(), 0);
            }
            for (c, n) in row.per_channel.iter().enumerate() {
                pm.per_channel_messages[c] += n;
            }
        }
    }

    // Interner ids depend on which executor interned a label first, which
    // is scheduling-dependent; re-key the table by (first activity, name) —
    // both deterministic — and drop labels that never saw a cycle or a
    // message, so the exported table is identical across backends.
    let mut used: Vec<(u16, PhaseMetrics)> = agg
        .into_iter()
        .enumerate()
        .skip(1) // id 0 is the unlabelled sentinel
        .filter(|(_, pm)| pm.cycles > 0 || pm.messages > 0)
        .map(|(id, mut pm)| {
            pm.per_channel_messages.resize(k, 0);
            (id as u16, pm)
        })
        .collect();
    used.sort_by(|a, b| (a.1.first_cycle, &a.1.name).cmp(&(b.1.first_cycle, &b.1.name)));
    let mut remap: Vec<Option<u16>> = vec![None; names.len()];
    for (new, (old, _)) in used.iter().enumerate() {
        remap[*old as usize] = Some(new as u16);
    }
    let phases: Vec<PhaseMetrics> = used.into_iter().map(|(_, pm)| pm).collect();

    let metrics = Metrics {
        cycles: locals.iter().map(|l| l.cycles).max().unwrap_or(0),
        rounds: shared.round.load(Ordering::Relaxed),
        messages: locals.iter().map(|l| l.messages).sum(),
        total_bits: locals.iter().map(|l| l.total_bits).sum(),
        max_msg_bits: locals.iter().map(|l| l.max_msg_bits).max().unwrap_or(0),
        per_proc_messages: locals.iter().map(|l| l.messages).collect(),
        per_proc_cycles: locals.iter().map(|l| l.cycles).collect(),
        per_channel_messages: shared
            .chan_msgs
            .iter()
            .map(|c| c.load(Ordering::Relaxed))
            .collect(),
        phases,
        faults: faults.clone(),
    };
    // Publish the final (deterministic, backend-identical) totals into the
    // monitor, then take its snapshot for the report.
    let monitor = shared.monitor.as_ref().map(|mon| {
        mon.finish(&metrics);
        mon.snapshot()
    });
    let trace = shared.record_trace.then(|| {
        // Events carry interner ids at recording time; translate them to
        // canonical table indices.
        for e in &mut events {
            e.phase = e.phase.and_then(|old| remap[old as usize]);
        }
        let mut t = Trace::new(events);
        t.set_faults(faults);
        t
    });
    Ok(RunReport {
        results,
        metrics,
        trace,
        profile,
        fault_summary,
        epochs: Vec::new(),
        monitor,
    })
}

/// Everything a completed run produced.
#[derive(Debug)]
pub struct RunReport<R, M> {
    /// Per-processor protocol return values, indexed by processor.
    ///
    /// Entries are `Some` for every processor on a successful run, with two
    /// exceptions: partial results are collected even when a run fails
    /// mid-way (in which case `run` returns `Err` instead), and a processor
    /// crashed by the attached [`FaultPlan`] finishes with `None` — its
    /// result died with it, but the run itself still completes.
    pub results: Vec<Option<R>>,
    /// Cycle/message accounting.
    pub metrics: Metrics,
    /// Message trace, when [`Network::record_trace`] was enabled.
    pub trace: Option<Trace<M>>,
    /// Wall-clock engine counters, when [`Network::profile`] was enabled.
    /// Unlike everything else in the report these are *not* deterministic
    /// and are excluded from the JSONL export.
    pub profile: Option<EngineProfile>,
    /// Summary of the attached [`FaultPlan`], when one was attached (the
    /// per-fault log lives in [`Metrics::faults`]).
    pub fault_summary: Option<FaultSummary>,
    /// Reconfigurations committed by the epoch protocol
    /// ([`EpochCtx`](crate::EpochCtx)). The engine itself never
    /// reconfigures, so this starts empty; self-healing drivers fill it in
    /// from the survivors' (identical) reconfiguration logs so the JSONL
    /// export can carry the epoch history.
    pub epochs: Vec<EpochRecord>,
    /// The final [`RunMonitor`] snapshot, when one was attached via
    /// [`Network::monitor`]. Unlike mid-run snapshots this one is taken
    /// after the run's metrics are assembled, so it holds exact final
    /// totals and is deterministic and backend-identical (events excepted —
    /// they arrive in scheduling order and are excluded from the JSONL
    /// export).
    pub monitor: Option<MonitorSnapshot>,
}

impl<R, M> RunReport<R, M> {
    /// Unwrap all per-processor results (panics if any is missing, which
    /// cannot happen on an `Ok` report).
    pub fn into_results(self) -> Vec<R> {
        self.results
            .into_iter()
            .map(|r| r.expect("successful run has a result per processor"))
            .collect()
    }
}

/// Forced-shutdown unwind token; never observed by user code.
pub(crate) struct Aborted;

/// Unwind token for a planned processor crash: the processor stops, the run
/// continues, its result slot stays `None`. Never observed by user code.
pub(crate) struct Crashed;

/// Unwind token carrying a [`NetError`] the processor wants to fail the
/// whole run with (resilient retransmission gave up). Never observed by
/// user code.
pub(crate) struct Escalated(pub(crate) NetError);

/// Best-effort text of a caught panic payload.
pub(crate) fn panic_message(payload: &(dyn std::any::Any + Send)) -> String {
    payload
        .downcast_ref::<&str>()
        .map(|s| s.to_string())
        .or_else(|| payload.downcast_ref::<String>().cloned())
        .unwrap_or_else(|| "<non-string panic>".into())
}

struct GroupState {
    map: Vec<usize>,
    writes: Vec<AtomicU32>,
    reads: Vec<AtomicU32>,
}

/// Run state shared by all executors of one run: the channel slots, the
/// clock, and the termination/failure machinery. The *semantics* of a cycle
/// live in the methods here ([`apply_write`](Shared::apply_write),
/// [`apply_read`](Shared::apply_read), [`sweep`](Shared::sweep)); backends
/// only differ in who calls them and how the calls are synchronized
/// (`barrier` spans all `p` processor threads on the threaded backend, but
/// only the workers on the pooled one).
/// One channel's per-cycle state: the deposited message (if any) plus a
/// *jam* flag set when a framed `Corrupt` fault garbled the slot's
/// transmission. Unframed reads ignore the flag entirely, so non-framed
/// behavior is bit-identical to a plain `Option` slot.
#[derive(Debug)]
pub(crate) struct ChanSlot<M> {
    msg: Option<(ProcId, M)>,
    jammed: bool,
}

impl<M> Default for ChanSlot<M> {
    fn default() -> Self {
        ChanSlot {
            msg: None,
            jammed: false,
        }
    }
}

pub(crate) struct Shared<M> {
    pub(crate) k: usize,
    slots: Vec<RwLock<ChanSlot<M>>>,
    pub(crate) barrier: SenseBarrier,
    pub(crate) done: AtomicBool,
    failed: AtomicBool,
    pub(crate) finished: AtomicUsize,
    pub(crate) round: AtomicU64,
    failure: Mutex<Option<NetError>>,
    chan_msgs: Vec<AtomicU64>,
    /// Whether executors should record trace events (into their own
    /// buffers; this struct holds no event storage).
    pub(crate) record_trace: bool,
    /// Whether executors should time their barrier waits / stalls.
    pub(crate) profile: bool,
    /// Wall-clock counters, contributed once per executor at run end.
    pub(crate) prof: Mutex<ProfAgg>,
    /// Phase-label interner: id -> name, id 0 reserved for "unlabelled".
    /// Locked only on label *transitions*, never per cycle or message.
    phases: Mutex<Vec<String>>,
    groups: Option<GroupState>,
    cycle_budget: u64,
    /// Watchdog window: consecutive no-activity rounds tolerated before the
    /// run fails with [`NetError::Stalled`].
    stall_window: u64,
    /// Watchdog state, touched only by the elected sweeper (atomics used as
    /// plain cells across sweep invocations).
    last_activity_round: AtomicU64,
    last_msg_total: AtomicU64,
    last_finished: AtomicUsize,
    /// Whether self-checking frames are enabled (see [`Network::framing`]).
    pub(crate) framing: bool,
    /// The static fault schedule, if any.
    pub(crate) plan: Option<Arc<FaultPlan>>,
    /// Faults that fired, appended by any executor; canonicalized (sorted,
    /// deduplicated) by `assemble_report`.
    faults: Mutex<Vec<FaultRecord>>,
    pub(crate) total_procs: usize,
    /// Live-monitor core, when a [`RunMonitor`] is attached. Publishes from
    /// the hot path are relaxed atomics; `None` costs one branch.
    pub(crate) monitor: Option<Arc<MonitorCore>>,
    /// Run start time, the zero point for the cycle-latency histogram.
    started: Instant,
    /// Wall-clock of the previous `tick`, touched only by the elected
    /// sweeper (profiling on).
    last_tick_ns: AtomicU64,
}

/// Wall-clock engine histograms, contributed by executors at run end and
/// by the sweeper per tick (see [`EngineProfile`]).
#[derive(Debug, Default, Clone)]
pub(crate) struct ProfAgg {
    /// Wall-clock per completed engine round (recorded by the sweeper).
    pub(crate) cycle: LogHistogram,
    /// One sample per barrier wait, across all executors.
    pub(crate) barrier: LogHistogram,
    /// One sample per pooled bring-up/resume/collect block.
    pub(crate) stall: LogHistogram,
    /// One sample per vector-driver collect sweep.
    pub(crate) dispatch: LogHistogram,
}

impl ProfAgg {
    /// Package the aggregated histograms as the caller-facing
    /// [`EngineProfile`], deriving the compatibility sums.
    pub(crate) fn into_profile(
        self,
        backend: Backend,
        workers: usize,
        wall_ns: u64,
    ) -> EngineProfile {
        EngineProfile {
            backend,
            workers,
            wall_ns,
            barrier_wait_ns: self.barrier.sum(),
            stall_ns: self.stall.sum().saturating_add(self.dispatch.sum()),
            cycle_latency: self.cycle,
            barrier_wait: self.barrier,
            stall: self.stall,
            dispatch: self.dispatch,
        }
    }
}

impl<M: Clone + Send + Sync> Shared<M> {
    /// Shared state for one run; `participants` is the barrier width (`p`
    /// for the threaded backend, the worker count for the pooled one).
    pub(crate) fn new(net: &Network, participants: usize) -> Self {
        let groups = net.proc_groups.clone().map(|map| {
            let g = map.iter().copied().max().map_or(0, |m| m + 1);
            GroupState {
                map,
                writes: (0..g).map(|_| AtomicU32::new(0)).collect(),
                reads: (0..g).map(|_| AtomicU32::new(0)).collect(),
            }
        });
        Shared {
            k: net.channels,
            slots: (0..net.channels)
                .map(|_| RwLock::new(ChanSlot::default()))
                .collect(),
            barrier: SenseBarrier::new(participants),
            done: AtomicBool::new(false),
            failed: AtomicBool::new(false),
            finished: AtomicUsize::new(0),
            round: AtomicU64::new(0),
            failure: Mutex::new(None),
            chan_msgs: (0..net.channels).map(|_| AtomicU64::new(0)).collect(),
            record_trace: net.record_trace,
            profile: net.profile,
            prof: Mutex::new(ProfAgg::default()),
            phases: Mutex::new(vec![String::new()]),
            groups,
            cycle_budget: net.cycle_budget,
            stall_window: net.stall_window,
            last_activity_round: AtomicU64::new(0),
            last_msg_total: AtomicU64::new(0),
            last_finished: AtomicUsize::new(0),
            framing: net.framing,
            plan: net.fault_plan.clone(),
            faults: Mutex::new(Vec::new()),
            total_procs: net.procs,
            monitor: {
                let monitor = net.monitor.clone();
                if let Some(mon) = &monitor {
                    mon.reset(net.procs, net.channels);
                }
                monitor
            },
            started: Instant::now(),
            last_tick_ns: AtomicU64::new(0),
        }
    }

    /// Record the run's first failure; later failures are dropped.
    pub(crate) fn fail(&self, err: NetError) {
        let mut slot = self.failure.lock();
        if slot.is_none() {
            *slot = Some(err);
        }
        self.failed.store(true, Ordering::Release);
    }

    /// Append one fired fault to the run's fault log.
    pub(crate) fn record_fault(&self, rec: FaultRecord) {
        if let Some(mon) = &self.monitor {
            mon.on_fault(&rec);
        }
        self.faults.lock().push(rec);
    }

    /// Intern a phase label, returning its run-wide id (0 for `""`). Called
    /// only on label transitions; a label seen before is a linear scan of
    /// the (short) table, a new one is a push.
    pub(crate) fn phase_id(&self, name: &str) -> u16 {
        if name.is_empty() {
            return 0;
        }
        let mut table = self.phases.lock();
        if let Some(i) = table.iter().position(|n| n == name) {
            return i as u16;
        }
        assert!(
            table.len() <= u16::MAX as usize,
            "too many distinct phase labels (max 65535)"
        );
        table.push(name.to_owned());
        let id = (table.len() - 1) as u16;
        if let Some(mon) = &self.monitor {
            mon.register_phase(id, name);
        }
        id
    }

    /// Barrier wait, sampled into `acc` when profiling is on.
    #[inline]
    pub(crate) fn barrier_wait(&self, sense: &mut Sense, acc: &mut LogHistogram) -> bool {
        if self.profile {
            let t = Instant::now();
            let winner = self.barrier.wait(sense);
            acc.record(t.elapsed().as_nanos() as u64);
            winner
        } else {
            self.barrier.wait(sense)
        }
    }
}

impl<M: Clone + Send + Sync + MsgWidth> Shared<M> {
    /// Write phase for one processor: validate the channel, detect
    /// collisions, record trace/metrics, deposit the message.
    ///
    /// `events` is the calling executor's *private* trace buffer (`None`
    /// when tracing is off): appending is lock-free, and the buffers are
    /// merged into canonical order by `assemble_report`.
    pub(crate) fn apply_write(
        &self,
        id: ProcId,
        c: ChanId,
        m: M,
        local: &mut LocalMetrics,
        events: Option<&mut Vec<Event<M>>>,
    ) {
        let now = self.round.load(Ordering::Relaxed);
        if c.index() >= self.k {
            self.fail(NetError::BadChannel {
                cycle: now,
                proc: id,
                channel: c,
                k: self.k,
            });
            return;
        }
        if let Some(plan) = &self.plan {
            // Faulted transmissions never reach the channel slot: they do
            // not collide, are not counted as messages, and leave a fault
            // record instead. A stall is processor-scoped (chan = None) so
            // the suppressed write and read of one cycle dedup to one
            // record. With framing on, a corrupted transmission *jams* the
            // slot — carrier energy without a verifiable frame — so framed
            // readers can tell corruption from silence.
            if let Some(kind) = plan.write_fault(id.index(), c.index(), now) {
                self.record_fault(FaultRecord {
                    cycle: now,
                    kind,
                    proc: Some(id),
                    chan: (kind != FaultKind::Stall).then_some(c),
                });
                if self.framing && kind == FaultKind::Corrupt {
                    self.slots[c.index()].write().jammed = true;
                }
                return;
            }
        }
        let bits = m.bits() + if self.framing { FRAME_HEADER_BITS } else { 0 };
        if let Some(gs) = &self.groups {
            gs.writes[gs.map[id.index()]].fetch_add(1, Ordering::Relaxed);
        }
        let mut slot = self.slots[c.index()].write();
        match &slot.msg {
            Some((first, _)) => {
                let first = *first;
                drop(slot);
                self.fail(NetError::Collision {
                    cycle: now,
                    channel: c,
                    first,
                    second: id,
                });
            }
            None => {
                if let Some(buf) = events {
                    buf.push(Event {
                        cycle: now,
                        writer: id,
                        channel: c,
                        // Interner id for now; remapped to the canonical
                        // table index by `assemble_report`.
                        phase: (local.cur_phase != 0).then_some(local.cur_phase),
                        msg: m.clone(),
                    });
                }
                slot.msg = Some((id, m));
                drop(slot);
                local.record_message(bits, c.index(), now);
                self.chan_msgs[c.index()].fetch_add(1, Ordering::Relaxed);
                if let Some(mon) = &self.monitor {
                    mon.on_message(local.cur_phase, bits, now);
                }
            }
        }
    }

    /// Read phase for one processor: validate the channel and return the
    /// message currently in it, if any.
    pub(crate) fn apply_read(&self, id: ProcId, c: ChanId) -> Option<M> {
        if c.index() >= self.k {
            self.fail(NetError::BadChannel {
                cycle: self.round.load(Ordering::Relaxed),
                proc: id,
                channel: c,
                k: self.k,
            });
            return None;
        }
        if let Some(plan) = &self.plan {
            let now = self.round.load(Ordering::Relaxed);
            if plan.is_stalled(id.index(), now) {
                // The receiver is blacked out: the read sees an empty
                // channel regardless of traffic.
                self.record_fault(FaultRecord {
                    cycle: now,
                    kind: FaultKind::Stall,
                    proc: Some(id),
                    chan: None,
                });
                return None;
            }
        }
        if let Some(gs) = &self.groups {
            gs.reads[gs.map[id.index()]].fetch_add(1, Ordering::Relaxed);
        }
        self.slots[c.index()]
            .read()
            .msg
            .as_ref()
            .map(|(_, m)| m.clone())
    }

    /// Framed read phase: like [`apply_read`](Self::apply_read) but
    /// classifying the slot into the three-way [`FrameRead`] outcome. A
    /// jammed slot (corrupted transmission under framing) reads as
    /// [`FrameRead::Noise`]; a stalled reader is blacked out and observes
    /// [`FrameRead::Silence`] regardless of traffic.
    pub(crate) fn apply_read_framed(&self, id: ProcId, c: ChanId) -> FrameRead<M> {
        if c.index() >= self.k {
            self.fail(NetError::BadChannel {
                cycle: self.round.load(Ordering::Relaxed),
                proc: id,
                channel: c,
                k: self.k,
            });
            return FrameRead::Silence;
        }
        if let Some(plan) = &self.plan {
            let now = self.round.load(Ordering::Relaxed);
            if plan.is_stalled(id.index(), now) {
                self.record_fault(FaultRecord {
                    cycle: now,
                    kind: FaultKind::Stall,
                    proc: Some(id),
                    chan: None,
                });
                return FrameRead::Silence;
            }
        }
        if let Some(gs) = &self.groups {
            gs.reads[gs.map[id.index()]].fetch_add(1, Ordering::Relaxed);
        }
        let slot = self.slots[c.index()].read();
        if slot.jammed {
            return FrameRead::Noise;
        }
        match &slot.msg {
            Some((_, m)) => FrameRead::Clean(m.clone()),
            None => FrameRead::Silence,
        }
    }

    /// Per-cycle sweep, run by exactly one executor after all reads: clear
    /// slots, validate group ports, advance the clock, check the budget,
    /// decide termination. Sets `done` when the run is over.
    pub(crate) fn sweep(&self) {
        for slot in &self.slots {
            let mut s = slot.write();
            if s.msg.is_some() {
                s.msg = None;
            }
            if s.jammed {
                s.jammed = false;
            }
        }
        self.tick();
    }

    /// The slot-independent tail of [`sweep`](Self::sweep): validate group
    /// ports, advance the clock, check the budget and the livelock
    /// watchdog, decide termination. Split out so the vector backend —
    /// which keeps the channel slots in its own columnar buffers and
    /// clears only the dirty ones — shares every decision that must not
    /// drift between backends.
    pub(crate) fn tick(&self) {
        if let Some(gs) = &self.groups {
            let cycle = self.round.load(Ordering::Relaxed);
            for g in 0..gs.writes.len() {
                let w = gs.writes[g].swap(0, Ordering::Relaxed);
                let r = gs.reads[g].swap(0, Ordering::Relaxed);
                if w > 1 || r > 1 {
                    self.fail(NetError::PortViolation {
                        cycle,
                        group: g,
                        writes: w,
                        reads: r,
                    });
                }
            }
        }
        let completed = self.round.fetch_add(1, Ordering::Relaxed) + 1;
        if completed >= self.cycle_budget {
            self.fail(NetError::CycleBudgetExhausted {
                budget: self.cycle_budget,
            });
        }
        // Livelock watchdog: "activity" is a delivered message or a newly
        // finished processor. Only the elected sweeper runs this, so the
        // atomics are plain cells carried across sweep invocations.
        let msg_total: u64 = self
            .chan_msgs
            .iter()
            .map(|c| c.load(Ordering::Relaxed))
            .sum();
        let fin = self.finished.load(Ordering::Acquire);
        if msg_total != self.last_msg_total.load(Ordering::Relaxed)
            || fin != self.last_finished.load(Ordering::Relaxed)
        {
            self.last_msg_total.store(msg_total, Ordering::Relaxed);
            self.last_finished.store(fin, Ordering::Relaxed);
            self.last_activity_round.store(completed, Ordering::Relaxed);
        } else if completed - self.last_activity_round.load(Ordering::Relaxed) >= self.stall_window
        {
            self.fail(NetError::Stalled { cycle: completed });
        }
        // Per-round observability taps, piggy-backing on the sums the
        // watchdog just computed. Exactly one sweeper runs per round, so
        // both are uncontended.
        if self.profile {
            let now_ns = self.started.elapsed().as_nanos() as u64;
            let last = self.last_tick_ns.swap(now_ns, Ordering::Relaxed);
            self.prof.lock().cycle.record(now_ns.saturating_sub(last));
        }
        if let Some(mon) = &self.monitor {
            mon.on_cycle(completed, msg_total, fin);
        }
        let all_finished = self.finished.load(Ordering::Acquire) == self.total_procs;
        if all_finished || self.failed.load(Ordering::Acquire) {
            self.done.store(true, Ordering::Release);
        }
    }

    /// Count one delivered message on channel `chan` — the vector driver's
    /// hook into the per-channel tallies that `apply_write` maintains for
    /// the other backends.
    #[inline]
    pub(crate) fn count_channel_message(&self, chan: usize) {
        self.chan_msgs[chan].fetch_add(1, Ordering::Relaxed);
    }

    /// Charge one write against `proc`'s physical group port budget
    /// (no-op without [`Network::proc_groups`]); mirrors the mark inside
    /// `apply_write` for the vector driver's columnar write loop.
    #[inline]
    pub(crate) fn group_mark_write(&self, proc: usize) {
        if let Some(gs) = &self.groups {
            gs.writes[gs.map[proc]].fetch_add(1, Ordering::Relaxed);
        }
    }

    /// Charge one read against `proc`'s physical group port budget; the
    /// read-side counterpart of [`group_mark_write`](Self::group_mark_write).
    #[inline]
    pub(crate) fn group_mark_read(&self, proc: usize) {
        if let Some(gs) = &self.groups {
            gs.reads[gs.map[proc]].fetch_add(1, Ordering::Relaxed);
        }
    }
}

/// A processor's handle to the network, passed to the protocol closure.
///
/// All communication goes through [`cycle`](Self::cycle) (or the
/// [`write`](Self::write) / [`read`](Self::read) / [`idle`](Self::idle)
/// shorthands); each call advances the global clock by exactly one cycle
/// across the entire network.
pub struct ProcCtx<'a, M> {
    id: ProcId,
    local: LocalMetrics,
    /// Current phase label as text (`""` = unlabelled); kept here so the
    /// [`PhaseScope`] guard can restore it in both execution modes.
    phase_name: String,
    /// This processor's private trace buffer (threaded backend only; the
    /// pooled backend buffers per worker slot instead).
    events: Vec<Event<M>>,
    /// Per-wait barrier samples (threaded backend, profiling on), merged
    /// into the run's aggregate at thread end.
    prof_barrier: LogHistogram,
    /// When `Some`, [`cycle`](Self::cycle) transparently executes the §2
    /// simulation-lemma degraded protocol (see
    /// [`set_resilient`](Self::set_resilient)).
    resilient: Option<ResilientOpts>,
    inner: CtxInner<'a, M>,
}

/// How a `ProcCtx` reaches the network.
enum CtxInner<'a, M> {
    /// Threaded backend: this context owns an OS thread that participates
    /// directly in the run's barrier and applies its own writes/reads.
    Lockstep { shared: &'a Shared<M>, sense: Sense },
    /// Pooled backend: this context lives on a parked helper thread; each
    /// `cycle` is a rendezvous with a pool worker, which applies the
    /// write/read on the context's behalf and sends back the read result
    /// plus refreshed clocks.
    Fiber {
        p: usize,
        k: usize,
        now: u64,
        /// Phase-label change not yet shipped to the worker; travels with
        /// the next rendezvous so the worker stamps it before applying the
        /// cycle.
        pending_phase: Option<String>,
        /// The run's fault schedule, mirrored here so resilient mode can
        /// compute live channels and retransmission notices without a
        /// worker round-trip.
        plan: Option<Arc<FaultPlan>>,
        /// The run's live-monitor core, mirrored here so the epoch layer
        /// can post reconfiguration events without a worker round-trip.
        monitor: Option<Arc<MonitorCore>>,
        port: crate::pooled::FiberPort<M>,
    },
}

impl<'a, M: Clone + Send + Sync + MsgWidth> ProcCtx<'a, M> {
    /// A fiber-mode context for the pooled backend (see [`CtxInner::Fiber`]).
    pub(crate) fn fiber(
        id: ProcId,
        p: usize,
        k: usize,
        plan: Option<Arc<FaultPlan>>,
        monitor: Option<Arc<MonitorCore>>,
        port: crate::pooled::FiberPort<M>,
    ) -> Self {
        ProcCtx {
            id,
            local: LocalMetrics::default(),
            phase_name: String::new(),
            events: Vec::new(),
            prof_barrier: LogHistogram::new(),
            resilient: None,
            inner: CtxInner::Fiber {
                p,
                k,
                now: 0,
                pending_phase: None,
                plan,
                monitor,
                port,
            },
        }
    }

    /// The run's live-monitor core, if one is attached — the epoch layer's
    /// hook for posting reconfiguration events.
    pub(crate) fn monitor_core(&self) -> Option<&Arc<MonitorCore>> {
        match &self.inner {
            CtxInner::Lockstep { shared, .. } => shared.monitor.as_ref(),
            CtxInner::Fiber { monitor, .. } => monitor.as_ref(),
        }
    }

    /// This processor's identity.
    #[inline]
    pub fn id(&self) -> ProcId {
        self.id
    }

    /// `p`: total processors in the network.
    #[inline]
    pub fn p(&self) -> usize {
        match &self.inner {
            CtxInner::Lockstep { shared, .. } => shared.total_procs,
            CtxInner::Fiber { p, .. } => *p,
        }
    }

    /// `k`: total channels in the network.
    #[inline]
    pub fn k(&self) -> usize {
        match &self.inner {
            CtxInner::Lockstep { shared, .. } => shared.k,
            CtxInner::Fiber { k, .. } => *k,
        }
    }

    /// Global cycle index: number of completed cycles so far. Only
    /// meaningful between [`cycle`](Self::cycle) calls.
    #[inline]
    pub fn now(&self) -> u64 {
        match &self.inner {
            CtxInner::Lockstep { shared, .. } => shared.round.load(Ordering::Relaxed),
            CtxInner::Fiber { now, .. } => *now,
        }
    }

    /// Cycles this processor's protocol has executed.
    #[inline]
    pub fn cycles_used(&self) -> u64 {
        self.local.cycles
    }

    /// Messages this processor has sent.
    #[inline]
    pub fn messages_sent(&self) -> u64 {
        self.local.messages
    }

    /// Execute one synchronous cycle: optionally write one channel,
    /// optionally read one channel. Returns the message read, or `None`
    /// when no read was requested *or* the read channel was empty (the
    /// model's detectable-empty-channel semantics).
    ///
    /// In resilient mode (see [`set_resilient`](Self::set_resilient)) this
    /// is a *logical* cycle: it expands to `⌈k/k'⌉` physical cycles on the
    /// `k'` surviving channels, plus retransmission retries, per the §2
    /// simulation lemma.
    pub fn cycle(&mut self, write: Option<(ChanId, M)>, read: Option<ChanId>) -> Option<M> {
        if self.resilient.is_some() {
            return self.resilient_cycle(write, read);
        }
        self.raw_cycle(write, read)
    }

    /// The run's fault schedule, if one is attached.
    fn plan(&self) -> Option<&FaultPlan> {
        match &self.inner {
            CtxInner::Lockstep { shared, .. } => shared.plan.as_deref(),
            CtxInner::Fiber { plan, .. } => plan.as_deref(),
        }
    }

    /// The channels still alive at the current cycle, in ascending order.
    /// All `k` channels when no fault plan is attached; the fault plan's
    /// survivors otherwise. Because fault plans are static, every processor
    /// computes the same answer at the same cycle — the basis for the
    /// lemma-driven remap in resilient mode.
    pub fn live_channels(&self) -> Vec<ChanId> {
        let now = self.now();
        match self.plan() {
            Some(plan) => plan
                .live_at(now)
                .into_iter()
                .map(ChanId::from_index)
                .collect(),
            None => (0..self.k()).map(ChanId::from_index).collect(),
        }
    }

    /// Switch this processor's [`cycle`](Self::cycle) calls into (or out of)
    /// resilient mode.
    ///
    /// In resilient mode each logical cycle is simulated on the channels
    /// still alive under the run's [`FaultPlan`] via the paper's §2 lemma:
    /// with `k'` of `k` channels surviving, the logical cycle expands to
    /// `h = ⌈k/k'⌉` physical sub-cycles, sub-cycle `j` carrying logical
    /// channels `c` with `c / k' == j` on physical channel `live[c % k']`.
    /// The mapping is injective per sub-cycle, so a collision-free logical
    /// schedule stays collision-free, and a logical writer and reader of
    /// the same channel land in the same sub-cycle, so delivery is
    /// preserved.
    ///
    /// Transient faults (drop / corrupt / stall) are handled by planned
    /// notice: after each logical cycle every processor checks — from the
    /// static plan, so all agree — whether any fault could have fired in
    /// the window just executed, and if so the whole network retries the
    /// logical cycle, up to [`ResilientOpts::retries`] times before the run
    /// fails with [`NetError::Unrecoverable`]. This models synchronous
    /// detection-by-silence: on a broadcast medium every station observes
    /// the carrier, so a garbled or missing slot is common knowledge one
    /// cycle later.
    ///
    /// Resilient mode assumes an SPMD lock-step protocol (all processors
    /// issue their `n`-th logical cycle together), which holds for every
    /// schedule in `mcb-algos`. It changes only *which physical cycles*
    /// implement the logical schedule; with no fault plan attached (or no
    /// faults fired) it executes one physical cycle per logical cycle and
    /// is observably identical to normal mode.
    pub fn set_resilient(&mut self, opts: Option<ResilientOpts>) {
        self.resilient = opts;
    }

    /// One *physical* network cycle (see [`cycle`](Self::cycle), which
    /// dispatches here directly outside resilient mode).
    fn raw_cycle(&mut self, write: Option<(ChanId, M)>, read: Option<ChanId>) -> Option<M> {
        match &mut self.inner {
            CtxInner::Lockstep { shared, sense } => {
                // ---- planned crash ---------------------------------------
                // Checked at the top of the cycle, before any barrier: the
                // crashing thread leaves the protocol having participated in
                // zero barriers this round, and its drain rounds use the
                // same three-barrier shape as a full cycle, so the rest of
                // the network stays synchronized.
                if let Some(plan) = &shared.plan {
                    let now = shared.round.load(Ordering::Relaxed);
                    if plan
                        .crash_cycle(self.id.index())
                        .is_some_and(|cc| now >= cc)
                    {
                        shared.record_fault(FaultRecord {
                            cycle: now,
                            kind: FaultKind::Crash,
                            proc: Some(self.id),
                            chan: None,
                        });
                        std::panic::resume_unwind(Box::new(Crashed));
                    }
                }
                // ---- write phase -----------------------------------------
                if let Some((c, m)) = write {
                    let events = shared.record_trace.then_some(&mut self.events);
                    shared.apply_write(self.id, c, m, &mut self.local, events);
                }
                shared.barrier_wait(sense, &mut self.prof_barrier); // writes visible

                // ---- read phase ------------------------------------------
                let got = read.and_then(|c| shared.apply_read(self.id, c));
                self.local
                    .record_cycle(shared.round.load(Ordering::Relaxed));

                if self.finish_round() {
                    // The run was aborted (failure elsewhere, or cycle
                    // budget): unwind out of the protocol without invoking
                    // the panic hook.
                    std::panic::resume_unwind(Box::new(Aborted));
                }
                got
            }
            CtxInner::Fiber {
                now,
                port,
                pending_phase,
                ..
            } => {
                match port.rendezvous(pending_phase.take(), write, read) {
                    Some(resume) => {
                        // The worker applied our write/read under the pool's
                        // round structure; adopt its authoritative clocks
                        // (the full per-phase tallies stay on the worker's
                        // side — only the scalars matter to the protocol).
                        self.local.cycles = resume.cycles;
                        self.local.messages = resume.messages;
                        *now = resume.now;
                        resume.read
                    }
                    // The run is over (failure elsewhere, or cycle budget).
                    None => std::panic::resume_unwind(Box::new(Aborted)),
                }
            }
        }
    }

    /// One physical cycle with a *framed* read (see [`crate::frame`]):
    /// instead of the model's two-way empty-or-message observation, the
    /// read classifies the channel into [`FrameRead::Silence`] /
    /// [`FrameRead::Clean`] / [`FrameRead::Noise`], which is what lets a
    /// reader distinguish a lost transmission from a corrupted one without
    /// oracle access.
    ///
    /// Requires [`Network::framing`] for `Noise` to ever be observable
    /// (without it, corrupt faults empty the slot and read as silence).
    /// `framed_cycle` never goes through resilient mode — self-healing
    /// protocols own their channel remap via the epoch layer. With no
    /// `read` requested the result is [`FrameRead::Silence`].
    pub fn framed_cycle(
        &mut self,
        write: Option<(ChanId, M)>,
        read: Option<ChanId>,
    ) -> FrameRead<M> {
        match &mut self.inner {
            CtxInner::Lockstep { shared, sense } => {
                // Planned crash: same placement as `raw_cycle`.
                if let Some(plan) = &shared.plan {
                    let now = shared.round.load(Ordering::Relaxed);
                    if plan
                        .crash_cycle(self.id.index())
                        .is_some_and(|cc| now >= cc)
                    {
                        shared.record_fault(FaultRecord {
                            cycle: now,
                            kind: FaultKind::Crash,
                            proc: Some(self.id),
                            chan: None,
                        });
                        std::panic::resume_unwind(Box::new(Crashed));
                    }
                }
                if let Some((c, m)) = write {
                    let events = shared.record_trace.then_some(&mut self.events);
                    shared.apply_write(self.id, c, m, &mut self.local, events);
                }
                shared.barrier_wait(sense, &mut self.prof_barrier); // writes visible

                let got = read.map_or(FrameRead::Silence, |c| shared.apply_read_framed(self.id, c));
                self.local
                    .record_cycle(shared.round.load(Ordering::Relaxed));

                if self.finish_round() {
                    std::panic::resume_unwind(Box::new(Aborted));
                }
                got
            }
            CtxInner::Fiber {
                now,
                port,
                pending_phase,
                ..
            } => match port.rendezvous_framed(pending_phase.take(), write, read) {
                Some(resume) => {
                    self.local.cycles = resume.cycles;
                    self.local.messages = resume.messages;
                    *now = resume.now;
                    if resume.jammed {
                        FrameRead::Noise
                    } else {
                        match resume.read {
                            Some(m) => FrameRead::Clean(m),
                            None => FrameRead::Silence,
                        }
                    }
                }
                None => std::panic::resume_unwind(Box::new(Aborted)),
            },
        }
    }

    /// One *logical* cycle under the §2 simulation lemma, with planned-
    /// notice retransmission (see [`set_resilient`](Self::set_resilient)).
    fn resilient_cycle(&mut self, write: Option<(ChanId, M)>, read: Option<ChanId>) -> Option<M> {
        let k = self.k();
        // Out-of-range logical channels must surface as BadChannel exactly
        // as in normal mode, not be remapped into range.
        if write.as_ref().is_some_and(|(c, _)| c.index() >= k)
            || read.is_some_and(|c| c.index() >= k)
        {
            return self.raw_cycle(write, read);
        }
        let retries = self.resilient.map_or(0, |o| o.retries);
        for _ in 0..=retries {
            let start = self.now();
            let live = self
                .plan()
                .map_or_else(|| (0..k).collect(), |plan| plan.live_at(start));
            let kp = live.len();
            if kp == 0 {
                // Every channel is dead: no schedule can be simulated.
                std::panic::resume_unwind(Box::new(Escalated(NetError::Unrecoverable {
                    cycle: start,
                    proc: self.id,
                    attempts: retries,
                })));
            }
            let h = k.div_ceil(kp);
            // Sub-cycle j carries logical channels c with c / k' == j on
            // physical channel live[c % k']: injective per sub-cycle (the
            // c % k' values of one block are distinct), and a logical
            // writer/reader pair of the same channel shares a sub-cycle.
            let mut got = None;
            for j in 0..h {
                let sub = |c: ChanId| {
                    (c.index() / kp == j).then(|| ChanId::from_index(live[c.index() % kp]))
                };
                let w = write
                    .as_ref()
                    .and_then(|(c, m)| sub(*c).map(|phys| (phys, m.clone())));
                let r = read.and_then(sub);
                let res = self.raw_cycle(w, r);
                if r.is_some() {
                    got = res;
                }
            }
            // Planned notice: if any fault could have fired in the window
            // just executed, every processor (computing from the same
            // static plan) retries the logical cycle. The retry window
            // starts past the fault cycle that spoiled this one, so each
            // planned fault cycle spoils at most one window.
            let noticed = self
                .plan()
                .is_some_and(|plan| plan.notice(start, self.now()));
            if !noticed {
                return got;
            }
        }
        std::panic::resume_unwind(Box::new(Escalated(NetError::Unrecoverable {
            cycle: self.now(),
            proc: self.id,
            attempts: retries,
        })));
    }

    /// Label all subsequent cycles and messages of this processor with
    /// `name`, until the label changes ( `""` returns to unlabelled).
    ///
    /// Labels feed the per-phase breakdown in
    /// [`Metrics::phases`](crate::Metrics::phases) and stamp trace events;
    /// setting one is free in the cost model (no cycle, no message). See
    /// [`crate::phase`] for the aggregation and nesting conventions.
    pub fn phase(&mut self, name: &str) {
        self.phase_name.clear();
        self.phase_name.push_str(name);
        match &mut self.inner {
            CtxInner::Lockstep { shared, .. } => {
                self.local.cur_phase = shared.phase_id(name);
            }
            CtxInner::Fiber { pending_phase, .. } => {
                *pending_phase = Some(name.to_owned());
            }
        }
    }

    /// The currently active phase label (`""` when unlabelled). Subroutines
    /// use this to only label phases when their caller has not (see
    /// [`crate::phase`]).
    pub fn phase_label(&self) -> &str {
        &self.phase_name
    }

    /// Set phase `name` for a scope: the returned guard derefs to this
    /// context and restores the previous label when dropped.
    pub fn phase_scope<'s>(&'s mut self, name: &str) -> PhaseScope<'s, Self> {
        PhaseScope::enter(self, name)
    }

    /// Snapshot of the identity/clock accessors, for [`StepProtocol`]s.
    pub(crate) fn step_env(&self) -> StepEnv {
        StepEnv::new(
            self.id,
            self.p(),
            self.k(),
            self.now(),
            self.local.cycles,
            self.local.messages,
        )
    }

    /// Write-only cycle.
    pub fn write(&mut self, chan: ChanId, msg: M) {
        self.cycle(Some((chan, msg)), None);
    }

    /// Read-only cycle.
    pub fn read(&mut self, chan: ChanId) -> Option<M> {
        self.cycle(None, Some(chan))
    }

    /// Do-nothing cycle (keeps this processor in lock-step).
    pub fn idle(&mut self) {
        self.cycle(None, None);
    }

    /// Idle for `n` cycles.
    pub fn idle_for(&mut self, n: u64) {
        for _ in 0..n {
            self.idle();
        }
    }

    /// Shared tail of every lockstep round: sweep barrier + cleanup + final
    /// barrier. Returns true when the run is over (normally or by abort).
    fn finish_round(&mut self) -> bool {
        let CtxInner::Lockstep { shared, sense } = &mut self.inner else {
            unreachable!("finish_round is a lockstep-only path");
        };
        let winner = shared.barrier_wait(sense, &mut self.prof_barrier); // reads done
        if winner {
            // Elected sweeper for this cycle: clear slots, validate ports,
            // advance the clock, decide termination.
            shared.sweep();
        }
        shared.barrier_wait(sense, &mut self.prof_barrier); // sweep visible
        shared.done.load(Ordering::Acquire)
    }

    /// One no-op round for a finished processor; returns true when the run
    /// is over. Drain rounds are excluded from the processor's cycle count.
    fn drain_round(&mut self) -> bool {
        let CtxInner::Lockstep { shared, sense } = &mut self.inner else {
            unreachable!("drain_round is a lockstep-only path");
        };
        shared.barrier_wait(sense, &mut self.prof_barrier); // write phase (no-op)
        self.finish_round()
    }
}

impl<M: Clone + Send + Sync + MsgWidth> PhaseTarget for ProcCtx<'_, M> {
    fn set_phase_label(&mut self, name: &str) {
        self.phase(name);
    }

    fn phase_label(&self) -> &str {
        &self.phase_name
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    /// Every processor broadcasts once on its own channel; everyone reads a
    /// ring neighbour. Exercises p = k full-parallel traffic.
    #[test]
    fn ring_exchange_p_equals_k() {
        let p = 8;
        let report = Network::new(p, p)
            .run(|ctx| {
                let me = ctx.id().index();
                let from = ChanId::from_index((me + 1) % ctx.p());
                ctx.cycle(Some((ChanId::from_index(me), me as u64 * 10)), Some(from))
            })
            .unwrap();
        for (i, r) in report.results.iter().enumerate() {
            let expect = ((i + 1) % p) as u64 * 10;
            assert_eq!(r.unwrap(), Some(expect), "processor {i}");
        }
        assert_eq!(report.metrics.messages, p as u64);
        assert_eq!(report.metrics.cycles, 1);
        assert_eq!(report.metrics.per_channel_messages, vec![1; p]);
    }

    #[test]
    fn empty_channel_is_detectable() {
        let report = Network::new(2, 2)
            .run(|ctx| {
                if ctx.id().index() == 0 {
                    ctx.write(ChanId(0), 5u64);
                    None
                } else {
                    // Reads the *other* channel, which nobody wrote.
                    ctx.read(ChanId(1))
                }
            })
            .unwrap();
        assert_eq!(report.results[1], Some(None));
    }

    #[test]
    fn collision_fails_the_run() {
        let err = Network::new(4, 2)
            .run(|ctx| {
                // P1 and P2 both write channel 0 in cycle 0.
                if ctx.id().index() < 2 {
                    ctx.write(ChanId(0), 1u64);
                } else {
                    ctx.idle();
                }
            })
            .unwrap_err();
        match err {
            NetError::Collision { channel, cycle, .. } => {
                assert_eq!(channel, ChanId(0));
                assert_eq!(cycle, 0);
            }
            other => panic!("expected collision, got {other}"),
        }
    }

    #[test]
    fn concurrent_reads_are_fine() {
        let p = 16;
        let report = Network::new(p, 4)
            .run(|ctx| {
                if ctx.id().index() == 0 {
                    ctx.cycle(Some((ChanId(2), 99u64)), Some(ChanId(2)))
                } else {
                    ctx.read(ChanId(2))
                }
            })
            .unwrap();
        for r in report.into_results() {
            assert_eq!(r, Some(99));
        }
    }

    #[test]
    fn early_finishers_idle_while_stragglers_run() {
        let p = 4;
        let report = Network::new(p, p)
            .run(|ctx| {
                let me = ctx.id().index();
                // Processor i runs i+1 cycles, each broadcasting once.
                for c in 0..=me {
                    ctx.write(ChanId::from_index(me), c as u64);
                }
                ctx.cycles_used()
            })
            .unwrap();
        assert_eq!(report.metrics.cycles, p as u64);
        assert_eq!(report.metrics.messages, (1 + 2 + 3 + 4) as u64);
        assert_eq!(report.metrics.per_proc_cycles, vec![1, 2, 3, 4]);
        assert!(report.metrics.rounds >= report.metrics.cycles);
    }

    #[test]
    fn protocol_panic_is_reported_not_hung() {
        let err = Network::new(3, 3)
            .run(|ctx: &mut ProcCtx<'_, u64>| {
                if ctx.id().index() == 1 {
                    panic!("injected bug");
                }
                // Others would wait forever for a message that never comes;
                // the abort machinery must still terminate them.
                loop {
                    if ctx.read(ChanId(0)).is_some() {
                        break;
                    }
                }
            })
            .unwrap_err();
        match err {
            NetError::ProcPanicked { proc, message } => {
                assert_eq!(proc, ProcId(1));
                assert!(message.contains("injected bug"));
            }
            other => panic!("expected panic report, got {other}"),
        }
    }

    #[test]
    fn cycle_budget_stops_livelock() {
        let err = Network::new(2, 2)
            .cycle_budget(100)
            .run(|ctx: &mut ProcCtx<'_, u64>| loop {
                ctx.idle();
            })
            .unwrap_err();
        assert_eq!(err, NetError::CycleBudgetExhausted { budget: 100 });
    }

    #[test]
    fn bad_channel_index_is_reported() {
        let err = Network::new(2, 2)
            .run(|ctx| {
                ctx.write(ChanId(7), 1u64);
            })
            .unwrap_err();
        match err {
            NetError::BadChannel { channel, k, .. } => {
                assert_eq!(channel, ChanId(7));
                assert_eq!(k, 2);
            }
            other => panic!("expected bad channel, got {other}"),
        }
    }

    #[test]
    fn k_greater_than_p_rejected() {
        let err = Network::new(2, 3)
            .run(|ctx: &mut ProcCtx<'_, u64>| ctx.idle())
            .unwrap_err();
        assert!(matches!(err, NetError::BadConfig(_)));
    }

    #[test]
    fn zero_sizes_rejected() {
        assert!(matches!(
            Network::new(0, 1)
                .run(|ctx: &mut ProcCtx<'_, u64>| ctx.idle())
                .unwrap_err(),
            NetError::BadConfig(_)
        ));
        assert!(matches!(
            Network::new(1, 0)
                .run(|ctx: &mut ProcCtx<'_, u64>| ctx.idle())
                .unwrap_err(),
            NetError::BadConfig(_)
        ));
    }

    #[test]
    fn trace_records_all_messages_in_order() {
        let report = Network::new(3, 3)
            .record_trace(true)
            .run(|ctx| {
                let me = ctx.id().index();
                ctx.write(ChanId::from_index(me), me as u64);
                ctx.idle();
                ctx.write(ChanId::from_index(me), 10 + me as u64);
            })
            .unwrap();
        let trace = report.trace.unwrap();
        assert_eq!(trace.len(), 6);
        let cycles: Vec<u64> = trace.events().iter().map(|e| e.cycle).collect();
        assert_eq!(cycles, vec![0, 0, 0, 2, 2, 2]);
        assert_eq!(trace.cycle_events(0).count(), 3);
        assert_eq!(trace.cycle_events(1).count(), 0);
    }

    #[test]
    fn port_violation_detected_for_groups() {
        // Threads 0 and 1 form one physical processor; both writing in the
        // same cycle (on different channels) exceeds the physical write port.
        let err = Network::new(4, 2)
            .proc_groups(vec![0, 0, 1, 1])
            .run(|ctx| {
                let me = ctx.id().index();
                if me < 2 {
                    ctx.write(ChanId::from_index(me), 1u64);
                } else {
                    ctx.idle();
                }
            })
            .unwrap_err();
        match err {
            NetError::PortViolation { group, writes, .. } => {
                assert_eq!(group, 0);
                assert_eq!(writes, 2);
            }
            other => panic!("expected port violation, got {other}"),
        }
    }

    #[test]
    fn group_budget_allows_one_write_one_read() {
        let report = Network::new(4, 2)
            .proc_groups(vec![0, 0, 1, 1])
            .run(|ctx| {
                // Within each group one thread writes and one reads: both
                // physical processors stay inside the 1/1 port budget.
                match ctx.id().index() {
                    0 => {
                        ctx.write(ChanId(0), 9u64);
                        None
                    }
                    1 => ctx.read(ChanId(1)),
                    2 => {
                        ctx.write(ChanId(1), 8u64);
                        None
                    }
                    _ => ctx.read(ChanId(0)),
                }
            })
            .unwrap();
        assert_eq!(report.results[1], Some(Some(8)));
        assert_eq!(report.results[3], Some(Some(9)));
    }

    #[test]
    fn bit_accounting_tracks_payload_widths() {
        let report = Network::new(2, 2)
            .run(|ctx| {
                if ctx.id().index() == 0 {
                    ctx.write(ChanId(0), 255u64); // 8 bits
                    ctx.write(ChanId(0), 65536u64); // 17 bits
                } else {
                    ctx.idle_for(2);
                }
            })
            .unwrap();
        assert_eq!(report.metrics.messages, 2);
        assert_eq!(report.metrics.total_bits, 25);
        assert_eq!(report.metrics.max_msg_bits, 17);
    }

    #[test]
    fn determinism_across_repeated_runs() {
        let run = || {
            Network::new(6, 3)
                .run(|ctx| {
                    let me = ctx.id().index();
                    let mut acc = 0u64;
                    for round in 0..10u64 {
                        let writer = (round as usize) % ctx.p();
                        let chan = ChanId::from_index(writer % ctx.k());
                        let msg = if me == writer {
                            Some((chan, round * 7 + me as u64))
                        } else {
                            None
                        };
                        if let Some(v) = ctx.cycle(msg, Some(chan)) {
                            acc = acc.wrapping_mul(31).wrapping_add(v);
                        }
                    }
                    acc
                })
                .unwrap()
        };
        let a = run();
        let b = run();
        assert_eq!(a.into_results(), b.into_results());
    }
}
