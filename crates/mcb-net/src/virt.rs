//! Simulating a larger MCB on a smaller one (paper §2).
//!
//! The paper notes that one cycle of an `MCB(p', k')` can be simulated on an
//! `MCB(p, k)` (`p' >= p`, `k' >= k`) by hosting `p'/p` virtual processors on
//! each physical processor and `k'/k` virtual channels on each physical
//! channel, repeating each message `p'/p` times. This is what licenses the
//! paper's "w.l.o.g." normalizations (`p` a power of two, `k` divides `p`,
//! …).
//!
//! # Schedule
//!
//! Let `g = p'/p` and `h = k'/k`. A virtual cycle is executed as `g·h·g`
//! physical cycles indexed `(a_w, b, a_r)`:
//!
//! * in slot `(a_w, b, a_r)` a physical processor performs the **write** of
//!   its virtual processor with local index `a_w`, provided that write
//!   targets a virtual channel of class `b` — so each virtual message is
//!   physically repeated `g` times (once per `a_r`), matching the paper's
//!   repetition count;
//! * in the same slot it performs the **read** of its virtual processor with
//!   local index `a_r`, provided that read targets a class-`b` channel. The
//!   reader scans all `g` repetition slots and keeps the unique non-empty
//!   one, so it needs no knowledge of the writer's identity.
//!
//! Virtual channel `c` maps to physical channel `c mod k` with class
//! `c div k`; virtual processor `v` lives on physical processor `v div g`
//! with local index `v mod g`.
//!
//! The engine's [`proc_groups`](crate::Network::proc_groups) port validation
//! runs underneath, so any schedule bug would surface as a
//! [`PortViolation`](crate::NetError::PortViolation) rather than silent
//! corruption.
//!
//! # Fidelity note
//!
//! This *oblivious* schedule costs `O((p'/p)² · (k'/k))` physical cycles per
//! virtual cycle — a factor `p'/p` above the paper's `O((p'/p)(k'/k))`
//! claim, which requires readers to know when their writer transmits (true
//! for the oblivious schedules used inside Columnsort, but not for arbitrary
//! protocols). Message overhead is exactly the paper's `p'/p` per original
//! message. Experiment E10 measures both. In the paper's own uses of the
//! lemma the ratios `p'/p` and `k'/k` are constants (< 2), so the distinction
//! never affects the asymptotic results.

use crate::engine::{Network, ProcCtx};
use crate::error::NetError;
use crate::ids::ChanId;
use crate::message::MsgWidth;
use crate::metrics::Metrics;
use crate::phase::{PhaseScope, PhaseTarget};

/// A virtual `MCB(p', k')` hosted on a physical `MCB(p, k)`.
#[derive(Debug, Clone)]
pub struct VirtualNetwork {
    virt_p: usize,
    virt_k: usize,
    phys_p: usize,
    phys_k: usize,
}

/// Costs of a virtualized run, on both the virtual and the physical level.
#[derive(Debug, Clone)]
pub struct VirtReport<R> {
    /// Per-virtual-processor protocol results.
    pub results: Vec<R>,
    /// Costs as measured on the physical network.
    pub phys: Metrics,
    /// Virtual cycles: max number of virtual cycles any virtual processor ran.
    pub virt_cycles: u64,
    /// Virtual messages: total virtual broadcasts requested.
    pub virt_messages: u64,
}

impl VirtualNetwork {
    /// Host `MCB(virt_p, virt_k)` on `MCB(phys_p, phys_k)`.
    ///
    /// Requires `phys_p | virt_p` and `phys_k | virt_k` (the paper's
    /// flooring/padding is left to the caller, who can simply round the
    /// virtual sizes up).
    pub fn new(
        virt_p: usize,
        virt_k: usize,
        phys_p: usize,
        phys_k: usize,
    ) -> Result<Self, NetError> {
        if phys_p == 0 || phys_k == 0 || virt_p == 0 || virt_k == 0 {
            return Err(NetError::BadConfig("all dimensions must be >= 1".into()));
        }
        if !virt_p.is_multiple_of(phys_p) {
            return Err(NetError::BadConfig(format!(
                "phys_p = {phys_p} must divide virt_p = {virt_p}"
            )));
        }
        if !virt_k.is_multiple_of(phys_k) {
            return Err(NetError::BadConfig(format!(
                "phys_k = {phys_k} must divide virt_k = {virt_k}"
            )));
        }
        if virt_k > virt_p || phys_k > phys_p {
            return Err(NetError::BadConfig(
                "model requires k <= p on both levels".into(),
            ));
        }
        Ok(VirtualNetwork {
            virt_p,
            virt_k,
            phys_p,
            phys_k,
        })
    }

    /// Virtual processors per physical processor (`g = p'/p`).
    pub fn proc_ratio(&self) -> usize {
        self.virt_p / self.phys_p
    }

    /// Virtual channels per physical channel (`h = k'/k`).
    pub fn chan_ratio(&self) -> usize {
        self.virt_k / self.phys_k
    }

    /// Physical cycles consumed per virtual cycle (`g²·h`).
    pub fn slots_per_virtual_cycle(&self) -> usize {
        let g = self.proc_ratio();
        g * g * self.chan_ratio()
    }

    /// Run a protocol written against the *virtual* network.
    ///
    /// The closure receives a [`VirtCtx`] whose `cycle` has the same
    /// semantics as [`ProcCtx::cycle`], but addressed in virtual processor
    /// and channel identifiers.
    pub fn run<M, R, F>(&self, protocol: F) -> Result<VirtReport<R>, NetError>
    where
        M: Clone + Send + Sync + MsgWidth,
        R: Send,
        F: Fn(&mut VirtCtx<'_, '_, M>) -> R + Sync,
    {
        let g = self.proc_ratio();
        let groups: Vec<usize> = (0..self.virt_p).map(|v| v / g).collect();
        let net = Network::new(self.virt_p, self.phys_k).proc_groups(groups);
        let virt_p = self.virt_p;
        let virt_k = self.virt_k;
        let phys_k = self.phys_k;
        let report = net.run(move |inner: &mut ProcCtx<'_, M>| {
            let mut vctx = VirtCtx {
                inner,
                virt_p,
                virt_k,
                phys_k,
                g,
                h: virt_k / phys_k,
                v_cycles: 0,
                v_messages: 0,
            };
            let r = protocol(&mut vctx);
            (r, vctx.v_cycles, vctx.v_messages)
        })?;
        let phys = report.metrics;
        let mut results = Vec::with_capacity(self.virt_p);
        let mut virt_cycles = 0u64;
        let mut virt_messages = 0u64;
        for item in report.results {
            let (r, c, m) = item.expect("successful run yields all results");
            virt_cycles = virt_cycles.max(c);
            virt_messages += m;
            results.push(r);
        }
        Ok(VirtReport {
            results,
            phys,
            virt_cycles,
            virt_messages,
        })
    }
}

/// A virtual processor's handle to the virtual network.
pub struct VirtCtx<'a, 'b, M> {
    inner: &'a mut ProcCtx<'b, M>,
    virt_p: usize,
    virt_k: usize,
    phys_k: usize,
    g: usize,
    h: usize,
    v_cycles: u64,
    v_messages: u64,
}

impl<'a, 'b, M: Clone + Send + Sync + MsgWidth> VirtCtx<'a, 'b, M> {
    /// This virtual processor's index in `0..p'`.
    pub fn id(&self) -> usize {
        self.inner.id().index()
    }

    /// `p'`: virtual processor count.
    pub fn p(&self) -> usize {
        self.virt_p
    }

    /// `k'`: virtual channel count.
    pub fn k(&self) -> usize {
        self.virt_k
    }

    /// Virtual cycles executed so far by this virtual processor.
    pub fn cycles_used(&self) -> u64 {
        self.v_cycles
    }

    fn phys_chan(&self, c: usize) -> usize {
        c % self.phys_k
    }

    fn chan_class(&self, c: usize) -> usize {
        c / self.phys_k
    }

    /// One *virtual* cycle: optionally write virtual channel, optionally
    /// read virtual channel. Semantics mirror [`ProcCtx::cycle`].
    pub fn cycle(&mut self, write: Option<(usize, M)>, read: Option<usize>) -> Option<M> {
        if let Some((c, _)) = &write {
            assert!(*c < self.virt_k, "virtual channel {c} out of range");
            self.v_messages += 1;
        }
        if let Some(c) = &read {
            assert!(*c < self.virt_k, "virtual channel {c} out of range");
        }
        let my_local = self.id() % self.g;
        let mut got: Option<M> = None;
        for a_w in 0..self.g {
            for b in 0..self.h {
                for a_r in 0..self.g {
                    let w = match &write {
                        Some((c, m)) if my_local == a_w && self.chan_class(*c) == b => {
                            Some((ChanId::from_index(self.phys_chan(*c)), m.clone()))
                        }
                        _ => None,
                    };
                    let r = match &read {
                        Some(c) if my_local == a_r && self.chan_class(*c) == b => {
                            Some(ChanId::from_index(self.phys_chan(*c)))
                        }
                        _ => None,
                    };
                    if let Some(m) = self.inner.cycle(w, r) {
                        got = Some(m);
                    }
                }
            }
        }
        self.v_cycles += 1;
        got
    }

    /// Write-only virtual cycle.
    pub fn write(&mut self, chan: usize, msg: M) {
        self.cycle(Some((chan, msg)), None);
    }

    /// Read-only virtual cycle.
    pub fn read(&mut self, chan: usize) -> Option<M> {
        self.cycle(None, Some(chan))
    }

    /// Do-nothing virtual cycle.
    pub fn idle(&mut self) {
        self.cycle(None, None);
    }

    /// Label subsequent activity with `name` — delegates to the physical
    /// [`ProcCtx::phase`]. Note that phase metrics count *physical*
    /// quantities: one virtual cycle contributes `g²·h` physical cycles to
    /// the active phase.
    pub fn phase(&mut self, name: &str) {
        self.inner.phase(name);
    }

    /// The currently active phase label (`""` when unlabelled).
    pub fn phase_label(&self) -> &str {
        self.inner.phase_label()
    }

    /// RAII variant of [`phase`](Self::phase): restores the previous label
    /// when the guard drops. See [`ProcCtx::phase_scope`].
    pub fn phase_scope<'s>(&'s mut self, name: &str) -> PhaseScope<'s, Self> {
        PhaseScope::enter(self, name)
    }
}

impl<M: Clone + Send + Sync + MsgWidth> PhaseTarget for VirtCtx<'_, '_, M> {
    fn set_phase_label(&mut self, name: &str) {
        self.phase(name);
    }

    fn phase_label(&self) -> &str {
        VirtCtx::phase_label(self)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    /// Ring exchange on a virtual MCB(8, 8) hosted on MCB(4, 2).
    #[test]
    fn virtual_ring_exchange() {
        let vnet = VirtualNetwork::new(8, 8, 4, 2).unwrap();
        assert_eq!(vnet.proc_ratio(), 2);
        assert_eq!(vnet.chan_ratio(), 4);
        assert_eq!(vnet.slots_per_virtual_cycle(), 16);
        let report = vnet
            .run(|ctx| {
                let me = ctx.id();
                let from = (me + 1) % ctx.p();
                ctx.cycle(Some((me, me as u64 * 100)), Some(from))
            })
            .unwrap();
        for (i, r) in report.results.iter().enumerate() {
            assert_eq!(*r, Some(((i + 1) % 8) as u64 * 100), "vproc {i}");
        }
        assert_eq!(report.virt_cycles, 1);
        assert_eq!(report.virt_messages, 8);
        // Each virtual message repeated g = 2 times physically.
        assert_eq!(report.phys.messages, 16);
        assert_eq!(report.phys.cycles, 16);
    }

    /// Pure channel reduction (g = 1) costs exactly h physical cycles and
    /// one physical message per virtual message — the paper's bound exactly.
    #[test]
    fn channel_reduction_is_exact() {
        let vnet = VirtualNetwork::new(4, 4, 4, 1).unwrap();
        assert_eq!(vnet.slots_per_virtual_cycle(), 4);
        let report = vnet
            .run(|ctx| {
                let me = ctx.id();
                ctx.cycle(Some((me, me as u64)), Some((me + 2) % 4))
            })
            .unwrap();
        for (i, r) in report.results.iter().enumerate() {
            assert_eq!(*r, Some(((i + 2) % 4) as u64));
        }
        assert_eq!(report.phys.messages, report.virt_messages);
        assert_eq!(report.phys.cycles, 4);
    }

    #[test]
    fn empty_virtual_channel_reads_none() {
        let vnet = VirtualNetwork::new(4, 4, 2, 2).unwrap();
        let report = vnet
            .run(|ctx| {
                if ctx.id() == 0 {
                    ctx.write(0, 1u64);
                    None
                } else {
                    ctx.read(3)
                }
            })
            .unwrap();
        assert_eq!(report.results[1], None);
    }

    #[test]
    fn virtual_collision_still_fails() {
        let vnet = VirtualNetwork::new(4, 4, 2, 2).unwrap();
        let err = vnet
            .run(|ctx| {
                // Virtual processors 0 and 2 share a local index (both have
                // v mod g == 0) on different physical processors, and both
                // write virtual channel 1 — a genuine virtual collision.
                if ctx.id() % 2 == 0 {
                    ctx.write(1, 1u64);
                } else {
                    ctx.idle();
                }
            })
            .unwrap_err();
        assert!(matches!(err, NetError::Collision { .. }), "{err}");
    }

    /// Randomized configurations and traffic: the virtualization must
    /// deliver exactly what a direct MCB(p', k') run would.
    #[test]
    fn random_configs_match_direct_execution() {
        let configs = [
            (4usize, 2usize, 2usize, 1usize),
            (6, 3, 3, 3),
            (8, 4, 4, 2),
            (12, 6, 4, 2),
            (8, 2, 2, 2),
        ];
        for (ci, &(vp, vk, pp, pk)) in configs.iter().enumerate() {
            let vnet = VirtualNetwork::new(vp, vk, pp, pk).unwrap();
            // Deterministic pseudo-random single-writer traffic: in round
            // r, the writer of channel c is vproc (c * 7 + r * 3) % vp
            // when that value is < vp... readers rotate too.
            let rounds = 4u64;
            let run_virtual = vnet
                .run(|ctx| {
                    let me = ctx.id();
                    let mut acc = 0u64;
                    for r in 0..rounds {
                        let my_chan =
                            (0..ctx.k()).find(|&c| (c * 7 + r as usize * 3) % ctx.p() == me);
                        let w = my_chan.map(|c| (c, (me as u64) << (8 + r)));
                        let read = (me + r as usize) % ctx.k();
                        if let Some(v) = ctx.cycle(w, Some(read)) {
                            acc = acc.wrapping_mul(1000003).wrapping_add(v);
                        }
                    }
                    acc
                })
                .unwrap();
            // Direct execution of the same protocol on a real MCB(vp, vk).
            let direct = Network::new(vp, vk)
                .run(|ctx| {
                    let me = ctx.id().index();
                    let mut acc = 0u64;
                    for r in 0..rounds {
                        let my_chan =
                            (0..ctx.k()).find(|&c| (c * 7 + r as usize * 3) % ctx.p() == me);
                        let w =
                            my_chan.map(|c| (crate::ChanId::from_index(c), (me as u64) << (8 + r)));
                        let read = crate::ChanId::from_index((me + r as usize) % ctx.k());
                        if let Some(v) = ctx.cycle(w, Some(read)) {
                            acc = acc.wrapping_mul(1000003).wrapping_add(v);
                        }
                    }
                    acc
                })
                .unwrap();
            assert_eq!(
                run_virtual.results,
                direct.into_results(),
                "config {ci}: virtualized run diverged from direct run"
            );
            assert_eq!(
                run_virtual.phys.messages,
                run_virtual.virt_messages * vnet.proc_ratio() as u64
            );
        }
    }

    #[test]
    fn non_dividing_ratios_rejected() {
        assert!(VirtualNetwork::new(6, 4, 4, 2).is_err());
        assert!(VirtualNetwork::new(8, 6, 4, 4).is_err());
        assert!(VirtualNetwork::new(8, 0, 4, 1).is_err());
    }

    #[test]
    fn multi_cycle_virtual_protocol() {
        // Virtual token ring: value accumulates as it passes through all
        // 6 virtual processors on a 3-processor physical network.
        let vnet = VirtualNetwork::new(6, 3, 3, 3).unwrap();
        let report = vnet
            .run(|ctx| {
                let me = ctx.id();
                let p = ctx.p();
                let mut token: Option<u64> = (me == 0).then_some(1);
                let mut last_seen = 0u64;
                for round in 0..p {
                    let holder = round % p;
                    let chan = holder % ctx.k();
                    let w = (me == holder).then(|| (chan, token.unwrap_or(0) * 2));
                    let got = ctx.cycle(w, Some(chan));
                    if let Some(v) = got {
                        last_seen = v;
                        if me == (holder + 1) % p {
                            token = Some(v);
                        }
                    }
                }
                last_seen
            })
            .unwrap();
        // Token starts at 1, doubles at each hop: everyone's last
        // observation is the final broadcast 2^6 = 64... except the value
        // depends on who held it; just check all processors agree.
        let first = report.results[0];
        assert!(report.results.iter().all(|&r| r == first));
        assert_eq!(report.virt_cycles, 6);
    }
}
