//! # mcb-net — the Multi-Channel Broadcast network model
//!
//! A cycle-accurate simulator for the **MCB(p, k)** distributed computation
//! model of Marberg & Gafni, *Sorting and Selection in Multi-Channel
//! Broadcast Networks* (UCLA CSD-850002, 1985):
//!
//! * `p` independent processors, `k <= p` shared broadcast channels;
//! * computation proceeds in globally synchronized cycles;
//! * per cycle, each processor may **write one channel** and **read one
//!   channel**, then compute locally (local work is free in the cost model);
//! * protocols must be **collision-free**: two writers on one channel in one
//!   cycle fail the computation (detected and reported by the engine);
//! * channels are memoryless: a message exists only in the cycle it is
//!   written, and reading an empty channel is detectable;
//! * complexity is the total number of **cycles** and **messages**, with
//!   messages limited to O(log β) bits (audited via [`MsgWidth`]).
//!
//! Three interchangeable execution backends implement the model (selected
//! via [`Backend`]): the **threaded** engine runs each processor's protocol
//! as a real OS thread in lock-step behind a sense-reversing barrier; the
//! **pooled** engine batches all `p` logical processors across
//! `min(p, cores)` workers — the practical choice for `p` in the thousands;
//! and the **vector** engine drives [`StepProtocol`] state machines from a
//! single thread in struct-of-arrays form, skipping idle processors
//! entirely — the choice for `p` in the hundreds of thousands. Whichever
//! runs, all observable quantities are deterministic for collision-free
//! protocols and identical across backends.
//!
//! ## Quick example
//!
//! Find the maximum of `p` values in `p - 1` cycles on one channel (each
//! processor in turn broadcasts only if it beats the running maximum —
//! not optimal, just illustrative):
//!
//! ```
//! use mcb_net::{ChanId, Network};
//!
//! let values = [3u64, 1, 4, 1, 5];
//! let report = Network::new(5, 1)
//!     .run(|ctx| {
//!         let mut best = values[ctx.id().index()];
//!         for turn in 0..ctx.p() {
//!             let mine = turn == ctx.id().index();
//!             let write = (mine && best == values[ctx.id().index()])
//!                 .then(|| (ChanId(0), best));
//!             if let Some(seen) = ctx.cycle(write, Some(ChanId(0))) {
//!                 best = best.max(seen);
//!             }
//!         }
//!         best
//!     })
//!     .unwrap();
//! assert!(report.into_results().into_iter().all(|b| b == 5));
//! ```
//!
//! ## Modules
//!
//! * [`engine`] — the executor ([`Network`], [`ProcCtx`], [`Backend`]).
//! * [`step`] — protocols as resumable state machines ([`StepProtocol`],
//!   run thread-free at scale by the pooled and vector backends).
//! * [`virt`] — §2's simulation of a larger MCB on a smaller one.
//! * [`fault`] — deterministic fault injection ([`FaultPlan`]) and the §2
//!   lemma-driven degraded mode ([`ProcCtx::set_resilient`]).
//! * [`frame`] — self-checking broadcast frames: the three-way
//!   silence/clean/noise read classification ([`FrameRead`]) that lets
//!   protocols detect faults from the wire with no oracle.
//! * [`epoch`] — the reconfiguration census ([`EpochCtx`]): agree on live
//!   channel/processor sets after a detected fault and bump the epoch.
//! * [`metrics`] — cycle/message/per-phase accounting ([`Metrics`],
//!   [`PhaseMetrics`], [`EngineProfile`], [`LogHistogram`]).
//! * [`monitor`] — live run monitoring: a [`RunMonitor`] snapshotable from
//!   another thread while the run is in flight.
//! * [`phase`] — labelled phase scopes attributing costs to algorithm
//!   stages ([`PhaseScope`]).
//! * [`trace`] — optional wire traces feeding the lower-bound adversary.
//! * [`export`] — deterministic JSONL serialization of a [`RunReport`] and
//!   the Chrome-trace/Perfetto exporter.
//! * [`timeline`] — ASCII cycle × channel timeline rendering of a trace.
//! * [`message`] — O(log β) message-width accounting ([`MsgWidth`]).
//! * [`barrier`] — the sense-reversing barrier underneath it all.

#![warn(missing_docs)]

pub mod barrier;
pub mod engine;
pub mod epoch;
pub mod error;
pub mod export;
pub mod fault;
pub mod frame;
pub mod ids;
pub mod message;
pub mod metrics;
pub mod monitor;
pub mod phase;
mod pooled;
pub mod step;
mod sync;
pub mod timeline;
pub mod trace;
mod vector;
pub mod virt;

pub use engine::{
    Backend, Network, ProcCtx, RunReport, DEFAULT_CYCLE_BUDGET, DEFAULT_STALL_WINDOW,
};
pub use epoch::{escalate_diverged, ControlCodec, EpochCause, EpochCtx, EpochOpts, EpochRecord};
pub use error::NetError;
pub use export::{validate_chrome_trace, ChromeTraceStats, JSONL_SCHEMA_VERSION};
pub use fault::{ChaosOpts, FaultKind, FaultPlan, FaultRecord, FaultSummary, ResilientOpts};
pub use frame::{frame_crc, FrameHeader, FrameRead, FRAME_HEADER_BITS};
pub use ids::{ChanId, ProcId};
pub use message::{bits_for_i64, bits_for_u64, MsgWidth};
pub use metrics::{EngineProfile, LogHistogram, Metrics, PhaseMetrics};
pub use monitor::{
    MonitorEvent, MonitorOpts, MonitorPhase, MonitorSnapshot, MonitorState, RunMonitor,
};
pub use phase::{PhaseScope, PhaseTarget};
pub use step::{Step, StepEnv, StepProtocol};
pub use timeline::{render_timeline, render_timeline_with_epochs};
pub use trace::{Event, Trace};
pub use virt::{VirtCtx, VirtReport, VirtualNetwork};
