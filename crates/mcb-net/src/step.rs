//! Resumable per-processor protocols as explicit state machines.
//!
//! [`Network::run`](crate::Network::run) expresses a protocol as a closure
//! that *blocks* inside [`ProcCtx::cycle`](crate::ProcCtx::cycle) — natural
//! to write, but a blocked closure needs a call stack, which ties every
//! logical processor to an OS thread. A [`StepProtocol`] turns the same
//! protocol inside-out: the engine calls [`step`](StepProtocol::step) with
//! the previous cycle's read result, and the protocol returns what it wants
//! to do in the next cycle (a [`Step`]). All suspended state lives in the
//! implementing struct, so thousands of logical processors can be advanced
//! by a handful of worker threads — this is what makes the pooled backend
//! (see [`Backend`](crate::Backend)) cheap at large `p`.
//!
//! The two forms are interchangeable: [`Network::run_steps`] executes a
//! `StepProtocol` on **either** backend with identical observable behavior
//! (results, [`Metrics`](crate::Metrics), [`Trace`](crate::Trace), errors).
//!
//! ```
//! use mcb_net::{ChanId, Network, Step, StepEnv, StepProtocol};
//!
//! /// Processor `turn` broadcasts in cycle `turn`; everyone tracks the max.
//! struct MaxOfAll {
//!     mine: u64,
//!     best: u64,
//!     turn: usize,
//! }
//!
//! impl StepProtocol<u64> for MaxOfAll {
//!     type Output = u64;
//!
//!     fn step(&mut self, env: &StepEnv, input: Option<u64>) -> Step<u64, u64> {
//!         if let Some(seen) = input {
//!             self.best = self.best.max(seen);
//!         }
//!         if self.turn == env.p {
//!             return Step::Done(self.best);
//!         }
//!         let write = (self.turn == env.id.index()).then(|| (ChanId(0), self.mine));
//!         self.turn += 1;
//!         Step::Yield {
//!             write,
//!             read: Some(ChanId(0)),
//!         }
//!     }
//! }
//!
//! let values = [3u64, 1, 4, 1, 5];
//! let report = Network::new(5, 1)
//!     .run_steps(|id| MaxOfAll {
//!         mine: values[id.index()],
//!         best: values[id.index()],
//!         turn: 0,
//!     })
//!     .unwrap();
//! assert!(report.into_results().into_iter().all(|b| b == 5));
//! ```
//!
//! [`Network::run_steps`]: crate::Network::run_steps

use crate::ids::{ChanId, ProcId};

/// What a [`StepProtocol`] wants to do next: execute one more network cycle,
/// or finish with an output value.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum Step<M, R> {
    /// Execute one synchronous cycle: optionally write one channel,
    /// optionally read one channel. The read's result (or `None` for an
    /// empty channel / no read) is the `input` of the next
    /// [`step`](StepProtocol::step) call.
    Yield {
        /// At most one `(channel, message)` broadcast this cycle.
        write: Option<(ChanId, M)>,
        /// At most one channel to read this cycle.
        read: Option<ChanId>,
    },
    /// Idle for this many consecutive cycles (minimum 1; a count of 0 is
    /// treated as 1) before `step` is called again, with no write and no
    /// read in any of them.
    ///
    /// Observably identical to yielding that many empty
    /// [`Yield`](Step::Yield)s, but backends are free to batch the
    /// bookkeeping: the vector backend removes the processor from its
    /// active set entirely and bulk-accounts the idle span, which is what
    /// makes "`k` owners work, `p - k` processors idle" protocols (e.g.
    /// networked Columnsort at `p = 10^5`) run in time proportional to the
    /// *owners'* work instead of `p × cycles`.
    IdleFor(u64),
    /// The protocol is finished; `R` becomes this processor's entry in
    /// [`RunReport::results`](crate::RunReport::results).
    Done(R),
}

impl<M, R> Step<M, R> {
    /// A do-nothing cycle (keeps this processor in lock-step).
    pub fn idle() -> Self {
        Step::Yield {
            write: None,
            read: None,
        }
    }

    /// Idle for `cycles` consecutive cycles in a single yield (see
    /// [`Step::IdleFor`]); a count of 0 is treated as 1 so the protocol
    /// always advances.
    pub fn idle_for(cycles: u64) -> Self {
        Step::IdleFor(cycles.max(1))
    }

    /// A write-only cycle.
    pub fn write(chan: ChanId, msg: M) -> Self {
        Step::Yield {
            write: Some((chan, msg)),
            read: None,
        }
    }

    /// A read-only cycle.
    pub fn read(chan: ChanId) -> Self {
        Step::Yield {
            write: None,
            read: Some(chan),
        }
    }
}

/// Read-only view of a processor's identity and clocks, passed to every
/// [`StepProtocol::step`] call. Mirrors the accessor methods of
/// [`ProcCtx`](crate::ProcCtx).
pub struct StepEnv {
    /// This processor's identity.
    pub id: ProcId,
    /// `p`: total processors in the network.
    pub p: usize,
    /// `k`: total channels in the network.
    pub k: usize,
    /// Global cycle index: number of completed cycles so far.
    pub now: u64,
    /// Cycles this processor's protocol has executed.
    pub cycles_used: u64,
    /// Messages this processor has sent.
    pub messages_sent: u64,
    /// Requested phase-label change, applied by the engine after this
    /// `step` call returns and before the yielded cycle executes.
    phase: std::cell::Cell<Option<String>>,
}

impl StepEnv {
    pub(crate) fn new(
        id: ProcId,
        p: usize,
        k: usize,
        now: u64,
        cycles_used: u64,
        messages_sent: u64,
    ) -> Self {
        StepEnv {
            id,
            p,
            k,
            now,
            cycles_used,
            messages_sent,
            phase: std::cell::Cell::new(None),
        }
    }

    /// Label all cycles/messages from the next yielded cycle on with
    /// `name` (`""` returns to unlabelled) — the [`StepProtocol`]
    /// counterpart of [`ProcCtx::phase`](crate::ProcCtx::phase).
    ///
    /// The request takes effect when this `step` call returns; calling it
    /// repeatedly within one step keeps only the last label.
    pub fn phase(&self, name: &str) {
        self.phase.set(Some(name.to_owned()));
    }

    /// Engine side: collect the pending label change, if any.
    pub(crate) fn take_phase(&self) -> Option<String> {
        self.phase.take()
    }
}

impl std::fmt::Debug for StepEnv {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.debug_struct("StepEnv")
            .field("id", &self.id)
            .field("p", &self.p)
            .field("k", &self.k)
            .field("now", &self.now)
            .field("cycles_used", &self.cycles_used)
            .field("messages_sent", &self.messages_sent)
            .finish()
    }
}

/// A protocol written as a resumable state machine.
///
/// The engine drives it as: `step(env, None)` first, then for every
/// [`Step::Yield`] it executes the requested cycle and calls `step` again
/// with the read result, until the protocol returns [`Step::Done`].
///
/// Implementations may panic; a panic is caught and reported as
/// [`NetError::ProcPanicked`](crate::NetError::ProcPanicked) exactly like a
/// panic inside a closure protocol.
pub trait StepProtocol<M> {
    /// The per-processor result type.
    type Output;

    /// Advance the state machine by one cycle.
    ///
    /// `input` is the message read in the cycle requested by the previous
    /// `step` call (`None` before the first cycle, when no read was
    /// requested, or when the read channel was empty).
    fn step(&mut self, env: &StepEnv, input: Option<M>) -> Step<M, Self::Output>;
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn step_shorthands() {
        assert_eq!(
            Step::<u64, ()>::idle(),
            Step::Yield {
                write: None,
                read: None
            }
        );
        assert_eq!(
            Step::<u64, ()>::write(ChanId(1), 7),
            Step::Yield {
                write: Some((ChanId(1), 7)),
                read: None
            }
        );
        assert_eq!(
            Step::<u64, ()>::read(ChanId(2)),
            Step::Yield {
                write: None,
                read: Some(ChanId(2))
            }
        );
    }
}
