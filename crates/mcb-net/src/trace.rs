//! Optional per-message event recording.
//!
//! Traces exist to make the paper's lower bounds *executable*: the adversary
//! of Theorems 1–2 watches the messages an algorithm sends and eliminates
//! median candidates accordingly. `mcb-lowerbounds` replays a recorded trace
//! through that bookkeeping. Recording is off by default; when enabled,
//! every executor appends to its own private buffer (no locking on the
//! write path) and the buffers are merged into the canonical order when the
//! run completes.

use crate::fault::FaultRecord;
use crate::ids::{ChanId, ProcId};

/// One broadcast, as observed on the wire.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct Event<M> {
    /// Global cycle index (engine round) in which the message was sent.
    pub cycle: u64,
    /// The sending processor.
    pub writer: ProcId,
    /// The channel written.
    pub channel: ChanId,
    /// The sender's active phase: an index into
    /// [`Metrics::phases`](crate::Metrics::phases), or `None` when the
    /// message was sent outside any labelled phase.
    pub phase: Option<u16>,
    /// The payload.
    pub msg: M,
}

/// A complete run trace: all broadcasts in (cycle, channel) order.
///
/// Within a cycle, events are serialized in an arbitrary order — exactly the
/// license the paper's adversary takes ("concurrent messages are serialized
/// in some arbitrary order", proof of Theorem 1). [`Trace::sorted`] fixes a
/// deterministic order for reproducibility.
///
/// ```
/// use mcb_net::{ChanId, Network};
///
/// let report = Network::new(3, 1)
///     .record_trace(true) // off by default
///     .run(|ctx| {
///         // P1, P2, P3 broadcast in successive cycles.
///         for turn in 0..ctx.p() {
///             let write = (turn == ctx.id().index()).then(|| (ChanId(0), turn as u64));
///             ctx.cycle(write, None);
///         }
///     })
///     .unwrap();
/// let trace = report.trace.unwrap();
/// assert_eq!(trace.len(), 3);
/// // Canonical (cycle, channel, writer) order, identical on both backends.
/// let cycles: Vec<u64> = trace.events().iter().map(|e| e.cycle).collect();
/// assert_eq!(cycles, vec![0, 1, 2]);
/// assert_eq!(trace.cycle_events(1).count(), 1);
/// ```
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct Trace<M> {
    events: Vec<Event<M>>,
    /// Faults that fired during the run, in canonical order (mirrors
    /// [`Metrics::faults`](crate::Metrics::faults)).
    faults: Vec<FaultRecord>,
}

impl<M> Trace<M> {
    pub(crate) fn new(mut events: Vec<Event<M>>) -> Self
    where
        M: Clone,
    {
        // Engine threads append concurrently; normalize to a canonical order.
        events.sort_by_key(|e| (e.cycle, e.channel.0, e.writer.0));
        Trace {
            events,
            faults: Vec::new(),
        }
    }

    /// Attach the run's canonical fired-fault log (see `assemble_report`).
    pub(crate) fn set_faults(&mut self, faults: Vec<FaultRecord>) {
        self.faults = faults;
    }

    /// Faults that fired during the run, in (cycle, kind, proc, chan)
    /// order; empty when no fault plan was attached.
    pub fn faults(&self) -> &[FaultRecord] {
        &self.faults
    }

    /// All events, in (cycle, channel, writer) order.
    pub fn events(&self) -> &[Event<M>] {
        &self.events
    }

    /// Alias for [`events`](Self::events) emphasizing the canonical order.
    pub fn sorted(&self) -> &[Event<M>] {
        &self.events
    }

    /// Number of recorded messages.
    pub fn len(&self) -> usize {
        self.events.len()
    }

    /// True when no messages were recorded.
    pub fn is_empty(&self) -> bool {
        self.events.is_empty()
    }

    /// Events sent within one cycle.
    pub fn cycle_events(&self, cycle: u64) -> impl Iterator<Item = &Event<M>> {
        self.events.iter().filter(move |e| e.cycle == cycle)
    }

    /// Erase payloads into an [`mcb_check::WireLog`] for conformance
    /// checking against a statically verified schedule. `p` and `k` are
    /// the run's shape (the trace itself does not record them).
    pub fn to_wire_log(&self, p: usize, k: usize) -> mcb_check::WireLog {
        mcb_check::WireLog {
            p,
            k,
            events: self
                .events
                .iter()
                .map(|e| mcb_check::WireEvent {
                    cycle: e.cycle,
                    writer: e.writer.index(),
                    chan: e.channel.index(),
                })
                .collect(),
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn trace_normalizes_order() {
        let t = Trace::new(vec![
            Event {
                cycle: 2,
                writer: ProcId(0),
                channel: ChanId(0),
                phase: None,
                msg: 7u64,
            },
            Event {
                cycle: 1,
                writer: ProcId(1),
                channel: ChanId(1),
                phase: None,
                msg: 8u64,
            },
            Event {
                cycle: 1,
                writer: ProcId(0),
                channel: ChanId(0),
                phase: None,
                msg: 9u64,
            },
        ]);
        let cycles: Vec<u64> = t.events().iter().map(|e| e.cycle).collect();
        assert_eq!(cycles, vec![1, 1, 2]);
        assert_eq!(t.events()[0].msg, 9);
        assert_eq!(t.len(), 3);
        assert!(!t.is_empty());
    }

    #[test]
    fn cycle_events_filters() {
        let t = Trace::new(vec![
            Event {
                cycle: 5,
                writer: ProcId(0),
                channel: ChanId(0),
                phase: None,
                msg: 1u64,
            },
            Event {
                cycle: 6,
                writer: ProcId(0),
                channel: ChanId(0),
                phase: None,
                msg: 2u64,
            },
        ]);
        assert_eq!(t.cycle_events(5).count(), 1);
        assert_eq!(t.cycle_events(7).count(), 0);
    }
}
