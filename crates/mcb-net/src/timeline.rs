//! ASCII cycle-timeline inspector for traced runs.
//!
//! [`render_timeline`] turns a [`Trace`] plus its [`Metrics`] into a
//! terminal picture of *when* each channel carried traffic and *which*
//! phase was active: one heat-map row per channel (time flows left to
//! right, darker glyphs mean more messages per column), phase spans packed
//! into lanes above the grid, and a per-channel load summary next to each
//! row. The `trace_timeline` example renders the paper's Columnsort and
//! selection algorithms this way.
//!
//! The rendering is a pure function of deterministic inputs, so — like the
//! JSONL export — it is identical across execution backends.

use crate::epoch::EpochRecord;
use crate::metrics::Metrics;
use crate::trace::Trace;

/// Glyph ramp for per-column message counts, lightest to densest. Index 0
/// (a space) is reserved for "no traffic".
const RAMP: &[u8] = b" .:-=+*#%@";

/// Map `cycle` to a column in `0..cols` given `rounds` total rounds.
fn col_of(cycle: u64, rounds: u64, cols: usize) -> usize {
    ((cycle as u128 * cols as u128 / rounds as u128) as usize).min(cols - 1)
}

/// Render a cycle × channel timeline of `trace` at most `width` columns
/// wide (each column aggregates a contiguous span of rounds; narrower runs
/// get one column per round). Returns a multi-line string:
///
/// 1. a header with run totals and the column scale,
/// 2. one lane per row of non-overlapping phase spans (`[name====]`),
///    greedily packed, in [`Metrics::phases`] order,
/// 3. one heat-map row per channel (` .:-=+*#%@` by per-column messages),
/// 4. a per-channel total-load summary,
/// 5. when faults fired ([`Metrics::faults`]), a marker row with `x` at
///    each column containing a fault, plus the fired-fault total.
///
/// Panics if `width == 0`. An un-traced or empty run renders a header and
/// empty grid rather than panicking.
pub fn render_timeline<M>(metrics: &Metrics, trace: &Trace<M>, width: usize) -> String {
    render_timeline_with_epochs(metrics, trace, width, &[])
}

/// [`render_timeline`], plus one extra marker row when `epochs` is
/// non-empty: each committed reconfiguration ([`EpochRecord`]) marks the
/// column containing its commit cycle with the last digit of the new epoch
/// number, so configuration changes line up visually with the fault `x`
/// markers that caused them.
pub fn render_timeline_with_epochs<M>(
    metrics: &Metrics,
    trace: &Trace<M>,
    width: usize,
    epochs: &[EpochRecord],
) -> String {
    assert!(width > 0, "timeline width must be >= 1");
    let rounds = metrics.rounds.max(1);
    let k = metrics.per_channel_messages.len().max(1);
    let cols = (width as u64).min(rounds) as usize;
    let cycles_per_col = rounds as f64 / cols as f64;

    // Per-channel, per-column message counts.
    let mut grid = vec![vec![0u64; cols]; k];
    for e in trace.events() {
        grid[e.channel.index() % k][col_of(e.cycle, rounds, cols)] += 1;
    }
    let peak = grid
        .iter()
        .flat_map(|row| row.iter().copied())
        .max()
        .unwrap_or(0);

    let mut out = String::new();
    out.push_str(&format!(
        "timeline: rounds={} messages={} k={} | {} col(s), ~{:.1} cycle(s)/col, peak {} msg/col\n",
        metrics.rounds,
        metrics.messages,
        metrics.per_channel_messages.len(),
        cols,
        cycles_per_col,
        peak,
    ));

    // ---- phase lanes (greedy packing; phases arrive sorted by first_cycle).
    let gutter = "         "; // aligns lanes with the grid body
    let mut lanes: Vec<(Vec<u8>, usize)> = Vec::new(); // (row, next free col)
    for ph in &metrics.phases {
        let lo = col_of(ph.first_cycle, rounds, cols);
        let hi = col_of(ph.last_cycle, rounds, cols).max(lo);
        let lane = match lanes.iter_mut().find(|(_, free)| *free <= lo) {
            Some(lane) => lane,
            None => {
                lanes.push((vec![b' '; cols], 0));
                lanes.last_mut().expect("just pushed")
            }
        };
        // Span glyph: `[name====]`, name truncated to fit the span; a
        // single-column span collapses to `|`.
        let span = &mut lane.0[lo..=hi];
        span.fill(b'=');
        span[0] = b'[';
        let last = span.len() - 1;
        span[last] = if last == 0 { b'|' } else { b']' };
        let room = span.len().saturating_sub(2);
        for (i, b) in ph.name.bytes().take(room).enumerate() {
            span[1 + i] = b;
        }
        lane.1 = hi + 1;
    }
    for (lane, _) in &lanes {
        out.push_str(gutter);
        out.push(' ');
        out.push_str(std::str::from_utf8(lane).expect("ASCII lane"));
        out.push('\n');
    }

    // ---- heat grid, one row per channel, plus total load.
    for (c, row) in grid.iter().enumerate() {
        let load = metrics.per_channel_messages.get(c).copied().unwrap_or(0);
        out.push_str(&format!("chan {c:>3} |"));
        for &n in row {
            let glyph = if n == 0 || peak == 0 {
                b' '
            } else {
                // 1..=peak maps onto ramp indices 1..=9 (peak always '@').
                let idx = ((n as usize) * (RAMP.len() - 1)).div_ceil(peak as usize);
                RAMP[idx.min(RAMP.len() - 1)]
            };
            out.push(glyph as char);
        }
        out.push_str(&format!("| {load}\n"));
    }

    // ---- fault markers, one shared row (faults are sparse).
    if !metrics.faults.is_empty() {
        let mut row = vec![b' '; cols];
        for f in &metrics.faults {
            row[col_of(f.cycle, rounds, cols)] = b'x';
        }
        out.push_str("faults   |");
        out.push_str(std::str::from_utf8(&row).expect("ASCII row"));
        out.push_str(&format!("| {}\n", metrics.faults.len()));
    }

    // ---- epoch boundaries, one shared row (reconfigurations are sparse).
    if !epochs.is_empty() {
        let mut row = vec![b' '; cols];
        for e in epochs {
            row[col_of(e.cycle, rounds, cols)] = b'0' + (e.epoch % 10) as u8;
        }
        out.push_str("epochs   |");
        out.push_str(std::str::from_utf8(&row).expect("ASCII row"));
        out.push_str(&format!("| {}\n", epochs.len()));
    }
    out.push_str(&format!(
        "{gutter} 0{:>width$}\n",
        metrics.rounds,
        width = cols.saturating_sub(1)
    ));
    out
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::engine::Network;
    use crate::ids::ChanId;

    fn traced_run() -> (Metrics, Trace<u64>) {
        let report = Network::new(4, 2)
            .record_trace(true)
            .run(|ctx| {
                let me = ctx.id().index();
                ctx.phase("fill");
                for r in 0..4u64 {
                    // Procs 0 and 1 own channels 0 and 1; the rest idle.
                    let w = (me < 2).then_some((ChanId(me as u32), r));
                    ctx.cycle(w, None);
                }
                ctx.phase("drain");
                for _ in 0..4u64 {
                    let w = (me == 0).then_some((ChanId(0), 9));
                    ctx.cycle(w, None);
                }
            })
            .unwrap();
        (report.metrics, report.trace.expect("trace on"))
    }

    #[test]
    fn renders_grid_and_lanes() {
        let (metrics, trace) = traced_run();
        // One column per round (rounds >= the protocol's 8 cycles; the
        // engine may add a trailing drain round with no traffic).
        let cols = metrics.rounds as usize;
        let art = render_timeline(&metrics, &trace, cols);
        // Chan 0 carries 1 msg in each of the first 8 rounds (peak, '@');
        // chan 1 only in the first 4.
        let chan1 = art.lines().find(|l| l.starts_with("chan   1")).unwrap();
        assert_eq!(
            chan1,
            format!("chan   1 |@@@@{}| 4", " ".repeat(cols - 4)),
            "{art}"
        );
        // Both phases appear as spans (names truncated to the span width).
        assert!(art.contains("[fi"), "{art}");
        assert!(art.contains("[dr"), "{art}");
    }

    #[test]
    fn bucketing_compresses_wide_runs() {
        let (metrics, trace) = traced_run();
        let art = render_timeline(&metrics, &trace, 4);
        assert!(art.contains("| 4 col(s)"), "{art}");
        let chan0 = art.lines().find(|l| l.starts_with("chan   0")).unwrap();
        // All 8 messages survive bucketing, every column carries traffic.
        assert!(chan0.ends_with("| 8"), "{art}");
        let cells: &str = &chan0["chan   0 |".len()..chan0.len() - "| 8".len()];
        assert_eq!(cells.len(), 4, "{art}");
        assert!(cells.bytes().all(|b| b != b' '), "{art}");
    }

    #[test]
    fn deterministic_across_backends() {
        let (m1, t1) = traced_run();
        let (m2, t2) = traced_run();
        assert_eq!(render_timeline(&m1, &t1, 16), render_timeline(&m2, &t2, 16));
    }

    #[test]
    fn fault_marker_row_appears() {
        let report = Network::new(2, 2)
            .record_trace(true)
            .fault_plan(crate::FaultPlan::new(2, 2).drop_message(1, ChanId(0)))
            .run(|ctx| {
                if ctx.id().index() == 0 {
                    ctx.write(ChanId(0), 1u64); // delivered
                    ctx.write(ChanId(0), 2u64); // dropped at cycle 1
                } else {
                    ctx.idle_for(2);
                }
            })
            .unwrap();
        let trace = report.trace.expect("trace on");
        let cols = report.metrics.rounds as usize;
        let art = render_timeline(&report.metrics, &trace, cols);
        let faults = art.lines().find(|l| l.starts_with("faults")).unwrap();
        assert_eq!(
            faults,
            format!("faults   | x{}| 1", " ".repeat(cols - 2)),
            "{art}"
        );
    }

    #[test]
    fn epoch_marker_row_appears() {
        use crate::epoch::{EpochCause, EpochRecord};
        let (metrics, trace) = traced_run();
        let cols = metrics.rounds as usize;
        let epochs = [EpochRecord {
            epoch: 1,
            cycle: 2,
            cause: EpochCause::Silence,
            live_chans: vec![0],
            live_procs: vec![0, 1, 2, 3],
        }];
        let art = render_timeline_with_epochs(&metrics, &trace, cols, &epochs);
        let row = art.lines().find(|l| l.starts_with("epochs")).unwrap();
        assert_eq!(
            row,
            format!("epochs   |  1{}| 1", " ".repeat(cols - 3)),
            "{art}"
        );
        // The plain renderer stays epoch-free.
        assert!(!render_timeline(&metrics, &trace, cols).contains("epochs"));
    }

    #[test]
    fn empty_trace_renders_header() {
        let metrics = Metrics::default();
        let trace = Trace::new(Vec::<crate::trace::Event<u64>>::new());
        let art = render_timeline(&metrics, &trace, 10);
        assert!(art.starts_with("timeline: rounds=0 messages=0"));
    }
}
