//! Deterministic JSONL export of a [`RunReport`].
//!
//! One JSON object per line, built with [`mcb_json`] (insertion-ordered
//! keys, integers only — no floats), so the export of a collision-free run
//! is **byte-identical** across execution backends and across repeated
//! runs. That property is what makes the export useful as a golden
//! artifact: the `backend_equivalence` tests and the `trace_timeline`
//! example both diff exports byte-for-byte.
//!
//! # Record stream
//!
//! | `record`        | when                        | contents                      |
//! |-----------------|-----------------------------|-------------------------------|
//! | `run`           | always, first line          | `schema`, `p`, `k`            |
//! | `metrics`       | always, second line         | every integer [`Metrics`] field |
//! | `fault_plan`    | when a plan was attached    | the seed and planned-fault counts ([`FaultSummary`]) |
//! | `fault`         | one per fired fault         | cycle/kind/proc/chan ([`FaultRecord`]) |
//! | `epoch`         | one per reconfiguration     | epoch/cycle/cause/live sets ([`EpochRecord`]) |
//! | `phase`         | one per labelled phase      | the [`PhaseMetrics`] fields   |
//! | `monitor`       | when a [`RunMonitor`](crate::RunMonitor) was attached | final totals + utilization ring ([`crate::MonitorSnapshot`]) |
//! | `monitor_phase` | one per live phase row      | name/messages/bits/first/last |
//! | `profile`       | when profiling was on       | backend/workers/wall + compat sums ([`crate::EngineProfile`]) |
//! | `hist`          | four per `profile` record   | count/sum/max/p50/p95/p99 of one [`crate::LogHistogram`] |
//! | `event`         | one per traced message      | cycle/writer/channel/phase/msg |
//!
//! Monitor *events* (fault/epoch labels) are excluded — they arrive in
//! scheduling order; the deterministic `fault` and `epoch` records carry
//! the same information canonically. `profile`/`hist` records are
//! wall-clock and therefore nondeterministic; they appear **only** when
//! [`Network::profile`](crate::Network::profile) was on, so exports used
//! for cross-backend byte diffs (profiling off) stay deterministic.
//! Derived ratios (`channel_utilization` etc.) are excluded because they
//! are floats and recomputable.
//!
//! # Chrome trace / Perfetto export
//!
//! [`RunReport::to_chrome_trace`] renders the same report as Chrome
//! `trace_event` JSON — phase spans, fault/epoch instants, and (when a
//! trace was recorded) per-message slices on a per-channel track — which
//! loads directly in `ui.perfetto.dev` or `chrome://tracing`. Timestamps
//! are **cycles**, not wall-clock, displayed as microseconds (the model's
//! clock is the cycle counter; wall time is backend-dependent noise). The
//! export is integer-only and round-trips through
//! [`validate_chrome_trace`], which CI runs on every backend.
//!
//! ```
//! use mcb_net::{ChanId, Network};
//!
//! let report = Network::new(2, 1)
//!     .record_trace(true)
//!     .run(|ctx| {
//!         ctx.phase("exchange");
//!         if ctx.id().index() == 0 {
//!             ctx.write(ChanId(0), 7u64);
//!         } else {
//!             ctx.read(ChanId(0));
//!         }
//!     })
//!     .unwrap();
//! let jsonl = report.to_jsonl();
//! let lines: Vec<&str> = jsonl.lines().collect();
//! assert!(lines[0].starts_with("{\"record\":\"run\",\"schema\":"));
//! assert!(lines.iter().any(|l| l.contains("\"record\":\"phase\"")));
//! assert!(lines.iter().any(|l| l.contains("\"record\":\"event\"")));
//! ```

use crate::engine::{Backend, RunReport};
use crate::epoch::EpochRecord;
use crate::fault::{FaultRecord, FaultSummary};
use crate::metrics::{EngineProfile, LogHistogram, Metrics, PhaseMetrics};
use crate::monitor::MonitorSnapshot;
use crate::trace::Event;
use mcb_json::Json;
use std::fmt::Debug;

/// Version stamped into every export's `run` header line. Bump when a
/// record gains, loses, or renames a field.
///
/// History: v1 = run/metrics/phase/event; v2 adds `fault_plan` and `fault`
/// records (fault-injection subsystem); v3 adds `epoch` records
/// (self-healing reconfiguration log); v4 adds `monitor`/`monitor_phase`
/// records (live-monitor final snapshot) and the profiling-gated
/// `profile`/`hist` records (latency histograms); v5 adds the service
/// journal's `serve_journal`/`job`/`batch`/`shed` records (mcb-serve
/// admission/outcome log).
pub const JSONL_SCHEMA_VERSION: u64 = 5;

fn metrics_record(m: &Metrics) -> Json {
    Json::obj()
        .field("record", "metrics")
        .field("cycles", m.cycles)
        .field("rounds", m.rounds)
        .field("messages", m.messages)
        .field("total_bits", m.total_bits)
        .field("max_msg_bits", m.max_msg_bits)
        .field(
            "per_proc_messages",
            Json::from_u64s(m.per_proc_messages.iter().copied()),
        )
        .field(
            "per_proc_cycles",
            Json::from_u64s(m.per_proc_cycles.iter().copied()),
        )
        .field(
            "per_channel_messages",
            Json::from_u64s(m.per_channel_messages.iter().copied()),
        )
}

fn fault_plan_record(s: &FaultSummary) -> Json {
    Json::obj()
        .field("record", "fault_plan")
        .field("seed", s.seed)
        .field("deaths", s.deaths)
        .field("drops", s.drops)
        .field("corrupts", s.corrupts)
        .field("crashes", s.crashes)
        .field("stalls", s.stalls)
}

fn fault_record(f: &FaultRecord) -> Json {
    Json::obj()
        .field("record", "fault")
        .field("cycle", f.cycle)
        .field("kind", f.kind.as_str())
        .field("proc", f.proc.map(|p| p.index()))
        .field("chan", f.chan.map(|c| c.index()))
}

fn epoch_record(e: &EpochRecord) -> Json {
    Json::obj()
        .field("record", "epoch")
        .field("epoch", e.epoch)
        .field("cycle", e.cycle)
        .field("cause", e.cause.as_str())
        .field(
            "live_chans",
            Json::from_u64s(e.live_chans.iter().map(|&c| c as u64)),
        )
        .field(
            "live_procs",
            Json::from_u64s(e.live_procs.iter().map(|&p| p as u64)),
        )
}

fn phase_record(index: usize, ph: &PhaseMetrics) -> Json {
    Json::obj()
        .field("record", "phase")
        .field("index", index)
        .field("name", ph.name.as_str())
        .field("first_cycle", ph.first_cycle)
        .field("last_cycle", ph.last_cycle)
        .field("cycles", ph.cycles)
        .field("messages", ph.messages)
        .field("total_bits", ph.total_bits)
        .field(
            "per_channel_messages",
            Json::from_u64s(ph.per_channel_messages.iter().copied()),
        )
}

fn monitor_record(s: &MonitorSnapshot) -> Json {
    Json::obj()
        .field("record", "monitor")
        .field("state", s.state.as_str())
        .field("cycle", s.cycle)
        .field("messages", s.messages)
        .field("total_bits", s.total_bits)
        .field("finished", s.finished)
        .field("window", s.window)
        .field("windows", s.windows)
        .field("util", Json::from_u64s(s.util.iter().copied()))
}

fn monitor_phase_record(index: usize, ph: &crate::monitor::MonitorPhase) -> Json {
    Json::obj()
        .field("record", "monitor_phase")
        .field("index", index)
        .field("name", ph.name.as_str())
        .field("messages", ph.messages)
        .field("total_bits", ph.total_bits)
        .field("first_cycle", ph.first_cycle)
        .field("last_cycle", ph.last_cycle)
}

fn backend_str(b: Backend) -> &'static str {
    match b {
        Backend::Auto => "auto",
        Backend::Threaded => "threaded",
        Backend::Pooled => "pooled",
        Backend::Vector => "vector",
    }
}

fn profile_record(p: &EngineProfile) -> Json {
    Json::obj()
        .field("record", "profile")
        .field("backend", backend_str(p.backend))
        .field("workers", p.workers)
        .field("wall_ns", p.wall_ns)
        .field("barrier_wait_ns", p.barrier_wait_ns)
        .field("stall_ns", p.stall_ns)
}

fn hist_record(name: &str, h: &LogHistogram) -> Json {
    Json::obj()
        .field("record", "hist")
        .field("name", name)
        .field("count", h.count())
        .field("sum_ns", h.sum())
        .field("max_ns", h.max())
        .field("p50_ns", h.p50())
        .field("p95_ns", h.p95())
        .field("p99_ns", h.p99())
}

fn event_record<M: Debug>(e: &Event<M>, phases: &[PhaseMetrics]) -> Json {
    let phase = e
        .phase
        .and_then(|i| phases.get(i as usize))
        .map(|ph| ph.name.clone());
    Json::obj()
        .field("record", "event")
        .field("cycle", e.cycle)
        .field("writer", e.writer.index())
        .field("channel", e.channel.index())
        .field("phase", phase)
        .field("msg", format!("{:?}", e.msg))
}

impl<R, M: Debug> RunReport<R, M> {
    /// Serialize this report as deterministic JSONL (see the [module
    /// docs](self) for the record stream). Identical byte-for-byte across
    /// backends for collision-free protocols; event lines appear only when
    /// the run recorded a trace. Message payloads are rendered via their
    /// `Debug` form.
    pub fn to_jsonl(&self) -> String {
        let m = &self.metrics;
        let mut out = String::new();
        let header = Json::obj()
            .field("record", "run")
            .field("schema", JSONL_SCHEMA_VERSION)
            .field("p", m.per_proc_cycles.len())
            .field("k", m.per_channel_messages.len());
        out.push_str(&header.render());
        out.push('\n');
        out.push_str(&metrics_record(m).render());
        out.push('\n');
        if let Some(summary) = &self.fault_summary {
            out.push_str(&fault_plan_record(summary).render());
            out.push('\n');
            for f in &m.faults {
                out.push_str(&fault_record(f).render());
                out.push('\n');
            }
        }
        for e in &self.epochs {
            out.push_str(&epoch_record(e).render());
            out.push('\n');
        }
        for (i, ph) in m.phases.iter().enumerate() {
            out.push_str(&phase_record(i, ph).render());
            out.push('\n');
        }
        if let Some(snap) = &self.monitor {
            out.push_str(&monitor_record(snap).render());
            out.push('\n');
            for (i, ph) in snap.phases.iter().enumerate() {
                out.push_str(&monitor_phase_record(i, ph).render());
                out.push('\n');
            }
        }
        if let Some(prof) = &self.profile {
            out.push_str(&profile_record(prof).render());
            out.push('\n');
            for (name, h) in [
                ("cycle_latency", &prof.cycle_latency),
                ("barrier_wait", &prof.barrier_wait),
                ("stall", &prof.stall),
                ("dispatch", &prof.dispatch),
            ] {
                out.push_str(&hist_record(name, h).render());
                out.push('\n');
            }
        }
        if let Some(trace) = &self.trace {
            for e in trace.events() {
                out.push_str(&event_record(e, &m.phases).render());
                out.push('\n');
            }
        }
        out
    }

    /// Render this report as Chrome `trace_event` JSON, loadable in
    /// `ui.perfetto.dev` or `chrome://tracing` (see the [module
    /// docs](self)). Timestamps are **cycles** (displayed as µs): each
    /// labelled phase becomes a complete (`ph:"X"`) span on the "phases"
    /// track, each fired fault and committed epoch a global instant
    /// (`ph:"i"`) on the "events" track, and — when the run recorded a
    /// [`Trace`](crate::Trace) — each delivered message a one-cycle slice
    /// on its channel's track. Integer-only by construction, so the output
    /// round-trips through [`validate_chrome_trace`].
    pub fn to_chrome_trace(&self) -> String {
        let m = &self.metrics;
        let meta = |name: &str, tid: u64, label: &str| {
            Json::obj()
                .field("name", name)
                .field("ph", "M")
                .field("pid", 0u64)
                .field("tid", tid)
                .field("args", Json::obj().field("name", label))
        };
        let mut evs: Vec<Json> = vec![
            meta("process_name", 0, "mcb run"),
            meta("thread_name", 0, "phases"),
            meta("thread_name", 1, "events"),
        ];
        if self.trace.is_some() {
            for c in 0..m.per_channel_messages.len() {
                evs.push(meta(
                    "thread_name",
                    CHANNEL_TID_BASE + c as u64,
                    &format!("channel {c}"),
                ));
            }
        }
        for ph in &m.phases {
            evs.push(
                Json::obj()
                    .field("name", ph.name.as_str())
                    .field("cat", "phase")
                    .field("ph", "X")
                    .field("pid", 0u64)
                    .field("tid", 0u64)
                    .field("ts", ph.first_cycle)
                    .field("dur", ph.last_cycle - ph.first_cycle + 1)
                    .field(
                        "args",
                        Json::obj()
                            .field("cycles", ph.cycles)
                            .field("messages", ph.messages)
                            .field("total_bits", ph.total_bits),
                    ),
            );
        }
        let instant = |name: String, cat: &str, cycle: u64, args: Json| {
            Json::obj()
                .field("name", name)
                .field("cat", cat)
                .field("ph", "i")
                .field("s", "g")
                .field("pid", 0u64)
                .field("tid", 1u64)
                .field("ts", cycle)
                .field("args", args)
        };
        for f in &m.faults {
            evs.push(instant(
                format!("fault:{}", f.kind.as_str()),
                "fault",
                f.cycle,
                Json::obj()
                    .field("proc", f.proc.map(|p| p.index()))
                    .field("chan", f.chan.map(|c| c.index())),
            ));
        }
        for e in &self.epochs {
            evs.push(instant(
                format!("epoch:{}", e.epoch),
                "epoch",
                e.cycle,
                Json::obj()
                    .field("cause", e.cause.as_str())
                    .field("live_chans", e.live_chans.len())
                    .field("live_procs", e.live_procs.len()),
            ));
        }
        if let Some(trace) = &self.trace {
            for e in trace.events() {
                let phase = e
                    .phase
                    .and_then(|i| m.phases.get(i as usize))
                    .map(|ph| ph.name.clone());
                evs.push(
                    Json::obj()
                        .field("name", format!("p{}", e.writer.index()))
                        .field("cat", "msg")
                        .field("ph", "X")
                        .field("pid", 0u64)
                        .field("tid", CHANNEL_TID_BASE + e.channel.index() as u64)
                        .field("ts", e.cycle)
                        .field("dur", 1u64)
                        .field(
                            "args",
                            Json::obj()
                                .field("msg", format!("{:?}", e.msg))
                                .field("phase", phase),
                        ),
                );
            }
        }
        Json::obj()
            .field("displayTimeUnit", "ms")
            .field("traceEvents", Json::Arr(evs))
            .render()
    }
}

/// Channel-track tids in the Chrome trace start here (tids 0 and 1 are the
/// phase and event tracks).
const CHANNEL_TID_BASE: u64 = 10;

/// What [`validate_chrome_trace`] counted in a parsed Chrome trace.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Default)]
pub struct ChromeTraceStats {
    /// `ph:"X"` complete spans with category `phase`.
    pub phase_spans: usize,
    /// `ph:"i"` instants with category `fault`.
    pub fault_instants: usize,
    /// `ph:"i"` instants with category `epoch`.
    pub epoch_instants: usize,
    /// `ph:"X"` per-message slices with category `msg`.
    pub message_spans: usize,
    /// `ph:"M"` metadata records (process/thread names).
    pub metadata: usize,
}

/// Parse a [`RunReport::to_chrome_trace`] export back and count its
/// events, verifying the structural invariants every consumer relies on:
/// top-level `traceEvents` array, every event carrying `name`/`ph`/`pid`,
/// every non-metadata event carrying an integer `ts`, and every instant
/// carrying scope `s:"g"`. Returns the per-category counts so callers
/// (tests, the `live_dashboard --ci` smoke, the CI trace check) can assert
/// nothing was dropped.
pub fn validate_chrome_trace(raw: &str) -> Result<ChromeTraceStats, String> {
    let root = Json::parse(raw).map_err(|e| format!("trace does not parse: {e}"))?;
    let events = root
        .get("traceEvents")
        .and_then(Json::as_arr)
        .ok_or("missing traceEvents array")?;
    let mut stats = ChromeTraceStats::default();
    for (i, ev) in events.iter().enumerate() {
        let name = ev
            .get("name")
            .and_then(Json::as_str)
            .ok_or_else(|| format!("event {i}: missing name"))?;
        let ph = ev
            .get("ph")
            .and_then(Json::as_str)
            .ok_or_else(|| format!("event {i} ({name}): missing ph"))?;
        if ev.get("pid").and_then(Json::as_u64).is_none() {
            return Err(format!("event {i} ({name}): missing pid"));
        }
        if ph != "M" && ev.get("ts").and_then(Json::as_u64).is_none() {
            return Err(format!("event {i} ({name}): missing integer ts"));
        }
        let cat = ev.get("cat").and_then(Json::as_str);
        match (ph, cat) {
            ("M", _) => stats.metadata += 1,
            ("X", Some("phase")) => {
                if ev.get("dur").and_then(Json::as_u64).is_none() {
                    return Err(format!("event {i} ({name}): span missing dur"));
                }
                stats.phase_spans += 1;
            }
            ("X", Some("msg")) => stats.message_spans += 1,
            ("i", Some("fault")) | ("i", Some("epoch")) => {
                if ev.get("s").and_then(Json::as_str) != Some("g") {
                    return Err(format!("event {i} ({name}): instant missing scope s:\"g\""));
                }
                if cat == Some("fault") {
                    stats.fault_instants += 1;
                } else {
                    stats.epoch_instants += 1;
                }
            }
            _ => {
                return Err(format!(
                    "event {i} ({name}): unexpected ph/cat {ph}/{cat:?}"
                ))
            }
        }
    }
    Ok(stats)
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::engine::Network;
    use crate::ids::ChanId;

    fn sample_report() -> RunReport<(), u64> {
        Network::new(3, 2)
            .record_trace(true)
            .run(|ctx| {
                ctx.phase("spread");
                let me = ctx.id().index();
                if me < 2 {
                    ctx.write(ChanId(me as u32), me as u64 + 10);
                } else {
                    ctx.read(ChanId(0));
                }
                ctx.phase("");
                ctx.idle();
            })
            .unwrap()
    }

    #[test]
    fn export_shape_and_order() {
        let jsonl = sample_report().to_jsonl();
        let lines: Vec<&str> = jsonl.lines().collect();
        // run, metrics, 1 phase, 2 events.
        assert_eq!(lines.len(), 5, "{jsonl}");
        assert_eq!(
            lines[0],
            format!("{{\"record\":\"run\",\"schema\":{JSONL_SCHEMA_VERSION},\"p\":3,\"k\":2}}")
        );
        assert!(lines[1].starts_with("{\"record\":\"metrics\",\"cycles\":2,"));
        assert!(lines[2].contains("\"record\":\"phase\",\"index\":0,\"name\":\"spread\""));
        assert!(lines[3].contains("\"phase\":\"spread\""));
        assert!(lines[3].contains("\"msg\":\"10\""));
    }

    #[test]
    fn export_is_deterministic() {
        let a = sample_report().to_jsonl();
        let b = sample_report().to_jsonl();
        assert_eq!(a, b);
    }

    #[test]
    fn no_trace_means_no_event_lines() {
        let report = Network::new(2, 1)
            .run(|ctx| {
                if ctx.id().index() == 0 {
                    ctx.write(ChanId(0), 1u64);
                } else {
                    ctx.idle();
                }
            })
            .unwrap();
        let jsonl = report.to_jsonl();
        assert_eq!(jsonl.lines().count(), 2);
        assert!(!jsonl.contains("\"record\":\"event\""));
    }

    #[test]
    fn fault_plan_and_fault_records_exported() {
        let plan = crate::FaultPlan::new(2, 2).kill_channel(ChanId(1), 0);
        let report = Network::new(2, 2)
            .fault_plan(plan)
            .run(|ctx| {
                if ctx.id().index() == 0 {
                    ctx.write(ChanId(1), 7u64);
                } else {
                    ctx.idle();
                }
            })
            .unwrap();
        let jsonl = report.to_jsonl();
        let lines: Vec<&str> = jsonl.lines().collect();
        assert_eq!(
            lines[2],
            "{\"record\":\"fault_plan\",\"seed\":0,\"deaths\":1,\"drops\":0,\
             \"corrupts\":0,\"crashes\":0,\"stalls\":0}"
        );
        assert_eq!(
            lines[3],
            "{\"record\":\"fault\",\"cycle\":0,\"kind\":\"channel_death\",\
             \"proc\":0,\"chan\":1}"
        );
    }

    #[test]
    fn epoch_records_exported_between_faults_and_phases() {
        use crate::epoch::{EpochCause, EpochRecord};
        let mut report = sample_report();
        report.epochs.push(EpochRecord {
            epoch: 1,
            cycle: 57,
            cause: EpochCause::Silence,
            live_chans: vec![0, 2],
            live_procs: vec![0, 1, 3],
        });
        let jsonl = report.to_jsonl();
        let lines: Vec<&str> = jsonl.lines().collect();
        assert_eq!(
            lines[2],
            "{\"record\":\"epoch\",\"epoch\":1,\"cycle\":57,\"cause\":\"silence\",\
             \"live_chans\":[0,2],\"live_procs\":[0,1,3]}"
        );
        assert!(lines[3].contains("\"record\":\"phase\""), "{jsonl}");
    }

    #[test]
    fn no_fault_plan_means_no_fault_lines() {
        let jsonl = sample_report().to_jsonl();
        assert!(!jsonl.contains("\"record\":\"fault_plan\""));
        assert!(!jsonl.contains("\"record\":\"fault\""));
    }

    #[test]
    fn unlabelled_event_phase_is_null() {
        let report = Network::new(2, 1)
            .record_trace(true)
            .run(|ctx| {
                if ctx.id().index() == 0 {
                    ctx.write(ChanId(0), 1u64);
                } else {
                    ctx.idle();
                }
            })
            .unwrap();
        let jsonl = report.to_jsonl();
        assert!(jsonl.contains("\"phase\":null"), "{jsonl}");
    }
}
