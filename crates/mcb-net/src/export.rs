//! Deterministic JSONL export of a [`RunReport`].
//!
//! One JSON object per line, built with [`mcb_json`] (insertion-ordered
//! keys, integers only — no floats), so the export of a collision-free run
//! is **byte-identical** across execution backends and across repeated
//! runs. That property is what makes the export useful as a golden
//! artifact: the `backend_equivalence` tests and the `trace_timeline`
//! example both diff exports byte-for-byte.
//!
//! # Record stream
//!
//! | `record`     | when                        | contents                      |
//! |--------------|-----------------------------|-------------------------------|
//! | `run`        | always, first line          | `schema`, `p`, `k`            |
//! | `metrics`    | always, second line         | every integer [`Metrics`] field |
//! | `fault_plan` | when a plan was attached    | the seed and planned-fault counts ([`FaultSummary`]) |
//! | `fault`      | one per fired fault         | cycle/kind/proc/chan ([`FaultRecord`]) |
//! | `epoch`      | one per reconfiguration     | epoch/cycle/cause/live sets ([`EpochRecord`]) |
//! | `phase`      | one per labelled phase      | the [`PhaseMetrics`] fields   |
//! | `event`      | one per traced message      | cycle/writer/channel/phase/msg |
//!
//! Wall-clock profiling data ([`EngineProfile`](crate::EngineProfile)) is
//! deliberately **excluded**: it is nondeterministic by nature. Derived
//! ratios (`channel_utilization` etc.) are excluded because they are floats
//! and recomputable.
//!
//! ```
//! use mcb_net::{ChanId, Network};
//!
//! let report = Network::new(2, 1)
//!     .record_trace(true)
//!     .run(|ctx| {
//!         ctx.phase("exchange");
//!         if ctx.id().index() == 0 {
//!             ctx.write(ChanId(0), 7u64);
//!         } else {
//!             ctx.read(ChanId(0));
//!         }
//!     })
//!     .unwrap();
//! let jsonl = report.to_jsonl();
//! let lines: Vec<&str> = jsonl.lines().collect();
//! assert!(lines[0].starts_with("{\"record\":\"run\",\"schema\":"));
//! assert!(lines.iter().any(|l| l.contains("\"record\":\"phase\"")));
//! assert!(lines.iter().any(|l| l.contains("\"record\":\"event\"")));
//! ```

use crate::engine::RunReport;
use crate::epoch::EpochRecord;
use crate::fault::{FaultRecord, FaultSummary};
use crate::metrics::{Metrics, PhaseMetrics};
use crate::trace::Event;
use mcb_json::Json;
use std::fmt::Debug;

/// Version stamped into every export's `run` header line. Bump when a
/// record gains, loses, or renames a field.
///
/// History: v1 = run/metrics/phase/event; v2 adds `fault_plan` and `fault`
/// records (fault-injection subsystem); v3 adds `epoch` records
/// (self-healing reconfiguration log).
pub const JSONL_SCHEMA_VERSION: u64 = 3;

fn metrics_record(m: &Metrics) -> Json {
    Json::obj()
        .field("record", "metrics")
        .field("cycles", m.cycles)
        .field("rounds", m.rounds)
        .field("messages", m.messages)
        .field("total_bits", m.total_bits)
        .field("max_msg_bits", m.max_msg_bits)
        .field(
            "per_proc_messages",
            Json::from_u64s(m.per_proc_messages.iter().copied()),
        )
        .field(
            "per_proc_cycles",
            Json::from_u64s(m.per_proc_cycles.iter().copied()),
        )
        .field(
            "per_channel_messages",
            Json::from_u64s(m.per_channel_messages.iter().copied()),
        )
}

fn fault_plan_record(s: &FaultSummary) -> Json {
    Json::obj()
        .field("record", "fault_plan")
        .field("seed", s.seed)
        .field("deaths", s.deaths)
        .field("drops", s.drops)
        .field("corrupts", s.corrupts)
        .field("crashes", s.crashes)
        .field("stalls", s.stalls)
}

fn fault_record(f: &FaultRecord) -> Json {
    Json::obj()
        .field("record", "fault")
        .field("cycle", f.cycle)
        .field("kind", f.kind.as_str())
        .field("proc", f.proc.map(|p| p.index()))
        .field("chan", f.chan.map(|c| c.index()))
}

fn epoch_record(e: &EpochRecord) -> Json {
    Json::obj()
        .field("record", "epoch")
        .field("epoch", e.epoch)
        .field("cycle", e.cycle)
        .field("cause", e.cause.as_str())
        .field(
            "live_chans",
            Json::from_u64s(e.live_chans.iter().map(|&c| c as u64)),
        )
        .field(
            "live_procs",
            Json::from_u64s(e.live_procs.iter().map(|&p| p as u64)),
        )
}

fn phase_record(index: usize, ph: &PhaseMetrics) -> Json {
    Json::obj()
        .field("record", "phase")
        .field("index", index)
        .field("name", ph.name.as_str())
        .field("first_cycle", ph.first_cycle)
        .field("last_cycle", ph.last_cycle)
        .field("cycles", ph.cycles)
        .field("messages", ph.messages)
        .field("total_bits", ph.total_bits)
        .field(
            "per_channel_messages",
            Json::from_u64s(ph.per_channel_messages.iter().copied()),
        )
}

fn event_record<M: Debug>(e: &Event<M>, phases: &[PhaseMetrics]) -> Json {
    let phase = e
        .phase
        .and_then(|i| phases.get(i as usize))
        .map(|ph| ph.name.clone());
    Json::obj()
        .field("record", "event")
        .field("cycle", e.cycle)
        .field("writer", e.writer.index())
        .field("channel", e.channel.index())
        .field("phase", phase)
        .field("msg", format!("{:?}", e.msg))
}

impl<R, M: Debug> RunReport<R, M> {
    /// Serialize this report as deterministic JSONL (see the [module
    /// docs](self) for the record stream). Identical byte-for-byte across
    /// backends for collision-free protocols; event lines appear only when
    /// the run recorded a trace. Message payloads are rendered via their
    /// `Debug` form.
    pub fn to_jsonl(&self) -> String {
        let m = &self.metrics;
        let mut out = String::new();
        let header = Json::obj()
            .field("record", "run")
            .field("schema", JSONL_SCHEMA_VERSION)
            .field("p", m.per_proc_cycles.len())
            .field("k", m.per_channel_messages.len());
        out.push_str(&header.render());
        out.push('\n');
        out.push_str(&metrics_record(m).render());
        out.push('\n');
        if let Some(summary) = &self.fault_summary {
            out.push_str(&fault_plan_record(summary).render());
            out.push('\n');
            for f in &m.faults {
                out.push_str(&fault_record(f).render());
                out.push('\n');
            }
        }
        for e in &self.epochs {
            out.push_str(&epoch_record(e).render());
            out.push('\n');
        }
        for (i, ph) in m.phases.iter().enumerate() {
            out.push_str(&phase_record(i, ph).render());
            out.push('\n');
        }
        if let Some(trace) = &self.trace {
            for e in trace.events() {
                out.push_str(&event_record(e, &m.phases).render());
                out.push('\n');
            }
        }
        out
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::engine::Network;
    use crate::ids::ChanId;

    fn sample_report() -> RunReport<(), u64> {
        Network::new(3, 2)
            .record_trace(true)
            .run(|ctx| {
                ctx.phase("spread");
                let me = ctx.id().index();
                if me < 2 {
                    ctx.write(ChanId(me as u32), me as u64 + 10);
                } else {
                    ctx.read(ChanId(0));
                }
                ctx.phase("");
                ctx.idle();
            })
            .unwrap()
    }

    #[test]
    fn export_shape_and_order() {
        let jsonl = sample_report().to_jsonl();
        let lines: Vec<&str> = jsonl.lines().collect();
        // run, metrics, 1 phase, 2 events.
        assert_eq!(lines.len(), 5, "{jsonl}");
        assert_eq!(
            lines[0],
            format!("{{\"record\":\"run\",\"schema\":{JSONL_SCHEMA_VERSION},\"p\":3,\"k\":2}}")
        );
        assert!(lines[1].starts_with("{\"record\":\"metrics\",\"cycles\":2,"));
        assert!(lines[2].contains("\"record\":\"phase\",\"index\":0,\"name\":\"spread\""));
        assert!(lines[3].contains("\"phase\":\"spread\""));
        assert!(lines[3].contains("\"msg\":\"10\""));
    }

    #[test]
    fn export_is_deterministic() {
        let a = sample_report().to_jsonl();
        let b = sample_report().to_jsonl();
        assert_eq!(a, b);
    }

    #[test]
    fn no_trace_means_no_event_lines() {
        let report = Network::new(2, 1)
            .run(|ctx| {
                if ctx.id().index() == 0 {
                    ctx.write(ChanId(0), 1u64);
                } else {
                    ctx.idle();
                }
            })
            .unwrap();
        let jsonl = report.to_jsonl();
        assert_eq!(jsonl.lines().count(), 2);
        assert!(!jsonl.contains("\"record\":\"event\""));
    }

    #[test]
    fn fault_plan_and_fault_records_exported() {
        let plan = crate::FaultPlan::new(2, 2).kill_channel(ChanId(1), 0);
        let report = Network::new(2, 2)
            .fault_plan(plan)
            .run(|ctx| {
                if ctx.id().index() == 0 {
                    ctx.write(ChanId(1), 7u64);
                } else {
                    ctx.idle();
                }
            })
            .unwrap();
        let jsonl = report.to_jsonl();
        let lines: Vec<&str> = jsonl.lines().collect();
        assert_eq!(
            lines[2],
            "{\"record\":\"fault_plan\",\"seed\":0,\"deaths\":1,\"drops\":0,\
             \"corrupts\":0,\"crashes\":0,\"stalls\":0}"
        );
        assert_eq!(
            lines[3],
            "{\"record\":\"fault\",\"cycle\":0,\"kind\":\"channel_death\",\
             \"proc\":0,\"chan\":1}"
        );
    }

    #[test]
    fn epoch_records_exported_between_faults_and_phases() {
        use crate::epoch::{EpochCause, EpochRecord};
        let mut report = sample_report();
        report.epochs.push(EpochRecord {
            epoch: 1,
            cycle: 57,
            cause: EpochCause::Silence,
            live_chans: vec![0, 2],
            live_procs: vec![0, 1, 3],
        });
        let jsonl = report.to_jsonl();
        let lines: Vec<&str> = jsonl.lines().collect();
        assert_eq!(
            lines[2],
            "{\"record\":\"epoch\",\"epoch\":1,\"cycle\":57,\"cause\":\"silence\",\
             \"live_chans\":[0,2],\"live_procs\":[0,1,3]}"
        );
        assert!(lines[3].contains("\"record\":\"phase\""), "{jsonl}");
    }

    #[test]
    fn no_fault_plan_means_no_fault_lines() {
        let jsonl = sample_report().to_jsonl();
        assert!(!jsonl.contains("\"record\":\"fault_plan\""));
        assert!(!jsonl.contains("\"record\":\"fault\""));
    }

    #[test]
    fn unlabelled_event_phase_is_null() {
        let report = Network::new(2, 1)
            .record_trace(true)
            .run(|ctx| {
                if ctx.id().index() == 0 {
                    ctx.write(ChanId(0), 1u64);
                } else {
                    ctx.idle();
                }
            })
            .unwrap();
        let jsonl = report.to_jsonl();
        assert!(jsonl.contains("\"phase\":null"), "{jsonl}");
    }
}
