//! Cost accounting for network runs.
//!
//! Complexity in the MCB model (paper §2) is "measured in terms of the total
//! number of cycles and the total number of broadcast messages required by
//! the computation". The engine additionally records per-processor,
//! per-channel, and per-*phase* breakdowns (useful for spotting hot channels
//! and for comparing measured constants against the paper's per-phase
//! Θ-bounds) and message bit widths (to audit the O(log β) message-size
//! discipline).

/// Aggregated costs of one network run.
///
/// Identical across execution backends (see [`Backend`](crate::Backend)) —
/// metrics count model quantities, not wall-clock. Wall-clock engine costs
/// are reported separately via [`EngineProfile`] when profiling is enabled.
///
/// ```
/// use mcb_net::{ChanId, Network};
///
/// // Two processors; P1 broadcasts one message, P2 reads it.
/// let report = Network::new(2, 1)
///     .run(|ctx| {
///         if ctx.id().index() == 0 {
///             ctx.write(ChanId(0), 5u64);
///             None
///         } else {
///             ctx.read(ChanId(0))
///         }
///     })
///     .unwrap();
/// let m = &report.metrics;
/// assert_eq!((m.cycles, m.messages), (1, 1));
/// assert_eq!(m.per_proc_messages, vec![1, 0]);
/// assert_eq!(m.per_channel_messages, vec![1]);
/// // 1 message in rounds × k = 2 × 1 channel-slots (the engine ran one
/// // trailing drain round after both protocols returned).
/// assert_eq!(m.rounds, 2);
/// assert_eq!(m.channel_utilization(), 0.5);
/// ```
#[derive(Debug, Clone, PartialEq, Eq, Default)]
pub struct Metrics {
    /// Algorithm cycles: the maximum number of cycles any processor's
    /// protocol executed. This is the quantity the paper's Θ-bounds refer to.
    pub cycles: u64,
    /// Engine rounds actually executed, including the trailing rounds in
    /// which already-finished processors idle while stragglers complete.
    /// Always `>= cycles`; equal when all processors finish together.
    pub rounds: u64,
    /// Total broadcast messages sent.
    pub messages: u64,
    /// Sum of bit widths over all messages.
    pub total_bits: u64,
    /// Largest single-message bit width observed.
    pub max_msg_bits: u32,
    /// Messages sent by each processor.
    pub per_proc_messages: Vec<u64>,
    /// Cycles executed by each processor's protocol.
    pub per_proc_cycles: Vec<u64>,
    /// Messages carried by each channel.
    pub per_channel_messages: Vec<u64>,
    /// Per-phase breakdown, in order of first activity (see
    /// [`PhaseMetrics`]). Empty when the protocol never labelled a phase.
    pub phases: Vec<PhaseMetrics>,
    /// Faults that fired during the run (see
    /// [`FaultRecord`](crate::FaultRecord)), in canonical
    /// (cycle, kind, proc, chan) order. Empty when no
    /// [`FaultPlan`](crate::FaultPlan) was attached or none of its faults
    /// coincided with any I/O.
    pub faults: Vec<crate::FaultRecord>,
}

impl Metrics {
    /// Mean messages per channel; 0.0 for an empty run.
    pub fn mean_channel_load(&self) -> f64 {
        if self.per_channel_messages.is_empty() {
            return 0.0;
        }
        self.messages as f64 / self.per_channel_messages.len() as f64
    }

    /// Ratio of the busiest channel's load to the mean channel load.
    ///
    /// 1.0 means perfectly balanced; large values mean one channel is a
    /// bottleneck. Returns 0.0 when no messages were sent.
    pub fn channel_imbalance(&self) -> f64 {
        let mean = self.mean_channel_load();
        if mean == 0.0 {
            return 0.0;
        }
        let max = self.per_channel_messages.iter().copied().max().unwrap_or(0);
        max as f64 / mean
    }

    /// Average bits per message; 0.0 when no messages were sent.
    pub fn mean_msg_bits(&self) -> f64 {
        if self.messages == 0 {
            0.0
        } else {
            self.total_bits as f64 / self.messages as f64
        }
    }

    /// Channel-time utilization: the fraction of `rounds × k` channel-slots
    /// that carried a message. An algorithm keeping all channels busy every
    /// round scores 1.0.
    ///
    /// **Invariant**: collision-freedom means each channel carries at most
    /// one message per engine round, so `messages <= rounds * k` and the
    /// ratio never exceeds 1.0 for a successful run. The denominator is
    /// [`rounds`](Metrics::rounds) (global engine rounds), not
    /// [`cycles`](Metrics::cycles) (the per-processor maximum): channels
    /// exist — and can carry traffic — during the trailing rounds in which
    /// stragglers finish, so dividing by `cycles` could exceed 1.0.
    pub fn channel_utilization(&self) -> f64 {
        let slots = self
            .rounds
            .saturating_mul(self.per_channel_messages.len() as u64);
        if slots == 0 {
            0.0
        } else {
            self.messages as f64 / slots as f64
        }
    }
}

/// Costs attributed to one labelled phase (see [`crate::phase`]).
///
/// `cycles` is the maximum over processors of the cycles each spent in the
/// phase — the same convention as [`Metrics::cycles`]. For the lock-step
/// subroutines in `mcb-algos` (every processor enters/leaves each phase at
/// the same cycle), per-phase cycle counts sum exactly to the whole-run
/// total; `messages`, `total_bits`, and `per_channel_messages` always
/// partition their whole-run counterparts over phases plus the unlabelled
/// remainder.
#[derive(Debug, Clone, PartialEq, Eq, Default)]
pub struct PhaseMetrics {
    /// The label passed to [`ProcCtx::phase`](crate::ProcCtx::phase).
    pub name: String,
    /// Global round of the first cycle/message attributed to this phase.
    pub first_cycle: u64,
    /// Global round of the last cycle/message attributed to this phase.
    pub last_cycle: u64,
    /// Max over processors of cycles spent in this phase.
    pub cycles: u64,
    /// Messages sent while this phase was active.
    pub messages: u64,
    /// Sum of bit widths over this phase's messages.
    pub total_bits: u64,
    /// This phase's messages, broken down by channel (length `k`).
    pub per_channel_messages: Vec<u64>,
}

/// Sub-bucket resolution of [`LogHistogram`]: `2^3 = 8` sub-buckets per
/// power of two, so any recorded value lands in a bucket whose width is at
/// most 1/8 of its magnitude (≤ 12.5% relative quantile error).
const HIST_SUB_BITS: u32 = 3;
const HIST_SUB: u64 = 1 << HIST_SUB_BITS;
/// Bucket count covering the full `u64` range at [`HIST_SUB_BITS`]
/// resolution (indices `0..16` are exact; see [`hist_bucket`]).
const HIST_BUCKETS: usize = 496;

/// Bucket index for value `v`: exact for `v < 16`, log-bucketed with
/// [`HIST_SUB`] sub-buckets per octave above that (the HDR-histogram
/// scheme, sized down to a flat 496-slot array).
fn hist_bucket(v: u64) -> usize {
    if v < HIST_SUB * 2 {
        return v as usize;
    }
    let shift = 63 - u64::from(v.leading_zeros()) - u64::from(HIST_SUB_BITS);
    (shift * HIST_SUB + (v >> shift)) as usize
}

/// Largest value a bucket holds — the conservative (upper-bound) value
/// quantile queries report for it.
fn hist_bucket_top(idx: usize) -> u64 {
    if idx < (HIST_SUB * 2) as usize {
        return idx as u64;
    }
    let shift = (idx as u64 / HIST_SUB) - 1;
    let sub = idx as u64 - shift * HIST_SUB;
    ((sub + 1) << shift) - 1
}

/// A dependency-free log-bucketed (HDR-style) latency histogram.
///
/// Values are `u64` (the engine records nanoseconds); buckets are exact
/// below 16 and geometric with 8 sub-buckets per power of two above, so
/// quantiles are accurate to ≤ 12.5% over the full range while the whole
/// histogram is one flat 496-slot array. Storage is lazy: a histogram that
/// never records allocates nothing, so carrying one per executor is free
/// when profiling is off.
///
/// ```
/// use mcb_net::LogHistogram;
///
/// let mut h = LogHistogram::new();
/// for v in [10, 20, 30, 40, 1000] {
///     h.record(v);
/// }
/// assert_eq!(h.count(), 5);
/// assert_eq!(h.max(), 1000);
/// assert!(h.p50() >= 20 && h.p50() <= 34);
/// assert!(h.p99() >= 1000);
/// ```
#[derive(Debug, Clone, PartialEq, Eq, Default)]
pub struct LogHistogram {
    /// Bucket counts; empty until the first [`record`](Self::record).
    counts: Vec<u64>,
    count: u64,
    sum: u64,
    max: u64,
}

impl LogHistogram {
    /// An empty histogram (no allocation until the first record).
    pub fn new() -> Self {
        LogHistogram::default()
    }

    /// Record one value.
    pub fn record(&mut self, v: u64) {
        if self.counts.is_empty() {
            self.counts = vec![0; HIST_BUCKETS];
        }
        self.counts[hist_bucket(v)] += 1;
        self.count += 1;
        self.sum = self.sum.saturating_add(v);
        self.max = self.max.max(v);
    }

    /// Fold another histogram's samples into this one.
    pub fn merge(&mut self, other: &LogHistogram) {
        if other.count == 0 {
            return;
        }
        if self.counts.is_empty() {
            self.counts = vec![0; HIST_BUCKETS];
        }
        for (mine, theirs) in self.counts.iter_mut().zip(&other.counts) {
            *mine += theirs;
        }
        self.count += other.count;
        self.sum = self.sum.saturating_add(other.sum);
        self.max = self.max.max(other.max);
    }

    /// Number of recorded values.
    pub fn count(&self) -> u64 {
        self.count
    }

    /// Sum of recorded values (saturating).
    pub fn sum(&self) -> u64 {
        self.sum
    }

    /// Largest recorded value (exact, not bucketed); 0 when empty.
    pub fn max(&self) -> u64 {
        self.max
    }

    /// The value at quantile `q` in `[0, 1]`: an upper bound of the bucket
    /// containing the `⌈q·count⌉`-th smallest sample, clamped to
    /// [`max`](Self::max). Returns 0 for an empty histogram.
    pub fn quantile(&self, q: f64) -> u64 {
        if self.count == 0 {
            return 0;
        }
        let target = ((q * self.count as f64).ceil() as u64).clamp(1, self.count);
        let mut seen = 0u64;
        for (idx, &n) in self.counts.iter().enumerate() {
            seen += n;
            if seen >= target {
                return hist_bucket_top(idx).min(self.max);
            }
        }
        self.max
    }

    /// Median (see [`quantile`](Self::quantile)).
    pub fn p50(&self) -> u64 {
        self.quantile(0.50)
    }

    /// 95th percentile (see [`quantile`](Self::quantile)).
    pub fn p95(&self) -> u64 {
        self.quantile(0.95)
    }

    /// 99th percentile (see [`quantile`](Self::quantile)).
    pub fn p99(&self) -> u64 {
        self.quantile(0.99)
    }
}

/// Wall-clock engine costs of one run, recorded when
/// [`Network::profile`](crate::Network::profile) is enabled.
///
/// These are *engine* quantities — they depend on the backend, the host,
/// and the scheduler — and are deliberately kept out of [`Metrics`] so it
/// stays deterministic and backend-identical (the JSONL export carries them
/// only as clearly marked `profile`/`hist` records). Use them to separate
/// model cost (cycles, messages) from simulation cost.
///
/// Latency distributions are [`LogHistogram`]s; the legacy single-sum
/// fields ([`barrier_wait_ns`](Self::barrier_wait_ns),
/// [`stall_ns`](Self::stall_ns)) are kept populated from the histograms'
/// sums for compatibility.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct EngineProfile {
    /// The resolved backend that executed the run.
    pub backend: crate::Backend,
    /// Executor parallelism: `p` on the threaded backend (one OS thread per
    /// processor, all in the barrier), the worker count on the pooled one,
    /// and always `1` on the vector backend (a single struct-of-arrays
    /// driver thread, no barrier at all).
    pub workers: usize,
    /// Wall-clock duration of the whole run, in nanoseconds.
    pub wall_ns: u64,
    /// Total time executors spent blocked in barrier waits, summed across
    /// all of them (so it can exceed `wall_ns`), in nanoseconds. Equals
    /// [`barrier_wait`](Self::barrier_wait)`.sum()`; always 0 on the vector
    /// backend, whose single driver thread never waits on a barrier.
    pub barrier_wait_ns: u64,
    /// Time spent waiting for protocol compute, in nanoseconds: on the
    /// pooled backend the workers' fiber-rendezvous/state-machine-step
    /// waits summed across workers, on the vector backend the driver's
    /// per-cycle machine-dispatch (collect) time. Equals
    /// [`stall`](Self::stall)`.sum() + `[`dispatch`](Self::dispatch)`.sum()`;
    /// always 0 on the threaded backend, where protocol compute runs on
    /// the processor's own thread.
    pub stall_ns: u64,
    /// Distribution of per-cycle wall-clock latency (time between
    /// consecutive engine rounds, sampled by the sweeper), all backends.
    pub cycle_latency: LogHistogram,
    /// Distribution of individual barrier-wait times, one sample per wait
    /// per executor (threaded and pooled backends; empty on vector).
    pub barrier_wait: LogHistogram,
    /// Distribution of per-round protocol-compute stalls, one sample per
    /// worker per round (pooled backend only; empty elsewhere).
    pub stall: LogHistogram,
    /// Distribution of per-cycle machine-dispatch times in the columnar
    /// collect loop (vector backend only; empty elsewhere).
    pub dispatch: LogHistogram,
}

/// Per-processor, per-phase accumulator (see [`LocalMetrics::phases`]).
#[derive(Debug, Default, Clone)]
pub(crate) struct PhaseLocal {
    pub cycles: u64,
    pub messages: u64,
    pub total_bits: u64,
    pub first_round: u64,
    pub last_round: u64,
    pub per_channel: Vec<u64>,
}

impl PhaseLocal {
    fn is_empty(&self) -> bool {
        self.cycles == 0 && self.messages == 0
    }
}

/// Per-thread accumulator merged into [`Metrics`] when a run completes.
#[derive(Debug, Default, Clone)]
pub(crate) struct LocalMetrics {
    pub cycles: u64,
    pub messages: u64,
    pub total_bits: u64,
    pub max_msg_bits: u32,
    /// Currently active phase id (index into the run's interner; 0 = none).
    pub cur_phase: u16,
    /// Per-phase tallies, indexed by phase id; row 0 is never populated
    /// (unlabelled activity is derived by subtraction at aggregation).
    pub phases: Vec<PhaseLocal>,
}

impl LocalMetrics {
    fn phase_row(&mut self) -> &mut PhaseLocal {
        let idx = self.cur_phase as usize;
        if self.phases.len() <= idx {
            self.phases.resize_with(idx + 1, PhaseLocal::default);
        }
        &mut self.phases[idx]
    }

    /// Account one executed cycle at global round `now`.
    pub(crate) fn record_cycle(&mut self, now: u64) {
        self.cycles += 1;
        if self.cur_phase != 0 {
            let row = self.phase_row();
            if row.is_empty() {
                row.first_round = now;
            }
            row.cycles += 1;
            row.last_round = now;
        }
    }

    /// Account `n` consecutive idle cycles whose first executes at global
    /// round `now` — the bulk equivalent of `n` [`record_cycle`] calls at
    /// rounds `now .. now + n`, used by the vector backend to account a
    /// [`Step::IdleFor`](crate::Step::IdleFor) span without touching the
    /// sleeping processor each round.
    ///
    /// [`record_cycle`]: Self::record_cycle
    pub(crate) fn record_idle_span(&mut self, now: u64, n: u64) {
        if n == 0 {
            return;
        }
        self.cycles += n;
        if self.cur_phase != 0 {
            let row = self.phase_row();
            if row.is_empty() {
                row.first_round = now;
            }
            row.cycles += n;
            row.last_round = now + n - 1;
        }
    }

    /// Account one sent message of `bits` bits on channel index `chan` at
    /// global round `now`.
    pub(crate) fn record_message(&mut self, bits: u32, chan: usize, now: u64) {
        self.messages += 1;
        self.total_bits += u64::from(bits);
        self.max_msg_bits = self.max_msg_bits.max(bits);
        if self.cur_phase != 0 {
            let row = self.phase_row();
            if row.is_empty() {
                row.first_round = now;
            }
            row.messages += 1;
            row.total_bits += u64::from(bits);
            row.last_round = row.last_round.max(now);
            if row.per_channel.len() <= chan {
                row.per_channel.resize(chan + 1, 0);
            }
            row.per_channel[chan] += 1;
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn sample() -> Metrics {
        // Physically consistent with a collision-free run: 18 messages fit
        // in rounds * k = 12 * 2 = 24 channel-slots.
        Metrics {
            cycles: 10,
            rounds: 12,
            messages: 18,
            total_bits: 180,
            max_msg_bits: 16,
            per_proc_messages: vec![6, 6, 6],
            per_proc_cycles: vec![10, 9, 8],
            per_channel_messages: vec![12, 6],
            phases: vec![],
            faults: vec![],
        }
    }

    #[test]
    fn derived_ratios() {
        let m = sample();
        assert_eq!(m.mean_channel_load(), 9.0);
        assert!((m.channel_imbalance() - 12.0 / 9.0).abs() < 1e-12);
        assert_eq!(m.mean_msg_bits(), 10.0);
        // 18 messages over 12 rounds * 2 channels.
        assert!((m.channel_utilization() - 18.0 / 24.0).abs() < 1e-12);
    }

    #[test]
    fn utilization_is_capped_at_one() {
        // A run that fills every channel-slot of every round scores exactly
        // 1.0; collision-freedom makes more than that impossible.
        let m = Metrics {
            cycles: 12,
            rounds: 12,
            messages: 24,
            per_proc_messages: vec![8, 8, 8],
            per_proc_cycles: vec![12, 12, 12],
            per_channel_messages: vec![12, 12],
            ..Metrics::default()
        };
        assert_eq!(m.channel_utilization(), 1.0);
        assert!(m.messages <= m.rounds * m.per_channel_messages.len() as u64);
    }

    #[test]
    fn empty_run_is_all_zeroes() {
        let m = Metrics::default();
        assert_eq!(m.mean_channel_load(), 0.0);
        assert_eq!(m.channel_imbalance(), 0.0);
        assert_eq!(m.mean_msg_bits(), 0.0);
        assert_eq!(m.channel_utilization(), 0.0);
    }

    #[test]
    fn local_metrics_accumulate() {
        let mut l = LocalMetrics::default();
        l.record_message(8, 0, 0);
        l.record_message(16, 1, 1);
        l.record_message(4, 0, 2);
        assert_eq!(l.messages, 3);
        assert_eq!(l.total_bits, 28);
        assert_eq!(l.max_msg_bits, 16);
        // No phase active: nothing attributed per-phase.
        assert!(l.phases.is_empty());
    }

    #[test]
    fn hist_buckets_cover_u64_contiguously() {
        // Exact region, boundary, and the top of the range.
        assert_eq!(hist_bucket(0), 0);
        assert_eq!(hist_bucket(15), 15);
        assert_eq!(hist_bucket(16), 16);
        assert_eq!(hist_bucket(u64::MAX), HIST_BUCKETS - 1);
        // Bucket indices are monotone in the value and tops bracket their
        // bucket: for a sample of magnitudes, v <= top(bucket(v)) and
        // top(bucket(v) - 1) < v.
        let mut prev = 0usize;
        for shift in 0..64u32 {
            let v = 1u64 << shift;
            let b = hist_bucket(v);
            assert!(b >= prev, "bucket index regressed at 2^{shift}");
            prev = b;
            assert!(hist_bucket_top(b) >= v);
            if b > 0 {
                assert!(hist_bucket_top(b - 1) < v);
            }
        }
    }

    #[test]
    fn histogram_quantiles_are_bounded_by_bucket_width() {
        let mut h = LogHistogram::new();
        for v in 1..=1000u64 {
            h.record(v);
        }
        assert_eq!(h.count(), 1000);
        assert_eq!(h.sum(), 500_500);
        assert_eq!(h.max(), 1000);
        // ≤ 12.5% relative error, upper-bounded.
        assert!(h.p50() >= 500 && h.p50() <= 575, "p50 = {}", h.p50());
        assert!(h.p95() >= 950 && h.p95() <= 1000, "p95 = {}", h.p95());
        assert!(h.p99() >= 990 && h.p99() <= 1000, "p99 = {}", h.p99());
        assert_eq!(h.quantile(1.0), 1000);
    }

    #[test]
    fn histogram_merge_matches_bulk_record() {
        let mut a = LogHistogram::new();
        let mut b = LogHistogram::new();
        let mut all = LogHistogram::new();
        for v in [3u64, 17, 900, 1 << 40] {
            a.record(v);
            all.record(v);
        }
        for v in [0u64, 5, 123_456] {
            b.record(v);
            all.record(v);
        }
        a.merge(&b);
        assert_eq!(a, all);
        // Merging an empty histogram is a no-op, including on storage.
        let before = all.clone();
        all.merge(&LogHistogram::new());
        assert_eq!(all, before);
    }

    #[test]
    fn empty_histogram_reports_zeroes() {
        let h = LogHistogram::new();
        assert_eq!((h.count(), h.sum(), h.max()), (0, 0, 0));
        assert_eq!((h.p50(), h.p95(), h.p99()), (0, 0, 0));
    }

    #[test]
    fn local_metrics_attribute_phases() {
        let mut l = LocalMetrics {
            cur_phase: 2,
            ..LocalMetrics::default()
        };
        l.record_message(8, 1, 5);
        l.record_cycle(5);
        l.record_cycle(6);
        l.cur_phase = 0;
        l.record_cycle(7); // unlabelled: whole-run tally only
        assert_eq!(l.cycles, 3);
        let row = &l.phases[2];
        assert_eq!((row.cycles, row.messages, row.total_bits), (2, 1, 8));
        assert_eq!((row.first_round, row.last_round), (5, 6));
        assert_eq!(row.per_channel, vec![0, 1]);
    }
}
