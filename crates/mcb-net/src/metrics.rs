//! Cost accounting for network runs.
//!
//! Complexity in the MCB model (paper §2) is "measured in terms of the total
//! number of cycles and the total number of broadcast messages required by
//! the computation". The engine additionally records per-processor and
//! per-channel breakdowns (useful for spotting hot channels and validating
//! load balance) and message bit widths (to audit the O(log β) message-size
//! discipline).

/// Aggregated costs of one network run.
///
/// Identical across execution backends (see [`Backend`](crate::Backend)) —
/// metrics count model quantities, not wall-clock.
///
/// ```
/// use mcb_net::{ChanId, Network};
///
/// // Two processors; P1 broadcasts one message, P2 reads it.
/// let report = Network::new(2, 1)
///     .run(|ctx| {
///         if ctx.id().index() == 0 {
///             ctx.write(ChanId(0), 5u64);
///             None
///         } else {
///             ctx.read(ChanId(0))
///         }
///     })
///     .unwrap();
/// let m = &report.metrics;
/// assert_eq!((m.cycles, m.messages), (1, 1));
/// assert_eq!(m.per_proc_messages, vec![1, 0]);
/// assert_eq!(m.per_channel_messages, vec![1]);
/// assert_eq!(m.channel_utilization(), 1.0);
/// ```
#[derive(Debug, Clone, PartialEq, Eq, Default)]
pub struct Metrics {
    /// Algorithm cycles: the maximum number of cycles any processor's
    /// protocol executed. This is the quantity the paper's Θ-bounds refer to.
    pub cycles: u64,
    /// Engine rounds actually executed, including the trailing rounds in
    /// which already-finished processors idle while stragglers complete.
    /// Always `>= cycles`; equal when all processors finish together.
    pub rounds: u64,
    /// Total broadcast messages sent.
    pub messages: u64,
    /// Sum of bit widths over all messages.
    pub total_bits: u64,
    /// Largest single-message bit width observed.
    pub max_msg_bits: u32,
    /// Messages sent by each processor.
    pub per_proc_messages: Vec<u64>,
    /// Cycles executed by each processor's protocol.
    pub per_proc_cycles: Vec<u64>,
    /// Messages carried by each channel.
    pub per_channel_messages: Vec<u64>,
}

impl Metrics {
    /// Mean messages per channel; 0.0 for an empty run.
    pub fn mean_channel_load(&self) -> f64 {
        if self.per_channel_messages.is_empty() {
            return 0.0;
        }
        self.messages as f64 / self.per_channel_messages.len() as f64
    }

    /// Ratio of the busiest channel's load to the mean channel load.
    ///
    /// 1.0 means perfectly balanced; large values mean one channel is a
    /// bottleneck. Returns 0.0 when no messages were sent.
    pub fn channel_imbalance(&self) -> f64 {
        let mean = self.mean_channel_load();
        if mean == 0.0 {
            return 0.0;
        }
        let max = self.per_channel_messages.iter().copied().max().unwrap_or(0);
        max as f64 / mean
    }

    /// Average bits per message; 0.0 when no messages were sent.
    pub fn mean_msg_bits(&self) -> f64 {
        if self.messages == 0 {
            0.0
        } else {
            self.total_bits as f64 / self.messages as f64
        }
    }

    /// Channel-time utilization: fraction of (cycles × k) slots that carried
    /// a message. An algorithm keeping all channels busy every cycle scores
    /// 1.0.
    pub fn channel_utilization(&self) -> f64 {
        let slots = self
            .cycles
            .saturating_mul(self.per_channel_messages.len() as u64);
        if slots == 0 {
            0.0
        } else {
            self.messages as f64 / slots as f64
        }
    }
}

/// Per-thread accumulator merged into [`Metrics`] when a run completes.
#[derive(Debug, Default, Clone)]
pub(crate) struct LocalMetrics {
    pub cycles: u64,
    pub messages: u64,
    pub total_bits: u64,
    pub max_msg_bits: u32,
}

impl LocalMetrics {
    pub(crate) fn record_message(&mut self, bits: u32) {
        self.messages += 1;
        self.total_bits += u64::from(bits);
        self.max_msg_bits = self.max_msg_bits.max(bits);
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn sample() -> Metrics {
        Metrics {
            cycles: 10,
            rounds: 12,
            messages: 30,
            total_bits: 300,
            max_msg_bits: 16,
            per_proc_messages: vec![10, 10, 10],
            per_proc_cycles: vec![10, 9, 8],
            per_channel_messages: vec![20, 10],
        }
    }

    #[test]
    fn derived_ratios() {
        let m = sample();
        assert_eq!(m.mean_channel_load(), 15.0);
        assert!((m.channel_imbalance() - 20.0 / 15.0).abs() < 1e-12);
        assert_eq!(m.mean_msg_bits(), 10.0);
        assert!((m.channel_utilization() - 30.0 / 20.0).abs() < 1e-12);
    }

    #[test]
    fn empty_run_is_all_zeroes() {
        let m = Metrics::default();
        assert_eq!(m.mean_channel_load(), 0.0);
        assert_eq!(m.channel_imbalance(), 0.0);
        assert_eq!(m.mean_msg_bits(), 0.0);
        assert_eq!(m.channel_utilization(), 0.0);
    }

    #[test]
    fn local_metrics_accumulate() {
        let mut l = LocalMetrics::default();
        l.record_message(8);
        l.record_message(16);
        l.record_message(4);
        assert_eq!(l.messages, 3);
        assert_eq!(l.total_bits, 28);
        assert_eq!(l.max_msg_bits, 16);
    }
}
