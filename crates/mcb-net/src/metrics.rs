//! Cost accounting for network runs.
//!
//! Complexity in the MCB model (paper §2) is "measured in terms of the total
//! number of cycles and the total number of broadcast messages required by
//! the computation". The engine additionally records per-processor,
//! per-channel, and per-*phase* breakdowns (useful for spotting hot channels
//! and for comparing measured constants against the paper's per-phase
//! Θ-bounds) and message bit widths (to audit the O(log β) message-size
//! discipline).

/// Aggregated costs of one network run.
///
/// Identical across execution backends (see [`Backend`](crate::Backend)) —
/// metrics count model quantities, not wall-clock. Wall-clock engine costs
/// are reported separately via [`EngineProfile`] when profiling is enabled.
///
/// ```
/// use mcb_net::{ChanId, Network};
///
/// // Two processors; P1 broadcasts one message, P2 reads it.
/// let report = Network::new(2, 1)
///     .run(|ctx| {
///         if ctx.id().index() == 0 {
///             ctx.write(ChanId(0), 5u64);
///             None
///         } else {
///             ctx.read(ChanId(0))
///         }
///     })
///     .unwrap();
/// let m = &report.metrics;
/// assert_eq!((m.cycles, m.messages), (1, 1));
/// assert_eq!(m.per_proc_messages, vec![1, 0]);
/// assert_eq!(m.per_channel_messages, vec![1]);
/// // 1 message in rounds × k = 2 × 1 channel-slots (the engine ran one
/// // trailing drain round after both protocols returned).
/// assert_eq!(m.rounds, 2);
/// assert_eq!(m.channel_utilization(), 0.5);
/// ```
#[derive(Debug, Clone, PartialEq, Eq, Default)]
pub struct Metrics {
    /// Algorithm cycles: the maximum number of cycles any processor's
    /// protocol executed. This is the quantity the paper's Θ-bounds refer to.
    pub cycles: u64,
    /// Engine rounds actually executed, including the trailing rounds in
    /// which already-finished processors idle while stragglers complete.
    /// Always `>= cycles`; equal when all processors finish together.
    pub rounds: u64,
    /// Total broadcast messages sent.
    pub messages: u64,
    /// Sum of bit widths over all messages.
    pub total_bits: u64,
    /// Largest single-message bit width observed.
    pub max_msg_bits: u32,
    /// Messages sent by each processor.
    pub per_proc_messages: Vec<u64>,
    /// Cycles executed by each processor's protocol.
    pub per_proc_cycles: Vec<u64>,
    /// Messages carried by each channel.
    pub per_channel_messages: Vec<u64>,
    /// Per-phase breakdown, in order of first activity (see
    /// [`PhaseMetrics`]). Empty when the protocol never labelled a phase.
    pub phases: Vec<PhaseMetrics>,
    /// Faults that fired during the run (see
    /// [`FaultRecord`](crate::FaultRecord)), in canonical
    /// (cycle, kind, proc, chan) order. Empty when no
    /// [`FaultPlan`](crate::FaultPlan) was attached or none of its faults
    /// coincided with any I/O.
    pub faults: Vec<crate::FaultRecord>,
}

impl Metrics {
    /// Mean messages per channel; 0.0 for an empty run.
    pub fn mean_channel_load(&self) -> f64 {
        if self.per_channel_messages.is_empty() {
            return 0.0;
        }
        self.messages as f64 / self.per_channel_messages.len() as f64
    }

    /// Ratio of the busiest channel's load to the mean channel load.
    ///
    /// 1.0 means perfectly balanced; large values mean one channel is a
    /// bottleneck. Returns 0.0 when no messages were sent.
    pub fn channel_imbalance(&self) -> f64 {
        let mean = self.mean_channel_load();
        if mean == 0.0 {
            return 0.0;
        }
        let max = self.per_channel_messages.iter().copied().max().unwrap_or(0);
        max as f64 / mean
    }

    /// Average bits per message; 0.0 when no messages were sent.
    pub fn mean_msg_bits(&self) -> f64 {
        if self.messages == 0 {
            0.0
        } else {
            self.total_bits as f64 / self.messages as f64
        }
    }

    /// Channel-time utilization: the fraction of `rounds × k` channel-slots
    /// that carried a message. An algorithm keeping all channels busy every
    /// round scores 1.0.
    ///
    /// **Invariant**: collision-freedom means each channel carries at most
    /// one message per engine round, so `messages <= rounds * k` and the
    /// ratio never exceeds 1.0 for a successful run. The denominator is
    /// [`rounds`](Metrics::rounds) (global engine rounds), not
    /// [`cycles`](Metrics::cycles) (the per-processor maximum): channels
    /// exist — and can carry traffic — during the trailing rounds in which
    /// stragglers finish, so dividing by `cycles` could exceed 1.0.
    pub fn channel_utilization(&self) -> f64 {
        let slots = self
            .rounds
            .saturating_mul(self.per_channel_messages.len() as u64);
        if slots == 0 {
            0.0
        } else {
            self.messages as f64 / slots as f64
        }
    }
}

/// Costs attributed to one labelled phase (see [`crate::phase`]).
///
/// `cycles` is the maximum over processors of the cycles each spent in the
/// phase — the same convention as [`Metrics::cycles`]. For the lock-step
/// subroutines in `mcb-algos` (every processor enters/leaves each phase at
/// the same cycle), per-phase cycle counts sum exactly to the whole-run
/// total; `messages`, `total_bits`, and `per_channel_messages` always
/// partition their whole-run counterparts over phases plus the unlabelled
/// remainder.
#[derive(Debug, Clone, PartialEq, Eq, Default)]
pub struct PhaseMetrics {
    /// The label passed to [`ProcCtx::phase`](crate::ProcCtx::phase).
    pub name: String,
    /// Global round of the first cycle/message attributed to this phase.
    pub first_cycle: u64,
    /// Global round of the last cycle/message attributed to this phase.
    pub last_cycle: u64,
    /// Max over processors of cycles spent in this phase.
    pub cycles: u64,
    /// Messages sent while this phase was active.
    pub messages: u64,
    /// Sum of bit widths over this phase's messages.
    pub total_bits: u64,
    /// This phase's messages, broken down by channel (length `k`).
    pub per_channel_messages: Vec<u64>,
}

/// Wall-clock engine costs of one run, recorded when
/// [`Network::profile`](crate::Network::profile) is enabled.
///
/// These are *engine* quantities — they depend on the backend, the host,
/// and the scheduler — and are deliberately kept out of [`Metrics`] and the
/// JSONL export so those stay deterministic and backend-identical. Use them
/// to separate model cost (cycles, messages) from simulation cost.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct EngineProfile {
    /// The resolved backend that executed the run.
    pub backend: crate::Backend,
    /// Barrier width: `p` on the threaded backend, the worker count on the
    /// pooled one.
    pub workers: usize,
    /// Wall-clock duration of the whole run, in nanoseconds.
    pub wall_ns: u64,
    /// Total time executors spent blocked in barrier waits, summed across
    /// all of them (so it can exceed `wall_ns`), in nanoseconds.
    pub barrier_wait_ns: u64,
    /// Pooled backend only: total time workers spent waiting for protocol
    /// compute (fiber rendezvous and state-machine steps), summed across
    /// workers, in nanoseconds. Always 0 on the threaded backend, where
    /// protocol compute runs on the processor's own thread.
    pub stall_ns: u64,
}

/// Per-processor, per-phase accumulator (see [`LocalMetrics::phases`]).
#[derive(Debug, Default, Clone)]
pub(crate) struct PhaseLocal {
    pub cycles: u64,
    pub messages: u64,
    pub total_bits: u64,
    pub first_round: u64,
    pub last_round: u64,
    pub per_channel: Vec<u64>,
}

impl PhaseLocal {
    fn is_empty(&self) -> bool {
        self.cycles == 0 && self.messages == 0
    }
}

/// Per-thread accumulator merged into [`Metrics`] when a run completes.
#[derive(Debug, Default, Clone)]
pub(crate) struct LocalMetrics {
    pub cycles: u64,
    pub messages: u64,
    pub total_bits: u64,
    pub max_msg_bits: u32,
    /// Currently active phase id (index into the run's interner; 0 = none).
    pub cur_phase: u16,
    /// Per-phase tallies, indexed by phase id; row 0 is never populated
    /// (unlabelled activity is derived by subtraction at aggregation).
    pub phases: Vec<PhaseLocal>,
}

impl LocalMetrics {
    fn phase_row(&mut self) -> &mut PhaseLocal {
        let idx = self.cur_phase as usize;
        if self.phases.len() <= idx {
            self.phases.resize_with(idx + 1, PhaseLocal::default);
        }
        &mut self.phases[idx]
    }

    /// Account one executed cycle at global round `now`.
    pub(crate) fn record_cycle(&mut self, now: u64) {
        self.cycles += 1;
        if self.cur_phase != 0 {
            let row = self.phase_row();
            if row.is_empty() {
                row.first_round = now;
            }
            row.cycles += 1;
            row.last_round = now;
        }
    }

    /// Account `n` consecutive idle cycles whose first executes at global
    /// round `now` — the bulk equivalent of `n` [`record_cycle`] calls at
    /// rounds `now .. now + n`, used by the vector backend to account a
    /// [`Step::IdleFor`](crate::Step::IdleFor) span without touching the
    /// sleeping processor each round.
    ///
    /// [`record_cycle`]: Self::record_cycle
    pub(crate) fn record_idle_span(&mut self, now: u64, n: u64) {
        if n == 0 {
            return;
        }
        self.cycles += n;
        if self.cur_phase != 0 {
            let row = self.phase_row();
            if row.is_empty() {
                row.first_round = now;
            }
            row.cycles += n;
            row.last_round = now + n - 1;
        }
    }

    /// Account one sent message of `bits` bits on channel index `chan` at
    /// global round `now`.
    pub(crate) fn record_message(&mut self, bits: u32, chan: usize, now: u64) {
        self.messages += 1;
        self.total_bits += u64::from(bits);
        self.max_msg_bits = self.max_msg_bits.max(bits);
        if self.cur_phase != 0 {
            let row = self.phase_row();
            if row.is_empty() {
                row.first_round = now;
            }
            row.messages += 1;
            row.total_bits += u64::from(bits);
            row.last_round = row.last_round.max(now);
            if row.per_channel.len() <= chan {
                row.per_channel.resize(chan + 1, 0);
            }
            row.per_channel[chan] += 1;
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn sample() -> Metrics {
        // Physically consistent with a collision-free run: 18 messages fit
        // in rounds * k = 12 * 2 = 24 channel-slots.
        Metrics {
            cycles: 10,
            rounds: 12,
            messages: 18,
            total_bits: 180,
            max_msg_bits: 16,
            per_proc_messages: vec![6, 6, 6],
            per_proc_cycles: vec![10, 9, 8],
            per_channel_messages: vec![12, 6],
            phases: vec![],
            faults: vec![],
        }
    }

    #[test]
    fn derived_ratios() {
        let m = sample();
        assert_eq!(m.mean_channel_load(), 9.0);
        assert!((m.channel_imbalance() - 12.0 / 9.0).abs() < 1e-12);
        assert_eq!(m.mean_msg_bits(), 10.0);
        // 18 messages over 12 rounds * 2 channels.
        assert!((m.channel_utilization() - 18.0 / 24.0).abs() < 1e-12);
    }

    #[test]
    fn utilization_is_capped_at_one() {
        // A run that fills every channel-slot of every round scores exactly
        // 1.0; collision-freedom makes more than that impossible.
        let m = Metrics {
            cycles: 12,
            rounds: 12,
            messages: 24,
            per_proc_messages: vec![8, 8, 8],
            per_proc_cycles: vec![12, 12, 12],
            per_channel_messages: vec![12, 12],
            ..Metrics::default()
        };
        assert_eq!(m.channel_utilization(), 1.0);
        assert!(m.messages <= m.rounds * m.per_channel_messages.len() as u64);
    }

    #[test]
    fn empty_run_is_all_zeroes() {
        let m = Metrics::default();
        assert_eq!(m.mean_channel_load(), 0.0);
        assert_eq!(m.channel_imbalance(), 0.0);
        assert_eq!(m.mean_msg_bits(), 0.0);
        assert_eq!(m.channel_utilization(), 0.0);
    }

    #[test]
    fn local_metrics_accumulate() {
        let mut l = LocalMetrics::default();
        l.record_message(8, 0, 0);
        l.record_message(16, 1, 1);
        l.record_message(4, 0, 2);
        assert_eq!(l.messages, 3);
        assert_eq!(l.total_bits, 28);
        assert_eq!(l.max_msg_bits, 16);
        // No phase active: nothing attributed per-phase.
        assert!(l.phases.is_empty());
    }

    #[test]
    fn local_metrics_attribute_phases() {
        let mut l = LocalMetrics {
            cur_phase: 2,
            ..LocalMetrics::default()
        };
        l.record_message(8, 1, 5);
        l.record_cycle(5);
        l.record_cycle(6);
        l.cur_phase = 0;
        l.record_cycle(7); // unlabelled: whole-run tally only
        assert_eq!(l.cycles, 3);
        let row = &l.phases[2];
        assert_eq!((row.cycles, row.messages, row.total_bits), (2, 1, 8));
        assert_eq!((row.first_round, row.last_round), (5, 6));
        assert_eq!(row.per_channel, vec![0, 1]);
    }
}
