//! Strongly-typed identifiers for processors and channels.
//!
//! The paper denotes processors `P_1 .. P_p` and channels `C_1 .. C_k`.
//! Internally we use zero-based indices; the `Display` impls print the
//! one-based paper notation to keep logs and traces readable next to the
//! paper text.

use std::fmt;

/// Identifier of a processor in an `MCB(p, k)` network (zero-based).
#[derive(Debug, Clone, Copy, PartialEq, Eq, PartialOrd, Ord, Hash)]
pub struct ProcId(pub u32);

/// Identifier of a broadcast channel in an `MCB(p, k)` network (zero-based).
#[derive(Debug, Clone, Copy, PartialEq, Eq, PartialOrd, Ord, Hash)]
pub struct ChanId(pub u32);

impl ProcId {
    /// Zero-based index, usable for slicing.
    #[inline]
    pub fn index(self) -> usize {
        self.0 as usize
    }

    /// Construct from a zero-based index.
    #[inline]
    pub fn from_index(i: usize) -> Self {
        ProcId(i as u32)
    }
}

impl ChanId {
    /// Zero-based index, usable for slicing.
    #[inline]
    pub fn index(self) -> usize {
        self.0 as usize
    }

    /// Construct from a zero-based index.
    #[inline]
    pub fn from_index(i: usize) -> Self {
        ChanId(i as u32)
    }
}

impl fmt::Display for ProcId {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        // One-based, matching the paper's P_1..P_p.
        write!(f, "P{}", self.0 + 1)
    }
}

impl fmt::Display for ChanId {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "C{}", self.0 + 1)
    }
}

impl From<usize> for ProcId {
    fn from(i: usize) -> Self {
        ProcId::from_index(i)
    }
}

impl From<usize> for ChanId {
    fn from(i: usize) -> Self {
        ChanId::from_index(i)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn display_is_one_based() {
        assert_eq!(ProcId(0).to_string(), "P1");
        assert_eq!(ChanId(3).to_string(), "C4");
    }

    #[test]
    fn index_round_trips() {
        for i in [0usize, 1, 17, 4095] {
            assert_eq!(ProcId::from_index(i).index(), i);
            assert_eq!(ChanId::from_index(i).index(), i);
        }
    }

    #[test]
    fn ordering_follows_indices() {
        assert!(ProcId(1) < ProcId(2));
        assert!(ChanId(0) < ChanId(1));
    }
}
