//! Deterministic fault injection and lemma-driven recovery.
//!
//! The engine is normally fail-fast: collisions, panics, and bad channels
//! abort the run. This module adds the opposite capability — *keep going on
//! degraded hardware* — in a way that stays bit-deterministic and identical
//! across both execution backends.
//!
//! # Fault taxonomy
//!
//! A [`FaultPlan`] is a **static, seeded schedule of faults**, fixed before
//! the run starts. Five kinds exist ([`FaultKind`]):
//!
//! | kind           | scope                | semantics                                        |
//! |----------------|----------------------|--------------------------------------------------|
//! | `ChannelDeath` | channel, permanent   | writes to the channel are lost from the death cycle on |
//! | `Drop`         | (cycle, channel)     | the message transmitted that slot vanishes       |
//! | `Corrupt`      | (cycle, channel)     | detected-and-discarded (CRC model): same loss as a drop, distinct record |
//! | `Crash`        | processor, permanent | the processor stops mid-protocol; its result slot stays `None` |
//! | `Stall`        | (cycle, processor)   | the processor's I/O is suppressed that cycle (writes lost, reads empty); its program still advances |
//!
//! Faulted transmissions never reach the channel slot, so they do not
//! participate in collision detection ("jammed at the transmitter") and are
//! **not** counted as messages; every *fired* fault is recorded as a
//! [`FaultRecord`] in [`Metrics::faults`](crate::Metrics::faults), the
//! [`Trace`](crate::Trace), and the JSONL export.
//!
//! # Recovery: the §2 lemma, applied to dead channels
//!
//! The paper's simulation lemma says an `MCB(p, k)` computation runs on an
//! `MCB(p, k')` machine (`k' < k`) with `⌈k/k'⌉` cycle dilation by
//! round-robin channel multiplexing. Dead channels leave exactly that
//! machine behind, so a *resilient* logical cycle (enabled per-processor
//! with [`ProcCtx::set_resilient`](crate::ProcCtx::set_resilient)) executes
//! as `h = ⌈k/k'⌉` physical sub-cycles over the `k'` surviving channels:
//! logical channel `c` is served in sub-cycle `c / k'` on physical channel
//! `live[c % k']`. The mapping is injective per sub-cycle, so a
//! collision-free schedule stays collision-free — `mcb-check`'s `degrade`
//! module proves the same statement statically.
//!
//! # Retransmission: detection by silence, without desynchronizing
//!
//! Transient faults (drops, corruption, stalls, a death landing mid-window)
//! are handled by retrying the whole logical cycle. In a synchronous
//! broadcast network every station monitors the shared medium, so fault
//! *detection* is common knowledge: the plan is static, and
//! [`FaultPlan::notice`] is a pure function every processor evaluates
//! identically — a carrier-level "that window was noisy" signal. All
//! processors therefore retry (or not) in lock-step. After
//! [`ResilientOpts::retries`] dirty windows the processor escalates
//! [`NetError::Unrecoverable`](crate::NetError::Unrecoverable), which fails
//! the run on both backends.
//!
//! Channels are memoryless (the sweep clears them every cycle), so retries
//! can never observe stale messages from an earlier attempt.

use crate::ids::{ChanId, ProcId};
use mcb_rng::Rng64;
use std::collections::BTreeSet;

/// The kind of an injected fault. See the [module docs](self) for the
/// semantics table.
#[derive(Debug, Clone, Copy, PartialEq, Eq, PartialOrd, Ord, Hash)]
pub enum FaultKind {
    /// Permanent channel death: writes are lost from the death cycle on.
    ChannelDeath,
    /// Transient loss of one (cycle, channel) transmission.
    Drop,
    /// Transmission corrupted in flight; detected and discarded.
    Corrupt,
    /// Permanent processor crash.
    Crash,
    /// One-cycle processor I/O blackout.
    Stall,
}

impl FaultKind {
    /// Stable machine-readable tag, used by the JSONL export.
    pub fn as_str(self) -> &'static str {
        match self {
            FaultKind::ChannelDeath => "channel_death",
            FaultKind::Drop => "drop",
            FaultKind::Corrupt => "corrupt",
            FaultKind::Crash => "crash",
            FaultKind::Stall => "stall",
        }
    }
}

/// One fault that actually *fired* during a run (affected an operation).
///
/// Planned faults that never coincide with any I/O leave no record; the
/// plan itself is summarized separately (see [`FaultSummary`]).
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct FaultRecord {
    /// Global cycle (engine round) at which the fault fired.
    pub cycle: u64,
    /// What kind of fault fired.
    pub kind: FaultKind,
    /// The affected processor (`None` for channel-scoped faults where the
    /// writer is the recorded party — always `Some` in practice for
    /// `Crash`/`Stall`, and the suppressed writer for the others).
    pub proc: Option<ProcId>,
    /// The affected channel (`None` for processor-scoped faults).
    pub chan: Option<ChanId>,
}

impl FaultRecord {
    fn sort_key(&self) -> (u64, FaultKind, Option<u32>, Option<u32>) {
        (
            self.cycle,
            self.kind,
            self.proc.map(|p| p.0),
            self.chan.map(|c| c.0),
        )
    }
}

/// Sort fired-fault records into the canonical (cycle, kind, proc, chan)
/// order and drop exact duplicates (a stalled processor that both wrote and
/// read in the same cycle fires the same record twice).
pub(crate) fn canonicalize(records: &mut Vec<FaultRecord>) {
    records.sort_by_key(FaultRecord::sort_key);
    records.dedup();
}

/// Counts of *planned* faults, stamped into the JSONL export so a run can
/// be replayed bit-identically from `seed` alone.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Default)]
pub struct FaultSummary {
    /// The seed the plan was built from (0 for hand-built plans).
    pub seed: u64,
    /// Number of channels scheduled to die.
    pub deaths: u64,
    /// Number of planned (cycle, channel) drops.
    pub drops: u64,
    /// Number of planned (cycle, channel) corruptions.
    pub corrupts: u64,
    /// Number of processors scheduled to crash.
    pub crashes: u64,
    /// Number of planned (cycle, processor) stall cycles.
    pub stalls: u64,
}

/// Knobs for [`FaultPlan::random`].
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct ChaosOpts {
    /// Cycle range `[0, horizon)` in which random faults may land.
    pub horizon: u64,
    /// Channels to kill (capped at `k - 1`: at least one channel survives).
    pub deaths: usize,
    /// Transient message drops to plan.
    pub drops: usize,
    /// Transient corruptions to plan.
    pub corrupts: usize,
    /// Stall events to plan.
    pub stalls: usize,
    /// Maximum length (cycles) of each stall event.
    pub max_stall: u64,
    /// Processors to crash. Crashed processors lose their data, so leave
    /// this at 0 for plans that must preserve algorithm output.
    pub crashes: usize,
    /// Correlated-burst storms: each burst picks a seeded start cycle in
    /// `[0, horizon)` and plants one transient per cycle for
    /// [`burst_len`](ChaosOpts::burst_len) consecutive cycles (seeded
    /// channel, seeded drop-or-corrupt coin). Bursts model weather — a
    /// noisy window that clobbers *many adjacent* cycles — rather than the
    /// uniform sprinkle of [`drops`](ChaosOpts::drops) /
    /// [`corrupts`](ChaosOpts::corrupts). 0 disables.
    pub bursts: usize,
    /// Length in cycles of each burst window (values below 1 are treated
    /// as 1 when [`bursts`](ChaosOpts::bursts) `> 0`).
    pub burst_len: u64,
}

impl Default for ChaosOpts {
    fn default() -> Self {
        ChaosOpts {
            horizon: 256,
            deaths: 1,
            drops: 2,
            corrupts: 1,
            stalls: 1,
            max_stall: 2,
            crashes: 0,
            bursts: 0,
            burst_len: 0,
        }
    }
}

impl ChaosOpts {
    /// Preset for **no-oracle** (unplanned) fault detection: channel deaths
    /// landing mid-phase plus transient drops and corruptions, but **no
    /// stalls** — a stalled processor misses a round that everyone else
    /// observes, which desynchronizes the common-knowledge detection the
    /// self-healing protocols rely on (see
    /// [`NetError::EpochDiverged`](crate::NetError::EpochDiverged)).
    pub fn unplanned(horizon: u64) -> Self {
        ChaosOpts {
            horizon,
            deaths: 1,
            drops: 2,
            corrupts: 1,
            stalls: 0,
            max_stall: 0,
            crashes: 0,
            bursts: 0,
            burst_len: 0,
        }
    }

    /// Preset combining a processor crash with a channel death (plus
    /// transients), the hardest no-oracle shape: survivors must both remap
    /// channels *and* adopt the dead processor's roles. Stalls stay
    /// disabled for the same reason as [`ChaosOpts::unplanned`].
    pub fn crash_and_death(horizon: u64) -> Self {
        ChaosOpts {
            crashes: 1,
            ..ChaosOpts::unplanned(horizon)
        }
    }

    /// Preset for **correlated-burst** weather: no uniform transients at
    /// all — every drop/corruption arrives inside one of two seeded storm
    /// windows — plus one channel death. Stalls stay disabled so the shape
    /// is usable by both the resilient and the no-oracle drivers.
    pub fn bursty(horizon: u64) -> Self {
        ChaosOpts {
            drops: 0,
            corrupts: 0,
            bursts: 2,
            burst_len: 6,
            ..ChaosOpts::unplanned(horizon)
        }
    }
}

/// Options for resilient (degraded-mode) execution; see
/// [`ProcCtx::set_resilient`](crate::ProcCtx::set_resilient).
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct ResilientOpts {
    /// Dirty windows tolerated per logical cycle before the processor
    /// escalates [`NetError::Unrecoverable`](crate::NetError::Unrecoverable).
    /// Each planned fault cycle spoils at most one window, so any value
    /// `>= 1 +` (planned fault entries) can never escalate.
    pub retries: u32,
}

impl Default for ResilientOpts {
    fn default() -> Self {
        ResilientOpts { retries: 32 }
    }
}

/// A static, seeded schedule of faults for one run.
///
/// Attach to a network with
/// [`Network::fault_plan`](crate::Network::fault_plan); the plan's `(p, k)`
/// shape must match the network's. All queries are pure functions of the
/// plan and a cycle index, which is what makes degraded runs deterministic
/// and backend-identical.
///
/// ```
/// use mcb_net::{ChanId, FaultPlan, Network, ProcId};
///
/// // Channel 1 dies at cycle 0: the write is lost, the read sees empty.
/// let plan = FaultPlan::new(2, 2).kill_channel(ChanId(1), 0);
/// let report = Network::new(2, 2)
///     .fault_plan(plan)
///     .run(|ctx| {
///         if ctx.id().index() == 0 {
///             ctx.write(ChanId(1), 7u64);
///             None
///         } else {
///             ctx.read(ChanId(1))
///         }
///     })
///     .unwrap();
/// assert_eq!(report.results[1], Some(None)); // message lost
/// assert_eq!(report.metrics.messages, 0); // lost writes are not messages
/// assert_eq!(report.metrics.faults.len(), 1); // ...but they are recorded
/// assert_eq!(report.metrics.faults[0].proc, Some(ProcId(0)));
/// ```
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct FaultPlan {
    seed: u64,
    p: usize,
    k: usize,
    /// `deaths[c]` is the cycle at which channel `c` dies, if ever.
    deaths: Vec<Option<u64>>,
    /// `crashes[i]` is the cycle at (or after) which processor `i` crashes.
    crashes: Vec<Option<u64>>,
    /// Planned (cycle, channel) transmission drops.
    drops: BTreeSet<(u64, usize)>,
    /// Planned (cycle, channel) transmission corruptions.
    corrupts: BTreeSet<(u64, usize)>,
    /// Planned (cycle, processor) I/O blackouts.
    stalls: BTreeSet<(u64, usize)>,
}

impl FaultPlan {
    /// An empty plan for an `MCB(p, k)` network (injects nothing).
    pub fn new(p: usize, k: usize) -> Self {
        FaultPlan {
            seed: 0,
            p,
            k,
            deaths: vec![None; k],
            crashes: vec![None; p],
            drops: BTreeSet::new(),
            corrupts: BTreeSet::new(),
            stalls: BTreeSet::new(),
        }
    }

    /// A seeded random plan: `deaths` channels die (never all `k`), plus
    /// transient drops/corruptions/stalls and optional crashes, all placed
    /// uniformly in `[0, horizon)` by a [`Rng64`] stream. The same
    /// `(seed, p, k, opts)` always builds the same plan.
    pub fn random(seed: u64, p: usize, k: usize, opts: &ChaosOpts) -> Self {
        let mut rng = Rng64::seed_from_u64(seed);
        let mut plan = FaultPlan::new(p, k);
        plan.seed = seed;
        let horizon = opts.horizon.max(1);

        let mut chans: Vec<usize> = (0..k).collect();
        rng.shuffle(&mut chans);
        for &c in chans.iter().take(opts.deaths.min(k.saturating_sub(1))) {
            plan.deaths[c] = Some(rng.random_range(0..horizon));
        }
        for _ in 0..opts.drops {
            plan.drops
                .insert((rng.random_range(0..horizon), rng.random_range(0..k)));
        }
        for _ in 0..opts.corrupts {
            plan.corrupts
                .insert((rng.random_range(0..horizon), rng.random_range(0..k)));
        }
        // Correlated bursts: one transient per cycle of each storm window,
        // on a seeded channel, drop or corrupt by a seeded coin. Windows
        // may overhang the horizon (a storm does not care when the run's
        // nominal fault window ends); `ensure_usable_slots` below thins
        // them like any other transient, so every cycle keeps a usable
        // write slot.
        for _ in 0..opts.bursts {
            let start = rng.random_range(0..horizon);
            for t in start..start + opts.burst_len.max(1) {
                let chan = rng.random_range(0..k);
                if rng.random_range(0..2u64) == 0 {
                    plan.drops.insert((t, chan));
                } else {
                    plan.corrupts.insert((t, chan));
                }
            }
        }
        for _ in 0..opts.stalls {
            let at = rng.random_range(0..horizon);
            let len = 1 + rng.random_range(0..opts.max_stall.max(1));
            let proc = rng.random_range(0..p);
            for t in at..at + len {
                plan.stalls.insert((t, proc));
            }
        }
        let mut procs: Vec<usize> = (0..p).collect();
        rng.shuffle(&mut procs);
        for &i in procs.iter().take(opts.crashes.min(p)) {
            plan.crashes[i] = Some(rng.random_range(0..horizon));
        }
        plan.ensure_usable_slots();
        plan
    }

    /// Cap fix: uniformly-placed transients can pile up so that, in some
    /// cycle, every still-live channel is dropped/corrupted or every
    /// processor is stalled — zero usable write slots, which no retry or
    /// remap can route around. Deterministically thin the plan until every
    /// cycle keeps at least one fault-free live channel and at least one
    /// unstalled processor (deaths already guarantee one eventually-live
    /// channel). Removal order is fixed — drops before corruptions, highest
    /// channel/processor first — so the thinned plan is still a pure
    /// function of `(seed, p, k, opts)`.
    fn ensure_usable_slots(&mut self) {
        let cycles: BTreeSet<u64> = self
            .drops
            .iter()
            .chain(self.corrupts.iter())
            .map(|&(t, _)| t)
            .collect();
        for t in cycles {
            loop {
                let live = self.live_at(t);
                let usable = live
                    .iter()
                    .any(|&c| !self.drops.contains(&(t, c)) && !self.corrupts.contains(&(t, c)));
                if usable || live.is_empty() {
                    break;
                }
                let victim = self
                    .drops
                    .range((t, 0)..=(t, usize::MAX))
                    .next_back()
                    .copied();
                match victim {
                    Some(v) => self.drops.remove(&v),
                    None => {
                        let v = self
                            .corrupts
                            .range((t, 0)..=(t, usize::MAX))
                            .next_back()
                            .copied()
                            .expect("no usable slot implies a transient this cycle");
                        self.corrupts.remove(&v)
                    }
                };
            }
        }
        let stall_cycles: BTreeSet<u64> = self.stalls.iter().map(|&(t, _)| t).collect();
        for t in stall_cycles {
            while self.stalls.range((t, 0)..=(t, usize::MAX)).count() >= self.p {
                let v = self
                    .stalls
                    .range((t, 0)..=(t, usize::MAX))
                    .next_back()
                    .copied()
                    .expect("count >= p >= 1 implies an entry");
                self.stalls.remove(&v);
            }
        }
    }

    /// Kill `chan` permanently from cycle `at` on.
    pub fn kill_channel(mut self, chan: ChanId, at: u64) -> Self {
        assert!(chan.index() < self.k, "channel out of range");
        self.deaths[chan.index()] = Some(at);
        self
    }

    /// Drop the transmission (if any) on `chan` at cycle `at`.
    pub fn drop_message(mut self, at: u64, chan: ChanId) -> Self {
        assert!(chan.index() < self.k, "channel out of range");
        self.drops.insert((at, chan.index()));
        self
    }

    /// Corrupt the transmission (if any) on `chan` at cycle `at`; the
    /// receiver's CRC detects and discards it.
    pub fn corrupt_message(mut self, at: u64, chan: ChanId) -> Self {
        assert!(chan.index() < self.k, "channel out of range");
        self.corrupts.insert((at, chan.index()));
        self
    }

    /// Crash `proc` at the first cycle it executes at or after `at`.
    pub fn crash_proc(mut self, proc: ProcId, at: u64) -> Self {
        assert!(proc.index() < self.p, "processor out of range");
        self.crashes[proc.index()] = Some(at);
        self
    }

    /// Suppress `proc`'s I/O for `len` cycles starting at cycle `from`.
    pub fn stall_proc(mut self, proc: ProcId, from: u64, len: u64) -> Self {
        assert!(proc.index() < self.p, "processor out of range");
        for t in from..from + len {
            self.stalls.insert((t, proc.index()));
        }
        self
    }

    /// The plan's processor count.
    pub fn p(&self) -> usize {
        self.p
    }

    /// The plan's channel count.
    pub fn k(&self) -> usize {
        self.k
    }

    /// The seed the plan was generated from (0 for hand-built plans).
    pub fn seed(&self) -> u64 {
        self.seed
    }

    /// True when channel `chan` is dead at `cycle`.
    pub fn is_dead(&self, chan: usize, cycle: u64) -> bool {
        self.deaths
            .get(chan)
            .copied()
            .flatten()
            .is_some_and(|d| cycle >= d)
    }

    /// Indices of the channels still alive at `cycle`, ascending.
    pub fn live_at(&self, cycle: u64) -> Vec<usize> {
        (0..self.k).filter(|&c| !self.is_dead(c, cycle)).collect()
    }

    /// The eventual number of surviving channels (every planned death has
    /// fired). Lower-bounds `live_at(t).len()` for every `t`, so
    /// `⌈k / min_live⌉` is the lemma's worst-case dilation factor.
    pub fn min_live(&self) -> usize {
        self.k - self.deaths.iter().filter(|d| d.is_some()).count()
    }

    /// The cycle at (or after) which `proc` crashes, if planned.
    pub fn crash_cycle(&self, proc: usize) -> Option<u64> {
        self.crashes.get(proc).copied().flatten()
    }

    /// True when `proc`'s I/O is blacked out at `cycle`.
    pub fn is_stalled(&self, proc: usize, cycle: u64) -> bool {
        self.stalls.contains(&(cycle, proc))
    }

    /// The fault (if any) that suppresses a write by `proc` on `chan` at
    /// `cycle`. Checked transmitter-first: a stalled processor never
    /// transmits, a dead channel carries nothing, and only then can the
    /// transmission itself be dropped or corrupted.
    pub fn write_fault(&self, proc: usize, chan: usize, cycle: u64) -> Option<FaultKind> {
        if self.is_stalled(proc, cycle) {
            Some(FaultKind::Stall)
        } else if self.is_dead(chan, cycle) {
            Some(FaultKind::ChannelDeath)
        } else if self.drops.contains(&(cycle, chan)) {
            Some(FaultKind::Drop)
        } else if self.corrupts.contains(&(cycle, chan)) {
            Some(FaultKind::Corrupt)
        } else {
            None
        }
    }

    /// Carrier-level fault detection for the window `[from, to)`: true when
    /// any planned drop, corruption, or stall lands in the window, or a
    /// channel death fires strictly inside it (a death at or before `from`
    /// is already reflected in `live_at(from)` and needs no retry).
    ///
    /// Pure function of the plan, so every processor of a lock-step run
    /// computes the same answer — the basis of the synchronized retransmit
    /// protocol (see the [module docs](self)).
    pub fn notice(&self, from: u64, to: u64) -> bool {
        if self.drops.range((from, 0)..(to, 0)).next().is_some()
            || self.corrupts.range((from, 0)..(to, 0)).next().is_some()
            || self.stalls.range((from, 0)..(to, 0)).next().is_some()
        {
            return true;
        }
        self.deaths.iter().flatten().any(|&d| from < d && d < to)
    }

    /// Counts of planned faults plus the seed, for the JSONL export.
    pub fn summary(&self) -> FaultSummary {
        FaultSummary {
            seed: self.seed,
            deaths: self.deaths.iter().filter(|d| d.is_some()).count() as u64,
            drops: self.drops.len() as u64,
            corrupts: self.corrupts.len() as u64,
            crashes: self.crashes.iter().filter(|c| c.is_some()).count() as u64,
            stalls: self.stalls.len() as u64,
        }
    }

    /// Number of distinct cycles at which any planned fault can fire; the
    /// retransmit protocol retries at most once per such cycle, so this
    /// bounds both total retries and the `retries` option needed to make a
    /// plan survivable.
    pub fn fault_cycles(&self) -> usize {
        let mut cycles: BTreeSet<u64> = BTreeSet::new();
        cycles.extend(self.drops.iter().map(|&(t, _)| t));
        cycles.extend(self.corrupts.iter().map(|&(t, _)| t));
        cycles.extend(self.stalls.iter().map(|&(t, _)| t));
        cycles.extend(self.deaths.iter().flatten());
        cycles.len()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn builder_and_queries() {
        let plan = FaultPlan::new(4, 3)
            .kill_channel(ChanId(2), 5)
            .drop_message(3, ChanId(0))
            .corrupt_message(4, ChanId(1))
            .stall_proc(ProcId(1), 2, 2)
            .crash_proc(ProcId(3), 9);
        assert!(!plan.is_dead(2, 4));
        assert!(plan.is_dead(2, 5));
        assert_eq!(plan.live_at(4), vec![0, 1, 2]);
        assert_eq!(plan.live_at(5), vec![0, 1]);
        assert_eq!(plan.min_live(), 2);
        assert_eq!(plan.write_fault(0, 0, 3), Some(FaultKind::Drop));
        assert_eq!(plan.write_fault(0, 1, 4), Some(FaultKind::Corrupt));
        assert_eq!(plan.write_fault(1, 0, 2), Some(FaultKind::Stall));
        assert_eq!(plan.write_fault(0, 2, 7), Some(FaultKind::ChannelDeath));
        assert_eq!(plan.write_fault(0, 0, 0), None);
        assert!(plan.is_stalled(1, 3));
        assert!(!plan.is_stalled(1, 4));
        assert_eq!(plan.crash_cycle(3), Some(9));
        let s = plan.summary();
        assert_eq!(
            (s.deaths, s.drops, s.corrupts, s.crashes, s.stalls),
            (1, 1, 1, 1, 2)
        );
        // Retry-relevant fault cycles: stalls at 2 and 3, drop at 3,
        // corrupt at 4, death at 5 = {2, 3, 4, 5}. The crash at 9 is not
        // counted: crashes are permanent and never retried.
        assert_eq!(plan.fault_cycles(), 4);
    }

    #[test]
    fn notice_windows() {
        let plan = FaultPlan::new(2, 2)
            .drop_message(5, ChanId(1))
            .kill_channel(ChanId(0), 8);
        assert!(!plan.notice(0, 5));
        assert!(plan.notice(5, 6)); // drop inside
        assert!(!plan.notice(6, 8));
        assert!(plan.notice(6, 9)); // death strictly inside
        assert!(!plan.notice(8, 10)); // death at window start: already degraded
    }

    #[test]
    fn random_is_deterministic_and_leaves_a_survivor() {
        let opts = ChaosOpts {
            deaths: 10, // far more than k - 1; must be capped
            ..ChaosOpts::default()
        };
        let a = FaultPlan::random(42, 6, 3, &opts);
        let b = FaultPlan::random(42, 6, 3, &opts);
        assert_eq!(a, b);
        assert!(a.min_live() >= 1);
        assert!(a.summary().deaths <= 2);
        let c = FaultPlan::random(43, 6, 3, &opts);
        assert_ne!(a, c, "different seeds should differ");
    }

    #[test]
    fn unplanned_presets_disable_stalls() {
        let u = ChaosOpts::unplanned(100);
        assert_eq!((u.stalls, u.crashes, u.horizon), (0, 0, 100));
        assert!(u.deaths >= 1 && u.drops + u.corrupts >= 1);
        let c = ChaosOpts::crash_and_death(50);
        assert_eq!((c.stalls, c.crashes), (0, 1));
    }

    #[test]
    fn transient_pileup_always_leaves_a_usable_channel() {
        // Dense transients on a tiny network: without the cap fix, some
        // cycle would have every live channel dropped or corrupted.
        let opts = ChaosOpts {
            horizon: 8,
            deaths: 1,
            drops: 40,
            corrupts: 40,
            stalls: 0,
            max_stall: 0,
            crashes: 0,
            bursts: 0,
            burst_len: 0,
        };
        for seed in 0..20 {
            let plan = FaultPlan::random(seed, 4, 2, &opts);
            for t in 0..opts.horizon {
                let live = plan.live_at(t);
                assert!(
                    live.iter().any(|&c| plan.write_fault(0, c, t).is_none()),
                    "seed {seed} cycle {t}: no usable write slot"
                );
            }
        }
    }

    #[test]
    fn single_channel_network_sheds_all_transients() {
        let opts = ChaosOpts {
            horizon: 4,
            deaths: 0,
            drops: 50,
            corrupts: 50,
            stalls: 0,
            max_stall: 0,
            crashes: 0,
            bursts: 0,
            burst_len: 0,
        };
        let plan = FaultPlan::random(7, 3, 1, &opts);
        let s = plan.summary();
        assert_eq!((s.drops, s.corrupts), (0, 0), "k = 1 leaves no room");
    }

    #[test]
    fn stall_pileup_never_stalls_everyone() {
        let opts = ChaosOpts {
            horizon: 6,
            deaths: 0,
            drops: 0,
            corrupts: 0,
            stalls: 30,
            max_stall: 3,
            crashes: 0,
            bursts: 0,
            burst_len: 0,
        };
        for seed in 0..20 {
            let plan = FaultPlan::random(seed, 2, 2, &opts);
            for t in 0..opts.horizon + 3 {
                assert!(
                    (0..2).any(|i| !plan.is_stalled(i, t)),
                    "seed {seed} cycle {t}: every processor stalled"
                );
            }
        }
        // Degenerate p = 1: any stall would stall everyone, so none survive.
        let plan = FaultPlan::random(3, 1, 2, &opts);
        assert_eq!(plan.summary().stalls, 0);
    }

    #[test]
    fn random_thinning_is_deterministic() {
        let opts = ChaosOpts {
            horizon: 8,
            drops: 40,
            corrupts: 40,
            stalls: 20,
            ..ChaosOpts::default()
        };
        assert_eq!(
            FaultPlan::random(9, 3, 2, &opts),
            FaultPlan::random(9, 3, 2, &opts)
        );
    }

    #[test]
    fn bursty_preset_concentrates_transients_in_windows() {
        let opts = ChaosOpts::bursty(128);
        assert_eq!((opts.drops, opts.corrupts), (0, 0), "no uniform sprinkle");
        assert!(opts.bursts >= 1 && opts.burst_len >= 2);
        for seed in 0..10u64 {
            let plan = FaultPlan::random(seed, 4, 3, &opts);
            let s = plan.summary();
            let transients = s.drops + s.corrupts;
            assert!(transients > 0, "seed {seed}: storms planted nothing");
            // Every transient cycle must sit inside one of `bursts`
            // windows of length `burst_len`: the distinct cycles cluster
            // into at most `bursts` runs no longer than the window.
            let mut cycles: Vec<u64> = plan
                .drops
                .iter()
                .chain(plan.corrupts.iter())
                .map(|&(t, _)| t)
                .collect();
            cycles.sort_unstable();
            cycles.dedup();
            let mut runs = 1u64;
            for w in cycles.windows(2) {
                if w[1] - w[0] >= opts.burst_len {
                    runs += 1;
                }
            }
            assert!(
                runs <= opts.bursts as u64,
                "seed {seed}: {runs} separated clusters exceed {} storms",
                opts.bursts
            );
        }
    }

    #[test]
    fn bursts_are_deterministic_and_keep_usable_slots() {
        let opts = ChaosOpts {
            bursts: 3,
            burst_len: 8,
            ..ChaosOpts::bursty(16)
        };
        for seed in 0..20u64 {
            let plan = FaultPlan::random(seed, 3, 2, &opts);
            assert_eq!(plan, FaultPlan::random(seed, 3, 2, &opts));
            // Dense storms on k = 2 with one death: thinning must still
            // leave a fault-free live channel every cycle.
            for t in 0..opts.horizon + opts.burst_len {
                let live = plan.live_at(t);
                assert!(
                    live.iter().any(|&c| plan.write_fault(0, c, t).is_none()),
                    "seed {seed} cycle {t}: storm left no usable write slot"
                );
            }
        }
    }

    #[test]
    fn canonical_order_dedups() {
        let r = |cycle, kind, proc: Option<u32>, chan: Option<u32>| FaultRecord {
            cycle,
            kind,
            proc: proc.map(ProcId),
            chan: chan.map(ChanId),
        };
        let mut recs = vec![
            r(3, FaultKind::Stall, Some(1), None),
            r(1, FaultKind::Drop, Some(0), Some(2)),
            r(3, FaultKind::Stall, Some(1), None),
        ];
        canonicalize(&mut recs);
        assert_eq!(recs.len(), 2);
        assert_eq!(recs[0].cycle, 1);
    }
}
