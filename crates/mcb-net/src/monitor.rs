//! Live run monitoring: streaming metrics you can read *while* a run is in
//! flight.
//!
//! Everything else in the observability stack ([`Metrics`], phase tables,
//! traces, JSONL) materializes only after `run()` returns. A [`RunMonitor`]
//! is the streaming counterpart: attach one to a [`Network`](crate::Network)
//! via [`Network::monitor`](crate::Network::monitor) and every backend —
//! threaded, pooled, vector — publishes into it at cycle, phase, fault, and
//! epoch boundaries. Any thread can call [`RunMonitor::snapshot`] at any
//! time and get a coherent [`MonitorSnapshot`] of the run so far:
//!
//! * the current **cycle**, total **messages**/**bits**, and the count of
//!   **finished** processors (published by the per-round sweep, which every
//!   backend funnels through the engine's shared `tick`);
//! * live **per-phase** message/bit counters with first/last activity
//!   cycles (bumped lock-free on every delivered message);
//! * a **channel-utilization time series**: a fixed-width ring of
//!   per-window message counts, one sample every
//!   [`MonitorOpts::window`] cycles;
//! * **fault and epoch events** as they fire.
//!
//! # Coherence, not atomicity
//!
//! The publish path is wait-free (atomic stores with relaxed ordering; the
//! only locks guard the cold paths — phase-name registration and the
//! bounded event log). A snapshot is therefore *coherent* rather than a
//! point-in-time cut: counters may include activity from the cycle
//! currently executing. The guarantees that hold for any snapshot are the
//! useful ones — the cycle counter is monotone across snapshots, and every
//! live counter is bounded by its final [`Metrics`] total. The **final**
//! snapshot (taken after the run completes, surfaced as
//! [`RunReport::monitor`](crate::RunReport::monitor)) contains only model
//! quantities and is deterministic and backend-identical, which is why it
//! can ride in the byte-diffed JSONL export.
//!
//! ```
//! use mcb_net::{ChanId, Network, RunMonitor};
//!
//! let monitor = RunMonitor::new();
//! let report = Network::new(4, 2)
//!     .monitor(&monitor)
//!     .run(|ctx| {
//!         ctx.phase("spread");
//!         if ctx.id().index() == 0 {
//!             ctx.write(ChanId(0), 7u64);
//!         } else {
//!             ctx.read(ChanId(0));
//!         }
//!     })
//!     .unwrap();
//! let snap = monitor.snapshot();
//! assert_eq!(snap.state, mcb_net::MonitorState::Done);
//! assert_eq!(snap.messages, report.metrics.messages);
//! assert_eq!(snap.phases[0].name, "spread");
//! ```
//!
//! [`Metrics`]: crate::Metrics

use crate::fault::FaultRecord;
use crate::metrics::Metrics;
use crate::sync::Mutex;
use std::collections::VecDeque;
use std::fmt;
use std::sync::atomic::{AtomicU64, AtomicU8, Ordering};
use std::sync::Arc;

/// Phase rows tracked live. Interner ids at or above this cap still count
/// toward run totals but get no per-phase live row (no protocol in the
/// repo comes near it; the post-hoc phase table is unaffected).
const PHASE_SLOTS: usize = 256;

/// Sentinel for "phase has seen no activity yet".
const UNSET: u64 = u64::MAX;

/// Configuration for a [`RunMonitor`].
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct MonitorOpts {
    /// Cycles per utilization sample: every `window` completed rounds, the
    /// number of messages delivered in that window is pushed into the
    /// time-series ring. Must be ≥ 1.
    pub window: u64,
    /// Ring capacity: how many of the most recent window samples a
    /// snapshot can see.
    pub ring: usize,
    /// Bounded capacity of the fault/epoch event log (oldest dropped).
    pub events: usize,
}

impl Default for MonitorOpts {
    fn default() -> Self {
        MonitorOpts {
            window: 64,
            ring: 64,
            events: 64,
        }
    }
}

/// Where the monitored run currently stands.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Default)]
pub enum MonitorState {
    /// No run has started publishing yet.
    #[default]
    Idle,
    /// A run is in flight.
    Running,
    /// The run completed and the final totals are published.
    Done,
    /// The run failed (collision, panic, budget, …); counters hold the
    /// values reached before the failure.
    Failed,
}

impl MonitorState {
    /// Lowercase label, for display and export.
    pub fn as_str(self) -> &'static str {
        match self {
            MonitorState::Idle => "idle",
            MonitorState::Running => "running",
            MonitorState::Done => "done",
            MonitorState::Failed => "failed",
        }
    }
}

/// One live per-phase row of a [`MonitorSnapshot`].
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct MonitorPhase {
    /// The phase label.
    pub name: String,
    /// Messages delivered while this phase was the sender's active label.
    pub messages: u64,
    /// Sum of bit widths over those messages.
    pub total_bits: u64,
    /// Cycle of the phase's first delivered message.
    pub first_cycle: u64,
    /// Cycle of the phase's most recent delivered message.
    pub last_cycle: u64,
}

/// One fault or epoch event observed by the monitor.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct MonitorEvent {
    /// Cycle at which the event fired.
    pub cycle: u64,
    /// `"fault:<kind>"` (e.g. `"fault:channel_death"`) or `"epoch:<n>"`.
    pub label: String,
}

/// A coherent view of a monitored run, returned by
/// [`RunMonitor::snapshot`]. See the [module docs](self) for the coherence
/// contract.
#[derive(Debug, Clone, PartialEq, Eq, Default)]
pub struct MonitorSnapshot {
    /// Run lifecycle position at snapshot time.
    pub state: MonitorState,
    /// Processors in the monitored network.
    pub p: usize,
    /// Channels in the monitored network.
    pub k: usize,
    /// Completed engine rounds (monotone across snapshots of one run).
    pub cycle: u64,
    /// Messages delivered up to the last completed round.
    pub messages: u64,
    /// Sum of bit widths over all delivered messages.
    pub total_bits: u64,
    /// Processors that have finished (returned, crashed, or panicked).
    pub finished: usize,
    /// Cycles per utilization window sample.
    pub window: u64,
    /// Total window samples recorded so far (may exceed `util.len()` once
    /// the ring wraps).
    pub windows: u64,
    /// The most recent per-window message counts, oldest first. With the
    /// final snapshot's tail flush, the last entry may cover a partial
    /// window (`cycle % window` cycles).
    pub util: Vec<u64>,
    /// Live per-phase rows, ordered by (first activity, name) — the same
    /// deterministic order as [`Metrics::phases`](crate::Metrics::phases).
    pub phases: Vec<MonitorPhase>,
    /// The most recent fault/epoch events, oldest first (bounded by
    /// [`MonitorOpts::events`]).
    pub events: Vec<MonitorEvent>,
}

impl MonitorSnapshot {
    /// Channel utilization of window sample `i` as a fraction in
    /// `[0, 1]`: messages delivered in the window over `window × k`
    /// channel-slots. Returns 0.0 out of range or before the shape is
    /// known.
    pub fn util_fraction(&self, i: usize) -> f64 {
        let slots = self.window.saturating_mul(self.k as u64);
        match self.util.get(i) {
            Some(&m) if slots > 0 => m as f64 / slots as f64,
            _ => 0.0,
        }
    }

    /// Sum of all per-phase message counters — by construction never more
    /// than the run's final total (each live bump mirrors a delivered
    /// message).
    pub fn phase_message_sum(&self) -> u64 {
        self.phases.iter().map(|ph| ph.messages).sum()
    }
}

/// The monitor's shared state. Hot-path publishes are atomic stores /
/// fetch-adds; the two mutexes guard cold paths only (phase-label
/// registration happens on label transitions, event pushes on faults and
/// epochs).
pub(crate) struct MonitorCore {
    opts: MonitorOpts,
    state: AtomicU8,
    p: AtomicU64,
    k: AtomicU64,
    cycle: AtomicU64,
    messages: AtomicU64,
    total_bits: AtomicU64,
    finished: AtomicU64,
    phase_msgs: Box<[AtomicU64]>,
    phase_bits: Box<[AtomicU64]>,
    phase_first: Box<[AtomicU64]>,
    phase_last: Box<[AtomicU64]>,
    /// Registered phase labels: `(interner id, name)`, pushed by
    /// [`register_phase`](Self::register_phase) under the run's phase lock.
    names: Mutex<Vec<(u16, String)>>,
    ring: Box<[AtomicU64]>,
    windows: AtomicU64,
    window_base: AtomicU64,
    events: Mutex<VecDeque<MonitorEvent>>,
}

impl fmt::Debug for MonitorCore {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        f.debug_struct("MonitorCore")
            .field("cycle", &self.cycle.load(Ordering::Relaxed))
            .finish_non_exhaustive()
    }
}

fn atomic_row(n: usize) -> Box<[AtomicU64]> {
    (0..n).map(|_| AtomicU64::new(0)).collect()
}

impl MonitorCore {
    fn new(opts: MonitorOpts) -> Self {
        let opts = MonitorOpts {
            window: opts.window.max(1),
            ring: opts.ring.max(1),
            events: opts.events.max(1),
        };
        MonitorCore {
            state: AtomicU8::new(0),
            p: AtomicU64::new(0),
            k: AtomicU64::new(0),
            cycle: AtomicU64::new(0),
            messages: AtomicU64::new(0),
            total_bits: AtomicU64::new(0),
            finished: AtomicU64::new(0),
            phase_msgs: atomic_row(PHASE_SLOTS),
            phase_bits: atomic_row(PHASE_SLOTS),
            phase_first: atomic_row(PHASE_SLOTS),
            phase_last: atomic_row(PHASE_SLOTS),
            names: Mutex::new(Vec::new()),
            ring: atomic_row(opts.ring),
            windows: AtomicU64::new(0),
            window_base: AtomicU64::new(0),
            events: Mutex::new(VecDeque::new()),
            opts,
        }
    }

    /// Re-arm for a fresh run of shape `(p, k)` (called by `Shared::new`
    /// when the monitor is attached; attaching one monitor to concurrent
    /// runs is unsupported — last reset wins).
    pub(crate) fn reset(&self, p: usize, k: usize) {
        self.p.store(p as u64, Ordering::Relaxed);
        self.k.store(k as u64, Ordering::Relaxed);
        self.cycle.store(0, Ordering::Relaxed);
        self.messages.store(0, Ordering::Relaxed);
        self.total_bits.store(0, Ordering::Relaxed);
        self.finished.store(0, Ordering::Relaxed);
        for i in 0..PHASE_SLOTS {
            self.phase_msgs[i].store(0, Ordering::Relaxed);
            self.phase_bits[i].store(0, Ordering::Relaxed);
            self.phase_first[i].store(UNSET, Ordering::Relaxed);
            self.phase_last[i].store(0, Ordering::Relaxed);
        }
        self.names.lock().clear();
        for slot in &self.ring {
            slot.store(0, Ordering::Relaxed);
        }
        self.windows.store(0, Ordering::Relaxed);
        self.window_base.store(0, Ordering::Relaxed);
        self.events.lock().clear();
        self.state
            .store(MonitorState::Running as u8, Ordering::Release);
    }

    /// Per-round publish, called by the elected sweeper from
    /// `Shared::tick` — exactly one caller per round on every backend.
    pub(crate) fn on_cycle(&self, completed: u64, msg_total: u64, finished: usize) {
        self.messages.store(msg_total, Ordering::Relaxed);
        self.finished.store(finished as u64, Ordering::Relaxed);
        if completed.is_multiple_of(self.opts.window) {
            let base = self.window_base.swap(msg_total, Ordering::Relaxed);
            let w = self.windows.load(Ordering::Relaxed);
            self.ring[(w % self.ring.len() as u64) as usize]
                .store(msg_total.saturating_sub(base), Ordering::Relaxed);
            self.windows.store(w + 1, Ordering::Relaxed);
        }
        // Cycle is published last (release) so a snapshot that observes
        // round N also observes N's message total and window sample.
        self.cycle.store(completed, Ordering::Release);
    }

    /// Per-message publish from the write path (threaded/pooled
    /// `apply_write` and the vector driver's inlined write loop).
    #[inline]
    pub(crate) fn on_message(&self, phase: u16, bits: u32, now: u64) {
        self.total_bits
            .fetch_add(u64::from(bits), Ordering::Relaxed);
        let idx = phase as usize;
        if idx == 0 || idx >= PHASE_SLOTS {
            return;
        }
        self.phase_msgs[idx].fetch_add(1, Ordering::Relaxed);
        self.phase_bits[idx].fetch_add(u64::from(bits), Ordering::Relaxed);
        self.phase_first[idx].fetch_min(now, Ordering::Relaxed);
        self.phase_last[idx].fetch_max(now, Ordering::Relaxed);
    }

    /// Associate interner id `id` with `name` (called from the run's phase
    /// interner, on label transitions only).
    pub(crate) fn register_phase(&self, id: u16, name: &str) {
        let mut names = self.names.lock();
        if !names.iter().any(|(i, _)| *i == id) {
            names.push((id, name.to_owned()));
        }
    }

    /// Append a fault event.
    pub(crate) fn on_fault(&self, rec: &FaultRecord) {
        self.push_event(rec.cycle, format!("fault:{}", rec.kind.as_str()));
    }

    /// Append an epoch-reconfiguration event.
    pub(crate) fn on_epoch(&self, epoch: u64, cycle: u64) {
        self.push_event(cycle, format!("epoch:{epoch}"));
    }

    fn push_event(&self, cycle: u64, label: String) {
        let mut events = self.events.lock();
        // A stall suppresses both the write and the read of one cycle and
        // records twice; collapse consecutive duplicates like the post-hoc
        // canonicalization does.
        if events
            .back()
            .is_some_and(|e| e.cycle == cycle && e.label == label)
        {
            return;
        }
        if events.len() == self.opts.events {
            events.pop_front();
        }
        events.push_back(MonitorEvent { cycle, label });
    }

    /// Publish the final totals (and flush the partial tail window) once
    /// the run's metrics are assembled. All values are model quantities, so
    /// the snapshot taken after this call is deterministic and
    /// backend-identical.
    pub(crate) fn finish(&self, metrics: &Metrics) {
        if !metrics.rounds.is_multiple_of(self.opts.window) {
            let base = self.window_base.swap(metrics.messages, Ordering::Relaxed);
            let w = self.windows.load(Ordering::Relaxed);
            self.ring[(w % self.ring.len() as u64) as usize]
                .store(metrics.messages.saturating_sub(base), Ordering::Relaxed);
            self.windows.store(w + 1, Ordering::Relaxed);
        }
        self.messages.store(metrics.messages, Ordering::Relaxed);
        self.total_bits.store(metrics.total_bits, Ordering::Relaxed);
        self.finished
            .store(metrics.per_proc_cycles.len() as u64, Ordering::Relaxed);
        self.cycle.store(metrics.rounds, Ordering::Relaxed);
        self.state
            .store(MonitorState::Done as u8, Ordering::Release);
    }

    /// Mark the run failed (counters keep their last published values).
    pub(crate) fn mark_failed(&self) {
        self.state
            .store(MonitorState::Failed as u8, Ordering::Release);
    }

    fn state(&self) -> MonitorState {
        match self.state.load(Ordering::Acquire) {
            1 => MonitorState::Running,
            2 => MonitorState::Done,
            3 => MonitorState::Failed,
            _ => MonitorState::Idle,
        }
    }

    pub(crate) fn snapshot(&self) -> MonitorSnapshot {
        let state = self.state();
        let cycle = self.cycle.load(Ordering::Acquire);
        let windows = self.windows.load(Ordering::Relaxed);
        let len = self.ring.len() as u64;
        let visible = windows.min(len);
        let util = (windows - visible..windows)
            .map(|w| self.ring[(w % len) as usize].load(Ordering::Relaxed))
            .collect();
        let mut phases: Vec<MonitorPhase> = self
            .names
            .lock()
            .iter()
            .filter_map(|(id, name)| {
                let idx = *id as usize;
                if idx >= PHASE_SLOTS {
                    return None;
                }
                let messages = self.phase_msgs[idx].load(Ordering::Relaxed);
                if messages == 0 {
                    return None;
                }
                Some(MonitorPhase {
                    name: name.clone(),
                    messages,
                    total_bits: self.phase_bits[idx].load(Ordering::Relaxed),
                    first_cycle: self.phase_first[idx].load(Ordering::Relaxed),
                    last_cycle: self.phase_last[idx].load(Ordering::Relaxed),
                })
            })
            .collect();
        // Interner ids are scheduling-dependent; (first activity, name) is
        // not. Same re-keying as the post-hoc phase table.
        phases.sort_by(|a, b| (a.first_cycle, &a.name).cmp(&(b.first_cycle, &b.name)));
        MonitorSnapshot {
            state,
            p: self.p.load(Ordering::Relaxed) as usize,
            k: self.k.load(Ordering::Relaxed) as usize,
            cycle,
            messages: self.messages.load(Ordering::Relaxed),
            total_bits: self.total_bits.load(Ordering::Relaxed),
            finished: self.finished.load(Ordering::Relaxed) as usize,
            window: self.opts.window,
            windows,
            util,
            phases,
            events: self.events.lock().iter().cloned().collect(),
        }
    }
}

/// A cloneable handle for observing a run live.
///
/// Attach with [`Network::monitor`](crate::Network::monitor), then call
/// [`snapshot`](Self::snapshot) from any thread — including while the run
/// executes. One monitor observes one run at a time (a new run resets it);
/// see the [module docs](self) for the coherence contract.
#[derive(Debug, Clone, Default)]
pub struct RunMonitor {
    core: Arc<MonitorCore>,
}

impl Default for MonitorCore {
    fn default() -> Self {
        MonitorCore::new(MonitorOpts::default())
    }
}

impl RunMonitor {
    /// A monitor with default [`MonitorOpts`].
    pub fn new() -> Self {
        RunMonitor::default()
    }

    /// A monitor with explicit window/ring/event-log sizing.
    pub fn with_opts(opts: MonitorOpts) -> Self {
        RunMonitor {
            core: Arc::new(MonitorCore::new(opts)),
        }
    }

    /// A coherent view of the monitored run's progress so far.
    pub fn snapshot(&self) -> MonitorSnapshot {
        self.core.snapshot()
    }

    /// The shared core, for the engine to publish into.
    pub(crate) fn core(&self) -> Arc<MonitorCore> {
        Arc::clone(&self.core)
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::fault::FaultKind;
    use crate::ids::ProcId;

    #[test]
    fn fresh_monitor_is_idle_and_empty() {
        let snap = RunMonitor::new().snapshot();
        assert_eq!(snap.state, MonitorState::Idle);
        assert_eq!((snap.cycle, snap.messages, snap.finished), (0, 0, 0));
        assert!(snap.util.is_empty() && snap.phases.is_empty() && snap.events.is_empty());
    }

    #[test]
    fn window_ring_keeps_the_most_recent_samples() {
        let core = MonitorCore::new(MonitorOpts {
            window: 2,
            ring: 3,
            events: 4,
        });
        core.reset(4, 2);
        // 5 windows of deltas 10, 10, 10, 30, 40 over 10 rounds.
        let totals = [0, 10, 10, 20, 20, 30, 30, 60, 60, 100];
        for (round0, &total) in totals.iter().enumerate() {
            core.on_cycle(round0 as u64 + 1, total, 0);
        }
        let snap = core.snapshot();
        assert_eq!(snap.windows, 5);
        assert_eq!(snap.util, vec![10, 30, 40], "ring keeps the newest 3");
        assert_eq!(snap.cycle, 10);
        // window=2, k=2 → 4 slots per window.
        assert!((snap.util_fraction(2) - 10.0).abs() < 1e-12);
    }

    #[test]
    fn phase_rows_sort_by_first_activity_and_name() {
        let core = MonitorCore::default();
        core.reset(2, 1);
        core.register_phase(2, "late");
        core.register_phase(1, "early");
        core.on_message(2, 8, 50);
        core.on_message(1, 4, 10);
        core.on_message(1, 4, 20);
        let snap = core.snapshot();
        let names: Vec<&str> = snap.phases.iter().map(|p| p.name.as_str()).collect();
        assert_eq!(names, ["early", "late"]);
        assert_eq!(snap.phases[0].messages, 2);
        assert_eq!(snap.phases[0].total_bits, 8);
        assert_eq!(
            (snap.phases[0].first_cycle, snap.phases[0].last_cycle),
            (10, 20)
        );
        assert_eq!(snap.total_bits, 16);
        assert_eq!(snap.phase_message_sum(), 3);
    }

    #[test]
    fn event_log_dedups_and_bounds() {
        let core = MonitorCore::new(MonitorOpts {
            window: 1,
            ring: 1,
            events: 2,
        });
        core.reset(2, 1);
        let rec = FaultRecord {
            cycle: 5,
            kind: FaultKind::Stall,
            proc: Some(ProcId::from_index(1)),
            chan: None,
        };
        core.on_fault(&rec);
        core.on_fault(&rec); // write+read of one stalled cycle → one event
        core.on_epoch(1, 9);
        core.on_epoch(2, 12); // capacity 2: the stall event falls off
        let snap = core.snapshot();
        let labels: Vec<&str> = snap.events.iter().map(|e| e.label.as_str()).collect();
        assert_eq!(labels, ["epoch:1", "epoch:2"]);
    }

    #[test]
    fn reset_rearms_for_a_new_run() {
        let core = MonitorCore::default();
        core.reset(4, 2);
        core.register_phase(1, "x");
        core.on_message(1, 8, 0);
        core.on_cycle(1, 1, 0);
        core.on_epoch(1, 1);
        core.reset(8, 4);
        let snap = core.snapshot();
        assert_eq!(snap.state, MonitorState::Running);
        assert_eq!((snap.p, snap.k), (8, 4));
        assert_eq!((snap.messages, snap.total_bits, snap.windows), (0, 0, 0));
        assert!(snap.phases.is_empty() && snap.events.is_empty());
    }
}
