//! A reusable sense-reversing barrier.
//!
//! The lock-step engine synchronizes `p` processor threads three times per
//! cycle, so the barrier is the hottest synchronization primitive in the
//! whole simulator. `std::sync::Barrier` takes a mutex on every wait; this
//! centralized sense-reversing barrier (the classic design, see e.g. *Rust
//! Atomics and Locks* ch. 4/9 for the spin-then-yield idiom) needs one
//! `fetch_add` per waiter and an exponential-backoff spin that degrades to
//! `thread::yield_now` when the machine is oversubscribed — which it usually
//! is, since we simulate `p` processors on fewer cores.

use crate::sync::{Backoff, CachePadded};
use std::sync::atomic::{AtomicBool, AtomicUsize, Ordering};

/// A reusable barrier for a fixed set of `total` threads.
///
/// Each participating thread must own a [`Sense`] token and pass it to every
/// [`wait`](SenseBarrier::wait) call. All participants must call `wait` the
/// same number of times.
pub struct SenseBarrier {
    count: CachePadded<AtomicUsize>,
    sense: CachePadded<AtomicBool>,
    total: usize,
}

/// Per-thread barrier phase token. One per participating thread.
#[derive(Debug, Default)]
pub struct Sense(bool);

impl Sense {
    /// Fresh token for a thread about to start waiting on a barrier.
    pub fn new() -> Self {
        Self::default()
    }
}

impl SenseBarrier {
    /// A barrier for exactly `total` threads. `total` must be nonzero.
    pub fn new(total: usize) -> Self {
        assert!(total > 0, "barrier needs at least one participant");
        SenseBarrier {
            count: CachePadded::new(AtomicUsize::new(0)),
            sense: CachePadded::new(AtomicBool::new(false)),
            total,
        }
    }

    /// Number of participating threads.
    pub fn participants(&self) -> usize {
        self.total
    }

    /// Block until all `total` threads have called `wait` with their tokens.
    ///
    /// Returns `true` on the thread that arrived last (the "winner"), which
    /// is occasionally useful for electing a thread to do per-phase cleanup.
    pub fn wait(&self, sense: &mut Sense) -> bool {
        let my_sense = !sense.0;
        sense.0 = my_sense;
        if self.count.fetch_add(1, Ordering::AcqRel) + 1 == self.total {
            // Last arriver: reset the counter, then release everyone by
            // flipping the global sense to match the waiters' new sense.
            self.count.store(0, Ordering::Relaxed);
            self.sense.store(my_sense, Ordering::Release);
            true
        } else {
            let mut backoff = Backoff::new();
            while self.sense.load(Ordering::Acquire) != my_sense {
                // `snooze` spins briefly then yields, which keeps latency
                // low when p <= cores and avoids starvation when p > cores.
                backoff.snooze();
            }
            false
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use std::sync::atomic::{AtomicU64, Ordering};
    use std::sync::Arc;

    #[test]
    fn single_thread_never_blocks() {
        let b = SenseBarrier::new(1);
        let mut s = Sense::new();
        for _ in 0..100 {
            assert!(b.wait(&mut s), "sole participant is always the winner");
        }
    }

    #[test]
    fn phases_are_strictly_separated() {
        // Each thread increments a shared counter between barrier episodes;
        // after every episode all threads must observe the same total.
        const THREADS: usize = 8;
        const ROUNDS: usize = 200;
        let barrier = Arc::new(SenseBarrier::new(THREADS));
        let counter = Arc::new(AtomicU64::new(0));

        let handles: Vec<_> = (0..THREADS)
            .map(|_| {
                let barrier = Arc::clone(&barrier);
                let counter = Arc::clone(&counter);
                std::thread::spawn(move || {
                    let mut sense = Sense::new();
                    for round in 1..=ROUNDS {
                        counter.fetch_add(1, Ordering::Relaxed);
                        barrier.wait(&mut sense);
                        let seen = counter.load(Ordering::Relaxed);
                        assert_eq!(
                            seen as usize,
                            THREADS * round,
                            "phase leak at round {round}"
                        );
                        barrier.wait(&mut sense);
                    }
                })
            })
            .collect();
        for h in handles {
            h.join().unwrap();
        }
    }

    #[test]
    fn exactly_one_winner_per_episode() {
        const THREADS: usize = 6;
        const ROUNDS: usize = 100;
        let barrier = Arc::new(SenseBarrier::new(THREADS));
        let winners = Arc::new(AtomicU64::new(0));

        let handles: Vec<_> = (0..THREADS)
            .map(|_| {
                let barrier = Arc::clone(&barrier);
                let winners = Arc::clone(&winners);
                std::thread::spawn(move || {
                    let mut sense = Sense::new();
                    for _ in 0..ROUNDS {
                        if barrier.wait(&mut sense) {
                            winners.fetch_add(1, Ordering::Relaxed);
                        }
                    }
                })
            })
            .collect();
        for h in handles {
            h.join().unwrap();
        }
        assert_eq!(winners.load(Ordering::Relaxed) as usize, ROUNDS);
    }

    #[test]
    #[should_panic(expected = "at least one participant")]
    fn zero_participants_rejected() {
        let _ = SenseBarrier::new(0);
    }
}
