//! Phase-scoped attribution of cycles and messages.
//!
//! The paper states every cost bound *per phase* — Columnsort's eight
//! transform phases (§5), selection's filtering rounds (§8), Partial-Sums'
//! tree sweeps (§7.1) — so the engine lets protocols label the cycles they
//! execute. A label set with [`ProcCtx::phase`](crate::ProcCtx::phase) (or
//! [`StepEnv::phase`](crate::StepEnv::phase) / `VirtCtx::phase`) applies to
//! every subsequent cycle and message of that processor until the label
//! changes; the engine aggregates the per-processor tallies into the
//! [`Metrics::phases`](crate::Metrics::phases) table and stamps trace
//! events with the phase they were sent in.
//!
//! # The lock-step invariant
//!
//! Per-phase `cycles` is the **maximum** over processors of the cycles each
//! spent in that phase (the same convention as whole-run
//! [`Metrics::cycles`](crate::Metrics::cycles)). The repo's algorithm
//! subroutines are *lock-step*: every processor enters and leaves each
//! labelled phase at the same cycle (non-participants idle inside the same
//! subroutine), so each processor spends the identical cycle count in each
//! phase and the per-phase cycle counts sum exactly to the whole-run total.
//! Protocols that label phases at different times on different processors
//! still get correct per-phase message counts, but the per-phase cycle
//! *maxima* may then overlap and sum to more than the whole-run maximum.
//!
//! # Nesting convention
//!
//! Subroutines meant to be callable both standalone and from a larger
//! labelled algorithm only set their own labels when the caller has not set
//! one (checked via [`phase_label`](PhaseTarget::phase_label)); that way
//! selection's `filter:N` rounds subsume the sorts and partial-sums sweeps
//! they contain, while a standalone partial-sums run still reports its
//! sweeps.

use std::ops::{Deref, DerefMut};

/// Anything that carries a current phase label ([`ProcCtx`](crate::ProcCtx)
/// and [`VirtCtx`](crate::VirtCtx)).
///
/// The label is plain data: setting it never costs a cycle or a message.
pub trait PhaseTarget {
    /// Label all subsequent cycles/messages of this processor; `""` returns
    /// to unlabelled.
    fn set_phase_label(&mut self, name: &str);

    /// The currently active label (`""` when unlabelled).
    fn phase_label(&self) -> &str;
}

/// RAII guard that restores the previous phase label on drop.
///
/// Created by [`ProcCtx::phase_scope`](crate::ProcCtx::phase_scope) (or the
/// `VirtCtx` equivalent); derefs to the underlying context so the guarded
/// region can keep issuing cycles:
///
/// ```
/// use mcb_net::{ChanId, Network};
///
/// let report = Network::new(2, 1)
///     .run(|ctx| {
///         {
///             let mut ctx = ctx.phase_scope("exchange");
///             if ctx.id().index() == 0 {
///                 ctx.write(ChanId(0), 1u64);
///             } else {
///                 ctx.read(ChanId(0));
///             }
///         } // label restored here
///         ctx.idle();
///     })
///     .unwrap();
/// let table = &report.metrics.phases;
/// assert_eq!(table.len(), 1);
/// assert_eq!(table[0].name, "exchange");
/// assert_eq!((table[0].cycles, table[0].messages), (1, 1));
/// ```
pub struct PhaseScope<'s, C: PhaseTarget> {
    ctx: &'s mut C,
    prev: String,
}

impl<'s, C: PhaseTarget> PhaseScope<'s, C> {
    pub(crate) fn enter(ctx: &'s mut C, name: &str) -> Self {
        let prev = ctx.phase_label().to_owned();
        ctx.set_phase_label(name);
        PhaseScope { ctx, prev }
    }
}

impl<C: PhaseTarget> Deref for PhaseScope<'_, C> {
    type Target = C;
    fn deref(&self) -> &C {
        self.ctx
    }
}

impl<C: PhaseTarget> DerefMut for PhaseScope<'_, C> {
    fn deref_mut(&mut self) -> &mut C {
        self.ctx
    }
}

impl<C: PhaseTarget> Drop for PhaseScope<'_, C> {
    fn drop(&mut self) {
        let prev = std::mem::take(&mut self.prev);
        self.ctx.set_phase_label(&prev);
    }
}
