//! The vector (struct-of-arrays) execution backend.
//!
//! The pooled backend already removes per-processor threads for
//! [`StepProtocol`] machines, but it still pays per-unit dispatch — a
//! `UnitSlot` walk, a `Request`/`Resume` exchange, and a worker barrier —
//! for every processor in every cycle, including the processors that do
//! nothing. This backend removes those costs too: it runs on **one**
//! thread, keeps all per-processor state in flat columns (machine, write
//! intent, read intent, read result, metrics, status), and executes each
//! cycle as tight loops over the *active* processors only:
//!
//! 1. **write phase** — for each active processor: planned-crash check,
//!    then deposit its write intent into the channel columns (same
//!    validation, fault, framing, trace, and accounting rules as
//!    [`Shared::apply_write`], inlined over the columns);
//! 2. **read phase** — for each active processor: resolve its read intent
//!    against the channel columns ([`Shared::apply_read`] semantics) and
//!    account the cycle;
//! 3. **sweep** — clear only the *dirty* channel columns, then run the
//!    shared [`Shared::tick`] (port validation, clock, budget, watchdog,
//!    termination) so every run-level decision is taken by the exact same
//!    code as the other backends;
//! 4. **collect** — wake sleepers that are due, then advance each active
//!    machine by one [`step`](StepProtocol::step) call.
//!
//! The active-set discipline is what unlocks `p >= 10^5`: a machine that
//! yields [`Step::IdleFor`]`(n)` is parked in a wake-time min-heap and its
//! `n` idle cycles are bulk-accounted up front, so a protocol in which `k`
//! owners work while `p - k` processors idle (networked Columnsort, say)
//! costs `O(active + dirty)` per cycle instead of `O(p)`.
//!
//! Only [`StepProtocol`] machines can be vectorized — a closure protocol
//! blocks inside [`ProcCtx::cycle`](crate::ProcCtx::cycle) and needs a
//! suspended call stack per processor, which a columnar driver cannot
//! provide — so [`Network::run`] under [`Backend::Vector`] delegates to the
//! pooled fiber driver and only [`Network::run_steps`] lands here.
//!
//! Equivalence with the other backends is structural: the round loop
//! mirrors the pooled driver's phase order exactly, the write/read loops
//! inline `apply_write`/`apply_read` over the columns rule for rule, and
//! everything downstream (fault canonicalization, phase re-keying, trace
//! ordering, the JSONL export) goes through the same
//! [`assemble_report`] — pinned end-to-end by the `backend_equivalence`
//! integration suite.

use crate::engine::{
    assemble_report, panic_message, Backend, Escalated, Network, RunReport, Shared,
};
use crate::error::NetError;
use crate::fault::{FaultKind, FaultRecord};
use crate::frame::FRAME_HEADER_BITS;
use crate::ids::{ChanId, ProcId};
use crate::message::MsgWidth;
use crate::metrics::{LocalMetrics, LogHistogram};
use crate::step::{Step, StepEnv, StepProtocol};
use crate::trace::Event;
use std::cmp::Reverse;
use std::collections::BinaryHeap;
use std::panic::{catch_unwind, AssertUnwindSafe};
use std::sync::atomic::Ordering;
use std::time::Instant;

/// Where a logical processor currently lives in the driver.
#[derive(Clone, Copy, PartialEq, Eq)]
enum Status {
    /// In the active list: participates in every phase of every cycle.
    Active,
    /// Parked in the sleeper heap (mid-[`Step::IdleFor`] span) or doomed in
    /// the crash heap; skipped by every per-cycle loop.
    Asleep,
    /// Finished, crashed, or panicked; its column entries are inert.
    Done,
}

/// The per-processor state columns. One entry per logical processor in
/// every column; the per-cycle loops touch only the rows named by the
/// active list.
struct Cols<M, S: StepProtocol<M>> {
    /// The state machines (`None` once retired).
    machines: Vec<Option<S>>,
    /// Per-processor cycle/message/phase accounting.
    locals: Vec<LocalMetrics>,
    status: Vec<Status>,
    /// Pending write intent for the current cycle.
    w: Vec<Option<(ChanId, M)>>,
    /// Pending read intent for the current cycle.
    r: Vec<Option<ChanId>>,
    /// Read result to feed the next `step` call.
    inputs: Vec<Option<M>>,
    results: Vec<Option<S::Output>>,
    /// `(wake_round, proc)` min-heap of sleeping processors.
    sleepers: BinaryHeap<Reverse<(u64, usize)>>,
    /// `(crash_round, proc)` min-heap of sleepers whose planned crash
    /// falls inside their idle span: they die at that round instead of
    /// waking.
    crashes: BinaryHeap<Reverse<(u64, usize)>>,
    p: usize,
    k: usize,
}

impl<M, S> Cols<M, S>
where
    M: Clone + Send + Sync + MsgWidth,
    S: StepProtocol<M>,
{
    /// Retire processor `i`: out of every future loop, machine dropped,
    /// run-level finished count bumped (the same bump the other backends
    /// make for a finished, crashed, or panicked processor).
    fn retire(&mut self, shared: &Shared<M>, i: usize) {
        self.status[i] = Status::Done;
        self.machines[i] = None;
        shared.finished.fetch_add(1, Ordering::AcqRel);
    }

    /// Advance machine `i` by one `step` call at round `now` and absorb
    /// what it wants next into the columns. Mirrors the pooled driver's
    /// `StepUnit::collect` + `absorb`, plus the [`Step::IdleFor`] parking
    /// that only this backend implements natively.
    fn collect_one(&mut self, shared: &Shared<M>, i: usize, now: u64) {
        let id = ProcId::from_index(i);
        let env = StepEnv::new(
            id,
            self.p,
            self.k,
            now,
            self.locals[i].cycles,
            self.locals[i].messages,
        );
        let input = self.inputs[i].take();
        let machine = self.machines[i]
            .as_mut()
            .expect("active processor has a machine");
        match catch_unwind(AssertUnwindSafe(|| machine.step(&env, input))) {
            Ok(Step::Yield { write, read }) => {
                // A phase requested during `step` labels the yielded cycle
                // (same ordering as the other drivers).
                if let Some(name) = env.take_phase() {
                    self.locals[i].cur_phase = shared.phase_id(&name);
                }
                self.w[i] = write;
                self.r[i] = read;
            }
            Ok(Step::IdleFor(n)) => {
                if let Some(name) = env.take_phase() {
                    self.locals[i].cur_phase = shared.phase_id(&name);
                }
                let n = n.max(1);
                // A planned crash inside the idle span cuts it short: the
                // processor idles up to the crash round and dies there,
                // exactly as if it had yielded the idle cycles one by one
                // and been caught by the per-round crash check.
                match shared.plan.as_ref().and_then(|pl| pl.crash_cycle(i)) {
                    Some(cc) if cc < now + n => {
                        let fire = cc.max(now);
                        self.locals[i].record_idle_span(now, fire - now);
                        self.status[i] = Status::Asleep;
                        self.crashes.push(Reverse((fire, i)));
                    }
                    _ => {
                        self.locals[i].record_idle_span(now, n);
                        self.status[i] = Status::Asleep;
                        self.sleepers.push(Reverse((now + n, i)));
                    }
                }
            }
            Ok(Step::Done(res)) => {
                self.results[i] = Some(res);
                self.retire(shared, i);
            }
            Err(payload) => {
                if let Some(esc) = payload.downcast_ref::<Escalated>() {
                    shared.fail(esc.0.clone());
                } else {
                    shared.fail(NetError::ProcPanicked {
                        proc: id,
                        message: panic_message(payload.as_ref()),
                    });
                }
                self.retire(shared, i);
            }
        }
    }
}

/// Vector execution of [`StepProtocol`] state machines: one thread, flat
/// columns, active-set cycle loops.
pub(crate) fn run_steps<M, S, F>(
    net: &Network,
    factory: &F,
) -> Result<RunReport<S::Output, M>, NetError>
where
    M: Clone + Send + Sync + MsgWidth,
    S: StepProtocol<M> + Send,
    S::Output: Send,
    F: Fn(ProcId) -> S + Sync,
{
    let p = net.p();
    let k = net.k();
    // Barrier width 1: this driver never waits on it.
    let shared: Shared<M> = Shared::new(net, 1);
    let started = Instant::now();

    let mut cols: Cols<M, S> = Cols {
        machines: (0..p)
            .map(|i| Some(factory(ProcId::from_index(i))))
            .collect(),
        locals: vec![LocalMetrics::default(); p],
        status: vec![Status::Active; p],
        w: (0..p).map(|_| None).collect(),
        r: vec![None; p],
        inputs: (0..p).map(|_| None).collect(),
        results: (0..p).map(|_| None).collect(),
        sleepers: BinaryHeap::new(),
        crashes: BinaryHeap::new(),
        p,
        k,
    };
    // Channel columns: the slot/jam state `apply_write`/`apply_read` keep
    // behind per-channel locks, flattened. `dirty` lists the channels
    // touched this cycle so the sweep clears O(dirty), not O(k).
    let mut slot_msg: Vec<Option<(ProcId, M)>> = (0..k).map(|_| None).collect();
    let mut slot_jam = vec![false; k];
    let mut dirty: Vec<usize> = Vec::new();
    let mut events: Vec<Event<M>> = Vec::new();
    // Wall-clock histogram for protocol compute (one sample per collect
    // sweep) — the single-threaded analogue of the pooled driver's `stall`,
    // surfaced as [`EngineProfile::dispatch`](crate::EngineProfile).
    let mut dispatch = LogHistogram::new();

    // Bring every machine to its first request (or completion): the same
    // initial collect at round 0 the pooled driver performs.
    let t0 = shared.profile.then(Instant::now);
    for i in 0..p {
        cols.collect_one(&shared, i, 0);
    }
    if let Some(t) = t0 {
        dispatch.record(t.elapsed().as_nanos() as u64);
    }
    let mut active: Vec<usize> = (0..p)
        .filter(|&i| cols.status[i] == Status::Active)
        .collect();

    loop {
        let now = shared.round.load(Ordering::Relaxed);

        // ---- write phase -------------------------------------------------
        // Sleepers whose planned crash round has arrived die first: the
        // crash fires at the top of the round, mirroring the per-round
        // crash check the other backends run before any write.
        while let Some(&Reverse((fire, ci))) = cols.crashes.peek() {
            if fire > now {
                break;
            }
            cols.crashes.pop();
            shared.record_fault(FaultRecord {
                cycle: now,
                kind: FaultKind::Crash,
                proc: Some(ProcId::from_index(ci)),
                chan: None,
            });
            cols.retire(&shared, ci);
        }
        for &i in &active {
            if let Some(plan) = &shared.plan {
                // Planned crash of an active processor: its pending
                // write/read are discarded and its result stays `None`.
                if plan.crash_cycle(i).is_some_and(|cc| now >= cc) {
                    shared.record_fault(FaultRecord {
                        cycle: now,
                        kind: FaultKind::Crash,
                        proc: Some(ProcId::from_index(i)),
                        chan: None,
                    });
                    cols.w[i] = None;
                    cols.r[i] = None;
                    cols.retire(&shared, i);
                    continue;
                }
            }
            let Some((c, m)) = cols.w[i].take() else {
                continue;
            };
            // Inlined `Shared::apply_write` over the columns, rule for
            // rule: validation, fault suppression, framing jam, group port
            // mark, collision, trace, accounting.
            let id = ProcId::from_index(i);
            if c.index() >= k {
                shared.fail(NetError::BadChannel {
                    cycle: now,
                    proc: id,
                    channel: c,
                    k,
                });
                continue;
            }
            if let Some(kind) = shared
                .plan
                .as_ref()
                .and_then(|pl| pl.write_fault(i, c.index(), now))
            {
                shared.record_fault(FaultRecord {
                    cycle: now,
                    kind,
                    proc: Some(id),
                    chan: (kind != FaultKind::Stall).then_some(c),
                });
                if shared.framing && kind == FaultKind::Corrupt {
                    slot_jam[c.index()] = true;
                    dirty.push(c.index());
                }
                continue;
            }
            let bits = m.bits() + if shared.framing { FRAME_HEADER_BITS } else { 0 };
            shared.group_mark_write(i);
            match &slot_msg[c.index()] {
                Some((first, _)) => {
                    shared.fail(NetError::Collision {
                        cycle: now,
                        channel: c,
                        first: *first,
                        second: id,
                    });
                }
                None => {
                    if shared.record_trace {
                        events.push(Event {
                            cycle: now,
                            writer: id,
                            channel: c,
                            phase: (cols.locals[i].cur_phase != 0)
                                .then_some(cols.locals[i].cur_phase),
                            msg: m.clone(),
                        });
                    }
                    slot_msg[c.index()] = Some((id, m));
                    dirty.push(c.index());
                    cols.locals[i].record_message(bits, c.index(), now);
                    shared.count_channel_message(c.index());
                    if let Some(mon) = &shared.monitor {
                        mon.on_message(cols.locals[i].cur_phase, bits, now);
                    }
                }
            }
        }

        // ---- read phase --------------------------------------------------
        for &i in &active {
            if cols.status[i] != Status::Active {
                // Crashed in this round's write phase.
                continue;
            }
            // Inlined `Shared::apply_read` over the columns.
            let got = match cols.r[i].take() {
                Some(c) if c.index() >= k => {
                    shared.fail(NetError::BadChannel {
                        cycle: now,
                        proc: ProcId::from_index(i),
                        channel: c,
                        k,
                    });
                    None
                }
                Some(c) => {
                    if shared.plan.as_ref().is_some_and(|pl| pl.is_stalled(i, now)) {
                        // Blacked-out receiver: empty channel regardless of
                        // traffic.
                        shared.record_fault(FaultRecord {
                            cycle: now,
                            kind: FaultKind::Stall,
                            proc: Some(ProcId::from_index(i)),
                            chan: None,
                        });
                        None
                    } else {
                        shared.group_mark_read(i);
                        slot_msg[c.index()].as_ref().map(|(_, m)| m.clone())
                    }
                }
                None => None,
            };
            cols.inputs[i] = got;
            cols.locals[i].record_cycle(now);
        }

        // ---- sweep -------------------------------------------------------
        for c in dirty.drain(..) {
            slot_msg[c] = None;
            slot_jam[c] = false;
        }
        shared.tick();
        if shared.done.load(Ordering::Acquire) {
            break;
        }

        // ---- collect (the machines' compute phase) -----------------------
        let now = shared.round.load(Ordering::Relaxed);
        let t0 = shared.profile.then(Instant::now);
        let mut woke = false;
        while let Some(&Reverse((wake, si))) = cols.sleepers.peek() {
            if wake > now {
                break;
            }
            cols.sleepers.pop();
            cols.status[si] = Status::Active;
            active.push(si);
            woke = true;
        }
        if woke {
            // Keep the active list in processor order so the write loop's
            // channel deposits stay deterministic run to run.
            active.sort_unstable();
        }
        for &i in &active {
            if cols.status[i] == Status::Active {
                cols.collect_one(&shared, i, now);
            }
        }
        active.retain(|&i| cols.status[i] == Status::Active);
        if let Some(t) = t0 {
            dispatch.record(t.elapsed().as_nanos() as u64);
        }
    }

    let profile = shared.profile.then(|| {
        let mut agg = shared.prof.lock().clone();
        agg.dispatch.merge(&dispatch);
        agg.into_profile(Backend::Vector, 1, started.elapsed().as_nanos() as u64)
    });
    assemble_report(shared, cols.locals, cols.results, events, profile)
}
