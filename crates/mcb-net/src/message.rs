//! Message-width accounting.
//!
//! The MCB model (paper §2) charges one message per broadcast and stipulates
//! that "a message consists of at most O(log β) bits, where β is the value of
//! the largest parameter or datum involved in the computation". The engine
//! therefore records, for every broadcast, the bit width of the payload; the
//! run report exposes the maximum and total widths so that experiments can
//! verify the O(log β) discipline (a protocol smuggling whole lists in one
//! message would show up immediately as an oversized `max_msg_bits`).

/// Types that know how many bits their wire encoding needs.
///
/// Implementations should return the *semantic* width (bits of the numbers
/// carried), not `size_of` of the in-memory representation. A small constant
/// number of tag bits for enum discriminants is fine and expected.
pub trait MsgWidth {
    /// Number of bits a broadcast of this value occupies on a channel.
    fn bits(&self) -> u32;
}

/// Bits needed to represent `v` as an unsigned integer (at least 1).
#[inline]
pub fn bits_for_u64(v: u64) -> u32 {
    (64 - v.leading_zeros()).max(1)
}

/// Bits needed to represent `v` as a sign-magnitude integer (at least 2).
#[inline]
pub fn bits_for_i64(v: i64) -> u32 {
    bits_for_u64(v.unsigned_abs()) + 1
}

impl MsgWidth for u64 {
    fn bits(&self) -> u32 {
        bits_for_u64(*self)
    }
}

impl MsgWidth for u32 {
    fn bits(&self) -> u32 {
        bits_for_u64(u64::from(*self))
    }
}

impl MsgWidth for i64 {
    fn bits(&self) -> u32 {
        bits_for_i64(*self)
    }
}

impl MsgWidth for () {
    fn bits(&self) -> u32 {
        1
    }
}

impl<T: MsgWidth> MsgWidth for Option<T> {
    fn bits(&self) -> u32 {
        1 + self.as_ref().map_or(0, MsgWidth::bits)
    }
}

impl<A: MsgWidth, B: MsgWidth> MsgWidth for (A, B) {
    fn bits(&self) -> u32 {
        self.0.bits() + self.1.bits()
    }
}

impl<A: MsgWidth, B: MsgWidth, C: MsgWidth> MsgWidth for (A, B, C) {
    fn bits(&self) -> u32 {
        self.0.bits() + self.1.bits() + self.2.bits()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn u64_widths() {
        assert_eq!(bits_for_u64(0), 1);
        assert_eq!(bits_for_u64(1), 1);
        assert_eq!(bits_for_u64(2), 2);
        assert_eq!(bits_for_u64(255), 8);
        assert_eq!(bits_for_u64(256), 9);
        assert_eq!(bits_for_u64(u64::MAX), 64);
    }

    #[test]
    fn i64_widths_add_sign_bit() {
        assert_eq!(bits_for_i64(0), 2);
        assert_eq!(bits_for_i64(-1), 2);
        assert_eq!(bits_for_i64(-256), 10);
        assert_eq!(bits_for_i64(i64::MIN), 65);
    }

    #[test]
    fn tuple_widths_sum() {
        assert_eq!((3u64, 4u64).bits(), 2 + 3);
        assert_eq!((1u64, 1u64, 1u64).bits(), 3);
    }

    #[test]
    fn unit_width_is_one() {
        assert_eq!(().bits(), 1);
    }
}
