//! Epoch protocol: agree on the live configuration after a detected fault.
//!
//! The frame layer ([`crate::frame`]) classifies every read of a broadcast
//! channel as clean, silent, or noisy. Self-healing protocols arrange their
//! schedules so that **every live processor reads every round's channel**
//! (all-read serialized broadcast): a round that is not
//! [`Clean`](crate::FrameRead::Clean) is therefore observed by every live
//! processor *in the same cycle*, making the fault common knowledge
//! instantly and in-band — no heartbeats, no out-of-band oracle, no extra
//! detection cycles.
//!
//! On suspicion, every live processor calls [`EpochCtx::reconfigure`],
//! which runs a bounded **census**: one framed cycle per (live channel,
//! live processor) pair in which exactly that processor pings exactly that
//! channel and everyone reads it. The census has a one-writer-per-cycle
//! schedule, so it is trivially collision-free, and its observations are
//! again common knowledge:
//!
//! * a clean, correctly-stamped ping proves both the channel and the
//!   processor live;
//! * noise ([`FrameRead::Noise`]) proves both live
//!   as well — only the scheduled processor could have energized that slot
//!   (*positional attribution*), even though the payload was corrupted;
//! * silence leaves both unproven for this slot (the processor gets
//!   `k′ − 1` more slots, one per remaining live channel, so a single dead
//!   channel cannot disenfranchise it);
//! * a clean ping carrying the *wrong epoch stamp* means the network's
//!   common knowledge has split — the census escalates
//!   [`NetError::EpochDiverged`] rather than commit a bad configuration.
//!
//! When at least one channel and one processor were proven live, every
//! participant commits the *same* new configuration (the proven subsets),
//! bumps the epoch counter, and appends an [`EpochRecord`]. A participant
//! absent from the new processor set marks itself
//! [`excluded`](EpochCtx::is_excluded) and withdraws. If a full sweep
//! proves nothing, the census retries up to
//! [`EpochOpts::census_retries`] more times before escalating
//! [`NetError::Unrecoverable`].
//!
//! The cost of one reconfiguration is at most
//! `(census_retries + 1) × k′ × p′` cycles; the number of reconfigurations
//! is bounded by [`EpochOpts::max_epochs`] and, in practice, by the number
//! of distinct faults in the plan (a transient fault consumed by a replay
//! does not re-fire, so every epoch bump retires at least one fault).

use crate::engine::{Escalated, ProcCtx};
use crate::error::NetError;
use crate::frame::FrameRead;
use crate::ids::ChanId;
use crate::message::MsgWidth;

/// Encoding hooks for the epoch protocol's control traffic.
///
/// The census must speak the *protocol's own message type* `M` (the network
/// is monomorphic in `M`), so the message type provides a ping constructor
/// and decoder. Implementations must satisfy
/// `decode_ping(&ping(p, e)) == Some((p, e))` and should make pings
/// distinguishable from every data payload the protocol uses (a dedicated
/// tag bit is enough).
pub trait ControlCodec: Sized {
    /// A census ping from processor index `proc`, stamped with the sender's
    /// current `epoch`.
    fn ping(proc: usize, epoch: u64) -> Self;

    /// Decode a census ping back into `(proc, epoch)`; `None` when the
    /// message is not a ping.
    fn decode_ping(&self) -> Option<(usize, u64)>;
}

/// `u64` messages reserve the top bit for census pings:
/// `1 << 63 | epoch << 20 | proc`.
impl ControlCodec for u64 {
    fn ping(proc: usize, epoch: u64) -> Self {
        debug_assert!(proc < (1 << 20));
        debug_assert!(epoch < (1 << 43));
        1 << 63 | epoch << 20 | proc as u64
    }

    fn decode_ping(&self) -> Option<(usize, u64)> {
        if self >> 63 == 1 {
            Some(((self & 0xF_FFFF) as usize, self >> 20 & 0x7FF_FFFF_FFFF))
        } else {
            None
        }
    }
}

/// Tuning knobs for the epoch protocol.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct EpochOpts {
    /// Extra full census sweeps to run when a sweep proves no channel or no
    /// processor live (e.g. every ping of the sweep fell on a transient
    /// drop). The first sweep is always run; `census_retries` bounds the
    /// *additional* attempts.
    pub census_retries: u32,
    /// Hard cap on the number of epoch bumps in one run. Exceeding it
    /// escalates [`NetError::Unrecoverable`]; it exists to turn a
    /// fault-injection configuration that generates faults faster than
    /// reconfiguration can retire them into a clean failure instead of a
    /// livelock.
    pub max_epochs: u32,
}

impl Default for EpochOpts {
    fn default() -> Self {
        EpochOpts {
            census_retries: 3,
            max_epochs: 64,
        }
    }
}

/// What triggered a reconfiguration.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum EpochCause {
    /// A scheduled broadcast was observed as silence (dead channel, dead or
    /// crashed writer, or a dropped frame).
    Silence,
    /// A scheduled broadcast was observed as noise (corrupted in flight).
    Noise,
}

impl EpochCause {
    /// Stable lower-case name, used by the JSONL export.
    pub fn as_str(self) -> &'static str {
        match self {
            EpochCause::Silence => "silence",
            EpochCause::Noise => "noise",
        }
    }
}

/// One committed reconfiguration: the epoch that *began* when the census
/// committed, and the configuration agreed for it.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct EpochRecord {
    /// The new epoch number (the first reconfiguration commits epoch 1).
    pub epoch: u64,
    /// Global cycle at which the census committed.
    pub cycle: u64,
    /// The observation that triggered the reconfiguration.
    pub cause: EpochCause,
    /// Channel indices proven live by the census, ascending.
    pub live_chans: Vec<usize>,
    /// Processor indices proven live by the census, ascending.
    pub live_procs: Vec<usize>,
}

/// Per-processor epoch state machine.
///
/// Every participant of a self-healing run owns one `EpochCtx`, and the
/// all-read discipline guarantees the replicas stay identical: they start
/// identical (`new`), and every transition ([`reconfigure`]) is driven by
/// common-knowledge observations. `EpochCtx` is *deterministic shared
/// state*, not local opinion.
///
/// [`reconfigure`]: EpochCtx::reconfigure
#[derive(Debug, Clone)]
pub struct EpochCtx {
    epoch: u64,
    live_chans: Vec<usize>,
    live_procs: Vec<usize>,
    opts: EpochOpts,
    records: Vec<EpochRecord>,
    excluded: bool,
}

impl EpochCtx {
    /// Epoch 0: all `p` processors and all `k` channels presumed live.
    pub fn new(p: usize, k: usize, opts: EpochOpts) -> Self {
        EpochCtx {
            epoch: 0,
            live_chans: (0..k).collect(),
            live_procs: (0..p).collect(),
            opts,
            records: Vec::new(),
            excluded: false,
        }
    }

    /// Resume constructor for tests and replay tooling: start at an
    /// arbitrary epoch and configuration.
    pub fn with_epoch(
        epoch: u64,
        live_chans: Vec<usize>,
        live_procs: Vec<usize>,
        opts: EpochOpts,
    ) -> Self {
        EpochCtx {
            epoch,
            live_chans,
            live_procs,
            opts,
            records: Vec::new(),
            excluded: false,
        }
    }

    /// The current epoch number (0 until the first reconfiguration).
    pub fn epoch(&self) -> u64 {
        self.epoch
    }

    /// Channel indices currently presumed live, ascending.
    pub fn live_chans(&self) -> &[usize] {
        &self.live_chans
    }

    /// Processor indices currently presumed live, ascending.
    pub fn live_procs(&self) -> &[usize] {
        &self.live_procs
    }

    /// True once a census committed a configuration that does not contain
    /// this processor: it must withdraw from the protocol (return no
    /// output) because the survivors have adopted its role.
    pub fn is_excluded(&self) -> bool {
        self.excluded
    }

    /// The committed reconfigurations so far, oldest first.
    pub fn records(&self) -> &[EpochRecord] {
        &self.records
    }

    /// Consume the state machine, yielding its reconfiguration log.
    pub fn into_records(self) -> Vec<EpochRecord> {
        self.records
    }

    /// The live processor hosting virtual `role` under the current epoch:
    /// roles are dealt round-robin over the live processor list, so
    /// survivors adopt dead processors' roles deterministically.
    pub fn host(&self, role: usize) -> usize {
        self.live_procs[role % self.live_procs.len()]
    }

    /// The physical channel carrying logical round `t` under the current
    /// epoch: rounds rotate over the live channel list (the §2 lemma remap
    /// with idle sub-cycles elided — one writer per round means the full
    /// `⌈k/k′⌉` dilation is never needed at run time, though the static
    /// verifier proves the fully-dilated schedule collision-free).
    pub fn phys_channel(&self, t: usize) -> ChanId {
        ChanId::from_index(self.live_chans[t % self.live_chans.len()])
    }

    /// Worst-case cycle cost of one call to [`reconfigure`] under the
    /// *initial* configuration (later epochs are cheaper: fewer slots).
    ///
    /// [`reconfigure`]: EpochCtx::reconfigure
    pub fn census_cost(p: usize, k: usize, opts: &EpochOpts) -> u64 {
        (u64::from(opts.census_retries) + 1) * (k as u64) * (p as u64)
    }

    /// Run the census and commit the next epoch.
    ///
    /// Must be called by **every** live participant in the same cycle (the
    /// all-read discipline guarantees this: the triggering observation was
    /// common knowledge). On return, either the shared state has advanced
    /// to the new epoch — check [`is_excluded`](EpochCtx::is_excluded) —
    /// or the run has escalated a fatal [`NetError`]
    /// ([`Unrecoverable`](NetError::Unrecoverable) when the retry budget is
    /// spent, [`EpochDiverged`](NetError::EpochDiverged) when foreign-epoch
    /// traffic shows the participants are no longer in agreement).
    pub fn reconfigure<M>(&mut self, ctx: &mut ProcCtx<'_, M>, cause: EpochCause)
    where
        M: Clone + Send + Sync + MsgWidth + ControlCodec,
    {
        let me = ctx.id().index();
        if self.records.len() as u32 >= self.opts.max_epochs {
            escalate(NetError::Unrecoverable {
                cycle: ctx.now(),
                proc: ctx.id(),
                attempts: self.opts.max_epochs,
            });
        }
        for _attempt in 0..=self.opts.census_retries {
            let mut chan_seen = vec![false; self.live_chans.len()];
            let mut proc_seen = vec![false; self.live_procs.len()];
            for (ci, &c) in self.live_chans.iter().enumerate() {
                for (pi, &pr) in self.live_procs.iter().enumerate() {
                    let write =
                        (pr == me).then(|| (ChanId::from_index(c), M::ping(pr, self.epoch)));
                    match ctx.framed_cycle(write, Some(ChanId::from_index(c))) {
                        FrameRead::Clean(m) => match m.decode_ping() {
                            Some((p_got, e_got)) if p_got == pr && e_got == self.epoch => {
                                chan_seen[ci] = true;
                                proc_seen[pi] = true;
                            }
                            Some((_, e_got)) => escalate(NetError::EpochDiverged {
                                cycle: ctx.now(),
                                proc: ctx.id(),
                                expected: self.epoch,
                                observed: e_got,
                            }),
                            None => escalate(NetError::EpochDiverged {
                                cycle: ctx.now(),
                                proc: ctx.id(),
                                expected: self.epoch,
                                observed: u64::MAX,
                            }),
                        },
                        // Only `pr` could energize this slot, so noise still
                        // proves both the channel and the processor live.
                        FrameRead::Noise => {
                            chan_seen[ci] = true;
                            proc_seen[pi] = true;
                        }
                        FrameRead::Silence => {}
                    }
                }
            }
            if chan_seen.iter().any(|&s| s) && proc_seen.iter().any(|&s| s) {
                let keep = |live: &[usize], seen: &[bool]| {
                    live.iter()
                        .zip(seen)
                        .filter_map(|(&x, &s)| s.then_some(x))
                        .collect::<Vec<_>>()
                };
                self.live_chans = keep(&self.live_chans, &chan_seen);
                self.live_procs = keep(&self.live_procs, &proc_seen);
                self.epoch += 1;
                self.excluded = !self.live_procs.contains(&me);
                self.records.push(EpochRecord {
                    epoch: self.epoch,
                    cycle: ctx.now(),
                    cause,
                    live_chans: self.live_chans.clone(),
                    live_procs: self.live_procs.clone(),
                });
                // Post the reconfiguration to the live monitor, if one is
                // attached. Every survivor commits the identical record, so
                // only the lowest live processor posts — one event per
                // epoch, not one per replica.
                if self.live_procs.first() == Some(&me) {
                    if let Some(mon) = ctx.monitor_core() {
                        mon.on_epoch(self.epoch, ctx.now());
                    }
                }
                return;
            }
        }
        escalate(NetError::Unrecoverable {
            cycle: ctx.now(),
            proc: ctx.id(),
            attempts: self.opts.census_retries + 1,
        });
    }
}

/// Abort the whole run with a fatal error (the engine unwraps `Escalated`
/// payloads into the run's `Err`).
fn escalate(err: NetError) -> ! {
    std::panic::resume_unwind(Box::new(Escalated(err)))
}

/// Escalate [`NetError::EpochDiverged`] from protocol code: a processor
/// observed epoch-stamped control traffic (a census ping) where its own
/// epoch's schedule expected data — the participants are no longer in
/// agreement and the run cannot proceed. `observed` is the foreign epoch
/// stamp (`u64::MAX` when the traffic was not decodable).
pub fn escalate_diverged<M: Clone + Send + Sync + MsgWidth>(
    ctx: &ProcCtx<'_, M>,
    expected: u64,
    observed: u64,
) -> ! {
    escalate(NetError::EpochDiverged {
        cycle: ctx.now(),
        proc: ctx.id(),
        expected,
        observed,
    })
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn u64_ping_round_trips() {
        for (p, e) in [(0usize, 0u64), (7, 3), (1023, 62)] {
            let m = u64::ping(p, e);
            assert_eq!(m.decode_ping(), Some((p, e)));
        }
        assert_eq!(42u64.decode_ping(), None, "plain data is not a ping");
    }

    #[test]
    fn fresh_ctx_is_epoch_zero_everything_live() {
        let ctx = EpochCtx::new(5, 3, EpochOpts::default());
        assert_eq!(ctx.epoch(), 0);
        assert_eq!(ctx.live_chans(), &[0, 1, 2]);
        assert_eq!(ctx.live_procs(), &[0, 1, 2, 3, 4]);
        assert!(!ctx.is_excluded());
        assert!(ctx.records().is_empty());
    }

    #[test]
    fn host_deals_roles_round_robin_over_survivors() {
        let ctx = EpochCtx::with_epoch(1, vec![0, 2], vec![0, 1, 3], EpochOpts::default());
        // Roles 0..6 over survivors [0, 1, 3]: 0,1,3,0,1,3.
        let hosts: Vec<usize> = (0..6).map(|r| ctx.host(r)).collect();
        assert_eq!(hosts, [0, 1, 3, 0, 1, 3]);
    }

    #[test]
    fn phys_channel_rotates_over_live_channels() {
        let ctx = EpochCtx::with_epoch(2, vec![1, 3], vec![0], EpochOpts::default());
        let chans: Vec<usize> = (0..5).map(|t| ctx.phys_channel(t).index()).collect();
        assert_eq!(chans, [1, 3, 1, 3, 1]);
    }

    #[test]
    fn census_cost_is_retries_times_slots() {
        let opts = EpochOpts {
            census_retries: 2,
            max_epochs: 8,
        };
        assert_eq!(EpochCtx::census_cost(4, 3, &opts), 3 * 3 * 4);
    }

    #[test]
    fn cause_names_are_stable() {
        assert_eq!(EpochCause::Silence.as_str(), "silence");
        assert_eq!(EpochCause::Noise.as_str(), "noise");
    }
}
