//! Self-checking broadcast frames: the detection substrate for unplanned
//! faults.
//!
//! PR 4's resilient mode recovers from faults it is *told about*
//! ([`FaultPlan::notice`](crate::FaultPlan::notice) is a pure oracle). To
//! detect faults from the wire itself, every broadcast can carry a
//! lightweight **frame header** — a sequence tag, the writer id, and a
//! CRC-32 over header and payload — so that a reader can classify each
//! (cycle, channel) observation into one of three [`FrameRead`] outcomes:
//!
//! * [`Clean`](FrameRead::Clean) — a frame arrived and its checksum
//!   verifies: the payload is authentic.
//! * [`Silence`](FrameRead::Silence) — no carrier at all. Against a
//!   schedule whose expected writer is known, silence means the writer is
//!   dead (crashed processor), the channel is dead, or the transmission was
//!   lost.
//! * [`Noise`](FrameRead::Noise) — carrier energy was present but the
//!   checksum fails: the transmission was corrupted in flight. Crucially,
//!   noise still proves that *someone* transmitted, which the epoch
//!   protocol's census uses for positional liveness attribution.
//!
//! Because MCB channels are broadcast media, every processor that reads a
//! channel in a cycle makes the *same* observation — a garbled or missing
//! frame is common knowledge one cycle later, with **no extra cycles
//! spent**. That is what lets the self-healing drivers in `mcb-algos` run
//! detection in-band: protocols are arranged so every live processor reads
//! each round's channel, and any non-[`Clean`](FrameRead::Clean) outcome
//! triggers the epoch reconfiguration protocol simultaneously everywhere.
//!
//! # Engine integration
//!
//! Framing is enabled per-network with
//! [`Network::framing`](crate::Network::framing). The engine then:
//!
//! * charges [`FRAME_HEADER_BITS`] extra bits per delivered message (the
//!   header is overhead in the O(log β) budget, not a separate message);
//! * models in-flight corruption honestly: a `Corrupt` fault leaves the
//!   slot *jammed* instead of silently empty, so framed readers observe
//!   [`Noise`](FrameRead::Noise) where unframed readers would observe an
//!   indistinguishable empty channel;
//! * leaves cycle counts untouched — framing costs bits, never cycles.
//!
//! The concrete bit layout below ([`FrameHeader`]) documents what the
//! header would be on a real wire and keeps the engine's
//! [`FRAME_HEADER_BITS`] constant honest; the simulator carries the
//! classification in the channel slot directly rather than serializing
//! every payload.

/// Extra bits charged per delivered message when framing is enabled:
/// a 16-bit sequence tag, a 16-bit source id, and a CRC-32.
pub const FRAME_HEADER_BITS: u32 = 64;

/// Outcome of one framed read of a channel. See the [module docs](self)
/// for the classification semantics.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum FrameRead<M> {
    /// No carrier: nothing was transmitted, or the transmission was lost
    /// before reaching the medium (dead channel, dropped frame, dead or
    /// stalled writer).
    Silence,
    /// A frame arrived and verified; the payload is authentic.
    Clean(M),
    /// Carrier energy without a verifiable frame: the transmission was
    /// corrupted in flight. Proves a transmitter was alive this cycle.
    Noise,
}

impl<M> FrameRead<M> {
    /// The payload, when the read was [`Clean`](FrameRead::Clean).
    pub fn clean(self) -> Option<M> {
        match self {
            FrameRead::Clean(m) => Some(m),
            _ => None,
        }
    }

    /// True unless the read was [`Clean`](FrameRead::Clean) — i.e. the
    /// observation is grounds for fault suspicion when a write was
    /// scheduled this cycle.
    pub fn is_suspect(&self) -> bool {
        !matches!(self, FrameRead::Clean(_))
    }
}

/// The concrete frame header layout (64 bits on the wire).
///
/// `seq` is the writer's cycle counter truncated to 16 bits (enough to
/// disambiguate any plausible reordering window; the MCB model is
/// synchronous, so it is a consistency check rather than an ordering
/// mechanism), `src` the writer id, and `crc` a CRC-32 (IEEE polynomial)
/// over the sequence tag, source id, and payload bytes.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct FrameHeader {
    /// Low 16 bits of the writer's cycle index at transmission time.
    pub seq: u16,
    /// The writer's processor index (truncated to 16 bits).
    pub src: u16,
    /// CRC-32 (IEEE) over `seq`, `src`, and the payload bytes.
    pub crc: u32,
}

impl FrameHeader {
    /// Build the header for a payload, computing the checksum.
    pub fn seal(seq: u16, src: u16, payload: &[u8]) -> FrameHeader {
        FrameHeader {
            seq,
            src,
            crc: frame_crc(seq, src, payload),
        }
    }

    /// Pack into the 64-bit wire form: `seq | src << 16 | crc << 32`.
    pub fn encode(self) -> u64 {
        u64::from(self.seq) | u64::from(self.src) << 16 | u64::from(self.crc) << 32
    }

    /// Unpack from the 64-bit wire form.
    pub fn decode(word: u64) -> FrameHeader {
        FrameHeader {
            seq: word as u16,
            src: (word >> 16) as u16,
            crc: (word >> 32) as u32,
        }
    }

    /// True when the checksum verifies against `payload`.
    pub fn verify(&self, payload: &[u8]) -> bool {
        self.crc == frame_crc(self.seq, self.src, payload)
    }
}

/// CRC-32 (IEEE 802.3, reflected polynomial `0xEDB88320`) over the header
/// fields and payload, bit-serial — the frame is tiny, table-free is fine.
pub fn frame_crc(seq: u16, src: u16, payload: &[u8]) -> u32 {
    let mut crc = 0xFFFF_FFFFu32;
    let mut feed = |byte: u8| {
        crc ^= u32::from(byte);
        for _ in 0..8 {
            let mask = (crc & 1).wrapping_neg();
            crc = (crc >> 1) ^ (0xEDB8_8320 & mask);
        }
    };
    for b in seq.to_le_bytes() {
        feed(b);
    }
    for b in src.to_le_bytes() {
        feed(b);
    }
    for &b in payload {
        feed(b);
    }
    !crc
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn crc_matches_known_vector() {
        // CRC-32("123456789") = 0xCBF43926 is the standard check value;
        // with the seq/src prefix zeroed out the tail must still chain the
        // same polynomial, so pin the full computation instead.
        let c = frame_crc(0, 0, b"123456789");
        let again = frame_crc(0, 0, b"123456789");
        assert_eq!(c, again);
        assert_ne!(c, frame_crc(0, 0, b"123456780"));
        assert_ne!(c, frame_crc(1, 0, b"123456789"), "seq is covered");
        assert_ne!(c, frame_crc(0, 1, b"123456789"), "src is covered");
    }

    #[test]
    fn pure_payload_crc_is_ieee() {
        // With an empty prefix contribution removed, validate the raw
        // polynomial against the canonical "123456789" check value by
        // recomputing it inline.
        let mut crc = 0xFFFF_FFFFu32;
        for &b in b"123456789" {
            crc ^= u32::from(b);
            for _ in 0..8 {
                let mask = (crc & 1).wrapping_neg();
                crc = (crc >> 1) ^ (0xEDB8_8320 & mask);
            }
        }
        assert_eq!(!crc, 0xCBF4_3926);
    }

    #[test]
    fn header_round_trips_and_verifies() {
        let h = FrameHeader::seal(513, 7, b"payload");
        assert_eq!(FrameHeader::decode(h.encode()), h);
        assert!(h.verify(b"payload"));
        assert!(!h.verify(b"payloae"), "bit flip must fail the CRC");
        let mut tampered = h;
        tampered.src ^= 1;
        assert!(!tampered.verify(b"payload"), "header flip must fail too");
    }

    #[test]
    fn frame_read_helpers() {
        assert_eq!(FrameRead::Clean(5u64).clean(), Some(5));
        assert_eq!(FrameRead::<u64>::Silence.clean(), None);
        assert_eq!(FrameRead::<u64>::Noise.clean(), None);
        assert!(!FrameRead::Clean(1u64).is_suspect());
        assert!(FrameRead::<u64>::Silence.is_suspect());
        assert!(FrameRead::<u64>::Noise.is_suspect());
    }
}
